// Package private implements the paper's "pure private heaps" baseline, in
// the mold of Cilk 4.1's allocator and the original STL pthread_alloc.
//
// Each thread owns a completely private heap: malloc pops the calling
// thread's per-class free list (or carves from the thread's current span),
// and free pushes the block onto the *freeing* thread's list — whichever
// thread that is. No locks are taken on either path, so the allocator is
// embarrassingly scalable; but memory freed by a thread that did not
// allocate it is stranded on the freeing thread's lists, so producer-
// consumer programs exhibit unbounded blowup (paper §2.2), and blocks
// migrating between threads' lists passively induce false sharing. This is
// the allocator that motivates Hoard's ownership discipline.
package private

import (
	"encoding/binary"
	"fmt"
	"sync"
	"sync/atomic"

	"hoardgo/internal/alloc"
	"hoardgo/internal/env"
	"hoardgo/internal/sizeclass"
	"hoardgo/internal/superblock"
	"hoardgo/internal/vm"
)

// spanTag marks a carving span with its size class. carved is maintained by
// the span's owning thread alone and read only at quiescence.
type spanTag struct {
	class     int
	blockSize int
	carved    int
}

type largeObj struct{ size int }

// threadState is one thread's private heap.
type threadState struct {
	free      []alloc.Ptr // head of intrusive free list, per class
	freeCount []int
	carve     []carveState
}

type carveState struct {
	span *vm.Span
	off  int
}

// Allocator is the pure-private-heaps allocator.
type Allocator struct {
	space   vm.Backend
	classes *sizeclass.Table
	sbSize  int
	acct    alloc.Accounting
	largeLv atomic.Int64

	mu      sync.Mutex
	threads []*threadState
	spans   []*vm.Span
}

// New creates a pure-private-heaps allocator. sbSize is the span size used
// for carving (0 selects 8 KiB, matching the other allocators).
func New(sbSize int, lf env.LockFactory) *Allocator {
	_ = lf // no locks on malloc/free: the defining property of pure private heaps
	if sbSize == 0 {
		sbSize = superblock.DefaultSize
	}
	return &Allocator{
		space:   vm.New(),
		classes: sizeclass.New(sizeclass.DefaultBase, sizeclass.Quantum, sbSize/2),
		sbSize:  sbSize,
	}
}

// Name implements alloc.Allocator.
func (a *Allocator) Name() string { return "private" }

// Space implements alloc.Allocator.
func (a *Allocator) Space() vm.Backend { return a.space }

// NewThread implements alloc.Allocator.
func (a *Allocator) NewThread(e env.Env) *alloc.Thread {
	n := a.classes.NumClasses()
	ts := &threadState{
		free:      make([]alloc.Ptr, n),
		freeCount: make([]int, n),
		carve:     make([]carveState, n),
	}
	a.mu.Lock()
	a.threads = append(a.threads, ts)
	a.mu.Unlock()
	return &alloc.Thread{ID: e.ThreadID(), Env: e, State: ts}
}

// Malloc implements alloc.Allocator.
func (a *Allocator) Malloc(t *alloc.Thread, size int) alloc.Ptr {
	e := t.Env
	if size > a.classes.MaxSize() {
		lo := &largeObj{}
		sp := a.space.Reserve(size, vm.PageSize, lo)
		lo.size = sp.Len
		e.Charge(env.OpOSAlloc, 1)
		e.Charge(env.OpMallocSlow, 1)
		a.largeLv.Add(int64(sp.Len))
		a.acct.OnLarge()
		a.acct.OnMalloc(sp.Len)
		return alloc.Ptr(sp.Base)
	}
	ts := t.State.(*threadState)
	class, _ := a.classes.ClassFor(size)
	blockSize := a.classes.Size(class)

	var p alloc.Ptr
	if head := ts.free[class]; !head.IsNil() {
		// Pop the thread's own free list; the link read pulls the
		// block's cache line into this thread's cache.
		link := a.space.Bytes(uint64(head), 8)
		e.Touch(uint64(head), 8, false)
		ts.free[class] = alloc.Ptr(binary.LittleEndian.Uint64(link))
		ts.freeCount[class]--
		p = head
	} else {
		cs := &ts.carve[class]
		if cs.span == nil || cs.off+blockSize > cs.span.Len {
			e.Charge(env.OpMallocSlow, 1)
			e.Charge(env.OpOSAlloc, 1)
			cs.span = a.space.Reserve(a.sbSize, a.sbSize, &spanTag{class: class, blockSize: blockSize})
			cs.off = 0
			a.mu.Lock()
			a.spans = append(a.spans, cs.span)
			a.mu.Unlock()
		}
		p = alloc.Ptr(cs.span.Base + uint64(cs.off))
		cs.off += blockSize
		cs.span.Owner.(*spanTag).carved++
	}
	e.Charge(env.OpMallocFast, 1)
	a.acct.OnMalloc(blockSize)
	return p
}

// Free implements alloc.Allocator. The block lands on the *calling* thread's
// free list regardless of who allocated it — the defining (and fatal)
// property of pure private heaps.
func (a *Allocator) Free(t *alloc.Thread, p alloc.Ptr) {
	if p.IsNil() {
		return
	}
	e := t.Env
	sp := a.space.Lookup(uint64(p))
	if sp == nil {
		panic(fmt.Sprintf("private: free of unknown pointer %#x", uint64(p)))
	}
	switch owner := sp.Owner.(type) {
	case *largeObj:
		if uint64(p) != sp.Base {
			panic(fmt.Sprintf("private: free of interior large-object pointer %#x", uint64(p)))
		}
		a.largeLv.Add(int64(-owner.size))
		a.acct.OnFree(owner.size)
		a.space.Release(sp)
		e.Charge(env.OpOSAlloc, 1)
		e.Charge(env.OpFree, 1)
	case *spanTag:
		if (uint64(p)-sp.Base)%uint64(owner.blockSize) != 0 {
			panic(fmt.Sprintf("private: free of misaligned pointer %#x", uint64(p)))
		}
		ts := t.State.(*threadState)
		link := a.space.Bytes(uint64(p), 8)
		binary.LittleEndian.PutUint64(link, uint64(ts.free[owner.class]))
		e.Touch(uint64(p), 8, true)
		ts.free[owner.class] = p
		ts.freeCount[owner.class]++
		e.Charge(env.OpFree, 1)
		a.acct.OnFree(owner.blockSize)
	default:
		panic(fmt.Sprintf("private: free of foreign pointer %#x", uint64(p)))
	}
}

// UsableSize implements alloc.Allocator.
func (a *Allocator) UsableSize(p alloc.Ptr) int {
	sp := a.space.Lookup(uint64(p))
	if sp == nil {
		panic(fmt.Sprintf("private: UsableSize of unknown pointer %#x", uint64(p)))
	}
	switch owner := sp.Owner.(type) {
	case *largeObj:
		return owner.size
	case *spanTag:
		return owner.blockSize
	}
	panic(fmt.Sprintf("private: UsableSize of foreign pointer %#x", uint64(p)))
}

// Bytes implements alloc.Allocator.
func (a *Allocator) Bytes(p alloc.Ptr, n int) []byte {
	if n > a.UsableSize(p) {
		panic(fmt.Sprintf("private: Bytes(%#x, %d) exceeds usable size", uint64(p), n))
	}
	return a.space.Bytes(uint64(p), n)
}

// Stats implements alloc.Allocator.
func (a *Allocator) Stats() alloc.Stats {
	var st alloc.Stats
	a.acct.Fill(&st)
	st.OSReserves = a.space.Stats().Reserves
	return st
}

// FreeListBytes reports the total bytes sitting on threads' private free
// lists — the stranded memory that drives this allocator's blowup. Requires
// quiescence.
func (a *Allocator) FreeListBytes() int64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	var total int64
	for _, ts := range a.threads {
		for c, n := range ts.freeCount {
			total += int64(n) * int64(a.classes.Size(c))
		}
	}
	return total
}

// CheckIntegrity implements alloc.Allocator. It walks every thread's free
// lists validating membership, then cross-checks the live-byte gauge:
// live = carved - free-listed + large. Requires quiescence.
func (a *Allocator) CheckIntegrity() error {
	a.mu.Lock()
	defer a.mu.Unlock()
	var freeBytes int64
	seen := make(map[alloc.Ptr]bool)
	for ti, ts := range a.threads {
		for c := range ts.free {
			n := 0
			for p := ts.free[c]; !p.IsNil(); {
				if seen[p] {
					return fmt.Errorf("private: block %#x on two free lists", uint64(p))
				}
				seen[p] = true
				sp := a.space.Lookup(uint64(p))
				if sp == nil {
					return fmt.Errorf("private: thread %d class %d free list references dead span (%#x)", ti, c, uint64(p))
				}
				tag, ok := sp.Owner.(*spanTag)
				if !ok || tag.class != c {
					return fmt.Errorf("private: block %#x on wrong class list %d", uint64(p), c)
				}
				n++
				p = alloc.Ptr(binary.LittleEndian.Uint64(a.space.Bytes(uint64(p), 8)))
			}
			if n != ts.freeCount[c] {
				return fmt.Errorf("private: thread %d class %d free count %d, list has %d", ti, c, ts.freeCount[c], n)
			}
			freeBytes += int64(n) * int64(a.classes.Size(c))
		}
	}
	var carvedBytes int64
	for _, sp := range a.spans {
		tag := sp.Owner.(*spanTag)
		if tag.carved < 0 || tag.carved*tag.blockSize > sp.Len {
			return fmt.Errorf("private: span %#x carved %d blocks of %d bytes, exceeds span", sp.Base, tag.carved, tag.blockSize)
		}
		carvedBytes += int64(tag.carved) * int64(tag.blockSize)
	}
	live := carvedBytes - freeBytes + a.largeLv.Load()
	if got := a.acct.Live(); got != live {
		return fmt.Errorf("private: live gauge %d, span accounting %d (carved %d, free %d, large %d)",
			got, live, carvedBytes, freeBytes, a.largeLv.Load())
	}
	return nil
}
