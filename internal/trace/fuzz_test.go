package trace

import (
	"bytes"
	"testing"
)

// FuzzDecode checks the binary decoder never panics and never fabricates
// events from arbitrary input: it either errors or returns a trace that
// re-encodes to a decodable equivalent.
func FuzzDecode(f *testing.F) {
	var seed bytes.Buffer
	tr := Synthesize(SynthesizeConfig{Threads: 3, Events: 50, MinSize: 1, MaxSize: 100, Seed: 9})
	tr.Encode(&seed)
	f.Add(seed.Bytes())
	f.Add([]byte{})
	f.Add([]byte("HGTR"))
	f.Add(append(append([]byte{}, seed.Bytes()...), 0xFF, 0x00))
	f.Fuzz(func(t *testing.T, data []byte) {
		got, err := Decode(bytes.NewReader(data))
		if err != nil {
			return
		}
		var out bytes.Buffer
		if err := got.Encode(&out); err != nil {
			t.Fatalf("decoded trace failed to re-encode: %v", err)
		}
		again, err := Decode(&out)
		if err != nil {
			t.Fatalf("re-encoded trace failed to decode: %v", err)
		}
		if len(again.Events) != len(got.Events) {
			t.Fatalf("round trip changed event count: %d -> %d", len(got.Events), len(again.Events))
		}
	})
}
