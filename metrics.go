package hoard

import (
	"fmt"
	"io"
	"net/http"
	"time"

	"hoardgo/internal/core"
	"hoardgo/internal/debugalloc"
	"hoardgo/internal/env"
	"hoardgo/internal/metrics"
	"hoardgo/internal/tcache"
)

// This file is the public face of the observability layer (internal/metrics):
// Prometheus/JSON export of the allocator's counters, per-heap occupancy, and
// lock contention, plus the on-demand and background invariant audit. See
// DESIGN.md §9.

// unwrap peels the debug and thread-cache layers off the allocator stack and
// returns the Hoard core, or nil for other policies.
func (a *Allocator) unwrap() *core.Hoard {
	impl := a.impl
	for {
		switch v := impl.(type) {
		case *core.Hoard:
			return v
		case *debugalloc.Allocator:
			impl = v.Inner()
		case *tcache.Allocator:
			impl = v.Inner()
		default:
			return nil
		}
	}
}

// tcacheLayer returns the thread-cache layer of the allocator stack, or nil.
func (a *Allocator) tcacheLayer() *tcache.Allocator {
	impl := a.impl
	for {
		switch v := impl.(type) {
		case *tcache.Allocator:
			return v
		case *debugalloc.Allocator:
			impl = v.Inner()
		default:
			return nil
		}
	}
}

// sampleMetrics builds one observation of the allocator: counters for every
// policy, per-heap occupancy for Hoard, magazine fill when a thread cache is
// layered, and lock counters when Config.Metrics was set. Safe to call while
// other threads allocate; cross-heap sums are then approximate.
func (a *Allocator) sampleMetrics() metrics.Snapshot {
	s := metrics.NewSnapshot(a.impl.Name())
	st := a.Stats()
	s.Counters["mallocs_total"] = st.Mallocs
	s.Counters["frees_total"] = st.Frees
	s.Counters["live_bytes"] = st.LiveBytes
	s.Counters["peak_live_bytes"] = st.PeakLiveBytes
	s.Counters["footprint_bytes"] = st.FootprintBytes
	s.Counters["peak_footprint_bytes"] = st.PeakFootprintBytes
	s.Counters["reserved_bytes"] = st.ReservedBytes
	s.Counters["peak_reserved_bytes"] = st.PeakReservedBytes
	s.Counters["decommitted_bytes"] = st.DecommittedBytes
	s.Counters["scavenge_passes_total"] = st.ScavengeOps
	s.Counters["scavenged_bytes_total"] = st.ScavengedBytes
	sp := a.impl.Space().Stats()
	s.Counters["decommits_total"] = sp.Decommits
	s.Counters["recommits_total"] = sp.Recommits
	if ss := a.ScavengerStats(); ss.Wakeups > 0 {
		s.Counters["scavenger_wakeups_total"] = ss.Wakeups
		s.Counters["scavenger_backoffs_total"] = ss.Backoffs
	}
	s.Counters["superblock_moves_total"] = st.SuperblockMoves
	s.Counters["remote_frees_total"] = st.RemoteFrees
	s.Counters["remote_fast_frees_total"] = st.RemoteFastFrees
	s.Counters["remote_drains_total"] = st.RemoteDrains
	s.Counters["batch_refills_total"] = st.BatchRefills
	s.Counters["batch_flushes_total"] = st.BatchFlushes
	s.Counters["batched_blocks_total"] = st.BatchedBlocks
	s.Counters["lockfree_mallocs_total"] = st.LockFreeMallocs
	s.Counters["lockfree_frees_total"] = st.LockFreeFrees
	s.Counters["lockfree_cas_retries_total"] = st.FastPathRetries
	if h := a.unwrap(); h != nil {
		for _, occ := range h.SampleHeaps(&env.RealEnv{ID: -1}, true) {
			hs := metrics.HeapSample{
				U:            occ.U,
				A:            occ.A,
				Superblocks:  occ.Superblocks,
				Decommitted:  occ.Decommitted,
				PendingBytes: occ.PendingBytes,
				Groups:       occ.Groups[:],
			}
			for _, c := range occ.Classes {
				hs.Classes = append(hs.Classes, metrics.ClassSample{
					Class:       c.Class,
					BlockSize:   c.BlockSize,
					Superblocks: c.Superblocks,
					InUseBytes:  c.InUseBytes,
					Groups:      c.Groups[:],
				})
			}
			hs.ID = len(s.Heaps)
			s.Heaps = append(s.Heaps, hs)
		}
	}
	if tc := a.tcacheLayer(); tc != nil {
		s.MagazineBytes = tc.MagazineBytes()
	}
	if a.reg != nil {
		s.Locks = a.reg.LockStats()
	}
	if ctl := a.controller(); ctl != nil {
		cs := ctl.Stats()
		sample := &metrics.ControllerSample{
			Ticks:     cs.Ticks,
			IdleTicks: cs.IdleTicks,
			Decisions: cs.Decisions,
			Knobs:     cs.Knobs.Map(),
		}
		for _, d := range cs.Log {
			sample.Log = append(sample.Log, metrics.ControllerDecision(d))
		}
		s.Controller = sample
	}
	return s
}

// WriteMetrics writes the allocator's current state in the Prometheus text
// exposition format: operation counters and live/footprint gauges for every
// policy, per-heap occupancy (u, a, superblocks, fullness groups,
// remote-pending bytes) for Hoard, magazine fill for thread-cached stacks,
// and per-lock acquisition/contention/wait/hold counters when the allocator
// was built with Config.Metrics. Safe under load.
func (a *Allocator) WriteMetrics(w io.Writer) error {
	return a.sampleMetrics().WritePrometheus(w)
}

// WriteMetricsJSON writes the same observation as WriteMetrics as one
// indented JSON document, including the per-class occupancy detail the
// Prometheus form aggregates away.
func (a *Allocator) WriteMetricsJSON(w io.Writer) error {
	return a.sampleMetrics().WriteJSON(w)
}

// LockStats returns per-lock acquisition/contention counters, or nil unless
// the allocator was built with Config.Metrics. The slice is sorted
// worst-contended first.
func (a *Allocator) LockStats() []metrics.LockStats {
	if a.reg == nil {
		return nil
	}
	stats := a.reg.LockStats()
	metrics.SortLockStats(stats)
	return stats
}

// Audit checks structural integrity and the emptiness invariant while the
// allocator remains in service, taking each heap's lock briefly in turn. It
// is the under-load subset of CheckIntegrity (which needs quiescence); for
// non-Hoard policies, which expose no online check, it reports nil.
func (a *Allocator) Audit() error {
	h := a.unwrap()
	if h == nil {
		return nil
	}
	return h.Audit(&env.RealEnv{ID: -1})
}

// StartAuditor runs Audit every interval on a background goroutine until
// StopAuditor. It errors if an auditor is already running or the interval is
// not positive.
func (a *Allocator) StartAuditor(interval time.Duration) error {
	if interval <= 0 {
		return fmt.Errorf("hoard: auditor interval %v", interval)
	}
	a.auditorMu.Lock()
	defer a.auditorMu.Unlock()
	if a.auditor != nil {
		return fmt.Errorf("hoard: auditor already running")
	}
	a.auditor = metrics.NewAuditor(a.Audit)
	a.auditor.Start(interval)
	return nil
}

// StopAuditor halts the background auditor, runs one final audit, and
// reports how many checks passed and failed plus the first violation seen
// (nil when every check passed). With no auditor running it returns zeros.
func (a *Allocator) StopAuditor() (passes, failures int64, err error) {
	a.auditorMu.Lock()
	aud := a.auditor
	a.auditor = nil
	a.auditorMu.Unlock()
	if aud == nil {
		return 0, 0, nil
	}
	err = aud.Stop()
	return aud.Passes(), aud.Failures(), err
}

// LintMetrics validates Prometheus exposition text (as produced by
// WriteMetrics) and returns the first format problem, or nil. Exported so
// the metrics-smoke CI check can lint benchmark artifacts without importing
// internal packages.
func LintMetrics(text string) error { return metrics.LintPrometheus(text) }

// MetricsHandler returns an http.Handler that serves WriteMetrics in the
// Prometheus text exposition format, for mounting on a scrape endpoint:
//
//	http.Handle("/metrics", a.MetricsHandler())
//
// Each request takes a fresh sample; safe under allocation load. See
// examples/metricsserver for a complete scrape target.
func (a *Allocator) MetricsHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		if err := a.WriteMetrics(w); err != nil {
			// Headers are gone; all we can do is note it for the scraper.
			fmt.Fprintf(w, "# metrics write failed: %v\n", err)
		}
	})
}
