package sizeclass

import "testing"

// FuzzClassFor checks the table invariants hold for arbitrary sizes and
// table parameters: the chosen class fits, is minimal, and Size/ClassFor
// are mutually consistent.
func FuzzClassFor(f *testing.F) {
	f.Add(uint16(1), uint8(0))
	f.Add(uint16(4096), uint8(3))
	f.Add(uint16(777), uint8(1))
	bases := []float64{1.05, 1.2, 1.5, 2.0}
	f.Fuzz(func(t *testing.T, rawSize uint16, baseSel uint8) {
		tab := New(bases[int(baseSel)%len(bases)], Quantum, 4096)
		size := int(rawSize)
		c, ok := tab.ClassFor(size)
		if size > tab.MaxSize() {
			if ok {
				t.Fatalf("ClassFor(%d) ok beyond max %d", size, tab.MaxSize())
			}
			return
		}
		if !ok {
			t.Fatalf("ClassFor(%d) not ok within max", size)
		}
		bs := tab.Size(c)
		if bs < size && size > 0 {
			t.Fatalf("class %d size %d < request %d", c, bs, size)
		}
		if c > 0 && size > 0 && tab.Size(c-1) >= size {
			t.Fatalf("class %d not minimal for %d", c, size)
		}
		if c2, ok2 := tab.ClassFor(bs); !ok2 || c2 != c {
			t.Fatalf("ClassFor(Size(%d)) = %d,%v", c, c2, ok2)
		}
	})
}
