package experiments

import (
	"fmt"
	"time"

	"hoardgo/internal/alloc"
	"hoardgo/internal/control"
	"hoardgo/internal/core"
	"hoardgo/internal/env"
	"hoardgo/internal/metrics"
	"hoardgo/internal/tcache"
	"hoardgo/internal/workload"
)

// This file is the A14 experiment: the self-tuning controller ablation
// (DESIGN.md §14). Three arms of the same hoard+tcache stack run the same
// workload in repeated episodes:
//
//   - detuned: deliberately bad static knobs (f=0.05, K=0, magazines of 4)
//     and no controller — the configuration a user who guessed wrong lives
//     with.
//   - tuned: the same bad starting knobs with the controller running; it
//     must discover the problem from the live signals and move the knobs.
//   - oracle: the hand-tuned static configuration (the defaults plus wide
//     magazines) — the target the controller is graded against.
//
// The first episodes are the convergence window; the measured numbers come
// from the final episode only, so the tuned arm is scored on its steady
// state after convergence, not on the bad prefix it was deliberately given.
// cmd/hoardbench serializes the result into BENCH_PR10.json.

// ControlArm is one arm's steady-state measurement.
type ControlArm struct {
	Arm string `json:"arm"`
	// Ops, LockAcquires, and Transfers are final-episode deltas; the rates
	// are per operation. Transfers counts magazine batch refills + flushes —
	// the traffic undersized magazines generate even when the core's
	// lock-free paths absorb the lock cost.
	Ops            int64   `json:"ops"`
	LockAcquires   int64   `json:"lock_acquires"`
	LocksPerOp     float64 `json:"locks_per_op"`
	Transfers      int64   `json:"transfers"`
	TransfersPerOp float64 `json:"transfers_per_op"`
	// FinalCommitted is the committed footprint after the run drained;
	// PeakCommitted the whole-run high-water mark.
	FinalCommitted int64 `json:"final_committed_bytes"`
	PeakCommitted  int64 `json:"peak_committed_bytes"`
	// Controller activity (tuned arm only).
	Ticks      int64              `json:"ticks,omitempty"`
	Decisions  int64              `json:"decisions,omitempty"`
	FinalKnobs map[string]float64 `json:"final_knobs,omitempty"`
}

// ControlResult is one workload's three-arm comparison.
type ControlResult struct {
	Workload string     `json:"workload"`
	Procs    int        `json:"procs"`
	Detuned  ControlArm `json:"detuned"`
	Tuned    ControlArm `json:"tuned"`
	Oracle   ControlArm `json:"oracle"`
	// TransferRatioVsDetuned is tuned transfers/op over detuned's (< 1
	// means the controller beat the bad static config it started from);
	// TransferRatioVsOracle compares against the hand-tuned arm.
	TransferRatioVsDetuned float64 `json:"transfer_ratio_vs_detuned"`
	TransferRatioVsOracle  float64 `json:"transfer_ratio_vs_oracle"`
	// FootprintRatioVsOracle is tuned final committed over oracle's.
	FootprintRatioVsOracle float64 `json:"footprint_ratio_vs_oracle"`
}

// controlArmSpec is one arm's starting configuration.
type controlArmSpec struct {
	name   string
	f      float64 // 0 selects the core default (0.25)
	k      int     // 0 selects the core default (1)
	magCap int
	tune   bool
}

func controlArmSpecs() []controlArmSpec {
	return []controlArmSpec{
		{name: "detuned", f: 0.05, k: core.KNone, magCap: 4},
		{name: "tuned", f: 0.05, k: core.KNone, magCap: 4, tune: true},
		{name: "oracle", magCap: 64},
	}
}

// controlEpisodes returns (convergence episodes, total episodes) for a scale.
func controlEpisodes(scale Scale) int {
	if scale == Quick {
		return 8
	}
	return 20
}

// runControlEpisode plays one episode of the named workload on a fresh
// single-use harness over the arm's shared allocator (a Harness allows one
// Par; the arm's state lives in the allocator, not the harness).
func runControlEpisode(bench string, a alloc.Allocator, procs int, scale Scale) {
	mk := func(int, env.LockFactory) alloc.Allocator { return a }
	h := workload.NewRealMaker("hoard", procs, mk)
	switch bench {
	case "prodcons":
		cfg := workload.DefaultProdCons(procs)
		cfg.Rounds, cfg.Batch = 10, 400
		if scale == Full {
			cfg.Rounds = 40
		}
		workload.ProdCons(h, cfg)
	case "phaseshift":
		cfg := workload.DefaultPhaseShift(procs)
		cfg.Phases = procs
		cfg.LiveObjects = 2000
		workload.PhaseShift(h, cfg)
	case "larson":
		cfg := workload.DefaultLarson(procs)
		cfg.Rounds, cfg.OpsPerRound, cfg.SlotsPerWindow = 2, 2000, 500
		if scale == Full {
			cfg.Rounds = 8
		}
		workload.Larson(h, cfg)
	default:
		panic(fmt.Sprintf("experiments: unknown control workload %q", bench))
	}
}

// measureControlArm runs one arm: episodes of the workload with (tuned arm
// only) the controller live in the background, measuring the final episode.
func measureControlArm(bench string, procs int, spec controlArmSpec, scale Scale) ControlArm {
	clf := &env.CountingLockFactory{Inner: env.RealLockFactory{}}
	reg := metrics.NewRegistry()
	lf := reg.WrapFactory(clf)
	h := core.New(core.Config{Heaps: 2 * procs, EmptyFraction: spec.f, K: spec.k}, lf)
	tc := tcache.New(h, tcache.Config{Capacity: spec.magCap})
	var a alloc.Allocator = tc

	var ctl *control.Controller
	if spec.tune {
		target := control.NewCoreTarget(h, tc, nil, reg)
		ctl = control.NewController(target, control.Config{
			Interval:      time.Millisecond,
			CooldownTicks: 2,
			MinOpsPerTick: 32,
		})
		ctl.Start()
	}

	episodes := controlEpisodes(scale)
	for i := 0; i < episodes-1; i++ {
		runControlEpisode(bench, a, procs, scale)
	}
	// Steady-state window: the final episode's deltas.
	locks0 := clf.Acquires()
	st0 := a.Stats()
	runControlEpisode(bench, a, procs, scale)
	st1 := a.Stats()
	locks1 := clf.Acquires()
	if ctl != nil {
		ctl.Stop()
	}
	if err := a.CheckIntegrity(); err != nil {
		panic(fmt.Sprintf("controlbench: integrity after %s/%s: %v", bench, spec.name, err))
	}

	arm := ControlArm{
		Arm:            spec.name,
		Ops:            (st1.Mallocs + st1.Frees) - (st0.Mallocs + st0.Frees),
		LockAcquires:   locks1 - locks0,
		Transfers:      (st1.BatchRefills + st1.BatchFlushes) - (st0.BatchRefills + st0.BatchFlushes),
		FinalCommitted: a.Space().Committed(),
		PeakCommitted:  a.Space().PeakCommitted(),
	}
	if arm.Ops > 0 {
		arm.LocksPerOp = float64(arm.LockAcquires) / float64(arm.Ops)
		arm.TransfersPerOp = float64(arm.Transfers) / float64(arm.Ops)
	}
	if ctl != nil {
		cs := ctl.Stats()
		arm.Ticks = cs.Ticks
		arm.Decisions = cs.Decisions
		arm.FinalKnobs = cs.Knobs.Map()
	}
	return arm
}

// controlWorkloads is the A14 workload set.
func controlWorkloads() []string { return []string{"prodcons", "phaseshift", "larson"} }

// MeasureControl runs the three-arm ablation on every A14 workload.
func MeasureControl(procs int, scale Scale, progress func(string, int)) []ControlResult {
	var out []ControlResult
	for _, bench := range controlWorkloads() {
		if progress != nil {
			progress("control/"+bench, procs)
		}
		r := ControlResult{Workload: bench, Procs: procs}
		for _, spec := range controlArmSpecs() {
			arm := measureControlArm(bench, procs, spec, scale)
			switch spec.name {
			case "detuned":
				r.Detuned = arm
			case "tuned":
				r.Tuned = arm
			case "oracle":
				r.Oracle = arm
			}
		}
		if r.Detuned.TransfersPerOp > 0 {
			r.TransferRatioVsDetuned = r.Tuned.TransfersPerOp / r.Detuned.TransfersPerOp
		}
		if r.Oracle.TransfersPerOp > 0 {
			r.TransferRatioVsOracle = r.Tuned.TransfersPerOp / r.Oracle.TransfersPerOp
		}
		if r.Oracle.FinalCommitted > 0 {
			r.FootprintRatioVsOracle = float64(r.Tuned.FinalCommitted) / float64(r.Oracle.FinalCommitted)
		}
		out = append(out, r)
	}
	return out
}

// Thresholds the artifact writer and make tune-smoke enforce. Rates on a
// lock-free core are small, so each relative bound carries an absolute floor
// below which the comparison is noise.
const (
	// tuneMaxVsDetuned: the tuned arm must not generate more magazine
	// transfer traffic than the bad static config it started from.
	tuneMaxVsDetuned = 1.05
	// tuneMaxVsOracle / tuneTransferFloor: tuned steady-state transfers/op
	// within 1.5x of the hand-tuned arm, or under the absolute floor.
	tuneMaxVsOracle   = 1.5
	tuneTransferFloor = 0.05
	// tuneMaxFootprint / tuneFootprintFloor: tuned final committed bytes
	// within 1.5x of the oracle arm, or under the absolute floor.
	tuneMaxFootprint   = 1.5
	tuneFootprintFloor = 8 << 20
)

// CheckControl enforces the A14 convergence thresholds over a measured set.
// Returns an error (instead of asserting) so cmd/hoardbench can write the
// artifact and print the numbers before failing.
func CheckControl(rs []ControlResult) error {
	for _, r := range rs {
		t := r.Tuned
		if t.Decisions == 0 {
			return fmt.Errorf("control: %s tuned arm made no decisions — controller never engaged", r.Workload)
		}
		if t.TransfersPerOp > tuneTransferFloor {
			if r.Detuned.TransfersPerOp > 0 && r.TransferRatioVsDetuned > tuneMaxVsDetuned {
				return fmt.Errorf("control: %s tuned arm transfers/op %.4f is %.2fx the detuned arm (limit %.2fx) — controller made it worse",
					r.Workload, t.TransfersPerOp, r.TransferRatioVsDetuned, tuneMaxVsDetuned)
			}
			if r.Oracle.TransfersPerOp > 0 && r.TransferRatioVsOracle > tuneMaxVsOracle {
				return fmt.Errorf("control: %s tuned arm transfers/op %.4f is %.2fx the oracle arm (limit %.2fx) — did not converge",
					r.Workload, t.TransfersPerOp, r.TransferRatioVsOracle, tuneMaxVsOracle)
			}
		}
		if t.FinalCommitted > tuneFootprintFloor && r.Oracle.FinalCommitted > 0 &&
			r.FootprintRatioVsOracle > tuneMaxFootprint {
			return fmt.Errorf("control: %s tuned arm final footprint %d B is %.2fx the oracle arm (limit %.2fx)",
				r.Workload, t.FinalCommitted, r.FootprintRatioVsOracle, tuneMaxFootprint)
		}
	}
	return nil
}

// TuneSmoke is the CI gate (make tune-smoke): the quick-scale three-arm run
// with the convergence thresholds enforced.
func TuneSmoke() ([]ControlResult, error) {
	rs := MeasureControl(4, Quick, nil)
	return rs, CheckControl(rs)
}
