package loadgen

import (
	"fmt"
	"math/rand"
	"runtime"
	"sync"
	"time"

	hoard "hoardgo"
)

// SweepEntry is one (backend × procs) cell of the wall-clock scalability
// sweep.
type SweepEntry struct {
	Backend string `json:"backend"`
	Procs   int    `json:"procs"`
	// NumCPU records the machine's parallelism so a sweep from a 1-core CI
	// box is not misread as a scalability curve.
	NumCPU    int         `json:"num_cpu"`
	Ops       int64       `json:"ops"`
	ElapsedNS int64       `json:"elapsed_ns"`
	OpsPerMS  float64     `json:"ops_per_ms"`
	Malloc    HistSummary `json:"malloc_ns"`
	// Lock counters from the instrumented run: total acquisitions,
	// how many contended, and contention wait amortized per operation.
	LockAcquires    int64   `json:"lock_acquires"`
	LockContended   int64   `json:"lock_contended"`
	LockWaitNSPerOp float64 `json:"lock_wait_ns_per_op"`
}

// SweepProcs returns the worker counts to sweep: powers of two up to
// max(4, NumCPU), with NumCPU itself always included. On a single-core box
// that still yields {1, 2, 4} — oversubscribed cells measure lock-handoff
// behavior rather than parallel speedup, which the recorded NumCPU makes
// explicit.
func SweepProcs() []int {
	n := runtime.NumCPU()
	limit := n
	if limit < 4 {
		limit = 4
	}
	var out []int
	for p := 1; p <= limit; p *= 2 {
		out = append(out, p)
	}
	if out[len(out)-1] != n && n > out[len(out)-1] {
		out = append(out, n)
	}
	return out
}

// sweepHandoffEvery sends every Nth allocation to the neighbor worker, so
// a quarter of all frees are cross-thread — the producer-consumer pattern
// the paper's blowup analysis centers on.
const sweepHandoffEvery = 4

// WallClockSweep measures malloc/free throughput and latency on real
// goroutines against the real clock for each worker count, with every
// internal lock instrumented. Workers churn exponential-sized blocks,
// writing each one, and pass every fourth block to their neighbor, who
// frees it remotely. Returns an error if the requested backend is
// unavailable (the caller decides whether that is fatal).
func WallClockSweep(backend string, procs []int, opsPerWorker int, seed int64) ([]SweepEntry, error) {
	if len(procs) == 0 {
		procs = SweepProcs()
	}
	var out []SweepEntry
	for _, p := range procs {
		e, err := sweepCell(backend, p, opsPerWorker, seed)
		if err != nil {
			return nil, err
		}
		out = append(out, e)
	}
	return out, nil
}

// sweepCell runs one backend × procs measurement on a fresh allocator.
func sweepCell(backend string, procs, opsPerWorker int, seed int64) (SweepEntry, error) {
	a, err := hoard.New(hoard.Config{
		Procs:   procs,
		Backend: backend,
		Metrics: true,
	})
	if err != nil {
		return SweepEntry{}, fmt.Errorf("loadgen sweep: %w", err)
	}
	defer a.Close()
	if backend == "arena" && a.Backend() != "arena" {
		return SweepEntry{}, fmt.Errorf("loadgen sweep: arena backend unavailable: %s", a.BackendFallbackReason())
	}

	sizes := NewSizes(NewExponential(2048, 256), 16, 2048)
	var mallocs Hist

	// Ring of handoff channels: worker w sends to w+1, frees what w-1
	// sends. Each worker closes its outbound when done producing, then
	// drains its inbound to the last block — no allocation outlives the
	// run.
	chans := make([]chan hoard.Ptr, procs)
	for i := range chans {
		chans[i] = make(chan hoard.Ptr, 256)
	}
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < procs; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			th := a.NewThread()
			defer th.Close()
			rng := rand.New(rand.NewSource(seed + int64(w)*0x9E37))
			out, in := chans[(w+1)%procs], chans[w]
			for i := 0; i < opsPerWorker; i++ {
				size := sizes.Next(rng)
				t0 := time.Now()
				ptr := th.Malloc(size)
				mallocs.Record(time.Since(t0).Nanoseconds())
				buf := th.Bytes(ptr, min(size, 64))
				for j := range buf {
					buf[j] = byte(i)
				}
				if i%sweepHandoffEvery == 0 {
					select {
					case out <- ptr:
						ptr = 0
					default:
						// Neighbor's buffer is full; free locally rather
						// than block the measured loop.
					}
				}
				if ptr != 0 {
					th.Free(ptr)
				}
				// Opportunistically absorb the neighbor's handoffs. The
				// neighbor may already have finished and closed the
				// channel — a closed receive reports !ok, not a block.
				for draining := true; draining; {
					select {
					case remote, ok := <-in:
						if !ok {
							draining = false
							break
						}
						th.Free(remote)
					default:
						draining = false
					}
				}
			}
			close(out)
			for remote := range in {
				th.Free(remote)
			}
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start)

	st := a.Stats()
	if st.LiveBytes != 0 {
		return SweepEntry{}, fmt.Errorf("loadgen sweep: %d bytes live after drain on %s/P=%d", st.LiveBytes, backend, procs)
	}
	if err := a.CheckIntegrity(); err != nil {
		return SweepEntry{}, fmt.Errorf("loadgen sweep: integrity on %s/P=%d: %w", backend, procs, err)
	}
	e := SweepEntry{
		Backend:   a.Backend(),
		Procs:     procs,
		NumCPU:    runtime.NumCPU(),
		Ops:       st.Mallocs + st.Frees,
		ElapsedNS: elapsed.Nanoseconds(),
		Malloc:    mallocs.Summary(),
	}
	if e.ElapsedNS > 0 {
		e.OpsPerMS = float64(e.Ops) / (float64(e.ElapsedNS) / 1e6)
	}
	var waitNS int64
	for _, ls := range a.LockStats() {
		e.LockAcquires += ls.Acquires
		e.LockContended += ls.Contended
		waitNS += ls.WaitNS
	}
	if e.Ops > 0 {
		e.LockWaitNSPerOp = float64(waitNS) / float64(e.Ops)
	}
	return e, nil
}
