package scavenge

import (
	"sync"
	"testing"
	"time"
)

const S = 8192 // superblock size the defaults are tuned for

func pacerCfg() Config {
	return Config{
		HighWaterBytes: 8 * S,
		LowWaterBytes:  4 * S,
		BytesPerSec:    1 << 20, // 1 MiB/s
		BurstBytes:     4 * S,
	}
}

func TestConfigDefaultsAndValidation(t *testing.T) {
	c := Config{}.WithDefaults()
	if c.LowWaterBytes != c.HighWaterBytes/2 {
		t.Fatalf("default low watermark %d, want half of %d", c.LowWaterBytes, c.HighWaterBytes)
	}
	if err := (Config{}).Validate(); err != nil {
		t.Fatalf("zero config invalid: %v", err)
	}
	bad := []Config{
		{HighWaterBytes: -1},
		{HighWaterBytes: 100, LowWaterBytes: 200},
		{BytesPerSec: -1},
		{BurstBytes: -1},
		{ColdAge: -time.Second},
		{Interval: -time.Second},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("bad config %d accepted: %+v", i, c)
		}
	}
}

func TestPacerHysteresis(t *testing.T) {
	p := NewPacer(pacerCfg())
	now := int64(0)

	// Below the high watermark: disengaged, no grant.
	if g := p.Grant(8*S, now); g != 0 || p.Engaged() {
		t.Fatalf("grant %d engaged %v at the high watermark, want 0/false", g, p.Engaged())
	}
	// Crossing it engages and grants down toward the LOW watermark.
	if g := p.Grant(9*S, now); g <= 0 || !p.Engaged() {
		t.Fatalf("grant %d engaged %v above the high watermark", g, p.Engaged())
	}
	// While engaged, still granting between the watermarks (hysteresis).
	if g := p.Grant(6*S, now); g <= 0 || !p.Engaged() {
		t.Fatalf("grant %d engaged %v between watermarks while engaged", g, p.Engaged())
	}
	// At the low watermark it disengages and stops granting.
	if g := p.Grant(4*S, now); g != 0 || p.Engaged() {
		t.Fatalf("grant %d engaged %v at the low watermark", g, p.Engaged())
	}
	// Between the watermarks while disengaged: still nothing (the other
	// side of the hysteresis loop).
	if g := p.Grant(6*S, now); g != 0 || p.Engaged() {
		t.Fatalf("grant %d engaged %v between watermarks while disengaged", g, p.Engaged())
	}
}

func TestPacerGrantStopsAtLowWater(t *testing.T) {
	cfg := pacerCfg()
	cfg.BurstBytes = 100 * S // effectively unlimited for this test
	p := NewPacer(cfg)
	if g := p.Grant(10*S, 0); g != 6*S {
		t.Fatalf("grant %d, want down-to-low-watermark %d", g, 6*S)
	}
}

func TestPacerTokenBucket(t *testing.T) {
	p := NewPacer(pacerCfg()) // burst 4S, rate 1 MiB/s
	// First grant starts with a full burst; surplus far exceeds it.
	g := p.Grant(100*S, 0)
	if g != 4*S {
		t.Fatalf("first grant %d, want full burst %d", g, 4*S)
	}
	p.Spend(g)
	// No time elapsed: bucket empty.
	if g := p.Grant(100*S, 0); g != 0 {
		t.Fatalf("grant %d from empty bucket, want 0", g)
	}
	// 8192 bytes at 1 MiB/s take ~7.8ms; after 10ms one superblock fits.
	g = p.Grant(100*S, 10*int64(time.Millisecond))
	if g < S || g >= 2*S {
		t.Fatalf("grant after 10ms refill = %d, want about one superblock", g)
	}
	// A long idle stretch refills to the burst cap, no further.
	p.Spend(g)
	if g := p.Grant(100*S, 10*int64(time.Second)); g != 4*S {
		t.Fatalf("grant after long idle = %d, want burst cap %d", g, 4*S)
	}
}

// fakeTarget is a deterministic Target: a pool of parked bytes that refuses
// while contended.
type fakeTarget struct {
	mu        sync.Mutex
	empty     int64
	contended bool
	calls     int
}

func (f *fakeTarget) EmptyBytes() (int64, bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.contended {
		return 0, false
	}
	return f.empty, true
}

func (f *fakeTarget) Scavenge(maxBytes int64, coldAge time.Duration) (int64, bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.calls++
	if f.contended {
		return 0, false
	}
	// Whole superblocks only, like the real heap.
	n := maxBytes / S * S
	if n > f.empty {
		n = f.empty / S * S
	}
	f.empty -= n
	return n, true
}

func (f *fakeTarget) set(empty int64, contended bool) {
	f.mu.Lock()
	f.empty, f.contended = empty, contended
	f.mu.Unlock()
}

func (f *fakeTarget) get() (int64, bool, int) {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.empty, f.contended, f.calls
}

func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

func scavCfg() Config {
	return Config{
		HighWaterBytes: 4 * S,
		LowWaterBytes:  2 * S,
		ColdAge:        time.Nanosecond,
		Interval:       time.Millisecond,
		BytesPerSec:    1 << 30,
		BurstBytes:     1 << 30,
		MaxBackoff:     50 * time.Millisecond,
	}
}

func TestScavengerDrainsToLowWater(t *testing.T) {
	f := &fakeTarget{empty: 20 * S}
	s := New(f, scavCfg())
	s.Start()
	defer s.Stop()
	waitFor(t, "drain to low watermark", func() bool {
		empty, _, _ := f.get()
		return empty == 2*S
	})
	st := s.Stats()
	if st.ReleasedBytes != 18*S {
		t.Fatalf("ReleasedBytes = %d, want %d", st.ReleasedBytes, 18*S)
	}
	if st.Passes == 0 || st.Wakeups == 0 {
		t.Fatalf("stats %+v", st)
	}
	// Below the watermarks nothing further is released.
	time.Sleep(20 * time.Millisecond)
	if empty, _, _ := f.get(); empty != 2*S {
		t.Fatalf("scavenger went below the low watermark: %d", empty)
	}
}

func TestScavengerBacksOffWhenContended(t *testing.T) {
	f := &fakeTarget{empty: 20 * S, contended: true}
	s := New(f, scavCfg())
	s.Start()
	defer s.Stop()
	waitFor(t, "backoffs to accumulate", func() bool {
		return s.Stats().Backoffs >= 3
	})
	if empty, _, _ := f.get(); empty != 20*S {
		t.Fatal("scavenger released bytes from a contended target")
	}
	// Contention clears; the scavenger recovers and drains.
	f.set(20*S, false)
	waitFor(t, "drain after contention clears", func() bool {
		empty, _, _ := f.get()
		return empty == 2*S
	})
}

func TestScavengerStartStopIdempotent(t *testing.T) {
	f := &fakeTarget{empty: 20 * S}
	s := New(f, scavCfg())
	s.Start()
	s.Start()
	if !s.Running() {
		t.Fatal("not running after Start")
	}
	s.Stop()
	s.Stop()
	if s.Running() {
		t.Fatal("running after Stop")
	}
	// Restart works.
	f.set(20*S, false)
	s.Start()
	waitFor(t, "drain after restart", func() bool {
		empty, _, _ := f.get()
		return empty == 2*S
	})
	s.Stop()
}

// TestPacerWallClockRefill is the wall-clock regression test for the token
// refill: a poll loop ticking every 100µs at a low configured rate. Each
// poll's exact refill is a fraction of a byte, which the old float
// truncation rounded to zero while still advancing the pacer's clock — so
// the bucket never refilled and a real-clock slow drain stalled forever.
// The remainder-carrying integer refill must accumulate the full rate.
func TestPacerWallClockRefill(t *testing.T) {
	p := NewPacer(Config{
		HighWaterBytes: S,
		LowWaterBytes:  S / 2,
		BytesPerSec:    8192, // one byte per 122µs: slower than the poll period
		BurstBytes:     1 << 20,
	})
	now := int64(0)
	p.Grant(100*S, now) // first poll: starts the clock with a full burst
	p.Spend(p.Tokens()) // drain it so only refill feeds the bucket
	const pollNS = 100_000
	for i := 0; i < 10_000; i++ { // exactly one second of 100µs polls
		now += pollNS
		p.Grant(100*S, now)
	}
	if got := p.Tokens(); got != 8192 {
		t.Fatalf("tokens after 1s of 100µs polls at 8192 B/s = %d, want exactly 8192 (sub-byte refills lost)", got)
	}
}

// TestPacerWallClockJitter: refill must be independent of poll cadence —
// irregular wall-clock steps summing to the same elapsed time yield the
// same tokens as one big step (no truncation loss, no double counting).
func TestPacerWallClockJitter(t *testing.T) {
	mk := func() *Pacer {
		p := NewPacer(Config{
			HighWaterBytes: S,
			LowWaterBytes:  S / 2,
			BytesPerSec:    333_333,
			BurstBytes:     1 << 30,
		})
		p.Grant(100*S, 0)
		p.Spend(p.Tokens())
		return p
	}
	steps := []int64{1, 999, 17, 100_000, 3, 50_000, 777_777, 1, 2_000_000, 123}
	var total int64
	jittery := mk()
	now := int64(0)
	for _, dt := range steps {
		now += dt
		total += dt
		jittery.Grant(100*S, now)
	}
	oneShot := mk()
	oneShot.Grant(100*S, total)
	if jittery.Tokens() != oneShot.Tokens() {
		t.Fatalf("jittery polls accrued %d tokens, one big step %d — refill depends on poll cadence", jittery.Tokens(), oneShot.Tokens())
	}
}

// TestPacerClockStepsBackward: a non-monotonic wall clock (NTP step) must
// not mint tokens or corrupt the remainder.
func TestPacerClockStepsBackward(t *testing.T) {
	p := NewPacer(pacerCfg())
	p.Grant(100*S, 1_000_000)
	p.Spend(p.Tokens())
	if g := p.Grant(100*S, 500_000); g != 0 {
		t.Fatalf("grant %d after clock stepped backward, want 0", g)
	}
	// Time resumes: refill counts only from the high-water mark of the
	// clock, not from the backward excursion.
	if g := p.Grant(100*S, 1_000_000+10*int64(time.Millisecond)); g <= 0 {
		t.Fatalf("grant %d after clock recovered, want > 0", g)
	}
}

// TestScavengerWallClockSlowDrain drives the real background goroutine with
// time.Now pacing through a slow drain: a parked pool must dribble out at
// the configured rate — neither stalling (the refill-truncation bug) nor
// dumping in one pass (the burst cap), and the poll loop must not spin
// (wakeups bounded by elapsed/Interval).
func TestScavengerWallClockSlowDrain(t *testing.T) {
	const pool = 64 * S // 512 KiB parked
	f := &fakeTarget{empty: pool}
	s := New(f, Config{
		HighWaterBytes: 2 * S,
		LowWaterBytes:  S,
		ColdAge:        time.Nanosecond,
		Interval:       time.Millisecond,
		BytesPerSec:    2 << 20, // ~250ms to drain the pool
		BurstBytes:     4 * S,   // at most 4 superblocks per pass
		MaxBackoff:     50 * time.Millisecond,
	})
	start := time.Now()
	s.Start()
	defer s.Stop()
	waitFor(t, "paced slow drain to the low watermark", func() bool {
		empty, _, _ := f.get()
		return empty <= S
	})
	elapsed := time.Since(start)
	s.Stop()
	st := s.Stats()
	if st.ReleasedBytes != pool-S {
		t.Fatalf("ReleasedBytes = %d, want %d", st.ReleasedBytes, pool-S)
	}
	// The token bucket admits BurstBytes up front, then BytesPerSec: the
	// drain cannot legally complete faster than (pool - burst - low)/rate
	// ≈ 226ms. Finishing well under that means pacing was bypassed.
	if minimum := 150 * time.Millisecond; elapsed < minimum {
		t.Fatalf("slow drain finished in %v, want >= %v (pacing bypassed)", elapsed, minimum)
	}
	// No zero-interval spin: the poll loop may wake at most once per
	// Interval plus scheduling slop; 100x elapsed/interval is a generous
	// ceiling that still catches a busy loop (which would log millions).
	maxWakeups := 100 * int64(elapsed/time.Millisecond+1)
	if st.Wakeups > maxWakeups {
		t.Fatalf("wakeups = %d over %v with a 1ms interval — poll loop is spinning", st.Wakeups, elapsed)
	}
}

// TestScavengerLiveRetune is the regression test for watermarks frozen at
// Start: the loop's pacer used to copy the config once when the goroutine
// launched, so SetWatermarks/SetRate from the self-tuning controller (or a
// manual caller) silently did nothing until a Stop/Start bounce. The loop
// must re-read the knobs every tick.
func TestScavengerLiveRetune(t *testing.T) {
	const pool = 20 * S
	f := &fakeTarget{empty: pool}
	cfg := scavCfg()
	cfg.HighWaterBytes = 2 * pool // parked bytes sit far below: never engages
	cfg.LowWaterBytes = pool
	s := New(f, cfg)
	s.Start()
	defer s.Stop()

	// With the watermark above the pool nothing may be released, no matter
	// how long the loop runs.
	waitFor(t, "loop to run some polls", func() bool { return s.Stats().Wakeups >= 5 })
	if empty, _, _ := f.get(); empty != pool {
		t.Fatalf("released %d bytes below the high watermark", pool-empty)
	}

	// Lower the watermarks on the RUNNING scavenger. The next poll must
	// see them and drain to the new low watermark without a Stop/Start.
	if err := s.SetWatermarks(4*S, 2*S); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "drain to the retuned low watermark", func() bool {
		empty, _, _ := f.get()
		return empty == 2*S
	})
	if high, low := s.Watermarks(); high != 4*S || low != 2*S {
		t.Fatalf("Watermarks = (%d, %d), want (%d, %d)", high, low, 4*S, 2*S)
	}

	// Retune the other direction: raise the watermark mid-run and refill
	// the pool; the loop must go quiet again at the new thresholds.
	if err := s.SetWatermarks(2*pool, pool); err != nil {
		t.Fatal(err)
	}
	f.set(pool, false)
	_, _, callsBefore := f.get()
	waitFor(t, "polls after re-raise", func() bool { return s.Stats().Wakeups >= 40 })
	if empty, _, calls := f.get(); empty != pool && calls > callsBefore {
		t.Fatalf("released %d bytes after the watermark was raised", pool-empty)
	}

	// Invalid retunes are rejected and leave the running values alone.
	if err := s.SetWatermarks(S, 2*S); err == nil {
		t.Fatal("low > high accepted")
	}
	if err := s.SetRate(-1, S); err == nil {
		t.Fatal("negative rate accepted")
	}
	if high, low := s.Watermarks(); high != 2*pool || low != pool {
		t.Fatalf("rejected retune leaked: (%d, %d)", high, low)
	}
}

// TestScavengerRateRetune proves a live SetRate change takes effect: a
// crawling rate is raised mid-drain and the remaining pool must drain
// promptly afterwards.
func TestScavengerRateRetune(t *testing.T) {
	const pool = 256 * S
	f := &fakeTarget{empty: pool}
	cfg := scavCfg()
	cfg.BytesPerSec = 1 // effectively frozen
	cfg.BurstBytes = S
	s := New(f, cfg)
	s.Start()
	defer s.Stop()

	// At 1 B/s the initial burst is all that can move.
	waitFor(t, "initial polls", func() bool { return s.Stats().Wakeups >= 5 })
	if empty, _, _ := f.get(); pool-empty > S {
		t.Fatalf("released %d bytes at a 1 B/s rate", pool-empty)
	}

	if err := s.SetRate(1<<30, 1<<30); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "drain after live rate raise", func() bool {
		empty, _, _ := f.get()
		return empty == 2*S // scavCfg's LowWaterBytes
	})
}
