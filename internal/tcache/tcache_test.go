package tcache

import (
	"sync"
	"testing"

	"hoardgo/internal/alloc"
	"hoardgo/internal/alloctest"
	"hoardgo/internal/core"
	"hoardgo/internal/env"
	"hoardgo/internal/serial"
)

var lf = env.RealLockFactory{}

func newOverHoard(capacity int) *Allocator {
	return New(core.New(core.Config{Heaps: 4}, lf), Config{Capacity: capacity})
}

// Conformance note: the suite's "LiveBytes == 0 after frees" checks observe
// the tcache-level stats, which treat cached blocks as free — exactly the
// application's view.
func TestConformanceOverHoard(t *testing.T) {
	alloctest.Run(t, func() alloc.Allocator { return newOverHoard(16) })
}

func TestConformanceOverSerial(t *testing.T) {
	alloctest.Run(t, func() alloc.Allocator {
		return New(serial.New(0, lf), Config{Capacity: 16})
	})
}

func TestCacheHitAvoidsInner(t *testing.T) {
	a := newOverHoard(32)
	th := a.NewThread(&env.RealEnv{})
	p := a.Malloc(th, 64)
	innerMallocs := a.Inner().Stats().Mallocs
	a.Free(th, p) // into magazine
	q := a.Malloc(th, 64)
	if q != p {
		t.Fatalf("cache did not return the freed block: %#x vs %#x", uint64(q), uint64(p))
	}
	if got := a.Inner().Stats().Mallocs; got != innerMallocs {
		t.Fatalf("cache hit reached the inner allocator (%d -> %d mallocs)", innerMallocs, got)
	}
	a.Free(th, q)
}

func TestRefillBatches(t *testing.T) {
	const capacity = 16
	a := newOverHoard(capacity)
	th := a.NewThread(&env.RealEnv{})
	a.Malloc(th, 64)
	// One refill fetched Capacity/2 blocks from the inner allocator.
	if got := a.Inner().Stats().Mallocs; got != capacity/2 {
		t.Fatalf("inner mallocs = %d, want one batch of %d", got, capacity/2)
	}
	// The next Capacity/2-1 mallocs are free hits.
	for i := 0; i < capacity/2-1; i++ {
		a.Malloc(th, 64)
	}
	if got := a.Inner().Stats().Mallocs; got != capacity/2 {
		t.Fatalf("inner mallocs grew to %d during cached phase", got)
	}
}

func TestFlushAtCapacity(t *testing.T) {
	const capacity = 8
	a := newOverHoard(capacity)
	th := a.NewThread(&env.RealEnv{})
	var ps []alloc.Ptr
	for i := 0; i < 3*capacity; i++ {
		ps = append(ps, a.Malloc(th, 64))
	}
	for _, p := range ps {
		a.Free(th, p)
	}
	ts := th.State.(*threadState)
	class, _ := a.classFor(64)
	if got := len(ts.mags[class]); got > capacity {
		t.Fatalf("magazine holds %d > capacity %d", got, capacity)
	}
	if innerFrees := a.Inner().Stats().Frees; innerFrees == 0 {
		t.Fatal("no flush reached the inner allocator")
	}
	if err := a.CheckIntegrity(); err != nil {
		t.Fatal(err)
	}
}

func TestCachedBytesAndFlushThread(t *testing.T) {
	a := newOverHoard(16)
	th := a.NewThread(&env.RealEnv{})
	for i := 0; i < 8; i++ {
		a.Free(th, a.Malloc(th, 64))
	}
	if got := a.CachedBytes(); got == 0 {
		t.Fatal("nothing cached after frees")
	}
	a.FlushThread(th)
	if got := a.CachedBytes(); got != 0 {
		t.Fatalf("CachedBytes = %d after FlushThread", got)
	}
	if got := a.Inner().Stats().LiveBytes; got != 0 {
		t.Fatalf("inner LiveBytes = %d after full flush", got)
	}
	if err := a.CheckIntegrity(); err != nil {
		t.Fatal(err)
	}
}

func TestLargeBypassesCache(t *testing.T) {
	a := newOverHoard(16)
	th := a.NewThread(&env.RealEnv{})
	p := a.Malloc(th, 100000)
	a.Free(th, p)
	if got := a.CachedBytes(); got != 0 {
		t.Fatalf("large block cached: %d bytes", got)
	}
}

// TestPassiveFalseSharingReturns documents the tradeoff: with a thread
// cache, a block freed by thread B is re-issued to thread B even though
// thread A's heap owns it — the migration Hoard's free-to-owner rule
// prevents.
func TestPassiveFalseSharingReturns(t *testing.T) {
	a := newOverHoard(16)
	ta := a.NewThread(&env.RealEnv{ID: 0})
	tb := a.NewThread(&env.RealEnv{ID: 1})
	p := a.Malloc(ta, 64)
	a.Free(tb, p) // lands in B's magazine, not A's heap
	q := a.Malloc(tb, 64)
	if q != p {
		t.Fatalf("expected B to receive A's block from its magazine")
	}
	a.Free(tb, q)
	// Without the cache, Hoard would have returned p to A's superblock:
	bare := core.New(core.Config{Heaps: 4}, lf)
	ba := bare.NewThread(&env.RealEnv{ID: 0})
	bb := bare.NewThread(&env.RealEnv{ID: 1})
	p2 := bare.Malloc(ba, 64)
	bare.Free(bb, p2)
	if q2 := bare.Malloc(bb, 64); q2 == p2 {
		t.Fatal("bare Hoard unexpectedly re-issued a remotely-freed block to the freeing thread")
	}
}

func TestIntegrityCatchesDoubleCache(t *testing.T) {
	a := newOverHoard(16)
	th := a.NewThread(&env.RealEnv{})
	p := a.Malloc(th, 64)
	ts := th.State.(*threadState)
	class, _ := a.classFor(64)
	ts.mags[class] = append(ts.mags[class], p, p) // corrupt deliberately
	if err := a.CheckIntegrity(); err == nil {
		t.Fatal("integrity missed a double-cached block")
	}
}

func TestBadCapacityPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("capacity 1 accepted")
		}
	}()
	New(serial.New(0, lf), Config{Capacity: 1})
}

func BenchmarkCachedMallocFree(b *testing.B) {
	a := newOverHoard(64)
	th := a.NewThread(&env.RealEnv{})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a.Free(th, a.Malloc(th, 64))
	}
}

func TestRefillUsesNativeBatch(t *testing.T) {
	const capacity = 16
	a := newOverHoard(capacity)
	th := a.NewThread(&env.RealEnv{})
	a.Malloc(th, 64)
	st := a.Stats()
	if st.BatchRefills != 1 || st.BatchedBlocks != capacity/2 {
		t.Fatalf("BatchRefills=%d BatchedBlocks=%d, want 1 refill of %d blocks",
			st.BatchRefills, st.BatchedBlocks, capacity/2)
	}
	// Overflow the magazine: the flush must also go through the batch path.
	var ps []alloc.Ptr
	for i := 0; i < 2*capacity; i++ {
		ps = append(ps, a.Malloc(th, 64))
	}
	for _, p := range ps {
		a.Free(th, p)
	}
	if st := a.Stats(); st.BatchFlushes == 0 {
		t.Fatal("magazine overflow never took the native FreeBatch path")
	}
}

// TestFallbackShim runs the cache over an inner allocator whose native batch
// path is hidden by alloc.NoBatch: everything must still work through the
// generic per-block shims, and the batch counters must honestly stay zero.
func TestFallbackShim(t *testing.T) {
	const capacity = 16
	a := New(alloc.NoBatch{Allocator: core.New(core.Config{Heaps: 4}, lf)}, Config{Capacity: capacity})
	th := a.NewThread(&env.RealEnv{})
	var ps []alloc.Ptr
	for i := 0; i < 3*capacity; i++ {
		ps = append(ps, a.Malloc(th, 64))
	}
	for _, p := range ps {
		a.Free(th, p)
	}
	a.FlushThread(th)
	st := a.Stats()
	if st.BatchRefills != 0 || st.BatchFlushes != 0 || st.BatchedBlocks != 0 {
		t.Fatalf("fallback path reported batch counters: %+v", st)
	}
	if st.Mallocs != int64(3*capacity) || st.Frees != int64(3*capacity) {
		t.Fatalf("ops lost through the shim: %+v", st)
	}
	if err := a.CheckIntegrity(); err != nil {
		t.Fatal(err)
	}
}

func TestFlushThreadDeregisters(t *testing.T) {
	a := newOverHoard(16)
	t0 := a.NewThread(&env.RealEnv{ID: 0})
	t1 := a.NewThread(&env.RealEnv{ID: 1})
	if got := a.Threads(); got != 2 {
		t.Fatalf("Threads = %d, want 2", got)
	}
	for i := 0; i < 8; i++ {
		a.Free(t0, a.Malloc(t0, 64))
	}
	a.FlushThread(t0)
	if got := a.Threads(); got != 1 {
		t.Fatalf("Threads = %d after FlushThread, want 1", got)
	}
	// A stale handle stays usable but bypasses the magazines, so nothing
	// can be stranded in a cache the allocator no longer tracks.
	p := a.Malloc(t0, 64)
	a.Free(t0, p)
	if got := a.CachedBytes(); got != 0 {
		t.Fatalf("retired thread cached %d bytes", got)
	}
	if live := a.Stats().LiveBytes; live != 0 {
		t.Fatalf("LiveBytes = %d", live)
	}
	a.FlushThread(t1)
	if got := a.Threads(); got != 0 {
		t.Fatalf("Threads = %d after flushing all, want 0", got)
	}
	if err := a.CheckIntegrity(); err != nil {
		t.Fatal(err)
	}
}

// TestConcurrentChurnAndFlush churns goroutines through malloc/free/
// FlushThread concurrently — under -race this is the thread-lifecycle
// regression test for the deregistration path.
func TestConcurrentChurnAndFlush(t *testing.T) {
	a := newOverHoard(16)
	const workers = 8
	const rounds = 30
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func(id int) {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				th := a.NewThread(&env.RealEnv{ID: id*rounds + r})
				var ps []alloc.Ptr
				for i := 0; i < 40; i++ {
					ps = append(ps, a.Malloc(th, 16+(i%5)*32))
				}
				// Free a third per-block, the rest through the generic
				// batch shim (which lands in the magazines and flushes).
				var rest []alloc.Ptr
				for i, p := range ps {
					if i%3 == 0 {
						a.Free(th, p)
					} else {
						rest = append(rest, p)
					}
				}
				alloc.FreeBatch(a, th, rest)
				a.FlushThread(th)
			}
		}(w)
	}
	wg.Wait()
	if got := a.Threads(); got != 0 {
		t.Fatalf("Threads = %d after all workers flushed, want 0", got)
	}
	if h, ok := a.Inner().(*core.Hoard); ok {
		h.Reconcile(&env.RealEnv{})
	}
	if live := a.Stats().LiveBytes; live != 0 {
		t.Fatalf("LiveBytes = %d after churn", live)
	}
	if err := a.CheckIntegrity(); err != nil {
		t.Fatal(err)
	}
}

// TestRefillSteadyStateAllocFree pins down the scratch-buffer contract:
// once the magazine slice and staging buffer have grown, an
// underflow-refill-drain cycle performs no Go allocation at all.
func TestRefillSteadyStateAllocFree(t *testing.T) {
	const capacity = 32
	a := newOverHoard(capacity)
	th := a.NewThread(&env.RealEnv{})
	ts := th.State.(*threadState)
	buf := make([]alloc.Ptr, capacity/2)
	cycle := func() {
		// Drain the magazine: the first Malloc underflows and refills
		// capacity/2 blocks, the rest are cache hits, leaving it empty.
		for i := range buf {
			buf[i] = a.Malloc(th, 64)
		}
		// Return the blocks to the inner allocator directly so the next
		// cycle's refill pulls them back — steady state, no growth.
		for _, p := range buf {
			a.inner.Free(ts.inner, p)
		}
	}
	cycle() // warm up: grow the magazine slice and scratch buffer once
	if got := testing.AllocsPerRun(50, cycle); got != 0 {
		t.Fatalf("steady-state refill cycle allocates %.1f times per run, want 0", got)
	}
}

// TestMagazineBytesTracksCachedBytes pins the gauge's boundary-publication
// contract: after balanced churn each magazine sits at exactly its
// post-refill fill, so the published gauge matches CachedBytes; between
// boundaries the fast paths leave it stale by the unpublished pops.
func TestMagazineBytesTracksCachedBytes(t *testing.T) {
	a := newOverHoard(16)
	t0 := a.NewThread(&env.RealEnv{ID: 0})
	t1 := a.NewThread(&env.RealEnv{ID: 1})
	for i := 0; i < 10; i++ {
		a.Free(t0, a.Malloc(t0, 64))
		a.Free(t1, a.Malloc(t1, 256))
	}
	if a.MagazineBytes() == 0 {
		t.Fatal("gauge empty after cached frees")
	}
	if gauge, exact := a.MagazineBytes(), a.CachedBytes(); gauge != exact {
		t.Fatalf("boundary gauge %d != CachedBytes %d", gauge, exact)
	}
	// A cache-hit pop is not a transfer boundary: the gauge must hold the
	// last published value, now stale by exactly the popped block.
	p := a.Malloc(t0, 64)
	if gauge, exact := a.MagazineBytes(), a.CachedBytes(); gauge != exact+64 {
		t.Fatalf("mid-burst gauge %d, want published %d (exact %d + popped 64)",
			gauge, exact+64, exact)
	}
	a.Free(t0, p)
	a.FlushThread(t0)
	if gauge, exact := a.MagazineBytes(), a.CachedBytes(); gauge != exact {
		t.Fatalf("after FlushThread gauge %d != CachedBytes %d", gauge, exact)
	}
	a.FlushThread(t1)
	if got := a.MagazineBytes(); got != 0 {
		t.Fatalf("gauge %d after flushing every thread", got)
	}
}

// BenchmarkRefillCycle measures the underflow path; run with -benchmem (the
// benchmark reports allocations) to see the scratch buffer keeping the
// steady-state refill allocation-free.
func BenchmarkRefillCycle(b *testing.B) {
	const capacity = 64
	a := newOverHoard(capacity)
	th := a.NewThread(&env.RealEnv{})
	ts := th.State.(*threadState)
	buf := make([]alloc.Ptr, capacity/2)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j := range buf {
			buf[j] = a.Malloc(th, 64)
		}
		for _, p := range buf {
			a.inner.Free(ts.inner, p)
		}
	}
}
