// Command hoardload is the traffic-shaped serving benchmark: it drives the
// allocator through internal/loadgen's open-loop engine — diurnal ramp,
// hotspot shift, burst spike, slow drain — against the wall clock, records
// malloc/free and end-to-end request latency in HDR-style histograms with
// p50/p99/p999/max, samples the committed-bytes and lock-contention
// timeline, and runs the 1..NumCPU wall-clock scalability sweep with
// instrumented locks on both the sim and arena backends.
//
// Usage:
//
//	hoardload [-scale quick|full] [-backends sim,arena] [-workers N] [-seed N]
//	hoardload -artifact BENCH_PR9.json       # write the committed record
//	hoardload -smoke                         # enforce the CI SLO thresholds
//	hoardload -tune -smoke                   # add the self-tuning arm: the same
//	                                         # schedule from deliberately bad
//	                                         # knobs with the controller live,
//	                                         # held to the same SLOs
//
// The request stream is deterministic under -seed; wall-clock latencies are
// machine-dependent, which is why the artifact records the host's CPU count
// and the provenance stamp records the configuration.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	hoard "hoardgo"
	"hoardgo/internal/core"
	"hoardgo/internal/loadgen"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "hoardload:", err)
		os.Exit(1)
	}
}

// shape is the scale-dependent workload geometry.
type shape struct {
	Keys      int64
	SizeMin   int
	SizeMax   int
	PhaseDur  time.Duration
	PeakRate  float64
	SweepOps  int
	TCacheCap int
}

func shapeFor(scale string) (shape, error) {
	switch scale {
	case "quick":
		return shape{
			Keys: 4096, SizeMin: 16, SizeMax: 2048,
			PhaseDur: 250 * time.Millisecond, PeakRate: 8000,
			SweepOps: 20000, TCacheCap: 64,
		}, nil
	case "full":
		return shape{
			Keys: 65536, SizeMin: 16, SizeMax: 4096,
			PhaseDur: 1200 * time.Millisecond, PeakRate: 20000,
			SweepOps: 120000, TCacheCap: 64,
		}, nil
	default:
		return shape{}, fmt.Errorf("unknown -scale %q (want quick or full)", scale)
	}
}

func run() error {
	var (
		scaleFlag = flag.String("scale", "quick", "workload scale: quick or full")
		backends  = flag.String("backends", "sim,arena", "engine/sweep backends, comma separated")
		workers   = flag.Int("workers", 4, "serving workers (engine goroutines)")
		seed      = flag.Int64("seed", 1, "request-stream seed (keys, sizes, ordering)")
		artifact  = flag.String("artifact", "", "write the benchmark artifact to this JSON file")
		smoke     = flag.Bool("smoke", false, "enforce the smoke thresholds (tail-latency SLOs, drained footprint, sweep sanity) and fail on violation")
		tune      = flag.Bool("tune", false, "add the self-tuning arm: run the schedule once more from deliberately detuned knobs (f=0.05, K=0, magazines of 4) with the background controller enabled; the smoke thresholds apply to it unchanged")
		verbose   = flag.Bool("v", false, "print progress to stderr")
	)
	flag.Parse()

	sh, err := shapeFor(*scaleFlag)
	if err != nil {
		return err
	}
	progress := func(format string, args ...any) {
		if *verbose {
			fmt.Fprintf(os.Stderr, "  "+format+"\n", args...)
		}
	}

	art := newArtifact(*scaleFlag, sh, *workers, *seed)
	for _, backend := range strings.Split(*backends, ",") {
		backend = strings.TrimSpace(backend)
		progress("engine on %s: 4 phases x %v at peak %.0f req/s", backend, sh.PhaseDur, sh.PeakRate)
		er, err := runEngine(backend, sh, *workers, *seed)
		if err != nil {
			if backend == "arena" {
				// No real-memory backend on this platform: record the
				// skip, keep the artifact reproducible elsewhere.
				art.EngineSkips = append(art.EngineSkips, fmt.Sprintf("%s: %v", backend, err))
				progress("engine on %s skipped: %v", backend, err)
				continue
			}
			return err
		}
		art.Engine = append(art.Engine, er)

		progress("sweep on %s: procs %v, %d ops/worker", backend, loadgen.SweepProcs(), sh.SweepOps)
		entries, err := loadgen.WallClockSweep(backend, loadgen.SweepProcs(), sh.SweepOps, *seed)
		if err != nil {
			if backend == "arena" {
				art.SweepSkips = append(art.SweepSkips, fmt.Sprintf("%s: %v", backend, err))
				progress("sweep on %s skipped: %v", backend, err)
				continue
			}
			return err
		}
		art.Sweep = append(art.Sweep, entries...)
	}

	if *tune {
		progress("tuned engine on sim: controller from detuned defaults")
		er, err := runTunedEngine(sh, *workers, *seed)
		if err != nil {
			return err
		}
		art.Engine = append(art.Engine, er)
	}

	if *smoke {
		if err := checkSmoke(art); err != nil {
			return fmt.Errorf("smoke thresholds: %w", err)
		}
		fmt.Println("smoke thresholds passed")
	}
	report(art)
	if *artifact != "" {
		if err := writeArtifact(*artifact, art); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", *artifact)
	}
	return nil
}

// runEngine plays the standard traffic schedule on one backend and returns
// the engine record: the phase results, the timeline, and the
// post-drain/post-release footprint that measures retention debt.
func runEngine(backend string, sh shape, workers int, seed int64) (engineRun, error) {
	a, err := hoard.New(hoard.Config{
		Procs:               workers,
		Backend:             backend,
		ThreadCacheCapacity: sh.TCacheCap,
		Metrics:             true,
		Scavenge: hoard.ScavengeConfig{
			Enabled:  true,
			Interval: 5 * time.Millisecond,
			ColdAge:  20 * time.Millisecond,
		},
	})
	if err != nil {
		return engineRun{}, err
	}
	defer a.Close()
	if backend == "arena" && a.Backend() != "arena" {
		return engineRun{}, fmt.Errorf("arena backend unavailable: %s", a.BackendFallbackReason())
	}
	return driveEngine(a, backend, sh, workers, seed)
}

// runTunedEngine is the -tune arm: the same schedule on the sim backend, but
// starting from deliberately bad static knobs — an aggressive empty fraction,
// no slack, and four-block magazines — with the self-tuning controller
// running. The smoke thresholds judge it exactly like the static arms.
func runTunedEngine(sh shape, workers int, seed int64) (engineRun, error) {
	a, err := hoard.New(hoard.Config{
		Procs:               workers,
		Backend:             "sim",
		ThreadCacheCapacity: 4,
		Hoard:               core.Config{EmptyFraction: 0.05, K: core.KNone},
		Metrics:             true,
		Scavenge: hoard.ScavengeConfig{
			Enabled:  true,
			Interval: 5 * time.Millisecond,
			ColdAge:  20 * time.Millisecond,
		},
		Control: hoard.ControlConfig{
			Enabled:       true,
			Interval:      2 * time.Millisecond,
			CooldownTicks: 2,
			MinOpsPerTick: 32,
		},
	})
	if err != nil {
		return engineRun{}, err
	}
	defer a.Close()
	er, err := driveEngine(a, "sim", sh, workers, seed)
	if err != nil {
		return er, err
	}
	cs := a.StopController()
	er.Tuned = true
	er.Controller = &cs
	return er, nil
}

// driveEngine plays the schedule on an already-built allocator and collects
// the run record. The caller keeps ownership of a (and Closes it); any
// controller snapshot is also the caller's to take — this helper only stops
// the scavenger, whose activity belongs in every record.
func driveEngine(a *hoard.Allocator, backend string, sh shape, workers int, seed int64) (engineRun, error) {
	phases := loadgen.StandardPhases(sh.Keys, sh.SizeMin, sh.SizeMax, sh.PhaseDur, sh.PeakRate)
	res, err := loadgen.Run(loadgen.Config{
		Allocator: a,
		Workers:   workers,
		Slots:     int(sh.Keys),
		Seed:      seed,
	}, phases)
	if err != nil {
		return engineRun{}, fmt.Errorf("engine on %s: %w", backend, err)
	}

	er := engineRun{
		Backend:   a.Backend(),
		Workers:   workers,
		Scavenger: a.StopScavenger(),
		Result:    res,
	}
	for _, pt := range res.Timeline {
		if pt.FootprintBytes > er.PeakFootprintBytes {
			er.PeakFootprintBytes = pt.FootprintBytes
		}
	}
	st := a.Stats()
	if st.PeakFootprintBytes > er.PeakFootprintBytes {
		er.PeakFootprintBytes = st.PeakFootprintBytes
	}
	// The drained allocator holds only empty superblocks; a forced release
	// (malloc_trim) should strip the footprint to near nothing. What
	// remains is the allocator's irreducible retention.
	er.ReleasedBytes = a.ReleaseMemory()
	er.FinalFootprintBytes = a.Stats().FootprintBytes
	return er, nil
}

// report prints the human summary: per phase tail latencies, then the sweep.
func report(art *artifact) {
	for _, er := range art.Engine {
		label := er.Backend
		if er.Tuned {
			label += " (tuned)"
		}
		fmt.Printf("engine %s (%d workers): %d requests, %d dropped, peak footprint %d KiB, after release %d KiB\n",
			label, er.Workers, er.Result.Requests, er.Result.Dropped,
			er.PeakFootprintBytes/1024, er.FinalFootprintBytes/1024)
		if er.Tuned && er.Controller != nil {
			fmt.Printf("  controller: %d ticks, %d decisions\n", er.Controller.Ticks, er.Controller.Decisions)
		}
		for _, ph := range er.Result.Phases {
			fmt.Printf("  %-14s %7d req  malloc p50/p99/p999 %s/%s/%s  request p50/p99/p999 %s/%s/%s\n",
				ph.Name, ph.Requests,
				ns(ph.Malloc.P50), ns(ph.Malloc.P99), ns(ph.Malloc.P999),
				ns(ph.Request.P50), ns(ph.Request.P99), ns(ph.Request.P999))
		}
	}
	for _, e := range art.Sweep {
		fmt.Printf("sweep %s P=%d (ncpu %d): %.0f ops/ms, malloc p99 %s, %.1f lock-wait ns/op\n",
			e.Backend, e.Procs, e.NumCPU, e.OpsPerMS, ns(e.Malloc.P99), e.LockWaitNSPerOp)
	}
	for _, s := range append(append([]string(nil), art.EngineSkips...), art.SweepSkips...) {
		fmt.Printf("skipped: %s\n", s)
	}
}

// ns renders a nanosecond latency compactly.
func ns(v int64) string {
	switch {
	case v >= 1e6:
		return fmt.Sprintf("%.1fms", float64(v)/1e6)
	case v >= 1e3:
		return fmt.Sprintf("%.1fµs", float64(v)/1e3)
	default:
		return fmt.Sprintf("%dns", v)
	}
}
