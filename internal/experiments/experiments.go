// Package experiments defines and runs every experiment of the paper's
// evaluation: the seven speedup/throughput figures (F1-F7), the
// fragmentation, uniprocessor-overhead, and blowup tables (T2-T4), and the
// ablations (A1-A5) over Hoard's parameters and the simulator's cost model.
// DESIGN.md carries the experiment index; cmd/hoardbench is the CLI front
// end; bench_test.go exposes each experiment as a testing.B benchmark.
package experiments

import (
	"fmt"
	"io"

	"hoardgo/internal/allocators"
	"hoardgo/internal/simproc"
	"hoardgo/internal/workload"
)

// Scale selects experiment sizing.
type Scale int

// Scales.
const (
	// Quick shrinks workloads for fast runs (CI, -quick).
	Quick Scale = iota
	// Full approximates the paper's workload sizes.
	Full
)

// Options configures a run of the experiment suite.
type Options struct {
	// Scale selects Quick or Full sizing.
	Scale Scale
	// Procs are the processor counts swept by the figures (the paper
	// sweeps 1..14).
	Procs []int
	// Allocs are the allocator names to compare.
	Allocs []string
	// Cost is the simulator's cost model.
	Cost simproc.CostModel
}

// Defaults returns the paper-shaped options at the given scale.
func Defaults(scale Scale) Options {
	procs := []int{1, 2, 4, 6, 8, 10, 12, 14}
	if scale == Quick {
		procs = []int{1, 2, 4, 8, 14}
	}
	return Options{
		Scale:  scale,
		Procs:  procs,
		Allocs: allocators.Names(),
		Cost:   simproc.DefaultCosts,
	}
}

// Runner executes one benchmark on a harness with the given thread count.
type Runner func(h *workload.Harness, threads int) workload.Result

// FigureDef describes one speedup/throughput figure.
type FigureDef struct {
	// ID is the experiment id used on the command line.
	ID string
	// Title and Paper describe the figure ("threadtest", "Figure:
	// speedup on threadtest").
	Title, Paper string
	// Metric is "speedup" or "throughput" — how the paper presents it.
	Metric string
	// Run builds the benchmark at the given scale.
	Run func(scale Scale) Runner
}

// Figures lists F1-F7 in paper order.
func Figures() []FigureDef {
	return []FigureDef{
		{
			ID: "threadtest", Title: "threadtest", Metric: "speedup",
			Paper: "F1: speedup, t threads allocating/freeing 100,000 8-byte objects",
			Run: func(s Scale) Runner {
				return func(h *workload.Harness, th int) workload.Result {
					cfg := workload.ThreadtestConfig{Threads: th, Iterations: 2, Objects: 100000, ObjSize: 8}
					if s == Quick {
						cfg.Iterations, cfg.Objects = 1, 57344 // >= 4 superblocks/thread at P=14
					}
					return workload.Threadtest(h, cfg)
				}
			},
		},
		{
			ID: "shbench", Title: "shbench", Metric: "speedup",
			Paper: "F2: speedup, SmartHeap-style random sizes and lifetimes",
			Run: func(s Scale) Runner {
				return func(h *workload.Harness, th int) workload.Result {
					cfg := workload.DefaultShbench(th)
					if s == Quick {
						cfg.Ops = 84000
						cfg.Slots = 1200
					}
					return workload.Shbench(h, cfg)
				}
			},
		},
		{
			ID: "larson", Title: "larson", Metric: "throughput",
			Paper: "F3: throughput, Larson server simulation with bleeding",
			Run: func(s Scale) Runner {
				return func(h *workload.Harness, th int) workload.Result {
					cfg := workload.DefaultLarson(th)
					if s == Quick {
						cfg.Rounds, cfg.OpsPerRound, cfg.SlotsPerWindow = 3, 1500, 600
					}
					return workload.Larson(h, cfg)
				}
			},
		},
		{
			ID: "active-false", Title: "active-false", Metric: "speedup",
			Paper: "F4: speedup, active false sharing microbenchmark",
			Run: func(s Scale) Runner {
				return func(h *workload.Harness, th int) workload.Result {
					cfg := workload.DefaultFalseShare(th)
					if s == Quick {
						cfg.Iterations, cfg.Writes = 840, 200
					}
					return workload.ActiveFalse(h, cfg)
				}
			},
		},
		{
			ID: "passive-false", Title: "passive-false", Metric: "speedup",
			Paper: "F5: speedup, passive false sharing microbenchmark",
			Run: func(s Scale) Runner {
				return func(h *workload.Harness, th int) workload.Result {
					cfg := workload.DefaultFalseShare(th)
					if s == Quick {
						cfg.Iterations, cfg.Writes = 840, 200
					}
					return workload.PassiveFalse(h, cfg)
				}
			},
		},
		{
			ID: "bem", Title: "BEMengine-style", Metric: "speedup",
			Paper: "F6: speedup, boundary-element phase structure (substituted surrogate)",
			Run: func(s Scale) Runner {
				return func(h *workload.Harness, th int) workload.Result {
					cfg := workload.DefaultBEM(th)
					if s == Quick {
						cfg.MeshNodes, cfg.Rows, cfg.SolveBuffers, cfg.SolveWork = 11200, 560, 28, 100000
					}
					return workload.BEM(h, cfg)
				}
			},
		},
		{
			ID: "barneshut", Title: "barnes-hut", Metric: "speedup",
			Paper: "F7: speedup, Barnes-Hut n-body with per-step octree rebuild",
			Run: func(s Scale) Runner {
				return func(h *workload.Harness, th int) workload.Result {
					cfg := workload.DefaultBarnesHut(th)
					if s == Quick {
						cfg.Bodies, cfg.Steps = 800, 1
					}
					return workload.BarnesHut(h, cfg)
				}
			},
		},
	}
}

// FigureByID finds a figure definition.
func FigureByID(id string) (FigureDef, bool) {
	for _, f := range Figures() {
		if f.ID == id {
			return f, true
		}
	}
	return FigureDef{}, false
}

// Series is one allocator's line on a figure.
type Series struct {
	// Allocator is the line's allocator name.
	Allocator string
	// Results holds one point per entry in Figure.Procs.
	Results []workload.Result
}

// Speedup returns T(1)/T(P) per point (relative to this allocator's own
// single-processor time, as the paper plots it).
func (s Series) Speedup() []float64 {
	out := make([]float64, len(s.Results))
	if len(s.Results) == 0 || s.Results[0].ElapsedNS == 0 {
		return out
	}
	base := float64(s.Results[0].ElapsedNS)
	for i, r := range s.Results {
		if r.ElapsedNS > 0 {
			out[i] = base / float64(r.ElapsedNS)
		}
	}
	return out
}

// Throughputs returns operations per second per point.
func (s Series) Throughputs() []float64 {
	out := make([]float64, len(s.Results))
	for i, r := range s.Results {
		out[i] = r.Throughput()
	}
	return out
}

// Figure is a completed speedup/throughput figure.
type Figure struct {
	// Def is the figure's definition.
	Def FigureDef
	// Procs are the swept processor counts.
	Procs []int
	// Series holds one line per allocator.
	Series []Series
}

// RunFigure sweeps allocators x processor counts for one figure.
// The progress callback (optional) is invoked before each point.
func RunFigure(def FigureDef, opts Options, progress func(alloc string, procs int)) Figure {
	run := def.Run(opts.Scale)
	fig := Figure{Def: def, Procs: opts.Procs}
	for _, name := range opts.Allocs {
		s := Series{Allocator: name}
		for _, p := range opts.Procs {
			if progress != nil {
				progress(name, p)
			}
			h := workload.NewSim(name, p, opts.Cost)
			s.Results = append(s.Results, run(h, p))
		}
		fig.Series = append(fig.Series, s)
	}
	return fig
}

// Format renders the figure as an aligned text table: one row per
// allocator, one column per processor count, cells carrying the figure's
// metric.
func (f Figure) Format(w io.Writer) {
	fmt.Fprintf(w, "%s — %s\n", f.Def.Title, f.Def.Paper)
	metric := f.Def.Metric
	fmt.Fprintf(w, "%-12s", metric)
	for _, p := range f.Procs {
		fmt.Fprintf(w, " %9s", fmt.Sprintf("P=%d", p))
	}
	fmt.Fprintln(w)
	for _, s := range f.Series {
		fmt.Fprintf(w, "%-12s", s.Allocator)
		var vals []float64
		if metric == "throughput" {
			vals = s.Throughputs()
			for _, v := range vals {
				fmt.Fprintf(w, " %9s", fmtTput(v))
			}
		} else {
			vals = s.Speedup()
			for _, v := range vals {
				fmt.Fprintf(w, " %9.2f", v)
			}
		}
		fmt.Fprintln(w)
	}
	fmt.Fprintln(w)
}

func fmtTput(v float64) string {
	switch {
	case v >= 1e6:
		return fmt.Sprintf("%.2fM", v/1e6)
	case v >= 1e3:
		return fmt.Sprintf("%.1fk", v/1e3)
	default:
		return fmt.Sprintf("%.0f", v)
	}
}

// Catalog prints the benchmark table (the paper's Table 1).
func Catalog(w io.Writer) {
	rows := [][2]string{
		{"threadtest", "t threads allocate and free 100,000/t 8-byte objects per round (no cross-thread frees)"},
		{"shbench", "SmartHeap-style: random sizes 1..1000 B, random lifetimes, per-thread working sets"},
		{"larson", "server simulation: worker sessions inherit live windows, free remotely, allocate replacements"},
		{"active-false", "threads allocate one small object each and write it repeatedly (line-splitting test)"},
		{"passive-false", "one thread allocates adjacent objects, others free them then run the write loop"},
		{"BEMengine-style", "phase-structured solid-modeling surrogate: small mesh allocs, medium rows, large solver buffers"},
		{"barnes-hut", "n-body: octree of small nodes rebuilt, traversed, and freed each timestep"},
		{"prodcons", "producer-consumer blowup probe from the paper's section 2.2 analysis"},
	}
	fmt.Fprintln(w, "T1 — benchmark catalog")
	for _, r := range rows {
		fmt.Fprintf(w, "  %-16s %s\n", r[0], r[1])
	}
	fmt.Fprintln(w)
}
