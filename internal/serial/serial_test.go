package serial

import (
	"testing"

	"hoardgo/internal/alloc"
	"hoardgo/internal/alloctest"
	"hoardgo/internal/env"
)

func TestConformance(t *testing.T) {
	alloctest.Run(t, func() alloc.Allocator {
		return New(0, env.RealLockFactory{})
	})
}

func TestNeverReturnsSmallMemory(t *testing.T) {
	// A serial malloc retains its heap: committed memory stays at the
	// high-water mark after frees.
	a := New(0, env.RealLockFactory{})
	th := a.NewThread(&env.RealEnv{})
	var ps []alloc.Ptr
	for i := 0; i < 2000; i++ {
		ps = append(ps, a.Malloc(th, 64))
	}
	committed := a.Space().Committed()
	for _, p := range ps {
		a.Free(th, p)
	}
	if got := a.Space().Committed(); got != committed {
		t.Fatalf("committed changed %d -> %d; serial heap should retain memory", committed, got)
	}
	if err := a.CheckIntegrity(); err != nil {
		t.Fatal(err)
	}
}

func TestReusesFreedBlocks(t *testing.T) {
	a := New(0, env.RealLockFactory{})
	th := a.NewThread(&env.RealEnv{})
	p := a.Malloc(th, 64)
	a.Free(th, p)
	q := a.Malloc(th, 64)
	if q != p {
		t.Fatalf("freed block not reused: %#x then %#x", uint64(p), uint64(q))
	}
}

func TestAdjacentAllocationsShareSuperblock(t *testing.T) {
	// The property that makes serial allocators actively induce false
	// sharing: consecutive mallocs (possibly from different threads) get
	// adjacent blocks in one superblock.
	a := New(0, env.RealLockFactory{})
	t0 := a.NewThread(&env.RealEnv{ID: 0})
	t1 := a.NewThread(&env.RealEnv{ID: 1})
	p0 := a.Malloc(t0, 8)
	p1 := a.Malloc(t1, 8)
	d := int64(p1) - int64(p0)
	if d < 0 {
		d = -d
	}
	if d >= 64 {
		t.Fatalf("consecutive 8-byte allocations %d bytes apart; expected same cache line", d)
	}
}
