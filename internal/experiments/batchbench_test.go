package experiments

import "testing"

// TestMeasureBatchLocks asserts the PR's acceptance criterion: batching cuts
// per-processor-heap lock acquisitions per cached malloc by at least 5x
// versus the per-block transfer path. With capacity 32, a half-magazine
// transfer collapses 16 acquisitions into ~1, so the expected factor is
// around an order of magnitude — 5x has comfortable slack.
func TestMeasureBatchLocks(t *testing.T) {
	res := MeasureBatchLocks(32, 50)
	if res.Batch.Mallocs != res.PerBlock.Mallocs || res.Batch.Mallocs == 0 {
		t.Fatalf("arms did unequal work: %d vs %d mallocs", res.Batch.Mallocs, res.PerBlock.Mallocs)
	}
	if res.Batch.BatchRefills == 0 || res.Batch.BatchFlushes == 0 {
		t.Fatalf("batch arm never took the native path: %+v", res.Batch)
	}
	if res.PerBlock.BatchRefills != 0 || res.PerBlock.BatchFlushes != 0 {
		t.Fatalf("per-block arm leaked native batch calls: %+v", res.PerBlock)
	}
	if res.Improvement < 5 {
		t.Fatalf("lock-acquisition improvement %.2fx < 5x (batch %.3f vs per-block %.3f locks/malloc)",
			res.Improvement, res.Batch.LocksPerMalloc, res.PerBlock.LocksPerMalloc)
	}
}

func TestBatchSimResults(t *testing.T) {
	entries := BatchSimResults(microOpts())
	if len(entries) != 6 {
		t.Fatalf("%d entries, want 6 (3 benches x 2 arms)", len(entries))
	}
	for _, e := range entries {
		if e.VirtualMS <= 0 {
			t.Fatalf("%s/%s reported no virtual time", e.Bench, e.Allocator)
		}
		batched := e.BatchRefills+e.BatchFlushes > 0
		wantBatched := e.Allocator == "hoard+tcache (batch)"
		if batched != wantBatched {
			t.Fatalf("%s/%s: batch counters %v, want %v (refills=%d flushes=%d)",
				e.Bench, e.Allocator, batched, wantBatched, e.BatchRefills, e.BatchFlushes)
		}
	}
}
