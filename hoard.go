// Package hoard is a Go reproduction of the memory allocator from Berger,
// McKinley, Blumofe & Wilson, "Hoard: A Scalable Memory Allocator for
// Multithreaded Applications" (ASPLOS 2000), together with the baseline
// allocators the paper compares against and the experiment harness that
// regenerates its evaluation.
//
// Because the Go runtime owns real allocation, this library manages an
// explicit, simulated address space: Malloc returns an opaque Ptr whose
// bytes are accessed through the allocator (Bytes). The allocator
// algorithms — superblocks, per-processor heaps, the emptiness invariant —
// are implemented in full; see DESIGN.md for the architecture and
// EXPERIMENTS.md for the reproduced results.
//
// # Quick start
//
//	a, _ := hoard.New(hoard.Config{})
//	t := a.NewThread()          // one per worker goroutine
//	p := t.Malloc(100)
//	copy(t.Bytes(p, 100), data)
//	t.Free(p)
//
// Threads are the unit of concurrency: each worker goroutine registers once
// with NewThread and uses its Thread for every operation. Any thread may
// free memory allocated by any other — Hoard's whole point is making that
// correct, fast, and memory-bounded.
package hoard

import (
	"fmt"
	"io"
	"sync"
	"sync/atomic"

	"hoardgo/internal/alloc"
	"hoardgo/internal/allocators"
	"hoardgo/internal/concurrent"
	"hoardgo/internal/control"
	"hoardgo/internal/core"
	"hoardgo/internal/debugalloc"
	"hoardgo/internal/dlheap"
	"hoardgo/internal/env"
	"hoardgo/internal/metrics"
	"hoardgo/internal/ownership"
	"hoardgo/internal/private"
	"hoardgo/internal/scavenge"
	"hoardgo/internal/serial"
	"hoardgo/internal/tcache"
	"hoardgo/internal/threshold"
)

// Ptr is an address in the allocator's simulated address space. The zero
// Ptr is nil.
type Ptr = alloc.Ptr

// Policy selects which allocator architecture a Config builds. The
// non-Hoard policies implement the taxonomy of the paper's §2 and exist as
// experimental baselines.
type Policy string

// Available policies.
const (
	// PolicyHoard is the paper's allocator (the default).
	PolicyHoard Policy = "hoard"
	// PolicySerial is a single-lock, single-heap allocator ("Solaris
	// malloc"): not scalable, actively induces false sharing.
	PolicySerial Policy = "serial"
	// PolicyConcurrent is a single heap with per-size-class locks: more
	// scalable than serial, but same-class allocations still serialize
	// and false sharing remains.
	PolicyConcurrent Policy = "concurrent"
	// PolicyDLHeap is a Doug Lea-style serial allocator: boundary-tag
	// coalescing chunks in geometric bins under one lock (the dlmalloc
	// design). Classical low fragmentation, serial scalability.
	PolicyDLHeap Policy = "dlheap"
	// PolicyPrivate is pure private heaps (Cilk/STL): scalable but with
	// unbounded blowup under producer-consumer patterns.
	PolicyPrivate Policy = "private"
	// PolicyOwnership is private heaps with ownership (Ptmalloc):
	// bounded but O(P) blowup.
	PolicyOwnership Policy = "ownership"
	// PolicyThreshold is private heaps with thresholds (DYNIX): bounded
	// blowup, object-granularity migration overhead and false sharing.
	PolicyThreshold Policy = "threshold"
)

// Config configures an Allocator. The zero value builds a Hoard allocator
// with the paper's parameters.
type Config struct {
	// Policy selects the allocator architecture; empty means PolicyHoard.
	Policy Policy

	// Procs sizes per-processor structures (Hoard's heap count,
	// ownership's arena count). Zero means 8.
	Procs int

	// Hoard tunes the Hoard policy in detail; ignored by other policies.
	// Zero fields select the paper's parameters (S=8 KiB, f=1/4, K=1,
	// b=1.2, 2*Procs heaps).
	Hoard core.Config

	// Backend selects the Hoard policy's memory substrate: "sim" (the
	// default — a deterministic simulated address space) or "arena" (one
	// large mmap reservation with address-arithmetic span resolution and
	// real madvise decommit; Linux amd64/arm64 only). Empty consults the
	// HOARDGO_BACKEND environment variable, then defaults to sim. When the
	// arena cannot be created the allocator degrades to sim instead of
	// failing; Stats.BackendFallbacks and Allocator.BackendFallbackReason
	// record that. Shorthand for Hoard.Backend; ignored by other policies,
	// which always use the simulated space.
	Backend string

	// OwnershipArenas and OwnershipSteal tune the ownership policy.
	OwnershipArenas int
	OwnershipSteal  bool

	// ThresholdWatermark tunes the threshold policy's batch size.
	ThresholdWatermark int

	// Debug wraps the allocator with memory-debugging machinery: guard
	// canaries around every block (overflow/underflow panics), poisoning
	// of freed memory, and a free quarantine that catches use-after-free
	// writes. Expensive; for development. DebugQuarantine tunes the
	// quarantine length (0 = default, negative = disabled).
	Debug           bool
	DebugQuarantine int

	// ThreadCacheCapacity, if positive, layers a per-thread block cache
	// (in the style of Hoard's successors — tcmalloc, jemalloc) over the
	// selected policy: lock-free malloc/free fast paths, bounded extra
	// memory, and the documented return of passive false sharing. See
	// the "tcache" experiment.
	ThreadCacheCapacity int

	// Metrics instruments every internal lock with acquisition, contention,
	// and wait/hold-time counters, exported through WriteMetrics. Off by
	// default: an uninstrumented allocator pays zero overhead (the wrappers
	// are never created); with it on, each lock operation adds two clock
	// reads and a few uncontended atomic adds. Occupancy sampling and the
	// auditor work either way — this flag only controls lock counters.
	Metrics bool

	// Scavenge configures the background scavenger, which returns the pages
	// of long-empty superblocks parked on the global heap to the (simulated)
	// OS. Hoard policy only; see ScavengeConfig. Disabled by default.
	Scavenge ScavengeConfig

	// Control configures the self-tuning controller, which retunes f, K,
	// magazine capacities, and scavenger pacing from the live metrics
	// timeline. Hoard policy only; see ControlConfig. Disabled by default.
	Control ControlConfig
}

// Allocator is a thread-safe explicit memory allocator.
type Allocator struct {
	impl    alloc.Allocator
	nextTID atomic.Int64

	// reg holds the lock-metrics registry when Config.Metrics was set; nil
	// otherwise (no instrumentation exists at all in that case).
	reg *metrics.Registry

	// auditorMu guards the background auditor handle (StartAuditor /
	// StopAuditor).
	auditorMu sync.Mutex
	auditor   *metrics.Auditor

	// scavMu guards the background scavenger handle (StartScavenger /
	// StopScavenger); scavCfg is the internal form of Config.Scavenge.
	scavMu  sync.Mutex
	scav    *scavenge.Scavenger
	scavCfg scavenge.Config

	// ctlMu guards the self-tuning controller handle (StartController /
	// StopController); ctlCfg is the internal form of Config.Control.
	ctlMu  sync.Mutex
	ctl    *control.Controller
	ctlCfg control.Config
}

// New builds an allocator from cfg.
func New(cfg Config) (*Allocator, error) {
	procs := cfg.Procs
	if procs == 0 {
		procs = 8
	}
	if procs < 1 {
		return nil, fmt.Errorf("hoard: Procs %d out of range", procs)
	}
	var lf env.LockFactory = env.RealLockFactory{}
	var reg *metrics.Registry
	if cfg.Metrics {
		reg = metrics.NewRegistry()
		lf = reg.WrapFactory(lf)
	}
	switch cfg.Backend {
	case "", "sim", "arena":
	default:
		return nil, fmt.Errorf("hoard: unknown backend %q (want \"sim\" or \"arena\")", cfg.Backend)
	}
	var impl alloc.Allocator
	switch cfg.Policy {
	case PolicyHoard, "":
		hc := cfg.Hoard
		if hc.Heaps == 0 {
			hc.Heaps = 2 * procs
		}
		if hc.Backend == "" {
			hc.Backend = cfg.Backend
		}
		impl = core.New(hc, lf)
	case PolicySerial:
		impl = serial.New(cfg.Hoard.SuperblockSize, lf)
	case PolicyConcurrent:
		impl = concurrent.New(cfg.Hoard.SuperblockSize, lf)
	case PolicyDLHeap:
		impl = dlheap.New(lf)
	case PolicyPrivate:
		impl = private.New(cfg.Hoard.SuperblockSize, lf)
	case PolicyOwnership:
		arenas := cfg.OwnershipArenas
		if arenas == 0 {
			arenas = 2 * procs
		}
		impl = ownership.New(ownership.Config{
			SuperblockSize: cfg.Hoard.SuperblockSize,
			Arenas:         arenas,
			Steal:          cfg.OwnershipSteal,
		}, lf)
	case PolicyThreshold:
		impl = threshold.New(threshold.Config{
			SuperblockSize: cfg.Hoard.SuperblockSize,
			Watermark:      cfg.ThresholdWatermark,
		}, lf)
	default:
		return nil, fmt.Errorf("hoard: unknown policy %q (have %v)", cfg.Policy, allocators.Names())
	}
	if cfg.ThreadCacheCapacity > 0 {
		impl = tcache.New(impl, tcache.Config{Capacity: cfg.ThreadCacheCapacity})
	}
	if cfg.Debug {
		impl = debugalloc.New(impl, debugalloc.Config{Quarantine: cfg.DebugQuarantine})
	}
	scavCfg := cfg.Scavenge.internal()
	if err := scavCfg.Validate(); err != nil {
		return nil, fmt.Errorf("hoard: %w", err)
	}
	ctlCfg := cfg.Control.internal()
	if err := ctlCfg.Validate(); err != nil {
		return nil, fmt.Errorf("hoard: %w", err)
	}
	a := &Allocator{impl: impl, reg: reg, scavCfg: scavCfg, ctlCfg: ctlCfg}
	if cfg.Scavenge.Enabled {
		if err := a.StartScavenger(); err != nil {
			return nil, err
		}
	}
	if cfg.Control.Enabled {
		if err := a.StartController(); err != nil {
			return nil, err
		}
	}
	return a, nil
}

// MustNew is New for static configurations; it panics on error.
func MustNew(cfg Config) *Allocator {
	a, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return a
}

// Policy returns the allocator's architecture name.
func (a *Allocator) Policy() Policy { return Policy(a.impl.Name()) }

// Thread is a worker's allocation handle. Create one per goroutine with
// NewThread; a Thread must not be used from two goroutines at once (but any
// Thread may free memory allocated through any other).
type Thread struct {
	a     *Allocator
	inner *alloc.Thread
}

// NewThread registers a worker and returns its handle. Safe for concurrent
// use.
func (a *Allocator) NewThread() *Thread {
	id := int(a.nextTID.Add(1) - 1)
	return &Thread{a: a, inner: a.impl.NewThread(&env.RealEnv{ID: id})}
}

// ID returns the thread's registration index.
func (t *Thread) ID() int { return t.inner.ID }

// Close retires the thread: blocks cached on its behalf by layered
// allocators return to the underlying heaps (thread-cache magazines are
// batch-freed, debug-quarantined frees complete) and the thread is
// deregistered. It is what a thread-exit hook does in a C allocator — a
// worker goroutine should Close its Thread before exiting, or its magazine
// blocks stay stranded: invisible to the emptiness invariant, never
// scavenged, counted by CachedBytes forever. The handle remains usable
// afterwards (stray late operations bypass the caches), so Close is safe to
// call before the last cross-thread free of this thread's blocks has
// happened. For stacks with no per-thread caching layer Close is a no-op.
func (t *Thread) Close() { alloc.FlushThread(t.a.impl, t.inner) }

// Malloc returns a block of at least size bytes. Malloc(0) returns a valid
// minimal block.
func (t *Thread) Malloc(size int) Ptr { return t.a.impl.Malloc(t.inner, size) }

// Calloc returns a zeroed block of at least size bytes.
func (t *Thread) Calloc(size int) Ptr {
	p := t.Malloc(size)
	clear(t.a.impl.Bytes(p, size))
	return p
}

// Free releases a block. Freeing the nil Ptr is a no-op; double frees and
// foreign pointers panic, as memory corruption in a real allocator is not
// recoverable.
func (t *Thread) Free(p Ptr) { t.a.impl.Free(t.inner, p) }

// Realloc resizes a block, preserving min(old, new) bytes of content. A nil
// p behaves as Malloc.
func (t *Thread) Realloc(p Ptr, size int) Ptr {
	if h, ok := t.a.impl.(*core.Hoard); ok {
		return h.Realloc(t.inner, p, size)
	}
	if p.IsNil() {
		return t.Malloc(size)
	}
	old := t.a.impl.UsableSize(p)
	if size <= old && size > old/2 {
		return p
	}
	np := t.Malloc(size)
	n := min(old, size)
	copy(t.a.impl.Bytes(np, n), t.a.impl.Bytes(p, n))
	t.Free(p)
	return np
}

// MallocAligned returns a block of at least size bytes whose address is a
// multiple of align (a power of two). Only the Hoard policy implements
// stronger-than-8-byte alignment natively; other policies fall back to the
// page-aligned large-object path for align > 8.
func (t *Thread) MallocAligned(size, align int) Ptr {
	if h, ok := t.a.impl.(*core.Hoard); ok {
		return h.MallocAligned(t.inner, size, align)
	}
	if align <= 8 {
		return t.Malloc(size)
	}
	if align > 4096 {
		panic(fmt.Sprintf("hoard: policy %q supports MallocAligned up to page alignment, got %d", t.a.impl.Name(), align))
	}
	// The large-object path of every policy is page-aligned.
	if size < 4097 {
		size = 4097
	}
	return t.Malloc(size)
}

// MallocBatch allocates up to n blocks of at least size bytes each into
// out[:n] and returns the number obtained. Policies with a native batch path
// (Hoard, serial) serve the whole batch under a single heap-lock
// acquisition; others fall back to per-block Mallocs. The tcache layer uses
// the same machinery for its magazine refills.
func (t *Thread) MallocBatch(size, n int, out []Ptr) int {
	return alloc.MallocBatch(t.a.impl, t.inner, size, n, out)
}

// FreeBatch releases every block in ps (nil entries are skipped). Policies
// with a native batch path group the pointers by owner and take each owner's
// lock once per group; others fall back to per-block Frees.
func (t *Thread) FreeBatch(ps []Ptr) {
	alloc.FreeBatch(t.a.impl, t.inner, ps)
}

// Bytes returns a writable view of n bytes of a live block. The view stays
// valid until the block is freed.
func (t *Thread) Bytes(p Ptr, n int) []byte { return t.a.impl.Bytes(p, n) }

// UsableSize returns the usable capacity of a live block (at least the
// requested size, rounded up to its size class).
func (t *Thread) UsableSize(p Ptr) int { return t.a.impl.UsableSize(p) }

// Stats is a snapshot of allocator activity.
type Stats struct {
	// Mallocs and Frees count completed operations.
	Mallocs, Frees int64
	// LiveBytes is the usable bytes currently allocated; PeakLiveBytes
	// its high-water mark.
	LiveBytes, PeakLiveBytes int64
	// FootprintBytes is the physical memory currently held from the
	// (simulated) OS — committed bytes; PeakFootprintBytes its high-water
	// mark. Footprint over live is the allocator's fragmentation.
	FootprintBytes, PeakFootprintBytes int64
	// ReservedBytes is the address space currently reserved, decommitted
	// pages included; PeakReservedBytes its high-water mark. Reserved
	// minus footprint is exactly DecommittedBytes.
	ReservedBytes, PeakReservedBytes int64
	// DecommittedBytes is the bytes currently decommitted by the
	// scavenger: reserved but returned to the OS, repopulated on demand.
	DecommittedBytes int64
	// ScavengeOps counts scavenge passes that released at least one byte
	// (background and forced); ScavengedBytes the bytes they released.
	ScavengeOps, ScavengedBytes int64
	// SuperblockMoves counts Hoard's transfers to/from the global heap.
	SuperblockMoves int64
	// RemoteFrees counts frees that crossed heaps.
	RemoteFrees int64
	// RemoteFastFrees counts cross-heap frees that took Hoard's lock-free
	// remote-stack push instead of acquiring a heap lock.
	RemoteFastFrees int64
	// RemoteDrains counts batch reconciliations of remote-free stacks
	// that recovered at least one block.
	RemoteDrains int64
	// BatchRefills and BatchFlushes count native MallocBatch and FreeBatch
	// calls — each a magazine transfer served under one heap-lock
	// acquisition (per owner group, for flushes). Zero when the policy has
	// no native batch path.
	BatchRefills, BatchFlushes int64
	// BatchedBlocks counts the blocks moved through those native batch
	// calls, in both directions.
	BatchedBlocks int64
	// LockFreeMallocs and LockFreeFrees count small-object operations
	// served entirely by the lock-free warm paths — a CAS on the owning
	// superblock's free-list word, no heap lock. Batch operations count
	// each block they claim or return this way.
	LockFreeMallocs, LockFreeFrees int64
	// FastPathRetries counts CAS retries on those warm paths — the
	// contention the lock-free protocol absorbed instead of blocking.
	FastPathRetries int64
	// BackendFallbacks is 1 when a requested arena backend could not be
	// created and the allocator degraded to the simulated space; see
	// BackendFallbackReason for the cause.
	BackendFallbacks int64
}

// Stats returns a snapshot of the allocator's counters.
func (a *Allocator) Stats() Stats {
	st := a.impl.Stats()
	sp := a.impl.Space().Stats()
	return Stats{
		Mallocs:            st.Mallocs,
		Frees:              st.Frees,
		LiveBytes:          st.LiveBytes,
		PeakLiveBytes:      st.PeakLiveBytes,
		FootprintBytes:     sp.Committed,
		PeakFootprintBytes: sp.PeakCommitted,
		ReservedBytes:      sp.Reserved,
		PeakReservedBytes:  sp.PeakReserved,
		DecommittedBytes:   sp.DecommittedBytes,
		ScavengeOps:        st.ScavengePasses,
		ScavengedBytes:     st.ScavengedBytes,
		SuperblockMoves:    st.SuperblockMoves,
		RemoteFrees:        st.RemoteFrees,
		RemoteFastFrees:    st.RemoteFastFrees,
		RemoteDrains:       st.RemoteDrains,
		BatchRefills:       st.BatchRefills,
		BatchFlushes:       st.BatchFlushes,
		BatchedBlocks:      st.BatchedBlocks,
		LockFreeMallocs:    st.LockFreeMallocs,
		LockFreeFrees:      st.LockFreeFrees,
		FastPathRetries:    st.FastPathRetries,
		BackendFallbacks:   st.BackendFallbacks,
	}
}

// CachedBytes reports the bytes currently stranded in per-thread magazines
// when the allocator was built with ThreadCacheCapacity, and 0 otherwise.
// It requires quiescence for an exact answer. A drained workload whose
// workers all called Thread.Close reports 0 — the lifecycle regression
// tests and the load engine assert exactly that.
func (a *Allocator) CachedBytes() int64 {
	if tc := a.tcacheLayer(); tc != nil {
		return tc.CachedBytes()
	}
	return 0
}

// MagazineBytes is the under-load view of the same gauge: a sum of
// magazine-fill counters published at transfer boundaries, safe to read
// while worker threads allocate (CachedBytes is exact but requires
// quiescence). It lags true fill by at most half a magazine per size class
// per thread. Samplers and metrics scrapes use this form.
func (a *Allocator) MagazineBytes() int64 {
	if tc := a.tcacheLayer(); tc != nil {
		return tc.MagazineBytes()
	}
	return 0
}

// Backend returns the name of the memory substrate in use: "sim" or
// "arena". Non-Hoard policies always report "sim".
func (a *Allocator) Backend() string { return a.impl.Space().Name() }

// BackendFallbackReason reports why a requested arena backend degraded to
// the simulated space, or "" when no fallback happened. Only the Hoard
// policy can fall back.
func (a *Allocator) BackendFallbackReason() string {
	if h := a.unwrap(); h != nil {
		return h.BackendFallbackReason()
	}
	return ""
}

// Close stops the background controller, scavenger, and auditor (if
// running) and
// releases the memory substrate: for the arena backend this unmaps its
// virtual reservation, for the simulated backend it is a no-op. The
// allocator must be quiescent and must not be used afterwards. Close is the
// only way an arena's address space is returned to the OS — Go finalizers
// cannot reclaim it.
func (a *Allocator) Close() error {
	a.StopController()
	a.StopScavenger()
	a.StopAuditor()
	return a.impl.Space().Close()
}

// CheckIntegrity exhaustively validates the allocator's internal
// invariants. It requires quiescence (no concurrent operations) and is
// intended for tests.
func (a *Allocator) CheckIntegrity() error { return a.impl.CheckIntegrity() }

// Describe writes a human-readable snapshot of the allocator's state (in
// the spirit of malloc_stats). Only the Hoard policy provides a detailed
// per-heap breakdown; other policies print their counters.
func (a *Allocator) Describe(w io.Writer) {
	if h, ok := a.impl.(*core.Hoard); ok {
		h.Describe(w, &env.RealEnv{})
		return
	}
	st := a.Stats()
	fmt.Fprintf(w, "%s: %d mallocs, %d frees, %d B live, %d B footprint (peak %d)\n",
		a.impl.Name(), st.Mallocs, st.Frees, st.LiveBytes, st.FootprintBytes, st.PeakFootprintBytes)
}
