package experiments

import (
	"testing"

	"hoardgo/internal/vm"
)

func requireArena(t *testing.T) {
	t.Helper()
	a, err := vm.NewArena(vm.ArenaOptions{SlotRegionBytes: 16 << 20, LargeRegionBytes: 16 << 20})
	if err != nil {
		t.Skipf("arena backend unavailable: %v", err)
	}
	a.Close()
}

func TestMeasureResolve(t *testing.T) {
	if testing.Short() {
		t.Skip("wall-clock measurement")
	}
	requireArena(t)
	res, err := MeasureResolve(Quick)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Entries) != 2 {
		t.Fatalf("entries = %d, want sim + arena", len(res.Entries))
	}
	for _, e := range res.Entries {
		if e.NSPerLookup <= 0 {
			t.Fatalf("%s: ns/lookup = %v", e.Backend, e.NSPerLookup)
		}
	}
	t.Logf("sim %.2f ns vs arena %.2f ns: %.2fx",
		res.Entries[0].NSPerLookup, res.Entries[1].NSPerLookup, res.Speedup)
	// The committed-artifact threshold is 2x; the unit test only insists
	// the arithmetic path is not slower, to stay robust on noisy CI boxes.
	if res.Speedup < 1 {
		t.Fatalf("arena resolution slower than page table: %.2fx", res.Speedup)
	}
}

func TestMeasureArenaThroughput(t *testing.T) {
	if testing.Short() {
		t.Skip("wall-clock measurement")
	}
	requireArena(t)
	tps, err := MeasureArenaThroughput(Quick)
	if err != nil {
		t.Fatal(err)
	}
	byBackend := map[string]int{}
	for _, e := range tps {
		if e.Ops == 0 || e.OpsPerMS <= 0 {
			t.Fatalf("%s/P=%d: empty measurement %+v", e.Backend, e.Procs, e)
		}
		byBackend[e.Backend]++
	}
	if byBackend["sim"] == 0 || byBackend["sim"] != byBackend["arena"] {
		t.Fatalf("uneven sweep: %v", byBackend)
	}
}

func TestMeasureArenaRSS(t *testing.T) {
	if testing.Short() {
		t.Skip("wall-clock measurement")
	}
	requireArena(t)
	entries, err := MeasureArenaRSS(Quick)
	if err != nil {
		t.Skipf("rss measurement unavailable: %v", err)
	}
	byMode := map[string]ArenaRSSEntry{}
	for _, e := range entries {
		byMode[e.Mode] = e
		t.Logf("%-8s peak %d final %d scavenges %d decommitted %d",
			e.Mode, e.PeakDelta, e.FinalDelta, e.ScavengePasses, e.DecommittedBytes)
	}
	forced := byMode["forced"]
	if forced.ScavengePasses == 0 || forced.ScavengedBytes == 0 {
		t.Fatal("forced mode never scavenged")
	}
	if byMode["off"].ScavengePasses != 0 {
		t.Fatal("off mode scavenged")
	}
	// The real-pages criterion (enforced strictly in the artifact writer):
	// forced release must show up in the OS's RSS accounting.
	if forced.PeakDelta > 0 && forced.FinalDelta >= forced.PeakDelta {
		t.Fatalf("forced release did not lower RSS: peak %d, final %d",
			forced.PeakDelta, forced.FinalDelta)
	}
}
