package core

import (
	"testing"

	"hoardgo/internal/alloc"
	"hoardgo/internal/env"
)

var te = &env.RealEnv{}

// churnToGlobal allocates count objects of size sz and frees them all, which
// evicts emptied superblocks to the global heap.
func churnToGlobal(h *Hoard, th *alloc.Thread, count, sz int) {
	ps := make([]alloc.Ptr, count)
	for i := range ps {
		ps[i] = h.Malloc(th, sz)
	}
	for _, p := range ps {
		h.Free(th, p)
	}
}

func TestScavengeGlobalRoundTrip(t *testing.T) {
	h := newHoard(Config{Heaps: 1})
	th := thread(h, 0)
	churnToGlobal(h, th, 2000, 64)

	empty := h.GlobalEmptyBytes(te)
	if empty == 0 {
		t.Fatal("no empty superblocks parked on the global heap after churn")
	}
	before := h.Space().Committed()

	released := h.ReleaseMemory(te)
	if released != empty {
		t.Fatalf("released %d bytes, want the full empty surplus %d", released, empty)
	}
	st := h.Space().Stats()
	if st.Committed != before-released {
		t.Fatalf("Committed = %d, want %d - %d", st.Committed, before, released)
	}
	if st.DecommittedBytes != released {
		t.Fatalf("DecommittedBytes = %d, want %d", st.DecommittedBytes, released)
	}
	if st.Reserved < st.Committed {
		t.Fatalf("reserved %d < committed %d", st.Reserved, st.Committed)
	}
	if got := h.GlobalEmptyBytes(te); got != 0 {
		t.Fatalf("GlobalEmptyBytes after full scavenge = %d, want 0", got)
	}
	if s := h.Stats(); s.ScavengePasses != 1 || s.ScavengedBytes != released {
		t.Fatalf("ScavengePasses %d ScavengedBytes %d, want 1 / %d", s.ScavengePasses, s.ScavengedBytes, released)
	}
	if err := h.CheckIntegrity(); err != nil {
		t.Fatal(err)
	}

	// Demand returns: the scavenged superblocks are recommitted
	// transparently and every block is usable (written through).
	ps := make([]alloc.Ptr, 2000)
	for i := range ps {
		ps[i] = h.Malloc(th, 64)
		buf := h.Bytes(ps[i], 64)
		for j := range buf {
			buf[j] = byte(i)
		}
	}
	if got := h.Space().DecommittedBytes(); got != 0 {
		// All scavenged superblocks should be back in service for this
		// same-class refill.
		t.Fatalf("DecommittedBytes after reuse = %d, want 0", got)
	}
	for i, p := range ps {
		buf := h.Bytes(p, 64)
		for j := range buf {
			if buf[j] != byte(i) {
				t.Fatalf("object %d byte %d corrupted", i, j)
			}
		}
		h.Free(th, p)
	}
	if err := h.CheckIntegrity(); err != nil {
		t.Fatal(err)
	}
}

func TestScavengeColdAgeAndPacing(t *testing.T) {
	h := newHoard(Config{Heaps: 1})
	var now int64
	h.SetClock(func() int64 { return now })
	th := thread(h, 0)

	now = 1000
	churnToGlobal(h, th, 2000, 64)
	parked := h.GlobalEmptyBytes(te)
	if parked < 3*int64(h.cfg.SuperblockSize) {
		t.Fatalf("only %d bytes parked; test needs at least 3 superblocks", parked)
	}

	// Nothing is 500ns cold yet.
	if got := h.ScavengeGlobal(te, 1<<40, 500); got != 0 {
		t.Fatalf("scavenged %d bytes before anything went cold", got)
	}
	// Advance the clock: everything is cold, but the byte budget caps the
	// pass at one superblock.
	now += 1000
	if got := h.ScavengeGlobal(te, 1, 500); got != int64(h.cfg.SuperblockSize) {
		t.Fatalf("budgeted scavenge released %d, want one superblock %d", got, h.cfg.SuperblockSize)
	}
	// The rest goes on the next unbudgeted pass.
	if got := h.ScavengeGlobal(te, 1<<40, 500); got != parked-int64(h.cfg.SuperblockSize) {
		t.Fatalf("second pass released %d, want %d", got, parked-int64(h.cfg.SuperblockSize))
	}
	if err := h.CheckIntegrity(); err != nil {
		t.Fatal(err)
	}
}

func TestTryScavengeBacksOffUnderContention(t *testing.T) {
	h := newHoard(Config{Heaps: 1})
	th := thread(h, 0)
	churnToGlobal(h, th, 500, 64)

	g := h.heaps[0]
	g.Lock.Lock(te)
	if _, ok := h.TryScavengeGlobal(te, 1<<40, 0); ok {
		t.Fatal("TryScavengeGlobal claimed success while the global lock was held")
	}
	if _, ok := h.TryGlobalEmptyBytes(te); ok {
		t.Fatal("TryGlobalEmptyBytes claimed success while the global lock was held")
	}
	g.Lock.Unlock(te)
	if _, ok := h.TryScavengeGlobal(te, 1<<40, 0); !ok {
		t.Fatal("TryScavengeGlobal failed with the lock free")
	}
}

// TestGlobalEmptyLimitCommittedAccounting is the regression test for the
// release-accounting satellite: superblocks returned to the OS by the
// GlobalEmptyLimit immediate-free path must leave Stats.Committed (the
// public footprint gauge) — releases that only bumped a counter while the
// committed gauge kept ratcheting would make the footprint unobservable.
func TestGlobalEmptyLimitCommittedAccounting(t *testing.T) {
	h := newHoard(Config{Heaps: 1, GlobalEmptyLimit: 2})
	th := thread(h, 0)
	ps := make([]alloc.Ptr, 2000)
	for i := range ps {
		ps[i] = h.Malloc(th, 64)
	}
	peakLive := h.Stats().LiveBytes
	committedAtPeak := h.Space().Committed()
	for _, p := range ps {
		h.Free(th, p)
	}
	st := h.Space().Stats()
	if st.Releases == 0 {
		t.Fatal("GlobalEmptyLimit never returned superblocks to the OS")
	}
	limit := int64((h.cfg.GlobalEmptyLimit + 1 + h.cfg.K) * h.cfg.SuperblockSize)
	if st.Committed > limit {
		t.Fatalf("Committed = %d after all frees, want <= %d (releases must lower the gauge)", st.Committed, limit)
	}
	if st.Committed >= committedAtPeak {
		t.Fatalf("Committed %d did not drop from its loaded value %d", st.Committed, committedAtPeak)
	}
	if st.Reserved != st.Committed {
		t.Fatalf("reserved %d != committed %d with no scavenging active", st.Reserved, st.Committed)
	}
	if st.PeakCommitted < peakLive {
		t.Fatalf("PeakCommitted %d below peak live bytes %d", st.PeakCommitted, peakLive)
	}
	if err := h.CheckIntegrity(); err != nil {
		t.Fatal(err)
	}
}

// TestScavengeThenGlobalEmptyLimitRelease covers the interaction of the two
// release policies: a decommitted superblock evicted by the immediate-free
// path must not double-subtract its bytes.
func TestScavengeThenEviction(t *testing.T) {
	h := newHoard(Config{Heaps: 1})
	th := thread(h, 0)
	churnToGlobal(h, th, 2000, 64)
	h.ReleaseMemory(te)
	// Re-churn a different size class so the decommitted superblocks are
	// reinitialized cross-class through TakeSuper.
	churnToGlobal(h, th, 500, 128)
	if err := h.CheckIntegrity(); err != nil {
		t.Fatal(err)
	}
	st := h.Space().Stats()
	if st.Reserved < st.Committed {
		t.Fatalf("reserved %d < committed %d", st.Reserved, st.Committed)
	}
}
