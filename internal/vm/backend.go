package vm

import (
	"errors"
	"sync"
	"sync/atomic"
)

// Backend is the memory substrate an allocator runs on. Two implementations
// exist:
//
//   - *Space, the deterministic simulated address space (New). Spans are
//     Go-managed byte slices, decommit is accounting plus zero/poison fill,
//     and every platform behaves identically. This is the default and the
//     substrate for all deterministic experiments.
//   - *Arena (NewArena, linux/amd64 and linux/arm64 only), one large mmap'd
//     virtual reservation. Span addresses are real virtual addresses,
//     pointer→span resolution is address arithmetic on the reservation base,
//     and Decommit is a real madvise(MADV_DONTNEED), so footprint numbers
//     are measurable as process RSS.
//
// All methods are safe for concurrent use; Lookup and Bytes are lock-free on
// both implementations.
type Backend interface {
	// Name identifies the implementation: "sim" or "arena".
	Name() string

	// Reserve returns a new span of size bytes (rounded up to whole pages)
	// whose base address is a multiple of align (zero means page
	// alignment). The span is fully committed.
	Reserve(size, align int, owner any) *Span

	// Release returns a span to the backend. Its addresses become invalid
	// until the region is reserved again.
	Release(sp *Span)

	// Lookup returns the live span containing addr, or nil.
	Lookup(addr uint64) *Span

	// Bytes returns a view of n bytes of backing memory at addr, panicking
	// if the range is not fully inside one live span.
	Bytes(addr uint64, n int) []byte

	// SetPoison controls debug poisoning of released/decommitted memory.
	// The arena backend ignores it: the OS already guarantees that
	// decommitted pages read back as zeros, which is what the poison
	// patterns exist to emulate. Tests that assert poison bytes must pin
	// the simulated backend.
	SetPoison(on bool)

	// Stats returns a snapshot of the backend's accounting.
	Stats() Stats

	// Reserved, PeakReserved, Committed, PeakCommitted, and
	// DecommittedBytes expose the individual gauges behind Stats.
	Reserved() int64
	PeakReserved() int64
	Committed() int64
	PeakCommitted() int64
	DecommittedBytes() int64

	// ResetPeak lowers the peak-committed and peak-reserved marks to the
	// current values.
	ResetPeak()

	// Close releases backend resources (the arena's virtual reservation).
	// The backend and every span obtained from it are invalid afterwards;
	// Close must only be called once the owning allocator is quiescent.
	// Closing the simulated backend is a no-op.
	Close() error
}

// ErrArenaUnsupported is returned by NewArena on platforms without the
// mmap-based arena implementation (everything but linux/amd64 and
// linux/arm64).
var ErrArenaUnsupported = errors.New("vm: arena backend requires linux/amd64 or linux/arm64")

// ArenaOptions configures NewArena. The zero value selects the defaults.
type ArenaOptions struct {
	// SpanSize is the superblock size the slot region is carved into. It
	// must be a power of two and at least one page. Reserves of exactly
	// this size and alignment ≤ SpanSize resolve by pure address
	// arithmetic. Default 8192, the paper's S.
	SpanSize int
	// SlotRegionBytes is the virtual size of the superblock slot region.
	// Default 1 GiB; rounded up to a SpanSize multiple.
	SlotRegionBytes int64
	// LargeRegionBytes is the virtual size of the variable-size region
	// serving large objects. Default 512 MiB; rounded up to a SpanSize
	// multiple.
	LargeRegionBytes int64
	// GrowBytes is the virtual size of each extension mapping the arena
	// adds when its initial reservation is exhausted (exhaustion grows the
	// arena rather than panicking; see Stats.Grows). A single over-sized
	// Reserve gets an extension sized to fit it. Default 64 MiB; rounded up
	// to a SpanSize multiple.
	GrowBytes int64
}

// counters is the reserved/committed accounting shared by every backend.
// Embedding it provides the Stats and gauge accessor methods of the Backend
// interface.
type counters struct {
	reserved     atomic.Int64
	peakReserved atomic.Int64
	committed    atomic.Int64
	peak         atomic.Int64
	decommitted  atomic.Int64
	reserves     atomic.Int64
	releases     atomic.Int64
	recycled     atomic.Int64
	decommits    atomic.Int64
	recommits    atomic.Int64
	grows        atomic.Int64
}

// addCommitted adds delta committed bytes and maintains the high-water mark.
func (c *counters) addCommitted(delta int64) {
	v := c.committed.Add(delta)
	for {
		p := c.peak.Load()
		if v <= p || c.peak.CompareAndSwap(p, v) {
			break
		}
	}
}

// addReserved adds delta reserved bytes and maintains the high-water mark.
func (c *counters) addReserved(delta int64) {
	v := c.reserved.Add(delta)
	for {
		p := c.peakReserved.Load()
		if v <= p || c.peakReserved.CompareAndSwap(p, v) {
			break
		}
	}
}

// Stats returns a snapshot of the accounting.
func (c *counters) Stats() Stats {
	return Stats{
		Reserved:         c.reserved.Load(),
		PeakReserved:     c.peakReserved.Load(),
		Committed:        c.committed.Load(),
		PeakCommitted:    c.peak.Load(),
		DecommittedBytes: c.decommitted.Load(),
		Reserves:         c.reserves.Load(),
		Releases:         c.releases.Load(),
		Recycled:         c.recycled.Load(),
		Decommits:        c.decommits.Load(),
		Recommits:        c.recommits.Load(),
		Grows:            c.grows.Load(),
	}
}

// Reserved returns the number of address-space bytes currently reserved.
func (c *counters) Reserved() int64 { return c.reserved.Load() }

// PeakReserved returns the high-water mark of reserved bytes.
func (c *counters) PeakReserved() int64 { return c.peakReserved.Load() }

// Committed returns the number of bytes currently committed.
func (c *counters) Committed() int64 { return c.committed.Load() }

// PeakCommitted returns the high-water mark of committed bytes.
func (c *counters) PeakCommitted() int64 { return c.peak.Load() }

// DecommittedBytes returns the reserved-but-unbacked byte total.
func (c *counters) DecommittedBytes() int64 { return c.decommitted.Load() }

// ResetPeak lowers the peak-committed and peak-reserved marks to the current
// values, so an experiment can measure its own high-water marks in a reused
// backend.
func (c *counters) ResetPeak() {
	c.peak.Store(c.committed.Load())
	c.peakReserved.Store(c.reserved.Load())
}

// spanHost is the backend-internal face a Span talks to: the shared
// Decommit/Recommit bookkeeping in span.go delegates the physical part
// (dropping and restoring page backing) here. All hook methods except
// counts are called with the host's span mutex held.
type spanHost interface {
	// spanMu returns the mutex guarding span decommit bitmaps.
	spanMu() *sync.Mutex
	// counts returns the backend's accounting block.
	counts() *counters
	// dropPages physically drops the committed page range [off, off+n) of
	// sp: zero/poison fill for the simulated space, madvise(MADV_DONTNEED)
	// for the arena.
	dropPages(sp *Span, off, n int)
	// backPages physically restores the page range [off, off+n) of sp:
	// zero/poison fill for the simulated space, a no-op for the arena
	// (the kernel zero-fills on the next touch).
	backPages(sp *Span, off, n int)
}
