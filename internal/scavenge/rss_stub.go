//go:build !linux

package scavenge

import "errors"

// ErrNoRSS is returned by ReadRSS on platforms without /proc/self/statm.
var ErrNoRSS = errors.New("scavenge: RSS measurement requires /proc/self/statm (linux)")

// ReadRSS is unavailable on this platform.
func ReadRSS() (int64, error) { return 0, ErrNoRSS }
