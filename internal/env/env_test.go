package env

import (
	"sync"
	"testing"
	"time"
)

func TestRealEnvIsInert(t *testing.T) {
	e := &RealEnv{ID: 7}
	e.Charge(OpMallocFast, 100)
	e.Touch(0x1234, 64, true)
	if e.ThreadID() != 7 {
		t.Fatalf("ThreadID = %d", e.ThreadID())
	}
}

func TestRealLockMutualExclusion(t *testing.T) {
	l := RealLockFactory{}.NewLock("t")
	e := &RealEnv{}
	var counter, race int
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				l.Lock(e)
				counter++
				race = counter
				l.Unlock(e)
			}
		}()
	}
	wg.Wait()
	if counter != 8000 || race == 0 {
		t.Fatalf("counter = %d", counter)
	}
}

func TestRealLockTryLock(t *testing.T) {
	l := RealLockFactory{}.NewLock("t")
	e := &RealEnv{}
	if !l.TryLock(e) {
		t.Fatal("TryLock on free lock failed")
	}
	if l.TryLock(e) {
		t.Fatal("TryLock on held lock succeeded")
	}
	l.Unlock(e)
	if !l.TryLock(e) {
		t.Fatal("TryLock after unlock failed")
	}
	l.Unlock(e)
}

func TestCostKindStrings(t *testing.T) {
	seen := map[string]bool{}
	for k := CostKind(0); k < NumCostKinds; k++ {
		s := k.String()
		if s == "" || s == "unknown" {
			t.Fatalf("kind %d has no name", k)
		}
		if seen[s] {
			t.Fatalf("duplicate name %q", s)
		}
		seen[s] = true
	}
	if CostKind(99).String() != "unknown" {
		t.Fatal("out-of-range kind should be unknown")
	}
}

func TestCountingLockFactory(t *testing.T) {
	f := &CountingLockFactory{Inner: RealLockFactory{}}
	e := &RealEnv{}
	a := f.NewLock("a")
	b := f.NewLock("b")
	a.Lock(e)
	b.Lock(e)
	if b.TryLock(e) {
		t.Fatal("TryLock on held lock succeeded")
	}
	if got := f.Acquires(); got != 2 {
		t.Fatalf("Acquires = %d after 2 locks and a failed TryLock, want 2", got)
	}
	a.Unlock(e)
	b.Unlock(e)
	if !a.TryLock(e) {
		t.Fatal("TryLock on free lock failed")
	}
	a.Unlock(e)
	if got := f.Acquires(); got != 3 {
		t.Fatalf("Acquires = %d, want 3", got)
	}
}

func TestCountingLockSiteAttribution(t *testing.T) {
	f := &CountingLockFactory{Inner: RealLockFactory{}}
	e := &RealEnv{}
	a := f.NewLock("heap-1")
	b := f.NewLock("heap-2")

	// Two labeled sites on one lock, one on the other, plus an unlabeled
	// acquisition and a try-miss per site kind.
	LockWith(a, e, "malloc-refill")
	a.Unlock(e)
	LockWith(a, e, "malloc-refill")
	a.Unlock(e)
	LockWith(a, e, "free-local")
	if TryLockWith(a, e, "drain-nudge") {
		t.Fatal("TryLockWith succeeded on a held lock")
	}
	a.Unlock(e)
	b.Lock(e) // unlabeled: attributed to the "" site
	b.Unlock(e)
	if !TryLockWith(b, e, "drain-nudge") {
		t.Fatal("TryLockWith failed on a free lock")
	}
	b.Unlock(e)

	got := map[[2]string]SiteStat{}
	for _, s := range f.SiteStats() {
		got[[2]string{s.Lock, s.Label}] = s
	}
	checks := []struct {
		lock, label         string
		acquires, tryMisses int64
	}{
		{"heap-1", "malloc-refill", 2, 0},
		{"heap-1", "free-local", 1, 0},
		{"heap-1", "drain-nudge", 0, 1},
		{"heap-2", "", 1, 0},
		{"heap-2", "drain-nudge", 1, 0},
	}
	for _, c := range checks {
		s, ok := got[[2]string{c.lock, c.label}]
		if !ok {
			t.Fatalf("no site stat for (%s, %q); have %v", c.lock, c.label, f.SiteStats())
		}
		if s.Acquires != c.acquires || s.TryMisses != c.tryMisses {
			t.Errorf("(%s, %q): acquires=%d tryMisses=%d, want %d/%d",
				c.lock, c.label, s.Acquires, s.TryMisses, c.acquires, c.tryMisses)
		}
	}
	// The aggregate counter matches the per-site sum of acquisitions.
	var sum int64
	for _, s := range f.SiteStats() {
		sum += s.Acquires
	}
	if sum != f.Acquires() {
		t.Fatalf("site acquires sum to %d, factory total is %d", sum, f.Acquires())
	}
	// Sorted busiest-first.
	ss := f.SiteStats()
	for i := 1; i < len(ss); i++ {
		if ss[i].Acquires > ss[i-1].Acquires {
			t.Fatalf("SiteStats not sorted by acquires: %v", ss)
		}
	}
}

func TestCountingLockContendedAttribution(t *testing.T) {
	f := &CountingLockFactory{Inner: RealLockFactory{}}
	l := f.NewLock("contended")
	e := &RealEnv{}
	l.Lock(e)
	release := make(chan struct{})
	acquired := make(chan struct{})
	go func() {
		e2 := &RealEnv{ID: 1}
		LockWith(l, e2, "waiter") // blocks until the holder releases
		close(acquired)
		<-release
		l.Unlock(e2)
	}()
	// Give the waiter time to hit the try-probe and block.
	for i := 0; i < 1000; i++ {
		if hasContended(f, "contended", "waiter") {
			break
		}
		timeSleep()
	}
	l.Unlock(e)
	<-acquired
	close(release)
	if !hasContended(f, "contended", "waiter") {
		t.Fatal("contended acquisition was not attributed to its site")
	}
}

func timeSleep() { time.Sleep(100 * time.Microsecond) }

func hasContended(f *CountingLockFactory, lock, label string) bool {
	for _, s := range f.SiteStats() {
		if s.Lock == lock && s.Label == label && s.Contended > 0 {
			return true
		}
	}
	return false
}
