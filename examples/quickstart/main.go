// Quickstart: allocate, use, resize, and free memory with the Hoard
// allocator's public API, then read the allocator's statistics.
package main

import (
	"fmt"

	hoard "hoardgo"
)

func main() {
	// A zero Config builds a Hoard allocator with the paper's parameters
	// (8 KiB superblocks, f=1/4, size classes x1.2).
	a := hoard.MustNew(hoard.Config{})

	// Each worker goroutine registers once and allocates through its
	// Thread. Here a single thread suffices.
	t := a.NewThread()

	// Malloc returns an opaque pointer into the allocator's address
	// space; Bytes gives a writable view of the block.
	p := t.Malloc(64)
	copy(t.Bytes(p, 64), "the quick brown fox jumps over the lazy dog")
	fmt.Printf("allocated %d usable bytes at %#x\n", t.UsableSize(p), uint64(p))
	fmt.Printf("contents: %q\n", t.Bytes(p, 44))

	// Realloc grows the block, preserving contents.
	p = t.Realloc(p, 4096)
	fmt.Printf("after realloc: %d usable bytes, contents intact: %q\n",
		t.UsableSize(p), t.Bytes(p, 19))

	// Calloc returns zeroed memory.
	q := t.Calloc(128)
	fmt.Printf("calloc'd block starts zeroed: %v\n", t.Bytes(q, 8))

	t.Free(p)
	t.Free(q)

	st := a.Stats()
	fmt.Printf("stats: %d mallocs, %d frees, %d B live, %d B footprint (peak %d B)\n",
		st.Mallocs, st.Frees, st.LiveBytes, st.FootprintBytes, st.PeakFootprintBytes)
	if err := a.CheckIntegrity(); err != nil {
		panic(err)
	}
	fmt.Println("integrity check passed")
}
