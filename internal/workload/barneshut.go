package workload

import (
	"encoding/binary"
	"math"
	"math/rand"
	"sort"

	"hoardgo/internal/alloc"
	"hoardgo/internal/env"
)

// BarnesHutConfig parameterizes the Barnes-Hut n-body benchmark from the
// paper's application suite. Each timestep rebuilds an octree of small
// nodes (the allocation load), computes forces by tree traversal (the
// compute load), and frees the tree — the classic churn pattern that
// rewards fast, scalable allocation without cross-thread frees.
//
// Bodies are partitioned *spatially* across threads (by Morton order, as
// parallel n-body codes do): each thread builds an octree over a compact
// region and every thread computes forces against all partial trees — force
// superposition makes the forest decomposition exact, and spatial
// compactness lets the opening-angle test prune distant partial trees near
// their roots. Tree nodes live in allocator memory and are read through it,
// so traversal costs reflect the allocator's placement decisions.
type BarnesHutConfig struct {
	// Threads is the worker count.
	Threads int
	// Bodies is the total body count, split across threads.
	Bodies int
	// Steps is the number of timesteps (tree rebuilds).
	Steps int
	// Theta is the Barnes-Hut opening angle (0.5 classically).
	Theta float64
	// DT is the integration timestep.
	DT float64
	// Seed makes runs reproducible.
	Seed int64
}

// DefaultBarnesHut gives a simulation-friendly instance.
func DefaultBarnesHut(threads int) BarnesHutConfig {
	return BarnesHutConfig{
		Threads: threads,
		Bodies:  2000,
		Steps:   2,
		Theta:   0.7,
		DT:      1e-3,
		Seed:    1,
	}
}

// Octree node layout in allocator memory (all fields little-endian):
//
//	[0,64)    8 child pointers
//	[64,72)   mass
//	[72,96)   center of mass x,y,z
//	[96,120)  cell center x,y,z
//	[120,128) cell half-width
//	[128,136) body index (-1 if internal or empty)
//	[136,144) subtree body count
const (
	nodeSize    = 144
	offChildren = 0
	offMass     = 64
	offCOM      = 72
	offCenter   = 96
	offHalf     = 120
	offBody     = 128
	offCount    = 136
)

// bhTree builds and traverses one thread's octree through the allocator.
type bhTree struct {
	a      alloc.Allocator
	t      *alloc.Thread
	e      env.Env
	h      *Harness
	allocs int64
	visits int64 // nodes visited by force traversals (costzone weights)
}

func f64get(b []byte, off int) float64 {
	return math.Float64frombits(binary.LittleEndian.Uint64(b[off:]))
}

func f64put(b []byte, off int, v float64) {
	binary.LittleEndian.PutUint64(b[off:], math.Float64bits(v))
}

func i64get(b []byte, off int) int64 {
	return int64(binary.LittleEndian.Uint64(b[off:]))
}

func i64put(b []byte, off int, v int64) {
	binary.LittleEndian.PutUint64(b[off:], uint64(v))
}

func childGet(b []byte, q int) alloc.Ptr {
	return alloc.Ptr(binary.LittleEndian.Uint64(b[offChildren+8*q:]))
}

func childPut(b []byte, q int, p alloc.Ptr) {
	binary.LittleEndian.PutUint64(b[offChildren+8*q:], uint64(p))
}

// newNode allocates an empty cell.
func (bt *bhTree) newNode(cx, cy, cz, half float64) alloc.Ptr {
	p := bt.a.Malloc(bt.t, nodeSize)
	bt.h.OnAlloc(nodeSize)
	bt.allocs++
	b := bt.a.Bytes(p, nodeSize)
	for i := range b {
		b[i] = 0
	}
	f64put(b, offCenter, cx)
	f64put(b, offCenter+8, cy)
	f64put(b, offCenter+16, cz)
	f64put(b, offHalf, half)
	i64put(b, offBody, -1)
	bt.e.Touch(uint64(p), nodeSize, true)
	return p
}

// insert adds body bi (at position pos) to the subtree rooted at p.
func (bt *bhTree) insert(p alloc.Ptr, bi int, pos [][3]float64) {
	for depth := 0; ; depth++ {
		b := bt.a.Bytes(p, nodeSize)
		bt.e.Touch(uint64(p), nodeSize, true)
		bt.e.Charge(env.OpWork, 30)
		count := i64get(b, offCount)
		if count == 0 {
			i64put(b, offBody, int64(bi))
			i64put(b, offCount, 1)
			return
		}
		half := f64get(b, offHalf)
		if count == 1 {
			if half < 1e-9 || depth > 40 {
				// Degenerate co-location: aggregate in place.
				i64put(b, offCount, count+1)
				return
			}
			// Split the leaf: push the resident body down.
			old := int(i64get(b, offBody))
			i64put(b, offBody, -1)
			bt.insertChild(p, old, pos)
			b = bt.a.Bytes(p, nodeSize)
		}
		i64put(b, offCount, i64get(b, offCount)+1)
		p = bt.childFor(p, pos[bi])
	}
}

// childFor returns (creating if needed) the child cell containing position,
// for continuation of the insertion loop.
func (bt *bhTree) childFor(p alloc.Ptr, at [3]float64) alloc.Ptr {
	b := bt.a.Bytes(p, nodeSize)
	cx, cy, cz := f64get(b, offCenter), f64get(b, offCenter+8), f64get(b, offCenter+16)
	half := f64get(b, offHalf)
	q := 0
	nx, ny, nz := cx-half/2, cy-half/2, cz-half/2
	if at[0] >= cx {
		q |= 1
		nx = cx + half/2
	}
	if at[1] >= cy {
		q |= 2
		ny = cy + half/2
	}
	if at[2] >= cz {
		q |= 4
		nz = cz + half/2
	}
	c := childGet(b, q)
	if c.IsNil() {
		c = bt.newNode(nx, ny, nz, half/2)
		b = bt.a.Bytes(p, nodeSize) // re-view after allocation
		childPut(b, q, c)
		bt.e.Touch(uint64(p), 8, true)
	}
	return c
}

// insertChild routes an already-resident body one level down (used when
// splitting a leaf).
func (bt *bhTree) insertChild(p alloc.Ptr, bi int, pos [][3]float64) {
	c := bt.childFor(p, pos[bi])
	cb := bt.a.Bytes(c, nodeSize)
	bt.e.Touch(uint64(c), nodeSize, true)
	// The child is fresh or a leaf chain; reuse insert's loop from there.
	if i64get(cb, offCount) == 0 {
		i64put(cb, offBody, int64(bi))
		i64put(cb, offCount, 1)
		return
	}
	bt.insert(c, bi, pos)
	// Correct double count: insert incremented the child's count, but the
	// parent already accounted this body once overall; counts are per
	// subtree so no adjustment is needed.
}

// summarize computes mass and center-of-mass bottom-up.
func (bt *bhTree) summarize(p alloc.Ptr, pos [][3]float64, mass []float64) (m, x, y, z float64) {
	b := bt.a.Bytes(p, nodeSize)
	bt.e.Touch(uint64(p), nodeSize, true)
	bt.e.Charge(env.OpWork, 30)
	if bi := i64get(b, offBody); bi >= 0 {
		n := float64(i64get(b, offCount)) // co-located aggregates
		m = mass[bi] * n
		x, y, z = pos[bi][0], pos[bi][1], pos[bi][2]
		f64put(b, offMass, m)
		f64put(b, offCOM, x)
		f64put(b, offCOM+8, y)
		f64put(b, offCOM+16, z)
		return m, x, y, z
	}
	var sx, sy, sz float64
	for q := 0; q < 8; q++ {
		c := childGet(b, q)
		if c.IsNil() {
			continue
		}
		cm, cx, cy, cz := bt.summarize(c, pos, mass)
		m += cm
		sx += cm * cx
		sy += cm * cy
		sz += cm * cz
	}
	if m > 0 {
		x, y, z = sx/m, sy/m, sz/m
	}
	f64put(b, offMass, m)
	f64put(b, offCOM, x)
	f64put(b, offCOM+8, y)
	f64put(b, offCOM+16, z)
	return m, x, y, z
}

// force accumulates the acceleration on body bi from the subtree at p.
func (bt *bhTree) force(p alloc.Ptr, bi int, pos [][3]float64, theta float64, acc *[3]float64) {
	b := bt.a.Bytes(p, nodeSize)
	bt.e.Touch(uint64(p), nodeSize, false)
	bt.e.Charge(env.OpWork, 30)
	bt.visits++
	count := i64get(b, offCount)
	if count == 0 {
		return
	}
	m := f64get(b, offMass)
	x := f64get(b, offCOM)
	y := f64get(b, offCOM+8)
	z := f64get(b, offCOM+16)
	dx, dy, dz := x-pos[bi][0], y-pos[bi][1], z-pos[bi][2]
	dist2 := dx*dx + dy*dy + dz*dz
	leafBody := i64get(b, offBody)
	if leafBody == int64(bi) {
		return // self
	}
	half := f64get(b, offHalf)
	if leafBody >= 0 || (2*half)*(2*half) < theta*theta*dist2 {
		dist2 += 1e-6 // softening
		inv := 1 / (dist2 * math.Sqrt(dist2))
		*acc = [3]float64{acc[0] + m*dx*inv, acc[1] + m*dy*inv, acc[2] + m*dz*inv}
		return
	}
	for q := 0; q < 8; q++ {
		if c := childGet(b, q); !c.IsNil() {
			bt.force(c, bi, pos, theta, acc)
		}
	}
}

// freeTree releases every node post-order.
func (bt *bhTree) freeTree(p alloc.Ptr) {
	b := bt.a.Bytes(p, nodeSize)
	for q := 0; q < 8; q++ {
		if c := childGet(b, q); !c.IsNil() {
			bt.freeTree(c)
		}
	}
	bt.a.Free(bt.t, p)
	bt.h.OnFree(nodeSize)
	bt.allocs++
}

// mortonKey interleaves the top 21 bits of each quantized coordinate,
// giving the space-filling order used to partition bodies spatially.
func mortonKey(p [3]float64) uint64 {
	var key uint64
	for d := 0; d < 3; d++ {
		// Quantize [-1.5, 1.5) to 21 bits.
		q := uint64((p[d] + 1.5) / 3.0 * (1 << 21))
		if q >= 1<<21 {
			q = 1<<21 - 1
		}
		key |= spread3(q) << uint(d)
	}
	return key
}

// spread3 spaces the low 21 bits of x three apart.
func spread3(x uint64) uint64 {
	x &= (1 << 21) - 1
	x = (x | x<<32) & 0x1f00000000ffff
	x = (x | x<<16) & 0x1f0000ff0000ff
	x = (x | x<<8) & 0x100f00f00f00f00f
	x = (x | x<<4) & 0x10c30c30c30c30c3
	x = (x | x<<2) & 0x1249249249249249
	return x
}

// chunkBox returns the bounding cube (center, half-width) of a body subset.
func chunkBox(bodies []int, pos [][3]float64) (c [3]float64, half float64) {
	lo := [3]float64{math.Inf(1), math.Inf(1), math.Inf(1)}
	hi := [3]float64{math.Inf(-1), math.Inf(-1), math.Inf(-1)}
	for _, bi := range bodies {
		for d := 0; d < 3; d++ {
			lo[d] = math.Min(lo[d], pos[bi][d])
			hi[d] = math.Max(hi[d], pos[bi][d])
		}
	}
	for d := 0; d < 3; d++ {
		c[d] = (lo[d] + hi[d]) / 2
		half = math.Max(half, (hi[d]-lo[d])/2)
	}
	return c, half + 1e-6
}

// BarnesHut runs the benchmark on h.
func BarnesHut(h *Harness, cfg BarnesHutConfig) Result {
	n := cfg.Bodies
	pos := make([][3]float64, n)
	vel := make([][3]float64, n)
	mass := make([]float64, n)
	rng := rand.New(rand.NewSource(cfg.Seed))
	for i := 0; i < n; i++ {
		for d := 0; d < 3; d++ {
			pos[i][d] = rng.Float64()*2 - 1
		}
		mass[i] = 0.5 + rng.Float64()
	}
	// Spatial partition: contiguous chunks of the Morton order. Positions
	// drift negligibly over the simulated steps, so the order is computed
	// once.
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		return mortonKey(pos[order[a]]) < mortonKey(pos[order[b]])
	})
	acc := make([][3]float64, n)
	roots := make([]alloc.Ptr, cfg.Threads)
	barrier := h.NewBarrier(cfg.Threads)
	opsPer := make([]int64, cfg.Threads)
	// Costzones (as in SPLASH-2 barnes): weights[i] is body order[i]'s
	// traversal cost from the previous step; each step's chunks split the
	// Morton order into equal-weight zones. Written by each body's owner
	// during the force phase, read by everyone after the barrier.
	weights := make([]int64, n)
	for i := range weights {
		weights[i] = 1
	}
	// costzone returns thread id's half-open weight-balanced range of
	// positions in the Morton order. Every thread computes identical
	// boundaries from the shared weights (deterministic, no coordination).
	costzone := func(id int) (lo, hi int) {
		var total int64
		for _, w := range weights {
			total += w
		}
		bound := func(k int) int {
			// First position where the weight prefix reaches k/threads
			// of the total.
			target := total * int64(k) / int64(cfg.Threads)
			var run int64
			for i := 0; i < n; i++ {
				if run >= target {
					return i
				}
				run += weights[i]
			}
			return n
		}
		return bound(id), bound(id + 1)
	}

	h.Par(cfg.Threads, func(id int, e env.Env, t *alloc.Thread) {
		bt := &bhTree{a: h.Allocator(), t: t, e: e, h: h}
		for step := 0; step < cfg.Steps; step++ {
			zlo, zhi := costzone(id)
			mine := order[zlo:zhi]
			// Build phase: each thread's partial tree over its
			// spatially compact body chunk (empty zones build nothing).
			var root alloc.Ptr
			if len(mine) > 0 {
				c, half := chunkBox(mine, pos)
				root = bt.newNode(c[0], c[1], c[2], half)
				for _, bi := range mine {
					bt.insert(root, bi, pos)
				}
				bt.summarize(root, pos, mass)
			}
			roots[id] = root
			barrier.Wait(e)

			// Force phase: every body against every partial tree;
			// distant compact trees prune at their roots. Per-body
			// visit counts become next step's costzone weights.
			for oi, bi := range mine {
				before := bt.visits
				var a3 [3]float64
				for _, r := range roots {
					if r.IsNil() {
						continue
					}
					bt.force(r, bi, pos, cfg.Theta, &a3)
				}
				acc[bi] = a3
				weights[zlo+oi] = bt.visits - before + 1
			}
			barrier.Wait(e)

			// Integrate and tear down.
			for _, bi := range mine {
				for d := 0; d < 3; d++ {
					vel[bi][d] += acc[bi][d] * cfg.DT
					pos[bi][d] += vel[bi][d] * cfg.DT
				}
			}
			if !root.IsNil() {
				bt.freeTree(root)
			}
			barrier.Wait(e)
		}
		opsPer[id] = bt.allocs
	})
	var ops int64
	for _, o := range opsPer {
		ops += o
	}
	return h.Result(cfg.Threads, ops)
}
