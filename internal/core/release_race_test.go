package core

import (
	"testing"

	"hoardgo/internal/env"
	"hoardgo/internal/superblock"
)

// TestReleaseGlobalEmptyRaceLoser is the regression test for a double
// release: two lock-free frees can both observe the same superblock's
// emptying transition and both reach the GlobalEmptyLimit policy (the
// global lock serializes them, but both get in). The winner releases the
// superblock; the loser, replayed here deterministically, must see
// Released() and bail instead of releasing the dead superblock's nil span
// again.
func TestReleaseGlobalEmptyRaceLoser(t *testing.T) {
	h := newHoard(Config{Heaps: 1, GlobalEmptyLimit: 1})
	e := &env.RealEnv{ID: 0}
	g := h.heaps[0]

	a := superblock.New(h.space, h.cfg.SuperblockSize, 2, 64)
	a.SetOwnerID(0)
	b := superblock.New(h.space, h.cfg.SuperblockSize, 2, 64)
	b.SetOwnerID(0)
	env.LockWith(g.Lock, e, "test")
	defer g.Lock.Unlock(e)
	g.Insert(a)
	g.Insert(b)

	// The winner: over the limit, empty, live — released.
	if !h.releaseGlobalEmpty(e, g, a) {
		t.Fatal("first release refused")
	}
	if !a.Released() {
		t.Fatal("winner's superblock still holds its span")
	}
	// The loser: same superblock, still empty by the word, but already
	// dead. Must refuse (and above all must not panic on the nil span).
	if h.releaseGlobalEmpty(e, g, a) {
		t.Fatal("released the same superblock twice")
	}
	// The policy still works for live superblocks afterwards... once the
	// heap is over its cap again.
	if h.releaseGlobalEmpty(e, g, b) {
		t.Fatal("released below the cap")
	}
	c := superblock.New(h.space, h.cfg.SuperblockSize, 2, 64)
	c.SetOwnerID(0)
	g.Insert(c)
	if !h.releaseGlobalEmpty(e, g, c) {
		t.Fatal("release refused above the cap")
	}
}
