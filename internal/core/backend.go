package core

import (
	"os"
	"sync"

	"hoardgo/internal/vm"
)

// newArenaBackend constructs the arena backend. It is a variable so the
// fallback tests can inject creation failures (the real failure modes —
// non-Linux platforms, ulimit-restricted address space, overcommit
// disabled — are hard to provoke portably).
var newArenaBackend = vm.NewArena

// envBackend reads the HOARDGO_BACKEND environment variable once. Setting
// it to "arena" runs every allocator whose Config does not pin a backend on
// real memory — this is how `make arena-smoke` drives the existing test
// suite over the arena.
var envBackend = sync.OnceValue(func() string { return os.Getenv("HOARDGO_BACKEND") })

// openBackend resolves the configured backend name and builds it. The
// simulated space is the default; a requested arena that cannot be created
// (or an unrecognized HOARDGO_BACKEND value) degrades to the simulated
// space with the reason recorded rather than panicking, so the same binary
// runs on every platform.
func openBackend(cfg Config) (vm.Backend, string) {
	name := cfg.Backend
	if name == "" {
		name = envBackend()
	}
	switch name {
	case "", "sim":
		return vm.New(), ""
	case "arena":
		be, err := newArenaBackend(vm.ArenaOptions{SpanSize: cfg.SuperblockSize})
		if err != nil {
			return vm.New(), err.Error()
		}
		return be, ""
	default:
		return vm.New(), "unknown backend \"" + name + "\""
	}
}
