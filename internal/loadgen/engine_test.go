package loadgen

import (
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	hoard "hoardgo"
)

// testPhases is a fast version of the standard schedule for unit tests.
func testPhases(dur time.Duration) []Phase {
	return StandardPhases(2048, 16, 1024, dur, 5000)
}

func TestEngineRun(t *testing.T) {
	a := hoard.MustNew(hoard.Config{
		Procs:               4,
		ThreadCacheCapacity: 32,
		Metrics:             true,
	})
	defer a.Close()
	res, err := Run(Config{
		Allocator:   a,
		Workers:     4,
		Slots:       1024,
		Seed:        1,
		SampleEvery: 10 * time.Millisecond,
	}, testPhases(120*time.Millisecond))
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(res.Phases) != 4 {
		t.Fatalf("got %d phase results, want 4", len(res.Phases))
	}
	for _, ph := range res.Phases {
		if ph.Requests == 0 {
			t.Errorf("phase %s served no requests", ph.Name)
		}
		if ph.Name != "slow-drain" && ph.Malloc.Count == 0 {
			t.Errorf("phase %s recorded no malloc latencies", ph.Name)
		}
		if ph.Request.Count == 0 {
			t.Errorf("phase %s recorded no request latencies", ph.Name)
		}
		if ph.Request.P999 < ph.Request.P50 || ph.Request.Max < ph.Request.P999 {
			t.Errorf("phase %s quantiles disordered: %+v", ph.Name, ph.Request)
		}
	}
	if res.FinalLiveBytes != 0 || res.FinalCachedBytes != 0 {
		t.Fatalf("drain left live=%d cached=%d", res.FinalLiveBytes, res.FinalCachedBytes)
	}
	if len(res.Timeline) == 0 {
		t.Fatalf("no timeline samples over %dms", res.ElapsedNS/1e6)
	}
	if len(res.Locks) == 0 {
		t.Fatalf("Metrics was set but no lock summaries were reported")
	}
	// The drain phase must actually shrink the live set: its end-of-phase
	// live bytes must be well under the burst phase's.
	burst, drain := res.Phases[2], res.Phases[3]
	if drain.EndLiveBytes >= burst.EndLiveBytes && burst.EndLiveBytes > 0 {
		t.Errorf("slow-drain did not shrink live bytes: %d -> %d",
			burst.EndLiveBytes, drain.EndLiveBytes)
	}
}

func TestEngineDebugStack(t *testing.T) {
	// The full stack — debug canaries + quarantine over tcache over the
	// core — must also drain to zero through the engine's lifecycle.
	a := hoard.MustNew(hoard.Config{
		Procs:               2,
		ThreadCacheCapacity: 16,
		Debug:               true,
	})
	defer a.Close()
	res, err := Run(Config{Allocator: a, Workers: 2, Slots: 256, Seed: 2},
		testPhases(40*time.Millisecond))
	if err != nil {
		t.Fatalf("Run over debug stack: %v", err)
	}
	if res.FinalLiveBytes != 0 || res.FinalCachedBytes != 0 {
		t.Fatalf("debug stack drain left live=%d cached=%d",
			res.FinalLiveBytes, res.FinalCachedBytes)
	}
}

func TestEngineErrors(t *testing.T) {
	if _, err := Run(Config{}, testPhases(time.Millisecond)); err == nil {
		t.Fatal("nil allocator accepted")
	}
	a := hoard.MustNew(hoard.Config{})
	defer a.Close()
	if _, err := Run(Config{Allocator: a}, nil); err == nil {
		t.Fatal("empty phase list accepted")
	}
}

// TestLiveLintUnderLoad scrapes the public MetricsHandler while the engine
// drives traffic and lints every response as Prometheus exposition text, on
// both backends. This is the satellite check: the exporter must emit
// well-formed output not just at rest but mid-load, with heap occupancy and
// lock counters changing underfoot. Runs under -race in the load-smoke
// target.
func TestLiveLintUnderLoad(t *testing.T) {
	for _, backend := range []string{"sim", "arena"} {
		t.Run(backend, func(t *testing.T) {
			a := hoard.MustNew(hoard.Config{
				Procs:               2,
				Backend:             backend,
				ThreadCacheCapacity: 32,
				Metrics:             true,
			})
			defer a.Close()
			if backend == "arena" && a.Backend() != "arena" {
				t.Skipf("arena backend unavailable: %s", a.BackendFallbackReason())
			}
			srv := httptest.NewServer(a.MetricsHandler())
			defer srv.Close()

			done := make(chan error, 1)
			go func() {
				_, err := Run(Config{Allocator: a, Workers: 2, Slots: 512, Seed: 3},
					testPhases(80*time.Millisecond))
				done <- err
			}()

			var scrapes int
			for {
				select {
				case err := <-done:
					if err != nil {
						t.Fatalf("Run: %v", err)
					}
					if scrapes < 3 {
						t.Fatalf("only %d scrapes completed during the run", scrapes)
					}
					return
				default:
				}
				resp, err := http.Get(srv.URL)
				if err != nil {
					t.Fatalf("scrape: %v", err)
				}
				body, err := io.ReadAll(resp.Body)
				resp.Body.Close()
				if err != nil {
					t.Fatalf("scrape read: %v", err)
				}
				if err := hoard.LintMetrics(string(body)); err != nil {
					t.Fatalf("scrape %d failed lint: %v", scrapes, err)
				}
				scrapes++
				time.Sleep(10 * time.Millisecond)
			}
		})
	}
}

// TestEngineOverloadSheds verifies the open-loop contract: a rate the
// workers cannot match turns into drops, not into a stalled listener.
func TestEngineOverloadSheds(t *testing.T) {
	a := hoard.MustNew(hoard.Config{Procs: 1})
	defer a.Close()
	phases := []Phase{{
		Name:     "flood",
		Duration: 60 * time.Millisecond,
		Rate:     func(x float64) float64 { return 5e6 }, // unsourceable
		Keys:     NewUniform(64),
		Sizes:    NewSizes(NewUniform(1), 1<<16, 1<<16), // 64 KiB each
	}}
	res, err := Run(Config{Allocator: a, Workers: 1, Slots: 16, QueueDepth: 8, Seed: 4}, phases)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if res.Dropped == 0 {
		t.Fatalf("no drops under a 5M req/s flood (served %d)", res.Requests)
	}
}

func init() {
	// Guard against the test phases accidentally containing a zero rate,
	// which would spin the listener.
	for _, ph := range testPhases(time.Second) {
		for _, x := range []float64{0, 0.25, 0.5, 0.75, 0.999} {
			if r := ph.rateAt(x); r < 1 {
				panic(fmt.Sprintf("phase %s rate %f at x=%f", ph.Name, r, x))
			}
		}
	}
}
