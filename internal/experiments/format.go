package experiments

import (
	"fmt"
	"io"
	"strings"
)

// OutputFormat selects how figures and tables are rendered.
type OutputFormat string

// Formats.
const (
	// FormatText is the aligned plain-text default.
	FormatText OutputFormat = "text"
	// FormatCSV emits comma-separated values for plotting.
	FormatCSV OutputFormat = "csv"
	// FormatMarkdown emits GitHub-flavored tables.
	FormatMarkdown OutputFormat = "md"
)

// ParseFormat validates a format flag value.
func ParseFormat(s string) (OutputFormat, error) {
	switch OutputFormat(s) {
	case FormatText, FormatCSV, FormatMarkdown:
		return OutputFormat(s), nil
	}
	return "", fmt.Errorf("unknown format %q (want text, csv, or md)", s)
}

// Render writes the figure in the requested format.
func (f Figure) Render(w io.Writer, format OutputFormat) {
	switch format {
	case FormatCSV:
		f.renderCSV(w)
	case FormatMarkdown:
		f.renderMarkdown(w)
	default:
		f.Format(w)
	}
}

// cells returns the figure as header + rows of formatted values.
func (f Figure) cells() (header []string, rows [][]string) {
	header = []string{"allocator"}
	for _, p := range f.Procs {
		header = append(header, fmt.Sprintf("P=%d", p))
	}
	for _, s := range f.Series {
		row := []string{s.Allocator}
		if f.Def.Metric == "throughput" {
			for _, v := range s.Throughputs() {
				row = append(row, fmt.Sprintf("%.0f", v))
			}
		} else {
			for _, v := range s.Speedup() {
				row = append(row, fmt.Sprintf("%.2f", v))
			}
		}
		rows = append(rows, row)
	}
	return header, rows
}

func (f Figure) renderCSV(w io.Writer) {
	header, rows := f.cells()
	fmt.Fprintf(w, "# %s (%s): %s\n", f.Def.ID, f.Def.Metric, f.Def.Paper)
	writeCSV(w, header, rows)
}

func (f Figure) renderMarkdown(w io.Writer) {
	header, rows := f.cells()
	fmt.Fprintf(w, "**%s** — %s\n\n", f.Def.Title, f.Def.Paper)
	writeMarkdown(w, header, rows)
}

// Render writes the table in the requested format.
func (t Table) Render(w io.Writer, format OutputFormat) {
	switch format {
	case FormatCSV:
		fmt.Fprintf(w, "# %s: %s\n", t.ID, t.Paper)
		writeCSV(w, t.Header, t.Rows)
	case FormatMarkdown:
		fmt.Fprintf(w, "**%s** — %s\n\n", t.Title, t.Paper)
		writeMarkdown(w, t.Header, t.Rows)
	default:
		t.Format(w)
	}
}

func writeCSV(w io.Writer, header []string, rows [][]string) {
	esc := func(s string) string {
		if strings.ContainsAny(s, ",\"\n") {
			return `"` + strings.ReplaceAll(s, `"`, `""`) + `"`
		}
		return s
	}
	line := func(cells []string) {
		out := make([]string, len(cells))
		for i, c := range cells {
			out[i] = esc(c)
		}
		fmt.Fprintln(w, strings.Join(out, ","))
	}
	line(header)
	for _, r := range rows {
		line(r)
	}
	fmt.Fprintln(w)
}

func writeMarkdown(w io.Writer, header []string, rows [][]string) {
	fmt.Fprintf(w, "| %s |\n", strings.Join(header, " | "))
	sep := make([]string, len(header))
	for i := range sep {
		sep[i] = "---"
	}
	fmt.Fprintf(w, "| %s |\n", strings.Join(sep, " | "))
	for _, r := range rows {
		fmt.Fprintf(w, "| %s |\n", strings.Join(r, " | "))
	}
	fmt.Fprintln(w)
}
