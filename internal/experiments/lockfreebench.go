package experiments

import (
	"fmt"

	"hoardgo/internal/alloc"
	"hoardgo/internal/core"
	"hoardgo/internal/env"
	"hoardgo/internal/workload"
)

// This file is the A11 experiment: the zero-lock steady state ablation
// (DESIGN.md §11). The real-environment half counts actual heap-lock
// acquisitions — attributed per call site by env.CountingLockFactory — on
// the contended workloads with the lock-free warm paths on versus off; the
// simulator half sweeps P to show the throughput effect of removing the
// lock cost from the warm paths. cmd/hoardbench serializes both into the
// committed BENCH_PR6.json artifact.

// LockFreeSite is one (lock x call-site) attribution cell in the artifact.
type LockFreeSite struct {
	Lock      string `json:"lock"`
	Label     string `json:"label"`
	Acquires  int64  `json:"acquires"`
	Contended int64  `json:"contended"`
	TryMisses int64  `json:"try_misses"`
}

// LockFreeVariant is one arm of the lock-acquisition measurement.
type LockFreeVariant struct {
	// LockAcquires is the total lock acquisitions across the run, over
	// every lock the allocator creates.
	LockAcquires int64 `json:"lock_acquires"`
	// Ops is completed mallocs + frees.
	Ops int64 `json:"ops"`
	// LocksPerOp is LockAcquires / Ops.
	LocksPerOp float64 `json:"locks_per_op"`
	// LockFreeMallocs, LockFreeFrees and FastPathRetries confirm which
	// path ran: all zero on the locked arm.
	LockFreeMallocs int64 `json:"lock_free_mallocs"`
	LockFreeFrees   int64 `json:"lock_free_frees"`
	FastPathRetries int64 `json:"fast_path_retries"`
	// Sites is the busiest-first per-call-site attribution table.
	Sites []LockFreeSite `json:"sites"`
}

// LockFreeLockResult compares lock acquisitions per operation with the
// lock-free warm paths enabled versus disabled on one workload.
type LockFreeLockResult struct {
	// Workload is "prodcons" or "larson"; Procs the thread count.
	Workload string `json:"workload"`
	Procs    int    `json:"procs"`
	// Fast is the production arm (warm paths on); Locked the ablation
	// (DisableLockFree — every op through the heap lock, the PR 5
	// protocol).
	Fast   LockFreeVariant `json:"fast"`
	Locked LockFreeVariant `json:"locked"`
	// Improvement is Locked.LocksPerOp / Fast.LocksPerOp — the
	// acceptance criterion requires >= 10 on both workloads at P=8.
	Improvement float64 `json:"improvement"`
}

// lockFreeSites converts a factory's attribution table, keeping it
// busiest-first.
func lockFreeSites(clf *env.CountingLockFactory) []LockFreeSite {
	var out []LockFreeSite
	for _, s := range clf.SiteStats() {
		out = append(out, LockFreeSite{
			Lock:      s.Lock,
			Label:     s.Label,
			Acquires:  s.Acquires,
			Contended: s.Contended,
			TryMisses: s.TryMisses,
		})
	}
	return out
}

// measureLockFreeArm runs one workload on real goroutines with every
// allocator lock wrapped in a counting factory. Real-environment runs are
// nondeterministic in timing but exact in counting: every heap-lock
// acquisition the protocol performs is attributed to its call site.
func measureLockFreeArm(bench string, procs int, disable bool, scale Scale) LockFreeVariant {
	clf := &env.CountingLockFactory{Inner: env.RealLockFactory{}}
	mk := func(p int, _ env.LockFactory) alloc.Allocator {
		return core.New(core.Config{Heaps: 2 * p, DisableLockFree: disable}, clf)
	}
	h := workload.NewRealMaker("hoard", procs, mk)
	var res workload.Result
	switch bench {
	case "prodcons":
		cfg := workload.DefaultProdCons(procs)
		if scale == Quick {
			cfg.Rounds, cfg.Batch = 20, 400
		}
		res, _ = workload.ProdCons(h, cfg)
	case "larson":
		cfg := workload.DefaultLarson(procs)
		if scale == Quick {
			cfg.Rounds, cfg.OpsPerRound, cfg.SlotsPerWindow = 3, 1500, 500
		}
		res = workload.Larson(h, cfg)
	default:
		panic(fmt.Sprintf("experiments: unknown lockfree workload %q", bench))
	}
	if err := h.Allocator().CheckIntegrity(); err != nil {
		panic(fmt.Sprintf("lockfreebench: integrity after %s: %v", bench, err))
	}
	st := res.Alloc
	ops := st.Mallocs + st.Frees
	v := LockFreeVariant{
		LockAcquires:    clf.Acquires(),
		Ops:             ops,
		LockFreeMallocs: st.LockFreeMallocs,
		LockFreeFrees:   st.LockFreeFrees,
		FastPathRetries: st.FastPathRetries,
		Sites:           lockFreeSites(clf),
	}
	if ops > 0 {
		v.LocksPerOp = float64(v.LockAcquires) / float64(ops)
	}
	return v
}

// MeasureLockFreeLocks runs the real-environment halves of A11: prodcons
// and larson at the given thread count, both arms each.
func MeasureLockFreeLocks(procs int, scale Scale) []LockFreeLockResult {
	var out []LockFreeLockResult
	for _, bench := range []string{"prodcons", "larson"} {
		r := LockFreeLockResult{
			Workload: bench,
			Procs:    procs,
			Fast:     measureLockFreeArm(bench, procs, false, scale),
			Locked:   measureLockFreeArm(bench, procs, true, scale),
		}
		if r.Fast.LocksPerOp > 0 {
			r.Improvement = r.Locked.LocksPerOp / r.Fast.LocksPerOp
		}
		out = append(out, r)
	}
	return out
}

// LockFreeSimEntry is one deterministic simulator run in the artifact.
type LockFreeSimEntry struct {
	Bench           string  `json:"bench"`
	Arm             string  `json:"arm"`
	Procs           int     `json:"procs"`
	VirtualMS       float64 `json:"virtual_ms"`
	OpsPerVirtualMS float64 `json:"ops_per_virtual_ms"`
	LockFreeMallocs int64   `json:"lock_free_mallocs"`
	LockFreeFrees   int64   `json:"lock_free_frees"`
}

// lockFreeSimProcs is the P sweep of the simulator half.
func lockFreeSimProcs() []int { return []int{1, 2, 4, 8, 16} }

// LockFreeSimResults sweeps P over threadtest, larson, and prodcons on both
// arms of bare Hoard in the simulator. The simulated throughput is the
// guard: the fast paths must not slow any workload at any P (they remove
// the heap lock's virtual cost from warm operations, so they can only
// help). Deterministic for a given scale.
func LockFreeSimResults(opts Options) []LockFreeSimEntry {
	var out []LockFreeSimEntry
	arms := []struct {
		name    string
		disable bool
	}{
		{"fast", false},
		{"locked", true},
	}
	mkArm := func(disable bool) func(p int, lf env.LockFactory) alloc.Allocator {
		return func(p int, lf env.LockFactory) alloc.Allocator {
			return core.New(core.Config{Heaps: 2 * p, DisableLockFree: disable}, lf)
		}
	}
	for _, id := range []string{"threadtest", "larson"} {
		def, _ := FigureByID(id)
		run := def.Run(opts.Scale)
		for _, procs := range lockFreeSimProcs() {
			for _, arm := range arms {
				h := workload.NewSimMaker("hoard", procs, opts.Cost, mkArm(arm.disable))
				res := run(h, procs)
				out = append(out, lockFreeSimEntry(id, arm.name, procs, res))
			}
		}
	}
	for _, procs := range lockFreeSimProcs() {
		cfg := workload.DefaultProdCons(procs)
		if opts.Scale == Quick {
			cfg.Rounds, cfg.Batch = 20, 400
		}
		for _, arm := range arms {
			h := workload.NewSimMaker("hoard", procs, opts.Cost, mkArm(arm.disable))
			res, _ := workload.ProdCons(h, cfg)
			out = append(out, lockFreeSimEntry("prodcons", arm.name, procs, res))
		}
	}
	return out
}

func lockFreeSimEntry(bench, arm string, procs int, res workload.Result) LockFreeSimEntry {
	e := LockFreeSimEntry{
		Bench:           bench,
		Arm:             arm,
		Procs:           procs,
		VirtualMS:       float64(res.ElapsedNS) / 1e6,
		LockFreeMallocs: res.Alloc.LockFreeMallocs,
		LockFreeFrees:   res.Alloc.LockFreeFrees,
	}
	if res.ElapsedNS > 0 {
		e.OpsPerVirtualMS = float64(res.Ops) / (float64(res.ElapsedNS) / 1e6)
	}
	return e
}

// LockFree renders A11 as two tables' worth of rows: the real-environment
// lock-acquisition comparison first, then the simulator throughput sweep.
func LockFree(opts Options, progress func(string, int)) Table {
	t := Table{
		ID: "lockfree", Title: "A11",
		Paper:  "zero-lock steady state: heap-lock acquisitions per op and simulated throughput, warm paths on vs off",
		Header: []string{"bench", "procs", "metric", "fast", "locked", "ratio"},
	}
	const procs = 8
	if progress != nil {
		progress("hoard/lockfree(real)", procs)
	}
	for _, r := range MeasureLockFreeLocks(procs, opts.Scale) {
		t.Rows = append(t.Rows, []string{
			r.Workload,
			fmt.Sprintf("%d", r.Procs),
			"locks/op",
			fmt.Sprintf("%.4f", r.Fast.LocksPerOp),
			fmt.Sprintf("%.4f", r.Locked.LocksPerOp),
			fmt.Sprintf("%.1fx", r.Improvement),
		})
	}
	if progress != nil {
		progress("hoard/lockfree(sim)", procs)
	}
	sims := LockFreeSimResults(opts)
	byKey := map[string]LockFreeSimEntry{}
	for _, e := range sims {
		byKey[fmt.Sprintf("%s/%d/%s", e.Bench, e.Procs, e.Arm)] = e
	}
	for _, e := range sims {
		if e.Arm != "fast" {
			continue
		}
		locked := byKey[fmt.Sprintf("%s/%d/locked", e.Bench, e.Procs)]
		ratio := 0.0
		if locked.OpsPerVirtualMS > 0 {
			ratio = e.OpsPerVirtualMS / locked.OpsPerVirtualMS
		}
		t.Rows = append(t.Rows, []string{
			e.Bench,
			fmt.Sprintf("%d", e.Procs),
			"ops/virtual ms",
			fmt.Sprintf("%.0f", e.OpsPerVirtualMS),
			fmt.Sprintf("%.0f", locked.OpsPerVirtualMS),
			fmt.Sprintf("%.2fx", ratio),
		})
	}
	return t
}

// LockFreeSmoke is the CI gate (make lockfree-smoke): a quick prodcons run
// whose fast arm must keep heap-lock acquisitions per operation under
// maxLocksPerOp, and whose improvement over the locked arm must reach
// minImprovement. Returns an error instead of asserting so cmd/hoardbench
// can print the numbers before failing.
func LockFreeSmoke(maxLocksPerOp, minImprovement float64) ([]LockFreeLockResult, error) {
	rs := MeasureLockFreeLocks(8, Quick)
	for _, r := range rs {
		if r.Fast.LocksPerOp > maxLocksPerOp {
			return rs, fmt.Errorf("lockfree-smoke: %s fast arm takes %.4f locks/op, want <= %.4f",
				r.Workload, r.Fast.LocksPerOp, maxLocksPerOp)
		}
		if r.Improvement < minImprovement {
			return rs, fmt.Errorf("lockfree-smoke: %s improvement %.1fx, want >= %.1fx",
				r.Workload, r.Improvement, minImprovement)
		}
		if r.Fast.LockFreeMallocs == 0 || r.Fast.LockFreeFrees == 0 {
			return rs, fmt.Errorf("lockfree-smoke: %s fast arm never took the lock-free paths", r.Workload)
		}
		if r.Locked.LockFreeMallocs != 0 || r.Locked.LockFreeFrees != 0 {
			return rs, fmt.Errorf("lockfree-smoke: %s locked arm took lock-free paths", r.Workload)
		}
	}
	return rs, nil
}
