package core

import (
	"math/rand"
	"sync"
	"testing"

	"hoardgo/internal/alloc"
	"hoardgo/internal/env"
)

// TestLockFreeWarmPathCounters pins the steady-state contract in the
// simplest setting: after a warm-up round, single-threaded churn on one size
// class is served by the lock-free paths, not the heap lock.
func TestLockFreeWarmPathCounters(t *testing.T) {
	h := newHoard(Config{Heaps: 2})
	th := thread(h, 0)
	// Warm up: the first malloc takes the locked refill path and publishes
	// the warm superblock.
	p := h.Malloc(th, 64)
	h.Free(th, p)
	before := h.Stats()
	for i := 0; i < 100; i++ {
		q := h.Malloc(th, 64)
		h.Free(th, q)
	}
	st := h.Stats()
	if got := st.LockFreeMallocs - before.LockFreeMallocs; got != 100 {
		t.Errorf("warm churn took %d lock-free mallocs, want 100", got)
	}
	if got := st.LockFreeFrees - before.LockFreeFrees; got != 100 {
		t.Errorf("warm churn took %d lock-free frees, want 100", got)
	}
	if err := h.CheckIntegrity(); err != nil {
		t.Fatal(err)
	}
}

// TestLockFreeDisabledTakesNoFastPath pins the ablation switch: with
// DisableLockFree set, every operation goes through the locked protocol and
// the lock-free counters stay at zero.
func TestLockFreeDisabledTakesNoFastPath(t *testing.T) {
	h := newHoard(Config{Heaps: 2, DisableLockFree: true})
	th := thread(h, 0)
	var ps []alloc.Ptr
	for i := 0; i < 200; i++ {
		ps = append(ps, h.Malloc(th, 64))
	}
	out := make([]alloc.Ptr, 16)
	n := h.MallocBatch(th, 64, len(out), out)
	h.FreeBatch(th, out[:n])
	for _, p := range ps {
		h.Free(th, p)
	}
	st := h.Stats()
	if st.LockFreeMallocs != 0 || st.LockFreeFrees != 0 || st.FastPathRetries != 0 {
		t.Fatalf("DisableLockFree arm used fast paths: mallocs=%d frees=%d retries=%d",
			st.LockFreeMallocs, st.LockFreeFrees, st.FastPathRetries)
	}
	if err := h.CheckIntegrity(); err != nil {
		t.Fatal(err)
	}
}

// TestUnifiedFastFreeCrossHeap pins the unified free list's owner-agnostic
// side: a cross-thread free is the same CAS push as an owner-local one, so
// it completes immediately — counted as a remote fast free, with no blocks
// parked on the remote stack and nothing left to drain.
func TestUnifiedFastFreeCrossHeap(t *testing.T) {
	h := newHoard(Config{Heaps: 4})
	producer := thread(h, 0) // heap 1
	consumer := thread(h, 1) // heap 2
	var ps []alloc.Ptr
	for i := 0; i < 50; i++ {
		ps = append(ps, h.Malloc(producer, 64))
	}
	for _, p := range ps {
		h.Free(consumer, p)
	}
	st := h.Stats()
	if st.RemoteFrees != 50 || st.RemoteFastFrees != 50 {
		t.Fatalf("remote counters %d/%d, want 50/50", st.RemoteFrees, st.RemoteFastFrees)
	}
	if st.LockFreeFrees < 50 {
		t.Fatalf("LockFreeFrees = %d, want >= 50 (cross-heap frees must take the direct push)", st.LockFreeFrees)
	}
	if st.LiveBytes != 0 {
		t.Fatalf("LiveBytes = %d after direct cross-heap frees", st.LiveBytes)
	}
	// Direct pushes land on the free list, not the remote stack: the heaps'
	// live usage is zero right now, with no reconciliation step.
	var u int64
	for i := 0; i < h.NumHeaps(); i++ {
		hu, _, _ := h.HeapSnapshot(i)
		u += hu
	}
	if u != 0 {
		t.Fatalf("heap u sums to %d before any Reconcile, want 0", u)
	}
	if st.RemoteDrains != 0 {
		t.Fatalf("RemoteDrains = %d, want 0 (nothing was parked)", st.RemoteDrains)
	}
	if err := h.CheckIntegrity(); err != nil {
		t.Fatal(err)
	}
}

// TestUnifiedFastFreeDoubleFree: the direct push marks the free bitmap at
// CAS time, so a cross-thread double free is detected immediately — not at
// some later drain.
func TestUnifiedFastFreeDoubleFree(t *testing.T) {
	h := newHoard(Config{Heaps: 2})
	producer := thread(h, 0)
	consumer := thread(h, 1)
	p := h.Malloc(producer, 64)
	h.Free(consumer, p)
	defer func() {
		if recover() == nil {
			t.Fatal("immediate double free not detected")
		}
	}()
	h.Free(consumer, p)
}

// TestGlobalHeapFastFree pins the zero-lock steady state on the global heap:
// once superblocks carrying live blocks migrate there, the eventual frees of
// those blocks must take the direct push, never the global lock (with no
// GlobalEmptyLimit there is no emptying-transition policy to apply, so the
// "free-global" site must stay at zero acquisitions).
func TestGlobalHeapFastFree(t *testing.T) {
	clf := &env.CountingLockFactory{Inner: env.RealLockFactory{}}
	h := New(Config{Heaps: 2}, clf)
	th := thread(h, 0)
	var ps []alloc.Ptr
	for i := 0; i < 512; i++ {
		ps = append(ps, h.Malloc(th, 64))
	}
	// Free the first 300: the emptiness invariant trips and evicts
	// partially-empty superblocks — still carrying some of the remaining
	// 212 blocks — to the global heap.
	for _, p := range ps[:300] {
		h.Free(th, p)
	}
	st := h.Stats()
	if st.SuperblockMoves == 0 || st.MovedLiveBlocks == 0 {
		t.Skipf("eviction moved no live blocks to the global heap (moves=%d live=%d)",
			st.SuperblockMoves, st.MovedLiveBlocks)
	}
	for _, p := range ps[300:] {
		h.Free(th, p)
	}
	st = h.Stats()
	if st.RemoteFrees == 0 {
		t.Fatal("no free ever hit a global-heap superblock")
	}
	for _, s := range clf.SiteStats() {
		if s.Label == "free-global" && s.Acquires != 0 {
			t.Fatalf("free-global took the lock %d times; global-heap frees must be lock-free", s.Acquires)
		}
	}
	if st.LiveBytes != 0 {
		t.Fatalf("LiveBytes = %d after freeing everything", st.LiveBytes)
	}
	h.Reconcile(&env.RealEnv{})
	if err := h.CheckIntegrity(); err != nil {
		t.Fatal(err)
	}
}

// TestLockFreeStress interleaves every mechanism that can touch a warm
// superblock concurrently: lock-free owner mallocs and frees (single and
// batch), remote frees from foreign threads, invariant-driven eviction to
// the global heap, and the scavenger decommitting global-heap superblocks.
// Under -race this is the memory-model check for the seal fences between the
// fast paths and the slow-path state machine; at quiescence the books must
// balance exactly.
func TestLockFreeStress(t *testing.T) {
	const (
		owners  = 4
		rounds  = 300
		burst   = 64
		remotes = 2
	)
	h := newHoard(Config{Heaps: owners, GlobalEmptyLimit: 8})
	// Cross-thread traffic: owners push a slice of their blocks here, the
	// remote freers pull and free them from foreign heaps.
	ch := make(chan []alloc.Ptr, owners*rounds)

	var ownerWG sync.WaitGroup
	for id := 0; id < owners; id++ {
		ownerWG.Add(1)
		go func(id int) {
			defer ownerWG.Done()
			th := thread(h, id)
			rng := rand.New(rand.NewSource(int64(id)))
			buf := make([]alloc.Ptr, burst)
			for r := 0; r < rounds; r++ {
				n := burst
				if rng.Intn(2) == 0 {
					// Batch refill: exercises TryPopRun.
					n = h.MallocBatch(th, 64, burst, buf)
				} else {
					for i := 0; i < n; i++ {
						buf[i] = h.Malloc(th, 64)
					}
				}
				// A third crosses threads, a third goes back as a batch
				// (FastFreeRun), the rest free per-block (FastFree).
				third := n / 3
				cross := make([]alloc.Ptr, third)
				copy(cross, buf[:third])
				ch <- cross
				h.FreeBatch(th, buf[third:2*third])
				for _, p := range buf[2*third : n] {
					h.Free(th, p)
				}
			}
		}(id)
	}

	var rwg sync.WaitGroup
	done := make(chan struct{})
	for id := 0; id < remotes; id++ {
		rwg.Add(1)
		go func(id int) {
			defer rwg.Done()
			// Offset thread ids so these map to different heaps than the
			// blocks' owners most of the time — remote frees.
			th := thread(h, owners+1+id)
			for ps := range ch {
				if len(ps) > 1 {
					h.FreeBatch(th, ps[:len(ps)/2])
					ps = ps[len(ps)/2:]
				}
				for _, p := range ps {
					h.Free(th, p)
				}
			}
		}(id)
	}

	// Scavenger + auditor: decommit global-heap empties and audit
	// invariants while the fast paths run.
	var scavWG sync.WaitGroup
	scavWG.Add(1)
	go func() {
		defer scavWG.Done()
		e := &env.RealEnv{ID: -1}
		for {
			select {
			case <-done:
				return
			default:
			}
			h.TryScavengeGlobal(e, 1<<20, 0)
			if err := h.Audit(e); err != nil {
				t.Errorf("audit under load: %v", err)
				return
			}
		}
	}()

	// Owners finish first; then the remote freers drain the channel; the
	// scavenger/auditor runs until both are done.
	ownerWG.Wait()
	close(ch)
	rwg.Wait()
	close(done)
	scavWG.Wait()

	e := &env.RealEnv{ID: -1}
	h.Reconcile(e)
	st := h.Stats()
	if st.LiveBytes != 0 {
		t.Fatalf("LiveBytes = %d after balanced churn", st.LiveBytes)
	}
	if st.LockFreeMallocs == 0 || st.LockFreeFrees == 0 {
		t.Fatalf("stress run never took the fast paths: mallocs=%d frees=%d",
			st.LockFreeMallocs, st.LockFreeFrees)
	}
	if err := h.CheckIntegrity(); err != nil {
		t.Fatal(err)
	}
}
