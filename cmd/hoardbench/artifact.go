package main

import (
	"encoding/json"
	"fmt"
	"os"
	"time"

	"hoardgo/internal/experiments"
)

// artifact is the committed benchmark record (BENCH_PR3.json): the
// lock-acquisition measurement behind the batching PR's acceptance criterion
// plus the deterministic simulator runs of the key benchmarks. Everything in
// it is reproducible with `hoardbench -artifact <path>`.
type artifact struct {
	Schema     string                      `json:"schema"`
	Scale      string                      `json:"scale"`
	BatchLocks experiments.BatchLockResult `json:"batch_locks"`
	Sim        []experiments.BatchSimEntry `json:"sim"`
}

// writeArtifact runs the artifact benchmarks and writes the JSON record.
func writeArtifact(path string, opts experiments.Options, scale string, progress func(string, int)) error {
	if progress != nil {
		progress("batch-locks", 1)
	}
	art := artifact{
		Schema:     "hoardgo-bench/pr3-batching/v1",
		Scale:      scale,
		BatchLocks: experiments.MeasureBatchLocks(32, 200),
	}
	if progress != nil {
		progress("batch-sim", 8)
	}
	art.Sim = experiments.BatchSimResults(opts)
	data, err := json.MarshalIndent(art, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s: %.2f locks/malloc per-block vs %.2f batched (%.1fx fewer)\n",
		path, art.BatchLocks.PerBlock.LocksPerMalloc, art.BatchLocks.Batch.LocksPerMalloc,
		art.BatchLocks.Improvement)
	return nil
}

// writeMetricsTimeline runs the instrumented churn scenario behind -metrics
// and writes the timeline artifact. Any invariant-audit failure during the
// run is a hard error.
func writeMetricsTimeline(path string, scale experiments.Scale) error {
	workers, rounds := 4, 300
	if scale == experiments.Full {
		workers, rounds = 8, 2000
	}
	tl, err := experiments.CollectMetricsTimeline(workers, rounds, 2*time.Millisecond)
	if err != nil {
		return err
	}
	data, err := json.MarshalIndent(tl, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s: %d samples, %d audits passed, final scrape %d bytes\n",
		path, len(tl.Samples), tl.AuditPasses, len(tl.Prometheus))
	return nil
}
