package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"hoardgo/internal/alloc"
)

// TestPropertyBlowupBoundContinuous is the paper's Theorem 1 (A(t) = O(U(t)
// + P)) checked at every step of random multi-threaded malloc/free
// interleavings, across empty fractions and K values:
//
//	committed(t) <= usableLive(t)/(1-f) + slack
//
// where the slack term covers what the proof's constants cover — up to one
// partially-carved superblock per touched size class per heap (mallocs
// fetch a superblock only when a class has no free block) plus the K-
// superblock invariant slack per heap, plus superblocks parked on the
// global heap, which count toward A(t) but are reusable by any heap (the
// theorem's O(P) additive term).
func TestPropertyBlowupBoundContinuous(t *testing.T) {
	type scenario struct {
		f     float64
		k     int
		heaps int
	}
	scenarios := []scenario{
		{0.25, 1, 4},
		{0.25, KNone, 4},
		{0.5, 2, 2},
		{0.125, 1, 8},
	}
	for _, sc := range scenarios {
		sc := sc
		f := func(seed int64) bool {
			rng := rand.New(rand.NewSource(seed))
			h := New(Config{EmptyFraction: sc.f, K: sc.k, Heaps: sc.heaps}, lf)
			k := sc.k
			if k == KNone {
				k = 0
			}
			threads := make([]*alloc.Thread, sc.heaps)
			for i := range threads {
				threads[i] = thread(h, i)
			}
			classesTouched := map[int]bool{}
			type obj struct {
				p  alloc.Ptr
				th int
			}
			var live []obj
			S := int64(h.cfg.SuperblockSize)
			for op := 0; op < 1500; op++ {
				if len(live) == 0 || rng.Intn(2) == 0 {
					ti := rng.Intn(len(threads))
					sz := 1 + rng.Intn(4096)
					c, _ := h.Classes().ClassFor(sz)
					classesTouched[c] = true
					live = append(live, obj{h.Malloc(threads[ti], sz), ti})
				} else {
					i := rng.Intn(len(live))
					// Free from a random thread (cross-thread frees
					// are the hard case for the bound).
					h.Free(threads[rng.Intn(len(threads))], live[i].p)
					live[i] = live[len(live)-1]
					live = live[:len(live)-1]
				}
				u := h.Stats().LiveBytes
				a := h.Space().Committed()
				perHeap := int64(len(classesTouched)+k+1) * S
				bound := int64(float64(u)/(1-sc.f)) + perHeap*int64(sc.heaps) + globalHeld(h)
				if a > bound {
					t.Logf("scenario %+v seed %d op %d: committed %d > bound %d (u=%d, global=%d)",
						sc, seed, op, a, bound, u, globalHeld(h))
					return false
				}
			}
			return h.CheckIntegrity() == nil
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 8}); err != nil {
			t.Errorf("scenario %+v: %v", sc, err)
		}
	}
}

// globalHeld returns the bytes held by the global heap — reusable by every
// per-processor heap, and therefore part of the theorem's additive constant
// rather than true blowup.
func globalHeld(h *Hoard) int64 {
	_, a, _ := h.HeapSnapshot(0)
	return a
}
