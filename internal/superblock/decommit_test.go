package superblock

import (
	"testing"

	"hoardgo/internal/alloc"
)

// TestDecommitRecommitWriteEveryBlock pins recommit-on-reuse correctness:
// a superblock that was used, emptied, decommitted, and recommitted must
// hand out every block again, and each block must be fully writable and
// hold its data (the decommit really dropped the pages; the recommit really
// restored them).
func TestDecommitRecommitWriteEveryBlock(t *testing.T) {
	space, sb := newSB(t, 64)
	space.SetPoison(true)

	// First life: allocate everything, scribble, free everything.
	ptrs := make([]alloc.Ptr, 0, sb.NBlocks())
	for {
		p, ok := sb.AllocBlock(e)
		if !ok {
			break
		}
		ptrs = append(ptrs, p)
	}
	for _, p := range ptrs {
		buf := space.Bytes(uint64(p), 64)
		for i := range buf {
			buf[i] = 0xAB
		}
	}
	for _, p := range ptrs {
		sb.FreeBlock(e, p)
	}

	sb.Decommit(e)
	if !sb.Decommitted() {
		t.Fatal("not Decommitted after Decommit")
	}
	if got := space.Committed(); got != 0 {
		t.Fatalf("Committed = %d, want 0 after decommit", got)
	}
	if got := space.Reserved(); got != DefaultSize {
		t.Fatalf("Reserved = %d, want %d (addresses stay reserved)", got, DefaultSize)
	}
	// The address range still resolves to this superblock...
	if got, ok := FromPtr(space, ptrs[0]); !ok || got != sb {
		t.Fatal("FromPtr no longer resolves decommitted superblock")
	}
	// ...but the dropped memory is unreachable.
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("reading a decommitted block did not panic")
			}
		}()
		space.Bytes(uint64(ptrs[0]), 4)
	}()
	if err := sb.CheckIntegrity(); err != nil {
		t.Fatal(err)
	}

	// Second life: recommit, then allocate and write through EVERY block.
	sb.Recommit(e)
	if sb.Decommitted() {
		t.Fatal("still Decommitted after Recommit")
	}
	if got := space.Committed(); got != DefaultSize {
		t.Fatalf("Committed = %d, want %d after recommit", got, DefaultSize)
	}
	got := make([]alloc.Ptr, 0, sb.NBlocks())
	for i := 0; i < sb.NBlocks(); i++ {
		p, ok := sb.AllocBlock(e)
		if !ok {
			t.Fatalf("AllocBlock %d failed after recommit", i)
		}
		buf := space.Bytes(uint64(p), 64)
		for j := range buf {
			buf[j] = byte(i)
		}
		got = append(got, p)
	}
	if !sb.Full() {
		t.Fatal("superblock not full after reallocating every block")
	}
	for i, p := range got {
		buf := space.Bytes(uint64(p), 64)
		for j := range buf {
			if buf[j] != byte(i) {
				t.Fatalf("block %d byte %d = %#x, want %#x", i, j, buf[j], byte(i))
			}
		}
	}
	if err := sb.CheckIntegrity(); err != nil {
		t.Fatal(err)
	}
	for _, p := range got {
		sb.FreeBlock(e, p)
	}
	sb.Release(space)
	if space.Committed() != 0 || space.Reserved() != 0 {
		t.Fatalf("space not empty after release: committed %d reserved %d",
			space.Committed(), space.Reserved())
	}
}

func TestDecommitGuards(t *testing.T) {
	_, sb := newSB(t, 64)
	p, _ := sb.AllocBlock(e)
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("Decommit of non-empty superblock did not panic")
			}
		}()
		sb.Decommit(e)
	}()
	sb.FreeBlock(e, p)
	sb.Decommit(e)
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("double Decommit did not panic")
			}
		}()
		sb.Decommit(e)
	}()
	// Reinit without Recommit must panic: the formatter would describe
	// memory that is not there.
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("Reinit of decommitted superblock did not panic")
			}
		}()
		sb.Reinit(2, 128)
	}()
	// Recommit is idempotent on a committed superblock.
	sb.Recommit(e)
	sb.Recommit(e)
	if _, ok := sb.AllocBlock(e); !ok {
		t.Fatal("AllocBlock failed after recommit")
	}
}

func TestDecommittedReleaseAccounting(t *testing.T) {
	// Releasing a decommitted superblock (e.g. the GlobalEmptyLimit path
	// evicting a scavenged superblock) must not double-subtract its bytes.
	space, sb := newSB(t, 64)
	sb.Decommit(e)
	sb.Release(space)
	st := space.Stats()
	if st.Committed != 0 || st.Reserved != 0 || st.DecommittedBytes != 0 {
		t.Fatalf("accounting after releasing decommitted superblock: %+v", st)
	}
	// A recycled span from that pool must come back fully usable.
	sb2 := New(space, DefaultSize, 1, 64)
	if _, ok := sb2.AllocBlock(e); !ok {
		t.Fatal("AllocBlock on recycled span failed")
	}
}

func TestParkStamp(t *testing.T) {
	_, sb := newSB(t, 64)
	if sb.ParkedAt() != 0 {
		t.Fatalf("fresh ParkedAt = %d, want 0", sb.ParkedAt())
	}
	sb.SetParkedAt(42)
	if sb.ParkedAt() != 42 {
		t.Fatalf("ParkedAt = %d, want 42", sb.ParkedAt())
	}
}
