// Package vmtest constructs vm backends for tests. The suites that exercise
// allocator logic (superblock, heap, core) build their backing store through
// New, so setting HOARDGO_BACKEND=arena runs the very same tests over real
// mmap'd memory — that is how `make arena-smoke` gives the arena backend
// full protocol coverage without duplicating a single test.
package vmtest

import (
	"os"
	"testing"

	"hoardgo/internal/vm"
)

// testArenaOptions keeps per-test arenas small: tests create many backends,
// and while the reservation is virtual-only, the slot and page index tables
// are real Go memory proportional to the region sizes.
func testArenaOptions(spanSize int) vm.ArenaOptions {
	return vm.ArenaOptions{
		SpanSize:         spanSize,
		SlotRegionBytes:  64 << 20,
		LargeRegionBytes: 64 << 20,
	}
}

// New returns the backend selected by HOARDGO_BACKEND: the simulated space
// by default, the arena when set to "arena" (skipping the test on platforms
// without one). Cleanup closes the backend. Tests that assert
// simulated-backend specifics — poison bytes, deterministic base addresses
// — should call vm.New directly instead.
func New(tb testing.TB) vm.Backend {
	return NewSized(tb, 0)
}

// NewSized is New with an explicit arena span size (the superblock size the
// test uses), so superblock-sized reserves land in the arithmetic-resolution
// slot region just as they do in production. Zero means the default S.
func NewSized(tb testing.TB, spanSize int) vm.Backend {
	if os.Getenv("HOARDGO_BACKEND") == "arena" {
		return NewArena(tb, spanSize)
	}
	return vm.New()
}

// NewArena returns a small arena backend regardless of HOARDGO_BACKEND,
// skipping the test on platforms without arena support. Cleanup closes it.
func NewArena(tb testing.TB, spanSize int) vm.Backend {
	be, err := vm.NewArena(testArenaOptions(spanSize))
	if err != nil {
		tb.Skipf("arena backend unavailable: %v", err)
	}
	tb.Cleanup(func() {
		if err := be.Close(); err != nil {
			tb.Errorf("arena close: %v", err)
		}
	})
	return be
}

// Each runs fn as a subtest once per available backend ("sim" always,
// "arena" where supported), for property suites that must hold on both.
func Each(t *testing.T, fn func(t *testing.T, be vm.Backend)) {
	t.Run("sim", func(t *testing.T) { fn(t, vm.New()) })
	t.Run("arena", func(t *testing.T) { fn(t, NewArena(t, 0)) })
}
