// Memory-debugging demo: the Debug configuration wraps any allocator with
// canaries, poisoning, and a free quarantine — the tooling real allocators
// ship for hunting heap corruption. This program commits three classic
// crimes and shows each one being caught.
package main

import (
	"fmt"
	"strings"

	hoard "hoardgo"
)

// catch runs f and reports the panic message the debug layer raised.
func catch(crime string, f func()) {
	defer func() {
		if r := recover(); r != nil {
			msg := fmt.Sprint(r)
			if i := strings.IndexByte(msg, '('); i > 0 {
				msg = strings.TrimSpace(msg[:i])
			}
			fmt.Printf("%-22s caught: %s\n", crime, msg)
			return
		}
		fmt.Printf("%-22s NOT caught\n", crime)
	}()
	f()
}

func main() {
	fmt.Println("running three heap crimes under hoard.Config{Debug: true}")
	fmt.Println()

	// Crime 1: buffer overflow. Writing one byte past the allocation
	// smashes the rear canary; the free detects it.
	catch("buffer overflow", func() {
		a := hoard.MustNew(hoard.Config{Debug: true})
		t := a.NewThread()
		p := t.Malloc(32)
		// The debug layer bounds Bytes() to the requested size, so a
		// sneaky overflow needs raw arithmetic... which Bytes refuses:
		t.Bytes(p, 33)[32] = 0xFF
	})

	// Crime 2: double free.
	catch("double free", func() {
		a := hoard.MustNew(hoard.Config{Debug: true})
		t := a.NewThread()
		p := t.Malloc(64)
		t.Free(p)
		t.Free(p)
	})

	// Crime 3: write after free. The freed block is poisoned and held in
	// quarantine; scribbling on it is detected when the block leaves
	// quarantine (or by CheckIntegrity).
	catch("use after free", func() {
		a := hoard.MustNew(hoard.Config{Debug: true, DebugQuarantine: 4})
		t := a.NewThread()
		p := t.Malloc(64)
		buf := t.Bytes(p, 64) // view taken while alive...
		t.Free(p)
		buf[10] = 0x42 // ...scribbled after death
		for i := 0; i < 8; i++ {
			t.Free(t.Malloc(64)) // churn the quarantine
		}
	})

	fmt.Println()
	fmt.Println("and a clean program passes untouched:")
	a := hoard.MustNew(hoard.Config{Debug: true})
	t := a.NewThread()
	var ps []hoard.Ptr
	for i := 0; i < 1000; i++ {
		p := t.Malloc(1 + i%200)
		t.Bytes(p, 1)[0] = byte(i)
		ps = append(ps, p)
	}
	for _, p := range ps {
		t.Free(p)
	}
	if err := a.CheckIntegrity(); err != nil {
		panic(err)
	}
	fmt.Printf("1000 allocations, 0 leaks, integrity clean (%d B live)\n", a.Stats().LiveBytes)
}
