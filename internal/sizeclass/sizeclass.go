// Package sizeclass implements Hoard's geometric size classes.
//
// The paper's allocator segregates blocks into size classes that are a
// factor b apart (b = 1.2 in the released implementation), so internal
// fragmentation is bounded by b while keeping the number of classes small.
// Superblocks hold blocks of exactly one class; requests larger than half a
// superblock bypass the class machinery entirely.
package sizeclass

import "fmt"

const (
	// Quantum is the minimum block granularity; all class sizes are
	// multiples of it and allocations are at least this aligned.
	Quantum = 8

	// DefaultBase is the paper's growth factor between consecutive size
	// classes.
	DefaultBase = 1.2
)

// Table maps request sizes to size classes and back. A Table is immutable
// after construction and safe for concurrent use.
type Table struct {
	sizes  []int
	lookup []uint8 // (size+Quantum-1)/Quantum -> class
	base   float64
	max    int
}

// New builds a table of geometric size classes with the given growth factor,
// minimum class size min, and maximum class size max. It panics on invalid
// parameters (base <= 1, min < Quantum, max < min, or more than 255 classes).
func New(base float64, min, max int) *Table {
	if base <= 1.0 {
		panic(fmt.Sprintf("sizeclass: base %v must exceed 1", base))
	}
	if min < Quantum || min%Quantum != 0 {
		panic(fmt.Sprintf("sizeclass: min %d must be a positive multiple of %d", min, Quantum))
	}
	if max < min {
		panic(fmt.Sprintf("sizeclass: max %d < min %d", max, min))
	}
	t := &Table{base: base, max: max}
	for s := min; ; {
		t.sizes = append(t.sizes, s)
		if s >= max {
			break
		}
		next := roundUp(int(float64(s)*base), Quantum)
		if next <= s {
			next = s + Quantum
		}
		if next > max {
			next = max
		}
		s = next
	}
	if len(t.sizes) > 255 {
		panic(fmt.Sprintf("sizeclass: %d classes exceed 255; base too close to 1", len(t.sizes)))
	}
	t.lookup = make([]uint8, max/Quantum+1)
	class := 0
	for q := 1; q <= max/Quantum; q++ {
		for q*Quantum > t.sizes[class] {
			class++
		}
		t.lookup[q] = uint8(class)
	}
	return t
}

func roundUp(n, q int) int { return (n + q - 1) / q * q }

// NumClasses returns the number of size classes.
func (t *Table) NumClasses() int { return len(t.sizes) }

// MaxSize returns the largest size served by a class; larger requests must
// take the allocator's large-object path.
func (t *Table) MaxSize() int { return t.max }

// Base returns the growth factor the table was built with.
func (t *Table) Base() float64 { return t.base }

// ClassFor returns the smallest class whose block size can hold a request of
// size bytes, and ok=false if the request exceeds MaxSize. Requests of zero
// or negative size map to class 0, matching malloc(0) returning a minimal
// block.
func (t *Table) ClassFor(size int) (class int, ok bool) {
	if size <= 0 {
		return 0, true
	}
	if size > t.max {
		return 0, false
	}
	return int(t.lookup[(size+Quantum-1)/Quantum]), true
}

// Size returns the block size of a class. It panics on an out-of-range
// class.
func (t *Table) Size(class int) int { return t.sizes[class] }

// Sizes returns a copy of all class sizes in ascending order.
func (t *Table) Sizes() []int {
	out := make([]int, len(t.sizes))
	copy(out, t.sizes)
	return out
}
