package experiments

import (
	"testing"
	"time"

	"hoardgo/internal/metrics"
)

func TestCollectMetricsTimeline(t *testing.T) {
	tl, err := CollectMetricsTimeline(4, 50, time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if tl.AuditFailures != 0 {
		t.Fatalf("%d audit failures", tl.AuditFailures)
	}
	if tl.AuditPasses == 0 {
		t.Fatal("auditor never ran")
	}
	// Stop() always takes a final sample, so the timeline is never empty.
	if len(tl.Samples) == 0 {
		t.Fatal("empty timeline")
	}
	last := tl.Samples[len(tl.Samples)-1]
	wantOps := int64(4 * 50 * 64)
	if got := last.Counters["mallocs_total"]; got != wantOps {
		t.Fatalf("final mallocs_total = %d, want %d", got, wantOps)
	}
	if len(last.Heaps) == 0 {
		t.Fatal("no heap occupancy in final sample")
	}
	if len(last.Locks) == 0 {
		t.Fatal("no lock stats in final sample")
	}
	var acquires int64
	for _, l := range last.Locks {
		acquires += l.Acquires
	}
	if acquires == 0 {
		t.Fatal("instrumented locks saw no acquisitions")
	}
	// The embedded scrape must be valid Prometheus exposition text.
	if err := metrics.LintPrometheus(tl.Prometheus); err != nil {
		t.Fatalf("prometheus lint: %v\n%s", err, tl.Prometheus)
	}
}
