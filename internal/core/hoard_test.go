package core

import (
	"math/rand"
	"sync"
	"testing"
	"testing/quick"

	"hoardgo/internal/alloc"
	"hoardgo/internal/alloctest"
	"hoardgo/internal/env"
)

var lf = env.RealLockFactory{}

func newHoard(cfg Config) *Hoard { return New(cfg, lf) }

func thread(h *Hoard, id int) *alloc.Thread {
	return h.NewThread(&env.RealEnv{ID: id})
}

func TestMallocFreeRoundTrip(t *testing.T) {
	h := newHoard(Config{})
	th := thread(h, 0)
	sizes := []int{0, 1, 7, 8, 9, 16, 100, 1000, 4096, 4097, 8192, 100000}
	for _, sz := range sizes {
		p := h.Malloc(th, sz)
		if p.IsNil() {
			t.Fatalf("Malloc(%d) = nil", sz)
		}
		if us := h.UsableSize(p); us < sz {
			t.Fatalf("UsableSize(%d-byte alloc) = %d", sz, us)
		}
		if sz > 0 {
			buf := h.Bytes(p, sz)
			for i := range buf {
				buf[i] = byte(i)
			}
		}
		h.Free(th, p)
	}
	st := h.Stats()
	if st.Mallocs != int64(len(sizes)) || st.Frees != int64(len(sizes)) {
		t.Fatalf("stats %+v", st)
	}
	if st.LiveBytes != 0 {
		t.Fatalf("LiveBytes = %d after all frees", st.LiveBytes)
	}
	if err := h.CheckIntegrity(); err != nil {
		t.Fatal(err)
	}
}

func TestDistinctPointers(t *testing.T) {
	h := newHoard(Config{})
	th := thread(h, 0)
	seen := make(map[alloc.Ptr]bool)
	var ps []alloc.Ptr
	for i := 0; i < 10000; i++ {
		p := h.Malloc(th, 1+i%128)
		if seen[p] {
			t.Fatalf("duplicate pointer %#x", uint64(p))
		}
		seen[p] = true
		ps = append(ps, p)
	}
	for _, p := range ps {
		h.Free(th, p)
	}
	if err := h.CheckIntegrity(); err != nil {
		t.Fatal(err)
	}
}

func TestLargeObjects(t *testing.T) {
	h := newHoard(Config{})
	th := thread(h, 0)
	p := h.Malloc(th, 1<<20)
	if h.UsableSize(p) < 1<<20 {
		t.Fatal("large object too small")
	}
	buf := h.Bytes(p, 1<<20)
	buf[0], buf[len(buf)-1] = 1, 2
	st := h.Stats()
	if st.LargeMallocs != 1 {
		t.Fatalf("LargeMallocs = %d", st.LargeMallocs)
	}
	committed := h.Space().Committed()
	h.Free(th, p)
	if got := h.Space().Committed(); got >= committed {
		t.Fatalf("large free did not return memory to OS: %d -> %d", committed, got)
	}
	if err := h.CheckIntegrity(); err != nil {
		t.Fatal(err)
	}
}

func TestLargeThresholdBoundary(t *testing.T) {
	h := newHoard(Config{})
	th := thread(h, 0)
	maxSmall := h.Classes().MaxSize()
	ps := h.Malloc(th, maxSmall)
	pl := h.Malloc(th, maxSmall+1)
	if h.Stats().LargeMallocs != 1 {
		t.Fatalf("want exactly the %d-byte alloc on the large path", maxSmall+1)
	}
	h.Free(th, ps)
	h.Free(th, pl)
}

func TestFreeNilAndBadPointers(t *testing.T) {
	// Each bad operation gets a fresh allocator: the panics are fatal by
	// design and may fire while internal locks are held.
	cases := []struct {
		name string
		op   func(h *Hoard, th *alloc.Thread, p alloc.Ptr)
	}{
		{"double free", func(h *Hoard, th *alloc.Thread, p alloc.Ptr) { h.Free(th, p); h.Free(th, p) }},
		{"never allocated", func(h *Hoard, th *alloc.Thread, p alloc.Ptr) { h.Free(th, alloc.Ptr(12345)) }},
		{"interior pointer", func(h *Hoard, th *alloc.Thread, p alloc.Ptr) { h.Free(th, p+8) }},
		{"unknown usable size", func(h *Hoard, th *alloc.Thread, p alloc.Ptr) { h.UsableSize(alloc.Ptr(98765)) }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			h := newHoard(Config{})
			th := thread(h, 0)
			h.Free(th, 0) // free(nil) is always a no-op
			p := h.Malloc(th, 64)
			defer func() {
				if recover() == nil {
					t.Error("bad operation did not panic")
				}
			}()
			tc.op(h, th, p)
		})
	}
}

func TestEmptinessInvariantMovesSuperblocks(t *testing.T) {
	h := newHoard(Config{Heaps: 2})
	th := thread(h, 0)
	// Allocate enough 64-byte blocks for several superblocks, then free
	// them all: the thread heap must shed superblocks to the global heap
	// rather than hoarding them.
	var ps []alloc.Ptr
	for i := 0; i < 1000; i++ {
		ps = append(ps, h.Malloc(th, 64))
	}
	for _, p := range ps {
		h.Free(th, p)
	}
	if moves := h.Stats().SuperblockMoves; moves == 0 {
		t.Fatal("no superblocks moved to global heap after mass free")
	}
	_, _, g := h.HeapSnapshot(0)
	if g == 0 {
		t.Fatal("global heap empty after mass free")
	}
	u, a, _ := h.HeapSnapshot(1)
	if u != 0 {
		t.Fatalf("heap 1 u = %d after freeing everything", u)
	}
	// Invariant must hold on the quiesced per-processor heap: with u=0,
	// at most K superblocks (the slack) may remain.
	if a > int64(h.cfg.K*h.cfg.SuperblockSize) {
		t.Fatalf("heap 1 retains a=%d bytes with u=0; emptiness invariant (K=%d) violated", a, h.cfg.K)
	}
	if err := h.CheckIntegrity(); err != nil {
		t.Fatal(err)
	}
}

func TestGlobalHeapReuseAcrossHeaps(t *testing.T) {
	h := newHoard(Config{Heaps: 2})
	t0 := thread(h, 0) // heap 1
	t1 := thread(h, 1) // heap 2
	var ps []alloc.Ptr
	for i := 0; i < 1000; i++ {
		ps = append(ps, h.Malloc(t0, 64))
	}
	for _, p := range ps {
		h.Free(t0, p)
	}
	reserved := h.Stats().OSReserves
	// Thread 1 should now be served from recycled superblocks.
	for i := 0; i < 500; i++ {
		h.Malloc(t1, 64)
	}
	st := h.Stats()
	if st.GlobalHeapHits == 0 {
		t.Fatal("thread 1 never reused a global-heap superblock")
	}
	if st.OSReserves > reserved+2 {
		t.Fatalf("thread 1 went to the OS %d times despite a stocked global heap", st.OSReserves-reserved)
	}
}

func TestGlobalHeapRecyclesAcrossClasses(t *testing.T) {
	h := newHoard(Config{Heaps: 1})
	th := thread(h, 0)
	var ps []alloc.Ptr
	for i := 0; i < 500; i++ {
		ps = append(ps, h.Malloc(th, 64))
	}
	for _, p := range ps {
		h.Free(th, p)
	}
	reserved := h.Stats().OSReserves
	// A different size class should be able to reuse the empty
	// superblocks now sitting in the global heap. (30 objects of 512
	// bytes need 2 superblocks; the global heap holds at least 3 of the
	// 4 shed by the mass free — the K=1 slack may keep one on heap 1.)
	for i := 0; i < 30; i++ {
		h.Malloc(th, 512)
	}
	if got := h.Stats().OSReserves; got != reserved {
		t.Fatalf("class switch went to OS %d times; want reuse of empty superblocks", got-reserved)
	}
}

func TestCrossThreadFree(t *testing.T) {
	h := newHoard(Config{Heaps: 4})
	producer := thread(h, 0)
	consumer := thread(h, 3)
	for round := 0; round < 50; round++ {
		var ps []alloc.Ptr
		for i := 0; i < 200; i++ {
			ps = append(ps, h.Malloc(producer, 48))
		}
		for _, p := range ps {
			h.Free(consumer, p)
		}
	}
	if h.Stats().RemoteFrees == 0 {
		t.Fatal("cross-thread frees not counted as remote")
	}
	if err := h.CheckIntegrity(); err != nil {
		t.Fatal(err)
	}
}

// TestBlowupBound is the paper's Theorem 1 checked empirically: under a
// producer-consumer pattern, Hoard's committed memory stays O(U + P) rather
// than growing with the number of rounds.
func TestBlowupBound(t *testing.T) {
	h := newHoard(Config{Heaps: 4})
	producer := thread(h, 0)
	consumer := thread(h, 3)
	const (
		rounds   = 200
		batch    = 500
		objSize  = 64
		maxLiveB = batch * objSize
	)
	var peak int64
	for r := 0; r < rounds; r++ {
		ps := make([]alloc.Ptr, batch)
		for i := range ps {
			ps[i] = h.Malloc(producer, objSize)
		}
		for _, p := range ps {
			h.Free(consumer, p)
		}
		if c := h.Space().Committed(); c > peak {
			peak = c
		}
	}
	// Bound: (1/(1-f))*U plus a constant number of superblocks per heap.
	sbSize := int64(h.cfg.SuperblockSize)
	bound := int64(float64(maxLiveB)/(1-h.cfg.EmptyFraction)) + int64(h.cfg.Heaps+1)*4*sbSize
	if peak > bound {
		t.Fatalf("peak committed %d exceeds blowup bound %d (U=%d)", peak, bound, maxLiveB)
	}
}

func TestRealloc(t *testing.T) {
	h := newHoard(Config{})
	th := thread(h, 0)
	p := h.Malloc(th, 16)
	buf := h.Bytes(p, 16)
	for i := range buf {
		buf[i] = byte(i + 1)
	}
	p2 := h.Realloc(th, p, 4000)
	buf2 := h.Bytes(p2, 16)
	for i := range buf2 {
		if buf2[i] != byte(i+1) {
			t.Fatalf("realloc lost data at %d", i)
		}
	}
	p3 := h.Realloc(th, p2, 100000) // to large path
	buf3 := h.Bytes(p3, 16)
	for i := range buf3 {
		if buf3[i] != byte(i+1) {
			t.Fatalf("realloc-to-large lost data at %d", i)
		}
	}
	if same := h.Realloc(th, p3, 99000); same != p3 {
		t.Fatal("shrinking realloc within usable size should return same pointer")
	}
	h.Free(th, h.Realloc(th, 0, 32)) // realloc(nil) == malloc
	h.Free(th, p3)
	if err := h.CheckIntegrity(); err != nil {
		t.Fatal(err)
	}
}

func TestThreadHeapHashing(t *testing.T) {
	h := newHoard(Config{Heaps: 4})
	used := map[int]bool{}
	for id := 0; id < 4; id++ {
		th := thread(h, id)
		used[th.State.(*threadState).heapIdx] = true
	}
	if len(used) != 4 {
		t.Fatalf("4 sequential threads mapped to %d heaps, want 4", len(used))
	}
	for id := 0; id < 100; id++ {
		idx := h.NewThread(&env.RealEnv{ID: id * 1000003}).State.(*threadState).heapIdx
		if idx < 1 || idx > 4 {
			t.Fatalf("heap index %d out of range", idx)
		}
	}
}

func TestGlobalEmptyLimit(t *testing.T) {
	h := newHoard(Config{Heaps: 1, GlobalEmptyLimit: 2})
	th := thread(h, 0)
	var ps []alloc.Ptr
	for i := 0; i < 2000; i++ {
		ps = append(ps, h.Malloc(th, 64))
	}
	for _, p := range ps {
		h.Free(th, p)
	}
	if got := h.Space().Stats().Releases; got == 0 {
		t.Fatal("GlobalEmptyLimit never returned superblocks to the OS")
	}
	_, _, g := h.HeapSnapshot(0)
	if g > 3 {
		t.Fatalf("global heap holds %d superblocks, want <= limit+1", g)
	}
	if err := h.CheckIntegrity(); err != nil {
		t.Fatal(err)
	}
}

func TestConfigValidation(t *testing.T) {
	bad := []Config{
		{SuperblockSize: 1000}, // not power of two
		{SuperblockSize: 2048}, // below page size
		{EmptyFraction: 1.5},   // out of range
		{EmptyFraction: -0.25}, // out of range
		{K: -2},                // negative (-1 is KNone, valid)
		{Heaps: -3},            // negative
		{SizeClassBase: 0.9},   // shrinking classes
	}
	for i, cfg := range bad {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("config %d accepted: %+v", i, cfg)
				}
			}()
			New(cfg, lf)
		}()
	}
}

// TestPropertyRandomMix runs randomized malloc/free/realloc mixes against a
// shadow model with data verification and a final integrity check.
func TestPropertyRandomMix(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		h := newHoard(Config{Heaps: 3})
		ths := []*alloc.Thread{thread(h, 0), thread(h, 1), thread(h, 2)}
		type obj struct {
			p   alloc.Ptr
			sz  int
			tag byte
		}
		var live []obj
		for op := 0; op < 3000; op++ {
			th := ths[rng.Intn(len(ths))]
			switch {
			case len(live) == 0 || rng.Intn(5) < 2:
				sz := 1 + rng.Intn(6000)
				if rng.Intn(20) == 0 {
					sz = 4097 + rng.Intn(20000) // large path
				}
				p := h.Malloc(th, sz)
				tag := byte(op)
				buf := h.Bytes(p, sz)
				for i := range buf {
					buf[i] = tag
				}
				live = append(live, obj{p, sz, tag})
			case rng.Intn(5) == 0: // realloc
				i := rng.Intn(len(live))
				o := &live[i]
				buf := h.Bytes(o.p, o.sz)
				for j := range buf {
					if buf[j] != o.tag {
						return false
					}
				}
				nsz := 1 + rng.Intn(6000)
				o.p = h.Realloc(th, o.p, nsz)
				keep := min(o.sz, nsz)
				buf = h.Bytes(o.p, keep)
				for j := range buf {
					if buf[j] != o.tag {
						return false
					}
				}
				o.sz = keep
				nb := h.Bytes(o.p, keep)
				for j := range nb {
					nb[j] = o.tag
				}
			default:
				i := rng.Intn(len(live))
				o := live[i]
				buf := h.Bytes(o.p, o.sz)
				for j := range buf {
					if buf[j] != o.tag {
						return false
					}
				}
				h.Free(th, o.p)
				live[i] = live[len(live)-1]
				live = live[:len(live)-1]
			}
		}
		return h.CheckIntegrity() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Fatal(err)
	}
}

// TestConcurrentStress hammers the allocator from real goroutines, with
// cross-thread frees through a channel, then checks integrity. Run with
// -race to validate the locking protocol.
func TestConcurrentStress(t *testing.T) {
	h := newHoard(Config{Heaps: 4})
	const workers = 8
	const opsPer = 3000
	ch := make(chan alloc.Ptr, 1024)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			th := thread(h, w)
			rng := rand.New(rand.NewSource(int64(w)))
			var mine []alloc.Ptr
			for i := 0; i < opsPer; i++ {
				switch rng.Intn(4) {
				case 0, 1:
					p := h.Malloc(th, 1+rng.Intn(2000))
					h.Bytes(p, 8)[0] = byte(w)
					mine = append(mine, p)
				case 2:
					if len(mine) > 0 {
						i := rng.Intn(len(mine))
						select {
						case ch <- mine[i]: // hand off to any thread
						default:
							h.Free(th, mine[i])
						}
						mine[i] = mine[len(mine)-1]
						mine = mine[:len(mine)-1]
					}
				case 3:
					select {
					case p := <-ch:
						h.Free(th, p) // remote free
					default:
					}
				}
			}
			for _, p := range mine {
				h.Free(th, p)
			}
		}(w)
	}
	wg.Wait()
	close(ch)
	th := thread(h, 99)
	for p := range ch {
		h.Free(th, p)
	}
	if h.Stats().LiveBytes != 0 {
		t.Fatalf("LiveBytes = %d after full teardown", h.Stats().LiveBytes)
	}
	if err := h.CheckIntegrity(); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkMallocFree64(b *testing.B) {
	h := newHoard(Config{})
	th := thread(h, 0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Free(th, h.Malloc(th, 64))
	}
}

func BenchmarkMallocFreeSizes(b *testing.B) {
	h := newHoard(Config{})
	th := thread(h, 0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Free(th, h.Malloc(th, 8+(i&1023)))
	}
}

func TestConformance(t *testing.T) {
	alloctest.Run(t, func() alloc.Allocator {
		return New(Config{Heaps: 4}, lf)
	})
}
