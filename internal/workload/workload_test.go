package workload

import (
	"testing"

	"hoardgo/internal/allocators"
	"hoardgo/internal/simproc"
)

// tiny configs keep the full matrix fast.
func tinyThreadtest(th int) ThreadtestConfig {
	return ThreadtestConfig{Threads: th, Iterations: 2, Objects: 800, ObjSize: 8}
}

func tinyShbench(th int) ShbenchConfig {
	return ShbenchConfig{Threads: th, Ops: 3200, Slots: 64, MinSize: 1, MaxSize: 1000, Seed: 1}
}

func tinyLarson(th int) LarsonConfig {
	return LarsonConfig{Threads: th, Rounds: 3, OpsPerRound: 300, SlotsPerWindow: 40, MinSize: 10, MaxSize: 500, Seed: 1}
}

func tinyFalse(th int) FalseShareConfig {
	return FalseShareConfig{Threads: th, Iterations: 80, ObjSize: 8, Writes: 30, SeedObjects: 16}
}

func tinyBEM(th int) BEMConfig {
	return BEMConfig{Threads: th, MeshNodes: 800, NodeSize: 48, Rows: 80, RowSize: 2048,
		SolveBuffers: 8, SolveSize: 16384, SolveWork: 5000, Seed: 1}
}

func tinyBH(th int) BarnesHutConfig {
	return BarnesHutConfig{Threads: th, Bodies: 120, Steps: 2, Theta: 0.6, DT: 1e-3, Seed: 1}
}

type runner struct {
	name string
	run  func(h *Harness, threads int) Result
}

var runners = []runner{
	{"threadtest", func(h *Harness, th int) Result { return Threadtest(h, tinyThreadtest(th)) }},
	{"shbench", func(h *Harness, th int) Result { return Shbench(h, tinyShbench(th)) }},
	{"larson", func(h *Harness, th int) Result { return Larson(h, tinyLarson(th)) }},
	{"active-false", func(h *Harness, th int) Result { return ActiveFalse(h, tinyFalse(th)) }},
	{"passive-false", func(h *Harness, th int) Result { return PassiveFalse(h, tinyFalse(th)) }},
	{"bem", func(h *Harness, th int) Result { return BEM(h, tinyBEM(th)) }},
	{"barneshut", func(h *Harness, th int) Result { return BarnesHut(h, tinyBH(th)) }},
	{"prodcons", func(h *Harness, th int) Result {
		r, _ := ProdCons(h, ProdConsConfig{Threads: th, Rounds: 5, Batch: 100, ObjSize: 64})
		return r
	}},
	{"phaseshift", func(h *Harness, th int) Result {
		r, _ := PhaseShift(h, PhaseShiftConfig{Threads: th, Phases: 2 * th, LiveObjects: 200, ObjSize: 64})
		return r
	}},
}

// TestAllWorkloadsAllAllocatorsSim runs the full benchmark x allocator
// matrix on the simulator and validates the common postconditions: no
// leaks, intact allocator structures, sensible counters.
func TestAllWorkloadsAllAllocatorsSim(t *testing.T) {
	for _, r := range runners {
		for _, name := range allocators.Names() {
			t.Run(r.name+"/"+name, func(t *testing.T) {
				h := NewSim(name, 4, simproc.DefaultCosts)
				res := r.run(h, 4)
				if res.ElapsedNS <= 0 {
					t.Fatalf("ElapsedNS = %d", res.ElapsedNS)
				}
				if res.Ops <= 0 {
					t.Fatalf("Ops = %d", res.Ops)
				}
				if res.MaxLive <= 0 {
					t.Fatalf("MaxLive = %d", res.MaxLive)
				}
				if res.Alloc.LiveBytes != 0 {
					t.Fatalf("leak: LiveBytes = %d", res.Alloc.LiveBytes)
				}
				if res.VM.PeakCommitted < res.MaxLive {
					t.Fatalf("peak committed %d < max live %d", res.VM.PeakCommitted, res.MaxLive)
				}
				if err := h.Allocator().CheckIntegrity(); err != nil {
					t.Fatal(err)
				}
			})
		}
	}
}

// TestAllWorkloadsReal runs the matrix with real goroutines (race-detector
// coverage of the benchmark bodies themselves).
func TestAllWorkloadsReal(t *testing.T) {
	for _, r := range runners {
		for _, name := range allocators.Names() {
			t.Run(r.name+"/"+name, func(t *testing.T) {
				h := NewReal(name, 4)
				res := r.run(h, 4)
				if res.Alloc.LiveBytes != 0 {
					t.Fatalf("leak: LiveBytes = %d", res.Alloc.LiveBytes)
				}
				if err := h.Allocator().CheckIntegrity(); err != nil {
					t.Fatal(err)
				}
			})
		}
	}
}

// TestSimDeterminism re-runs a contended workload and demands bit-identical
// virtual times and cache statistics.
func TestSimDeterminism(t *testing.T) {
	for _, r := range runners {
		t.Run(r.name, func(t *testing.T) {
			run := func() Result {
				h := NewSim("hoard", 4, simproc.DefaultCosts)
				return r.run(h, 4)
			}
			a, b := run(), run()
			if a.ElapsedNS != b.ElapsedNS {
				t.Fatalf("nondeterministic time: %d vs %d", a.ElapsedNS, b.ElapsedNS)
			}
			if a.Cache != b.Cache {
				t.Fatalf("nondeterministic cache stats: %+v vs %+v", a.Cache, b.Cache)
			}
			if a.Ops != b.Ops {
				t.Fatalf("nondeterministic ops: %d vs %d", a.Ops, b.Ops)
			}
		})
	}
}

// TestProdConsBlowupShapes is the paper's §2.2 taxonomy in one test:
// committed memory across rounds must grow for pure private heaps and stay
// bounded for Hoard and ownership.
func TestProdConsBlowupShapes(t *testing.T) {
	cfg := ProdConsConfig{Threads: 4, Rounds: 30, Batch: 400, ObjSize: 64}
	series := func(name string) []int64 {
		h := NewSim(name, 4, simproc.DefaultCosts)
		_, s := ProdCons(h, cfg)
		return s
	}
	priv := series("private")
	if priv[len(priv)-1] < 3*priv[2] {
		t.Errorf("private heaps did not blow up: %v", priv)
	}
	for _, name := range []string{"hoard", "ownership", "threshold"} {
		s := series(name)
		if s[len(s)-1] > 2*s[2] {
			t.Errorf("%s memory grew across rounds: first %d last %d", name, s[2], s[len(s)-1])
		}
	}
}

// TestPhaseShiftBlowupShapes pins the paper's O(P) result: ownership-based
// allocators accumulate a live set per thread under phase-shifted
// allocation; Hoard's global heap recycles across phases.
func TestPhaseShiftBlowupShapes(t *testing.T) {
	const threads = 6
	cfg := PhaseShiftConfig{Threads: threads, Phases: 2 * threads, LiveObjects: 400, ObjSize: 64}
	ideal := int64(cfg.LiveObjects * cfg.ObjSize)
	final := func(name string) int64 {
		h := NewSim(name, threads, simproc.DefaultCosts)
		_, s := PhaseShift(h, cfg)
		return s[len(s)-1]
	}
	if got := final("ownership"); got < int64(threads)*ideal/2 {
		t.Errorf("ownership committed %d, want ~%d (P-fold)", got, int64(threads)*ideal)
	}
	if got := final("hoard"); got > 3*ideal {
		t.Errorf("hoard committed %d, want O(1) x %d", got, ideal)
	}
}

// TestThreadtestScalesOnSim sanity-checks the headline result at tiny
// scale: Hoard at 4 CPUs must beat Hoard at 1 CPU by a wide margin, and
// must beat serial at 4 CPUs.
func TestThreadtestScalesOnSim(t *testing.T) {
	elapsed := func(name string, procs int) int64 {
		h := NewSim(name, procs, simproc.DefaultCosts)
		cfg := tinyThreadtest(procs)
		// Paper scale: several superblocks per thread. (With barely one
		// superblock per thread the emptiness invariant evicts each
		// thread's only superblock mid-free and the benchmark
		// degenerates to pounding the global heap.)
		cfg.Objects = 16000
		return Threadtest(h, cfg).ElapsedNS
	}
	h1 := elapsed("hoard", 1)
	h4 := elapsed("hoard", 4)
	s4 := elapsed("serial", 4)
	if speedup := float64(h1) / float64(h4); speedup < 2.0 {
		t.Errorf("hoard 4-CPU speedup %.2f, want >= 2", speedup)
	}
	if h4 >= s4 {
		t.Errorf("hoard (%d) not faster than serial (%d) at 4 CPUs", h4, s4)
	}
}

// TestFalseSharingShapes: on active-false, Hoard must dramatically
// outperform the serial allocator at 4 CPUs because serial hands one cache
// line to several threads.
func TestFalseSharingShapes(t *testing.T) {
	elapsed := func(name string) (int64, int64) {
		h := NewSim(name, 4, simproc.DefaultCosts)
		res := ActiveFalse(h, tinyFalse(4))
		return res.ElapsedNS, res.Cache.RemoteTransfers
	}
	hoardNS, hoardRT := elapsed("hoard")
	serialNS, serialRT := elapsed("serial")
	if serialNS < 2*hoardNS {
		t.Errorf("active-false: serial (%d) not much slower than hoard (%d)", serialNS, hoardNS)
	}
	if serialRT < 10*hoardRT {
		t.Errorf("active-false: serial transfers %d vs hoard %d; expected >=10x", serialRT, hoardRT)
	}
}

// TestBarnesHutPhysicsSane checks the n-body code conserves sanity: the
// simulation must produce finite positions and nonzero movement, and the
// result must not depend on the allocator.
func TestBarnesHutPhysicsSane(t *testing.T) {
	runOps := func(name string) int64 {
		h := NewSim(name, 2, simproc.DefaultCosts)
		return BarnesHut(h, tinyBH(2)).Ops
	}
	a, b := runOps("hoard"), runOps("serial")
	if a != b {
		t.Fatalf("node alloc count depends on allocator: %d vs %d", a, b)
	}
}

func TestResultHelpers(t *testing.T) {
	r := Result{Ops: 1000, ElapsedNS: 2e9, MaxLive: 100}
	r.VM.PeakCommitted = 150
	if got := r.Throughput(); got != 500 {
		t.Fatalf("Throughput = %v, want 500", got)
	}
	if got := r.Fragmentation(); got != 1.5 {
		t.Fatalf("Fragmentation = %v, want 1.5", got)
	}
	var zero Result
	if zero.Throughput() != 0 || zero.Fragmentation() != 0 {
		t.Fatal("zero-value helpers must not divide by zero")
	}
}
