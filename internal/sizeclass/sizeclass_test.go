package sizeclass

import (
	"testing"
	"testing/quick"
)

func defaultTable() *Table { return New(DefaultBase, Quantum, 4096) }

func TestClassSizesAscendAndAligned(t *testing.T) {
	tab := defaultTable()
	prev := 0
	for i := 0; i < tab.NumClasses(); i++ {
		s := tab.Size(i)
		if s <= prev {
			t.Fatalf("class %d size %d not ascending (prev %d)", i, s, prev)
		}
		if s%Quantum != 0 {
			t.Fatalf("class %d size %d not %d-aligned", i, s, Quantum)
		}
		prev = s
	}
	if got := tab.Size(tab.NumClasses() - 1); got != tab.MaxSize() {
		t.Fatalf("last class size %d, want max %d", got, tab.MaxSize())
	}
}

func TestGrowthFactorBound(t *testing.T) {
	tab := defaultTable()
	for i := 1; i < tab.NumClasses(); i++ {
		a, b := tab.Size(i-1), tab.Size(i)
		// Each class is at most a factor base larger than the previous
		// (after Quantum rounding), bounding internal fragmentation.
		if float64(b) > float64(a)*tab.Base()+Quantum {
			t.Fatalf("class %d..%d ratio %v exceeds base %v", i-1, i, float64(b)/float64(a), tab.Base())
		}
	}
}

func TestClassForExactAndBoundary(t *testing.T) {
	tab := defaultTable()
	for i := 0; i < tab.NumClasses(); i++ {
		s := tab.Size(i)
		c, ok := tab.ClassFor(s)
		if !ok || c != i {
			t.Fatalf("ClassFor(%d) = %d,%v, want %d", s, c, ok, i)
		}
		if i > 0 {
			c, ok = tab.ClassFor(tab.Size(i-1) + 1)
			if !ok || c != i {
				t.Fatalf("ClassFor(%d) = %d,%v, want %d", tab.Size(i-1)+1, c, ok, i)
			}
		}
	}
}

func TestClassForEdges(t *testing.T) {
	tab := defaultTable()
	if c, ok := tab.ClassFor(0); !ok || c != 0 {
		t.Fatalf("ClassFor(0) = %d,%v", c, ok)
	}
	if c, ok := tab.ClassFor(-5); !ok || c != 0 {
		t.Fatalf("ClassFor(-5) = %d,%v", c, ok)
	}
	if c, ok := tab.ClassFor(1); !ok || c != 0 {
		t.Fatalf("ClassFor(1) = %d,%v", c, ok)
	}
	if _, ok := tab.ClassFor(tab.MaxSize()); !ok {
		t.Fatal("ClassFor(max) not ok")
	}
	if _, ok := tab.ClassFor(tab.MaxSize() + 1); ok {
		t.Fatal("ClassFor(max+1) ok, want overflow")
	}
}

func TestInvalidParamsPanic(t *testing.T) {
	cases := []struct {
		base     float64
		min, max int
	}{
		{1.0, 8, 4096},
		{0.5, 8, 4096},
		{1.2, 0, 4096},
		{1.2, 12, 4096},
		{1.2, 8, 4},
		{1.0001, 8, 1 << 20}, // would need >255 classes
	}
	for _, tc := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("New(%v,%d,%d) did not panic", tc.base, tc.min, tc.max)
				}
			}()
			New(tc.base, tc.min, tc.max)
		}()
	}
}

// TestPropertyClassFitsAndTight checks, for random sizes and bases, that the
// chosen class holds the request and wastes at most a factor base (+rounding).
func TestPropertyClassFitsAndTight(t *testing.T) {
	bases := []float64{1.1, 1.2, 1.5, 2.0}
	for _, b := range bases {
		tab := New(b, Quantum, 4096)
		f := func(raw uint16) bool {
			size := int(raw)%tab.MaxSize() + 1
			c, ok := tab.ClassFor(size)
			if !ok {
				return false
			}
			bs := tab.Size(c)
			if bs < size {
				return false // class must hold the request
			}
			if c > 0 && tab.Size(c-1) >= size {
				return false // must be the smallest adequate class
			}
			return true
		}
		if err := quick.Check(f, nil); err != nil {
			t.Fatalf("base %v: %v", b, err)
		}
	}
}

func TestSizesCopyIsDetached(t *testing.T) {
	tab := defaultTable()
	s := tab.Sizes()
	s[0] = 999999
	if tab.Size(0) == 999999 {
		t.Fatal("Sizes() exposed internal slice")
	}
}

func TestPaperParameters(t *testing.T) {
	// S = 8192 => max class size S/2 = 4096, b = 1.2, min 8.
	tab := New(1.2, 8, 4096)
	if n := tab.NumClasses(); n < 20 || n > 60 {
		t.Fatalf("unexpected class count %d for paper parameters", n)
	}
}

func BenchmarkClassFor(b *testing.B) {
	tab := defaultTable()
	for i := 0; i < b.N; i++ {
		if _, ok := tab.ClassFor(i&4095 + 1); !ok {
			b.Fatal("overflow")
		}
	}
}
