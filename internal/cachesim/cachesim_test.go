package cachesim

import "testing"

func TestColdThenHit(t *testing.T) {
	m := New(DefaultCosts)
	if got := m.Access(0, 0x1000, 8, false); got != DefaultCosts.ColdMiss {
		t.Fatalf("cold read cost %d, want %d", got, DefaultCosts.ColdMiss)
	}
	if got := m.Access(0, 0x1008, 8, false); got != DefaultCosts.Hit {
		t.Fatalf("same-line read cost %d, want hit %d", got, DefaultCosts.Hit)
	}
	st := m.Stats()
	if st.ColdMisses != 1 || st.Hits != 1 {
		t.Fatalf("stats %+v", st)
	}
}

func TestWriteExclusiveHit(t *testing.T) {
	m := New(DefaultCosts)
	m.Access(3, 0x2000, 8, true)
	if got := m.Access(3, 0x2010, 8, true); got != DefaultCosts.Hit {
		t.Fatalf("exclusive rewrite cost %d, want hit", got)
	}
}

func TestFalseSharingPingPong(t *testing.T) {
	// Two CPUs writing different bytes of the same line: every write after
	// the first transfers the line — the paper's false-sharing effect.
	m := New(DefaultCosts)
	m.Access(0, 0x3000, 8, true)
	for i := 0; i < 10; i++ {
		if got := m.Access(1, 0x3008, 8, true); got != DefaultCosts.RemoteTransfer {
			t.Fatalf("iter %d: cpu1 write cost %d, want remote %d", i, got, DefaultCosts.RemoteTransfer)
		}
		if got := m.Access(0, 0x3000, 8, true); got != DefaultCosts.RemoteTransfer {
			t.Fatalf("iter %d: cpu0 write cost %d, want remote %d", i, got, DefaultCosts.RemoteTransfer)
		}
	}
	if st := m.Stats(); st.RemoteTransfers != 20 {
		t.Fatalf("RemoteTransfers = %d, want 20", st.RemoteTransfers)
	}
}

func TestDistinctLinesNoSharing(t *testing.T) {
	// Two CPUs writing different lines: after warmup, all hits.
	m := New(DefaultCosts)
	m.Access(0, 0x4000, 8, true)
	m.Access(1, 0x4040, 8, true)
	for i := 0; i < 10; i++ {
		if got := m.Access(0, 0x4000, 8, true); got != DefaultCosts.Hit {
			t.Fatalf("cpu0 isolated write cost %d", got)
		}
		if got := m.Access(1, 0x4040, 8, true); got != DefaultCosts.Hit {
			t.Fatalf("cpu1 isolated write cost %d", got)
		}
	}
	if st := m.Stats(); st.RemoteTransfers != 0 {
		t.Fatalf("RemoteTransfers = %d on disjoint lines", st.RemoteTransfers)
	}
}

func TestReadSharingIsCheapAfterFetch(t *testing.T) {
	m := New(DefaultCosts)
	m.Access(0, 0x5000, 8, true)
	if got := m.Access(1, 0x5000, 8, false); got != DefaultCosts.RemoteTransfer {
		t.Fatalf("first remote read cost %d", got)
	}
	// Both may now read freely.
	if got := m.Access(0, 0x5000, 8, false); got != DefaultCosts.Hit {
		t.Fatalf("owner re-read cost %d", got)
	}
	if got := m.Access(1, 0x5000, 8, false); got != DefaultCosts.Hit {
		t.Fatalf("sharer re-read cost %d", got)
	}
}

func TestWriteInvalidatesSharers(t *testing.T) {
	m := New(DefaultCosts)
	m.Access(0, 0x6000, 8, false)
	m.Access(1, 0x6000, 8, false)
	m.Access(2, 0x6000, 8, false)
	before := m.Stats().Invalidations
	m.Access(0, 0x6000, 8, true)
	if got := m.Stats().Invalidations - before; got != 2 {
		t.Fatalf("invalidated %d sharers, want 2", got)
	}
	// Prior sharers must now miss.
	if got := m.Access(1, 0x6000, 8, false); got != DefaultCosts.RemoteTransfer {
		t.Fatalf("invalidated reader cost %d, want remote transfer", got)
	}
}

func TestMultiLineAccess(t *testing.T) {
	m := New(DefaultCosts)
	// 130 bytes starting mid-line spans 3 lines.
	if got := m.Access(0, 0x7020, 130, true); got != 3*DefaultCosts.ColdMiss {
		t.Fatalf("multi-line cold write cost %d, want %d", got, 3*DefaultCosts.ColdMiss)
	}
	if m.Lines() != 3 {
		t.Fatalf("Lines = %d, want 3", m.Lines())
	}
}

func TestZeroLengthAccess(t *testing.T) {
	m := New(DefaultCosts)
	if got := m.Access(0, 0x8000, 0, true); got != 0 {
		t.Fatalf("zero-length access cost %d", got)
	}
}

func TestUpgradeFromOwnClean(t *testing.T) {
	m := New(DefaultCosts)
	m.Access(0, 0x9000, 8, false) // clean copy, sole sharer
	if got := m.Access(0, 0x9000, 8, true); got != DefaultCosts.Hit {
		t.Fatalf("upgrade write cost %d, want hit", got)
	}
}
