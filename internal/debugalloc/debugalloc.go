// Package debugalloc wraps any allocator with memory-debugging machinery
// in the tradition of Electric Fence and the debug modes of production
// mallocs:
//
//   - canaries: guard words before and after every user area, checked on
//     free and on demand — buffer overflows and underflows panic with the
//     offending address;
//   - poisoning: freed memory is filled with a poison pattern;
//   - quarantine: frees are delayed through a FIFO so the poison has time
//     to catch use-after-free writes, which are detected when the block
//     finally leaves quarantine (and by CheckIntegrity).
//
// The wrapper costs a lock and a map lookup per operation — it is a
// development tool, not a fast path — and is exposed on the public API as
// Config.Debug.
package debugalloc

import (
	"encoding/binary"
	"fmt"
	"sync"

	"hoardgo/internal/alloc"
	"hoardgo/internal/env"
	"hoardgo/internal/vm"
)

const (
	// canarySize is the guard region on each side of the user area.
	canarySize = 8
	// canaryMagic seeds the guard pattern (xored with the address so
	// copies of one block's guards don't validate another's).
	canaryMagic = 0xDEADBEEFCAFEF00D
	// poisonByte fills freed user memory.
	poisonByte = 0xDD
	// DefaultQuarantine is the default number of delayed frees.
	DefaultQuarantine = 128
)

// Config tunes the wrapper.
type Config struct {
	// Quarantine is the FIFO length of delayed frees (0 selects
	// DefaultQuarantine; negative disables quarantine).
	Quarantine int
}

// Allocator is the debugging wrapper.
type Allocator struct {
	inner alloc.Allocator
	cfg   Config
	// acct tracks the application's view — requested (not canary-padded)
	// bytes, counted when the application mallocs and frees, not when
	// quarantine finally releases.
	acct alloc.Accounting

	mu         sync.Mutex
	live       map[alloc.Ptr]int // user ptr -> requested size
	quarantine []quarItem
}

type quarItem struct {
	user alloc.Ptr
	size int
	th   *alloc.Thread
}

// New wraps inner.
func New(inner alloc.Allocator, cfg Config) *Allocator {
	switch {
	case cfg.Quarantine == 0:
		cfg.Quarantine = DefaultQuarantine
	case cfg.Quarantine < 0:
		cfg.Quarantine = 0
	}
	return &Allocator{inner: inner, cfg: cfg, live: make(map[alloc.Ptr]int)}
}

// Name implements alloc.Allocator.
func (a *Allocator) Name() string { return a.inner.Name() + "+debug" }

// Space implements alloc.Allocator.
func (a *Allocator) Space() vm.Backend { return a.inner.Space() }

// Inner returns the wrapped allocator.
func (a *Allocator) Inner() alloc.Allocator { return a.inner }

// NewThread implements alloc.Allocator.
func (a *Allocator) NewThread(e env.Env) *alloc.Thread {
	return a.inner.NewThread(e)
}

func canaryAt(addr uint64) uint64 { return canaryMagic ^ addr }

func (a *Allocator) writeCanary(addr uint64) {
	binary.LittleEndian.PutUint64(a.inner.Space().Bytes(addr, canarySize), canaryAt(addr))
}

func (a *Allocator) checkCanary(addr uint64, what string, user alloc.Ptr) {
	got := binary.LittleEndian.Uint64(a.inner.Space().Bytes(addr, canarySize))
	if got != canaryAt(addr) {
		panic(fmt.Sprintf("debugalloc: %s canary smashed on block %#x (at %#x: got %#x)",
			what, uint64(user), addr, got))
	}
}

// Malloc implements alloc.Allocator: the inner block is size + two guard
// words; the returned pointer points past the front guard.
func (a *Allocator) Malloc(t *alloc.Thread, size int) alloc.Ptr {
	if size < 0 {
		panic(fmt.Sprintf("debugalloc: Malloc(%d)", size))
	}
	raw := a.inner.Malloc(t, size+2*canarySize)
	user := raw + canarySize
	a.writeCanary(uint64(raw))
	a.writeCanary(uint64(user) + uint64(size))
	a.mu.Lock()
	a.live[user] = size
	a.mu.Unlock()
	a.acct.OnMalloc(size)
	return user
}

// Free implements alloc.Allocator: verify guards, poison, quarantine.
func (a *Allocator) Free(t *alloc.Thread, p alloc.Ptr) {
	if p.IsNil() {
		return
	}
	a.mu.Lock()
	size, ok := a.live[p]
	if !ok {
		a.mu.Unlock()
		panic(fmt.Sprintf("debugalloc: free of unknown or already-freed pointer %#x", uint64(p)))
	}
	delete(a.live, p)
	a.mu.Unlock()

	a.acct.OnFree(size)

	a.checkCanary(uint64(p)-canarySize, "front", p)
	a.checkCanary(uint64(p)+uint64(size), "rear", p)
	poison(a.inner.Space().Bytes(uint64(p), size))

	if a.cfg.Quarantine == 0 {
		a.inner.Free(t, p-canarySize)
		return
	}
	a.mu.Lock()
	a.quarantine = append(a.quarantine, quarItem{user: p, size: size, th: t})
	var out *quarItem
	if len(a.quarantine) > a.cfg.Quarantine {
		item := a.quarantine[0]
		a.quarantine = a.quarantine[1:]
		out = &item
	}
	a.mu.Unlock()
	if out != nil {
		a.releaseFromQuarantine(t, *out)
	}
}

// releaseFromQuarantine verifies the poison survived, then really frees.
func (a *Allocator) releaseFromQuarantine(t *alloc.Thread, it quarItem) {
	checkPoison(a.inner.Space().Bytes(uint64(it.user), it.size), it.user)
	a.inner.Free(t, it.user-canarySize)
}

// FlushThread implements alloc.ThreadFlusher: the quarantine's delayed
// frees complete (poison-checked) and the flush propagates to the inner
// allocator's layer state (tcache magazines, when layered below). The
// quarantine is allocator-global rather than per-thread, so flushing any
// one thread drains all of it — acceptable at thread exit, where the goal
// is that no retired thread strands memory.
func (a *Allocator) FlushThread(t *alloc.Thread) {
	a.FlushQuarantine(t)
	alloc.FlushThread(a.inner, t)
}

// FlushQuarantine releases every delayed free (poison-checked). Call at
// teardown so the inner allocator's accounting reaches zero.
func (a *Allocator) FlushQuarantine(t *alloc.Thread) {
	a.mu.Lock()
	q := a.quarantine
	a.quarantine = nil
	a.mu.Unlock()
	for _, it := range q {
		a.releaseFromQuarantine(t, it)
	}
}

func poison(b []byte) {
	for i := range b {
		b[i] = poisonByte
	}
}

func checkPoison(b []byte, user alloc.Ptr) {
	for i, v := range b {
		if v != poisonByte {
			panic(fmt.Sprintf("debugalloc: use-after-free write on block %#x (offset %d: %#x)",
				uint64(user), i, v))
		}
	}
}

// UsableSize implements alloc.Allocator: exactly the requested size — the
// guards make any excess out of bounds.
func (a *Allocator) UsableSize(p alloc.Ptr) int {
	a.mu.Lock()
	size, ok := a.live[p]
	a.mu.Unlock()
	if !ok {
		panic(fmt.Sprintf("debugalloc: UsableSize of unknown pointer %#x", uint64(p)))
	}
	return size
}

// Bytes implements alloc.Allocator, bounded by the requested size.
func (a *Allocator) Bytes(p alloc.Ptr, n int) []byte {
	if n > a.UsableSize(p) {
		panic(fmt.Sprintf("debugalloc: Bytes(%#x, %d) exceeds requested size", uint64(p), n))
	}
	return a.inner.Space().Bytes(uint64(p), n)
}

// Stats implements alloc.Allocator, reporting application-level operation
// counts and requested-byte gauges (quarantined blocks are dead to the
// application, canary padding is invisible) over the inner allocator's
// mechanism counters.
func (a *Allocator) Stats() alloc.Stats {
	var st alloc.Stats
	a.acct.Fill(&st)
	alloc.MergeAllocatorCounters(&st, a.inner.Stats())
	return st
}

// LiveBlocks returns the current allocation count — a leak report
// primitive.
func (a *Allocator) LiveBlocks() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return len(a.live)
}

// CheckIntegrity implements alloc.Allocator: every live block's guards and
// every quarantined block's poison must be intact, and the inner allocator
// must pass its own check.
func (a *Allocator) CheckIntegrity() error {
	a.mu.Lock()
	type rec struct {
		p  alloc.Ptr
		sz int
	}
	var blocks []rec
	for p, sz := range a.live {
		blocks = append(blocks, rec{p, sz})
	}
	q := append([]quarItem(nil), a.quarantine...)
	a.mu.Unlock()

	for _, b := range blocks {
		front := binary.LittleEndian.Uint64(a.inner.Space().Bytes(uint64(b.p)-canarySize, canarySize))
		if front != canaryAt(uint64(b.p)-canarySize) {
			return fmt.Errorf("debugalloc: front canary smashed on %#x", uint64(b.p))
		}
		rear := binary.LittleEndian.Uint64(a.inner.Space().Bytes(uint64(b.p)+uint64(b.sz), canarySize))
		if rear != canaryAt(uint64(b.p)+uint64(b.sz)) {
			return fmt.Errorf("debugalloc: rear canary smashed on %#x", uint64(b.p))
		}
	}
	for _, it := range q {
		for i, v := range a.inner.Space().Bytes(uint64(it.user), it.size) {
			if v != poisonByte {
				return fmt.Errorf("debugalloc: use-after-free write on quarantined %#x (offset %d)", uint64(it.user), i)
			}
		}
	}
	return a.inner.CheckIntegrity()
}
