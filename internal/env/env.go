// Package env abstracts the execution environment an allocator runs in.
//
// The Hoard reproduction runs the same allocator code in two environments:
//
//   - Real: locks are sync.Mutex, cost charging and cache touches are no-ops,
//     and goroutines run truly concurrently. Used by stress tests, examples,
//     and wall-clock benchmarks.
//
//   - Simulated: locks are virtual locks managed by the discrete-event
//     multiprocessor simulator (internal/simproc), Charge advances a virtual
//     clock, and Touch drives a cache-coherence model (internal/cachesim).
//     Used to reproduce the paper's 1-14 processor speedup figures on any
//     host, deterministically.
//
// Allocator code is written once against these interfaces; which environment
// it observes is decided by the Thread handles passed into each operation and
// the LockFactory passed at construction.
package env

import (
	"sort"
	"sync"
	"sync/atomic"
)

// CostKind names an abstract unit of allocator or application work. The
// simulator maps each kind to virtual nanoseconds via its cost model; the
// real environment ignores charges entirely.
type CostKind int

// Charging discipline (asserted by the cost tests in internal/core): every
// small malloc charges OpMallocFast exactly once; a malloc that had to visit
// the global heap or the OS additionally charges OpMallocSlow exactly once —
// a surcharge on top of the fast-path cost, never a replacement. The batch
// paths keep the same per-block charges (the per-block bookkeeping really
// happens) and add one OpMallocBatch/OpFreeBatch per call for the batch
// setup; their saving shows up in lock costs, which are charged per
// acquisition, not per block.
const (
	// OpMallocFast is the bookkeeping cost of a malloc that is satisfied
	// from a superblock already owned by the calling thread's heap.
	OpMallocFast CostKind = iota
	// OpMallocSlow is the extra cost of a malloc that must visit the
	// global heap or the OS to obtain a superblock. It is a surcharge:
	// slow-path mallocs charge OpMallocFast as well (the fast-path
	// bookkeeping still runs), plus one OpMallocSlow per superblock
	// acquisition.
	OpMallocSlow
	// OpFree is the bookkeeping cost of a free.
	OpFree
	// OpListScan is the cost of inspecting one superblock or free-list
	// node while searching for free space. The discipline is per node:
	// scans charge one unit per list head consulted plus one per node
	// actually visited, so walking a long fullness-group list costs
	// proportionally more than peeking at an empty one (a flat per-class
	// charge would under-bill long group-0 scans and skew the cost model
	// the experiments are built on).
	OpListScan
	// OpSuperblockMove is the cost of transferring one superblock between
	// heaps (unlinking, relinking, statistics updates).
	OpSuperblockMove
	// OpOSAlloc is the cost of obtaining or returning memory from the
	// simulated OS (an mmap-equivalent).
	OpOSAlloc
	// OpRemoteFree is the cost of the lock-free remote-free fast path: one
	// link write plus a CAS on the superblock's remote stack head (no heap
	// lock is taken; the matching drain is charged OpFree per block). A
	// batched remote push charges it once per block — the link writes are
	// real — while the single CAS is covered by the batch op below.
	OpRemoteFree
	// OpMallocBatch is the per-call setup cost of a batched malloc
	// (MallocBatch): argument marshalling and the single
	// sharded-accounting update. Charged once per batch on top of the
	// per-block OpMallocFast charges.
	OpMallocBatch
	// OpFreeBatch is the per-call setup cost of a batched free
	// (FreeBatch): the single page-table grouping pass bookkeeping and the
	// per-owner-group accounting updates. Charged once per batch on top of
	// the per-block OpFree/OpRemoteFree charges.
	OpFreeBatch
	// OpWork is application-level computation, in abstract work units as
	// charged by workloads (the cost model scales it to time).
	OpWork
	// NumCostKinds is the number of distinct cost kinds.
	NumCostKinds
)

// String returns a short human-readable name for the cost kind.
func (k CostKind) String() string {
	switch k {
	case OpMallocFast:
		return "malloc-fast"
	case OpMallocSlow:
		return "malloc-slow"
	case OpFree:
		return "free"
	case OpListScan:
		return "list-scan"
	case OpSuperblockMove:
		return "superblock-move"
	case OpOSAlloc:
		return "os-alloc"
	case OpRemoteFree:
		return "remote-free"
	case OpMallocBatch:
		return "malloc-batch"
	case OpFreeBatch:
		return "free-batch"
	case OpWork:
		return "work"
	default:
		return "unknown"
	}
}

// Env is the per-thread view of the execution environment. An Env value is
// only ever used by the single thread it was created for; it is not safe for
// concurrent use (each thread gets its own).
type Env interface {
	// Charge records n units of work of the given kind against the
	// calling thread's clock. In the real environment this is a no-op.
	Charge(kind CostKind, n int64)

	// Touch records a memory access of n bytes at the given simulated
	// address, driving the cache-coherence cost model. write reports
	// whether the access mutates the memory. No-op in the real
	// environment.
	Touch(addr uint64, n int, write bool)

	// ThreadID returns the stable identifier of the thread this Env
	// belongs to. IDs are small non-negative integers assigned in spawn
	// order.
	ThreadID() int
}

// Lock is a mutual-exclusion lock usable from either environment. Methods
// take the caller's Env so the simulator knows which virtual thread is
// acquiring or blocking.
type Lock interface {
	// Lock acquires the lock, blocking (in real or virtual time) until it
	// is available.
	Lock(e Env)
	// Unlock releases the lock, which must be held by the calling thread.
	Unlock(e Env)
	// TryLock acquires the lock if it is immediately available and
	// reports whether it did. Used by the ptmalloc-style baseline's
	// arena-stealing path.
	TryLock(e Env) bool
}

// LockFactory creates locks bound to one environment. Allocators receive a
// factory at construction so all their internal locks live in the same world
// as the threads that will use them.
type LockFactory interface {
	// NewLock returns a new unlocked lock. The name is used for
	// contention statistics and debugging.
	NewLock(name string) Lock
}

// --- Real environment ---

// RealEnv is the production environment: charges and touches are no-ops.
type RealEnv struct {
	// ID is the thread identifier returned by ThreadID.
	ID int
}

// Charge implements Env as a no-op.
func (*RealEnv) Charge(CostKind, int64) {}

// Touch implements Env as a no-op.
func (*RealEnv) Touch(uint64, int, bool) {}

// ThreadID returns the configured thread identifier.
func (e *RealEnv) ThreadID() int { return e.ID }

// RealLockFactory creates sync.Mutex-backed locks.
type RealLockFactory struct{}

// NewLock returns a lock backed by a sync.Mutex.
func (RealLockFactory) NewLock(string) Lock { return &realLock{} }

type realLock struct{ mu sync.Mutex }

func (l *realLock) Lock(Env)   { l.mu.Lock() }
func (l *realLock) Unlock(Env) { l.mu.Unlock() }

func (l *realLock) TryLock(Env) bool { return l.mu.TryLock() }

// labeledLock is the optional interface a Lock may implement to receive a
// per-call-site label (an op name like "malloc-refill" or "drain-nudge")
// alongside the acquisition. LockWith and TryLockWith dispatch to it when
// present and fall back to the plain methods otherwise, so allocator code
// can label every call site without caring which lock implementation is
// underneath.
type labeledLock interface {
	LockL(e Env, label string)
	TryLockL(e Env, label string) bool
}

// LockWith acquires l, attributing the acquisition to the call-site label
// when l supports labels (CountingLockFactory locks do). Equivalent to
// l.Lock(e) otherwise.
func LockWith(l Lock, e Env, label string) {
	if ll, ok := l.(labeledLock); ok {
		ll.LockL(e, label)
		return
	}
	l.Lock(e)
}

// TryLockWith is LockWith for TryLock: a miss is attributed to the label
// too, which is what distinguishes "gave up without waiting" from "waited"
// in the per-site tables.
func TryLockWith(l Lock, e Env, label string) bool {
	if ll, ok := l.(labeledLock); ok {
		return ll.TryLockL(e, label)
	}
	return l.TryLock(e)
}

// SiteStat is one (lock, call-site label) cell of a CountingLockFactory's
// attribution table. Unlabeled acquisitions (plain Lock/TryLock calls) land
// on the empty label.
type SiteStat struct {
	// Lock is the lock's name; Label is the call-site op label.
	Lock, Label string
	// Acquires counts successful acquisitions (Lock, and TryLock when it
	// succeeded).
	Acquires int64
	// Contended counts Lock calls that found the lock held and had to
	// wait (detected by a try-probe before blocking).
	Contended int64
	// TryMisses counts TryLock calls that gave up because the lock was
	// held — the fast paths' "someone else is reconciling" signal.
	TryMisses int64
}

// CountingLockFactory wraps another factory and counts lock activity across
// every lock it creates: total successful acquisitions, plus a per
// (lock name × call-site label) breakdown distinguishing contended waits
// from try-misses. Benchmarks use it to report lock acquisitions per
// operation in the real environment, where the simulator's LockStats are
// unavailable; the per-site table is what makes a before/after lock-traffic
// comparison self-explanatory.
type CountingLockFactory struct {
	// Inner is the factory that creates the underlying locks.
	Inner LockFactory

	acquires atomic.Int64
	mu       sync.Mutex
	sites    map[siteKey]*siteCounters
}

type siteKey struct{ lock, label string }

type siteCounters struct {
	acquires  atomic.Int64
	contended atomic.Int64
	tryMisses atomic.Int64
}

// NewLock implements LockFactory.
func (f *CountingLockFactory) NewLock(name string) Lock {
	return &countingLock{inner: f.Inner.NewLock(name), name: name, f: f}
}

// Acquires returns the total successful acquisitions so far.
func (f *CountingLockFactory) Acquires() int64 { return f.acquires.Load() }

// SiteStats returns the per (lock × label) attribution table, sorted by
// descending acquisitions (ties broken by lock name then label, for
// deterministic output).
func (f *CountingLockFactory) SiteStats() []SiteStat {
	f.mu.Lock()
	out := make([]SiteStat, 0, len(f.sites))
	for k, c := range f.sites {
		out = append(out, SiteStat{
			Lock:      k.lock,
			Label:     k.label,
			Acquires:  c.acquires.Load(),
			Contended: c.contended.Load(),
			TryMisses: c.tryMisses.Load(),
		})
	}
	f.mu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Acquires != b.Acquires {
			return a.Acquires > b.Acquires
		}
		if a.Lock != b.Lock {
			return a.Lock < b.Lock
		}
		return a.Label < b.Label
	})
	return out
}

func (f *CountingLockFactory) site(lock, label string) *siteCounters {
	k := siteKey{lock, label}
	f.mu.Lock()
	if f.sites == nil {
		f.sites = make(map[siteKey]*siteCounters)
	}
	c := f.sites[k]
	if c == nil {
		c = &siteCounters{}
		f.sites[k] = c
	}
	f.mu.Unlock()
	return c
}

type countingLock struct {
	inner Lock
	name  string
	f     *CountingLockFactory

	// sitesCache avoids the factory map lookup on the hot path: labels
	// per lock are few and stable, so a small copy-on-write slice beats a
	// locked map.
	sitesCache atomic.Pointer[[]labelSite]
}

type labelSite struct {
	label string
	c     *siteCounters
}

func (l *countingLock) site(label string) *siteCounters {
	if cached := l.sitesCache.Load(); cached != nil {
		for _, s := range *cached {
			if s.label == label {
				return s.c
			}
		}
	}
	c := l.f.site(l.name, label)
	for {
		old := l.sitesCache.Load()
		var next []labelSite
		if old != nil {
			for _, s := range *old {
				if s.label == label {
					// Another thread won the race to cache it.
					return s.c
				}
			}
			next = append(next, *old...)
		}
		next = append(next, labelSite{label, c})
		if l.sitesCache.CompareAndSwap(old, &next) {
			return c
		}
	}
}

func (l *countingLock) Lock(e Env) { l.LockL(e, "") }

func (l *countingLock) LockL(e Env, label string) {
	s := l.site(label)
	// Try-probe to classify the acquisition: an immediate success was
	// uncontended; otherwise we are about to wait.
	if !l.inner.TryLock(e) {
		s.contended.Add(1)
		l.inner.Lock(e)
	}
	s.acquires.Add(1)
	l.f.acquires.Add(1)
}

func (l *countingLock) Unlock(e Env) { l.inner.Unlock(e) }

func (l *countingLock) TryLock(e Env) bool { return l.TryLockL(e, "") }

func (l *countingLock) TryLockL(e Env, label string) bool {
	s := l.site(label)
	if !l.inner.TryLock(e) {
		s.tryMisses.Add(1)
		return false
	}
	s.acquires.Add(1)
	l.f.acquires.Add(1)
	return true
}
