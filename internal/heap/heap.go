// Package heap implements Hoard's per-processor heap structure.
//
// A heap owns a set of superblocks, organized per size class into a small
// number of fullness groups (doubly-linked lists bucketed by allocated
// fraction). Allocation searches a class's groups from mostly-full to
// mostly-empty, which both improves locality and lets nearly-empty
// superblocks drain so they can be recycled. The heap tracks u(i), the bytes
// in use, and a(i), the bytes held in superblocks, and exposes the paper's
// emptiness invariant
//
//	u(i) >= a(i) - K*S  OR  u(i) >= (1-f)*a(i)
//
// which the Hoard allocator (internal/core) restores after each free by
// moving an at-least-f-empty superblock to the global heap.
//
// Locking: a Heap performs no locking itself. Every method must be called
// with the heap's Lock held; internal/core owns the locking protocol
// (including the re-check dance when superblock ownership changes while a
// freeing thread waits).
package heap

import (
	"fmt"
	"sync/atomic"

	"hoardgo/internal/alloc"
	"hoardgo/internal/env"
	"hoardgo/internal/superblock"
)

// NumGroups is the number of fullness groups per size class for non-full
// superblocks; an additional group holds completely full superblocks.
const NumGroups = 4

// fullGroup is the group index for completely full superblocks.
const fullGroup = NumGroups

// Heap is one Hoard heap (per-processor or global).
type Heap struct {
	// ID is the heap's index: 0 is the global heap, 1..N are
	// per-processor heaps.
	ID int
	// Lock serializes all access to the heap. Held by callers.
	Lock env.Lock

	sbSize  int
	fEmpty  float64
	k       int
	u, a    int64
	classes []classGroups
	nSuper  int

	// pending is a racy hint of how many bytes sit on the remote stacks
	// of superblocks this heap owns. Remote pushers add to it without the
	// heap lock; DrainAll resets it. It gates drain work (skip the sweep
	// when nothing is plausibly pending) and discounts the emptiness
	// invariant pre-check; correctness never depends on its value.
	pending atomic.Int64
}

type classGroups struct {
	groups [NumGroups + 1]sbList
}

// sbList is an intrusive doubly-linked list of superblocks.
type sbList struct {
	head *superblock.Superblock
}

func (l *sbList) pushFront(sb *superblock.Superblock) {
	sb.Prev = nil
	sb.Next = l.head
	if l.head != nil {
		l.head.Prev = sb
	}
	l.head = sb
}

func (l *sbList) remove(sb *superblock.Superblock) {
	if sb.Prev != nil {
		sb.Prev.Next = sb.Next
	} else {
		l.head = sb.Next
	}
	if sb.Next != nil {
		sb.Next.Prev = sb.Prev
	}
	sb.Next, sb.Prev = nil, nil
}

// New creates an empty heap. sbSize is S; fEmpty and k parameterize the
// emptiness invariant; numClasses is the size-class count; lock is the
// heap's lock (created by the caller in the appropriate environment).
func New(id, sbSize int, fEmpty float64, k, numClasses int, lock env.Lock) *Heap {
	if fEmpty <= 0 || fEmpty >= 1 {
		panic(fmt.Sprintf("heap: empty fraction %v out of (0,1)", fEmpty))
	}
	return &Heap{
		ID:      id,
		Lock:    lock,
		sbSize:  sbSize,
		fEmpty:  fEmpty,
		k:       k,
		classes: make([]classGroups, numClasses),
	}
}

// groupOf computes the fullness group for a superblock.
func groupOf(sb *superblock.Superblock) int {
	if sb.Full() {
		return fullGroup
	}
	g := sb.InUse() * NumGroups / sb.NBlocks()
	if g >= NumGroups {
		g = NumGroups - 1
	}
	return g
}

// U returns the bytes currently allocated from this heap's superblocks.
func (h *Heap) U() int64 { return h.u }

// A returns the bytes held by this heap in superblocks (S per superblock).
func (h *Heap) A() int64 { return h.a }

// Superblocks returns the number of superblocks the heap holds.
func (h *Heap) Superblocks() int { return h.nSuper }

// InvariantViolated reports whether the emptiness invariant fails, i.e.
// u < a - K*S AND u < (1-f)*a. The Hoard free path must restore the
// invariant when this returns true. The global heap never evicts, so core
// only consults this on per-processor heaps.
func (h *Heap) InvariantViolated() bool {
	return h.invariantViolatedAt(h.u)
}

// InvariantViolatedDiscounted is the pre-drain form of the invariant check:
// it discounts u by the pending-remote-free hint, since draining can only
// lower u. It may report a violation that a drain-then-recheck disproves
// (the hint can over- or under-count); callers must DrainAll and consult
// InvariantViolated before actually evicting.
func (h *Heap) InvariantViolatedDiscounted() bool {
	p := h.pending.Load()
	if p < 0 {
		p = 0
	}
	u := h.u - p
	if u < 0 {
		u = 0
	}
	return h.invariantViolatedAt(u)
}

func (h *Heap) invariantViolatedAt(u int64) bool {
	return u < h.a-int64(h.k*h.sbSize) && float64(u) < (1-h.fEmpty)*float64(h.a)
}

// NoteRemotePush records bytes pushed onto a remote stack of a superblock
// this heap was observed to own. Called without the heap lock.
func (h *Heap) NoteRemotePush(bytes int64) { h.pending.Add(bytes) }

// PendingHintBytes returns the racy pending-remote-free hint.
func (h *Heap) PendingHintBytes() int64 { return h.pending.Load() }

// Insert adds a superblock (and its current contents) to the heap, taking
// ownership. The superblock must not be on any other heap.
func (h *Heap) Insert(sb *superblock.Superblock) {
	sb.SetOwnerID(h.ID)
	sb.Group = groupOf(sb)
	h.classes[sb.Class()].groups[sb.Group].pushFront(sb)
	h.a += int64(h.sbSize)
	h.u += int64(sb.BytesInUse())
	h.nSuper++
	// The incoming superblock may carry remote frees pushed while a
	// previous heap owned it; fold them into this heap's hint so they are
	// not stranded until some unrelated push.
	if p := sb.RemotePendingBytes(); p > 0 {
		h.pending.Add(p)
	}
}

// Remove detaches a superblock from the heap, releasing ownership of its
// statistics. The caller becomes responsible for the superblock.
//
// The departing superblock takes its remote-pending blocks with it (Insert
// folds them into the receiving heap's hint), so they are subtracted from
// this heap's hint here. Without the subtraction the source heap keeps
// counting bytes it can never drain, which makes InvariantViolatedDiscounted
// report spurious violations and TakeSuper run wasted full-heap drain sweeps
// until the next DrainAll resets the hint.
func (h *Heap) Remove(sb *superblock.Superblock) {
	h.classes[sb.Class()].groups[sb.Group].remove(sb)
	h.a -= int64(h.sbSize)
	h.u -= int64(sb.BytesInUse())
	h.nSuper--
	h.dropPendingHint(sb.RemotePendingBytes())
}

// dropPendingHint lowers the pending-remote-free hint by bytes, clamping at
// zero: the hint is racy (pushes land without the heap lock), so a stale
// read could otherwise drive it negative and mask genuinely pending bytes.
func (h *Heap) dropPendingHint(bytes int64) {
	for bytes > 0 {
		cur := h.pending.Load()
		next := cur - bytes
		if next < 0 {
			next = 0
		}
		if h.pending.CompareAndSwap(cur, next) {
			return
		}
	}
}

// regroup moves sb to its correct fullness group after an alloc or free.
// Within a group, superblocks freed into the group go to the front so
// recently-touched superblocks are reused first.
func (h *Heap) regroup(sb *superblock.Superblock) {
	g := groupOf(sb)
	if g == sb.Group {
		return
	}
	lists := &h.classes[sb.Class()].groups
	lists[sb.Group].remove(sb)
	sb.Group = g
	lists[g].pushFront(sb)
}

// AllocBlock allocates one block of the given class from the heap's
// superblocks, searching fullness groups from mostly-full down to
// mostly-empty as the paper prescribes. ok is false if no owned superblock
// of the class has a free block.
func (h *Heap) AllocBlock(e env.Env, class int) (alloc.Ptr, bool) {
	lists := &h.classes[class].groups
	for g := NumGroups - 1; g >= 0; g-- {
		e.Charge(env.OpListScan, 1)
		sb := lists[g].head
		if sb == nil {
			continue
		}
		p, ok := sb.AllocBlock(e)
		if !ok {
			// A superblock in a non-full group always has a free
			// block; reaching here means grouping is corrupt.
			panic(fmt.Sprintf("heap %d: full superblock in group %d", h.ID, g))
		}
		h.u += int64(sb.BlockSize())
		h.regroup(sb)
		return p, true
	}
	return 0, false
}

// FreeBlock returns a block to its superblock, which must be owned by this
// heap. Any remote frees pending on the same superblock are drained in the
// same critical section (we already paid for the lock); the number of blocks
// so drained is returned.
func (h *Heap) FreeBlock(e env.Env, sb *superblock.Superblock, p alloc.Ptr) int {
	if sb.OwnerID() != h.ID {
		panic(fmt.Sprintf("heap %d: FreeBlock on superblock owned by heap %d", h.ID, sb.OwnerID()))
	}
	drained := sb.DrainRemote(e)
	sb.FreeBlock(e, p)
	h.u -= int64(drained+1) * int64(sb.BlockSize())
	h.regroup(sb)
	return drained
}

// FreeBlocks returns a batch of blocks to one superblock, which must be
// owned by this heap — the batch form of FreeBlock: one remote-stack drain,
// one u update, and one regroup for the whole group. The number of remotely
// drained blocks is returned.
func (h *Heap) FreeBlocks(e env.Env, sb *superblock.Superblock, ps []alloc.Ptr) int {
	if sb.OwnerID() != h.ID {
		panic(fmt.Sprintf("heap %d: FreeBlocks on superblock owned by heap %d", h.ID, sb.OwnerID()))
	}
	drained := sb.DrainRemote(e)
	for _, p := range ps {
		sb.FreeBlock(e, p)
	}
	h.u -= int64(drained+len(ps)) * int64(sb.BlockSize())
	h.regroup(sb)
	return drained
}

// DrainSuper drains one owned superblock's remote stack, updating u and the
// superblock's fullness group. Returns the number of blocks drained.
func (h *Heap) DrainSuper(e env.Env, sb *superblock.Superblock) int {
	n := sb.DrainRemote(e)
	if n > 0 {
		h.u -= int64(n) * int64(sb.BlockSize())
		h.regroup(sb)
	}
	return n
}

// DrainClass drains the remote stacks of every owned superblock of one size
// class. Returns the number of blocks drained.
func (h *Heap) DrainClass(e env.Env, class int) int {
	total := 0
	lists := &h.classes[class].groups
	// Draining only empties superblocks, so regroup moves them to
	// lower-indexed groups; scanning groups in ascending order never
	// visits a superblock twice.
	for g := 0; g <= fullGroup; g++ {
		for sb := lists[g].head; sb != nil; {
			next := sb.Next
			total += h.DrainSuper(e, sb)
			sb = next
		}
	}
	return total
}

// DrainAll drains every owned superblock's remote stack and resets the
// pending hint. Returns the number of blocks drained.
func (h *Heap) DrainAll(e env.Env) int {
	total := 0
	for c := range h.classes {
		total += h.DrainClass(e, c)
	}
	h.pending.Store(0)
	return total
}

// PendingBytes sums the remote-pending bytes across every owned superblock.
// Exact only at quiescence (pushers may be mid-flight otherwise).
func (h *Heap) PendingBytes() int64 {
	var total int64
	h.forEach(func(sb *superblock.Superblock) error {
		total += sb.RemotePendingBytes()
		return nil
	})
	return total
}

// FindEvictable returns a superblock that is at least f-empty, preferring
// completely empty superblocks. It returns nil if none qualifies. After a
// free that violates the emptiness invariant one qualifies in all but one
// state (the invariant implies the average superblock is more than f empty
// in byte terms): a heap of completely full superblocks of a class whose
// block size does not divide S — see AllFull.
//
// The preference matters: regrouping pushes the currently-draining
// superblock to the front of group 0, so taking the first qualifying
// candidate would routinely evict a superblock still holding up to
// (1-f) of its blocks — whose future frees then serialize on the global
// heap. A fully drained superblock is the right victim whenever one
// exists.
func (h *Heap) FindEvictable(e env.Env) *superblock.Superblock {
	// Cost discipline (see internal/env): one OpListScan per list head
	// consulted plus one per superblock visited, so long group-0 lists
	// cost what they cost instead of a flat per-class charge.
	for c := range h.classes {
		e.Charge(env.OpListScan, 1)
		for sb := h.classes[c].groups[0].head; sb != nil; sb = sb.Next {
			e.Charge(env.OpListScan, 1)
			if sb.Empty() {
				return sb
			}
		}
	}
	for g := 0; g < NumGroups; g++ {
		for c := range h.classes {
			e.Charge(env.OpListScan, 1)
			for sb := h.classes[c].groups[g].head; sb != nil; sb = sb.Next {
				e.Charge(env.OpListScan, 1)
				if sb.AtLeastEmpty(h.fEmpty) {
					return sb
				}
			}
		}
	}
	return nil
}

// TakeSuper removes and returns a superblock able to serve the given class:
// first a superblock of that class with free space (emptiest first), then a
// completely empty superblock of any class reinitialized to the class. It
// returns nil if the heap has neither. This is the global heap's side of
// Hoard's malloc slow path.
//
// Emptiest-first matters: superblocks evicted to the global heap may still
// hold live blocks belonging to other threads; handing those out first
// tangles heaps together (their eventual frees contend on whichever heap
// received the superblock). Preferring the emptiest — usually completely
// empty — superblock keeps heap ownership disjoint while still recycling
// partial superblocks once demand exhausts the empties.
func (h *Heap) TakeSuper(e env.Env, class, blockSize int) *superblock.Superblock {
	// Remote frees parked on this heap's superblocks may be exactly what
	// turns a full superblock into a usable (or empty, recyclable) one;
	// reconcile before searching if the hint says any are pending.
	if h.pending.Load() > 0 {
		h.DrainAll(e)
	}
	lists := &h.classes[class].groups
	// Completely empty same-class superblocks first (group 0 mixes empty
	// and lightly-used superblocks, so scan it for a true empty).
	for sb := lists[0].head; sb != nil; sb = sb.Next {
		e.Charge(env.OpListScan, 1)
		if sb.Empty() {
			h.Remove(sb)
			sb.Recommit(e)
			return sb
		}
	}
	for g := 0; g < NumGroups; g++ {
		e.Charge(env.OpListScan, 1)
		if sb := lists[g].head; sb != nil {
			h.Remove(sb)
			sb.Recommit(e)
			return sb
		}
	}
	// Recycle a completely empty superblock from another class. As in
	// FindEvictable, the scan charges per node visited, not per class.
	for c := range h.classes {
		e.Charge(env.OpListScan, 1)
		for sb := h.classes[c].groups[0].head; sb != nil; sb = sb.Next {
			e.Charge(env.OpListScan, 1)
			if sb.Empty() {
				h.Remove(sb)
				// Scavenged superblocks are recommitted transparently
				// on reuse — and necessarily before Reinit, whose
				// formatter describes the restored memory.
				sb.Recommit(e)
				sb.Reinit(class, blockSize)
				return sb
			}
		}
	}
	return nil
}

// EmptyCommittedBytes sums the committed bytes held by completely empty
// superblocks — the scavengable surplus the release policy watches. Already
// decommitted superblocks do not count. The caller holds the heap lock.
func (h *Heap) EmptyCommittedBytes(e env.Env) int64 {
	var total int64
	for c := range h.classes {
		e.Charge(env.OpListScan, 1)
		for sb := h.classes[c].groups[0].head; sb != nil; sb = sb.Next {
			e.Charge(env.OpListScan, 1)
			if sb.Empty() && !sb.Decommitted() {
				total += int64(h.sbSize)
			}
		}
	}
	return total
}

// ScavengeEmpties decommits completely empty, still-committed superblocks in
// place — oldest park stamp first — until at least maxBytes have been
// released or no eligible victim remains. A superblock is eligible if it is
// empty, committed, and was last parked at or before coldBefore (pass the
// current clock to disable the cold-age filter, math.MaxInt64 to scavenge
// regardless of stamps). The superblocks stay on the heap; TakeSuper
// recommits them transparently on reuse. Returns the bytes released and the
// number of superblocks decommitted. The caller holds the heap lock.
func (h *Heap) ScavengeEmpties(e env.Env, maxBytes int64, coldBefore int64) (int64, int) {
	if maxBytes <= 0 {
		return 0, 0
	}
	var victims []*superblock.Superblock
	for c := range h.classes {
		e.Charge(env.OpListScan, 1)
		for sb := h.classes[c].groups[0].head; sb != nil; sb = sb.Next {
			e.Charge(env.OpListScan, 1)
			if sb.Empty() && !sb.Decommitted() && sb.ParkedAt() <= coldBefore {
				victims = append(victims, sb)
			}
		}
	}
	// Oldest first: the longer a superblock has sat idle, the less likely
	// the next malloc burst wants it back (and the cheaper the decommit is
	// relative to its remaining lifetime). Insertion sort — victim lists
	// are short and the heap lock is held.
	for i := 1; i < len(victims); i++ {
		for j := i; j > 0 && victims[j-1].ParkedAt() > victims[j].ParkedAt(); j-- {
			victims[j-1], victims[j] = victims[j], victims[j-1]
		}
	}
	var released int64
	n := 0
	for _, sb := range victims {
		if released >= maxBytes {
			break
		}
		sb.Decommit(e)
		released += int64(h.sbSize)
		n++
	}
	return released, n
}

// AllFull reports whether every held superblock is completely full — the
// one state where a violated emptiness invariant has no remedy: size
// classes whose block size does not divide S waste the tail of each
// superblock, so a heap of full superblocks can sit below (1-f)*a in byte
// terms with nothing at all to evict (e.g. two 2960-byte blocks fill only
// 72% of an 8 KiB superblock).
func (h *Heap) AllFull() bool {
	full := true
	h.forEach(func(sb *superblock.Superblock) error {
		if !sb.Full() {
			full = false
		}
		return nil
	})
	return full
}

// ClassOccupancy is one size class's occupancy within a heap: superblock
// count, bytes in use, and the fullness-group histogram. Groups[NumGroups]
// is the completely-full group.
type ClassOccupancy struct {
	Class       int
	BlockSize   int
	Superblocks int
	InUseBytes  int64
	Groups      [NumGroups + 1]int
}

// Occupancy is a heap's occupancy at one instant — the paper's u(i)/a(i)
// plus structural detail. The caller must hold the heap lock.
type Occupancy struct {
	U, A         int64
	Superblocks  int
	PendingBytes int64
	// Decommitted counts held superblocks whose pages are currently
	// scavenged (reserved but not committed).
	Decommitted int
	Groups      [NumGroups + 1]int
	// Classes holds per-class detail for classes with at least one
	// superblock; nil when detail was not requested.
	Classes []ClassOccupancy
}

// SampleOccupancy snapshots the heap's occupancy. With detail it also breaks
// the histogram down per size class. The caller must hold the heap lock; the
// walk only reads list heads and per-superblock counters, so it is cheap
// enough to run from a sampler under load.
func (h *Heap) SampleOccupancy(detail bool) Occupancy {
	occ := Occupancy{
		U:            h.u,
		A:            h.a,
		Superblocks:  h.nSuper,
		PendingBytes: h.pending.Load(),
	}
	for c := range h.classes {
		var cls ClassOccupancy
		for g := 0; g <= fullGroup; g++ {
			for sb := h.classes[c].groups[g].head; sb != nil; sb = sb.Next {
				occ.Groups[g]++
				if sb.Decommitted() {
					occ.Decommitted++
				}
				if detail {
					cls.Groups[g]++
					cls.Superblocks++
					cls.InUseBytes += int64(sb.BytesInUse())
					if cls.BlockSize == 0 {
						cls.Class = c
						cls.BlockSize = sb.BlockSize()
					}
				}
			}
		}
		if detail && cls.Superblocks > 0 {
			occ.Classes = append(occ.Classes, cls)
		}
	}
	return occ
}

// forEach visits every superblock the heap holds, in class/group order.
func (h *Heap) forEach(fn func(sb *superblock.Superblock) error) error {
	for c := range h.classes {
		for g := 0; g <= fullGroup; g++ {
			for sb := h.classes[c].groups[g].head; sb != nil; sb = sb.Next {
				if err := fn(sb); err != nil {
					return err
				}
			}
		}
	}
	return nil
}

// CheckIntegrity validates list structure, grouping, ownership, and the u/a
// accounting against the superblocks' own counters. The heap must be
// quiescent.
func (h *Heap) CheckIntegrity() error {
	return h.checkIntegrity(false)
}

// CheckIntegrityOnline is CheckIntegrity for a heap whose lock the caller
// holds while other threads keep allocating elsewhere. All heap state is
// consistent under the lock; the only concession to concurrency is using the
// superblocks' online check, which tolerates in-flight remote-free pushes.
func (h *Heap) CheckIntegrityOnline() error {
	return h.checkIntegrity(true)
}

func (h *Heap) checkIntegrity(online bool) error {
	var u, a int64
	n := 0
	err := h.forEach(func(sb *superblock.Superblock) error {
		if sb.OwnerID() != h.ID {
			return fmt.Errorf("heap %d: holds superblock owned by %d", h.ID, sb.OwnerID())
		}
		if want := groupOf(sb); sb.Group != want {
			return fmt.Errorf("heap %d: superblock %#x in group %d, want %d (fullness %v)",
				h.ID, sb.Base(), sb.Group, want, sb.Fullness())
		}
		var serr error
		if online {
			serr = sb.CheckIntegrityOnline()
		} else {
			serr = sb.CheckIntegrity()
		}
		if serr != nil {
			return fmt.Errorf("heap %d: %w", h.ID, serr)
		}
		u += int64(sb.BytesInUse())
		a += int64(h.sbSize)
		n++
		return nil
	})
	if err != nil {
		return err
	}
	if u != h.u || a != h.a || n != h.nSuper {
		return fmt.Errorf("heap %d: accounting u=%d a=%d n=%d, superblocks say u=%d a=%d n=%d",
			h.ID, h.u, h.a, h.nSuper, u, a, n)
	}
	return nil
}
