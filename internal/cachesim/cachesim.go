// Package cachesim models cache-line coherence traffic for the simulated
// multiprocessor.
//
// The paper's false-sharing experiments measure one effect: when blocks
// residing on the same cache line are written by threads on different
// processors, the line ping-pongs between caches and every write pays a
// remote-transfer latency. This model captures exactly that with a per-line
// directory in MSI style: each 64-byte line tracks a sharer set and a last
// writer. A write by a CPU that is not the exclusive owner invalidates other
// copies and pays the remote cost if any other cache held the line; a read
// miss pays a transfer from the owning cache or memory. Cache capacity is
// modelled as infinite — capacity misses affect all allocators alike, while
// coherence misses are precisely the allocator-induced effect under study.
//
// The model is not safe for concurrent use; the discrete-event scheduler
// (internal/simproc) serializes all accesses in virtual-time order.
package cachesim

// LineShift is log2 of the modelled cache-line size (64 bytes, as on the
// paper's UltraSPARC and on all mainstream hardware since).
const LineShift = 6

// LineSize is the modelled cache-line size.
const LineSize = 1 << LineShift

// Costs parameterizes access latencies in virtual nanoseconds.
type Costs struct {
	// Hit is the latency of a hit in the local cache.
	Hit int64
	// ColdMiss is the latency of fetching a line no cache holds.
	ColdMiss int64
	// RemoteTransfer is the latency of obtaining a line another CPU's
	// cache holds (the false-sharing penalty).
	RemoteTransfer int64
}

// DefaultCosts approximates a late-1990s SMP (the paper's Sun Enterprise
// 5000): ~3ns L1 hit, ~150ns memory, ~300ns cache-to-cache transfer.
var DefaultCosts = Costs{Hit: 3, ColdMiss: 150, RemoteTransfer: 300}

// Stats counts classified accesses.
type Stats struct {
	// Hits are accesses satisfied by the local cache.
	Hits int64
	// ColdMisses are first-ever touches of a line.
	ColdMisses int64
	// RemoteTransfers are lines obtained from another CPU's cache —
	// including every false-sharing ping-pong.
	RemoteTransfers int64
	// Invalidations counts sharer copies invalidated by writes.
	Invalidations int64
}

type line struct {
	sharers uint64 // bit per CPU with a valid copy
	owner   int8   // CPU with the only dirty copy, -1 if clean
}

// Model is the coherence simulator.
type Model struct {
	costs Costs
	lines map[uint64]*line
	stats Stats
}

// New creates a model with the given costs.
func New(costs Costs) *Model {
	return &Model{costs: costs, lines: make(map[uint64]*line)}
}

// Access simulates cpu touching n bytes at addr (write or read) and returns
// the modelled latency. Multi-line accesses pay per line. cpu must be in
// [0, 64).
func (m *Model) Access(cpu int, addr uint64, n int, write bool) int64 {
	if n <= 0 {
		return 0
	}
	var total int64
	first := addr >> LineShift
	last := (addr + uint64(n) - 1) >> LineShift
	for la := first; la <= last; la++ {
		total += m.accessLine(cpu, la, write)
	}
	return total
}

func (m *Model) accessLine(cpu int, la uint64, write bool) int64 {
	bit := uint64(1) << uint(cpu)
	l, ok := m.lines[la]
	if !ok {
		l = &line{owner: -1}
		m.lines[la] = l
	}
	switch {
	case write:
		switch {
		case l.owner == int8(cpu) && l.sharers == bit:
			// Exclusive dirty in our cache.
			m.stats.Hits++
			return m.costs.Hit
		case l.sharers == 0:
			// Nobody holds it: cold (or evicted-clean) miss.
			m.stats.ColdMisses++
			l.sharers, l.owner = bit, int8(cpu)
			return m.costs.ColdMiss
		default:
			// Some other cache holds a copy: invalidate them all.
			others := l.sharers &^ bit
			if others != 0 {
				m.stats.Invalidations += int64(popcount(others))
				m.stats.RemoteTransfers++
				l.sharers, l.owner = bit, int8(cpu)
				return m.costs.RemoteTransfer
			}
			// Only we hold it, but shared-clean: cheap upgrade.
			m.stats.Hits++
			l.owner = int8(cpu)
			return m.costs.Hit
		}
	default: // read
		switch {
		case l.sharers&bit != 0:
			m.stats.Hits++
			return m.costs.Hit
		case l.sharers == 0:
			m.stats.ColdMisses++
			l.sharers, l.owner = bit, -1
			return m.costs.ColdMiss
		default:
			// Another cache supplies the line; it becomes shared.
			m.stats.RemoteTransfers++
			l.sharers |= bit
			l.owner = -1
			return m.costs.RemoteTransfer
		}
	}
}

func popcount(x uint64) int {
	n := 0
	for x != 0 {
		x &= x - 1
		n++
	}
	return n
}

// Stats returns the access counters.
func (m *Model) Stats() Stats { return m.stats }

// Lines returns the number of distinct lines ever touched.
func (m *Model) Lines() int { return len(m.lines) }
