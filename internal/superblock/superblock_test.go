package superblock

import (
	"math/rand"
	"sync"
	"testing"
	"testing/quick"

	"hoardgo/internal/alloc"
	"hoardgo/internal/env"
	"hoardgo/internal/vm"
	"hoardgo/internal/vm/vmtest"
)

var e = &env.RealEnv{}

func newSB(t testing.TB, blockSize int) (vm.Backend, *Superblock) {
	t.Helper()
	space := vmtest.NewSized(t, DefaultSize)
	return space, New(space, DefaultSize, 3, blockSize)
}

func TestCarveAll(t *testing.T) {
	_, sb := newSB(t, 64)
	if sb.NBlocks() != DefaultSize/64 {
		t.Fatalf("NBlocks = %d, want %d", sb.NBlocks(), DefaultSize/64)
	}
	seen := make(map[alloc.Ptr]bool)
	for i := 0; i < sb.NBlocks(); i++ {
		p, ok := sb.AllocBlock(e)
		if !ok {
			t.Fatalf("AllocBlock %d failed", i)
		}
		if seen[p] {
			t.Fatalf("duplicate block %#x", uint64(p))
		}
		if uint64(p)%8 != 0 {
			t.Fatalf("block %#x not 8-aligned", uint64(p))
		}
		seen[p] = true
	}
	if !sb.Full() {
		t.Fatal("not Full after carving all")
	}
	if _, ok := sb.AllocBlock(e); ok {
		t.Fatal("AllocBlock succeeded on full superblock")
	}
	if err := sb.CheckIntegrity(); err != nil {
		t.Fatal(err)
	}
}

func TestFreeAndReuseLIFO(t *testing.T) {
	_, sb := newSB(t, 128)
	a, _ := sb.AllocBlock(e)
	b, _ := sb.AllocBlock(e)
	sb.FreeBlock(e, a)
	sb.FreeBlock(e, b)
	// LIFO: most recently freed comes back first.
	p, _ := sb.AllocBlock(e)
	if p != b {
		t.Fatalf("got %#x, want LIFO %#x", uint64(p), uint64(b))
	}
	p, _ = sb.AllocBlock(e)
	if p != a {
		t.Fatalf("got %#x, want %#x", uint64(p), uint64(a))
	}
	if err := sb.CheckIntegrity(); err != nil {
		t.Fatal(err)
	}
}

func TestDoubleFreePanics(t *testing.T) {
	_, sb := newSB(t, 64)
	p, _ := sb.AllocBlock(e)
	sb.FreeBlock(e, p)
	defer func() {
		if recover() == nil {
			t.Fatal("double free did not panic")
		}
	}()
	sb.FreeBlock(e, p)
}

func TestBadPointerPanics(t *testing.T) {
	_, sb := newSB(t, 64)
	p, _ := sb.AllocBlock(e)
	for _, bad := range []alloc.Ptr{p + 1, p + 8, alloc.Ptr(uint64(p) + uint64(DefaultSize))} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("FreeBlock(%#x) did not panic", uint64(bad))
				}
			}()
			sb.FreeBlock(e, bad)
		}()
	}
}

func TestFullnessAndEmptiness(t *testing.T) {
	_, sb := newSB(t, DefaultSize/8) // 8 blocks
	var ps []alloc.Ptr
	for i := 0; i < 6; i++ {
		p, _ := sb.AllocBlock(e)
		ps = append(ps, p)
	}
	if got := sb.Fullness(); got != 0.75 {
		t.Fatalf("Fullness = %v, want 0.75", got)
	}
	if !sb.AtLeastEmpty(0.25) {
		t.Fatal("6/8 full should be at least 1/4 empty")
	}
	p, _ := sb.AllocBlock(e)
	ps = append(ps, p)
	if sb.AtLeastEmpty(0.25) {
		t.Fatal("7/8 full should NOT be at least 1/4 empty")
	}
	for _, p := range ps {
		sb.FreeBlock(e, p)
	}
	if !sb.Empty() {
		t.Fatal("not Empty after freeing all")
	}
}

func TestReinitAcrossClasses(t *testing.T) {
	space, sb := newSB(t, 64)
	p, _ := sb.AllocBlock(e)
	sb.FreeBlock(e, p)
	sb.Reinit(7, 512)
	if sb.BlockSize() != 512 || sb.Class() != 7 || !sb.Empty() {
		t.Fatalf("Reinit state: class=%d bs=%d inUse=%d", sb.Class(), sb.BlockSize(), sb.InUse())
	}
	n := 0
	for {
		if _, ok := sb.AllocBlock(e); !ok {
			break
		}
		n++
	}
	if n != DefaultSize/512 {
		t.Fatalf("carved %d blocks after Reinit, want %d", n, DefaultSize/512)
	}
	if got, ok := FromPtr(space, alloc.Ptr(sb.Base())); !ok || got != sb {
		t.Fatal("FromPtr after Reinit failed")
	}
}

func TestReinitNonEmptyPanics(t *testing.T) {
	_, sb := newSB(t, 64)
	sb.AllocBlock(e)
	defer func() {
		if recover() == nil {
			t.Fatal("Reinit of non-empty superblock did not panic")
		}
	}()
	sb.Reinit(1, 128)
}

func TestReleaseInvalidatesFromPtr(t *testing.T) {
	space, sb := newSB(t, 64)
	base := alloc.Ptr(sb.Base())
	sb.Release(space)
	if _, ok := FromPtr(space, base); ok {
		t.Fatal("FromPtr found released superblock")
	}
}

func TestFromPtrForeign(t *testing.T) {
	space := vmtest.NewSized(t, DefaultSize)
	sp := space.Reserve(4096, 0, "not a superblock")
	if _, ok := FromPtr(space, alloc.Ptr(sp.Base)); ok {
		t.Fatal("FromPtr treated foreign span as superblock")
	}
	if _, ok := FromPtr(space, 0); ok {
		t.Fatal("FromPtr(0) ok")
	}
}

func TestOwnership(t *testing.T) {
	_, sb := newSB(t, 64)
	if sb.OwnerID() != 0 {
		t.Fatalf("initial owner %d, want 0", sb.OwnerID())
	}
	sb.SetOwnerID(5)
	if sb.OwnerID() != 5 {
		t.Fatalf("owner %d, want 5", sb.OwnerID())
	}
}

// TestPropertyRandomAllocFree drives random alloc/free sequences against a
// shadow model and checks block uniqueness, counts, and integrity.
func TestPropertyRandomAllocFree(t *testing.T) {
	f := func(seed int64, bsSel uint8) bool {
		sizes := []int{8, 16, 64, 256, 1024, 4096}
		bs := sizes[int(bsSel)%len(sizes)]
		rng := rand.New(rand.NewSource(seed))
		_, sb := newSB(t, bs)
		live := make(map[alloc.Ptr]bool)
		for op := 0; op < 500; op++ {
			if len(live) == 0 || (rng.Intn(2) == 0 && !sb.Full()) {
				p, ok := sb.AllocBlock(e)
				if !ok {
					continue
				}
				if live[p] {
					return false // double hand-out
				}
				live[p] = true
			} else {
				for p := range live {
					sb.FreeBlock(e, p)
					delete(live, p)
					break
				}
			}
			if sb.InUse() != len(live) {
				return false
			}
		}
		return sb.CheckIntegrity() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// TestDataIntegrity writes a distinct pattern into every allocated block and
// verifies no block's data is disturbed by other allocations or frees.
func TestDataIntegrity(t *testing.T) {
	space, sb := newSB(t, 64)
	type rec struct {
		p   alloc.Ptr
		tag byte
	}
	var live []rec
	rng := rand.New(rand.NewSource(1))
	for op := 0; op < 2000; op++ {
		if len(live) == 0 || rng.Intn(2) == 0 {
			if p, ok := sb.AllocBlock(e); ok {
				tag := byte(op)
				buf := space.Bytes(uint64(p), 64)
				for i := range buf {
					buf[i] = tag
				}
				live = append(live, rec{p, tag})
			}
		} else {
			i := rng.Intn(len(live))
			buf := space.Bytes(uint64(live[i].p), 64)
			for j, b := range buf {
				if b != live[i].tag {
					t.Fatalf("block %#x byte %d corrupted: %d != %d", uint64(live[i].p), j, b, live[i].tag)
				}
			}
			sb.FreeBlock(e, live[i].p)
			live[i] = live[len(live)-1]
			live = live[:len(live)-1]
		}
	}
}

func BenchmarkAllocFreePair(b *testing.B) {
	_, sb := newSB(b, 64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p, _ := sb.AllocBlock(e)
		sb.FreeBlock(e, p)
	}
}

// --- Remote-free stack ---

func TestRemoteFreePushDrainRoundTrip(t *testing.T) {
	_, sb := newSB(t, 128)
	var ps []alloc.Ptr
	for i := 0; i < 10; i++ {
		p, _ := sb.AllocBlock(e)
		ps = append(ps, p)
	}
	for i, p := range ps {
		if got := sb.RemoteFree(e, p); got != i+1 {
			t.Fatalf("RemoteFree #%d returned pending %d", i, got)
		}
	}
	// Pending blocks still count as in use until the drain.
	if sb.InUse() != 10 {
		t.Fatalf("InUse = %d before drain, want 10", sb.InUse())
	}
	if sb.RemotePending() != 10 {
		t.Fatalf("RemotePending = %d, want 10", sb.RemotePending())
	}
	if err := sb.CheckIntegrity(); err != nil {
		t.Fatalf("integrity with pending remote frees: %v", err)
	}
	if n := sb.DrainRemote(e); n != 10 {
		t.Fatalf("DrainRemote = %d, want 10", n)
	}
	if sb.InUse() != 0 || sb.RemotePending() != 0 {
		t.Fatalf("after drain: InUse=%d pending=%d", sb.InUse(), sb.RemotePending())
	}
	if err := sb.CheckIntegrity(); err != nil {
		t.Fatal(err)
	}
	// The drained chain is spliced onto the local list: every block is
	// reallocatable, LIFO from the last push.
	p, ok := sb.AllocBlock(e)
	if !ok || p != ps[9] {
		t.Fatalf("realloc after drain got %#x, want %#x", uint64(p), uint64(ps[9]))
	}
}

func TestRemoteDrainEmptyIsCheap(t *testing.T) {
	_, sb := newSB(t, 64)
	if n := sb.DrainRemote(e); n != 0 {
		t.Fatalf("DrainRemote on empty stack = %d", n)
	}
}

func TestRemoteDrainSplicePreservesLocalList(t *testing.T) {
	_, sb := newSB(t, 256)
	a, _ := sb.AllocBlock(e)
	b, _ := sb.AllocBlock(e)
	c, _ := sb.AllocBlock(e)
	sb.FreeBlock(e, a) // local list: a
	sb.RemoteFree(e, b)
	sb.RemoteFree(e, c) // remote stack: c -> b
	sb.DrainRemote(e)   // list must become c, b, a
	want := []alloc.Ptr{c, b, a}
	for i, w := range want {
		p, ok := sb.AllocBlock(e)
		if !ok || p != w {
			t.Fatalf("alloc %d after splice got %#x, want %#x", i, uint64(p), uint64(w))
		}
	}
	if err := sb.CheckIntegrity(); err != nil {
		t.Fatal(err)
	}
}

func TestRemoteDrainThreshold(t *testing.T) {
	_, big := newSB(t, 2048) // 4 blocks -> floor of 8
	if got := big.RemoteDrainThreshold(); got != 8 {
		t.Fatalf("threshold for 4 blocks = %d, want 8", got)
	}
	_, small := newSB(t, 64) // 128 blocks -> half
	if got := small.RemoteDrainThreshold(); got != 64 {
		t.Fatalf("threshold for 128 blocks = %d, want 64", got)
	}
}

func TestRemoteDoubleFreePanicsAtDrain(t *testing.T) {
	_, sb := newSB(t, 128)
	p, _ := sb.AllocBlock(e)
	sb.RemoteFree(e, p)
	sb.RemoteFree(e, p) // undetectable at push time
	defer func() {
		if recover() == nil {
			t.Fatal("DrainRemote did not panic on double remote free")
		}
	}()
	sb.DrainRemote(e)
}

func TestReleaseWithRemotePendingPanics(t *testing.T) {
	space, sb := newSB(t, 128)
	p, _ := sb.AllocBlock(e)
	sb.FreeBlock(e, p) // inUse back to 0...
	q, _ := sb.AllocBlock(e)
	sb.FreeBlock(e, q)
	// ...but fake a pending push from a stale pointer (application bug).
	sb.RemoteFree(e, q)
	defer func() {
		if recover() == nil {
			t.Fatal("Release with pending remote frees did not panic")
		}
	}()
	sb.Release(space)
}

// TestRemoteFreeConcurrentPushersAndDrainer exercises the Treiber stack
// under real concurrency (run with -race): several pushers free disjoint
// blocks while a drainer repeatedly pops the whole stack.
func TestRemoteFreeConcurrentPushersAndDrainer(t *testing.T) {
	_, sb := newSB(t, 64)
	n := sb.NBlocks()
	ps := make([]alloc.Ptr, n)
	for i := range ps {
		ps[i], _ = sb.AllocBlock(e)
	}
	const pushers = 4
	var wg sync.WaitGroup
	for w := 0; w < pushers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			we := &env.RealEnv{ID: w + 1}
			for i := w; i < n; i += pushers {
				sb.RemoteFree(we, ps[i])
			}
		}(w)
	}
	done := make(chan struct{})
	drained := 0
	go func() {
		defer close(done)
		de := &env.RealEnv{ID: 99}
		for drained < n {
			// Drains race with pushes; the drainer owns the blocks'
			// bookkeeping, which is single-threaded here.
			drained += sb.DrainRemote(de)
		}
	}()
	wg.Wait()
	<-done
	if drained != n || sb.InUse() != 0 {
		t.Fatalf("drained %d of %d, InUse=%d", drained, n, sb.InUse())
	}
	if err := sb.CheckIntegrity(); err != nil {
		t.Fatal(err)
	}
}
