// Barnes-Hut n-body simulation on the public allocator API — the paper's
// application benchmark as a standalone program. Every quadtree node lives
// in allocator memory (allocated, read, and freed through hoard.Thread);
// the tree is rebuilt each timestep by parallel workers, which is exactly
// the churn pattern that rewards a scalable allocator.
package main

import (
	"encoding/binary"
	"flag"
	"fmt"
	"math"
	"math/rand"
	"sync"
	"time"

	hoard "hoardgo"
)

// Quadtree node layout in allocator memory (little-endian):
//
//	[0,32)   4 child pointers
//	[32,40)  mass        [40,56)  center of mass x,y
//	[56,72)  cell center x,y      [72,80)  half width
//	[80,88)  body index (-1 internal/empty)
//	[88,96)  subtree count
const nodeSize = 96

type world struct {
	t          *hoard.Thread
	pos, vel   [][2]float64
	mass       []float64
	nodeAllocs int
}

func (w *world) f64(b []byte, off int) float64 {
	return math.Float64frombits(binary.LittleEndian.Uint64(b[off:]))
}

func (w *world) putF64(b []byte, off int, v float64) {
	binary.LittleEndian.PutUint64(b[off:], math.Float64bits(v))
}

func (w *world) newNode(cx, cy, half float64) hoard.Ptr {
	p := w.t.Calloc(nodeSize)
	w.nodeAllocs++
	b := w.t.Bytes(p, nodeSize)
	w.putF64(b, 56, cx)
	w.putF64(b, 64, cy)
	w.putF64(b, 72, half)
	binary.LittleEndian.PutUint64(b[80:], ^uint64(0)) // body = -1
	return p
}

func (w *world) insert(root hoard.Ptr, bi int) {
	p := root
	for depth := 0; ; depth++ {
		b := w.t.Bytes(p, nodeSize)
		count := int64(binary.LittleEndian.Uint64(b[88:]))
		if count == 0 {
			binary.LittleEndian.PutUint64(b[80:], uint64(bi))
			binary.LittleEndian.PutUint64(b[88:], 1)
			return
		}
		if count == 1 {
			if w.f64(b, 72) < 1e-9 || depth > 48 {
				binary.LittleEndian.PutUint64(b[88:], uint64(count+1))
				return
			}
			old := int(int64(binary.LittleEndian.Uint64(b[80:])))
			binary.LittleEndian.PutUint64(b[80:], ^uint64(0))
			co := w.child(p, w.pos[old])
			cb := w.t.Bytes(co, nodeSize)
			binary.LittleEndian.PutUint64(cb[80:], uint64(old))
			binary.LittleEndian.PutUint64(cb[88:], 1)
			b = w.t.Bytes(p, nodeSize)
		}
		count = int64(binary.LittleEndian.Uint64(b[88:]))
		binary.LittleEndian.PutUint64(b[88:], uint64(count+1))
		p = w.child(p, w.pos[bi])
	}
}

// child returns (creating if necessary) the quadrant child containing at.
func (w *world) child(p hoard.Ptr, at [2]float64) hoard.Ptr {
	b := w.t.Bytes(p, nodeSize)
	cx, cy, half := w.f64(b, 56), w.f64(b, 64), w.f64(b, 72)
	q, nx, ny := 0, cx-half/2, cy-half/2
	if at[0] >= cx {
		q |= 1
		nx = cx + half/2
	}
	if at[1] >= cy {
		q |= 2
		ny = cy + half/2
	}
	c := hoard.Ptr(binary.LittleEndian.Uint64(b[8*q:]))
	if c.IsNil() {
		c = w.newNode(nx, ny, half/2)
		b = w.t.Bytes(p, nodeSize)
		binary.LittleEndian.PutUint64(b[8*q:], uint64(c))
	}
	return c
}

// summarize fills mass and center-of-mass bottom-up.
func (w *world) summarize(p hoard.Ptr) (m, x, y float64) {
	b := w.t.Bytes(p, nodeSize)
	if bi := int64(binary.LittleEndian.Uint64(b[80:])); bi >= 0 {
		n := float64(binary.LittleEndian.Uint64(b[88:]))
		m = w.mass[bi] * n
		x, y = w.pos[bi][0], w.pos[bi][1]
	} else {
		var sx, sy float64
		for q := 0; q < 4; q++ {
			if c := hoard.Ptr(binary.LittleEndian.Uint64(b[8*q:])); !c.IsNil() {
				cm, cx, cy := w.summarize(c)
				m += cm
				sx += cm * cx
				sy += cm * cy
			}
		}
		if m > 0 {
			x, y = sx/m, sy/m
		}
	}
	w.putF64(b, 32, m)
	w.putF64(b, 40, x)
	w.putF64(b, 48, y)
	return m, x, y
}

func (w *world) force(p hoard.Ptr, bi int, theta float64, ax, ay *float64) {
	b := w.t.Bytes(p, nodeSize)
	if binary.LittleEndian.Uint64(b[88:]) == 0 {
		return
	}
	leaf := int64(binary.LittleEndian.Uint64(b[80:]))
	if leaf == int64(bi) {
		return
	}
	m, x, y := w.f64(b, 32), w.f64(b, 40), w.f64(b, 48)
	dx, dy := x-w.pos[bi][0], y-w.pos[bi][1]
	d2 := dx*dx + dy*dy
	half := w.f64(b, 72)
	if leaf >= 0 || (2*half)*(2*half) < theta*theta*d2 {
		d2 += 1e-6
		inv := 1 / (d2 * math.Sqrt(d2))
		*ax += m * dx * inv
		*ay += m * dy * inv
		return
	}
	for q := 0; q < 4; q++ {
		if c := hoard.Ptr(binary.LittleEndian.Uint64(b[8*q:])); !c.IsNil() {
			w.force(c, bi, theta, ax, ay)
		}
	}
}

func (w *world) freeTree(p hoard.Ptr) {
	b := w.t.Bytes(p, nodeSize)
	for q := 0; q < 4; q++ {
		if c := hoard.Ptr(binary.LittleEndian.Uint64(b[8*q:])); !c.IsNil() {
			w.freeTree(c)
		}
	}
	w.t.Free(p)
}

func main() {
	bodies := flag.Int("bodies", 4000, "body count")
	steps := flag.Int("steps", 4, "timesteps")
	workers := flag.Int("workers", 4, "worker goroutines")
	theta := flag.Float64("theta", 0.5, "opening angle")
	flag.Parse()

	a := hoard.MustNew(hoard.Config{Procs: *workers})
	n := *bodies
	pos := make([][2]float64, n)
	vel := make([][2]float64, n)
	mass := make([]float64, n)
	rng := rand.New(rand.NewSource(7))
	for i := range pos {
		pos[i] = [2]float64{rng.Float64()*2 - 1, rng.Float64()*2 - 1}
		mass[i] = 0.5 + rng.Float64()
	}

	start := time.Now()
	totalNodes := 0
	for step := 0; step < *steps; step++ {
		// Parallel build: each worker owns a slice of bodies and its
		// own partial tree; forces superpose across partial trees.
		roots := make([]hoard.Ptr, *workers)
		worlds := make([]*world, *workers)
		var wg sync.WaitGroup
		for wi := 0; wi < *workers; wi++ {
			wg.Add(1)
			go func(wi int) {
				defer wg.Done()
				w := &world{t: a.NewThread(), pos: pos, vel: vel, mass: mass}
				worlds[wi] = w
				root := w.newNode(0, 0, 4)
				for bi := wi * n / *workers; bi < (wi+1)*n / *workers; bi++ {
					w.insert(root, bi)
				}
				w.summarize(root)
				roots[wi] = root
			}(wi)
		}
		wg.Wait()

		acc := make([][2]float64, n)
		for wi := 0; wi < *workers; wi++ {
			wg.Add(1)
			go func(wi int) {
				defer wg.Done()
				w := worlds[wi]
				for bi := wi * n / *workers; bi < (wi+1)*n / *workers; bi++ {
					var ax, ay float64
					for _, r := range roots {
						w.force(r, bi, *theta, &ax, &ay)
					}
					acc[bi] = [2]float64{ax, ay}
				}
			}(wi)
		}
		wg.Wait()

		const dt = 1e-3
		for i := range pos {
			vel[i][0] += acc[i][0] * dt
			vel[i][1] += acc[i][1] * dt
			pos[i][0] += vel[i][0] * dt
			pos[i][1] += vel[i][1] * dt
		}
		for wi, w := range worlds {
			w.freeTree(roots[wi])
			totalNodes += w.nodeAllocs
		}
	}
	elapsed := time.Since(start)

	var cx, cy, ke float64
	for i := range pos {
		cx += pos[i][0]
		cy += pos[i][1]
		ke += 0.5 * mass[i] * (vel[i][0]*vel[i][0] + vel[i][1]*vel[i][1])
	}
	st := a.Stats()
	fmt.Printf("simulated %d bodies x %d steps with %d workers in %v\n",
		n, *steps, *workers, elapsed.Round(time.Millisecond))
	fmt.Printf("centroid (%.4f, %.4f), kinetic energy %.6f\n", cx/float64(n), cy/float64(n), ke)
	fmt.Printf("tree nodes allocated %d (freed every step); allocator: %d mallocs, %d frees, %d B live\n",
		totalNodes, st.Mallocs, st.Frees, st.LiveBytes)
	if st.LiveBytes != 0 {
		panic("leak: tree nodes outlived their step")
	}
	if err := a.CheckIntegrity(); err != nil {
		panic(err)
	}
	fmt.Println("integrity check passed")
}
