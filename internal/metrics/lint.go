package metrics

import (
	"fmt"
	"regexp"
	"strconv"
	"strings"
)

// This file is a minimal linter for the Prometheus text exposition format
// (version 0.0.4) — enough structure checking that a scrape of WriteMetrics
// output would be accepted by a real Prometheus server: valid metric and
// label names, parseable values, HELP/TYPE headers preceding each family's
// samples, and no family interleaving. The metrics-smoke CI target runs it
// over hoardbench's -metrics artifact.

var (
	metricNameRE = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*$`)
	labelNameRE  = regexp.MustCompile(`^[a-zA-Z_][a-zA-Z0-9_]*$`)
	sampleRE     = regexp.MustCompile(`^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{([^}]*)\})?\s+(\S+)(\s+\d+)?$`)
	labelPairRE  = regexp.MustCompile(`^([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\.)*)"$`)
)

// LintPrometheus validates text as Prometheus exposition format and returns
// the first problem found, or nil. It also rejects output with zero samples
// (an "empty but parseable" export is a wiring bug, not a healthy scrape).
func LintPrometheus(text string) error {
	typed := map[string]string{} // metric family -> declared type
	closed := map[string]bool{}  // families whose sample run has ended
	samples := 0
	var current string // family whose samples we are inside

	for i, line := range strings.Split(text, "\n") {
		lineNo := i + 1
		if strings.TrimSpace(line) == "" {
			continue
		}
		if strings.HasPrefix(line, "# HELP ") || strings.HasPrefix(line, "# TYPE ") {
			fields := strings.SplitN(line, " ", 4)
			if len(fields) < 4 || fields[3] == "" {
				return fmt.Errorf("line %d: malformed %s line: %q", lineNo, fields[1], line)
			}
			name := fields[2]
			if !metricNameRE.MatchString(name) {
				return fmt.Errorf("line %d: bad metric name %q", lineNo, name)
			}
			if fields[1] == "TYPE" {
				kind := strings.TrimSpace(fields[3])
				if kind != "counter" && kind != "gauge" && kind != "histogram" && kind != "summary" && kind != "untyped" {
					return fmt.Errorf("line %d: bad metric type %q", lineNo, kind)
				}
				if _, dup := typed[name]; dup {
					return fmt.Errorf("line %d: duplicate TYPE for %q", lineNo, name)
				}
				typed[name] = kind
			}
			continue
		}
		if strings.HasPrefix(line, "#") {
			continue // free-form comment
		}
		m := sampleRE.FindStringSubmatch(line)
		if m == nil {
			return fmt.Errorf("line %d: malformed sample line: %q", lineNo, line)
		}
		name, labels, value := m[1], m[3], m[4]
		family := familyOf(name)
		if _, ok := typed[family]; !ok {
			return fmt.Errorf("line %d: sample for %q before its TYPE header", lineNo, name)
		}
		if family != current {
			if closed[family] {
				return fmt.Errorf("line %d: samples for %q interleaved with another family", lineNo, family)
			}
			if current != "" {
				closed[current] = true
			}
			current = family
		}
		if labels != "" {
			for _, pair := range splitLabels(labels) {
				lm := labelPairRE.FindStringSubmatch(pair)
				if lm == nil {
					return fmt.Errorf("line %d: malformed label pair %q", lineNo, pair)
				}
				if !labelNameRE.MatchString(lm[1]) {
					return fmt.Errorf("line %d: bad label name %q", lineNo, lm[1])
				}
			}
		}
		if _, err := strconv.ParseFloat(value, 64); err != nil {
			if value != "+Inf" && value != "-Inf" && value != "NaN" {
				return fmt.Errorf("line %d: bad sample value %q", lineNo, value)
			}
		}
		samples++
	}
	if samples == 0 {
		return fmt.Errorf("no samples in exposition output")
	}
	return nil
}

// familyOf strips histogram/summary sample suffixes so _bucket/_sum/_count
// samples attach to their declared family.
func familyOf(name string) string {
	for _, suffix := range []string{"_bucket", "_sum", "_count"} {
		base := strings.TrimSuffix(name, suffix)
		if base != name {
			return base
		}
	}
	return name
}

// splitLabels splits a label body on commas outside quoted values.
func splitLabels(body string) []string {
	var out []string
	var cur strings.Builder
	inQuote, escaped := false, false
	for _, r := range body {
		switch {
		case escaped:
			escaped = false
			cur.WriteRune(r)
		case r == '\\' && inQuote:
			escaped = true
			cur.WriteRune(r)
		case r == '"':
			inQuote = !inQuote
			cur.WriteRune(r)
		case r == ',' && !inQuote:
			out = append(out, cur.String())
			cur.Reset()
		default:
			cur.WriteRune(r)
		}
	}
	if cur.Len() > 0 {
		out = append(out, cur.String())
	}
	return out
}
