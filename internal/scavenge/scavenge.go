// Package scavenge is the release-policy engine behind Hoard's background
// scavenger (modeled on the Go runtime's): it decides WHEN empty superblocks
// parked on the global heap should have their pages returned to the OS and
// HOW FAST, while internal/core owns the mechanism (decommit in place,
// transparent recommit on reuse — see core/scavenge.go).
//
// Three policy pieces compose:
//
//   - Hysteresis thresholds on the global heap's empty committed bytes: the
//     scavenger engages above the high watermark and disengages at the low
//     one, so a workload oscillating around a single threshold does not make
//     it thrash (decommit and recommit both cost an OS call).
//   - A token bucket limits the release rate, like the Go background
//     scavenger's pacing: a sudden free burst is returned over several
//     paced passes rather than one long critical section on the global lock.
//   - A cold age filters victims: only superblocks parked at least ColdAge
//     ago are eligible, since a just-parked superblock is the one most
//     likely to be pulled right back by TakeSuper. Victim order (oldest
//     first) is the mechanism's job.
//
// The Pacer is the deterministic core — pure state machine, virtual-time
// friendly, used directly by the simulator experiments. Scavenger wraps a
// Pacer in a background goroutine for real-mode allocators, with TryLock
// backoff so it never queues behind allocation traffic.
package scavenge

import (
	"fmt"
	"time"
)

// Config parameterizes the release policy. The zero value selects defaults
// sized for the 8 KiB superblocks the paper uses.
type Config struct {
	// HighWaterBytes engages the scavenger when the global heap's empty
	// committed bytes exceed it. Default 32 superblocks (256 KiB).
	HighWaterBytes int64
	// LowWaterBytes disengages the scavenger once empty committed bytes
	// are at or below it; releases stop there, not at zero, so a small
	// warm reserve survives for the next malloc burst. Default half the
	// high watermark.
	LowWaterBytes int64
	// ColdAge is the minimum time a superblock must sit parked before it
	// is eligible. Default 100ms.
	ColdAge time.Duration
	// Interval is the background scavenger's poll period. Default 25ms.
	Interval time.Duration
	// BytesPerSec refills the token bucket: the sustained release rate.
	// Default 64 MiB/s.
	BytesPerSec int64
	// BurstBytes caps the token bucket: the largest single-pass release.
	// Default 32 superblocks (256 KiB).
	BurstBytes int64
	// MaxBackoff caps the exponential backoff applied when the global
	// heap is contended. Default 1s.
	MaxBackoff time.Duration
}

// WithDefaults fills zero fields with the documented defaults.
func (c Config) WithDefaults() Config {
	if c.HighWaterBytes == 0 {
		c.HighWaterBytes = 32 * 8192
	}
	if c.LowWaterBytes == 0 {
		c.LowWaterBytes = c.HighWaterBytes / 2
	}
	if c.ColdAge == 0 {
		c.ColdAge = 100 * time.Millisecond
	}
	if c.Interval == 0 {
		c.Interval = 25 * time.Millisecond
	}
	if c.BytesPerSec == 0 {
		c.BytesPerSec = 64 << 20
	}
	if c.BurstBytes == 0 {
		c.BurstBytes = 32 * 8192
	}
	if c.MaxBackoff == 0 {
		c.MaxBackoff = time.Second
	}
	return c
}

// Validate rejects configurations the policy cannot run.
func (c Config) Validate() error {
	c = c.WithDefaults()
	if c.HighWaterBytes < 0 || c.LowWaterBytes < 0 {
		return fmt.Errorf("scavenge: negative watermark (high %d, low %d)", c.HighWaterBytes, c.LowWaterBytes)
	}
	if c.LowWaterBytes > c.HighWaterBytes {
		return fmt.Errorf("scavenge: low watermark %d above high %d", c.LowWaterBytes, c.HighWaterBytes)
	}
	if c.BytesPerSec < 0 || c.BurstBytes <= 0 {
		return fmt.Errorf("scavenge: bad rate (%d B/s, burst %d)", c.BytesPerSec, c.BurstBytes)
	}
	if c.ColdAge < 0 || c.Interval <= 0 || c.MaxBackoff <= 0 {
		return fmt.Errorf("scavenge: bad timing (cold age %v, interval %v, max backoff %v)", c.ColdAge, c.Interval, c.MaxBackoff)
	}
	return nil
}

// Pacer is the deterministic policy state machine: hysteresis plus token
// bucket. It is driven by explicit clock readings, so the simulator
// experiments can run it in virtual time; it is NOT safe for concurrent use
// (the Scavenger goroutine owns its Pacer, experiments own theirs).
type Pacer struct {
	cfg     Config
	engaged bool
	tokens  int64
	lastNS  int64
	started bool
	// refillRem carries the refill remainder between polls, in
	// byte-nanosecond units (elapsed ns x BytesPerSec, modulo 1e9). A
	// wall-clock driver polling faster than one byte's worth of refill
	// time would otherwise lose every refill to truncation.
	refillRem int64
}

// NewPacer returns a Pacer over the (default-filled) config. It panics on an
// invalid config, like core.New.
func NewPacer(cfg Config) *Pacer {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	return &Pacer{cfg: cfg.WithDefaults()}
}

// Config returns the default-filled configuration the pacer runs.
func (p *Pacer) Config() Config { return p.cfg }

// Grant decides how many bytes a scavenge pass may release right now, given
// the global heap's empty committed bytes and the current clock. It refills
// the token bucket for the elapsed time, applies the hysteresis gate, and
// returns min(tokens, emptyBytes - LowWaterBytes) — zero when disengaged or
// out of tokens. The caller reports what it actually released via Spend.
func (p *Pacer) Grant(emptyBytes, nowNS int64) int64 {
	if !p.started {
		p.started = true
		p.lastNS = nowNS
		p.tokens = p.cfg.BurstBytes
	}
	if dt := nowNS - p.lastNS; dt > 0 {
		p.lastNS = nowNS
		// Refill in integer math, carrying the sub-byte remainder across
		// polls. The obvious float form — tokens += dt/1e9 * rate — rounds
		// to zero whenever a poll arrives faster than one byte's refill
		// time, yet still advances the clock; a real-clock scavenger with
		// a short interval and a low configured rate then never refills
		// and the slow drain stalls with the bucket pinned at zero. The
		// simulator's virtual round clock takes steps big enough that the
		// truncation never showed.
		rate := p.cfg.BytesPerSec
		if f := float64(dt)*float64(rate) + float64(p.refillRem); f >= float64(p.cfg.BurstBytes)*1e9+1e9 || f >= 1<<62 {
			// The elapsed time alone fills the bucket (or the exact
			// product would overflow): jump straight to full.
			p.tokens = p.cfg.BurstBytes
			p.refillRem = 0
		} else {
			total := dt*rate + p.refillRem
			p.tokens += total / 1e9
			p.refillRem = total % 1e9
			if p.tokens > p.cfg.BurstBytes {
				p.tokens = p.cfg.BurstBytes
				p.refillRem = 0
			}
		}
	}
	if p.engaged {
		if emptyBytes <= p.cfg.LowWaterBytes {
			p.engaged = false
		}
	} else if emptyBytes > p.cfg.HighWaterBytes {
		p.engaged = true
	}
	if !p.engaged {
		return 0
	}
	grant := emptyBytes - p.cfg.LowWaterBytes
	if grant > p.tokens {
		grant = p.tokens
	}
	if grant < 0 {
		grant = 0
	}
	return grant
}

// Retune replaces the pacer's watermarks and rate in place, preserving the
// hysteresis and token-bucket state so a mid-flight adjustment (from the
// self-tuning controller or a manual setter) takes effect on the next Grant
// without restarting the pacing history. Tokens above the new burst cap are
// forfeited. Invalid combinations (low above high, negative values,
// non-positive burst) are ignored — callers validate, and a policy engine
// must never panic mid-run on a racy read.
func (p *Pacer) Retune(high, low, rate, burst int64) {
	if high < 0 || low < 0 || low > high || rate < 0 || burst <= 0 {
		return
	}
	p.cfg.HighWaterBytes = high
	p.cfg.LowWaterBytes = low
	p.cfg.BytesPerSec = rate
	p.cfg.BurstBytes = burst
	if p.tokens > burst {
		p.tokens = burst
		p.refillRem = 0
	}
}

// Spend consumes tokens for bytes actually released by a pass.
func (p *Pacer) Spend(released int64) {
	p.tokens -= released
	if p.tokens < 0 {
		p.tokens = 0
	}
}

// Engaged reports whether the pacer is between its high and low watermarks
// on the releasing side of the hysteresis loop.
func (p *Pacer) Engaged() bool { return p.engaged }

// Tokens returns the current token-bucket level (for tests and metrics).
func (p *Pacer) Tokens() int64 { return p.tokens }
