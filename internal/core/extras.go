package core

import (
	"fmt"
	"io"
	"sort"

	"hoardgo/internal/alloc"
	"hoardgo/internal/env"
	"hoardgo/internal/vm"
)

// MallocAligned returns a block of at least size bytes whose address is a
// multiple of align (a power of two). Small requests are served from the
// smallest size class that both fits and preserves the alignment (class
// sizes divide evenly into the S-aligned superblock, so any class whose
// block size is a multiple of align yields aligned blocks); requests with
// no such class fall through to the page-aligned large-object path, which
// satisfies any align up to the page size. Larger alignments reserve an
// aligned span directly.
func (h *Hoard) MallocAligned(t *alloc.Thread, size, align int) alloc.Ptr {
	if align <= 0 || align&(align-1) != 0 {
		panic(fmt.Sprintf("hoard: MallocAligned align %d not a power of two", align))
	}
	if align <= sizeclassQuantumAlign {
		return h.Malloc(t, size)
	}
	if align <= h.classes.MaxSize() {
		// Smallest class that fits and whose block size keeps alignment.
		if class, ok := h.classes.ClassFor(size); ok {
			for c := class; c < h.classes.NumClasses(); c++ {
				if h.classes.Size(c)%align == 0 {
					return h.Malloc(t, h.classes.Size(c))
				}
			}
		}
	}
	if align <= vm.PageSize {
		// The large path is page-aligned.
		if size <= h.classes.MaxSize() {
			size = h.classes.MaxSize() + 1 // force the large path
		}
		return h.Malloc(t, size)
	}
	// Oversized alignment: reserve an aligned span.
	lo := &largeObj{}
	sp := h.space.Reserve(max(size, 1), align, lo)
	lo.size = sp.Len
	t.Env.Charge(env.OpOSAlloc, 1)
	h.osReserves.Add(1)
	h.acct.OnLarge(0)
	h.acct.OnMalloc(0, sp.Len)
	return alloc.Ptr(sp.Base)
}

// sizeclassQuantumAlign is the alignment every block already has.
const sizeclassQuantumAlign = 8

// HeapInfo describes one heap for introspection.
type HeapInfo struct {
	// ID is the heap index (0 = global).
	ID int
	// U and A are the heap's in-use and held bytes.
	U, A int64
	// Superblocks is the number held.
	Superblocks int
}

// Describe writes a human-readable snapshot of the allocator — overall
// counters, per-heap usage, and the busiest size classes — in the spirit of
// malloc_stats(3). It takes every heap lock briefly and may run concurrently
// with allocation (numbers are per-heap consistent, not globally atomic).
func (h *Hoard) Describe(w io.Writer, e env.Env) {
	st := h.Stats()
	fmt.Fprintf(w, "hoard: S=%d f=%v K=%d heaps=%d classes=%d\n",
		h.cfg.SuperblockSize, h.cfg.EmptyFraction, h.cfg.K, h.cfg.Heaps, h.classes.NumClasses())
	fmt.Fprintf(w, "ops: %d mallocs (%d large), %d frees, %d remote frees (%d lock-free, %d drains)\n",
		st.Mallocs, st.LargeMallocs, st.Frees, st.RemoteFrees, st.RemoteFastFrees, st.RemoteDrains)
	fmt.Fprintf(w, "batches: %d refills, %d flushes, %d blocks moved batched\n",
		st.BatchRefills, st.BatchFlushes, st.BatchedBlocks)
	fmt.Fprintf(w, "lock-free: %d mallocs, %d frees, %d CAS retries\n",
		st.LockFreeMallocs, st.LockFreeFrees, st.FastPathRetries)
	fmt.Fprintf(w, "superblocks: %d moved to global (%d live blocks carried), %d reused from global, %d from OS\n",
		st.SuperblockMoves, st.MovedLiveBlocks, st.GlobalHeapHits, st.OSReserves)
	fmt.Fprintf(w, "memory: %d B live (peak %d), %d B committed (peak %d)\n",
		st.LiveBytes, st.PeakLiveBytes, h.space.Committed(), h.space.PeakCommitted())
	type row struct {
		info HeapInfo
	}
	var rows []row
	for _, hp := range h.heaps {
		env.LockWith(hp.Lock, e, "describe")
		rows = append(rows, row{HeapInfo{ID: hp.ID, U: hp.U(), A: hp.A(), Superblocks: hp.Superblocks()}})
		hp.Lock.Unlock(e)
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].info.ID < rows[j].info.ID })
	for _, r := range rows {
		if r.info.Superblocks == 0 && r.info.ID != 0 {
			continue
		}
		name := fmt.Sprintf("heap %d", r.info.ID)
		if r.info.ID == 0 {
			name = "global"
		}
		util := 0.0
		if r.info.A > 0 {
			util = float64(r.info.U) / float64(r.info.A)
		}
		fmt.Fprintf(w, "  %-8s u=%-10d a=%-10d superblocks=%-5d utilization=%.2f\n",
			name, r.info.U, r.info.A, r.info.Superblocks, util)
	}
}

// Heaps returns a snapshot of every heap's usage, global heap first.
func (h *Hoard) Heaps(e env.Env) []HeapInfo {
	out := make([]HeapInfo, 0, len(h.heaps))
	for _, hp := range h.heaps {
		env.LockWith(hp.Lock, e, "describe")
		out = append(out, HeapInfo{ID: hp.ID, U: hp.U(), A: hp.A(), Superblocks: hp.Superblocks()})
		hp.Lock.Unlock(e)
	}
	return out
}
