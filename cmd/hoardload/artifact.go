package main

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"

	hoard "hoardgo"
	"hoardgo/internal/experiments"
	"hoardgo/internal/loadgen"
)

// loadSchema names the committed record's format.
const loadSchema = "hoardgo-bench/pr9-loadgen/v1"

// engineRun is one backend's pass through the traffic schedule.
type engineRun struct {
	Backend string `json:"backend"`
	Workers int    `json:"workers"`
	// Result carries the phase latency summaries, the footprint/contention
	// timeline, and the end-of-run leak check (final live and cached bytes,
	// both necessarily zero or the run would have failed).
	Result loadgen.Result `json:"result"`
	// Scavenger is the background scavenger's activity during the run.
	Scavenger hoard.ScavengerStats `json:"scavenger"`
	// PeakFootprintBytes is the high-water committed footprint;
	// ReleasedBytes what the post-drain forced release recovered; and
	// FinalFootprintBytes what the allocator still holds after it — the
	// retention-debt number the smoke threshold is written against.
	PeakFootprintBytes  int64 `json:"peak_footprint_bytes"`
	ReleasedBytes       int64 `json:"released_bytes"`
	FinalFootprintBytes int64 `json:"final_footprint_bytes"`
	// Tuned marks the self-tuning arm (-tune): the run starts from
	// deliberately detuned knobs (f=0.05, K=0, magazines of 4) with the
	// background controller enabled, and must still hold the same SLOs as
	// the static runs. Controller is that arm's activity record.
	Tuned      bool                   `json:"tuned,omitempty"`
	Controller *hoard.ControllerStats `json:"controller,omitempty"`
}

// hostInfo records the machine the wall-clock numbers came from.
type hostInfo struct {
	NumCPU    int    `json:"num_cpu"`
	GOOS      string `json:"goos"`
	GOARCH    string `json:"goarch"`
	GoVersion string `json:"go_version"`
}

// artifact is the committed serving-benchmark record (BENCH_PR9.json):
// traffic-phase latency SLO summaries and footprint timelines per backend,
// plus the wall-clock scalability sweep. Reproducible with
// `hoardload -artifact <path> -scale <scale>`.
type artifact struct {
	Schema     string                 `json:"schema"`
	Scale      string                 `json:"scale"`
	Provenance experiments.Provenance `json:"provenance"`
	Host       hostInfo               `json:"host"`
	Config     shape                  `json:"config"`
	Seed       int64                  `json:"seed"`
	Engine     []engineRun            `json:"engine"`
	Sweep      []loadgen.SweepEntry   `json:"sweep"`
	// EngineSkips and SweepSkips record sections that could not run here
	// (no arena backend on this platform), so an artifact with a missing
	// section is distinguishable from one that never attempted it.
	EngineSkips []string `json:"engine_skips,omitempty"`
	SweepSkips  []string `json:"sweep_skips,omitempty"`
}

// newArtifact stamps the record with provenance over every knob that shapes
// the workload, in fixed order (the fingerprint contract).
func newArtifact(scale string, sh shape, workers int, seed int64) *artifact {
	return &artifact{
		Schema: loadSchema,
		Scale:  scale,
		Provenance: experiments.Stamp(loadSchema, scale,
			fmt.Sprintf("keys=%d", sh.Keys),
			fmt.Sprintf("sizes=%d..%d", sh.SizeMin, sh.SizeMax),
			fmt.Sprintf("phase=%s", sh.PhaseDur),
			fmt.Sprintf("rate=%g", sh.PeakRate),
			fmt.Sprintf("sweepops=%d", sh.SweepOps),
			fmt.Sprintf("tcache=%d", sh.TCacheCap),
			fmt.Sprintf("workers=%d", workers),
			fmt.Sprintf("seed=%d", seed),
		),
		Host: hostInfo{
			NumCPU:    runtime.NumCPU(),
			GOOS:      runtime.GOOS,
			GOARCH:    runtime.GOARCH,
			GoVersion: runtime.Version(),
		},
		Config: sh,
		Seed:   seed,
	}
}

// writeArtifact serializes the record.
func writeArtifact(path string, art *artifact) error {
	data, err := json.MarshalIndent(art, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// Smoke thresholds: deliberately generous — they catch an allocator that
// fell off a cliff (a lock convoy pushing p999 into the hundreds of
// milliseconds, a drain that stopped draining), not machine-to-machine
// noise. CI boxes are slow and single-core; the SLOs account for that.
const (
	smokeMallocP999NS  = 100e6 // 100ms: any malloc slower than this is a stall
	smokeRequestP999NS = 500e6 // 500ms end-to-end on a loaded 1-core box
	// smokeRetainRatio bounds final footprint after drain + forced release
	// against the peak. ReleaseMemory reconciles pending remote frees and
	// restores the invariant before trimming, so a fully drained schedule
	// ends at the emptiness invariant's slack — a few superblocks per heap,
	// tiny next to any real peak. Holding a quarter of the peak means the
	// release path regressed (the pre-fix failure mode: a bulk cross-thread
	// drain stranding everything on remote-free stacks, trim finding
	// nothing).
	smokeRetainRatio = 0.25
)

// checkSmoke enforces the thresholds over a completed artifact.
func checkSmoke(art *artifact) error {
	if len(art.Engine) == 0 {
		return fmt.Errorf("no engine runs completed")
	}
	for _, er := range art.Engine {
		if got := len(er.Result.Phases); got != 4 {
			return fmt.Errorf("%s: %d phases, want 4", er.Backend, got)
		}
		for _, ph := range er.Result.Phases {
			if ph.Requests == 0 {
				return fmt.Errorf("%s/%s: no requests served", er.Backend, ph.Name)
			}
			if ph.Malloc.Count > 0 && ph.Malloc.P999 > smokeMallocP999NS {
				return fmt.Errorf("%s/%s: malloc p999 %s exceeds SLO %s",
					er.Backend, ph.Name, ns(ph.Malloc.P999), ns(smokeMallocP999NS))
			}
			if ph.Request.P999 > smokeRequestP999NS {
				return fmt.Errorf("%s/%s: request p999 %s exceeds SLO %s",
					er.Backend, ph.Name, ns(ph.Request.P999), ns(smokeRequestP999NS))
			}
		}
		if er.Result.FinalLiveBytes != 0 || er.Result.FinalCachedBytes != 0 {
			return fmt.Errorf("%s: drain leaked live=%d cached=%d",
				er.Backend, er.Result.FinalLiveBytes, er.Result.FinalCachedBytes)
		}
		if er.PeakFootprintBytes > 0 {
			ratio := float64(er.FinalFootprintBytes) / float64(er.PeakFootprintBytes)
			if ratio > smokeRetainRatio {
				return fmt.Errorf("%s: final footprint %d is %.2f of peak %d (limit %.2f) — release is not releasing",
					er.Backend, er.FinalFootprintBytes, ratio, er.PeakFootprintBytes, smokeRetainRatio)
			}
		}
		if len(er.Result.Timeline) == 0 {
			return fmt.Errorf("%s: no timeline samples", er.Backend)
		}
		if er.Tuned && (er.Controller == nil || er.Controller.Decisions == 0) {
			return fmt.Errorf("%s: tuned arm ran but the controller never made a decision", er.Backend)
		}
	}
	if len(art.Sweep) == 0 {
		return fmt.Errorf("no sweep entries")
	}
	for _, e := range art.Sweep {
		if e.Ops == 0 || e.OpsPerMS <= 0 {
			return fmt.Errorf("sweep %s/P=%d: no throughput recorded", e.Backend, e.Procs)
		}
		if e.LockAcquires == 0 {
			return fmt.Errorf("sweep %s/P=%d: lock instrumentation recorded nothing", e.Backend, e.Procs)
		}
		if e.Malloc.P999 > smokeMallocP999NS {
			return fmt.Errorf("sweep %s/P=%d: malloc p999 %s exceeds SLO %s",
				e.Backend, e.Procs, ns(e.Malloc.P999), ns(smokeMallocP999NS))
		}
	}
	return nil
}
