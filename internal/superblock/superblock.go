// Package superblock implements Hoard's unit of memory management.
//
// A superblock is an S-byte, S-aligned span carved into blocks of exactly
// one size class. Each superblock is owned by exactly one heap at a time
// (a per-processor heap or the global heap); ownership is what lets Hoard
// avoid allocator-induced false sharing — blocks of a superblock are handed
// out by a single heap, and frees return blocks to the superblock (and thus
// to its owning heap) rather than to the freeing thread.
//
// Free blocks form a LIFO list plus a lazy "carve frontier": blocks past the
// frontier have never been allocated and need no list linkage. The list's
// state lives in a single packed atomic word — head index, in-use count, a
// version counter, and a sealed bit — so both the owner's locked paths and
// the lock-free warm paths (TryPop/FastFree, §11 of DESIGN.md) mutate it
// with CAS. The links themselves live in a side array (not in block memory):
// a lock-free pop must speculatively read the head block's link while the
// application may already be writing that block through a racing winner, and
// a side array makes the speculative read target allocator-owned memory the
// application never touches. The cache-model Touch charges stay on the block
// addresses, so the simulated cost of walking the list is unchanged. A
// per-superblock free bitmap (atomic) detects double frees and supports
// integrity checking.
//
// Cross-thread frees additionally use a lock-free remote stack: a Treiber
// stack of block indices threaded through the blocks' first four bytes,
// with an atomic head. Non-owning threads CAS-push freed blocks onto it
// without taking the owning heap's lock (the pushed blocks are dead, so the
// in-block links cannot race application writes); the owner drains the whole
// stack in one batch (under its lock) at reconciliation points, translating
// the chain into the side array and splicing it onto the local list with one
// word CAS. Blocks on the remote stack still count as in use — the word's
// used field and the bitmap only change at drain time, which keeps Hoard's
// emptiness invariant and blowup bound exact whenever they are consulted.
package superblock

import (
	"encoding/binary"
	"fmt"
	"sync/atomic"

	"hoardgo/internal/alloc"
	"hoardgo/internal/env"
	"hoardgo/internal/vm"
)

// DefaultSize is the paper implementation's superblock size S (8 KiB).
const DefaultSize = 8192

// The packed state word: head (17 bits, idx+1 of the local free-list top,
// 0 = empty), used (17 bits, allocated + remote-pending blocks), ver (29
// bits, bumped on every word mutation so a CAS that succeeds proves the
// word — and therefore the link it validated — did not change in between),
// and sealed (1 bit, fencing the lock-free paths off the superblock).
const (
	headBits  = 17
	usedBits  = 17
	verBits   = 29
	headShift = 0
	usedShift = headBits
	verShift  = headBits + usedBits
	fieldMask = 1<<headBits - 1
	verMask   = 1<<verBits - 1
	sealedBit = uint64(1) << 63

	// MaxBlocks bounds nBlocks so head and used fit their fields.
	MaxBlocks = 1<<headBits - 1
)

func packWord(head, used int, ver uint64, sealed bool) uint64 {
	w := uint64(head)<<headShift | uint64(used)<<usedShift | (ver&verMask)<<verShift
	if sealed {
		w |= sealedBit
	}
	return w
}

func unpackWord(w uint64) (head, used int, ver uint64, sealed bool) {
	return int(w >> headShift & fieldMask),
		int(w >> usedShift & fieldMask),
		w >> verShift & verMask,
		w&sealedBit != 0
}

// Ref is an immutable snapshot of a superblock's format, published at every
// (re)format and cached by heaps as the "warm" fast-path target. A lock-free
// pop validates, after its CAS, that the superblock's current Ref is still
// the one it started from — a successful CAS against a reformatted
// superblock is impossible (format bumps ver), but the pop may have loaded
// the new word with the old Ref, so the identity check is what guarantees
// Class/BlockSize/Base describe the blocks actually popped.
type Ref struct {
	// SB is the superblock.
	SB *Superblock
	// Class, BlockSize and NBlocks are the format parameters.
	Class, BlockSize, NBlocks int
	// Base is the span's first byte, cached so the fast path computes
	// block addresses without touching the superblock's span.
	Base uint64
}

// Superblock manages one S-byte span of blocks of a single size class.
//
// Locking: the packed state word, the link array, and the free bitmap are
// atomic — they are shared between the owning heap's locked paths and the
// lock-free warm paths. carved, decommitted, Next/Prev/Group/Acct are
// protected by the owning heap's lock; parkedAt is atomic (see its comment). ownerID is atomic because the
// free path must read it before taking that lock (and re-check it after,
// since ownership can change while waiting).
type Superblock struct {
	span      *vm.Span
	size      int // S
	class     int
	blockSize int
	nBlocks   int

	// state is the packed head/used/ver/sealed word (see packWord).
	state atomic.Uint64

	carved int // blocks at index >= carved have never been allocated

	// links is the local free list's side array: links[i] holds the idx+1
	// of the block after free block i (0 = end of list). Allocated once at
	// the maximum block count for the span and never re-sliced, so a
	// speculative read through a stale Ref lands in live allocator memory.
	// All element accesses are atomic.
	links []uint32

	freeBits []uint64 // bit i set = block i is free (listed or uncarved); atomic

	// selfRef is the current format's Ref, republished by format.
	selfRef atomic.Pointer[Ref]

	// remoteHead is the Treiber-stack head of blocks freed by non-owning
	// threads: it holds idx+1 of the most recently pushed block (0 =
	// empty), with links threaded through the blocks' first four bytes.
	// Pushers only CAS-push and the owner only pops the whole stack at
	// once (Swap to 0), so there is no ABA window. remoteCount tracks the
	// stack's length approximately (pushes increment before the CAS lands,
	// drains subtract); it is a hint for drain heuristics, never a
	// correctness input.
	remoteHead  atomic.Uint32
	remoteCount atomic.Int32

	ownerID atomic.Int32

	// Acct is the owning heap's accounted in-use block count for this
	// superblock — the basis of the heap's u bookkeeping and fullness
	// grouping. The lock-free paths move the word's used count without
	// taking the lock, so Acct lags the live count until the heap
	// reconciles (Heap.syncSuper). Managed exclusively by the owning heap,
	// under its lock.
	Acct int

	// decommitted is true while the span's pages are dropped (scavenged);
	// protected by the owning heap's lock. parkedAt is the clock reading
	// when the superblock last went idle on the global heap; the
	// scavenger's cold-age filter compares against it. parkedAt is atomic
	// because a direct lock-free free to a global-heap superblock
	// refreshes the stamp without the global lock.
	decommitted bool
	parkedAt    atomic.Int64

	// Next and Prev link the superblock into its heap's fullness-group
	// list for its size class. Group is the list it is currently on.
	// All three are managed exclusively by the owning heap.
	Next, Prev *Superblock
	Group      int
}

// New reserves a fresh size-byte, size-aligned span from space and formats
// it as a superblock of the given class and block size. blockSize must be a
// positive multiple of 8 no larger than size. The superblock starts sealed;
// inserting it into a per-processor heap unseals it.
func New(space vm.Backend, size, class, blockSize int) *Superblock {
	if blockSize <= 0 || blockSize%8 != 0 || blockSize > size {
		panic(fmt.Sprintf("superblock: bad block size %d for S=%d", blockSize, size))
	}
	sb := &Superblock{size: size}
	sb.span = space.Reserve(size, size, sb)
	// links and freeBits are sized for the smallest legal block (8 bytes)
	// once, so no later Reinit re-slices them out from under a concurrent
	// speculative reader holding a stale Ref.
	maxBlocks := size / 8
	sb.links = make([]uint32, maxBlocks)
	sb.freeBits = make([]uint64, (maxBlocks+63)/64)
	sb.format(class, blockSize)
	return sb
}

// format initializes block bookkeeping for a (possibly recycled) superblock.
// The caller guarantees no live blocks and no lock-free traffic can commit
// (the word is empty, and every fast CAS validates against it).
func (sb *Superblock) format(class, blockSize int) {
	if sb.decommitted {
		panic(fmt.Sprintf("superblock %#x: format while decommitted (missing Recommit)", sb.span.Base))
	}
	sb.class = class
	sb.blockSize = blockSize
	sb.nBlocks = sb.size / blockSize
	if sb.nBlocks > MaxBlocks {
		panic(fmt.Sprintf("superblock: %d blocks exceed MaxBlocks %d", sb.nBlocks, MaxBlocks))
	}
	sb.carved = 0
	if sb.remoteHead.Load() != 0 {
		panic(fmt.Sprintf("superblock %#x: format with remote frees pending", sb.span.Base))
	}
	sb.remoteCount.Store(0)
	for i := 0; i <= (sb.nBlocks-1)/64; i++ {
		atomic.StoreUint64(&sb.freeBits[i], ^uint64(0))
	}
	// Reset the word monotonically: the new ver is greater than any a stale
	// fast path can hold, so its CAS fails; the sealed bit stays set until
	// a per-processor heap takes the superblock in.
	_, _, ver, _ := unpackWord(sb.state.Load())
	sb.state.Store(packWord(0, 0, ver+1, true))
	sb.selfRef.Store(&Ref{SB: sb, Class: class, BlockSize: blockSize, NBlocks: sb.nBlocks, Base: sb.span.Base})
}

// SelfRef returns the current format's Ref — the handle heaps publish as
// their warm fast-path target.
func (sb *Superblock) SelfRef() *Ref { return sb.selfRef.Load() }

// Reinit reformats an empty superblock for a new size class. Hoard's global
// heap recycles completely empty superblocks across classes; reinitializing
// a non-empty superblock panics.
func (sb *Superblock) Reinit(class, blockSize int) {
	if n := sb.InUse(); n != 0 {
		panic(fmt.Sprintf("superblock: Reinit with %d blocks in use", n))
	}
	if blockSize <= 0 || blockSize%8 != 0 || blockSize > sb.size {
		panic(fmt.Sprintf("superblock: bad block size %d for S=%d", blockSize, sb.size))
	}
	sb.format(class, blockSize)
}

// Release returns the superblock's span to the simulated OS. The superblock
// must be empty and must no longer be reachable from any heap; Release seals
// it so any stale warm Ref sees an empty, sealed word forever.
func (sb *Superblock) Release(space vm.Backend) {
	sb.Seal()
	if n := sb.InUse(); n != 0 {
		panic("superblock: Release with blocks in use")
	}
	if sb.remoteHead.Load() != 0 {
		panic("superblock: Release with remote frees pending")
	}
	for {
		w := sb.state.Load()
		_, _, ver, _ := unpackWord(w)
		if sb.state.CompareAndSwap(w, packWord(0, 0, ver+1, true)) {
			break
		}
	}
	space.Release(sb.span)
	sb.span = nil
	sb.decommitted = false
}

// Released reports whether Release already returned the superblock's span
// to the OS. Only meaningful under the lock that serializes Release for
// this superblock (the global heap lock, for global-heap superblocks): two
// frees can race to observe the same emptying transition, and the loser
// must not release twice.
func (sb *Superblock) Released() bool { return sb.span == nil }

// Seal sets the word's sealed bit, fencing every lock-free path off the
// superblock: a fast op that loads the word sees the bit and bails, and one
// whose load predates the seal fails its CAS (the seal bumped ver). Locked
// paths ignore the bit. Sealing is idempotent. Eviction, heap transfer,
// decommit, and release all seal; steady residency on any heap — the
// global one included — runs unsealed, so frees land lock-free anywhere.
func (sb *Superblock) Seal() {
	for {
		w := sb.state.Load()
		head, used, ver, sealed := unpackWord(w)
		if sealed {
			return
		}
		if sb.state.CompareAndSwap(w, packWord(head, used, ver+1, true)) {
			return
		}
	}
}

// Unseal clears the sealed bit, re-admitting the lock-free paths. Called
// when a per-processor heap takes the superblock in.
func (sb *Superblock) Unseal() {
	for {
		w := sb.state.Load()
		head, used, ver, sealed := unpackWord(w)
		if !sealed {
			return
		}
		if sb.state.CompareAndSwap(w, packWord(head, used, ver+1, false)) {
			return
		}
	}
}

// Sealed reports whether the lock-free paths are currently fenced off.
func (sb *Superblock) Sealed() bool {
	_, _, _, sealed := unpackWord(sb.state.Load())
	return sealed
}

// Decommit drops the superblock's backing pages in place
// (madvise(DONTNEED)-style) while the superblock stays parked on its heap:
// its address range remains reserved, FromPtr still resolves into it, but
// its committed bytes return to the OS until Recommit. The word is reset to
// the pristine empty state — sealed, so any stale warm Ref is fenced out for
// good measure (an empty head already blocks pops) — and carved returns to
// zero. The superblock must be completely empty with no remote frees
// pending; the caller holds the owning heap's lock. The decommit is charged
// as an OS call.
func (sb *Superblock) Decommit(e env.Env) {
	if n := sb.InUse(); n != 0 {
		panic(fmt.Sprintf("superblock %#x: Decommit with %d blocks in use", sb.Base(), n))
	}
	if sb.remoteHead.Load() != 0 {
		panic(fmt.Sprintf("superblock %#x: Decommit with remote frees pending", sb.Base()))
	}
	if sb.decommitted {
		panic(fmt.Sprintf("superblock %#x: double Decommit", sb.Base()))
	}
	for {
		w := sb.state.Load()
		_, used, ver, _ := unpackWord(w)
		if used != 0 {
			panic(fmt.Sprintf("superblock %#x: Decommit with %d blocks in use", sb.Base(), used))
		}
		if sb.state.CompareAndSwap(w, packWord(0, 0, ver+1, true)) {
			break
		}
	}
	sb.carved = 0
	sb.decommitted = true
	e.Charge(env.OpOSAlloc, 1)
	sb.span.Decommit(0, sb.size)
}

// Recommit restores the superblock's backing pages after a Decommit so its
// blocks can be handed out again; a no-op if the superblock is committed.
// The caller holds the owning heap's lock. The superblock stays sealed until
// a per-processor heap takes it in.
func (sb *Superblock) Recommit(e env.Env) {
	if !sb.decommitted {
		return
	}
	e.Charge(env.OpOSAlloc, 1)
	sb.span.Recommit(0, sb.size)
	sb.decommitted = false
}

// Decommitted reports whether the superblock's pages are currently dropped.
func (sb *Superblock) Decommitted() bool { return sb.decommitted }

// ParkedAt returns the clock reading recorded by SetParkedAt, the scavenger's
// cold-age input. Zero means never stamped.
func (sb *Superblock) ParkedAt() int64 { return sb.parkedAt.Load() }

// SetParkedAt records when the superblock last went idle on (or was last
// touched while on) the global heap. The caller holds the owning heap's lock.
func (sb *Superblock) SetParkedAt(ns int64) { sb.parkedAt.Store(ns) }

// FromPtr resolves a block pointer to its superblock via the address space's
// page map, the moral equivalent of the paper's per-block header. ok is
// false if p does not belong to any live superblock (e.g. it is a large
// object or garbage).
func FromPtr(space vm.Backend, p alloc.Ptr) (*Superblock, bool) {
	sp := space.Lookup(uint64(p))
	if sp == nil {
		return nil, false
	}
	sb, ok := sp.Owner.(*Superblock)
	return sb, ok
}

// Size returns S, the superblock's total byte size.
func (sb *Superblock) Size() int { return sb.size }

// Class returns the size class this superblock currently serves.
func (sb *Superblock) Class() int { return sb.class }

// BlockSize returns the byte size of each block.
func (sb *Superblock) BlockSize() int { return sb.blockSize }

// NBlocks returns the number of blocks the superblock holds.
func (sb *Superblock) NBlocks() int { return sb.nBlocks }

// InUse returns the number of allocated blocks (including remote-pending
// ones), read from the live word.
func (sb *Superblock) InUse() int {
	_, used, _, _ := unpackWord(sb.state.Load())
	return used
}

// BytesInUse returns the allocated bytes (blocks in use times block size).
func (sb *Superblock) BytesInUse() int { return sb.InUse() * sb.blockSize }

// Capacity returns the total usable bytes (nBlocks times block size).
func (sb *Superblock) Capacity() int { return sb.nBlocks * sb.blockSize }

// Full reports whether every block is allocated.
func (sb *Superblock) Full() bool { return sb.InUse() == sb.nBlocks }

// Empty reports whether no block is allocated.
func (sb *Superblock) Empty() bool { return sb.InUse() == 0 }

// Fullness returns the allocated fraction in [0,1].
func (sb *Superblock) Fullness() float64 {
	return float64(sb.InUse()) / float64(sb.nBlocks)
}

// AtLeastEmpty reports whether the superblock is at least fraction f empty,
// the condition a superblock must meet to move to the global heap.
func (sb *Superblock) AtLeastEmpty(f float64) bool {
	return float64(sb.nBlocks-sb.InUse()) >= f*float64(sb.nBlocks)
}

// OwnerID returns the id of the heap that currently owns this superblock.
func (sb *Superblock) OwnerID() int { return int(sb.ownerID.Load()) }

// SetOwnerID records a change of owning heap. Callers must hold the
// previous owner's lock (and, for heap-to-heap moves, the new owner's).
func (sb *Superblock) SetOwnerID(id int) { sb.ownerID.Store(int32(id)) }

// Base returns the simulated address of the superblock's first byte.
func (sb *Superblock) Base() uint64 { return sb.span.Base }

// AllocBlock pops a free block, preferring recently freed blocks (LIFO) for
// locality, then carving never-used blocks. ok is false when the superblock
// is full. The caller holds the owning heap's lock; the CAS loop is because
// lock-free frees may race the word (the carve frontier itself is
// lock-protected — only this path advances it).
func (sb *Superblock) AllocBlock(e env.Env) (p alloc.Ptr, ok bool) {
	for {
		w := sb.state.Load()
		head, used, ver, sealed := unpackWord(w)
		var idx int
		if head != 0 {
			idx = head - 1
			next := atomic.LoadUint32(&sb.links[idx])
			if !sb.state.CompareAndSwap(w, packWord(int(next), used+1, ver+1, sealed)) {
				continue
			}
			// The Touch models reading the block's link — the access
			// where an allocator picks up a cache line the freeing
			// thread wrote (passive false sharing's mechanism).
			e.Touch(sb.addrOf(idx), 4, false)
		} else if sb.carved < sb.nBlocks {
			idx = sb.carved
			if !sb.state.CompareAndSwap(w, packWord(0, used+1, ver+1, sealed)) {
				continue
			}
			sb.carved++
		} else {
			return 0, false
		}
		if !sb.testAndClearFree(idx) {
			panic(fmt.Sprintf("superblock %#x: free-list/bitmap mismatch at block %d", sb.Base(), idx))
		}
		return alloc.Ptr(sb.addrOf(idx)), true
	}
}

// FreeBlock returns a block to the superblock's LIFO free list. It panics
// on misaligned pointers, pointers outside the superblock, and double
// frees. The caller holds the owning heap's lock.
func (sb *Superblock) FreeBlock(e env.Env, p alloc.Ptr) {
	idx := sb.indexOf(p)
	// Bit first, then word: a concurrent lock-free pop clears the bit only
	// after winning the word CAS, so the bit must already be set by then.
	if !sb.testAndSetFree(idx) {
		panic(fmt.Sprintf("superblock %#x: double free of block %d (%#x)", sb.Base(), idx, uint64(p)))
	}
	// The Touch models writing the block's link, dirtying the block's
	// cache line in the freeing thread's cache — the other half of the
	// false-sharing mechanism.
	e.Touch(uint64(p), 4, true)
	for {
		w := sb.state.Load()
		head, used, ver, sealed := unpackWord(w)
		atomic.StoreUint32(&sb.links[idx], uint32(head))
		if sb.state.CompareAndSwap(w, packWord(idx+1, used-1, ver+1, sealed)) {
			return
		}
	}
}

// TryPop is the lock-free warm-path malloc: it pops the local free list's
// top block with one CAS, without the owning heap's lock. ok is false when
// the list is empty, the superblock is sealed (global-heap-owned, evicting,
// decommitted, or released), or the Ref turned stale — callers then take
// the locked slow path. retries counts CAS retries (contention telemetry).
//
// Safety: links[head-1] is read speculatively, but any mutation that could
// change it also bumps the word's ver, so a successful CAS proves the link
// was current. A successful CAS against a *reformatted* superblock is
// likewise impossible; the post-CAS identity check against SelfRef covers
// the remaining window (ref loaded before a reformat, word loaded after),
// undoing the pop if it fires.
func (r *Ref) TryPop(e env.Env) (p alloc.Ptr, ok bool, retries int) {
	sb := r.SB
	for {
		w := sb.state.Load()
		head, used, ver, sealed := unpackWord(w)
		if sealed || head == 0 {
			return 0, false, retries
		}
		idx := head - 1
		if idx >= r.NBlocks {
			// Stale Ref over a differently-formatted word.
			return 0, false, retries
		}
		next := atomic.LoadUint32(&sb.links[idx])
		if int(next) > r.NBlocks {
			return 0, false, retries
		}
		if !sb.state.CompareAndSwap(w, packWord(int(next), used+1, ver+1, false)) {
			retries++
			continue
		}
		if sb.selfRef.Load() != r {
			// Reformatted between our Ref load and word load: the pop
			// committed against the new format, whose geometry we do not
			// know. Push the block back and bail to the locked path.
			sb.undoPop(idx)
			return 0, false, retries
		}
		e.Touch(r.Base+uint64(idx*r.BlockSize), 4, false)
		if !sb.testAndClearFree(idx) {
			panic(fmt.Sprintf("superblock %#x: free-list/bitmap mismatch at block %d (lock-free pop)", sb.Base(), idx))
		}
		return alloc.Ptr(r.Base + uint64(idx*r.BlockSize)), true, retries
	}
}

// TryPopRun is the lock-free batch refill: it claims up to len(out) blocks
// from the local free list — a whole run of the LIFO chain — with a single
// CAS, and returns how many it claimed. The run walk reads links
// speculatively; the one CAS validates the entire walked chain (any
// concurrent mutation bumps ver). On a stale Ref the whole run is pushed
// back. n is 0 when the list is empty or the superblock is sealed.
func (r *Ref) TryPopRun(e env.Env, out []alloc.Ptr) (n, retries int) {
	sb := r.SB
	if len(out) == 0 {
		return 0, 0
	}
	for {
		w := sb.state.Load()
		head, used, ver, sealed := unpackWord(w)
		if sealed || head == 0 {
			return 0, retries
		}
		// First walk: find the run's length and cut point. No buffering —
		// links of on-list blocks are immutable while they stay on the
		// list, so if the word CAS below succeeds the same chain can be
		// re-walked to fill out (and the blocks are exclusively ours by
		// then). A torn walk under concurrent mutation at worst reads a
		// garbage chain; the bounds checks cap it and the CAS rejects it.
		k, last := 0, 0
		cur := head
		for cur != 0 && k < len(out) {
			idx := cur - 1
			if idx >= r.NBlocks {
				return 0, retries
			}
			next := atomic.LoadUint32(&sb.links[idx])
			if int(next) > r.NBlocks {
				return 0, retries
			}
			last = idx
			k++
			cur = int(next)
		}
		if !sb.state.CompareAndSwap(w, packWord(cur, used+k, ver+1, false)) {
			retries++
			continue
		}
		if sb.selfRef.Load() != r {
			// The chain's internal links are untouched, so splicing the
			// whole run back is one word CAS.
			sb.undoPopRun(head-1, last, k)
			return 0, retries
		}
		// Second walk: claim each block of the run.
		idx := head - 1
		for i := 0; i < k; i++ {
			e.Touch(r.Base+uint64(idx*r.BlockSize), 4, false)
			if !sb.testAndClearFree(idx) {
				panic(fmt.Sprintf("superblock %#x: free-list/bitmap mismatch at block %d (lock-free batch pop)", sb.Base(), idx))
			}
			out[i] = alloc.Ptr(r.Base + uint64(idx*r.BlockSize))
			if i+1 < k {
				idx = int(atomic.LoadUint32(&sb.links[idx])) - 1
			}
		}
		return k, retries
	}
}

// undoPop pushes idx back onto the local list after a pop that must be
// rolled back (stale-Ref detection). The block's free bit was never cleared.
func (sb *Superblock) undoPop(idx int) {
	for {
		w := sb.state.Load()
		head, used, ver, sealed := unpackWord(w)
		atomic.StoreUint32(&sb.links[idx], uint32(head))
		if sb.state.CompareAndSwap(w, packWord(idx+1, used-1, ver+1, sealed)) {
			return
		}
	}
}

// undoPopRun splices a popped run (first..last, links intact) back onto the
// local list.
func (sb *Superblock) undoPopRun(first, last, k int) {
	for {
		w := sb.state.Load()
		head, used, ver, sealed := unpackWord(w)
		atomic.StoreUint32(&sb.links[last], uint32(head))
		if sb.state.CompareAndSwap(w, packWord(first+1, used-k, ver+1, sealed)) {
			return
		}
	}
}

// FastFree is the lock-free free: it pushes the block onto the superblock's
// free list with one CAS, without any heap lock — the push works from any
// thread, owner or not. ok is false when the superblock is sealed — the
// caller then takes the locked path (the free bit is rolled back first, so
// the locked free re-detects double frees itself). wasEmpty reports that
// this push turned an empty free list nonempty — the signal the caller uses
// to publish the superblock as a warm-path candidate. It panics on double
// frees. retries counts CAS retries.
func (sb *Superblock) FastFree(e env.Env, p alloc.Ptr) (ok, wasEmpty bool, retries int) {
	idx := sb.indexOf(p)
	if sb.Sealed() {
		return false, false, 0
	}
	// Bit first, then word, as in FreeBlock — a winning pop expects the
	// bit set. A failed seal-race CAS rolls the bit back below.
	if !sb.testAndSetFree(idx) {
		panic(fmt.Sprintf("superblock %#x: double free of block %d (%#x)", sb.Base(), idx, uint64(p)))
	}
	e.Touch(uint64(p), 4, true)
	for {
		w := sb.state.Load()
		head, used, ver, sealed := unpackWord(w)
		if sealed {
			if !sb.testAndClearFree(idx) {
				panic(fmt.Sprintf("superblock %#x: free bit of block %d vanished during rollback", sb.Base(), idx))
			}
			return false, false, retries
		}
		atomic.StoreUint32(&sb.links[idx], uint32(head))
		if sb.state.CompareAndSwap(w, packWord(idx+1, used-1, ver+1, false)) {
			return true, head == 0, retries
		}
		retries++
	}
}

// FastFreeRun is the lock-free batch flush for an owner-local group: it
// chains ps through the side links and pushes the whole chain onto the local
// free list with one CAS. All-or-nothing: ok is false (and every free bit is
// rolled back) when the superblock is sealed, and the caller dispatches the
// group through the locked path. It panics on double frees, including
// duplicates within the batch.
func (sb *Superblock) FastFreeRun(e env.Env, ps []alloc.Ptr) (ok, wasEmpty bool, retries int) {
	if len(ps) == 0 {
		return true, false, 0
	}
	if sb.Sealed() {
		return false, false, 0
	}
	idxs := make([]int, len(ps))
	for i, p := range ps {
		idxs[i] = sb.indexOf(p)
	}
	for i, idx := range idxs {
		if !sb.testAndSetFree(idx) {
			for _, prev := range idxs[:i] {
				sb.testAndClearFree(prev)
			}
			panic(fmt.Sprintf("superblock %#x: double free of block %d (%#x)", sb.Base(), idx, uint64(ps[i])))
		}
		e.Touch(uint64(ps[i]), 4, true)
	}
	// Chain idxs[0] -> idxs[1] -> ... through the side links; the tail
	// link is written inside the CAS loop.
	for i := 0; i+1 < len(idxs); i++ {
		atomic.StoreUint32(&sb.links[idxs[i]], uint32(idxs[i+1]+1))
	}
	k := len(idxs)
	for {
		w := sb.state.Load()
		head, used, ver, sealed := unpackWord(w)
		if sealed {
			for _, idx := range idxs {
				if !sb.testAndClearFree(idx) {
					panic(fmt.Sprintf("superblock %#x: free bit of block %d vanished during rollback", sb.Base(), idx))
				}
			}
			return false, false, retries
		}
		atomic.StoreUint32(&sb.links[idxs[k-1]], uint32(head))
		if sb.state.CompareAndSwap(w, packWord(idxs[0]+1, used-k, ver+1, false)) {
			return true, head == 0, retries
		}
		retries++
	}
}

// RemoteFree pushes a block freed by a non-owning thread onto the
// superblock's lock-free remote stack and returns the (approximate) number
// of blocks now pending. It takes no lock: the block's link is written, then
// the stack head is CAS-published. The block stays marked in use — the
// bitmap, the used count, and the owning heap's statistics are updated only
// when the owner drains. Double frees through this path are therefore
// detected at drain time, not push time.
func (sb *Superblock) RemoteFree(e env.Env, p alloc.Ptr) int {
	idx := sb.indexOf(p)
	link := sb.span.Bytes(idx*sb.blockSize, 4)
	e.Touch(uint64(p), 4, true)
	e.Charge(env.OpRemoteFree, 1)
	for {
		head := sb.remoteHead.Load()
		binary.LittleEndian.PutUint32(link, head)
		// The CAS's release ordering publishes the link write; the
		// drain's Swap acquires it, so the plain byte accesses never
		// race.
		if sb.remoteHead.CompareAndSwap(head, uint32(idx+1)) {
			return int(sb.remoteCount.Add(1))
		}
	}
}

// RemoteFreeBatch pushes every block in ps — all freed by a non-owning
// thread — onto the remote stack with a single CAS: the blocks are chained
// through their own link words locally, then the whole chain is published at
// once. It returns the (approximate) number of blocks now pending. Like
// RemoteFree it takes no lock and defers double-free detection to drain
// time; a duplicate pointer inside one batch forms a cycle the drain's
// bitmap walk reports as a remote double free.
func (sb *Superblock) RemoteFreeBatch(e env.Env, ps []alloc.Ptr) int {
	if len(ps) == 0 {
		return sb.RemotePending()
	}
	// A duplicate inside one batch would be silently dropped by the chain
	// build below (its link word is simply rewritten), so detect it here;
	// batches are magazine-sized, so the quadratic scan is a few dozen
	// compares. Duplicates across batches are detected at drain time, as
	// on the per-block path.
	for i, p := range ps {
		for _, q := range ps[:i] {
			if p == q {
				panic(fmt.Sprintf("superblock %#x: double free of block %#x within one batch", sb.Base(), uint64(p)))
			}
		}
	}
	// Chain ps[0] -> ps[1] -> ... -> ps[k-1] through the blocks' link
	// words. Each link write is a real access to the block's memory, as in
	// the per-block path.
	for i, p := range ps {
		idx := sb.indexOf(p)
		next := uint32(0)
		if i+1 < len(ps) {
			next = uint32(sb.indexOf(ps[i+1]) + 1)
		}
		binary.LittleEndian.PutUint32(sb.span.Bytes(idx*sb.blockSize, 4), next)
		e.Touch(uint64(p), 4, true)
	}
	e.Charge(env.OpRemoteFree, int64(len(ps)))
	headIdx := uint32(sb.indexOf(ps[0]) + 1)
	tail := sb.span.Bytes(sb.indexOf(ps[len(ps)-1])*sb.blockSize, 4)
	for {
		head := sb.remoteHead.Load()
		binary.LittleEndian.PutUint32(tail, head)
		// As in RemoteFree, the CAS's release ordering publishes every
		// link write of the chain; the drain's Swap acquires it.
		if sb.remoteHead.CompareAndSwap(head, headIdx) {
			return int(sb.remoteCount.Add(int32(len(ps))))
		}
	}
}

// DrainRemote pops the entire remote stack and splices it onto the local
// free list: the in-block chain is translated into the side-link array, the
// blocks' free bits are set, and the whole chain lands on the list with one
// word CAS (tail -> old head). The caller must hold the owning heap's lock.
// It returns the number of blocks drained (0 when the stack is empty, in
// which case the call is a single atomic load). It panics on the deferred
// double frees RemoteFree could not detect.
func (sb *Superblock) DrainRemote(e env.Env) int {
	if sb.remoteHead.Load() == 0 {
		return 0
	}
	head := sb.remoteHead.Swap(0)
	if head == 0 {
		return 0
	}
	e.Charge(env.OpListScan, 1)
	n := 0
	tail := 0
	for cur := int(head); cur != 0; {
		idx := cur - 1
		if idx < 0 || idx >= sb.carved {
			panic(fmt.Sprintf("superblock %#x: remote stack index %d outside carved range [0,%d)", sb.Base(), idx, sb.carved))
		}
		if sb.isFree(idx) {
			panic(fmt.Sprintf("superblock %#x: double free of block %d (remote)", sb.Base(), idx))
		}
		if n >= sb.nBlocks {
			panic(fmt.Sprintf("superblock %#x: remote stack longer than %d blocks", sb.Base(), sb.nBlocks))
		}
		sb.setFree(idx)
		n++
		tail = idx
		e.Touch(sb.addrOf(idx), 4, false)
		e.Charge(env.OpFree, 1)
		next := int(binary.LittleEndian.Uint32(sb.span.Bytes(idx*sb.blockSize, 4)))
		if next != 0 {
			atomic.StoreUint32(&sb.links[idx], uint32(next))
		}
		cur = next
	}
	// Splice with one CAS: tail -> old list head, the chain's head becomes
	// the new list head, and the drained blocks leave the used count.
	for {
		w := sb.state.Load()
		oldHead, used, ver, sealed := unpackWord(w)
		atomic.StoreUint32(&sb.links[tail], uint32(oldHead))
		if sb.state.CompareAndSwap(w, packWord(int(head), used-n, ver+1, sealed)) {
			break
		}
	}
	sb.remoteCount.Add(int32(-n))
	return n
}

// RemotePending returns the approximate number of blocks waiting on the
// remote stack. It is a racy hint: concurrent pushes and drains may make it
// stale by the time the caller acts on it.
func (sb *Superblock) RemotePending() int {
	n := int(sb.remoteCount.Load())
	if n < 0 {
		return 0
	}
	return n
}

// RemoteDrainThreshold returns the pending count at which a pusher should
// nudge the owner to drain (by trying the owner's lock): half the
// superblock, but at least 8 blocks so tiny stacks don't thrash.
func (sb *Superblock) RemoteDrainThreshold() int {
	t := sb.nBlocks / 2
	if t < 8 {
		t = 8
	}
	return t
}

// Contains reports whether p points at a block boundary inside sb.
func (sb *Superblock) Contains(p alloc.Ptr) bool {
	a := uint64(p)
	if a < sb.span.Base || a >= sb.span.End() {
		return false
	}
	return (a-sb.span.Base)%uint64(sb.blockSize) == 0 &&
		int(a-sb.span.Base)/sb.blockSize < sb.nBlocks
}

func (sb *Superblock) addrOf(idx int) uint64 {
	return sb.span.Base + uint64(idx*sb.blockSize)
}

func (sb *Superblock) indexOf(p alloc.Ptr) int {
	off := uint64(p) - sb.span.Base
	if uint64(p) < sb.span.Base || off%uint64(sb.blockSize) != 0 || int(off)/sb.blockSize >= sb.nBlocks {
		panic(fmt.Sprintf("superblock %#x: bad block pointer %#x", sb.Base(), uint64(p)))
	}
	return int(off) / sb.blockSize
}

func (sb *Superblock) isFree(idx int) bool {
	return atomic.LoadUint64(&sb.freeBits[idx/64])&(1<<(idx%64)) != 0
}

func (sb *Superblock) setFree(idx int) {
	w, b := idx/64, uint64(1)<<(idx%64)
	for {
		old := atomic.LoadUint64(&sb.freeBits[w])
		if atomic.CompareAndSwapUint64(&sb.freeBits[w], old, old|b) {
			return
		}
	}
}

func (sb *Superblock) testAndSetFree(idx int) bool {
	w, b := idx/64, uint64(1)<<(idx%64)
	for {
		old := atomic.LoadUint64(&sb.freeBits[w])
		if old&b != 0 {
			return false
		}
		if atomic.CompareAndSwapUint64(&sb.freeBits[w], old, old|b) {
			return true
		}
	}
}

func (sb *Superblock) testAndClearFree(idx int) bool {
	w, b := idx/64, uint64(1)<<(idx%64)
	for {
		old := atomic.LoadUint64(&sb.freeBits[w])
		if old&b == 0 {
			return false
		}
		if atomic.CompareAndSwapUint64(&sb.freeBits[w], old, old&^b) {
			return true
		}
	}
}

// CheckIntegrity validates the free list, bitmap, and counters. The
// superblock must be quiescent.
func (sb *Superblock) CheckIntegrity() error {
	return sb.checkIntegrity(false)
}

// CheckIntegrityOnline is CheckIntegrity for a superblock whose owner heap's
// lock is held but which may be receiving concurrent lock-free traffic:
// remote pushes, warm-path pops, and owner-local fast frees. The word is
// checked for internal sanity and the remote chain is walked from a snapshot
// head whose nodes are immutable once published; the free-list walk and the
// bitmap-versus-word comparisons are skipped, because the lock-free paths
// legitimately move the word and the bits in separate steps (bit before CAS
// on free, CAS before bit on pop).
func (sb *Superblock) CheckIntegrityOnline() error {
	return sb.checkIntegrity(true)
}

func (sb *Superblock) checkIntegrity(online bool) error {
	if sb.span == nil {
		return fmt.Errorf("superblock: released but still reachable")
	}
	head, used, _, _ := unpackWord(sb.state.Load())
	if sb.decommitted {
		// A decommitted superblock's only consistent shape is the pristine
		// empty one.
		if used != 0 || head != 0 || sb.carved != 0 {
			return fmt.Errorf("superblock %#x: decommitted but used %d head %d carved %d",
				sb.Base(), used, head, sb.carved)
		}
		if sb.remoteHead.Load() != 0 {
			return fmt.Errorf("superblock %#x: decommitted with remote frees pending", sb.Base())
		}
		if got := sb.span.DecommittedBytes(); got != int64(sb.size) {
			return fmt.Errorf("superblock %#x: decommitted flag set but span has %d/%d bytes dropped", sb.Base(), got, sb.size)
		}
		return nil
	}
	if got := sb.span.DecommittedBytes(); got != 0 {
		return fmt.Errorf("superblock %#x: committed flag but span has %d bytes dropped", sb.Base(), got)
	}
	if used < 0 || used > sb.nBlocks {
		return fmt.Errorf("superblock %#x: used %d out of range", sb.Base(), used)
	}
	if ref := sb.selfRef.Load(); ref == nil || ref.SB != sb || ref.BlockSize != sb.blockSize ||
		ref.NBlocks != sb.nBlocks || ref.Base != sb.span.Base {
		return fmt.Errorf("superblock %#x: stale self Ref", sb.Base())
	}
	seen := make(map[int]bool)
	if !online {
		listed := 0
		for cur := head; cur != 0; {
			idx := cur - 1
			if idx < 0 || idx >= sb.carved {
				return fmt.Errorf("superblock %#x: free list index %d outside carved range [0,%d)", sb.Base(), idx, sb.carved)
			}
			if seen[idx] {
				return fmt.Errorf("superblock %#x: free list cycle at block %d", sb.Base(), idx)
			}
			if !sb.isFree(idx) {
				return fmt.Errorf("superblock %#x: listed block %d not marked free", sb.Base(), idx)
			}
			seen[idx] = true
			listed++
			cur = int(atomic.LoadUint32(&sb.links[idx]))
		}
		wantListed := sb.carved - used
		if listed != wantListed {
			return fmt.Errorf("superblock %#x: %d blocks on free list, want %d (carved %d, used %d)",
				sb.Base(), listed, wantListed, sb.carved, used)
		}
		freeBits := 0
		for i := 0; i < sb.nBlocks; i++ {
			if sb.isFree(i) {
				freeBits++
			}
		}
		if freeBits != sb.nBlocks-used {
			return fmt.Errorf("superblock %#x: bitmap says %d free, counters say %d",
				sb.Base(), freeBits, sb.nBlocks-used)
		}
	}
	// Remote stack: every pending block must be a valid, currently
	// allocated block, appear once, and match the pending counter. Pending
	// blocks count as in use until drained.
	remote := 0
	rseen := make(map[int]bool)
	for cur := int(sb.remoteHead.Load()); cur != 0; {
		idx := cur - 1
		if idx < 0 || idx >= sb.carved {
			return fmt.Errorf("superblock %#x: remote stack index %d outside carved range [0,%d)", sb.Base(), idx, sb.carved)
		}
		if !online && sb.isFree(idx) {
			return fmt.Errorf("superblock %#x: remote-pending block %d already marked free", sb.Base(), idx)
		}
		if rseen[idx] || seen[idx] {
			return fmt.Errorf("superblock %#x: block %d pushed remotely more than once", sb.Base(), idx)
		}
		rseen[idx] = true
		remote++
		if remote > sb.nBlocks {
			return fmt.Errorf("superblock %#x: remote stack longer than %d blocks", sb.Base(), sb.nBlocks)
		}
		cur = int(binary.LittleEndian.Uint32(sb.span.Bytes(idx*sb.blockSize, 4)))
	}
	if got := int(sb.remoteCount.Load()); !online && got != remote {
		return fmt.Errorf("superblock %#x: remote stack holds %d blocks, counter says %d", sb.Base(), remote, got)
	}
	// used counts allocated + remote-pending blocks, so remote can never
	// exceed it. The live word was re-read conservatively for the online
	// case: between the walk and this load the stack can only have grown
	// (drains need the lock this caller holds).
	_, usedNow, _, _ := unpackWord(sb.state.Load())
	if remote > usedNow {
		return fmt.Errorf("superblock %#x: %d remote-pending blocks but only %d in use", sb.Base(), remote, usedNow)
	}
	return nil
}

// RemotePendingBytes returns the approximate bytes waiting on the remote
// stack (pending blocks times block size).
func (sb *Superblock) RemotePendingBytes() int64 {
	return int64(sb.RemotePending()) * int64(sb.blockSize)
}
