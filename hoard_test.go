package hoard

import (
	"strings"
	"sync"
	"testing"
)

func TestQuickstartFlow(t *testing.T) {
	a := MustNew(Config{})
	th := a.NewThread()
	p := th.Malloc(100)
	copy(th.Bytes(p, 100), []byte("hello"))
	if string(th.Bytes(p, 5)) != "hello" {
		t.Fatal("bytes round trip failed")
	}
	if th.UsableSize(p) < 100 {
		t.Fatalf("UsableSize = %d", th.UsableSize(p))
	}
	th.Free(p)
	if st := a.Stats(); st.LiveBytes != 0 || st.Mallocs != 1 || st.Frees != 1 {
		t.Fatalf("stats %+v", st)
	}
	if err := a.CheckIntegrity(); err != nil {
		t.Fatal(err)
	}
}

func TestAllPoliciesBasicUse(t *testing.T) {
	for _, pol := range []Policy{PolicyHoard, PolicySerial, PolicyConcurrent, PolicyDLHeap, PolicyPrivate, PolicyOwnership, PolicyThreshold} {
		t.Run(string(pol), func(t *testing.T) {
			a := MustNew(Config{Policy: pol, Procs: 4})
			if a.Policy() != pol {
				t.Fatalf("Policy() = %q", a.Policy())
			}
			th := a.NewThread()
			var ps []Ptr
			for i := 0; i < 500; i++ {
				p := th.Malloc(1 + i%700)
				th.Bytes(p, 1)[0] = byte(i)
				ps = append(ps, p)
			}
			for _, p := range ps {
				th.Free(p)
			}
			if st := a.Stats(); st.LiveBytes != 0 {
				t.Fatalf("LiveBytes = %d", st.LiveBytes)
			}
			if err := a.CheckIntegrity(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestCalloc(t *testing.T) {
	a := MustNew(Config{})
	th := a.NewThread()
	p := th.Malloc(256)
	buf := th.Bytes(p, 256)
	for i := range buf {
		buf[i] = 0xFF
	}
	th.Free(p)
	q := th.Calloc(256) // likely reuses p's block
	for i, b := range th.Bytes(q, 256) {
		if b != 0 {
			t.Fatalf("Calloc byte %d = %#x, want 0", i, b)
		}
	}
	th.Free(q)
}

func TestReallocAllPolicies(t *testing.T) {
	for _, pol := range []Policy{PolicyHoard, PolicySerial, PolicyConcurrent, PolicyDLHeap, PolicyPrivate, PolicyOwnership, PolicyThreshold} {
		t.Run(string(pol), func(t *testing.T) {
			a := MustNew(Config{Policy: pol})
			th := a.NewThread()
			p := th.Malloc(32)
			copy(th.Bytes(p, 4), "abcd")
			p = th.Realloc(p, 3000)
			if string(th.Bytes(p, 4)) != "abcd" {
				t.Fatal("realloc lost contents")
			}
			p = th.Realloc(p, 8)
			if string(th.Bytes(p, 4)) != "abcd" {
				t.Fatal("shrinking realloc lost contents")
			}
			th.Free(p)
			var nilP Ptr
			p = th.Realloc(nilP, 16)
			th.Free(p)
		})
	}
}

func TestConcurrentPublicAPI(t *testing.T) {
	a := MustNew(Config{Procs: 4})
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			th := a.NewThread()
			var ps []Ptr
			for i := 0; i < 2000; i++ {
				p := th.Malloc(1 + i%300)
				th.Bytes(p, 1)[0] = 1
				ps = append(ps, p)
			}
			for _, p := range ps {
				th.Free(p)
			}
		}()
	}
	wg.Wait()
	if st := a.Stats(); st.LiveBytes != 0 {
		t.Fatalf("LiveBytes = %d", st.LiveBytes)
	}
	if err := a.CheckIntegrity(); err != nil {
		t.Fatal(err)
	}
}

func TestThreadIDsUnique(t *testing.T) {
	a := MustNew(Config{})
	seen := map[int]bool{}
	var mu sync.Mutex
	var wg sync.WaitGroup
	for i := 0; i < 32; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			id := a.NewThread().ID()
			mu.Lock()
			if seen[id] {
				t.Errorf("duplicate thread id %d", id)
			}
			seen[id] = true
			mu.Unlock()
		}()
	}
	wg.Wait()
}

func TestBadConfig(t *testing.T) {
	if _, err := New(Config{Policy: "bogus"}); err == nil {
		t.Fatal("unknown policy accepted")
	}
	if _, err := New(Config{Procs: -1}); err == nil {
		t.Fatal("negative procs accepted")
	}
}

func TestFootprintTracksFragmentation(t *testing.T) {
	a := MustNew(Config{})
	th := a.NewThread()
	var ps []Ptr
	for i := 0; i < 4000; i++ {
		ps = append(ps, th.Malloc(64))
	}
	st := a.Stats()
	if st.FootprintBytes < st.LiveBytes {
		t.Fatalf("footprint %d < live %d", st.FootprintBytes, st.LiveBytes)
	}
	// Paper-style fragmentation: footprint within a small factor of live.
	if float64(st.FootprintBytes) > 1.5*float64(st.LiveBytes) {
		t.Fatalf("footprint %d vs live %d: excessive fragmentation", st.FootprintBytes, st.LiveBytes)
	}
	for _, p := range ps {
		th.Free(p)
	}
}

func TestMallocAlignedPublic(t *testing.T) {
	for _, pol := range []Policy{PolicyHoard, PolicySerial} {
		a := MustNew(Config{Policy: pol})
		th := a.NewThread()
		for _, align := range []int{8, 64, 1024, 4096} {
			p := th.MallocAligned(100, align)
			if uint64(p)%uint64(align) != 0 {
				t.Fatalf("%s: MallocAligned(100, %d) misaligned: %#x", pol, align, uint64(p))
			}
			th.Free(p)
		}
	}
	// Hoard handles oversized alignment natively.
	a := MustNew(Config{})
	th := a.NewThread()
	p := th.MallocAligned(100, 1<<16)
	if uint64(p)%(1<<16) != 0 {
		t.Fatalf("64K alignment failed: %#x", uint64(p))
	}
	th.Free(p)
}

func TestDescribePublic(t *testing.T) {
	for _, pol := range []Policy{PolicyHoard, PolicyPrivate} {
		a := MustNew(Config{Policy: pol})
		th := a.NewThread()
		p := th.Malloc(64)
		var sb strings.Builder
		a.Describe(&sb)
		if sb.Len() == 0 {
			t.Fatalf("%s: empty Describe output", pol)
		}
		th.Free(p)
	}
}

func TestThreadCachePublic(t *testing.T) {
	a := MustNew(Config{ThreadCacheCapacity: 16})
	th := a.NewThread()
	p := th.Malloc(64)
	th.Free(p)
	q := th.Malloc(64)
	if q != p {
		t.Fatalf("thread cache did not serve the freed block: %#x vs %#x", uint64(q), uint64(p))
	}
	th.Free(q)
	th.Free(th.Malloc(64))
	if st := a.Stats(); st.LiveBytes != 0 {
		t.Fatalf("LiveBytes = %d", st.LiveBytes)
	}
	if err := a.CheckIntegrity(); err != nil {
		t.Fatal(err)
	}
}

func TestDebugPublic(t *testing.T) {
	a := MustNew(Config{Debug: true, DebugQuarantine: -1})
	th := a.NewThread()
	p := th.Malloc(64)
	th.Bytes(p, 64)[63] = 1 // in bounds: fine
	th.Free(p)
	if st := a.Stats(); st.LiveBytes != 0 {
		t.Fatalf("LiveBytes = %d", st.LiveBytes)
	}
	// Overflow detection end to end.
	q := th.Malloc(16)
	func() {
		defer func() {
			if recover() == nil {
				t.Error("overflowing Bytes() did not panic")
			}
		}()
		th.Bytes(q, 17)
	}()
	th.Free(q)
	if err := a.CheckIntegrity(); err != nil {
		t.Fatal(err)
	}
}
