package core

import (
	"fmt"

	"hoardgo/internal/alloc"
	"hoardgo/internal/env"
	"hoardgo/internal/heap"
	"hoardgo/internal/superblock"
)

// This file implements alloc.BatchAllocator for Hoard. The batch protocol
// (DESIGN.md §8) amortizes the dominant per-operation cost — the
// per-processor heap lock — over a magazine's worth of blocks: MallocBatch
// carves up to n blocks under ONE heap-lock acquisition, and FreeBatch
// groups its pointers by owning superblock with a single page-table pass and
// frees each owner's groups under one acquisition of that owner's lock.

// MallocBatch implements alloc.BatchAllocator. It fills out[:n] with blocks
// of the given size and returns the count obtained (always min(n, len(out));
// the OS never refuses in this simulated space, so batches are only
// "partial" when capped by out).
//
// All n carves happen inside one critical section on the calling thread's
// heap: superblock searches, drains of remote-pending stacks, and pulls from
// the global heap (or the OS) happen in the same section, exactly as n
// back-to-back Mallocs would do — minus n-1 lock round-trips. Accounting is
// one sharded update for the whole batch.
func (h *Hoard) MallocBatch(t *alloc.Thread, size, n int, out []alloc.Ptr) int {
	if n > len(out) {
		n = len(out)
	}
	if n <= 0 {
		return 0
	}
	e := t.Env
	if size > h.classes.MaxSize() {
		// Large objects bypass superblocks and take no heap lock, so
		// there is nothing to amortize; serve them per-block.
		for i := 0; i < n; i++ {
			out[i] = h.mallocLarge(e, size)
		}
		return n
	}
	class, _ := h.classes.ClassFor(size)
	blockSize := h.classes.Size(class)
	hp := h.heaps[t.State.(*threadState).heapIdx]

	// Lock-free prefix: claim runs from the warm superblock and then the
	// warm ring (i == -1 is the warm slot), each with one CAS per candidate,
	// until the batch is full or the candidates run dry. Whatever the prefix
	// cannot serve (empty lists, contention, sealed) falls through to the
	// locked refill below.
	got := 0
	if !h.cfg.DisableLockFree {
		for i := -1; i < heap.WarmRingSize && got < n; i++ {
			var ref *superblock.Ref
			if i < 0 {
				ref = hp.Warm(class)
			} else {
				ref = hp.WarmAt(class, i)
			}
			if ref == nil || ref.BlockSize != blockSize {
				continue
			}
			k, retries := ref.TryPopRun(e, out[got:n])
			if retries > 0 {
				h.fastRetries.Add(int64(retries))
			}
			if k == 0 {
				continue
			}
			got += k
			h.lfMallocs.Add(int64(k))
			if i >= 0 {
				// A ring superblock is serving pops; make it the warm one
				// so per-block Mallocs find it first.
				hp.PromoteWarm(class, ref)
			}
			owner := ref.SB.OwnerID()
			h.heaps[owner].HintAdd(int64(k) * int64(blockSize))
			h.acct.OnMallocN(owner, k, int64(k)*int64(blockSize))
		}
	}

	if got < n {
		lockedStart := got
		env.LockWith(hp.Lock, e, "batch-refill")
		for ; got < n; got++ {
			p, ok := hp.AllocBlock(e, class)
			if !ok && hp.PendingHintBytes() > 0 {
				if hp.DrainAll(e) > 0 {
					h.remoteDrains.Add(1)
					p, ok = hp.AllocBlock(e, class)
				}
			}
			if !ok {
				e.Charge(env.OpMallocSlow, 1)
				// As in Malloc: recycle an owned empty superblock before
				// touching the global heap (no a(i) growth, no eviction).
				if sb := hp.ReuseEmpty(e, class, blockSize); sb != nil {
					h.localReuses.Add(1)
					p, ok = hp.AllocBlock(e, class)
					if !ok {
						panic("hoard: reused superblock has no free block")
					}
					out[got] = p
					continue
				}
				g := h.heaps[0]
				env.LockWith(g.Lock, e, "global-take")
				sb := g.TakeSuper(e, class, blockSize)
				if sb != nil {
					// As in Malloc: ownership transfer must be visible
					// before the global lock is released.
					hp.Insert(sb)
					h.globalHits.Add(1)
					e.Charge(env.OpSuperblockMove, 1)
				}
				g.Lock.Unlock(e)
				if sb == nil {
					e.Charge(env.OpOSAlloc, 1)
					sb = superblock.New(h.space, h.cfg.SuperblockSize, class, blockSize)
					h.osReserves.Add(1)
					hp.Insert(sb)
				}
				p, ok = hp.AllocBlock(e, class)
				if !ok {
					panic("hoard: fresh superblock has no free block")
				}
			}
			out[got] = p
		}
		if !h.cfg.DisableLockFree {
			// Same as Malloc's refill: the lock is already paid for, so
			// arm the warm ring for the misses that follow this batch.
			hp.ArmRing(e, class)
		}
		hp.Lock.Unlock(e)
		h.acct.OnMallocN(hp.ID, n-lockedStart, int64(n-lockedStart)*int64(blockSize))
	}

	// Per-block bookkeeping really happened; the batch op is a surcharge
	// for marshalling (see the charging discipline in internal/env).
	e.Charge(env.OpMallocBatch, 1)
	e.Charge(env.OpMallocFast, int64(n))
	h.batchRefills.Add(1)
	h.batchedBlocks.Add(int64(n))
	return n
}

// batchGroup is one owning superblock's share of a FreeBatch.
type batchGroup struct {
	sb *superblock.Superblock
	ps []alloc.Ptr
}

// FreeBatch implements alloc.BatchAllocator. One page-table pass resolves
// and groups every pointer by owning superblock (large objects are released
// inline); then each group is dispatched by the superblock's owner at that
// moment:
//
//   - foreign owner: the whole group is pushed onto the superblock's remote
//     stack with a single CAS (superblock.RemoteFreeBatch) and one
//     pending-hint update — no lock at all;
//   - own or global heap: every group still owned by that heap is freed
//     under ONE acquisition of its lock, with the emptiness invariant
//     restored once at the end (looping: a batch of B frees can demand up
//     to B evictions where a single free demands at most one).
//
// Ownership can change while we wait for a lock, so groups re-check under
// the lock and unclaimed groups retry the dispatch — the batch form of the
// per-block free protocol's re-check dance.
func (h *Hoard) FreeBatch(t *alloc.Thread, ps []alloc.Ptr) {
	e := t.Env
	myIdx := t.State.(*threadState).heapIdx

	// Pass 1: one Lookup per pointer; free large objects inline, group
	// small blocks by superblock. Groups are kept in first-seen order in a
	// slice (batches are magazine-sized; a deterministic linear scan beats
	// a map's randomized iteration for simulator reproducibility).
	var groups []batchGroup
	for _, p := range ps {
		if p.IsNil() {
			continue
		}
		sp := h.space.Lookup(uint64(p))
		if sp == nil {
			panic(fmt.Sprintf("hoard: free of unknown pointer %#x", uint64(p)))
		}
		switch owner := sp.Owner.(type) {
		case *largeObj:
			if uint64(p) != sp.Base {
				panic(fmt.Sprintf("hoard: free of interior large-object pointer %#x", uint64(p)))
			}
			h.acct.OnFree(0, owner.size)
			h.space.Release(sp)
			e.Charge(env.OpOSAlloc, 1)
			e.Charge(env.OpFree, 1)
		case *superblock.Superblock:
			found := false
			for i := range groups {
				if groups[i].sb == owner {
					groups[i].ps = append(groups[i].ps, p)
					found = true
					break
				}
			}
			if !found {
				groups = append(groups, batchGroup{sb: owner, ps: []alloc.Ptr{p}})
			}
		default:
			panic(fmt.Sprintf("hoard: free of foreign pointer %#x", uint64(p)))
		}
	}
	e.Charge(env.OpFreeBatch, 1)
	h.batchFlushes.Add(1)
	for _, g := range groups {
		h.batchedBlocks.Add(int64(len(g.ps)))
	}

	var fastBytes int64
	for len(groups) > 0 {
		// Dispatch remote groups lock-free; collect the rest.
		local := groups[:0]
		for _, g := range groups {
			if !h.cfg.DisableLockFree {
				// Lock-free fast path, whoever owns the superblock:
				// splice the whole group onto its free list with one
				// CAS. All-or-nothing — a sealed superblock (migrating,
				// evicting, decommitting) rejects the run and falls to
				// the remote or locked path below.
				ok, wasEmpty, retries := g.sb.FastFreeRun(e, g.ps)
				if retries > 0 {
					h.fastRetries.Add(int64(retries))
				}
				if ok {
					k := len(g.ps)
					bytes := int64(k) * int64(g.sb.BlockSize())
					h.lfFrees.Add(int64(k))
					owner := h.heaps[g.sb.OwnerID()]
					if owner.ID == myIdx {
						e.Charge(env.OpFree, int64(k))
					} else {
						e.Charge(env.OpRemoteFree, int64(k))
						h.remote.Add(int64(k))
						h.remoteFast.Add(int64(k))
					}
					owner.HintAdd(-bytes)
					h.acct.OnFreeN(owner.ID, k, bytes)
					_ = wasEmpty
					if owner.ID != 0 {
						owner.PublishWarm(g.sb.Class(), g.sb.SelfRef())
					}
					switch {
					case owner.ID == myIdx:
						fastBytes += bytes
					case owner.ID == 0:
						h.globalFastFreeEpilogue(e, g.sb)
					case owner.HintSuspectsViolation():
						h.confirmAndRestore(e, owner)
					}
					continue
				}
			}
			id := g.sb.OwnerID()
			if id != myIdx && id != 0 {
				h.freeBatchRemote(e, g)
				continue
			}
			local = append(local, g)
		}
		if len(local) == 0 {
			break
		}
		// Take the lock of the first local group's owner once and free
		// every group that heap still owns under it. Groups whose
		// ownership moved while we waited go around again.
		id := local[0].sb.OwnerID()
		groups = h.freeBatchLocked(e, h.heaps[id], local)
		if len(groups) == len(local) {
			// The lock bought us nothing (ownership raced away
			// before we acquired it); account the wasted pass like
			// the per-block retry does.
			e.Charge(env.OpListScan, 1)
		}
	}
	if fastBytes > 0 {
		// The lock-free groups bypassed the invariant check; the hint
		// decides (cheaply, racily) whether to take the slow path once for
		// the whole batch — the batch form of the per-block fast free.
		if hp := h.heaps[myIdx]; hp.ID != 0 && hp.HintSuspectsViolation() {
			h.confirmAndRestore(e, hp)
		}
	}
}

// freeBatchRemote pushes one owner-group onto its superblock's remote stack:
// a single CAS for the whole group, one pending-hint update, one accounting
// update, and the same opportunistic drain nudges as the per-block fast
// path. Valid whatever ownership does concurrently — whichever heap owns
// the superblock when the stack drains absorbs the frees.
func (h *Hoard) freeBatchRemote(e env.Env, g batchGroup) {
	nblk := len(g.ps)
	blockSize := g.sb.BlockSize()
	h.remote.Add(int64(nblk))
	h.remoteFast.Add(int64(nblk))
	pending := g.sb.RemoteFreeBatch(e, g.ps)
	owner := h.heaps[g.sb.OwnerID()]
	owner.NoteRemotePush(int64(nblk) * int64(blockSize))
	h.acct.OnFreeN(owner.ID, nblk, int64(nblk)*int64(blockSize))
	if pending >= g.sb.RemoteDrainThreshold() ||
		owner.PendingHintBytes() >= int64(h.cfg.SuperblockSize/2) {
		h.tryDrainOwner(e, owner)
	}
}

// freeBatchLocked acquires hp's lock once, frees every group still owned by
// hp, restores the emptiness invariant (once, at the end), and returns the
// groups whose ownership had moved elsewhere. The lock is released before
// returning; the single accounting update happens outside the critical
// section, as on the per-block path.
func (h *Hoard) freeBatchLocked(e env.Env, hp *heap.Heap, groups []batchGroup) (missed []batchGroup) {
	var nblk int
	var bytes int64
	env.LockWith(hp.Lock, e, "batch-free")
	for _, g := range groups {
		if g.sb.OwnerID() != hp.ID {
			missed = append(missed, g)
			continue
		}
		if hp.FreeBlocks(e, g.sb, g.ps) > 0 {
			h.remoteDrains.Add(1)
		}
		e.Charge(env.OpFree, int64(len(g.ps)))
		nblk += len(g.ps)
		bytes += int64(len(g.ps)) * int64(g.sb.BlockSize())
		if hp.ID == 0 {
			h.remote.Add(int64(len(g.ps)))
			if !h.releaseGlobalEmpty(e, hp, g.sb) {
				// Still parked: this batch touched it, refresh the
				// scavenger's cold-age stamp as the per-block path does.
				g.sb.SetParkedAt(h.clock())
			}
		}
	}
	if hp.ID != 0 && nblk > 0 {
		if hp.InvariantViolatedDiscounted() && hp.PendingHintBytes() > 0 {
			if hp.DrainAll(e) > 0 {
				h.remoteDrains.Add(1)
			}
		}
		// A batch of B frees can push the heap up to B blocks past the
		// invariant; keep evicting until it holds (or no superblock
		// qualifies — the benign all-full capacity-waste state).
		for hp.InvariantViolated() && h.restoreInvariant(e, hp) {
		}
	}
	hp.Lock.Unlock(e)
	if nblk > 0 {
		h.acct.OnFreeN(hp.ID, nblk, bytes)
	}
	return missed
}
