package alloc

import (
	"fmt"

	"hoardgo/internal/env"
	"hoardgo/internal/vm"
)

// LargeObj tags a span holding a single large object (one bigger than the
// allocator's largest size class). Every allocator here uses the same
// large-object policy the paper describes for Hoard: large objects come
// straight from the OS and return to it on free.
type LargeObj struct {
	// Size is the object's usable size (the page-rounded span length).
	Size int
}

// MallocLarge reserves a large object from the OS, records it against acct,
// and returns its address.
func MallocLarge(space vm.Backend, acct *Accounting, e env.Env, size int) Ptr {
	lo := &LargeObj{}
	sp := space.Reserve(size, vm.PageSize, lo)
	lo.Size = sp.Len
	e.Charge(env.OpOSAlloc, 1)
	e.Charge(env.OpMallocSlow, 1)
	acct.OnLarge()
	acct.OnMalloc(sp.Len)
	return Ptr(sp.Base)
}

// FreeLarge returns a large object's span to the OS. p must be the span's
// base address.
func FreeLarge(space vm.Backend, acct *Accounting, e env.Env, name string, sp *vm.Span, p Ptr) {
	if uint64(p) != sp.Base {
		panic(fmt.Sprintf("%s: free of interior large-object pointer %#x", name, uint64(p)))
	}
	acct.OnFree(sp.Owner.(*LargeObj).Size)
	space.Release(sp)
	e.Charge(env.OpOSAlloc, 1)
	e.Charge(env.OpFree, 1)
}
