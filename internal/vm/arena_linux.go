//go:build linux && (amd64 || arm64)

package vm

import (
	"fmt"
	"math/bits"
	"sync"
	"sync/atomic"
	"syscall"
	"unsafe"
)

// Default arena geometry. Virtual-only: nothing is committed until reserved,
// so the cost of a big reservation is a few MiB of index tables, not memory.
const (
	// DefaultArenaSpanSize is the slot size of the superblock region — the
	// paper's S = 8 KiB.
	DefaultArenaSpanSize = 8192
	// DefaultSlotRegionBytes is the virtual size of the superblock slot
	// region (1 GiB = 131072 default-size superblocks).
	DefaultSlotRegionBytes = 1 << 30
	// DefaultLargeRegionBytes is the virtual size of the large-object
	// region.
	DefaultLargeRegionBytes = 512 << 20
)

// Arena is the real-memory Backend: one large mmap'd virtual reservation,
// split into a slot region of SpanSize superblock slots and a large region
// for variable-size spans.
//
// The reservation is mapped PROT_NONE with MAP_NORESERVE, so it consumes
// address space only. Reserve commits its span with mprotect(PROT_READ|
// PROT_WRITE) — physical pages arrive on first touch — and Span.Decommit
// issues a real madvise(MADV_DONTNEED), so pages the scavenger releases
// genuinely leave the process RSS and read back as zeros if re-touched.
//
// Resolution is address arithmetic: a span address in the slot region
// resolves with one subtract, one shift, and one atomic slot load — no page
// table walk, and slot spans need no bounds re-check because a slot holds
// exactly one span. Addresses in the large region fall back to a flat
// page-indexed table (still a single load, just page- instead of
// slot-granular).
type Arena struct {
	counters

	mu sync.Mutex

	mem []byte // the raw reservation; unmapped by Close

	base      uint64 // SpanSize-aligned start of the slot region
	slotLen   uint64 // byte length of the slot region
	spanSize  int
	spanShift uint
	nSlots    int

	largeBase uint64
	largeEnd  uint64

	slots      []atomic.Pointer[Span] // one per slot
	largePages []atomic.Pointer[Span] // one per page of the large region

	nextSlot  int
	slotFree  []*Span // released slot spans, for reuse
	largeNext uint64
	largePool map[int][]*Span // released large spans by length

	closed bool
}

// NewArena maps the virtual reservation and returns the arena backend. It
// returns an error (never panics) if the platform refuses the mapping —
// callers degrade to the simulated backend.
func NewArena(opts ArenaOptions) (Backend, error) {
	o := opts
	if o.SpanSize == 0 {
		o.SpanSize = DefaultArenaSpanSize
	}
	if o.SlotRegionBytes == 0 {
		o.SlotRegionBytes = DefaultSlotRegionBytes
	}
	if o.LargeRegionBytes == 0 {
		o.LargeRegionBytes = DefaultLargeRegionBytes
	}
	if o.SpanSize < PageSize || o.SpanSize&(o.SpanSize-1) != 0 {
		return nil, fmt.Errorf("vm: arena span size %d must be a power of two ≥ %d", o.SpanSize, PageSize)
	}
	ss := int64(o.SpanSize)
	o.SlotRegionBytes = (o.SlotRegionBytes + ss - 1) / ss * ss
	o.LargeRegionBytes = (o.LargeRegionBytes + ss - 1) / ss * ss
	total := o.SlotRegionBytes + o.LargeRegionBytes + ss // slack to align the base
	if total > 1<<46 {
		return nil, fmt.Errorf("vm: arena reservation %d bytes too large", total)
	}

	mem, err := syscall.Mmap(-1, 0, int(total),
		syscall.PROT_NONE,
		syscall.MAP_PRIVATE|syscall.MAP_ANON|syscall.MAP_NORESERVE)
	if err != nil {
		return nil, fmt.Errorf("vm: arena reservation of %d bytes: %w", total, err)
	}

	raw := uint64(uintptr(unsafe.Pointer(&mem[0])))
	base := (raw + uint64(ss) - 1) &^ (uint64(ss) - 1)
	a := &Arena{
		mem:       mem,
		base:      base,
		slotLen:   uint64(o.SlotRegionBytes),
		spanSize:  o.SpanSize,
		spanShift: uint(bits.TrailingZeros64(uint64(o.SpanSize))),
		nSlots:    int(o.SlotRegionBytes / ss),
		largeBase: base + uint64(o.SlotRegionBytes),
		largeEnd:  base + uint64(o.SlotRegionBytes) + uint64(o.LargeRegionBytes),
		largePool: make(map[int][]*Span),
	}
	a.slots = make([]atomic.Pointer[Span], a.nSlots)
	a.largePages = make([]atomic.Pointer[Span], o.LargeRegionBytes>>PageShift)
	a.largeNext = a.largeBase
	return a, nil
}

// Name identifies the arena backend.
func (a *Arena) Name() string { return "arena" }

// SetPoison is a no-op on the arena: the OS guarantees decommitted pages
// read back as zeros, which is the property the simulated backend's poison
// patterns exist to emulate.
func (a *Arena) SetPoison(on bool) {}

// Reserve returns a committed span of size bytes aligned to align.
// Reservations of exactly the arena's span size land in the slot region and
// resolve by pure arithmetic; everything else goes to the large region.
// Reserve panics if the region is exhausted — the virtual reservation is
// fixed at NewArena time.
func (a *Arena) Reserve(size, align int, owner any) *Span {
	size, align = checkReserve(size, align)

	a.mu.Lock()
	if a.closed {
		a.mu.Unlock()
		panic("vm: Reserve on closed arena")
	}
	var sp *Span
	if size == a.spanSize && align <= a.spanSize {
		sp = a.reserveSlotLocked()
	} else {
		sp = a.reserveLargeLocked(size, align)
	}
	sp.Owner = owner
	a.publishLocked(sp)
	a.mu.Unlock()

	a.reserves.Add(1)
	a.addReserved(int64(size))
	a.addCommitted(int64(size))
	return sp
}

func (a *Arena) reserveSlotLocked() *Span {
	if n := len(a.slotFree); n > 0 {
		sp := a.slotFree[n-1]
		a.slotFree = a.slotFree[:n-1]
		a.recycled.Add(1)
		return sp
	}
	if a.nextSlot >= a.nSlots {
		panic(fmt.Sprintf("vm: arena slot region exhausted (%d spans of %d bytes)", a.nSlots, a.spanSize))
	}
	i := a.nextSlot
	a.nextSlot++
	base := a.base + uint64(i)<<a.spanShift
	return &Span{Base: base, Len: a.spanSize, data: a.commit(base, a.spanSize), host: a}
}

func (a *Arena) reserveLargeLocked(size, align int) *Span {
	list := a.largePool[size]
	for i, sp := range list {
		if sp.Base&(uint64(align)-1) == 0 {
			list[i] = list[len(list)-1]
			a.largePool[size] = list[:len(list)-1]
			a.recycled.Add(1)
			return sp
		}
	}
	base := (a.largeNext + uint64(align) - 1) &^ (uint64(align) - 1)
	if base < a.largeBase || base+uint64(size) > a.largeEnd {
		panic(fmt.Sprintf("vm: arena large region exhausted (want %d bytes)", size))
	}
	a.largeNext = base + uint64(size)
	return &Span{Base: base, Len: size, data: a.commit(base, size), host: a}
}

// commit makes [base, base+n) readable and writable. Physical pages arrive
// lazily on first touch; the committed counters are maintained by the
// caller.
func (a *Arena) commit(base uint64, n int) []byte {
	off := int(base - a.memBase())
	seg := a.mem[off : off+n : off+n]
	if err := syscall.Mprotect(seg, syscall.PROT_READ|syscall.PROT_WRITE); err != nil {
		panic(fmt.Sprintf("vm: mprotect(%#x, %d): %v", base, n, err))
	}
	return seg
}

func (a *Arena) memBase() uint64 {
	return uint64(uintptr(unsafe.Pointer(&a.mem[0])))
}

// madvise returns the physical pages of [base, base+n) to the OS. The
// mapping stays intact and writable; the next touch faults in a zero page.
func (a *Arena) madvise(base uint64, n int) {
	off := int(base - a.memBase())
	if err := syscall.Madvise(a.mem[off:off+n], syscall.MADV_DONTNEED); err != nil {
		panic(fmt.Sprintf("vm: madvise(%#x, %d, DONTNEED): %v", base, n, err))
	}
}

// Release returns a span to the arena. Its physical pages go back to the OS
// immediately (madvise), its addresses stop resolving, and the span is
// pooled for reuse by the next Reserve of the same size.
func (a *Arena) Release(sp *Span) {
	if sp == nil {
		panic("vm: Release(nil)")
	}
	a.mu.Lock()
	a.unpublishLocked(sp)
	sp.Owner = nil
	backed := int64(sp.Len) - resetDecommitState(sp, &a.counters)
	a.madvise(sp.Base, sp.Len)
	if a.isSlot(sp.Base) {
		a.slotFree = append(a.slotFree, sp)
	} else {
		a.largePool[sp.Len] = append(a.largePool[sp.Len], sp)
	}
	a.mu.Unlock()

	a.releases.Add(1)
	a.reserved.Add(int64(-sp.Len))
	a.committed.Add(-backed)
}

func (a *Arena) isSlot(addr uint64) bool { return addr-a.base < a.slotLen }

func (a *Arena) publishLocked(sp *Span) {
	if a.isSlot(sp.Base) {
		a.slots[(sp.Base-a.base)>>a.spanShift].Store(sp)
		return
	}
	for addr := sp.Base; addr < sp.End(); addr += PageSize {
		a.largePages[(addr-a.largeBase)>>PageShift].Store(sp)
	}
}

func (a *Arena) unpublishLocked(sp *Span) {
	if a.isSlot(sp.Base) {
		a.slots[(sp.Base-a.base)>>a.spanShift].Store(nil)
		return
	}
	for addr := sp.Base; addr < sp.End(); addr += PageSize {
		a.largePages[(addr-a.largeBase)>>PageShift].Store(nil)
	}
}

// Lookup resolves addr to its live span by address arithmetic: in the slot
// region it is one subtract, one shift, and one atomic load, with no bounds
// re-check because a slot holds exactly one span of exactly the slot size.
// It is lock-free and safe for concurrent use.
func (a *Arena) Lookup(addr uint64) *Span {
	if off := addr - a.base; off < a.slotLen {
		return a.slots[off>>a.spanShift].Load()
	}
	if addr >= a.largeBase && addr < a.largeEnd {
		sp := a.largePages[(addr-a.largeBase)>>PageShift].Load()
		if sp == nil || addr < sp.Base || addr >= sp.End() {
			return nil
		}
		return sp
	}
	return nil
}

// Bytes returns a view of n bytes of backing memory at addr, panicking if
// the range is not fully inside one live span.
func (a *Arena) Bytes(addr uint64, n int) []byte {
	return backendBytes(a, addr, n)
}

// Close unmaps the reservation. Every span obtained from the arena is
// invalid afterwards — Close must only run once the owning allocator is
// quiescent. It is idempotent.
func (a *Arena) Close() error {
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.closed {
		return nil
	}
	a.closed = true
	mem := a.mem
	a.mem = nil
	a.slots, a.largePages = nil, nil
	a.slotFree, a.largePool = nil, nil
	return syscall.Munmap(mem)
}

// spanHost hooks: decommit is a real madvise; recommit is free because the
// kernel zero-fills on the next touch.

func (a *Arena) spanMu() *sync.Mutex { return &a.mu }
func (a *Arena) counts() *counters   { return &a.counters }

func (a *Arena) dropPages(sp *Span, off, n int) {
	a.madvise(sp.Base+uint64(off), n)
}

func (a *Arena) backPages(sp *Span, off, n int) {}
