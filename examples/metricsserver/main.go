// Metricsserver is a live Prometheus scrape target: a handful of worker
// goroutines churn allocations in producer-consumer rounds while the
// background scavenger trims the global heap, and the allocator's metrics —
// footprint vs reserved, decommitted bytes, scavenge passes, per-heap
// occupancy — are served on /metrics for `curl` or a real Prometheus to
// watch. Point a scraper at it and graph hoard_footprint_bytes against
// hoard_reserved_bytes to see the scavenger breathe.
//
//	go run ./examples/metricsserver -addr :8080 &
//	watch -n1 'curl -s localhost:8080/metrics | grep -E "footprint|decommitted"'
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"sync"
	"time"

	hoard "hoardgo"
)

func main() {
	addr := flag.String("addr", "localhost:8080", "listen address for /metrics")
	workers := flag.Int("workers", 4, "churn goroutines")
	duration := flag.Duration("duration", 0, "stop after this long (0 = run forever)")
	flag.Parse()

	a := hoard.MustNew(hoard.Config{
		Procs:   *workers,
		Metrics: true,
		Scavenge: hoard.ScavengeConfig{
			Enabled:  true,
			ColdAge:  250 * time.Millisecond,
			Interval: 50 * time.Millisecond,
		},
	})

	http.Handle("/metrics", a.MetricsHandler())
	go func() { log.Fatal(http.ListenAndServe(*addr, nil)) }()
	fmt.Printf("serving metrics on http://%s/metrics\n", *addr)

	// Phased churn: each worker builds up a working set, holds it, then
	// drops it — so the global heap oscillates between loaded and empty and
	// the scavenger has something to do.
	stop := make(chan struct{})
	if *duration > 0 {
		time.AfterFunc(*duration, func() { close(stop) })
	}
	var wg sync.WaitGroup
	for w := 0; w < *workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			th := a.NewThread()
			ps := make([]hoard.Ptr, 0, 4096)
			for {
				select {
				case <-stop:
					for _, p := range ps {
						th.Free(p)
					}
					return
				default:
				}
				for i := 0; i < 4096; i++ {
					p := th.Malloc(64 + i%960)
					th.Bytes(p, 8)[0] = byte(w)
					ps = append(ps, p)
				}
				time.Sleep(200 * time.Millisecond)
				for _, p := range ps {
					th.Free(p)
				}
				ps = ps[:0]
				time.Sleep(800 * time.Millisecond)
			}
		}(w)
	}
	wg.Wait()

	st := a.StopScavenger()
	fmt.Printf("scavenger: %d passes, %d bytes released, %d backoffs\n",
		st.Passes, st.ReleasedBytes, st.Backoffs)
	s := a.Stats()
	fmt.Printf("final: footprint %d B, reserved %d B, decommitted %d B\n",
		s.FootprintBytes, s.ReservedBytes, s.DecommittedBytes)
}
