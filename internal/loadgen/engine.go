package loadgen

import (
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	hoard "hoardgo"
)

// Config configures the serving engine.
type Config struct {
	// Allocator is the allocator under test. The engine registers its own
	// worker Threads and retires every one of them; it does not Close the
	// allocator (the caller may still want to scrape or inspect it).
	Allocator *hoard.Allocator
	// Workers is the number of serving goroutines (default 4), each with
	// its own Thread.
	Workers int
	// Slots is the working-set table size (default 4096): each request's
	// key maps to a slot, the new response buffer replaces the slot's old
	// occupant, and the evicted buffer is freed by whichever worker
	// evicted it — usually not the one that allocated it, so the steady
	// state is full of the cross-thread frees Hoard exists to handle. Key
	// skew becomes lifetime skew: hot slots churn in milliseconds, cold
	// slots pin their blocks for the whole run.
	Slots int
	// QueueDepth bounds the listener→worker queue (default 1024). The
	// listener never blocks on it: when the queue is full the request is
	// dropped and counted, the way an overloaded server sheds load.
	QueueDepth int
	// Seed makes the request stream (keys, sizes, ordering) deterministic.
	// Wall-clock timing still varies run to run; the work does not.
	Seed int64
	// SampleEvery is the footprint/contention timeline cadence (default
	// 20ms).
	SampleEvery time.Duration
}

// request is one unit of work on the listener→worker queue.
type request struct {
	key  int64
	size int   // 0 means drain: free the slot, allocate nothing
	born int64 // UnixNano at enqueue; end-to-end latency starts here
}

// slotEntry is one working-set slot. The mutex is per-slot, so slot
// collisions — not the table — are the only serialization between workers.
type slotEntry struct {
	mu sync.Mutex
	p  hoard.Ptr
}

// phaseHists collects one phase's measurements. Workers resolve the
// current phase through an atomic pointer; a request enqueued in one phase
// is always measured in it because the listener waits for the queue to
// settle before swapping.
type phaseHists struct {
	name    string
	malloc  Hist // ns per Thread.Malloc
	free    Hist // ns per Thread.Free of an evicted block
	request Hist // ns from enqueue to completion
	done    atomic.Int64
}

// TimelinePoint is one sample of the allocator's state during the run.
type TimelinePoint struct {
	TMS            int64  `json:"t_ms"`
	Phase          string `json:"phase"`
	FootprintBytes int64  `json:"footprint_bytes"`
	LiveBytes      int64  `json:"live_bytes"`
	CachedBytes    int64  `json:"cached_bytes"`
	// LockContended and LockWaitNS are cumulative over all instrumented
	// locks; zero when the allocator was built without Config.Metrics.
	LockContended int64 `json:"lock_contended"`
	LockWaitNS    int64 `json:"lock_wait_ns"`
}

// PhaseResult is one phase's measurements.
type PhaseResult struct {
	Name     string      `json:"name"`
	Requests int64       `json:"requests"`
	Dropped  int64       `json:"dropped"`
	Malloc   HistSummary `json:"malloc_ns"`
	Free     HistSummary `json:"free_ns"`
	Request  HistSummary `json:"request_ns"`
	// EndFootprintBytes and EndLiveBytes snapshot the allocator as the
	// phase's queue settled — the memory state the next phase inherits.
	EndFootprintBytes int64 `json:"end_footprint_bytes"`
	EndLiveBytes      int64 `json:"end_live_bytes"`
}

// LockSummary is one instrumented lock's counters at the end of the run.
type LockSummary struct {
	Name      string `json:"name"`
	Acquires  int64  `json:"acquires"`
	Contended int64  `json:"contended"`
	WaitNS    int64  `json:"wait_ns"`
	HoldNS    int64  `json:"hold_ns"`
}

// Result is the engine's full report.
type Result struct {
	Phases    []PhaseResult   `json:"phases"`
	Timeline  []TimelinePoint `json:"timeline"`
	Locks     []LockSummary   `json:"locks,omitempty"`
	Requests  int64           `json:"requests"`
	Dropped   int64           `json:"dropped"`
	ElapsedNS int64           `json:"elapsed_ns"`
	// FinalLiveBytes and FinalCachedBytes are the leak check: after the
	// final sweep and every Thread.Close, both must be zero — Run errors
	// otherwise.
	FinalLiveBytes   int64 `json:"final_live_bytes"`
	FinalCachedBytes int64 `json:"final_cached_bytes"`
}

// Run plays the phases through the serving pipeline: a listener goroutine
// paces requests onto a bounded queue by the wall clock, workers serve them
// against the shared working set, and a sampler records the footprint and
// contention timeline. On return every worker Thread has been Closed, the
// working set swept, and the allocator verified drained (live == 0,
// cached == 0, integrity clean) — the engine is itself a lifecycle
// regression test that runs on every benchmark.
func Run(cfg Config, phases []Phase) (Result, error) {
	if cfg.Allocator == nil {
		return Result{}, fmt.Errorf("loadgen: Config.Allocator is nil")
	}
	if len(phases) == 0 {
		return Result{}, fmt.Errorf("loadgen: no phases")
	}
	if cfg.Workers <= 0 {
		cfg.Workers = 4
	}
	if cfg.Slots <= 0 {
		cfg.Slots = 4096
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 1024
	}
	if cfg.SampleEvery <= 0 {
		cfg.SampleEvery = 20 * time.Millisecond
	}

	a := cfg.Allocator
	slots := make([]slotEntry, cfg.Slots)
	queue := make(chan request, cfg.QueueDepth)
	var cur atomic.Pointer[phaseHists]
	cur.Store(&phaseHists{name: phases[0].Name})

	var wg sync.WaitGroup
	for w := 0; w < cfg.Workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			th := a.NewThread()
			defer th.Close()
			for req := range queue {
				ph := cur.Load()
				slot := &slots[req.key%int64(len(slots))]
				var old hoard.Ptr
				if req.size > 0 {
					t0 := time.Now()
					p := th.Malloc(req.size)
					ph.malloc.Record(time.Since(t0).Nanoseconds())
					// Touch the response the way a handler fills one.
					n := req.size
					if n > 64 {
						n = 64
					}
					buf := th.Bytes(p, n)
					for i := range buf {
						buf[i] = byte(req.key)
					}
					slot.mu.Lock()
					old = slot.p
					slot.p = p
					slot.mu.Unlock()
				} else {
					slot.mu.Lock()
					old = slot.p
					slot.p = 0
					slot.mu.Unlock()
				}
				if !old.IsNil() {
					t0 := time.Now()
					th.Free(old)
					ph.free.Record(time.Since(t0).Nanoseconds())
				}
				ph.request.Record(time.Now().UnixNano() - req.born)
				ph.done.Add(1)
			}
		}()
	}

	// Sampler: the footprint and contention timeline.
	var (
		timelineMu sync.Mutex
		timeline   []TimelinePoint
	)
	start := time.Now()
	samplerDone := make(chan struct{})
	samplerExit := make(chan struct{})
	go func() {
		defer close(samplerExit)
		tick := time.NewTicker(cfg.SampleEvery)
		defer tick.Stop()
		for {
			select {
			case <-samplerDone:
				return
			case <-tick.C:
				st := a.Stats()
				pt := TimelinePoint{
					TMS:            time.Since(start).Milliseconds(),
					Phase:          cur.Load().name,
					FootprintBytes: st.FootprintBytes,
					LiveBytes:      st.LiveBytes,
					// MagazineBytes, not CachedBytes: the exact gauge
					// needs quiescence, this one is safe mid-load.
					CachedBytes: a.MagazineBytes(),
				}
				for _, ls := range a.LockStats() {
					pt.LockContended += ls.Contended
					pt.LockWaitNS += ls.WaitNS
				}
				timelineMu.Lock()
				timeline = append(timeline, pt)
				timelineMu.Unlock()
			}
		}
	}()

	// Listener: open-loop arrival pacing, phase by phase.
	rng := rand.New(rand.NewSource(cfg.Seed))
	var res Result
	for i := range phases {
		ph := &phases[i]
		hists := &phaseHists{name: ph.Name}
		cur.Store(hists)
		var sent, dropped int64
		shifted := false
		phaseStart := time.Now()
		next := phaseStart
		for {
			now := time.Now()
			x := float64(now.Sub(phaseStart)) / float64(ph.Duration)
			if x >= 1 {
				break
			}
			if !shifted && ph.ShiftAt > 0 && x >= ph.ShiftAt {
				if hs, ok := ph.Keys.(*Hotspot); ok {
					hs.Shift(ph.Shift)
				}
				shifted = true
			}
			req := request{key: ph.Keys.Next(rng), born: now.UnixNano()}
			if !ph.Drain {
				req.size = ph.Sizes.Next(rng)
			}
			select {
			case queue <- req:
				sent++
			default:
				dropped++
			}
			next = next.Add(time.Duration(1e9 / ph.rateAt(x)))
			if d := time.Until(next); d > 0 {
				time.Sleep(d)
			} else if next.Before(now.Add(-50 * time.Millisecond)) {
				// Hopelessly behind the curve (the box can't source this
				// rate): resynchronize instead of bursting forever.
				next = now
			}
		}
		// Let the phase's queue settle so measurements attribute cleanly.
		for hists.done.Load() < sent {
			time.Sleep(time.Millisecond)
		}
		st := a.Stats()
		res.Phases = append(res.Phases, PhaseResult{
			Name:              ph.Name,
			Requests:          sent,
			Dropped:           dropped,
			Malloc:            hists.malloc.Summary(),
			Free:              hists.free.Summary(),
			Request:           hists.request.Summary(),
			EndFootprintBytes: st.FootprintBytes,
			EndLiveBytes:      st.LiveBytes,
		})
		res.Requests += sent
		res.Dropped += dropped
	}

	close(queue)
	wg.Wait()
	close(samplerDone)
	<-samplerExit

	// Final sweep: whatever the working set still pins is freed here, and
	// the sweeping thread retires too.
	sweeper := a.NewThread()
	for i := range slots {
		if p := slots[i].p; !p.IsNil() {
			sweeper.Free(p)
			slots[i].p = 0
		}
	}
	sweeper.Close()

	res.ElapsedNS = time.Since(start).Nanoseconds()
	st := a.Stats()
	res.FinalLiveBytes = st.LiveBytes
	res.FinalCachedBytes = a.CachedBytes()
	for _, ls := range a.LockStats() {
		res.Locks = append(res.Locks, LockSummary{
			Name:      ls.Name,
			Acquires:  ls.Acquires,
			Contended: ls.Contended,
			WaitNS:    ls.WaitNS,
			HoldNS:    ls.HoldNS,
		})
	}
	timelineMu.Lock()
	res.Timeline = timeline
	timelineMu.Unlock()

	if res.FinalLiveBytes != 0 {
		return res, fmt.Errorf("loadgen: %d bytes still live after drain — the workload leaked", res.FinalLiveBytes)
	}
	if res.FinalCachedBytes != 0 {
		return res, fmt.Errorf("loadgen: %d bytes stranded in thread caches after drain — a Thread was not Closed", res.FinalCachedBytes)
	}
	if err := a.CheckIntegrity(); err != nil {
		return res, fmt.Errorf("loadgen: post-run integrity: %w", err)
	}
	return res, nil
}
