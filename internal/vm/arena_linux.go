//go:build linux && (amd64 || arm64)

package vm

import (
	"fmt"
	"math/bits"
	"sync"
	"sync/atomic"
	"syscall"
	"unsafe"
)

// Default arena geometry. Virtual-only: nothing is committed until reserved,
// so the cost of a big reservation is a few MiB of index tables, not memory.
const (
	// DefaultArenaSpanSize is the slot size of the superblock region — the
	// paper's S = 8 KiB.
	DefaultArenaSpanSize = 8192
	// DefaultSlotRegionBytes is the virtual size of the superblock slot
	// region (1 GiB = 131072 default-size superblocks).
	DefaultSlotRegionBytes = 1 << 30
	// DefaultLargeRegionBytes is the virtual size of the large-object
	// region.
	DefaultLargeRegionBytes = 512 << 20
	// DefaultGrowBytes is the virtual size of each extension mapping added
	// when the initial reservation runs out.
	DefaultGrowBytes = 64 << 20
)

// Arena is the real-memory Backend: one large mmap'd virtual reservation,
// split into a slot region of SpanSize superblock slots and a large region
// for variable-size spans.
//
// The reservation is mapped PROT_NONE with MAP_NORESERVE, so it consumes
// address space only. Reserve commits its span with mprotect(PROT_READ|
// PROT_WRITE) — physical pages arrive on first touch — and Span.Decommit
// issues a real madvise(MADV_DONTNEED), so pages the scavenger releases
// genuinely leave the process RSS and read back as zeros if re-touched.
//
// Resolution is address arithmetic: a span address in the slot region
// resolves with one subtract, one shift, and one atomic slot load — no page
// table walk, and slot spans need no bounds re-check because a slot holds
// exactly one span. Addresses in the large region fall back to a flat
// page-indexed table (still a single load, just page- instead of
// slot-granular).
//
// Exhausting the initial reservation grows the arena rather than panicking:
// slot-region exhaustion degrades superblock reserves to the (slower,
// page-table-resolved) large path, and large-region exhaustion mmaps
// GrowBytes-sized extension regions. Extensions live in a copy-on-write
// slice consulted lock-free by Lookup, so the hot resolution paths pay one
// extra nil-check and nothing else until growth actually happens.
type Arena struct {
	counters

	mu sync.Mutex

	mem []byte // the raw reservation; unmapped by Close

	base      uint64 // SpanSize-aligned start of the slot region
	slotLen   uint64 // byte length of the slot region
	spanSize  int
	spanShift uint
	nSlots    int

	largeBase uint64
	largeEnd  uint64

	slots      []atomic.Pointer[Span] // one per slot
	largePages []atomic.Pointer[Span] // one per page of the large region

	nextSlot  int
	slotFree  []*Span // released slot spans, for reuse
	largeNext uint64
	largePool map[int][]*Span // released large spans by length

	growBytes int64
	// exts is the copy-on-write extension-region list: appended under mu,
	// read lock-free by Lookup.
	exts atomic.Pointer[[]*extRegion]

	closed bool
}

// extRegion is one extension mapping added after the initial reservation ran
// out: its own mmap, its own page-indexed span table, its own bump cursor.
type extRegion struct {
	mem   []byte
	base  uint64 // SpanSize-aligned usable start
	end   uint64
	next  uint64 // bump cursor; guarded by Arena.mu
	pages []atomic.Pointer[Span]
}

// NewArena maps the virtual reservation and returns the arena backend. It
// returns an error (never panics) if the platform refuses the mapping —
// callers degrade to the simulated backend.
func NewArena(opts ArenaOptions) (Backend, error) {
	o := opts
	if o.SpanSize == 0 {
		o.SpanSize = DefaultArenaSpanSize
	}
	if o.SlotRegionBytes == 0 {
		o.SlotRegionBytes = DefaultSlotRegionBytes
	}
	if o.LargeRegionBytes == 0 {
		o.LargeRegionBytes = DefaultLargeRegionBytes
	}
	if o.GrowBytes == 0 {
		o.GrowBytes = DefaultGrowBytes
	}
	if o.SpanSize < PageSize || o.SpanSize&(o.SpanSize-1) != 0 {
		return nil, fmt.Errorf("vm: arena span size %d must be a power of two ≥ %d", o.SpanSize, PageSize)
	}
	ss := int64(o.SpanSize)
	o.SlotRegionBytes = (o.SlotRegionBytes + ss - 1) / ss * ss
	o.LargeRegionBytes = (o.LargeRegionBytes + ss - 1) / ss * ss
	o.GrowBytes = (o.GrowBytes + ss - 1) / ss * ss
	total := o.SlotRegionBytes + o.LargeRegionBytes + ss // slack to align the base
	if total > 1<<46 {
		return nil, fmt.Errorf("vm: arena reservation %d bytes too large", total)
	}

	mem, err := syscall.Mmap(-1, 0, int(total),
		syscall.PROT_NONE,
		syscall.MAP_PRIVATE|syscall.MAP_ANON|syscall.MAP_NORESERVE)
	if err != nil {
		return nil, fmt.Errorf("vm: arena reservation of %d bytes: %w", total, err)
	}

	raw := uint64(uintptr(unsafe.Pointer(&mem[0])))
	base := (raw + uint64(ss) - 1) &^ (uint64(ss) - 1)
	a := &Arena{
		mem:       mem,
		base:      base,
		slotLen:   uint64(o.SlotRegionBytes),
		spanSize:  o.SpanSize,
		spanShift: uint(bits.TrailingZeros64(uint64(o.SpanSize))),
		nSlots:    int(o.SlotRegionBytes / ss),
		largeBase: base + uint64(o.SlotRegionBytes),
		largeEnd:  base + uint64(o.SlotRegionBytes) + uint64(o.LargeRegionBytes),
		largePool: make(map[int][]*Span),
		growBytes: o.GrowBytes,
	}
	a.slots = make([]atomic.Pointer[Span], a.nSlots)
	a.largePages = make([]atomic.Pointer[Span], o.LargeRegionBytes>>PageShift)
	a.largeNext = a.largeBase
	return a, nil
}

// Name identifies the arena backend.
func (a *Arena) Name() string { return "arena" }

// SetPoison is a no-op on the arena: the OS guarantees decommitted pages
// read back as zeros, which is the property the simulated backend's poison
// patterns exist to emulate.
func (a *Arena) SetPoison(on bool) {}

// Reserve returns a committed span of size bytes aligned to align.
// Reservations of exactly the arena's span size land in the slot region and
// resolve by pure arithmetic; everything else goes to the large region.
// Exhausting either region grows the arena (slot reserves degrade to the
// large path; the large path maps extension regions) — Reserve only panics
// if the OS itself refuses more address space.
func (a *Arena) Reserve(size, align int, owner any) *Span {
	size, align = checkReserve(size, align)

	a.mu.Lock()
	if a.closed {
		a.mu.Unlock()
		panic("vm: Reserve on closed arena")
	}
	var sp *Span
	if size == a.spanSize && align <= a.spanSize {
		sp = a.reserveSlotLocked()
	} else {
		sp = a.reserveLargeLocked(size, align)
	}
	sp.Owner = owner
	a.publishLocked(sp)
	a.mu.Unlock()

	a.reserves.Add(1)
	a.addReserved(int64(size))
	a.addCommitted(int64(size))
	return sp
}

func (a *Arena) reserveSlotLocked() *Span {
	if n := len(a.slotFree); n > 0 {
		sp := a.slotFree[n-1]
		a.slotFree = a.slotFree[:n-1]
		a.recycled.Add(1)
		return sp
	}
	if a.nextSlot >= a.nSlots {
		// Slot region exhausted: degrade to the large path. The span still
		// works — it just resolves through a page table instead of slot
		// arithmetic, and recycles through largePool instead of slotFree.
		return a.reserveLargeLocked(a.spanSize, a.spanSize)
	}
	i := a.nextSlot
	a.nextSlot++
	base := a.base + uint64(i)<<a.spanShift
	return &Span{Base: base, Len: a.spanSize, data: a.commit(base, a.spanSize), host: a}
}

func (a *Arena) reserveLargeLocked(size, align int) *Span {
	list := a.largePool[size]
	for i, sp := range list {
		if sp.Base&(uint64(align)-1) == 0 {
			list[i] = list[len(list)-1]
			a.largePool[size] = list[:len(list)-1]
			a.recycled.Add(1)
			return sp
		}
	}
	if base, ok := carve(&a.largeNext, a.largeBase, a.largeEnd, size, align); ok {
		return &Span{Base: base, Len: size, data: a.commit(base, size), host: a}
	}
	// Primary large region exhausted: bump-allocate from existing extension
	// regions, newest first (older ones are likely full), then grow.
	exts := a.extList()
	for i := len(exts) - 1; i >= 0; i-- {
		r := exts[i]
		if base, ok := carve(&r.next, r.base, r.end, size, align); ok {
			return &Span{Base: base, Len: size, data: a.commit(base, size), host: a}
		}
	}
	r := a.growLocked(size, align)
	base, ok := carve(&r.next, r.base, r.end, size, align)
	if !ok {
		panic(fmt.Sprintf("vm: fresh %d-byte extension cannot fit %d bytes aligned to %d", r.end-r.base, size, align))
	}
	return &Span{Base: base, Len: size, data: a.commit(base, size), host: a}
}

// carve bump-allocates size bytes at alignment align from the cursor bounded
// by [lo, hi), advancing the cursor on success.
func carve(next *uint64, lo, hi uint64, size, align int) (uint64, bool) {
	base := (*next + uint64(align) - 1) &^ (uint64(align) - 1)
	if base < lo || base+uint64(size) > hi {
		return 0, false
	}
	*next = base + uint64(size)
	return base, true
}

// extList returns the current extension regions (possibly nil).
func (a *Arena) extList() []*extRegion {
	if p := a.exts.Load(); p != nil {
		return *p
	}
	return nil
}

// extFor resolves an address to its extension region lock-free, or nil.
func (a *Arena) extFor(addr uint64) *extRegion {
	for _, r := range a.extList() {
		if addr >= r.base && addr < r.end {
			return r
		}
	}
	return nil
}

// growLocked maps one more extension region — GrowBytes of virtual space, or
// enough for an over-sized request — and publishes it copy-on-write for the
// lock-free readers. Caller holds a.mu. Only a genuine mmap refusal (address
// space truly gone) still panics.
func (a *Arena) growLocked(size, align int) *extRegion {
	ss := int64(a.spanSize)
	want := int64(size) + int64(align)
	gb := a.growBytes
	if want > gb {
		gb = (want + ss - 1) / ss * ss
	}
	mem, err := syscall.Mmap(-1, 0, int(gb)+a.spanSize,
		syscall.PROT_NONE,
		syscall.MAP_PRIVATE|syscall.MAP_ANON|syscall.MAP_NORESERVE)
	if err != nil {
		panic(fmt.Sprintf("vm: arena growth of %d bytes: %v", gb, err))
	}
	raw := uint64(uintptr(unsafe.Pointer(&mem[0])))
	base := (raw + uint64(ss) - 1) &^ (uint64(ss) - 1)
	r := &extRegion{
		mem:   mem,
		base:  base,
		end:   base + uint64(gb),
		next:  base,
		pages: make([]atomic.Pointer[Span], gb>>PageShift),
	}
	list := append(append([]*extRegion(nil), a.extList()...), r)
	a.exts.Store(&list)
	a.grows.Add(1)
	return r
}

// seg returns the raw mapping bytes backing [base, base+n), resolving the
// primary reservation first and extension regions after it.
func (a *Arena) seg(base uint64, n int) []byte {
	if m := a.mem; m != nil {
		mb := uint64(uintptr(unsafe.Pointer(&m[0])))
		if base >= mb && base+uint64(n) <= mb+uint64(len(m)) {
			off := int(base - mb)
			return m[off : off+n : off+n]
		}
	}
	if r := a.extFor(base); r != nil && base+uint64(n) <= r.end {
		off := int(base - uint64(uintptr(unsafe.Pointer(&r.mem[0]))))
		return r.mem[off : off+n : off+n]
	}
	panic(fmt.Sprintf("vm: address range [%#x, +%d) outside arena mappings", base, n))
}

// commit makes [base, base+n) readable and writable. Physical pages arrive
// lazily on first touch; the committed counters are maintained by the
// caller.
func (a *Arena) commit(base uint64, n int) []byte {
	seg := a.seg(base, n)
	if err := syscall.Mprotect(seg, syscall.PROT_READ|syscall.PROT_WRITE); err != nil {
		panic(fmt.Sprintf("vm: mprotect(%#x, %d): %v", base, n, err))
	}
	return seg
}

// madvise returns the physical pages of [base, base+n) to the OS. The
// mapping stays intact and writable; the next touch faults in a zero page.
func (a *Arena) madvise(base uint64, n int) {
	if err := syscall.Madvise(a.seg(base, n), syscall.MADV_DONTNEED); err != nil {
		panic(fmt.Sprintf("vm: madvise(%#x, %d, DONTNEED): %v", base, n, err))
	}
}

// Release returns a span to the arena. Its physical pages go back to the OS
// immediately (madvise), its addresses stop resolving, and the span is
// pooled for reuse by the next Reserve of the same size.
func (a *Arena) Release(sp *Span) {
	if sp == nil {
		panic("vm: Release(nil)")
	}
	a.mu.Lock()
	a.unpublishLocked(sp)
	sp.Owner = nil
	backed := int64(sp.Len) - resetDecommitState(sp, &a.counters)
	a.madvise(sp.Base, sp.Len)
	if a.isSlot(sp.Base) {
		a.slotFree = append(a.slotFree, sp)
	} else {
		a.largePool[sp.Len] = append(a.largePool[sp.Len], sp)
	}
	a.mu.Unlock()

	a.releases.Add(1)
	a.reserved.Add(int64(-sp.Len))
	a.committed.Add(-backed)
}

func (a *Arena) isSlot(addr uint64) bool { return addr-a.base < a.slotLen }

// setPages stores v into every page-table entry covering sp. Spans never
// straddle region boundaries (each bump allocation is bounds-checked against
// its own region), so one region resolution covers the whole span.
func (a *Arena) setPages(sp *Span, v *Span) {
	if sp.Base >= a.largeBase && sp.Base < a.largeEnd {
		for addr := sp.Base; addr < sp.End(); addr += PageSize {
			a.largePages[(addr-a.largeBase)>>PageShift].Store(v)
		}
		return
	}
	r := a.extFor(sp.Base)
	if r == nil {
		panic(fmt.Sprintf("vm: span %#x outside arena regions", sp.Base))
	}
	for addr := sp.Base; addr < sp.End(); addr += PageSize {
		r.pages[(addr-r.base)>>PageShift].Store(v)
	}
}

func (a *Arena) publishLocked(sp *Span) {
	if a.isSlot(sp.Base) {
		a.slots[(sp.Base-a.base)>>a.spanShift].Store(sp)
		return
	}
	a.setPages(sp, sp)
}

func (a *Arena) unpublishLocked(sp *Span) {
	if a.isSlot(sp.Base) {
		a.slots[(sp.Base-a.base)>>a.spanShift].Store(nil)
		return
	}
	a.setPages(sp, nil)
}

// Lookup resolves addr to its live span by address arithmetic: in the slot
// region it is one subtract, one shift, and one atomic load, with no bounds
// re-check because a slot holds exactly one span of exactly the slot size.
// It is lock-free and safe for concurrent use.
func (a *Arena) Lookup(addr uint64) *Span {
	if off := addr - a.base; off < a.slotLen {
		return a.slots[off>>a.spanShift].Load()
	}
	if addr >= a.largeBase && addr < a.largeEnd {
		sp := a.largePages[(addr-a.largeBase)>>PageShift].Load()
		if sp == nil || addr < sp.Base || addr >= sp.End() {
			return nil
		}
		return sp
	}
	if r := a.extFor(addr); r != nil {
		sp := r.pages[(addr-r.base)>>PageShift].Load()
		if sp == nil || addr < sp.Base || addr >= sp.End() {
			return nil
		}
		return sp
	}
	return nil
}

// Bytes returns a view of n bytes of backing memory at addr, panicking if
// the range is not fully inside one live span.
func (a *Arena) Bytes(addr uint64, n int) []byte {
	return backendBytes(a, addr, n)
}

// Close unmaps the reservation. Every span obtained from the arena is
// invalid afterwards — Close must only run once the owning allocator is
// quiescent. It is idempotent.
func (a *Arena) Close() error {
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.closed {
		return nil
	}
	a.closed = true
	mem := a.mem
	a.mem = nil
	a.slots, a.largePages = nil, nil
	a.slotFree, a.largePool = nil, nil
	err := syscall.Munmap(mem)
	for _, r := range a.extList() {
		if e := syscall.Munmap(r.mem); e != nil && err == nil {
			err = e
		}
	}
	a.exts.Store(nil)
	return err
}

// spanHost hooks: decommit is a real madvise; recommit is free because the
// kernel zero-fills on the next touch.

func (a *Arena) spanMu() *sync.Mutex { return &a.mu }
func (a *Arena) counts() *counters   { return &a.counters }

func (a *Arena) dropPages(sp *Span, off, n int) {
	a.madvise(sp.Base+uint64(off), n)
}

func (a *Arena) backPages(sp *Span, off, n int) {}
