// Package superblock implements Hoard's unit of memory management.
//
// A superblock is an S-byte, S-aligned span carved into blocks of exactly
// one size class. Each superblock is owned by exactly one heap at a time
// (a per-processor heap or the global heap); ownership is what lets Hoard
// avoid allocator-induced false sharing — blocks of a superblock are handed
// out by a single heap, and frees return blocks to the superblock (and thus
// to its owning heap) rather than to the freeing thread.
//
// Free blocks form a LIFO intrusive list threaded through the blocks' own
// memory (the first four bytes of a free block hold the next free block's
// index), plus a lazy "carve frontier": blocks past the frontier have never
// been allocated and need no list linkage. A per-superblock free bitmap
// detects double frees and supports integrity checking.
//
// Cross-thread frees additionally use a lock-free remote stack: a Treiber
// stack of block indices threaded through the same first-four-bytes links,
// with an atomic head. Non-owning threads CAS-push freed blocks onto it
// without taking the owning heap's lock; the owner drains the whole stack in
// one batch (under its lock) at reconciliation points. Blocks on the remote
// stack still count as in use — inUse, the free bitmap, and the owning
// heap's u(i) statistic only change at drain time, which keeps Hoard's
// emptiness invariant and blowup bound exact whenever they are consulted.
package superblock

import (
	"encoding/binary"
	"fmt"
	"sync/atomic"

	"hoardgo/internal/alloc"
	"hoardgo/internal/env"
	"hoardgo/internal/vm"
)

// DefaultSize is the paper implementation's superblock size S (8 KiB).
const DefaultSize = 8192

// Superblock manages one S-byte span of blocks of a single size class.
//
// Locking: all fields except ownerID are protected by the lock of the heap
// that currently owns the superblock. ownerID is atomic because the free
// path must read it before taking that lock (and re-check it after, since
// ownership can change while waiting).
type Superblock struct {
	span      *vm.Span
	size      int // S
	class     int
	blockSize int
	nBlocks   int

	inUse    int
	freeHead int // 1-based index of first listed free block; 0 = empty list
	carved   int // blocks at index >= carved have never been allocated

	freeBits []uint64 // bit i set = block i is free (listed or uncarved)

	// remoteHead is the Treiber-stack head of blocks freed by non-owning
	// threads: it holds idx+1 of the most recently pushed block (0 =
	// empty), with links threaded through the blocks' first four bytes in
	// the same format as the local free list. Pushers only CAS-push and
	// the owner only pops the whole stack at once (Swap to 0), so there is
	// no ABA window. remoteCount tracks the stack's length approximately
	// (pushes increment before the CAS lands, drains subtract); it is a
	// hint for drain heuristics, never a correctness input.
	remoteHead  atomic.Uint32
	remoteCount atomic.Int32

	ownerID atomic.Int32

	// decommitted is true while the span's pages are dropped (scavenged).
	// parkedAt is the clock reading when the superblock last went idle on
	// the global heap; the scavenger's cold-age filter compares against it.
	// Both are protected by the owning heap's lock.
	decommitted bool
	parkedAt    int64

	// Next and Prev link the superblock into its heap's fullness-group
	// list for its size class. Group is the list it is currently on.
	// All three are managed exclusively by the owning heap.
	Next, Prev *Superblock
	Group      int
}

// New reserves a fresh size-byte, size-aligned span from space and formats
// it as a superblock of the given class and block size. blockSize must be a
// positive multiple of 8 no larger than size.
func New(space *vm.Space, size, class, blockSize int) *Superblock {
	if blockSize <= 0 || blockSize%8 != 0 || blockSize > size {
		panic(fmt.Sprintf("superblock: bad block size %d for S=%d", blockSize, size))
	}
	sb := &Superblock{size: size}
	sb.span = space.Reserve(size, size, sb)
	sb.format(class, blockSize)
	return sb
}

// format initializes block bookkeeping for a (possibly recycled) superblock.
func (sb *Superblock) format(class, blockSize int) {
	if sb.decommitted {
		panic(fmt.Sprintf("superblock %#x: format while decommitted (missing Recommit)", sb.span.Base))
	}
	sb.class = class
	sb.blockSize = blockSize
	sb.nBlocks = sb.size / blockSize
	sb.inUse = 0
	sb.freeHead = 0
	sb.carved = 0
	if sb.remoteHead.Load() != 0 {
		panic(fmt.Sprintf("superblock %#x: format with remote frees pending", sb.span.Base))
	}
	sb.remoteCount.Store(0)
	words := (sb.nBlocks + 63) / 64
	if cap(sb.freeBits) >= words {
		sb.freeBits = sb.freeBits[:words]
	} else {
		sb.freeBits = make([]uint64, words)
	}
	for i := range sb.freeBits {
		sb.freeBits[i] = ^uint64(0)
	}
}

// Reinit reformats an empty superblock for a new size class. Hoard's global
// heap recycles completely empty superblocks across classes; reinitializing
// a non-empty superblock panics.
func (sb *Superblock) Reinit(class, blockSize int) {
	if sb.inUse != 0 {
		panic(fmt.Sprintf("superblock: Reinit with %d blocks in use", sb.inUse))
	}
	if blockSize <= 0 || blockSize%8 != 0 || blockSize > sb.size {
		panic(fmt.Sprintf("superblock: bad block size %d for S=%d", blockSize, sb.size))
	}
	sb.format(class, blockSize)
}

// Release returns the superblock's span to the simulated OS. The superblock
// must be empty and must no longer be reachable from any heap.
func (sb *Superblock) Release(space *vm.Space) {
	if sb.inUse != 0 {
		panic("superblock: Release with blocks in use")
	}
	if sb.remoteHead.Load() != 0 {
		panic("superblock: Release with remote frees pending")
	}
	space.Release(sb.span)
	sb.span = nil
	sb.decommitted = false
}

// Decommit drops the superblock's backing pages in place
// (madvise(DONTNEED)-style) while the superblock stays parked on its heap:
// its address range remains reserved, FromPtr still resolves into it, but
// its committed bytes return to the OS until Recommit. The free list and
// carve frontier live inside the dropped memory, so both are reset — the
// bitmap (all free) and carved=0 describe the same empty state without
// touching the span. The superblock must be completely empty with no remote
// frees pending; the caller holds the owning heap's lock. The decommit is
// charged as an OS call.
func (sb *Superblock) Decommit(e env.Env) {
	if sb.inUse != 0 {
		panic(fmt.Sprintf("superblock %#x: Decommit with %d blocks in use", sb.Base(), sb.inUse))
	}
	if sb.remoteHead.Load() != 0 {
		panic(fmt.Sprintf("superblock %#x: Decommit with remote frees pending", sb.Base()))
	}
	if sb.decommitted {
		panic(fmt.Sprintf("superblock %#x: double Decommit", sb.Base()))
	}
	sb.freeHead = 0
	sb.carved = 0
	sb.decommitted = true
	e.Charge(env.OpOSAlloc, 1)
	sb.span.Decommit(0, sb.size)
}

// Recommit restores the superblock's backing pages after a Decommit so its
// blocks can be handed out again; a no-op if the superblock is committed.
// The caller holds the owning heap's lock.
func (sb *Superblock) Recommit(e env.Env) {
	if !sb.decommitted {
		return
	}
	e.Charge(env.OpOSAlloc, 1)
	sb.span.Recommit(0, sb.size)
	sb.decommitted = false
}

// Decommitted reports whether the superblock's pages are currently dropped.
func (sb *Superblock) Decommitted() bool { return sb.decommitted }

// ParkedAt returns the clock reading recorded by SetParkedAt, the scavenger's
// cold-age input. Zero means never stamped.
func (sb *Superblock) ParkedAt() int64 { return sb.parkedAt }

// SetParkedAt records when the superblock last went idle on (or was last
// touched while on) the global heap. The caller holds the owning heap's lock.
func (sb *Superblock) SetParkedAt(ns int64) { sb.parkedAt = ns }

// FromPtr resolves a block pointer to its superblock via the address space's
// page map, the moral equivalent of the paper's per-block header. ok is
// false if p does not belong to any live superblock (e.g. it is a large
// object or garbage).
func FromPtr(space *vm.Space, p alloc.Ptr) (*Superblock, bool) {
	sp := space.Lookup(uint64(p))
	if sp == nil {
		return nil, false
	}
	sb, ok := sp.Owner.(*Superblock)
	return sb, ok
}

// Size returns S, the superblock's total byte size.
func (sb *Superblock) Size() int { return sb.size }

// Class returns the size class this superblock currently serves.
func (sb *Superblock) Class() int { return sb.class }

// BlockSize returns the byte size of each block.
func (sb *Superblock) BlockSize() int { return sb.blockSize }

// NBlocks returns the number of blocks the superblock holds.
func (sb *Superblock) NBlocks() int { return sb.nBlocks }

// InUse returns the number of allocated blocks.
func (sb *Superblock) InUse() int { return sb.inUse }

// BytesInUse returns the allocated bytes (blocks in use times block size).
func (sb *Superblock) BytesInUse() int { return sb.inUse * sb.blockSize }

// Capacity returns the total usable bytes (nBlocks times block size).
func (sb *Superblock) Capacity() int { return sb.nBlocks * sb.blockSize }

// Full reports whether every block is allocated.
func (sb *Superblock) Full() bool { return sb.inUse == sb.nBlocks }

// Empty reports whether no block is allocated.
func (sb *Superblock) Empty() bool { return sb.inUse == 0 }

// Fullness returns the allocated fraction in [0,1].
func (sb *Superblock) Fullness() float64 {
	return float64(sb.inUse) / float64(sb.nBlocks)
}

// AtLeastEmpty reports whether the superblock is at least fraction f empty,
// the condition a superblock must meet to move to the global heap.
func (sb *Superblock) AtLeastEmpty(f float64) bool {
	return float64(sb.nBlocks-sb.inUse) >= f*float64(sb.nBlocks)
}

// OwnerID returns the id of the heap that currently owns this superblock.
func (sb *Superblock) OwnerID() int { return int(sb.ownerID.Load()) }

// SetOwnerID records a change of owning heap. Callers must hold the
// previous owner's lock (and, for heap-to-heap moves, the new owner's).
func (sb *Superblock) SetOwnerID(id int) { sb.ownerID.Store(int32(id)) }

// Base returns the simulated address of the superblock's first byte.
func (sb *Superblock) Base() uint64 { return sb.span.Base }

// AllocBlock pops a free block, preferring recently freed blocks (LIFO) for
// locality, then carving never-used blocks. ok is false when the superblock
// is full.
func (sb *Superblock) AllocBlock(e env.Env) (p alloc.Ptr, ok bool) {
	var idx int
	switch {
	case sb.freeHead != 0:
		idx = sb.freeHead - 1
		// Reading the link is a real access to the block's memory —
		// this is where an allocator picks up a cache line that the
		// freeing thread wrote (passive false sharing's mechanism).
		link := sb.span.Bytes(idx*sb.blockSize, 4)
		e.Touch(sb.addrOf(idx), 4, false)
		sb.freeHead = int(binary.LittleEndian.Uint32(link))
	case sb.carved < sb.nBlocks:
		idx = sb.carved
		sb.carved++
	default:
		return 0, false
	}
	if !sb.testAndClearFree(idx) {
		panic(fmt.Sprintf("superblock %#x: free-list/bitmap mismatch at block %d", sb.Base(), idx))
	}
	sb.inUse++
	return alloc.Ptr(sb.addrOf(idx)), true
}

// FreeBlock returns a block to the superblock's LIFO free list. It panics
// on misaligned pointers, pointers outside the superblock, and double
// frees.
func (sb *Superblock) FreeBlock(e env.Env, p alloc.Ptr) {
	idx := sb.indexOf(p)
	if sb.isFree(idx) {
		panic(fmt.Sprintf("superblock %#x: double free of block %d (%#x)", sb.Base(), idx, uint64(p)))
	}
	// Writing the link dirties the block's cache line in the freeing
	// thread's cache — the other half of the false-sharing mechanism.
	binary.LittleEndian.PutUint32(sb.span.Bytes(idx*sb.blockSize, 4), uint32(sb.freeHead))
	e.Touch(uint64(p), 4, true)
	sb.freeHead = idx + 1
	sb.setFree(idx)
	sb.inUse--
}

// RemoteFree pushes a block freed by a non-owning thread onto the
// superblock's lock-free remote stack and returns the (approximate) number
// of blocks now pending. It takes no lock: the block's link is written, then
// the stack head is CAS-published. The block stays marked in use — the
// bitmap, inUse, and the owning heap's statistics are updated only when the
// owner drains. Double frees through this path are therefore detected at
// drain time, not push time.
func (sb *Superblock) RemoteFree(e env.Env, p alloc.Ptr) int {
	idx := sb.indexOf(p)
	link := sb.span.Bytes(idx*sb.blockSize, 4)
	e.Touch(uint64(p), 4, true)
	e.Charge(env.OpRemoteFree, 1)
	for {
		head := sb.remoteHead.Load()
		binary.LittleEndian.PutUint32(link, head)
		// The CAS's release ordering publishes the link write; the
		// drain's Swap acquires it, so the plain byte accesses never
		// race.
		if sb.remoteHead.CompareAndSwap(head, uint32(idx+1)) {
			return int(sb.remoteCount.Add(1))
		}
	}
}

// RemoteFreeBatch pushes every block in ps — all freed by a non-owning
// thread — onto the remote stack with a single CAS: the blocks are chained
// through their own link words locally, then the whole chain is published at
// once. It returns the (approximate) number of blocks now pending. Like
// RemoteFree it takes no lock and defers double-free detection to drain
// time; a duplicate pointer inside one batch forms a cycle the drain's
// bitmap walk reports as a remote double free.
func (sb *Superblock) RemoteFreeBatch(e env.Env, ps []alloc.Ptr) int {
	if len(ps) == 0 {
		return sb.RemotePending()
	}
	// A duplicate inside one batch would be silently dropped by the chain
	// build below (its link word is simply rewritten), so detect it here;
	// batches are magazine-sized, so the quadratic scan is a few dozen
	// compares. Duplicates across batches are detected at drain time, as
	// on the per-block path.
	for i, p := range ps {
		for _, q := range ps[:i] {
			if p == q {
				panic(fmt.Sprintf("superblock %#x: double free of block %#x within one batch", sb.Base(), uint64(p)))
			}
		}
	}
	// Chain ps[0] -> ps[1] -> ... -> ps[k-1] through the blocks' link
	// words. Each link write is a real access to the block's memory, as in
	// the per-block path.
	for i, p := range ps {
		idx := sb.indexOf(p)
		next := uint32(0)
		if i+1 < len(ps) {
			next = uint32(sb.indexOf(ps[i+1]) + 1)
		}
		binary.LittleEndian.PutUint32(sb.span.Bytes(idx*sb.blockSize, 4), next)
		e.Touch(uint64(p), 4, true)
	}
	e.Charge(env.OpRemoteFree, int64(len(ps)))
	headIdx := uint32(sb.indexOf(ps[0]) + 1)
	tail := sb.span.Bytes(sb.indexOf(ps[len(ps)-1])*sb.blockSize, 4)
	for {
		head := sb.remoteHead.Load()
		binary.LittleEndian.PutUint32(tail, head)
		// As in RemoteFree, the CAS's release ordering publishes every
		// link write of the chain; the drain's Swap acquires it.
		if sb.remoteHead.CompareAndSwap(head, headIdx) {
			return int(sb.remoteCount.Add(int32(len(ps))))
		}
	}
}

// DrainRemote pops the entire remote stack and splices it onto the local
// free list, updating the bitmap and inUse. The caller must hold the owning
// heap's lock. It returns the number of blocks drained (0 when the stack is
// empty, in which case the call is a single atomic load). It panics on the
// deferred double frees RemoteFree could not detect.
func (sb *Superblock) DrainRemote(e env.Env) int {
	if sb.remoteHead.Load() == 0 {
		return 0
	}
	head := sb.remoteHead.Swap(0)
	if head == 0 {
		return 0
	}
	e.Charge(env.OpListScan, 1)
	n := 0
	tail := 0
	for cur := int(head); cur != 0; {
		idx := cur - 1
		if idx < 0 || idx >= sb.carved {
			panic(fmt.Sprintf("superblock %#x: remote stack index %d outside carved range [0,%d)", sb.Base(), idx, sb.carved))
		}
		if sb.isFree(idx) {
			panic(fmt.Sprintf("superblock %#x: double free of block %d (remote)", sb.Base(), idx))
		}
		if n >= sb.nBlocks {
			panic(fmt.Sprintf("superblock %#x: remote stack longer than %d blocks", sb.Base(), sb.nBlocks))
		}
		sb.setFree(idx)
		n++
		tail = idx
		e.Touch(sb.addrOf(idx), 4, false)
		e.Charge(env.OpFree, 1)
		cur = int(binary.LittleEndian.Uint32(sb.span.Bytes(idx*sb.blockSize, 4)))
	}
	// The chain's links are already in local free-list format, so splicing
	// is one link write: tail -> old freeHead, head becomes the new
	// freeHead.
	binary.LittleEndian.PutUint32(sb.span.Bytes(tail*sb.blockSize, 4), uint32(sb.freeHead))
	sb.freeHead = int(head)
	sb.inUse -= n
	sb.remoteCount.Add(int32(-n))
	return n
}

// RemotePending returns the approximate number of blocks waiting on the
// remote stack. It is a racy hint: concurrent pushes and drains may make it
// stale by the time the caller acts on it.
func (sb *Superblock) RemotePending() int {
	n := int(sb.remoteCount.Load())
	if n < 0 {
		return 0
	}
	return n
}

// RemoteDrainThreshold returns the pending count at which a pusher should
// nudge the owner to drain (by trying the owner's lock): half the
// superblock, but at least 8 blocks so tiny stacks don't thrash.
func (sb *Superblock) RemoteDrainThreshold() int {
	t := sb.nBlocks / 2
	if t < 8 {
		t = 8
	}
	return t
}

// Contains reports whether p points at a block boundary inside sb.
func (sb *Superblock) Contains(p alloc.Ptr) bool {
	a := uint64(p)
	if a < sb.span.Base || a >= sb.span.End() {
		return false
	}
	return (a-sb.span.Base)%uint64(sb.blockSize) == 0 &&
		int(a-sb.span.Base)/sb.blockSize < sb.nBlocks
}

func (sb *Superblock) addrOf(idx int) uint64 {
	return sb.span.Base + uint64(idx*sb.blockSize)
}

func (sb *Superblock) indexOf(p alloc.Ptr) int {
	off := uint64(p) - sb.span.Base
	if uint64(p) < sb.span.Base || off%uint64(sb.blockSize) != 0 || int(off)/sb.blockSize >= sb.nBlocks {
		panic(fmt.Sprintf("superblock %#x: bad block pointer %#x", sb.Base(), uint64(p)))
	}
	return int(off) / sb.blockSize
}

func (sb *Superblock) isFree(idx int) bool {
	return sb.freeBits[idx/64]&(1<<(idx%64)) != 0
}

func (sb *Superblock) setFree(idx int) {
	sb.freeBits[idx/64] |= 1 << (idx % 64)
}

func (sb *Superblock) testAndClearFree(idx int) bool {
	w, b := idx/64, uint64(1)<<(idx%64)
	if sb.freeBits[w]&b == 0 {
		return false
	}
	sb.freeBits[w] &^= b
	return true
}

// CheckIntegrity validates the free list, bitmap, and counters. The
// superblock must be quiescent.
func (sb *Superblock) CheckIntegrity() error {
	return sb.checkIntegrity(false)
}

// CheckIntegrityOnline is CheckIntegrity for a superblock whose owner heap's
// lock is held but whose remote-free stack may be receiving concurrent
// pushes. Everything owner-side (free list, bitmap, counters) is consistent
// under the heap lock, and the remote chain is walked from a snapshot head
// whose nodes are immutable once published — only the remote-count
// comparison is skipped, because RemoteFree publishes the node first and
// bumps the counter after, so the two legitimately disagree mid-push.
func (sb *Superblock) CheckIntegrityOnline() error {
	return sb.checkIntegrity(true)
}

func (sb *Superblock) checkIntegrity(online bool) error {
	if sb.span == nil {
		return fmt.Errorf("superblock: released but still reachable")
	}
	if sb.decommitted {
		// A decommitted superblock's list state lives in dropped memory;
		// the only consistent shape is the pristine empty one.
		if sb.inUse != 0 || sb.freeHead != 0 || sb.carved != 0 {
			return fmt.Errorf("superblock %#x: decommitted but inUse %d freeHead %d carved %d",
				sb.Base(), sb.inUse, sb.freeHead, sb.carved)
		}
		if sb.remoteHead.Load() != 0 {
			return fmt.Errorf("superblock %#x: decommitted with remote frees pending", sb.Base())
		}
		if got := sb.span.DecommittedBytes(); got != int64(sb.size) {
			return fmt.Errorf("superblock %#x: decommitted flag set but span has %d/%d bytes dropped", sb.Base(), got, sb.size)
		}
		return nil
	}
	if got := sb.span.DecommittedBytes(); got != 0 {
		return fmt.Errorf("superblock %#x: committed flag but span has %d bytes dropped", sb.Base(), got)
	}
	listed := 0
	seen := make(map[int]bool)
	for cur := sb.freeHead; cur != 0; {
		idx := cur - 1
		if idx < 0 || idx >= sb.carved {
			return fmt.Errorf("superblock %#x: free list index %d outside carved range [0,%d)", sb.Base(), idx, sb.carved)
		}
		if seen[idx] {
			return fmt.Errorf("superblock %#x: free list cycle at block %d", sb.Base(), idx)
		}
		if !sb.isFree(idx) {
			return fmt.Errorf("superblock %#x: listed block %d not marked free", sb.Base(), idx)
		}
		seen[idx] = true
		listed++
		cur = int(binary.LittleEndian.Uint32(sb.span.Bytes(idx*sb.blockSize, 4)))
	}
	wantListed := sb.carved - sb.inUse
	if listed != wantListed {
		return fmt.Errorf("superblock %#x: %d blocks on free list, want %d (carved %d, inUse %d)",
			sb.Base(), listed, wantListed, sb.carved, sb.inUse)
	}
	freeBits := 0
	for i := 0; i < sb.nBlocks; i++ {
		if sb.isFree(i) {
			freeBits++
		}
	}
	if freeBits != sb.nBlocks-sb.inUse {
		return fmt.Errorf("superblock %#x: bitmap says %d free, counters say %d",
			sb.Base(), freeBits, sb.nBlocks-sb.inUse)
	}
	if sb.inUse < 0 || sb.inUse > sb.nBlocks {
		return fmt.Errorf("superblock %#x: inUse %d out of range", sb.Base(), sb.inUse)
	}
	// Remote stack: every pending block must be a valid, currently
	// allocated block, appear once, and match the pending counter. Pending
	// blocks count as in use until drained.
	remote := 0
	rseen := make(map[int]bool)
	for cur := int(sb.remoteHead.Load()); cur != 0; {
		idx := cur - 1
		if idx < 0 || idx >= sb.carved {
			return fmt.Errorf("superblock %#x: remote stack index %d outside carved range [0,%d)", sb.Base(), idx, sb.carved)
		}
		if sb.isFree(idx) {
			return fmt.Errorf("superblock %#x: remote-pending block %d already marked free", sb.Base(), idx)
		}
		if rseen[idx] || seen[idx] {
			return fmt.Errorf("superblock %#x: block %d pushed remotely more than once", sb.Base(), idx)
		}
		rseen[idx] = true
		remote++
		if remote > sb.nBlocks {
			return fmt.Errorf("superblock %#x: remote stack longer than %d blocks", sb.Base(), sb.nBlocks)
		}
		cur = int(binary.LittleEndian.Uint32(sb.span.Bytes(idx*sb.blockSize, 4)))
	}
	if got := int(sb.remoteCount.Load()); !online && got != remote {
		return fmt.Errorf("superblock %#x: remote stack holds %d blocks, counter says %d", sb.Base(), remote, got)
	}
	if remote > sb.inUse {
		return fmt.Errorf("superblock %#x: %d remote-pending blocks but only %d in use", sb.Base(), remote, sb.inUse)
	}
	return nil
}

// RemotePendingBytes returns the approximate bytes waiting on the remote
// stack (pending blocks times block size).
func (sb *Superblock) RemotePendingBytes() int64 {
	return int64(sb.RemotePending()) * int64(sb.blockSize)
}
