// Package control is the closed-loop self-tuning layer: a background
// controller that reads the allocator's own observability signals — lock
// traffic, per-class occupancy, footprint vs live bytes, superblock
// migration — and retunes the knobs the paper leaves as hand-picked
// constants: the empty fraction f, the slack K, per-size-class magazine
// capacities, and the scavenger's pacing watermarks and rate.
//
// The design splits three ways so every piece is testable on its own:
//
//   - Tuner is the pure decision engine: given two consecutive Samples and
//     the current Knobs it derives Signals (rates per operation, not raw
//     counters) and emits bounded Decisions. It holds no goroutine and no
//     allocator reference, so table-driven tests feed it synthetic samples.
//   - Target is the actuation surface: Sample/Knobs to read, Apply to write.
//     CoreTarget (target.go) adapts a real allocator stack.
//   - Controller wraps a Tuner and a Target in a background goroutine with
//     idempotent Start/Stop (the scavenger's lifecycle pattern) and a
//     decision-log ring buffer exported through the metrics layer.
//
// Stability comes from three mechanisms, not from tuning luck: every rule is
// AIMD-shaped with an engage threshold strictly above its disengage
// threshold (a workload sitting between them moves nothing), every knob has
// a hard clamp range, and every change starts a per-knob cooldown so the
// same knob cannot move again — in either direction — for CooldownTicks
// ticks. A knob can therefore flap only if the workload itself swings across
// both thresholds slower than the cooldown, which is a genuine regime change
// rather than controller noise.
package control

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Knob names. Magazine capacities are per size class, so their knob names
// carry the block size as a suffix: "magazine_capacity/512".
const (
	KnobEmptyFraction = "empty_fraction"
	KnobSlackK        = "slack_k"
	KnobMagCapacity   = "magazine_capacity"
	KnobScavHighWater = "scavenger_high_water_bytes"
	KnobScavRate      = "scavenger_bytes_per_sec"
)

// MagKnob returns the per-class magazine knob name for a block size.
func MagKnob(blockSize int) string {
	return fmt.Sprintf("%s/%d", KnobMagCapacity, blockSize)
}

// ClassStat is one size class's occupancy aggregated over every heap,
// counting only superblocks that hold at least one live block (parked
// empties are the scavenger backlog signal, not fragmentation).
type ClassStat struct {
	// BlockSize identifies the class (core and tcache may index their
	// tables differently, so block size — not class index — is the join
	// key everywhere in this package).
	BlockSize int
	// Superblocks holds the class's superblock count; HeldBytes is
	// Superblocks times S and InUseBytes the bytes allocated from them.
	Superblocks int
	HeldBytes   int64
	InUseBytes  int64
}

// Sample is one reading of the allocator, all cumulative counters unless
// noted. The Tuner differences consecutive samples, so absolute values only
// matter for the gauges.
type Sample struct {
	WhenNS int64
	// Operation counters.
	Mallocs, Frees int64
	// Migration counters: superblock evictions to the global heap and
	// mallocs served by taking a superblock back from it — together the
	// take/evict ping-pong rate.
	SuperblockMoves int64
	GlobalHeapHits  int64
	RemoteFrees     int64
	// Magazine transfer counters: a thread cache's refills and flushes.
	// Their per-op rate is the direct read on magazine capacity — on a
	// core whose warm paths are lock-free, undersized magazines cost
	// batch transfers, not necessarily lock acquisitions.
	BatchRefills int64
	BatchFlushes int64
	// Reclamation counters from the vm layer.
	Decommits int64
	Recommits int64
	// Gauges.
	LiveBytes        int64
	FootprintBytes   int64
	GlobalEmptyBytes int64 // scavengable backlog; -1 when unreadable this tick
	// Lock counters, split global heap (heap 0) vs per-processor heaps.
	HeapAcquires    int64
	HeapContended   int64
	GlobalAcquires  int64
	GlobalContended int64
	// Classes is the per-class occupancy (gauge).
	Classes []ClassStat
}

// Knobs is the currently-in-force value of every tunable knob.
type Knobs struct {
	EmptyFraction float64
	SlackK        int
	// MagCapacity maps block size to magazine capacity; nil when no
	// thread cache is layered.
	MagCapacity map[int]int
	// Scavenger pacing; zero when no scavenger is running.
	ScavHighWater int64
	ScavLowWater  int64
	ScavRate      int64
	ScavBurst     int64
}

// Map flattens the knob set into name→value form for export (metrics,
// public stats). Scavenger knobs are omitted when no scavenger is wired.
func (k Knobs) Map() map[string]float64 {
	m := map[string]float64{
		KnobEmptyFraction: k.EmptyFraction,
		KnobSlackK:        float64(k.SlackK),
	}
	for bs, c := range k.MagCapacity {
		m[MagKnob(bs)] = float64(c)
	}
	if k.ScavHighWater > 0 {
		m[KnobScavHighWater] = float64(k.ScavHighWater)
	}
	if k.ScavRate > 0 {
		m[KnobScavRate] = float64(k.ScavRate)
	}
	return m
}

// Decision is one knob change (or manual pin) the controller decided on.
type Decision struct {
	WhenNS int64   `json:"when_ns"`
	Knob   string  `json:"knob"`
	Old    float64 `json:"old"`
	New    float64 `json:"new"`
	Reason string  `json:"reason"`
}

// Signals are the derived per-tick rates the rules read; exported so tests
// and the decision log can assert on what the controller saw.
type Signals struct {
	// Ops is mallocs+frees this tick.
	Ops int64 `json:"ops"`
	// HeapContention is contended acquisitions over acquisitions on the
	// per-processor heap locks.
	HeapContention float64 `json:"heap_contention"`
	// LockRate is heap-lock acquisitions (all heaps) per operation — the
	// signal that still works when one CPU serializes everything and
	// contention never shows.
	LockRate float64 `json:"lock_rate"`
	// PingPong is (superblock moves + global-heap takes) per operation.
	PingPong float64 `json:"ping_pong"`
	// FootprintRatio is committed footprint over live bytes.
	FootprintRatio float64 `json:"footprint_ratio"`
	// RemoteRate is remote frees per operation.
	RemoteRate float64 `json:"remote_rate"`
	// RefillRate is magazine batch transfers (refills + flushes) per
	// operation — with capacity C it sits near 2/C under churn, so a high
	// rate reads directly as "magazines too small for this workload".
	RefillRate float64 `json:"refill_rate"`
	// RecommitChurn is recommits over decommits this tick — near 1 means
	// the scavenger is releasing pages the workload takes right back.
	RecommitChurn float64 `json:"recommit_churn"`
	// Backlog is the scavengable empty-superblock bytes on the global heap.
	Backlog int64 `json:"backlog"`
	// ClassFrag maps block size to 1 - InUse/Held, the class's internal
	// fragmentation.
	ClassFrag map[int]float64 `json:"class_frag,omitempty"`
}

// Config parameterizes the controller. The zero value selects the
// documented defaults.
type Config struct {
	// Interval is the tick period. Default 50ms.
	Interval time.Duration
	// MinOpsPerTick gates rule evaluation: a tick observing fewer
	// operations is idle — rates over a handful of ops are noise. Default
	// 64.
	MinOpsPerTick int64
	// CooldownTicks is how many non-idle ticks a knob rests after a
	// change before it may move again. Default 4.
	CooldownTicks int
	// LogSize is the decision ring-buffer capacity. Default 256.
	LogSize int

	// Clamp ranges.
	MinEmptyFraction float64 // default 0.10
	MaxEmptyFraction float64 // default 0.90
	MinSlackK        int     // default 0
	MaxSlackK        int     // default 8
	MinMagCapacity   int     // default 4
	MaxMagCapacity   int     // default 256
	MinScavHighWater int64   // default 32 KiB
	MaxScavHighWater int64   // default 16 MiB
	MinScavRate      int64   // default 1 MiB/s
	MaxScavRate      int64   // default 1 GiB/s

	// Rule thresholds. Each High* engages a rule; its Low* counterpart is
	// the disengage band for the opposite direction — the gap between them
	// is the hysteresis dead zone.
	HighContention float64 // default 0.08
	LowContention  float64 // default 0.02
	HighLockRate   float64 // default 0.10
	LowLockRate    float64 // default 0.03
	// Refill bands are set around the magazine geometry: steady-state
	// churn through capacity-C magazines transfers at roughly 2/C per op,
	// so 0.04 keeps the widen rule pushing until C ~ 64 and 0.01 lets the
	// shrink rule engage only once transfers have essentially stopped.
	HighRefillRate    float64 // default 0.04
	LowRefillRate     float64 // default 0.01
	LowFragmentation  float64 // default 0.25
	HighFragmentation float64 // default 0.60
	HighPingPong      float64 // default 0.01
	LowPingPong       float64 // default 0.002
	HighFootprint     float64 // default 2.0
	LowFootprint      float64 // default 1.5
	HighRecommitChurn float64 // default 0.5
	// MinLiveBytes gates the footprint-ratio rules: with almost nothing
	// live the ratio is meaningless (a drained allocator legitimately
	// holds its warm reserve). Default 64 KiB.
	MinLiveBytes int64

	// Manual pins knobs to fixed values: rules skip a pinned knob and the
	// controller drives it to the pinned value instead (one decision with
	// reason "manual pin" when it drifts). Pin "magazine_capacity" to pin
	// every class at once, or "magazine_capacity/512" for one class.
	Manual map[string]float64
}

// WithDefaults fills zero fields with the documented defaults.
func (c Config) WithDefaults() Config {
	def := func(f *float64, v float64) {
		if *f == 0 {
			*f = v
		}
	}
	if c.Interval == 0 {
		c.Interval = 50 * time.Millisecond
	}
	if c.MinOpsPerTick == 0 {
		c.MinOpsPerTick = 64
	}
	if c.CooldownTicks == 0 {
		c.CooldownTicks = 4
	}
	if c.LogSize == 0 {
		c.LogSize = 256
	}
	def(&c.MinEmptyFraction, 0.10)
	def(&c.MaxEmptyFraction, 0.90)
	if c.MaxSlackK == 0 {
		c.MaxSlackK = 8
	}
	if c.MinMagCapacity == 0 {
		c.MinMagCapacity = 4
	}
	if c.MaxMagCapacity == 0 {
		c.MaxMagCapacity = 256
	}
	if c.MinScavHighWater == 0 {
		c.MinScavHighWater = 32 << 10
	}
	if c.MaxScavHighWater == 0 {
		c.MaxScavHighWater = 16 << 20
	}
	if c.MinScavRate == 0 {
		c.MinScavRate = 1 << 20
	}
	if c.MaxScavRate == 0 {
		c.MaxScavRate = 1 << 30
	}
	def(&c.HighContention, 0.08)
	def(&c.LowContention, 0.02)
	def(&c.HighLockRate, 0.10)
	def(&c.LowLockRate, 0.03)
	def(&c.HighRefillRate, 0.04)
	def(&c.LowRefillRate, 0.01)
	def(&c.LowFragmentation, 0.25)
	def(&c.HighFragmentation, 0.60)
	def(&c.HighPingPong, 0.01)
	def(&c.LowPingPong, 0.002)
	def(&c.HighFootprint, 2.0)
	def(&c.LowFootprint, 1.5)
	def(&c.HighRecommitChurn, 0.5)
	if c.MinLiveBytes == 0 {
		c.MinLiveBytes = 64 << 10
	}
	return c
}

// Validate rejects configurations the rules cannot run.
func (c Config) Validate() error {
	c = c.WithDefaults()
	if c.MinEmptyFraction <= 0 || c.MaxEmptyFraction >= 1 || c.MinEmptyFraction > c.MaxEmptyFraction {
		return fmt.Errorf("control: empty-fraction clamp [%v,%v] out of (0,1)", c.MinEmptyFraction, c.MaxEmptyFraction)
	}
	if c.MinSlackK < 0 || c.MinSlackK > c.MaxSlackK {
		return fmt.Errorf("control: slack clamp [%d,%d] invalid", c.MinSlackK, c.MaxSlackK)
	}
	if c.MinMagCapacity < 2 || c.MinMagCapacity > c.MaxMagCapacity {
		return fmt.Errorf("control: magazine clamp [%d,%d] invalid", c.MinMagCapacity, c.MaxMagCapacity)
	}
	if c.LowContention > c.HighContention || c.LowLockRate > c.HighLockRate ||
		c.LowRefillRate > c.HighRefillRate ||
		c.LowFragmentation > c.HighFragmentation || c.LowPingPong > c.HighPingPong ||
		c.LowFootprint > c.HighFootprint {
		return fmt.Errorf("control: a disengage threshold sits above its engage threshold")
	}
	if c.Interval <= 0 {
		return fmt.Errorf("control: interval %v", c.Interval)
	}
	return nil
}

// Tuner is the pure decision engine. Not safe for concurrent use — the
// Controller goroutine (or a test) owns it.
type Tuner struct {
	cfg      Config
	prev     Sample
	havePrev bool
	cooldown map[string]int
}

// NewTuner builds a Tuner over the (default-filled) config; it panics on an
// invalid config, like core.New.
func NewTuner(cfg Config) *Tuner {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	return &Tuner{cfg: cfg.WithDefaults(), cooldown: map[string]int{}}
}

// Config returns the default-filled configuration the tuner runs.
func (t *Tuner) Config() Config { return t.cfg }

// pinned returns the manual pin for a knob, with the all-classes magazine
// pin covering every per-class magazine knob.
func (t *Tuner) pinned(knob string) (float64, bool) {
	if v, ok := t.cfg.Manual[knob]; ok {
		return v, true
	}
	if len(knob) > len(KnobMagCapacity) && knob[:len(KnobMagCapacity)] == KnobMagCapacity {
		if v, ok := t.cfg.Manual[KnobMagCapacity]; ok {
			return v, true
		}
	}
	return 0, false
}

// signals derives the per-tick rates from two consecutive samples.
func (t *Tuner) signals(prev, now Sample) Signals {
	sig := Signals{
		Ops:     (now.Mallocs + now.Frees) - (prev.Mallocs + prev.Frees),
		Backlog: now.GlobalEmptyBytes,
	}
	ops := float64(sig.Ops)
	if ops <= 0 {
		ops = 1
	}
	if dAcq := now.HeapAcquires - prev.HeapAcquires; dAcq > 0 {
		sig.HeapContention = float64(now.HeapContended-prev.HeapContended) / float64(dAcq)
	}
	dAll := (now.HeapAcquires + now.GlobalAcquires) - (prev.HeapAcquires + prev.GlobalAcquires)
	sig.LockRate = float64(dAll) / ops
	sig.PingPong = float64((now.SuperblockMoves+now.GlobalHeapHits)-
		(prev.SuperblockMoves+prev.GlobalHeapHits)) / ops
	sig.RemoteRate = float64(now.RemoteFrees-prev.RemoteFrees) / ops
	sig.RefillRate = float64((now.BatchRefills+now.BatchFlushes)-
		(prev.BatchRefills+prev.BatchFlushes)) / ops
	if now.LiveBytes > 0 {
		sig.FootprintRatio = float64(now.FootprintBytes) / float64(now.LiveBytes)
	}
	if dDec := now.Decommits - prev.Decommits; dDec > 0 {
		sig.RecommitChurn = float64(now.Recommits-prev.Recommits) / float64(dDec)
	}
	sig.ClassFrag = map[int]float64{}
	for _, cs := range now.Classes {
		if cs.HeldBytes > 0 {
			sig.ClassFrag[cs.BlockSize] = 1 - float64(cs.InUseBytes)/float64(cs.HeldBytes)
		}
	}
	return sig
}

// Decide consumes one sample and emits this tick's decisions. idle reports
// whether the tick was skipped for lack of traffic (the first sample and
// quiet periods); idle ticks emit only manual-pin corrections and do not
// advance cooldowns, so a bursty workload gets the same hysteresis schedule
// as a steady one. The returned Signals are zero on idle ticks.
func (t *Tuner) Decide(now Sample, k Knobs) (ds []Decision, sig Signals, idle bool) {
	ds = t.pinCorrections(now.WhenNS, k)
	if !t.havePrev {
		t.prev, t.havePrev = now, true
		return ds, Signals{}, true
	}
	prev := t.prev
	t.prev = now
	sig = t.signals(prev, now)
	if sig.Ops < t.cfg.MinOpsPerTick {
		return ds, Signals{}, true
	}
	for knob := range t.cooldown {
		if t.cooldown[knob] > 0 {
			t.cooldown[knob]--
		}
	}
	ds = append(ds, t.decideMagazines(now.WhenNS, sig, k)...)
	if d, ok := t.decideSlackK(now.WhenNS, sig, k); ok {
		ds = append(ds, d)
	}
	if d, ok := t.decideEmptyFraction(now.WhenNS, sig, k); ok {
		ds = append(ds, d)
	}
	ds = append(ds, t.decideScavenger(now.WhenNS, sig, k)...)
	return ds, sig, false
}

// pinCorrections drives manually-pinned knobs to their pinned values.
func (t *Tuner) pinCorrections(whenNS int64, k Knobs) []Decision {
	if len(t.cfg.Manual) == 0 {
		return nil
	}
	var ds []Decision
	add := func(knob string, cur float64) {
		if want, ok := t.pinned(knob); ok && want != cur {
			ds = append(ds, Decision{WhenNS: whenNS, Knob: knob, Old: cur, New: want, Reason: "manual pin"})
		}
	}
	add(KnobEmptyFraction, k.EmptyFraction)
	add(KnobSlackK, float64(k.SlackK))
	for _, bs := range sortedSizes(k.MagCapacity) {
		add(MagKnob(bs), float64(k.MagCapacity[bs]))
	}
	if k.ScavHighWater > 0 {
		add(KnobScavHighWater, float64(k.ScavHighWater))
	}
	if k.ScavRate > 0 {
		add(KnobScavRate, float64(k.ScavRate))
	}
	return ds
}

// ready reports whether a knob may move this tick: not pinned, not cooling
// down. Emitting through emit() starts the cooldown.
func (t *Tuner) ready(knob string) bool {
	if _, ok := t.pinned(knob); ok {
		return false
	}
	return t.cooldown[knob] == 0
}

func (t *Tuner) emit(whenNS int64, knob string, old, new float64, reason string) Decision {
	t.cooldown[knob] = t.cfg.CooldownTicks
	return Decision{WhenNS: whenNS, Knob: knob, Old: old, New: new, Reason: reason}
}

// decideMagazines applies the AIMD magazine rule per cached class: double
// the capacity while magazine traffic into the core is expensive — heap
// locks contended, heap locks frequent per op, or batch refill/flush churn
// high (the signal that survives a lock-free core); halve it when the
// class's occupancy samples show mostly-empty superblocks and all three are
// quiet. Widening is not frag-gated: its worst case is bounded by the
// MaxMagCapacity clamp and undone by the shrink rule once traffic quiets,
// whereas a frag veto would deadlock the controller in exactly the detuned
// regime it exists for (tiny magazines churning a small live set look
// fragmented by construction). Only classes with at least one non-empty
// superblock are considered — an unused class has no evidence either way.
func (t *Tuner) decideMagazines(whenNS int64, sig Signals, k Knobs) []Decision {
	if len(k.MagCapacity) == 0 {
		return nil
	}
	var ds []Decision
	lockHot := sig.HeapContention > t.cfg.HighContention || sig.LockRate > t.cfg.HighLockRate ||
		sig.RefillRate > t.cfg.HighRefillRate
	lockQuiet := sig.HeapContention < t.cfg.LowContention && sig.LockRate < t.cfg.LowLockRate &&
		sig.RefillRate < t.cfg.LowRefillRate
	for _, bs := range sortedSizes(k.MagCapacity) {
		frag, sampled := sig.ClassFrag[bs]
		if !sampled {
			continue
		}
		knob := MagKnob(bs)
		if !t.ready(knob) {
			continue
		}
		cap := k.MagCapacity[bs]
		switch {
		case lockHot && cap < t.cfg.MaxMagCapacity:
			next := clampInt(cap*2, t.cfg.MinMagCapacity, t.cfg.MaxMagCapacity)
			ds = append(ds, t.emit(whenNS, knob, float64(cap), float64(next),
				fmt.Sprintf("transfer traffic high (contention %.3f, locks/op %.3f, refills/op %.3f): widen", sig.HeapContention, sig.LockRate, sig.RefillRate)))
		case lockQuiet && frag > t.cfg.HighFragmentation && cap > t.cfg.MinMagCapacity:
			next := clampInt(cap/2, t.cfg.MinMagCapacity, t.cfg.MaxMagCapacity)
			ds = append(ds, t.emit(whenNS, knob, float64(cap), float64(next),
				fmt.Sprintf("class frag %.2f high, lock traffic quiet: shrink", frag)))
		}
	}
	return ds
}

// decideSlackK raises K when take/evict ping-pong dominates (each extra
// superblock of slack stops one eviction round-trip) and lowers it when
// committed memory has pulled away from live bytes while ping-pong is quiet
// (the slack is just parking memory).
func (t *Tuner) decideSlackK(whenNS int64, sig Signals, k Knobs) (Decision, bool) {
	if !t.ready(KnobSlackK) {
		return Decision{}, false
	}
	switch {
	case sig.PingPong > t.cfg.HighPingPong && k.SlackK < t.cfg.MaxSlackK:
		return t.emit(whenNS, KnobSlackK, float64(k.SlackK), float64(k.SlackK+1),
			fmt.Sprintf("ping-pong %.4f/op high: raise K", sig.PingPong)), true
	case sig.FootprintRatio > t.cfg.HighFootprint && sig.PingPong < t.cfg.LowPingPong &&
		k.SlackK > t.cfg.MinSlackK && t.footprintMeaningful():
		return t.emit(whenNS, KnobSlackK, float64(k.SlackK), float64(k.SlackK-1),
			fmt.Sprintf("footprint %.2fx live, ping-pong quiet: lower K", sig.FootprintRatio)), true
	}
	return Decision{}, false
}

// decideEmptyFraction moves f additively up (a higher f makes eviction
// pickier, cutting migration churn) while footprint is healthy, and
// multiplicatively down when committed memory diverges from live bytes —
// the classic AIMD asymmetry: drift gently toward less synchronization,
// back off fast when memory is the problem.
func (t *Tuner) decideEmptyFraction(whenNS int64, sig Signals, k Knobs) (Decision, bool) {
	if !t.ready(KnobEmptyFraction) {
		return Decision{}, false
	}
	switch {
	case sig.PingPong > t.cfg.HighPingPong && sig.FootprintRatio < t.cfg.LowFootprint &&
		k.EmptyFraction < t.cfg.MaxEmptyFraction:
		next := clampF(k.EmptyFraction+0.05, t.cfg.MinEmptyFraction, t.cfg.MaxEmptyFraction)
		return t.emit(whenNS, KnobEmptyFraction, k.EmptyFraction, next,
			fmt.Sprintf("ping-pong %.4f/op high, footprint %.2fx healthy: raise f", sig.PingPong, sig.FootprintRatio)), true
	case sig.FootprintRatio > t.cfg.HighFootprint && k.EmptyFraction > t.cfg.MinEmptyFraction &&
		t.footprintMeaningful():
		next := clampF(k.EmptyFraction*0.75, t.cfg.MinEmptyFraction, t.cfg.MaxEmptyFraction)
		return t.emit(whenNS, KnobEmptyFraction, k.EmptyFraction, next,
			fmt.Sprintf("footprint %.2fx live: lower f", sig.FootprintRatio)), true
	}
	return Decision{}, false
}

// footprintMeaningful reports whether the last sample carried enough live
// bytes for the footprint ratio to mean anything.
func (t *Tuner) footprintMeaningful() bool {
	return t.prev.LiveBytes >= t.cfg.MinLiveBytes
}

// decideScavenger halves the high watermark (and doubles the release rate)
// when footprint has diverged and a backlog of scavengable empties sits
// above the watermark — the pages are right there, release them sooner and
// faster — and doubles the watermark (halving the rate) when recommit churn
// shows the scavenger releasing pages the workload immediately takes back.
func (t *Tuner) decideScavenger(whenNS int64, sig Signals, k Knobs) []Decision {
	if k.ScavHighWater <= 0 {
		return nil
	}
	var ds []Decision
	bloat := sig.FootprintRatio > t.cfg.HighFootprint && t.footprintMeaningful() &&
		sig.Backlog > k.ScavHighWater
	churn := sig.RecommitChurn > t.cfg.HighRecommitChurn
	if t.ready(KnobScavHighWater) {
		switch {
		case bloat && k.ScavHighWater > t.cfg.MinScavHighWater:
			next := clamp64(k.ScavHighWater/2, t.cfg.MinScavHighWater, t.cfg.MaxScavHighWater)
			ds = append(ds, t.emit(whenNS, KnobScavHighWater, float64(k.ScavHighWater), float64(next),
				fmt.Sprintf("footprint %.2fx live with %d B backlog: lower watermark", sig.FootprintRatio, sig.Backlog)))
		case churn && k.ScavHighWater < t.cfg.MaxScavHighWater:
			next := clamp64(k.ScavHighWater*2, t.cfg.MinScavHighWater, t.cfg.MaxScavHighWater)
			ds = append(ds, t.emit(whenNS, KnobScavHighWater, float64(k.ScavHighWater), float64(next),
				fmt.Sprintf("recommit churn %.2f: raise watermark", sig.RecommitChurn)))
		}
	}
	if k.ScavRate > 0 && t.ready(KnobScavRate) {
		switch {
		case bloat && k.ScavRate < t.cfg.MaxScavRate:
			next := clamp64(k.ScavRate*2, t.cfg.MinScavRate, t.cfg.MaxScavRate)
			ds = append(ds, t.emit(whenNS, KnobScavRate, float64(k.ScavRate), float64(next),
				"backlog under bloat: raise release rate"))
		case churn && k.ScavRate > t.cfg.MinScavRate:
			next := clamp64(k.ScavRate/2, t.cfg.MinScavRate, t.cfg.MaxScavRate)
			ds = append(ds, t.emit(whenNS, KnobScavRate, float64(k.ScavRate), float64(next),
				fmt.Sprintf("recommit churn %.2f: lower release rate", sig.RecommitChurn)))
		}
	}
	return ds
}

func sortedSizes(m map[int]int) []int {
	out := make([]int, 0, len(m))
	for bs := range m {
		out = append(out, bs)
	}
	sort.Ints(out)
	return out
}

func clampInt(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

func clampF(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

func clamp64(v, lo, hi int64) int64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// Target is the allocator surface the controller drives. Sample and Knobs
// read; Apply actuates one decision, reporting whether it took effect (an
// Apply can fail when e.g. the decision names a class the cache does not
// have — the controller drops such decisions from the log).
type Target interface {
	Sample() Sample
	Knobs() Knobs
	Apply(d Decision) bool
}

// Stats is a snapshot of a Controller's activity.
type Stats struct {
	// Ticks counts loop iterations; IdleTicks the subset skipped for lack
	// of traffic; Decisions the knob changes actually applied.
	Ticks     int64
	IdleTicks int64
	Decisions int64
	// Knobs is the most recent knob reading; Signals the most recent
	// non-idle tick's derived signals.
	Knobs   Knobs
	Signals Signals
	// Log is the retained decision history, oldest first.
	Log []Decision
}

// Controller runs a Tuner against a Target on a background goroutine.
// Start/Stop are idempotent pairs in the scavenger's style; Tick is exposed
// for deterministic single-step driving in tests and experiments.
type Controller struct {
	target Target
	tuner  *Tuner
	cfg    Config

	mu   sync.Mutex
	stop chan struct{}
	done chan struct{}

	// tickMu serializes Tick between the loop goroutine and any direct
	// caller; the tuner is not concurrency-safe.
	tickMu sync.Mutex

	ticks     atomic.Int64
	idleTicks atomic.Int64
	decisions atomic.Int64

	logMu    sync.Mutex
	ring     []Decision
	next     int
	full     bool
	lastSig  Signals
	lastKnob Knobs
}

// NewController builds a Controller (not yet running). It panics on an
// invalid config.
func NewController(target Target, cfg Config) *Controller {
	return &Controller{target: target, tuner: NewTuner(cfg), cfg: cfg.WithDefaults()}
}

// Start launches the background goroutine. Starting a running controller is
// a no-op.
func (c *Controller) Start() {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.stop != nil {
		return
	}
	c.stop = make(chan struct{})
	c.done = make(chan struct{})
	go c.loop(c.stop, c.done)
}

// Stop halts the background goroutine and waits for it to exit. Stopping a
// stopped controller is a no-op.
func (c *Controller) Stop() {
	c.mu.Lock()
	stop, done := c.stop, c.done
	c.stop, c.done = nil, nil
	c.mu.Unlock()
	if stop == nil {
		return
	}
	close(stop)
	<-done
}

// Running reports whether the background goroutine is live.
func (c *Controller) Running() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.stop != nil
}

func (c *Controller) loop(stop <-chan struct{}, done chan<- struct{}) {
	defer close(done)
	tick := time.NewTicker(c.cfg.Interval)
	defer tick.Stop()
	for {
		select {
		case <-stop:
			return
		case <-tick.C:
			c.Tick()
		}
	}
}

// Tick runs one sample-decide-actuate cycle synchronously and returns the
// decisions applied. Safe to call concurrently with the background loop
// (ticks serialize), though the normal uses are either-or: background via
// Start, or stepped from a test/experiment.
func (c *Controller) Tick() []Decision {
	c.tickMu.Lock()
	defer c.tickMu.Unlock()
	c.ticks.Add(1)
	s := c.target.Sample()
	k := c.target.Knobs()
	ds, sig, idle := c.tuner.Decide(s, k)
	if idle {
		c.idleTicks.Add(1)
	}
	applied := ds[:0]
	for _, d := range ds {
		if c.target.Apply(d) {
			applied = append(applied, d)
		}
	}
	c.decisions.Add(int64(len(applied)))
	c.logMu.Lock()
	if !idle {
		c.lastSig = sig
	}
	c.lastKnob = k
	for _, d := range applied {
		c.record(d)
	}
	c.logMu.Unlock()
	return applied
}

// record appends one decision to the ring. Caller holds logMu.
func (c *Controller) record(d Decision) {
	if cap(c.ring) == 0 {
		c.ring = make([]Decision, 0, c.cfg.LogSize)
	}
	if len(c.ring) < c.cfg.LogSize {
		c.ring = append(c.ring, d)
		return
	}
	c.ring[c.next] = d
	c.next = (c.next + 1) % c.cfg.LogSize
	c.full = true
}

// Stats snapshots the controller's counters, latest knob/signal readings,
// and the retained decision log (oldest first).
func (c *Controller) Stats() Stats {
	st := Stats{
		Ticks:     c.ticks.Load(),
		IdleTicks: c.idleTicks.Load(),
		Decisions: c.decisions.Load(),
	}
	c.logMu.Lock()
	st.Signals = c.lastSig
	st.Knobs = c.lastKnob
	if c.full {
		st.Log = append(st.Log, c.ring[c.next:]...)
		st.Log = append(st.Log, c.ring[:c.next]...)
	} else {
		st.Log = append(st.Log, c.ring...)
	}
	c.logMu.Unlock()
	return st
}
