// Package allocators is the registry mapping allocator names to
// constructors, used by the benchmark harness, the CLI tools, and the
// examples. The six names cover the paper's full taxonomy plus Hoard itself.
package allocators

import (
	"fmt"
	"sort"

	"hoardgo/internal/alloc"
	"hoardgo/internal/concurrent"
	"hoardgo/internal/core"
	"hoardgo/internal/dlheap"
	"hoardgo/internal/env"
	"hoardgo/internal/ownership"
	"hoardgo/internal/private"
	"hoardgo/internal/serial"
	"hoardgo/internal/threshold"
)

// Maker constructs an allocator sized for procs processors, with locks from
// lf.
type Maker func(procs int, lf env.LockFactory) alloc.Allocator

var registry = map[string]Maker{
	// The paper's contribution. Heap count follows the released Hoard
	// implementation: two heaps per processor.
	"hoard": func(procs int, lf env.LockFactory) alloc.Allocator {
		return core.New(core.Config{Heaps: 2 * procs}, lf)
	},
	// Concurrent single heap: per-size-class locks, no per-processor
	// ownership (the taxonomy's "concurrent single heap" row).
	"concurrent": func(procs int, lf env.LockFactory) alloc.Allocator {
		return concurrent.New(0, lf)
	},
	// Serial single-heap allocator (the paper's Solaris malloc stand-in).
	"serial": func(procs int, lf env.LockFactory) alloc.Allocator {
		return serial.New(0, lf)
	},
	// Doug Lea-style serial allocator: boundary-tag coalescing under one
	// lock (the dlmalloc design ptmalloc wrapped with arenas).
	"dlheap": func(procs int, lf env.LockFactory) alloc.Allocator {
		return dlheap.New(lf)
	},
	// Pure private heaps (Cilk/STL stand-in).
	"private": func(procs int, lf env.LockFactory) alloc.Allocator {
		return private.New(0, lf)
	},
	// Private heaps with ownership (Ptmalloc stand-in: arena stealing on).
	"ownership": func(procs int, lf env.LockFactory) alloc.Allocator {
		return ownership.New(ownership.Config{Arenas: 2 * procs, Steal: true}, lf)
	},
	// Private heaps with thresholds (DYNIX / Vee & Hsu stand-in).
	"threshold": func(procs int, lf env.LockFactory) alloc.Allocator {
		return threshold.New(threshold.Config{}, lf)
	},
}

// Names returns the registered allocator names, sorted, with "hoard" first —
// the order benchmark tables are reported in.
func Names() []string {
	var rest []string
	for name := range registry {
		if name != "hoard" {
			rest = append(rest, name)
		}
	}
	sort.Strings(rest)
	return append([]string{"hoard"}, rest...)
}

// Make constructs the named allocator.
func Make(name string, procs int, lf env.LockFactory) (alloc.Allocator, error) {
	mk, ok := registry[name]
	if !ok {
		return nil, fmt.Errorf("allocators: unknown allocator %q (have %v)", name, Names())
	}
	return mk(procs, lf), nil
}

// MustMake is Make for static names; it panics on unknown names.
func MustMake(name string, procs int, lf env.LockFactory) alloc.Allocator {
	a, err := Make(name, procs, lf)
	if err != nil {
		panic(err)
	}
	return a
}
