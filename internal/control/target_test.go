package control

import (
	"testing"
	"time"

	"hoardgo/internal/alloc"
	"hoardgo/internal/core"
	"hoardgo/internal/env"
	"hoardgo/internal/metrics"
	"hoardgo/internal/scavenge"
	"hoardgo/internal/tcache"
)

// buildStack assembles core + tcache + scavenger + metrics registry the way
// the public package does, returning the pieces individually.
func buildStack(t *testing.T, magCap int) (*tcache.Allocator, *CoreTarget) {
	t.Helper()
	reg := metrics.NewRegistry()
	h := core.New(core.Config{Heaps: 4}, reg.WrapFactory(env.RealLockFactory{}))
	tc := tcache.New(h, tcache.Config{Capacity: magCap})
	scav := scavenge.New(fakeScavTarget{}, scavenge.Config{})
	return tc, NewCoreTarget(h, tc, scav, reg)
}

type fakeScavTarget struct{}

func (fakeScavTarget) EmptyBytes() (int64, bool) { return 0, true }
func (fakeScavTarget) Scavenge(int64, time.Duration) (int64, bool) {
	return 0, true
}

func TestCoreTargetKnobsRoundTrip(t *testing.T) {
	_, target := buildStack(t, 8)
	k := target.Knobs()
	if k.EmptyFraction != 0.25 || k.SlackK != 1 {
		t.Fatalf("default knobs %+v", k)
	}
	if len(k.MagCapacity) == 0 {
		t.Fatal("no magazine knobs with a tcache layered")
	}
	for bs, c := range k.MagCapacity {
		if c != 8 {
			t.Fatalf("class %d capacity %d, want 8", bs, c)
		}
	}
	if k.ScavHighWater == 0 || k.ScavRate == 0 {
		t.Fatalf("scavenger knobs not visible: %+v", k)
	}

	// Apply every knob kind and read it back.
	apply := func(knob string, v float64) {
		t.Helper()
		if !target.Apply(Decision{Knob: knob, New: v}) {
			t.Fatalf("Apply(%s=%v) refused", knob, v)
		}
	}
	apply(KnobEmptyFraction, 0.5)
	apply(KnobSlackK, 3)
	apply(KnobScavHighWater, 1<<20)
	apply(KnobScavRate, 1<<20)
	var anyClass int
	for bs := range k.MagCapacity {
		anyClass = bs
		break
	}
	apply(MagKnob(anyClass), 16)

	k = target.Knobs()
	if k.EmptyFraction != 0.5 || k.SlackK != 3 {
		t.Fatalf("knobs after apply: %+v", k)
	}
	if k.MagCapacity[anyClass] != 16 {
		t.Fatalf("magazine capacity %d, want 16", k.MagCapacity[anyClass])
	}
	if k.ScavHighWater != 1<<20 || k.ScavLowWater != 1<<19 {
		t.Fatalf("scav watermarks (%d, %d)", k.ScavHighWater, k.ScavLowWater)
	}

	// Unknown knobs and out-of-range values are refused, not applied.
	if target.Apply(Decision{Knob: "no_such_knob", New: 1}) {
		t.Fatal("unknown knob accepted")
	}
	if target.Apply(Decision{Knob: MagKnob(3), New: 8}) {
		t.Fatal("unknown magazine class accepted")
	}
	if target.Apply(Decision{Knob: KnobEmptyFraction, New: 2}) {
		t.Fatal("f=2 accepted")
	}
}

func TestCoreTargetSampleUnderTraffic(t *testing.T) {
	tc, target := buildStack(t, 8)
	th := tc.NewThread(&env.RealEnv{ID: 0})
	var ptrs []alloc.Ptr
	for i := 0; i < 2000; i++ {
		ptrs = append(ptrs, tc.Malloc(th, 64))
	}
	for _, p := range ptrs[:1000] {
		tc.Free(th, p)
	}
	s := target.Sample()
	if s.Mallocs < 2000 || s.Frees < 1000 {
		t.Fatalf("ops not visible: %+v", s)
	}
	if s.LiveBytes <= 0 || s.FootprintBytes <= 0 {
		t.Fatalf("gauges not visible: live %d footprint %d", s.LiveBytes, s.FootprintBytes)
	}
	if s.HeapAcquires == 0 {
		t.Fatal("lock counters not visible through the registry")
	}
	found := false
	for _, cs := range s.Classes {
		if cs.InUseBytes > 0 && cs.HeldBytes >= cs.InUseBytes {
			found = true
		}
	}
	if !found {
		t.Fatalf("no occupied class sampled: %+v", s.Classes)
	}
	for _, p := range ptrs[1000:] {
		tc.Free(th, p)
	}
}

// TestControllerConvergesFromBadDefaults is the in-package convergence
// check: a detuned stack (tiny magazines) under a malloc/free storm must
// have its magazine capacity widened by the controller within a bounded
// number of stepped ticks.
func TestControllerConvergesFromBadDefaults(t *testing.T) {
	tc, target := buildStack(t, 2)
	ctl := NewController(target, Config{MinOpsPerTick: 16})

	th := tc.NewThread(&env.RealEnv{ID: 0})
	start := target.Knobs().MagCapacity

	// A standing live set keeps the sampled occupancy dense (low
	// fragmentation). The churn is phase-separated — a run of frees, then a
	// run of mallocs — because an interleaved free-one/malloc-one loop is
	// absorbed entirely by even a capacity-2 magazine (each free's block is
	// handed right back by the next malloc). Batched runs overflow and
	// drain the tiny magazines, so nearly every operation pays a batch
	// transfer into the core: the detuned regime the widen rule exists for.
	live := make([]alloc.Ptr, 5000)
	for i := range live {
		live[i] = tc.Malloc(th, 48)
	}
	widened := false
	for tick := 0; tick < 30 && !widened; tick++ {
		for i := 0; i < 2500; i++ {
			tc.Free(th, live[i])
		}
		for i := 0; i < 2500; i++ {
			live[i] = tc.Malloc(th, 48)
		}
		ctl.Tick()
		for bs, cur := range target.Knobs().MagCapacity {
			if cur > start[bs] {
				widened = true
			}
		}
	}
	for _, p := range live {
		tc.Free(th, p)
	}
	if !widened {
		st := ctl.Stats()
		t.Fatalf("controller never widened magazines: stats %+v signals %+v", st, st.Signals)
	}
	st := ctl.Stats()
	if st.Decisions == 0 || len(st.Log) == 0 {
		t.Fatalf("no decisions logged: %+v", st)
	}
	for _, d := range st.Log {
		if d.Reason == "" {
			t.Fatalf("decision %v missing reason", d)
		}
	}
}

func TestControllerStartStopIdempotent(t *testing.T) {
	_, target := buildStack(t, 8)
	ctl := NewController(target, Config{})
	ctl.Start()
	ctl.Start()
	if !ctl.Running() {
		t.Fatal("not running after Start")
	}
	ctl.Stop()
	ctl.Stop()
	if ctl.Running() {
		t.Fatal("running after Stop")
	}
	ctl.Start()
	if !ctl.Running() {
		t.Fatal("restart failed")
	}
	ctl.Stop()
}

func TestControllerLogRingBounded(t *testing.T) {
	_, target := buildStack(t, 8)
	ctl := NewController(target, Config{LogSize: 4, Manual: map[string]float64{
		KnobSlackK: 5,
	}})
	// Each tick re-pins SlackK... only when drifted; drift it each tick to
	// force a decision, overflowing the 4-entry ring.
	for i := 0; i < 10; i++ {
		if err := target.Core.SetSlackK(1); err != nil {
			t.Fatal(err)
		}
		ctl.Tick()
	}
	st := ctl.Stats()
	if len(st.Log) != 4 {
		t.Fatalf("log length %d, want ring capacity 4", len(st.Log))
	}
	if st.Decisions != 10 {
		t.Fatalf("decisions %d, want 10", st.Decisions)
	}
	for i := 1; i < len(st.Log); i++ {
		if st.Log[i].WhenNS < st.Log[i-1].WhenNS {
			t.Fatal("log not oldest-first")
		}
	}
}
