package workload

import (
	"hoardgo/internal/alloc"
	"hoardgo/internal/env"
)

// ThreadtestConfig parameterizes the paper's threadtest benchmark: t threads
// each repeatedly allocate and free their share of N small objects. It
// stresses raw malloc/free throughput with no cross-thread frees.
type ThreadtestConfig struct {
	// Threads is t. Objects are split evenly across threads.
	Threads int
	// Iterations is the number of allocate-all/free-all rounds.
	Iterations int
	// Objects is N, the total objects per round across all threads
	// (100,000 in the paper).
	Objects int
	// ObjSize is the object size in bytes (8 in the paper).
	ObjSize int
	// Work is extra application work (abstract units) per object, to
	// study allocator-bound versus compute-bound scaling.
	Work int
}

// DefaultThreadtest mirrors the paper's configuration, with the round count
// kept simulation-friendly.
func DefaultThreadtest(threads int) ThreadtestConfig {
	return ThreadtestConfig{
		Threads:    threads,
		Iterations: 3,
		Objects:    20000,
		ObjSize:    8,
	}
}

// Threadtest runs the benchmark on h.
func Threadtest(h *Harness, cfg ThreadtestConfig) Result {
	perThread := cfg.Objects / cfg.Threads
	if perThread < 1 {
		perThread = 1
	}
	h.Par(cfg.Threads, func(id int, e env.Env, t *alloc.Thread) {
		a := h.Allocator()
		ptrs := make([]alloc.Ptr, perThread)
		for it := 0; it < cfg.Iterations; it++ {
			for i := range ptrs {
				ptrs[i] = a.Malloc(t, cfg.ObjSize)
				h.OnAlloc(cfg.ObjSize)
				WriteObj(a, e, ptrs[i], cfg.ObjSize)
				if cfg.Work > 0 {
					e.Charge(env.OpWork, int64(cfg.Work))
				}
			}
			for i := range ptrs {
				a.Free(t, ptrs[i])
				h.OnFree(cfg.ObjSize)
			}
		}
	})
	ops := int64(cfg.Threads) * int64(perThread) * int64(cfg.Iterations) * 2
	return h.Result(cfg.Threads, ops)
}
