package experiments

import (
	"fmt"
	"time"

	hoard "hoardgo"
	"hoardgo/internal/core"
	"hoardgo/internal/loadgen"
)

// This file is the serving half of A14: the hoardload phase schedule
// (diurnal ramp, hotspot shift, burst, drain) played through the same
// three-arm ablation as the workload half in controlbench.go. The arms share
// the request stream (same seed), so the comparison isolates the knobs. The
// tuned arm runs the public-API controller (Config.Control) rather than a
// hand-wired one — this is also the end-to-end exercise of the wiring
// cmd/hoardload's -tune flag uses.

// TunedLoadPhase is one phase's tail latencies in one arm.
type TunedLoadPhase struct {
	Name          string `json:"name"`
	Requests      int64  `json:"requests"`
	MallocP999NS  int64  `json:"malloc_p999_ns"`
	RequestP999NS int64  `json:"request_p999_ns"`
	EndFootprint  int64  `json:"end_footprint_bytes"`
}

// TunedLoadArm is one arm of the serving ablation.
type TunedLoadArm struct {
	Arm    string           `json:"arm"`
	Phases []TunedLoadPhase `json:"phases"`
	// PeakFootprint is the run's high-water committed bytes;
	// FinalFootprint what remains after the drain and a forced release.
	PeakFootprint  int64 `json:"peak_footprint_bytes"`
	ReleasedBytes  int64 `json:"released_bytes"`
	FinalFootprint int64 `json:"final_footprint_bytes"`
	// Controller activity (tuned arm only).
	Ticks      int64              `json:"ticks,omitempty"`
	Decisions  int64              `json:"decisions,omitempty"`
	FinalKnobs map[string]float64 `json:"final_knobs,omitempty"`
}

// TunedLoadResult is the serving ablation: the phase schedule under detuned
// static knobs, the same bad knobs with the controller live, and the
// hand-tuned static configuration.
type TunedLoadResult struct {
	Workers int          `json:"workers"`
	Seed    int64        `json:"seed"`
	Detuned TunedLoadArm `json:"detuned"`
	Tuned   TunedLoadArm `json:"tuned"`
	Oracle  TunedLoadArm `json:"oracle"`
	// FootprintRatioVsOracle is tuned final footprint over oracle's.
	FootprintRatioVsOracle float64 `json:"footprint_ratio_vs_oracle"`
}

// tunedLoadShape is the scale-dependent schedule geometry (a compact version
// of cmd/hoardload's shape — this ablation runs three arms, so each is kept
// shorter than the PR9 single-arm runs).
func tunedLoadShape(scale Scale) (keys int64, sizeMin, sizeMax int, dur time.Duration, rate float64) {
	if scale == Full {
		return 16384, 16, 4096, 600 * time.Millisecond, 12000
	}
	return 4096, 16, 2048, 200 * time.Millisecond, 6000
}

// tunedLoadConfig builds one arm's allocator configuration.
func tunedLoadConfig(arm string, workers int) hoard.Config {
	cfg := hoard.Config{
		Procs:   workers,
		Metrics: true,
		Scavenge: hoard.ScavengeConfig{
			Enabled:  true,
			Interval: 5 * time.Millisecond,
			ColdAge:  20 * time.Millisecond,
		},
	}
	switch arm {
	case "oracle":
		cfg.ThreadCacheCapacity = 64
	default: // detuned and tuned start from the same bad knobs
		cfg.ThreadCacheCapacity = 4
		cfg.Hoard = core.Config{EmptyFraction: 0.05, K: core.KNone}
	}
	if arm == "tuned" {
		cfg.Control = hoard.ControlConfig{
			Enabled:       true,
			Interval:      2 * time.Millisecond,
			CooldownTicks: 2,
			MinOpsPerTick: 32,
		}
	}
	return cfg
}

// measureTunedLoadArm plays the phase schedule on one arm.
func measureTunedLoadArm(arm string, workers int, seed int64, scale Scale) (TunedLoadArm, error) {
	a, err := hoard.New(tunedLoadConfig(arm, workers))
	if err != nil {
		return TunedLoadArm{}, err
	}
	defer a.Close()

	keys, sizeMin, sizeMax, dur, rate := tunedLoadShape(scale)
	res, err := loadgen.Run(loadgen.Config{
		Allocator: a,
		Workers:   workers,
		Slots:     int(keys),
		Seed:      seed,
	}, loadgen.StandardPhases(keys, sizeMin, sizeMax, dur, rate))
	if err != nil {
		return TunedLoadArm{}, fmt.Errorf("tuneload %s arm: %w", arm, err)
	}

	out := TunedLoadArm{Arm: arm}
	for _, ph := range res.Phases {
		out.Phases = append(out.Phases, TunedLoadPhase{
			Name:          ph.Name,
			Requests:      ph.Requests,
			MallocP999NS:  ph.Malloc.P999,
			RequestP999NS: ph.Request.P999,
			EndFootprint:  ph.EndFootprintBytes,
		})
	}
	for _, pt := range res.Timeline {
		if pt.FootprintBytes > out.PeakFootprint {
			out.PeakFootprint = pt.FootprintBytes
		}
	}
	if st := a.Stats(); st.PeakFootprintBytes > out.PeakFootprint {
		out.PeakFootprint = st.PeakFootprintBytes
	}
	if arm == "tuned" {
		cs := a.StopController()
		out.Ticks = cs.Ticks
		out.Decisions = cs.Decisions
		out.FinalKnobs = cs.Knobs
	}
	a.StopScavenger()
	out.ReleasedBytes = a.ReleaseMemory()
	out.FinalFootprint = a.Stats().FootprintBytes
	return out, nil
}

// MeasureTunedLoad runs the serving ablation's three arms over the same
// deterministic request stream.
func MeasureTunedLoad(workers int, seed int64, scale Scale, progress func(string, int)) (TunedLoadResult, error) {
	r := TunedLoadResult{Workers: workers, Seed: seed}
	for _, arm := range []string{"detuned", "tuned", "oracle"} {
		if progress != nil {
			progress("tuneload/"+arm, workers)
		}
		m, err := measureTunedLoadArm(arm, workers, seed, scale)
		if err != nil {
			return r, err
		}
		switch arm {
		case "detuned":
			r.Detuned = m
		case "tuned":
			r.Tuned = m
		case "oracle":
			r.Oracle = m
		}
	}
	if r.Oracle.FinalFootprint > 0 {
		r.FootprintRatioVsOracle = float64(r.Tuned.FinalFootprint) / float64(r.Oracle.FinalFootprint)
	}
	return r, nil
}

// Serving thresholds: the tuned arm must hold the same absolute tail-latency
// SLOs the PR9 smoke gate enforces (wall-clock tails are machine-dependent;
// the SLOs are sized for a loaded CI box) and not carry materially more
// resting footprint than the hand-tuned arm out of the drain.
const (
	tuneLoadMaxMallocP999  = 100 * time.Millisecond
	tuneLoadMaxRequestP999 = 500 * time.Millisecond
	tuneLoadMaxFootprint   = 1.5
	tuneLoadFootprintFloor = 8 << 20
)

// CheckTunedLoad enforces the serving half's convergence thresholds.
func CheckTunedLoad(r TunedLoadResult) error {
	if r.Tuned.Decisions == 0 {
		return fmt.Errorf("tuneload: controller never engaged under the phase schedule")
	}
	for _, ph := range r.Tuned.Phases {
		if ph.MallocP999NS > tuneLoadMaxMallocP999.Nanoseconds() {
			return fmt.Errorf("tuneload: tuned arm phase %s malloc p999 %dns exceeds %v",
				ph.Name, ph.MallocP999NS, tuneLoadMaxMallocP999)
		}
		if ph.RequestP999NS > tuneLoadMaxRequestP999.Nanoseconds() {
			return fmt.Errorf("tuneload: tuned arm phase %s request p999 %dns exceeds %v",
				ph.Name, ph.RequestP999NS, tuneLoadMaxRequestP999)
		}
	}
	if r.Tuned.FinalFootprint > tuneLoadFootprintFloor && r.Oracle.FinalFootprint > 0 &&
		r.FootprintRatioVsOracle > tuneLoadMaxFootprint {
		return fmt.Errorf("tuneload: tuned arm final footprint %d B is %.2fx the oracle arm (limit %.2fx)",
			r.Tuned.FinalFootprint, r.FootprintRatioVsOracle, tuneLoadMaxFootprint)
	}
	return nil
}
