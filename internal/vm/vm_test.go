package vm

import (
	"math/rand"
	"sync"
	"testing"
	"testing/quick"
)

func TestReserveBasics(t *testing.T) {
	s := New()
	sp := s.Reserve(100, 0, "tag")
	if sp.Len != PageSize {
		t.Fatalf("Len = %d, want page-rounded %d", sp.Len, PageSize)
	}
	if sp.Base%PageSize != 0 {
		t.Fatalf("Base %#x not page aligned", sp.Base)
	}
	if sp.Owner != "tag" {
		t.Fatalf("Owner = %v", sp.Owner)
	}
	if got := s.Lookup(sp.Base); got != sp {
		t.Fatalf("Lookup(base) = %v, want span", got)
	}
	if got := s.Lookup(sp.Base + uint64(sp.Len) - 1); got != sp {
		t.Fatalf("Lookup(last byte) = %v, want span", got)
	}
	if got := s.Lookup(sp.End()); got == sp {
		t.Fatalf("Lookup(end) returned span, want other/nil")
	}
}

func TestReserveAlignment(t *testing.T) {
	s := New()
	for _, align := range []int{0, PageSize, 8192, 1 << 16, 1 << 20} {
		sp := s.Reserve(PageSize, align, nil)
		a := align
		if a == 0 {
			a = PageSize
		}
		if sp.Base%uint64(a) != 0 {
			t.Errorf("align %d: base %#x misaligned", align, sp.Base)
		}
	}
}

func TestReserveInvalid(t *testing.T) {
	s := New()
	for _, tc := range []struct {
		size, align int
	}{{0, 0}, {-1, 0}, {16, 3}, {16, 100}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Reserve(%d, %d) did not panic", tc.size, tc.align)
				}
			}()
			s.Reserve(tc.size, tc.align, nil)
		}()
	}
}

func TestReleaseInvalidatesLookup(t *testing.T) {
	s := New()
	sp := s.Reserve(2*PageSize, 0, nil)
	base := sp.Base
	s.Release(sp)
	if got := s.Lookup(base); got != nil {
		t.Fatalf("Lookup after Release = %v, want nil", got)
	}
	if got := s.Lookup(base + PageSize); got != nil {
		t.Fatalf("Lookup after Release (2nd page) = %v, want nil", got)
	}
}

func TestRecycleReusesBacking(t *testing.T) {
	s := New()
	sp := s.Reserve(8192, 8192, nil)
	d := &sp.Data()[0]
	s.Release(sp)
	sp2 := s.Reserve(8192, 8192, nil)
	if &sp2.Data()[0] != d {
		t.Fatalf("recycled span did not reuse backing memory")
	}
	if s.Stats().Recycled != 1 {
		t.Fatalf("Recycled = %d, want 1", s.Stats().Recycled)
	}
}

func TestRecycleRespectsAlignment(t *testing.T) {
	s := New()
	// Force a span whose base is page- but not 64K-aligned.
	s.Reserve(PageSize, 0, nil)
	sp := s.Reserve(PageSize, 0, nil)
	if sp.Base%(1<<16) == 0 {
		sp = s.Reserve(PageSize, 0, nil) // skip accidental alignment
	}
	s.Release(sp)
	sp2 := s.Reserve(PageSize, 1<<16, nil)
	if sp2.Base%(1<<16) != 0 {
		t.Fatalf("aligned Reserve got misaligned recycled span %#x", sp2.Base)
	}
}

func TestCommittedAccounting(t *testing.T) {
	s := New()
	a := s.Reserve(PageSize, 0, nil)
	b := s.Reserve(3*PageSize, 0, nil)
	if got := s.Committed(); got != 4*PageSize {
		t.Fatalf("Committed = %d, want %d", got, 4*PageSize)
	}
	s.Release(a)
	if got := s.Committed(); got != 3*PageSize {
		t.Fatalf("Committed after release = %d, want %d", got, 3*PageSize)
	}
	if got := s.PeakCommitted(); got != 4*PageSize {
		t.Fatalf("Peak = %d, want %d", got, 4*PageSize)
	}
	s.Release(b)
	if got := s.Committed(); got != 0 {
		t.Fatalf("Committed after all released = %d, want 0", got)
	}
	s.ResetPeak()
	if got := s.PeakCommitted(); got != 0 {
		t.Fatalf("Peak after ResetPeak = %d, want 0", got)
	}
}

func TestBytesViews(t *testing.T) {
	s := New()
	sp := s.Reserve(PageSize, 0, nil)
	buf := s.Bytes(sp.Base+8, 16)
	for i := range buf {
		buf[i] = byte(i + 1)
	}
	again := sp.Bytes(8, 16)
	for i := range again {
		if again[i] != byte(i+1) {
			t.Fatalf("byte %d = %d, want %d", i, again[i], i+1)
		}
	}
}

func TestBytesOutOfRangePanics(t *testing.T) {
	s := New()
	sp := s.Reserve(PageSize, 0, nil)
	defer func() {
		if recover() == nil {
			t.Fatal("Bytes escaping span did not panic")
		}
	}()
	s.Bytes(sp.Base+PageSize-4, 8)
}

func TestPoison(t *testing.T) {
	s := New()
	s.SetPoison(true)
	sp := s.Reserve(PageSize, 0, nil)
	sp.Data()[0] = 42
	s.Release(sp)
	sp2 := s.Reserve(PageSize, 0, nil)
	if sp2.Data()[0] != 0xDB {
		t.Fatalf("poisoned byte = %#x, want 0xDB", sp2.Data()[0])
	}
}

func TestLookupUnmappedRegions(t *testing.T) {
	s := New()
	if s.Lookup(0) != nil {
		t.Fatal("Lookup(0) != nil")
	}
	if s.Lookup(baseAddr) != nil {
		t.Fatal("Lookup of never-reserved address != nil")
	}
	if s.Lookup(maxAddr) != nil || s.Lookup(1<<62) != nil {
		t.Fatal("Lookup past address space != nil")
	}
}

// TestPropertyLookupMatchesReservation drives random reserve/release
// sequences and checks that Lookup agrees with the live-span set at every
// interior and exterior probe.
func TestPropertyLookupMatchesReservation(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		s := New()
		type rec struct{ sp *Span }
		var live []rec
		for op := 0; op < 200; op++ {
			if len(live) == 0 || rng.Intn(3) != 0 {
				size := (1 + rng.Intn(8)) * PageSize
				live = append(live, rec{s.Reserve(size, 0, op)})
			} else {
				i := rng.Intn(len(live))
				s.Release(live[i].sp)
				live[i] = live[len(live)-1]
				live = live[:len(live)-1]
			}
		}
		for _, r := range live {
			mid := r.sp.Base + uint64(rng.Intn(r.sp.Len))
			if s.Lookup(mid) != r.sp {
				return false
			}
		}
		var total int64
		for _, r := range live {
			total += int64(r.sp.Len)
		}
		return total == s.Committed()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestConcurrentReserveRelease(t *testing.T) {
	s := New()
	var wg sync.WaitGroup
	const workers = 8
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			var mine []*Span
			for i := 0; i < 500; i++ {
				if len(mine) == 0 || rng.Intn(2) == 0 {
					sp := s.Reserve((1+rng.Intn(4))*PageSize, 0, w)
					if s.Lookup(sp.Base) != sp {
						t.Errorf("own span not visible")
						return
					}
					mine = append(mine, sp)
				} else {
					i := rng.Intn(len(mine))
					s.Release(mine[i])
					mine[i] = mine[len(mine)-1]
					mine = mine[:len(mine)-1]
				}
			}
			for _, sp := range mine {
				s.Release(sp)
			}
		}(w)
	}
	wg.Wait()
	if got := s.Committed(); got != 0 {
		t.Fatalf("Committed after teardown = %d, want 0", got)
	}
}

func BenchmarkLookup(b *testing.B) {
	s := New()
	spans := make([]*Span, 128)
	for i := range spans {
		spans[i] = s.Reserve(8192, 8192, nil)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sp := spans[i&127]
		if s.Lookup(sp.Base+64) != sp {
			b.Fatal("bad lookup")
		}
	}
}

func BenchmarkReserveRelease(b *testing.B) {
	s := New()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Release(s.Reserve(8192, 8192, nil))
	}
}
