package hoard

import (
	"fmt"
	"time"

	"hoardgo/internal/env"
	"hoardgo/internal/scavenge"
)

// This file is the public face of the page-level reclamation subsystem
// (internal/scavenge policy + internal/core mechanism): a background
// scavenger that decommits empty superblocks parked on the global heap, and
// a forced-release entry point. See DESIGN.md §10.

// ScavengeConfig configures the background scavenger. The zero value is
// disabled; setting Enabled with all other fields zero runs the documented
// defaults (engage above 256 KiB of empty superblocks, release down to
// 128 KiB at up to 64 MiB/s, 100ms cold age).
type ScavengeConfig struct {
	// Enabled starts the background scavenger with New. (The scavenger can
	// also be started later with StartScavenger.)
	Enabled bool

	// HighWaterBytes engages the scavenger when empty committed bytes on
	// the global heap exceed it; LowWaterBytes disengages it. See
	// internal/scavenge for the full policy semantics and defaults.
	HighWaterBytes int64
	LowWaterBytes  int64

	// ColdAge is the minimum time a superblock sits parked before it is
	// eligible for decommit.
	ColdAge time.Duration

	// Interval is the background poll period.
	Interval time.Duration

	// BytesPerSec and BurstBytes pace releases with a token bucket.
	BytesPerSec int64
	BurstBytes  int64

	// MaxBackoff caps the exponential backoff used when the global heap is
	// contended.
	MaxBackoff time.Duration
}

func (c ScavengeConfig) internal() scavenge.Config {
	return scavenge.Config{
		HighWaterBytes: c.HighWaterBytes,
		LowWaterBytes:  c.LowWaterBytes,
		ColdAge:        c.ColdAge,
		Interval:       c.Interval,
		BytesPerSec:    c.BytesPerSec,
		BurstBytes:     c.BurstBytes,
		MaxBackoff:     c.MaxBackoff,
	}
}

// ScavengerStats is a snapshot of the background scavenger's activity.
type ScavengerStats struct {
	// Wakeups counts poll-loop iterations; Passes the polls that released
	// at least one byte.
	Wakeups, Passes int64
	// ReleasedBytes is the cumulative bytes decommitted by the background
	// scavenger (forced ReleaseMemory calls are counted separately, in
	// Stats.ScavengedBytes, which covers both).
	ReleasedBytes int64
	// Backoffs counts polls abandoned because the global heap was
	// contended.
	Backoffs int64
}

// scavengeTarget adapts the Hoard core to the scavenge.Target interface.
// Both methods use the core's TryLock entry points so the background
// goroutine never queues behind allocation traffic.
type scavengeTarget struct {
	a *Allocator
}

func (t scavengeTarget) EmptyBytes() (int64, bool) {
	return t.a.unwrap().TryGlobalEmptyBytes(&env.RealEnv{ID: -1})
}

func (t scavengeTarget) Scavenge(maxBytes int64, coldAge time.Duration) (int64, bool) {
	return t.a.unwrap().TryScavengeGlobal(&env.RealEnv{ID: -1}, maxBytes, int64(coldAge))
}

// StartScavenger launches the background scavenger with the allocator's
// ScavengeConfig (Config.Scavenge.Enabled does this from New). It errors for
// non-Hoard policies, which have no global heap to scavenge, and when a
// scavenger is already running.
func (a *Allocator) StartScavenger() error {
	if a.unwrap() == nil {
		return fmt.Errorf("hoard: policy %q does not support scavenging", a.impl.Name())
	}
	a.scavMu.Lock()
	defer a.scavMu.Unlock()
	if a.scav != nil && a.scav.Running() {
		return fmt.Errorf("hoard: scavenger already running")
	}
	if a.scav == nil {
		a.scav = scavenge.New(scavengeTarget{a}, a.scavCfg)
	}
	a.scav.Start()
	return nil
}

// StopScavenger halts the background scavenger and waits for its goroutine
// to exit, returning the activity snapshot. With no scavenger running it
// returns zeros.
func (a *Allocator) StopScavenger() ScavengerStats {
	a.scavMu.Lock()
	scav := a.scav
	a.scavMu.Unlock()
	if scav == nil {
		return ScavengerStats{}
	}
	scav.Stop()
	return a.ScavengerStats()
}

// ScavengerStats snapshots the background scavenger's counters (zeros if it
// was never started). The scavenger may be running.
func (a *Allocator) ScavengerStats() ScavengerStats {
	a.scavMu.Lock()
	scav := a.scav
	a.scavMu.Unlock()
	if scav == nil {
		return ScavengerStats{}
	}
	st := scav.Stats()
	return ScavengerStats{
		Wakeups:       st.Wakeups,
		Passes:        st.Passes,
		ReleasedBytes: st.ReleasedBytes,
		Backoffs:      st.Backoffs,
	}
}

// SetScavengerWatermarks retunes the scavenger's hysteresis watermarks in
// place: the running loop applies them on its next poll, without a
// Stop/Start. Callable before StartScavenger too (the values carry into the
// eventual start). Errors for non-Hoard policies, a low watermark above the
// high one, or negative values.
func (a *Allocator) SetScavengerWatermarks(high, low int64) error {
	s, err := a.scavHandle()
	if err != nil {
		return err
	}
	return s.SetWatermarks(high, low)
}

// SetScavengerRate retunes the scavenger's token-bucket release rate and
// burst cap in place, applied on the loop's next poll. Errors for non-Hoard
// policies, a negative rate, or a non-positive burst.
func (a *Allocator) SetScavengerRate(bytesPerSec, burstBytes int64) error {
	s, err := a.scavHandle()
	if err != nil {
		return err
	}
	return s.SetRate(bytesPerSec, burstBytes)
}

// ScavengerWatermarks returns the watermarks currently in force (from
// config, SetScavengerWatermarks, or the self-tuning controller).
func (a *Allocator) ScavengerWatermarks() (high, low int64, err error) {
	s, err := a.scavHandle()
	if err != nil {
		return 0, 0, err
	}
	high, low = s.Watermarks()
	return high, low, nil
}

// scavHandle returns the scavenger, building (but not starting) it on first
// use so pacing knobs can be set before StartScavenger.
func (a *Allocator) scavHandle() (*scavenge.Scavenger, error) {
	if a.unwrap() == nil {
		return nil, fmt.Errorf("hoard: policy %q does not support scavenging", a.impl.Name())
	}
	a.scavMu.Lock()
	defer a.scavMu.Unlock()
	if a.scav == nil {
		a.scav = scavenge.New(scavengeTarget{a}, a.scavCfg)
	}
	return a.scav, nil
}

// ReleaseMemory forcibly returns every empty superblock parked on the global
// heap to the (simulated) OS, regardless of age or pacing — the
// malloc_trim(3) of this allocator. It blocks on the global heap's lock and
// returns the bytes released. Non-Hoard policies release nothing.
//
// Before stripping the global heap it reconciles every per-processor heap's
// pending remote frees and restores the emptiness invariant. Without that, a
// workload whose last act is a bulk cross-thread free (a drain sweep, a
// worker pool tearing down) leaves its blocks parked on remote-free stacks:
// the owning heaps still count them as in use, no superblock ever reaches
// the global heap, and trim finds nothing to release no matter how empty the
// allocator really is.
//
// The memory stays reserved: addresses remain valid, and the superblocks are
// recommitted transparently when allocation demand returns.
func (a *Allocator) ReleaseMemory() int64 {
	h := a.unwrap()
	if h == nil {
		return 0
	}
	e := &env.RealEnv{ID: -1}
	h.Reconcile(e)
	return h.ReleaseMemory(e)
}
