// Package threshold implements the paper taxonomy's "private heaps with
// thresholds", after Vee & Hsu's allocator and the DYNIX kernel allocator
// (McKenney & Slingwine).
//
// Each thread keeps a per-class cache of free blocks bounded by watermarks:
// frees beyond the high watermark spill half the cache to a per-class
// global pool; mallocs on an empty cache refill a batch from the pool (or
// carve a fresh span). Blowup is therefore bounded — stranded memory per
// thread is capped by the watermark — but blocks move between threads at
// *object* granularity, so the allocator still induces false sharing, and
// every spill/refill traverses the blocks it moves, adding overhead that
// superblock-granularity transfers (Hoard) avoid.
package threshold

import (
	"encoding/binary"
	"fmt"
	"sync"
	"sync/atomic"

	"hoardgo/internal/alloc"
	"hoardgo/internal/env"
	"hoardgo/internal/sizeclass"
	"hoardgo/internal/superblock"
	"hoardgo/internal/vm"
)

// Config parameterizes the threshold allocator.
type Config struct {
	// SuperblockSize is the carving span size (0 selects 8 KiB).
	SuperblockSize int
	// Watermark is the batch size Lo: refills fetch up to Lo blocks and
	// spills trigger at 2*Lo, returning Lo blocks (0 selects 32).
	Watermark int
}

type spanTag struct {
	class     int
	blockSize int
	carved    int
}

// classPool is the global per-class pool.
type classPool struct {
	lock  env.Lock
	free  alloc.Ptr
	count int
	carve *vm.Span
	off   int
}

type threadState struct {
	free  []alloc.Ptr
	count []int
}

// Allocator is the private-heaps-with-thresholds allocator.
type Allocator struct {
	cfg     Config
	space   vm.Backend
	classes *sizeclass.Table
	pools   []*classPool
	acct    alloc.Accounting
	largeLv atomic.Int64
	spills  atomic.Int64
	refills atomic.Int64

	mu      sync.Mutex
	threads []*threadState
	spans   []*vm.Span
}

// New creates a threshold allocator.
func New(cfg Config, lf env.LockFactory) *Allocator {
	if cfg.SuperblockSize == 0 {
		cfg.SuperblockSize = superblock.DefaultSize
	}
	if cfg.Watermark == 0 {
		cfg.Watermark = 32
	}
	if cfg.Watermark < 1 {
		panic(fmt.Sprintf("threshold: watermark %d", cfg.Watermark))
	}
	a := &Allocator{
		cfg:     cfg,
		space:   vm.New(),
		classes: sizeclass.New(sizeclass.DefaultBase, sizeclass.Quantum, cfg.SuperblockSize/2),
	}
	a.pools = make([]*classPool, a.classes.NumClasses())
	for i := range a.pools {
		a.pools[i] = &classPool{lock: lf.NewLock(fmt.Sprintf("threshold.class%d", i))}
	}
	return a
}

// Name implements alloc.Allocator.
func (a *Allocator) Name() string { return "threshold" }

// Space implements alloc.Allocator.
func (a *Allocator) Space() vm.Backend { return a.space }

// NewThread implements alloc.Allocator.
func (a *Allocator) NewThread(e env.Env) *alloc.Thread {
	n := a.classes.NumClasses()
	ts := &threadState{free: make([]alloc.Ptr, n), count: make([]int, n)}
	a.mu.Lock()
	a.threads = append(a.threads, ts)
	a.mu.Unlock()
	return &alloc.Thread{ID: e.ThreadID(), Env: e, State: ts}
}

// link reads the next pointer stored in a free block.
func (a *Allocator) link(e env.Env, p alloc.Ptr) alloc.Ptr {
	e.Touch(uint64(p), 8, false)
	return alloc.Ptr(binary.LittleEndian.Uint64(a.space.Bytes(uint64(p), 8)))
}

// setLink writes the next pointer into a free block.
func (a *Allocator) setLink(e env.Env, p, next alloc.Ptr) {
	binary.LittleEndian.PutUint64(a.space.Bytes(uint64(p), 8), uint64(next))
	e.Touch(uint64(p), 8, true)
}

// Malloc implements alloc.Allocator.
func (a *Allocator) Malloc(t *alloc.Thread, size int) alloc.Ptr {
	e := t.Env
	if size > a.classes.MaxSize() {
		a.largeLv.Add(int64(roundPages(size)))
		return alloc.MallocLarge(a.space, &a.acct, e, size)
	}
	ts := t.State.(*threadState)
	class, _ := a.classes.ClassFor(size)
	blockSize := a.classes.Size(class)

	if ts.free[class].IsNil() {
		a.refill(e, ts, class, blockSize)
	}
	p := ts.free[class]
	ts.free[class] = a.link(e, p)
	ts.count[class]--
	e.Charge(env.OpMallocFast, 1)
	a.acct.OnMalloc(blockSize)
	return p
}

func roundPages(n int) int { return (n + vm.PageSize - 1) &^ (vm.PageSize - 1) }

// refill moves up to Watermark blocks from the class's global pool (carving
// new spans as needed) onto the calling thread's cache.
func (a *Allocator) refill(e env.Env, ts *threadState, class, blockSize int) {
	pool := a.pools[class]
	e.Charge(env.OpMallocSlow, 1)
	a.refills.Add(1)
	pool.lock.Lock(e)
	got := 0
	for got < a.cfg.Watermark {
		var p alloc.Ptr
		if !pool.free.IsNil() {
			p = pool.free
			pool.free = a.link(e, p)
			pool.count--
		} else {
			if pool.carve == nil || pool.off+blockSize > pool.carve.Len {
				e.Charge(env.OpOSAlloc, 1)
				pool.carve = a.space.Reserve(a.cfg.SuperblockSize, a.cfg.SuperblockSize,
					&spanTag{class: class, blockSize: blockSize})
				pool.off = 0
				a.mu.Lock()
				a.spans = append(a.spans, pool.carve)
				a.mu.Unlock()
			}
			p = alloc.Ptr(pool.carve.Base + uint64(pool.off))
			pool.off += blockSize
			pool.carve.Owner.(*spanTag).carved++
		}
		a.setLink(e, p, ts.free[class])
		ts.free[class] = p
		ts.count[class]++
		got++
		e.Charge(env.OpListScan, 1)
	}
	pool.lock.Unlock(e)
}

// Free implements alloc.Allocator. Blocks land on the freeing thread's
// cache; crossing the high watermark spills a batch to the global pool.
func (a *Allocator) Free(t *alloc.Thread, p alloc.Ptr) {
	if p.IsNil() {
		return
	}
	e := t.Env
	sp := a.space.Lookup(uint64(p))
	if sp == nil {
		panic(fmt.Sprintf("threshold: free of unknown pointer %#x", uint64(p)))
	}
	switch owner := sp.Owner.(type) {
	case *alloc.LargeObj:
		a.largeLv.Add(int64(-owner.Size))
		alloc.FreeLarge(a.space, &a.acct, e, "threshold", sp, p)
	case *spanTag:
		if (uint64(p)-sp.Base)%uint64(owner.blockSize) != 0 {
			panic(fmt.Sprintf("threshold: free of misaligned pointer %#x", uint64(p)))
		}
		ts := t.State.(*threadState)
		class := owner.class
		a.setLink(e, p, ts.free[class])
		ts.free[class] = p
		ts.count[class]++
		e.Charge(env.OpFree, 1)
		a.acct.OnFree(owner.blockSize)
		if ts.count[class] > 2*a.cfg.Watermark {
			a.spill(e, ts, class)
		}
	default:
		panic(fmt.Sprintf("threshold: free of foreign pointer %#x", uint64(p)))
	}
}

// spill returns Watermark blocks from the thread cache to the global pool.
func (a *Allocator) spill(e env.Env, ts *threadState, class int) {
	pool := a.pools[class]
	a.spills.Add(1)
	pool.lock.Lock(e)
	for i := 0; i < a.cfg.Watermark && !ts.free[class].IsNil(); i++ {
		p := ts.free[class]
		ts.free[class] = a.link(e, p)
		ts.count[class]--
		a.setLink(e, p, pool.free)
		pool.free = p
		pool.count++
		e.Charge(env.OpListScan, 1)
	}
	pool.lock.Unlock(e)
}

// UsableSize implements alloc.Allocator.
func (a *Allocator) UsableSize(p alloc.Ptr) int {
	sp := a.space.Lookup(uint64(p))
	if sp == nil {
		panic(fmt.Sprintf("threshold: UsableSize of unknown pointer %#x", uint64(p)))
	}
	switch owner := sp.Owner.(type) {
	case *alloc.LargeObj:
		return owner.Size
	case *spanTag:
		return owner.blockSize
	}
	panic(fmt.Sprintf("threshold: UsableSize of foreign pointer %#x", uint64(p)))
}

// Bytes implements alloc.Allocator.
func (a *Allocator) Bytes(p alloc.Ptr, n int) []byte {
	if n > a.UsableSize(p) {
		panic(fmt.Sprintf("threshold: Bytes(%#x, %d) exceeds usable size", uint64(p), n))
	}
	return a.space.Bytes(uint64(p), n)
}

// Stats implements alloc.Allocator.
func (a *Allocator) Stats() alloc.Stats {
	var st alloc.Stats
	a.acct.Fill(&st)
	st.OSReserves = a.space.Stats().Reserves
	return st
}

// SpillsRefills reports watermark crossings, the overhead knob this design
// trades against blowup.
func (a *Allocator) SpillsRefills() (spills, refills int64) {
	return a.spills.Load(), a.refills.Load()
}

// CheckIntegrity implements alloc.Allocator: validates every thread cache
// and pool list, then the live gauge. Requires quiescence.
func (a *Allocator) CheckIntegrity() error {
	a.mu.Lock()
	defer a.mu.Unlock()
	e := &env.RealEnv{}
	seen := make(map[alloc.Ptr]bool)
	var freeBytes int64
	walk := func(head alloc.Ptr, wantCount, class int, where string) error {
		n := 0
		for p := head; !p.IsNil(); {
			if seen[p] {
				return fmt.Errorf("threshold: block %#x on two free lists", uint64(p))
			}
			seen[p] = true
			sp := a.space.Lookup(uint64(p))
			if sp == nil {
				return fmt.Errorf("threshold: %s list references dead span (%#x)", where, uint64(p))
			}
			tag, ok := sp.Owner.(*spanTag)
			if !ok || tag.class != class {
				return fmt.Errorf("threshold: block %#x on wrong list %s", uint64(p), where)
			}
			n++
			p = a.link(e, p)
		}
		if n != wantCount {
			return fmt.Errorf("threshold: %s count %d, list has %d", where, wantCount, n)
		}
		freeBytes += int64(n) * int64(a.classes.Size(class))
		return nil
	}
	for ti, ts := range a.threads {
		for c := range ts.free {
			if err := walk(ts.free[c], ts.count[c], c, fmt.Sprintf("thread %d class %d", ti, c)); err != nil {
				return err
			}
		}
	}
	for c, pool := range a.pools {
		if err := walk(pool.free, pool.count, c, fmt.Sprintf("pool class %d", c)); err != nil {
			return err
		}
	}
	var carvedBytes int64
	for _, sp := range a.spans {
		tag := sp.Owner.(*spanTag)
		if tag.carved < 0 || tag.carved*tag.blockSize > sp.Len {
			return fmt.Errorf("threshold: span %#x over-carved", sp.Base)
		}
		carvedBytes += int64(tag.carved) * int64(tag.blockSize)
	}
	live := carvedBytes - freeBytes + a.largeLv.Load()
	if got := a.acct.Live(); got != live {
		return fmt.Errorf("threshold: live gauge %d, span accounting %d", got, live)
	}
	return nil
}
