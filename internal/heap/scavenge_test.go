package heap

import (
	"math"
	"testing"

	"hoardgo/internal/superblock"
	"hoardgo/internal/vm"
	"hoardgo/internal/vm/vmtest"
)

// parkEmpty inserts n empty superblocks of the given class with ascending
// park stamps stamp0, stamp0+1, ...
func parkEmpty(h *Heap, space vm.Backend, class, n int, stamp0 int64) []*superblock.Superblock {
	sbs := make([]*superblock.Superblock, n)
	for i := range sbs {
		sb := newSuper(space, class)
		sb.SetParkedAt(stamp0 + int64(i))
		h.Insert(sb)
		sbs[i] = sb
	}
	return sbs
}

func TestScavengeEmptiesOldestFirst(t *testing.T) {
	space := vmtest.NewSized(t, testS)
	h := newHeap(0)
	sbs := parkEmpty(h, space, 2, 4, 10) // stamps 10, 11, 12, 13
	released, n := h.ScavengeEmpties(e, 2*testS, math.MaxInt64)
	if released != 2*testS || n != 2 {
		t.Fatalf("released %d bytes / %d superblocks, want %d / 2", released, n, 2*testS)
	}
	if !sbs[0].Decommitted() || !sbs[1].Decommitted() {
		t.Fatal("oldest two superblocks not decommitted")
	}
	if sbs[2].Decommitted() || sbs[3].Decommitted() {
		t.Fatal("newest superblocks decommitted — victim order wrong")
	}
	if got := space.Committed(); got != 2*testS {
		t.Fatalf("Committed = %d, want %d", got, 2*testS)
	}
	// a/u accounting is untouched: the superblocks are still held.
	if h.A() != 4*testS || h.Superblocks() != 4 {
		t.Fatalf("a=%d n=%d changed by scavenge", h.A(), h.Superblocks())
	}
	occ := h.SampleOccupancy(false)
	if occ.Decommitted != 2 {
		t.Fatalf("occupancy Decommitted = %d, want 2", occ.Decommitted)
	}
	if err := h.CheckIntegrity(); err != nil {
		t.Fatal(err)
	}
}

func TestScavengeEmptiesColdAge(t *testing.T) {
	space := vmtest.NewSized(t, testS)
	h := newHeap(0)
	parkEmpty(h, space, 1, 3, 100) // stamps 100, 101, 102
	released, n := h.ScavengeEmpties(e, 100*testS, 101)
	if n != 2 || released != 2*testS {
		t.Fatalf("scavenged %d superblocks (%d bytes), want the 2 with stamp <= 101", n, released)
	}
	// Nothing else is cold enough.
	if _, n := h.ScavengeEmpties(e, 100*testS, 101); n != 0 {
		t.Fatalf("second pass scavenged %d, want 0", n)
	}
}

func TestScavengeSkipsNonEmpty(t *testing.T) {
	space := vmtest.NewSized(t, testS)
	h := newHeap(0)
	sb := newSuper(space, 2)
	h.Insert(sb)
	if _, ok := h.AllocBlock(e, 2); !ok {
		t.Fatal("AllocBlock failed")
	}
	if rel, n := h.ScavengeEmpties(e, 100*testS, math.MaxInt64); n != 0 || rel != 0 {
		t.Fatalf("scavenged a non-empty superblock (%d bytes)", rel)
	}
	if got := h.EmptyCommittedBytes(e); got != 0 {
		t.Fatalf("EmptyCommittedBytes = %d, want 0", got)
	}
}

func TestEmptyCommittedBytesExcludesDecommitted(t *testing.T) {
	space := vmtest.NewSized(t, testS)
	h := newHeap(0)
	parkEmpty(h, space, 3, 3, 0)
	if got := h.EmptyCommittedBytes(e); got != 3*testS {
		t.Fatalf("EmptyCommittedBytes = %d, want %d", got, 3*testS)
	}
	h.ScavengeEmpties(e, testS, math.MaxInt64)
	if got := h.EmptyCommittedBytes(e); got != 2*testS {
		t.Fatalf("EmptyCommittedBytes after scavenge = %d, want %d", got, 2*testS)
	}
}

func TestTakeSuperRecommitsSameClass(t *testing.T) {
	space := vmtest.NewSized(t, testS)
	h := newHeap(0)
	parkEmpty(h, space, 2, 1, 0)
	h.ScavengeEmpties(e, testS, math.MaxInt64)
	if got := space.Committed(); got != 0 {
		t.Fatalf("Committed = %d, want 0", got)
	}
	sb := h.TakeSuper(e, 2, blockSizeFor(2))
	if sb == nil {
		t.Fatal("TakeSuper found nothing")
	}
	if sb.Decommitted() {
		t.Fatal("TakeSuper returned a decommitted superblock")
	}
	if got := space.Committed(); got != testS {
		t.Fatalf("Committed = %d, want %d after transparent recommit", got, testS)
	}
	// The superblock is immediately usable.
	if _, ok := sb.AllocBlock(e); !ok {
		t.Fatal("AllocBlock failed on recommitted superblock")
	}
}

func TestTakeSuperRecommitsCrossClass(t *testing.T) {
	space := vmtest.NewSized(t, testS)
	h := newHeap(0)
	parkEmpty(h, space, 5, 1, 0)
	h.ScavengeEmpties(e, testS, math.MaxInt64)
	// Different class: TakeSuper must recommit before Reinit.
	sb := h.TakeSuper(e, 1, blockSizeFor(1))
	if sb == nil {
		t.Fatal("TakeSuper found nothing cross-class")
	}
	if sb.Class() != 1 || sb.Decommitted() {
		t.Fatalf("class %d decommitted %v", sb.Class(), sb.Decommitted())
	}
	if _, ok := sb.AllocBlock(e); !ok {
		t.Fatal("AllocBlock failed on reinitialized recommitted superblock")
	}
}
