package loadgen

import "testing"

func TestSweepProcs(t *testing.T) {
	ps := SweepProcs()
	if len(ps) == 0 || ps[0] != 1 {
		t.Fatalf("SweepProcs() = %v, want leading 1", ps)
	}
	for i := 1; i < len(ps); i++ {
		if ps[i] <= ps[i-1] {
			t.Fatalf("SweepProcs() = %v not strictly increasing", ps)
		}
	}
	// Even a single-core box must sweep past 1 worker.
	if ps[len(ps)-1] < 4 {
		t.Fatalf("SweepProcs() = %v, want reach >= 4", ps)
	}
}

func TestWallClockSweepSim(t *testing.T) {
	entries, err := WallClockSweep("sim", []int{1, 2}, 3000, 1)
	if err != nil {
		t.Fatalf("WallClockSweep: %v", err)
	}
	if len(entries) != 2 {
		t.Fatalf("got %d entries, want 2", len(entries))
	}
	for _, e := range entries {
		if e.Backend != "sim" {
			t.Errorf("backend = %q, want sim", e.Backend)
		}
		if e.NumCPU <= 0 {
			t.Errorf("NumCPU = %d", e.NumCPU)
		}
		// 3000 mallocs+frees per worker, plus batch traffic, so at least
		// 2*3000*procs ops total.
		if e.Ops < int64(6000*e.Procs) {
			t.Errorf("P=%d: Ops = %d, want >= %d", e.Procs, e.Ops, 6000*e.Procs)
		}
		if e.OpsPerMS <= 0 {
			t.Errorf("P=%d: OpsPerMS = %f", e.Procs, e.OpsPerMS)
		}
		if e.Malloc.Count != int64(3000*e.Procs) {
			t.Errorf("P=%d: malloc hist count = %d, want %d", e.Procs, e.Malloc.Count, 3000*e.Procs)
		}
		if e.Malloc.P999 < e.Malloc.P50 {
			t.Errorf("P=%d: malloc quantiles disordered: %+v", e.Procs, e.Malloc)
		}
		// Metrics is always on in sweep cells; the heap locks must have
		// been exercised.
		if e.LockAcquires == 0 {
			t.Errorf("P=%d: no lock acquisitions recorded", e.Procs)
		}
	}
}

func TestWallClockSweepArena(t *testing.T) {
	entries, err := WallClockSweep("arena", []int{1}, 1000, 2)
	if err != nil {
		t.Skipf("arena backend unavailable: %v", err)
	}
	if entries[0].Backend != "arena" {
		t.Fatalf("backend = %q, want arena", entries[0].Backend)
	}
	if entries[0].Malloc.Count != 1000 {
		t.Fatalf("malloc hist count = %d, want 1000", entries[0].Malloc.Count)
	}
}
