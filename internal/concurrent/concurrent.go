// Package concurrent implements the remaining row of the paper's allocator
// taxonomy (§2.1): a *concurrent single heap*, after allocators like
// Iyengar's and Johnson & Davis's that replace the serial heap's one lock
// with fine-grained per-size-class locking (the paper discusses
// concurrent-B-tree and per-freelist-lock designs).
//
// One heap is shared by all threads, but each size class has its own lock,
// so threads allocating different sizes proceed in parallel. This fixes a
// slice of the serial allocator's scalability problem — and nothing else:
// same-class allocations still serialize (and most programs allocate a few
// hot sizes), blocks are still handed out line-adjacent to different
// threads (active false sharing), and memory still never moves between
// uses, though a single heap at least avoids blowup entirely. The paper's
// point is that heap concurrency without per-processor ownership is not
// enough; this implementation lets the experiments show it.
package concurrent

import (
	"fmt"

	"hoardgo/internal/alloc"
	"hoardgo/internal/env"
	"hoardgo/internal/heap"
	"hoardgo/internal/sizeclass"
	"hoardgo/internal/superblock"
	"hoardgo/internal/vm"
)

// Allocator is the concurrent single-heap allocator.
type Allocator struct {
	space   vm.Backend
	classes *sizeclass.Table
	sbSize  int
	// One heap per size class, each with its own lock; a "heap" here is
	// just the fullness-group machinery for that class's superblocks.
	classHeaps []*heap.Heap
	acct       alloc.Accounting
}

// New creates a concurrent single-heap allocator with superblock size
// sbSize (0 selects the default 8 KiB).
func New(sbSize int, lf env.LockFactory) *Allocator {
	if sbSize == 0 {
		sbSize = superblock.DefaultSize
	}
	classes := sizeclass.New(sizeclass.DefaultBase, sizeclass.Quantum, sbSize/2)
	a := &Allocator{
		space:   vm.New(),
		classes: classes,
		sbSize:  sbSize,
	}
	a.classHeaps = make([]*heap.Heap, classes.NumClasses())
	for c := range a.classHeaps {
		// Heap ids mirror class indices; emptiness parameters are
		// inert (a single shared heap never evicts).
		a.classHeaps[c] = heap.New(c, sbSize, 0.5, 0, classes.NumClasses(),
			lf.NewLock(fmt.Sprintf("concurrent.class%d", c)))
	}
	return a
}

// Name implements alloc.Allocator.
func (a *Allocator) Name() string { return "concurrent" }

// Space implements alloc.Allocator.
func (a *Allocator) Space() vm.Backend { return a.space }

// NewThread implements alloc.Allocator; the concurrent heap keeps no
// per-thread state (that is its defining limitation).
func (a *Allocator) NewThread(e env.Env) *alloc.Thread {
	return &alloc.Thread{ID: e.ThreadID(), Env: e}
}

// Malloc implements alloc.Allocator.
func (a *Allocator) Malloc(t *alloc.Thread, size int) alloc.Ptr {
	e := t.Env
	if size > a.classes.MaxSize() {
		return alloc.MallocLarge(a.space, &a.acct, e, size)
	}
	class, _ := a.classes.ClassFor(size)
	blockSize := a.classes.Size(class)
	h := a.classHeaps[class]
	h.Lock.Lock(e)
	p, ok := h.AllocBlock(e, class)
	if !ok {
		e.Charge(env.OpMallocSlow, 1)
		e.Charge(env.OpOSAlloc, 1)
		h.Insert(superblock.New(a.space, a.sbSize, class, blockSize))
		p, _ = h.AllocBlock(e, class)
	}
	h.Lock.Unlock(e)
	e.Charge(env.OpMallocFast, 1)
	a.acct.OnMalloc(blockSize)
	return p
}

// Free implements alloc.Allocator.
func (a *Allocator) Free(t *alloc.Thread, p alloc.Ptr) {
	if p.IsNil() {
		return
	}
	e := t.Env
	sp := a.space.Lookup(uint64(p))
	if sp == nil {
		panic(fmt.Sprintf("concurrent: free of unknown pointer %#x", uint64(p)))
	}
	switch owner := sp.Owner.(type) {
	case *alloc.LargeObj:
		alloc.FreeLarge(a.space, &a.acct, e, "concurrent", sp, p)
	case *superblock.Superblock:
		h := a.classHeaps[owner.Class()]
		h.Lock.Lock(e)
		h.FreeBlock(e, owner, p)
		h.Lock.Unlock(e)
		e.Charge(env.OpFree, 1)
		a.acct.OnFree(owner.BlockSize())
	default:
		panic(fmt.Sprintf("concurrent: free of foreign pointer %#x", uint64(p)))
	}
}

// UsableSize implements alloc.Allocator.
func (a *Allocator) UsableSize(p alloc.Ptr) int {
	sp := a.space.Lookup(uint64(p))
	if sp == nil {
		panic(fmt.Sprintf("concurrent: UsableSize of unknown pointer %#x", uint64(p)))
	}
	switch owner := sp.Owner.(type) {
	case *alloc.LargeObj:
		return owner.Size
	case *superblock.Superblock:
		return owner.BlockSize()
	}
	panic(fmt.Sprintf("concurrent: UsableSize of foreign pointer %#x", uint64(p)))
}

// Bytes implements alloc.Allocator.
func (a *Allocator) Bytes(p alloc.Ptr, n int) []byte {
	if n > a.UsableSize(p) {
		panic(fmt.Sprintf("concurrent: Bytes(%#x, %d) exceeds usable size", uint64(p), n))
	}
	return a.space.Bytes(uint64(p), n)
}

// Stats implements alloc.Allocator.
func (a *Allocator) Stats() alloc.Stats {
	var st alloc.Stats
	a.acct.Fill(&st)
	st.OSReserves = a.space.Stats().Reserves
	return st
}

// CheckIntegrity implements alloc.Allocator.
func (a *Allocator) CheckIntegrity() error {
	var u int64
	var held int64
	for _, h := range a.classHeaps {
		if err := h.CheckIntegrity(); err != nil {
			return err
		}
		u += h.U()
		held += h.A()
	}
	large := a.space.Committed() - held
	if got := u + large; got != a.acct.Live() {
		return fmt.Errorf("concurrent: live accounting %d != heaps %d + large %d", a.acct.Live(), u, large)
	}
	return nil
}
