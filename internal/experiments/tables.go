package experiments

import (
	"fmt"
	"io"

	"hoardgo/internal/alloc"
	"hoardgo/internal/allocators"
	"hoardgo/internal/core"
	"hoardgo/internal/env"
	"hoardgo/internal/serial"
	"hoardgo/internal/tcache"
	"hoardgo/internal/workload"
)

// Table is a generic experiment result table.
type Table struct {
	// ID, Title and Paper identify the experiment.
	ID, Title, Paper string
	// Header names the columns; Rows carry formatted cells.
	Header []string
	Rows   [][]string
}

// Format renders the table with aligned columns.
func (t Table) Format(w io.Writer) {
	fmt.Fprintf(w, "%s — %s\n", t.Title, t.Paper)
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	printRow := func(cells []string) {
		for i, c := range cells {
			if i == 0 {
				fmt.Fprintf(w, "%-*s", widths[i]+2, c)
			} else {
				fmt.Fprintf(w, " %*s", widths[i], c)
			}
		}
		fmt.Fprintln(w)
	}
	printRow(t.Header)
	for _, row := range t.Rows {
		printRow(row)
	}
	fmt.Fprintln(w)
}

// fragProcs is the processor count used for table experiments (the paper's
// full machine).
const fragProcs = 14

// Fragmentation runs every benchmark under Hoard and reports the paper's
// fragmentation table: max heap (committed) over max live (requested).
func Fragmentation(opts Options, progress func(string, int)) Table {
	t := Table{
		ID: "frag", Title: "T2",
		Paper:  "Hoard fragmentation: max heap / max live per benchmark (14 threads)",
		Header: []string{"benchmark", "max live", "max heap", "fragmentation"},
	}
	for _, def := range Figures() {
		if def.ID == "active-false" || def.ID == "passive-false" {
			// Microbenchmarks with a few live bytes per thread have no
			// meaningful fragmentation ratio; the paper's table covers
			// the application benchmarks.
			continue
		}
		if progress != nil {
			progress("hoard/"+def.ID, fragProcs)
		}
		h := workload.NewSim("hoard", fragProcs, opts.Cost)
		res := def.Run(opts.Scale)(h, fragProcs)
		t.Rows = append(t.Rows, []string{
			def.Title,
			fmtBytes(res.MaxLive),
			fmtBytes(res.VM.PeakCommitted),
			fmt.Sprintf("%.2f", res.Fragmentation()),
		})
	}
	return t
}

// Uniproc compares single-processor runtime across allocators — the paper's
// check that Hoard's multiprocessor machinery costs almost nothing
// sequentially. Values are normalized to the serial allocator (1.00 =
// identical).
func Uniproc(opts Options, progress func(string, int)) Table {
	t := Table{
		ID: "uniproc", Title: "T3",
		Paper:  "uniprocessor runtime, normalized to the serial allocator (P=1)",
		Header: append([]string{"benchmark"}, opts.Allocs...),
	}
	for _, id := range []string{"threadtest", "shbench", "larson"} {
		def, _ := FigureByID(id)
		run := def.Run(opts.Scale)
		times := map[string]int64{}
		for _, name := range opts.Allocs {
			if progress != nil {
				progress(name+"/"+id, 1)
			}
			h := workload.NewSim(name, 1, opts.Cost)
			times[name] = run(h, 1).ElapsedNS
		}
		base := float64(times["serial"])
		row := []string{def.Title}
		for _, name := range opts.Allocs {
			row = append(row, fmt.Sprintf("%.2f", float64(times[name])/base))
		}
		t.Rows = append(t.Rows, row)
	}
	return t
}

// Blowup runs the producer-consumer probe per allocator and reports memory
// growth across rounds — the paper's section 2.2 taxonomy, measured.
func Blowup(opts Options, progress func(string, int)) Table {
	const procs = 4
	cfg := workload.DefaultProdCons(procs)
	if opts.Scale == Quick {
		cfg.Rounds, cfg.Batch = 20, 400
	}
	ideal := int64(cfg.Batch * cfg.ObjSize)
	t := Table{
		ID: "blowup", Title: "T4",
		Paper: fmt.Sprintf("producer-consumer blowup: committed memory across %d rounds (live set %s)",
			cfg.Rounds, fmtBytes(ideal)),
		Header: []string{"allocator", "round 1", "final round", "growth", "final/live"},
	}
	for _, name := range opts.Allocs {
		if progress != nil {
			progress(name+"/prodcons", procs)
		}
		h := workload.NewSim(name, procs, opts.Cost)
		_, series := workload.ProdCons(h, cfg)
		first, last := series[0], series[len(series)-1]
		t.Rows = append(t.Rows, []string{
			name,
			fmtBytes(first),
			fmtBytes(last),
			fmt.Sprintf("%.2fx", float64(last)/float64(first)),
			fmt.Sprintf("%.1fx", float64(last)/float64(ideal)),
		})
	}
	return t
}

// BlowupShift runs the phase-shifted allocation probe: the workload whose
// worst case separates ownership-based allocators (O(P) blowup) from Hoard
// (O(1)).
func BlowupShift(opts Options, progress func(string, int)) Table {
	const procs = 8
	cfg := workload.DefaultPhaseShift(procs)
	ideal := int64(cfg.LiveObjects * cfg.ObjSize)
	t := Table{
		ID: "blowup-shift", Title: "T4b",
		Paper: fmt.Sprintf("phase-shifted allocation: committed memory after %d phases (live set %s, %d threads)",
			cfg.Phases, fmtBytes(ideal), procs),
		Header: []string{"allocator", "after phase 1", "final", "final/live"},
	}
	for _, name := range opts.Allocs {
		if progress != nil {
			progress(name+"/phaseshift", procs)
		}
		h := workload.NewSim(name, procs, opts.Cost)
		_, series := workload.PhaseShift(h, cfg)
		first, last := series[0], series[len(series)-1]
		t.Rows = append(t.Rows, []string{
			name,
			fmtBytes(first),
			fmtBytes(last),
			fmt.Sprintf("%.1fx", float64(last)/float64(ideal)),
		})
	}
	return t
}

// Coherence reports the cache model's counters for the false-sharing
// benchmarks — the direct measurement behind figures F4/F5.
func Coherence(opts Options, progress func(string, int)) Table {
	const procs = 8
	t := Table{
		ID: "coherence", Title: "A4",
		Paper:  "cache-line transfers on the false-sharing benchmarks (P=8)",
		Header: []string{"allocator", "bench", "remote transfers", "invalidations", "virtual ms"},
	}
	for _, id := range []string{"active-false", "passive-false"} {
		def, _ := FigureByID(id)
		run := def.Run(opts.Scale)
		for _, name := range opts.Allocs {
			if progress != nil {
				progress(name+"/"+id, procs)
			}
			h := workload.NewSim(name, procs, opts.Cost)
			res := run(h, procs)
			t.Rows = append(t.Rows, []string{
				name, def.ID,
				fmt.Sprintf("%d", res.Cache.RemoteTransfers),
				fmt.Sprintf("%d", res.Cache.Invalidations),
				fmt.Sprintf("%.2f", float64(res.ElapsedNS)/1e6),
			})
		}
	}
	return t
}

// hoardMaker builds a custom-parameter Hoard constructor for ablations.
func hoardMaker(cfg core.Config) allocators.Maker {
	return func(procs int, lf env.LockFactory) alloc.Allocator {
		c := cfg
		if c.Heaps == 0 {
			c.Heaps = 2 * procs
		}
		return core.New(c, lf)
	}
}

// AblateF sweeps the empty fraction f — the knob trading fragmentation
// against superblock traffic.
func AblateF(opts Options, progress func(string, int)) Table {
	const procs = 8
	t := Table{
		ID: "ablate-f", Title: "A1",
		Paper:  "empty fraction f (with K=0, isolating f): time, fragmentation, superblock traffic (shbench, P=8)",
		Header: []string{"f", "virtual ms", "fragmentation", "superblock moves", "global hits"},
	}
	def, _ := FigureByID("shbench")
	run := def.Run(opts.Scale)
	for _, f := range []float64{0.125, 0.25, 0.5, 0.75} {
		if progress != nil {
			progress(fmt.Sprintf("hoard(f=%v)", f), procs)
		}
		h := workload.NewSimMaker("hoard", procs, opts.Cost, hoardMaker(core.Config{EmptyFraction: f, K: core.KNone}))
		res := run(h, procs)
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%.3f", f),
			fmt.Sprintf("%.2f", float64(res.ElapsedNS)/1e6),
			fmt.Sprintf("%.2f", res.Fragmentation()),
			fmt.Sprintf("%d", res.Alloc.SuperblockMoves),
			fmt.Sprintf("%d", res.Alloc.GlobalHeapHits),
		})
	}
	return t
}

// AblateS sweeps the superblock size S.
func AblateS(opts Options, progress func(string, int)) Table {
	const procs = 8
	t := Table{
		ID: "ablate-s", Title: "A2",
		Paper:  "superblock size S: time and fragmentation (threadtest, P=8)",
		Header: []string{"S", "virtual ms", "fragmentation", "OS reserves"},
	}
	def, _ := FigureByID("threadtest")
	run := def.Run(opts.Scale)
	for _, s := range []int{4096, 8192, 16384, 65536} {
		if progress != nil {
			progress(fmt.Sprintf("hoard(S=%d)", s), procs)
		}
		h := workload.NewSimMaker("hoard", procs, opts.Cost, hoardMaker(core.Config{SuperblockSize: s}))
		res := run(h, procs)
		t.Rows = append(t.Rows, []string{
			fmtBytes(int64(s)),
			fmt.Sprintf("%.2f", float64(res.ElapsedNS)/1e6),
			fmt.Sprintf("%.2f", res.Fragmentation()),
			fmt.Sprintf("%d", res.Alloc.OSReserves),
		})
	}
	return t
}

// AblateK sweeps the emptiness invariant's slack K. K=0 reproduces a
// reproduction finding: free-heavy phases evict still-live superblocks and
// serialize their remaining frees on the global heap.
func AblateK(opts Options, progress func(string, int)) Table {
	const procs = 8
	t := Table{
		ID: "ablate-k", Title: "A4b",
		Paper:  "invariant slack K: global-heap serialization in free-heavy phases (threadtest, P=8)",
		Header: []string{"K", "virtual ms", "remote frees", "lock-free frees", "superblock moves", "global wait ms"},
	}
	def, _ := FigureByID("threadtest")
	run := def.Run(opts.Scale)
	for _, k := range []int{core.KNone, 1, 2, 4} {
		if progress != nil {
			progress(fmt.Sprintf("hoard(K=%d)", k), procs)
		}
		h := workload.NewSimMaker("hoard", procs, opts.Cost, hoardMaker(core.Config{K: k}))
		res := run(h, procs)
		var globalWait int64
		for _, l := range res.Locks {
			if l.Name == "hoard.heap0" {
				globalWait = l.WaitTime
			}
		}
		shown := k
		if k == core.KNone {
			shown = 0
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", shown),
			fmt.Sprintf("%.2f", float64(res.ElapsedNS)/1e6),
			fmt.Sprintf("%d", res.Alloc.RemoteFrees),
			fmt.Sprintf("%d", res.Alloc.RemoteFastFrees),
			fmt.Sprintf("%d", res.Alloc.SuperblockMoves),
			fmt.Sprintf("%.2f", float64(globalWait)/1e6),
		})
	}
	return t
}

// AblateHeaps sweeps the per-processor heap count (the released Hoard used
// 2P to thin out hash collisions).
func AblateHeaps(opts Options, progress func(string, int)) Table {
	const procs = 8
	t := Table{
		ID: "ablate-heaps", Title: "A3",
		Paper:  "heap count under hashed thread ids: collision cost vs memory (larson, P=8)",
		Header: []string{"heaps", "virtual ms", "max heap", "fragmentation"},
	}
	def, _ := FigureByID("larson")
	run := def.Run(opts.Scale)
	for _, mult := range []int{1, 2, 4} {
		heaps := mult * procs
		if progress != nil {
			progress(fmt.Sprintf("hoard(heaps=%d)", heaps), procs)
		}
		// HashThreads reproduces arbitrary pthread ids: with only P
		// heaps, hash collisions co-locate threads on heaps — the
		// reason the released Hoard used 2P.
		h := workload.NewSimMaker("hoard", procs, opts.Cost,
			hoardMaker(core.Config{Heaps: heaps, HashThreads: true}))
		res := run(h, procs)
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%dP", mult),
			fmt.Sprintf("%.2f", float64(res.ElapsedNS)/1e6),
			fmtBytes(res.VM.PeakCommitted),
			fmt.Sprintf("%.2f", res.Fragmentation()),
		})
	}
	return t
}

// tcacheMaker layers a thread cache over Hoard.
func tcacheMaker(capacity int) allocators.Maker {
	return func(procs int, lf env.LockFactory) alloc.Allocator {
		return tcache.New(core.New(core.Config{Heaps: 2 * procs}, lf), tcache.Config{Capacity: capacity})
	}
}

// AblateTCache measures the thread-cache extension (the direction Hoard's
// successors took): lock-free fast paths against the return of passive
// false sharing.
func AblateTCache(opts Options, progress func(string, int)) Table {
	const procs = 8
	t := Table{
		ID: "tcache", Title: "A6",
		Paper:  "thread-cache extension over Hoard (P=8): speed vs passive false sharing",
		Header: []string{"allocator", "bench", "virtual ms", "remote transfers"},
	}
	for _, id := range []string{"threadtest", "larson", "passive-false"} {
		def, _ := FigureByID(id)
		run := def.Run(opts.Scale)
		for _, variant := range []struct {
			name string
			mk   allocators.Maker
		}{
			{"hoard", nil},
			{"hoard+tcache", tcacheMaker(32)},
		} {
			if progress != nil {
				progress(variant.name+"/"+id, procs)
			}
			h := workload.NewSimMaker("hoard", procs, opts.Cost, variant.mk)
			res := run(h, procs)
			t.Rows = append(t.Rows, []string{
				variant.name, id,
				fmt.Sprintf("%.2f", float64(res.ElapsedNS)/1e6),
				fmt.Sprintf("%d", res.Cache.RemoteTransfers),
			})
		}
	}
	return t
}

// batchTCacheMaker layers a thread cache over a base allocator, optionally
// hiding the base's native batch path behind alloc.NoBatch so every magazine
// refill and flush degrades to per-block calls — the ablation's control arm.
func batchTCacheMaker(base string, capacity int, noBatch bool) allocators.Maker {
	return func(procs int, lf env.LockFactory) alloc.Allocator {
		var inner alloc.Allocator
		switch base {
		case "serial":
			inner = serial.New(0, lf)
		default:
			inner = core.New(core.Config{Heaps: 2 * procs}, lf)
		}
		if noBatch {
			inner = alloc.NoBatch{Allocator: inner}
		}
		return tcache.New(inner, tcache.Config{Capacity: capacity})
	}
}

// AblateBatch isolates the batched block transfer (MallocBatch/FreeBatch):
// the same tcache-over-allocator stack with the native batch path enabled
// versus hidden behind alloc.NoBatch, so refills and flushes take one heap
// lock per transfer versus one per block. The batch counters confirm which
// path ran (the per-block arm reports zeros).
func AblateBatch(opts Options, progress func(string, int)) Table {
	const procs = 8
	t := Table{
		ID: "ablate-batch", Title: "A9",
		Paper:  "batched magazine transfer vs per-block (tcache capacity 32, P=8)",
		Header: []string{"allocator", "bench", "virtual ms", "batch refills", "batch flushes", "batched blocks"},
	}
	for _, id := range []string{"threadtest", "larson"} {
		def, _ := FigureByID(id)
		run := def.Run(opts.Scale)
		for _, variant := range []struct {
			name    string
			base    string
			noBatch bool
		}{
			{"hoard+tcache (batch)", "hoard", false},
			{"hoard+tcache (per-block)", "hoard", true},
			{"serial+tcache (batch)", "serial", false},
			{"serial+tcache (per-block)", "serial", true},
		} {
			if progress != nil {
				progress(variant.name+"/"+id, procs)
			}
			h := workload.NewSimMaker("hoard", procs, opts.Cost,
				batchTCacheMaker(variant.base, 32, variant.noBatch))
			res := run(h, procs)
			t.Rows = append(t.Rows, []string{
				variant.name, id,
				fmt.Sprintf("%.2f", float64(res.ElapsedNS)/1e6),
				fmt.Sprintf("%d", res.Alloc.BatchRefills),
				fmt.Sprintf("%d", res.Alloc.BatchFlushes),
				fmt.Sprintf("%d", res.Alloc.BatchedBlocks),
			})
		}
	}
	return t
}

// AblateRelease sweeps the GlobalEmptyLimit extension: how aggressively the
// global heap returns empty superblocks to the OS. The paper's Hoard (limit
// 0) retains everything — maximal reuse, footprint never shrinks; a small
// cap trades OS traffic for a lower resting footprint.
func AblateRelease(opts Options, progress func(string, int)) Table {
	const procs = 8
	t := Table{
		ID: "ablate-release", Title: "A7",
		Paper:  "global-heap release policy: footprint vs OS traffic (larson, P=8)",
		Header: []string{"limit", "virtual ms", "peak heap", "final heap", "OS reserves", "OS releases"},
	}
	def, _ := FigureByID("larson")
	run := def.Run(opts.Scale)
	for _, limit := range []int{0, 4, 32} {
		if progress != nil {
			progress(fmt.Sprintf("hoard(limit=%d)", limit), procs)
		}
		h := workload.NewSimMaker("hoard", procs, opts.Cost,
			hoardMaker(core.Config{GlobalEmptyLimit: limit}))
		res := run(h, procs)
		label := fmt.Sprintf("%d", limit)
		if limit == 0 {
			label = "none (paper)"
		}
		t.Rows = append(t.Rows, []string{
			label,
			fmt.Sprintf("%.2f", float64(res.ElapsedNS)/1e6),
			fmtBytes(res.VM.PeakCommitted),
			fmtBytes(res.VM.Committed),
			fmt.Sprintf("%d", res.VM.Reserves),
			fmt.Sprintf("%d", res.VM.Releases),
		})
	}
	return t
}

// Contention reports where lock waiting concentrates (the paper's Theorem
// 2 discussion: Hoard's worst-case contention is bounded and, away from
// adversarial patterns, spread across per-processor heaps; a serial
// allocator concentrates all waiting on one lock).
func Contention(opts Options, progress func(string, int)) Table {
	const procs = 8
	t := Table{
		ID: "contention", Title: "A8",
		Paper:  "lock contention distribution (larson, P=8): total wait and its concentration",
		Header: []string{"allocator", "virtual ms", "total wait ms", "hottest lock", "hottest share", "lock-free frees"},
	}
	def, _ := FigureByID("larson")
	run := def.Run(opts.Scale)
	for _, name := range opts.Allocs {
		if progress != nil {
			progress(name+"/larson", procs)
		}
		h := workload.NewSim(name, procs, opts.Cost)
		res := run(h, procs)
		var total, hottest int64
		hotName := "-"
		for _, l := range res.Locks {
			total += l.WaitTime
			if l.WaitTime > hottest {
				hottest = l.WaitTime
				hotName = l.Name
			}
		}
		share := "-"
		if total > 0 {
			share = fmt.Sprintf("%.0f%%", 100*float64(hottest)/float64(total))
		}
		t.Rows = append(t.Rows, []string{
			name,
			fmt.Sprintf("%.2f", float64(res.ElapsedNS)/1e6),
			fmt.Sprintf("%.2f", float64(total)/1e6),
			hotName,
			share,
			fmt.Sprintf("%d", res.Alloc.RemoteFastFrees),
		})
	}
	return t
}

// CostSensitivity re-runs the headline comparison under perturbed cost
// models, demonstrating that "Hoard beats serial" does not hinge on the
// chosen constants.
func CostSensitivity(opts Options, progress func(string, int)) Table {
	const procs = 8
	t := Table{
		ID: "cost-sensitivity", Title: "A5",
		Paper:  "cost-model sensitivity: serial/hoard time ratio on threadtest (P=8)",
		Header: []string{"coherence & lock-migrate scale", "hoard ms", "serial ms", "serial/hoard"},
	}
	def, _ := FigureByID("threadtest")
	run := def.Run(opts.Scale)
	for _, scale := range []float64{0.25, 0.5, 1, 2, 4} {
		cost := opts.Cost
		cost.LockMigrate = int64(float64(cost.LockMigrate) * scale)
		cost.Cache.RemoteTransfer = int64(float64(cost.Cache.RemoteTransfer) * scale)
		if progress != nil {
			progress(fmt.Sprintf("scale=%.2f", scale), procs)
		}
		hh := workload.NewSim("hoard", procs, cost)
		hr := run(hh, procs)
		sh := workload.NewSim("serial", procs, cost)
		sr := run(sh, procs)
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%.2fx", scale),
			fmt.Sprintf("%.2f", float64(hr.ElapsedNS)/1e6),
			fmt.Sprintf("%.2f", float64(sr.ElapsedNS)/1e6),
			fmt.Sprintf("%.1f", float64(sr.ElapsedNS)/float64(hr.ElapsedNS)),
		})
	}
	return t
}

func fmtBytes(n int64) string {
	switch {
	case n >= 1<<20:
		return fmt.Sprintf("%.1fMB", float64(n)/(1<<20))
	case n >= 1<<10:
		return fmt.Sprintf("%.1fKB", float64(n)/(1<<10))
	default:
		return fmt.Sprintf("%dB", n)
	}
}
