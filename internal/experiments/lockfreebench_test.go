package experiments

import (
	"strconv"
	"testing"
)

// TestMeasureLockFreeLocks asserts A11's real-environment half end to end:
// on both workloads the fast arm takes the lock-free paths and acquires
// heap locks at a small fraction of the locked arm's rate, while the locked
// arm (DisableLockFree) never touches the fast paths. The 2x floor here is
// deliberately loose — the CI gate with the real thresholds is
// TestLockFreeSmoke below; this test pins the measurement machinery.
func TestMeasureLockFreeLocks(t *testing.T) {
	rs := MeasureLockFreeLocks(4, Quick)
	if len(rs) != 2 {
		t.Fatalf("%d results, want 2 (prodcons, larson)", len(rs))
	}
	seen := map[string]bool{}
	for _, r := range rs {
		seen[r.Workload] = true
		if r.Fast.Ops == 0 || r.Locked.Ops == 0 {
			t.Fatalf("%s: an arm did no work: %+v", r.Workload, r)
		}
		if r.Fast.LockFreeMallocs == 0 || r.Fast.LockFreeFrees == 0 {
			t.Fatalf("%s: fast arm never took the lock-free paths", r.Workload)
		}
		if r.Locked.LockFreeMallocs != 0 || r.Locked.LockFreeFrees != 0 {
			t.Fatalf("%s: locked arm took lock-free paths", r.Workload)
		}
		if r.Improvement < 2 {
			t.Fatalf("%s: improvement %.2fx < 2x (fast %.4f vs locked %.4f locks/op)",
				r.Workload, r.Improvement, r.Fast.LocksPerOp, r.Locked.LocksPerOp)
		}
		if len(r.Fast.Sites) == 0 || len(r.Locked.Sites) == 0 {
			t.Fatalf("%s: missing per-site lock attribution", r.Workload)
		}
	}
	if !seen["prodcons"] || !seen["larson"] {
		t.Fatalf("workloads covered: %v", seen)
	}
}

// TestLockFreeSimResults pins the simulator half: every bench/P pair runs
// both arms, only the fast arm uses the lock-free paths, and no fast run is
// materially slower than its locked twin. The fast paths remove the heap
// lock's virtual cost from warm operations but add bookkeeping charges of
// their own (warm-ring scans, ArmRing sweeps), so the guard allows the same
// 2% slack the committed artifact uses rather than demanding strict wins.
func TestLockFreeSimResults(t *testing.T) {
	entries := LockFreeSimResults(microOpts())
	want := 3 * len(lockFreeSimProcs()) * 2
	if len(entries) != want {
		t.Fatalf("%d entries, want %d (3 benches x %d procs x 2 arms)",
			len(entries), want, len(lockFreeSimProcs()))
	}
	locked := map[string]LockFreeSimEntry{}
	for _, e := range entries {
		if e.VirtualMS <= 0 {
			t.Fatalf("%s/%d/%s reported no virtual time", e.Bench, e.Procs, e.Arm)
		}
		fast := e.LockFreeMallocs+e.LockFreeFrees > 0
		wantFast := e.Arm == "fast"
		if fast != wantFast {
			t.Fatalf("%s/%d/%s: lock-free counters %v, want %v (lfm=%d lff=%d)",
				e.Bench, e.Procs, e.Arm, fast, wantFast, e.LockFreeMallocs, e.LockFreeFrees)
		}
		if e.Arm == "locked" {
			locked[e.Bench+"/"+itoa(e.Procs)] = e
		}
	}
	for _, e := range entries {
		if e.Arm != "fast" {
			continue
		}
		base := locked[e.Bench+"/"+itoa(e.Procs)]
		if e.OpsPerVirtualMS < 0.98*base.OpsPerVirtualMS {
			t.Errorf("%s/%d: fast arm slower in simulation (%.0f vs %.0f ops/virtual ms)",
				e.Bench, e.Procs, e.OpsPerVirtualMS, base.OpsPerVirtualMS)
		}
	}
}

func itoa(n int) string {
	return strconv.Itoa(n)
}

// TestLockFreeSmoke runs the CI gate at its production thresholds (the ones
// make lockfree-smoke uses): fast arm under 0.25 locks/op and at least 4x
// fewer acquisitions than the locked arm, on both workloads at P=8.
func TestLockFreeSmoke(t *testing.T) {
	rs, err := LockFreeSmoke(0.25, 4)
	if err != nil {
		for _, r := range rs {
			t.Logf("%s P=%d: fast %.4f locks/op vs locked %.4f (%.1fx)",
				r.Workload, r.Procs, r.Fast.LocksPerOp, r.Locked.LocksPerOp, r.Improvement)
		}
		t.Fatal(err)
	}
}

// TestLockFreeTableShape pins A11's rendered form: a locks/op row per
// real-environment workload and an ops/virtual-ms row per bench/P pair.
func TestLockFreeTableShape(t *testing.T) {
	tab := LockFree(microOpts(), nil)
	if tab.ID != "lockfree" {
		t.Fatalf("table ID %q", tab.ID)
	}
	wantRows := 2 + 3*len(lockFreeSimProcs())
	if len(tab.Rows) != wantRows {
		t.Fatalf("%d rows, want %d", len(tab.Rows), wantRows)
	}
	for _, row := range tab.Rows {
		if len(row) != len(tab.Header) {
			t.Fatalf("row width %d, header width %d: %v", len(row), len(tab.Header), row)
		}
	}
}
