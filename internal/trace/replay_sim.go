package trace

import (
	"fmt"

	"hoardgo/internal/alloc"
	"hoardgo/internal/env"
	"hoardgo/internal/simproc"
	"hoardgo/internal/workload"
)

// Validate checks a trace is well formed in its recorded global order:
// every object allocated at most once, every free targets a live object,
// and thread indices are in range. Parallel replay requires a valid trace.
func Validate(tr *Trace) error {
	live := make(map[uint64]bool)
	for i, ev := range tr.Events {
		if ev.Thread < 0 || int(ev.Thread) >= tr.Threads {
			return fmt.Errorf("trace: event %d: thread %d out of range [0,%d)", i, ev.Thread, tr.Threads)
		}
		switch ev.Op {
		case OpMalloc:
			if live[ev.Obj] {
				return fmt.Errorf("trace: event %d: object %d allocated twice", i, ev.Obj)
			}
			live[ev.Obj] = true
		case OpFree:
			if !live[ev.Obj] {
				return fmt.Errorf("trace: event %d: free of dead object %d", i, ev.Obj)
			}
			delete(live, ev.Obj)
		default:
			return fmt.Errorf("trace: event %d: unknown op %d", i, ev.Op)
		}
	}
	return nil
}

// ReplaySim replays the trace on a simulated multiprocessor: each trace
// thread becomes a simulated thread replaying its own events in order, and
// a free of an object another thread has not yet allocated blocks on a gate
// until it exists (per-thread order is preserved; the recorded cross-thread
// interleaving is relaxed, which is exactly what running the same program
// on a different schedule does). The harness must be in simulated mode.
//
// It returns the replay statistics and the virtual makespan.
func ReplaySim(tr *Trace, h *workload.Harness) (ReplayResult, int64, error) {
	if h.World() == nil {
		return ReplayResult{}, 0, fmt.Errorf("trace: ReplaySim requires a simulated harness")
	}
	if err := Validate(tr); err != nil {
		return ReplayResult{}, 0, err
	}
	perThread := make([][]Event, tr.Threads)
	for _, ev := range tr.Events {
		perThread[ev.Thread] = append(perThread[ev.Thread], ev)
	}
	// Shared replay state. The simulator serializes all access (exactly
	// one simulated thread runs at a time), so plain maps are safe here.
	ptrs := make(map[uint64]alloc.Ptr)
	sizes := make(map[uint64]int32)
	gates := make(map[uint64]*simproc.Gate)
	a := h.Allocator()
	world := h.World()

	h.Par(tr.Threads, func(id int, e env.Env, t *alloc.Thread) {
		for _, ev := range perThread[id] {
			switch ev.Op {
			case OpMalloc:
				p := a.Malloc(t, int(ev.Size))
				h.OnAlloc(int(ev.Size))
				workload.WriteObj(a, e, p, min(int(ev.Size), 64))
				ptrs[ev.Obj] = p
				sizes[ev.Obj] = ev.Size
				if g := gates[ev.Obj]; g != nil {
					g.Set(e)
				}
			case OpFree:
				p, ok := ptrs[ev.Obj]
				if !ok {
					g := gates[ev.Obj]
					if g == nil {
						g = world.NewGate()
						gates[ev.Obj] = g
					}
					g.Wait(e)
					p = ptrs[ev.Obj]
				}
				a.Free(t, p)
				h.OnFree(int(sizes[ev.Obj]))
				delete(ptrs, ev.Obj)
				delete(sizes, ev.Obj)
			}
		}
	})
	res := h.Result(tr.Threads, int64(len(tr.Events)))
	out := ReplayResult{
		Mallocs:       res.Alloc.Mallocs,
		Frees:         res.Alloc.Frees,
		MaxLive:       res.MaxLive,
		PeakFootprint: res.VM.PeakCommitted,
	}
	return out, res.ElapsedNS, nil
}
