package vm

import "testing"

// fuzzBackends builds one instance of every backend available on this
// platform for a fuzz iteration. The arena gets small regions: each
// iteration creates a fresh pair and closes it on cleanup.
func fuzzBackends(t *testing.T) map[string]Backend {
	bs := map[string]Backend{"sim": New()}
	if a, err := NewArena(ArenaOptions{SlotRegionBytes: 32 << 20, LargeRegionBytes: 32 << 20}); err == nil {
		t.Cleanup(func() { a.Close() })
		bs["arena"] = a
	}
	return bs
}

// FuzzReserveRelease drives a backend with byte-coded operations — reserve,
// release, decommit, recommit — and checks lookup consistency,
// reserved/committed accounting, the reserved >= committed invariant, and
// that no decommitted address is ever handed out, at every step. Every input
// runs against BOTH backends (sim always, arena where the platform has one),
// so the two implementations are held to the same observable contract.
func FuzzReserveRelease(f *testing.F) {
	f.Add([]byte{0x01, 0x02, 0x80, 0x03})
	f.Add([]byte{0xFF, 0xFF, 0x00, 0x01, 0x02, 0x03, 0x04})
	f.Add([]byte{0x00, 0x04, 0x02, 0x00, 0x06, 0x01, 0x02, 0x00, 0x01, 0x00})
	f.Fuzz(func(t *testing.T, data []byte) {
		for name, be := range fuzzBackends(t) {
			driveBackend(t, name, be, data)
		}
	})
}

func driveBackend(t *testing.T, name string, s Backend, data []byte) {
	type span struct {
		sp    *Span
		decom []bool // model: page i decommitted
	}
	var live []*span
	var wantReserved, wantCommitted int64
	for i := 0; i+1 < len(data) && i < 400; i += 2 {
		op, arg := data[i], data[i+1]
		switch {
		case op%4 == 0 || len(live) == 0: // reserve
			size := (int(arg)%8 + 1) * PageSize
			align := PageSize << (int(op>>4) % 4)
			sp := s.Reserve(size, align, i)
			if sp.Base%uint64(align) != 0 {
				t.Fatalf("%s: misaligned reserve %#x align %d", name, sp.Base, align)
			}
			if got := s.Lookup(sp.Base + uint64(sp.Len) - 1); got != sp {
				t.Fatalf("%s: last byte lookup failed", name)
			}
			live = append(live, &span{sp: sp, decom: make([]bool, size/PageSize)})
			wantReserved += int64(sp.Len)
			wantCommitted += int64(sp.Len)
		case op%4 == 1: // release
			idx := int(arg) % len(live)
			r := live[idx]
			base := r.sp.Base
			wantReserved -= int64(r.sp.Len)
			for _, d := range r.decom {
				if !d {
					wantCommitted -= PageSize
				}
			}
			s.Release(r.sp)
			if s.Lookup(base) != nil {
				t.Fatalf("%s: released span still visible", name)
			}
			live[idx] = live[len(live)-1]
			live = live[:len(live)-1]
		default: // decommit (op%4==2) or recommit (op%4==3)
			r := live[int(op>>4)%len(live)]
			pages := len(r.decom)
			p0 := int(arg) % pages
			n := int(arg>>4)%(pages-p0) + 1
			if op%4 == 2 {
				r.sp.Decommit(p0*PageSize, n*PageSize)
				for p := p0; p < p0+n; p++ {
					if !r.decom[p] {
						r.decom[p] = true
						wantCommitted -= PageSize
					}
				}
				// The decommitted address must never be handed out...
				func() {
					defer func() {
						if recover() == nil {
							t.Fatalf("%s: Bytes on decommitted page did not panic", name)
						}
					}()
					s.Bytes(r.sp.Base+uint64(p0*PageSize), 4)
				}()
				// ...but the address itself stays reserved.
				if s.Lookup(r.sp.Base+uint64(p0*PageSize)) != r.sp {
					t.Fatalf("%s: decommitted address no longer resolves", name)
				}
			} else {
				r.sp.Recommit(p0*PageSize, n*PageSize)
				for p := p0; p < p0+n; p++ {
					if r.decom[p] {
						r.decom[p] = false
						wantCommitted += PageSize
					}
				}
				// Recommitted memory is accessible and zeroed — the OS
				// zero-fill guarantee on the arena, the simulated
				// equivalent on sim.
				if b := s.Bytes(r.sp.Base+uint64(p0*PageSize), 4); b[0]|b[1]|b[2]|b[3] != 0 {
					t.Fatalf("%s: recommitted page not zeroed", name)
				}
			}
		}
		st := s.Stats()
		if st.Committed != wantCommitted {
			t.Fatalf("%s: committed %d, want %d", name, st.Committed, wantCommitted)
		}
		if st.Reserved != wantReserved {
			t.Fatalf("%s: reserved %d, want %d", name, st.Reserved, wantReserved)
		}
		if st.Reserved < st.Committed {
			t.Fatalf("%s: invariant violated: reserved %d < committed %d", name, st.Reserved, st.Committed)
		}
		if st.DecommittedBytes != wantReserved-wantCommitted {
			t.Fatalf("%s: decommitted %d, want %d", name, st.DecommittedBytes, wantReserved-wantCommitted)
		}
	}
}
