package loadgen

import (
	"math"
	"time"
)

// Phase is one segment of a traffic schedule: a duration, an arrival-rate
// curve over it, and the key/size distributions in force. The engine plays
// phases back to back against one allocator, so memory shaped by one phase
// (a hot set gone cold, burst-inflated superblocks) is the inheritance of
// the next — which is exactly what a serving process lives through and
// what per-run microbenchmarks never show.
type Phase struct {
	// Name labels the phase in results.
	Name string
	// Duration is the phase's wall-clock length.
	Duration time.Duration
	// Rate maps phase progress x in [0,1] to an arrival rate in requests
	// per second. The listener integrates it open-loop: arrivals are paced
	// by the wall clock, never by service completion, so a slow allocator
	// builds queue instead of quietly slowing the offered load.
	Rate func(x float64) float64
	// Keys generates request keys; Sizes generates response-buffer sizes.
	Keys  Generator
	Sizes *Sizes
	// ShiftAt, when positive and Keys is a *Hotspot, slides the hot window
	// by Shift keys once progress passes it — the working set moves
	// mid-phase.
	ShiftAt float64
	Shift   int64
	// Drain makes every request a release: the worker frees the key's slot
	// and allocates nothing. Traffic ebbing away at end of day.
	Drain bool
}

// rateAt evaluates the phase's rate curve with a floor of one request/sec
// so the listener's pacing arithmetic never divides by zero.
func (p *Phase) rateAt(x float64) float64 {
	r := p.Rate(x)
	if r < 1 {
		r = 1
	}
	return r
}

// StandardPhases is the benchmark's canonical traffic schedule — four
// phases, each a serving cliché:
//
//	diurnal-ramp:  arrival rate climbs 20%→100% of peak; scrambled-zipfian
//	               keys, exponential sizes. The footprint the ramp builds
//	               is the baseline everything later is judged against.
//	hotspot-shift: steady 80% rate, 90% of ops on 10% of keys; halfway
//	               through the hot window jumps by half the key space.
//	               The old hot set's blocks go cold in place.
//	burst-spike:   50% base rate with a 6x spike through the middle fifth.
//	               Tail latency and footprint growth under the spike are
//	               the numbers an SLO is written about.
//	slow-drain:    frees only, rate tapering to zero. What the allocator
//	               still holds at the end — footprint over live — is its
//	               retention debt.
//
// keys sizes the key space, sizeMin/sizeMax bound request sizes, each
// phase runs for dur at the given peak requests/sec.
func StandardPhases(keys int64, sizeMin, sizeMax int, dur time.Duration, peakRate float64) []Phase {
	sizeSpan := int64(sizeMax - sizeMin + 1)
	expSizes := NewSizes(NewExponential(sizeSpan, float64(sizeSpan)/8), sizeMin, sizeMax)
	uniSizes := NewSizes(NewUniform(sizeSpan), sizeMin, sizeMax)
	zipf := NewScrambled(NewZipfian(keys, ZipfianTheta), 0x9E3779B97F4A7C15)
	hot := NewHotspot(keys, 0.10, 0.90)
	return []Phase{
		{
			Name:     "diurnal-ramp",
			Duration: dur,
			Rate:     func(x float64) float64 { return peakRate * (0.2 + 0.8*x) },
			Keys:     zipf,
			Sizes:    expSizes,
		},
		{
			Name:     "hotspot-shift",
			Duration: dur,
			Rate:     func(x float64) float64 { return peakRate * 0.8 },
			Keys:     hot,
			Sizes:    expSizes,
			ShiftAt:  0.5,
			Shift:    keys / 2,
		},
		{
			Name:     "burst-spike",
			Duration: dur,
			Rate: func(x float64) float64 {
				base := peakRate * 0.5
				if x >= 0.4 && x < 0.6 {
					// Raised-cosine edges so the spike is steep but not a
					// discontinuity the pacing loop aliases on.
					w := (x - 0.4) / 0.2
					return base + peakRate*2.5*(1-math.Cos(2*math.Pi*w))
				}
				return base
			},
			Keys:  zipf,
			Sizes: uniSizes,
		},
		{
			Name:     "slow-drain",
			Duration: dur,
			Rate:     func(x float64) float64 { return peakRate*0.8*(1-x) + 1 },
			Keys:     NewUniform(keys),
			Sizes:    uniSizes,
			Drain:    true,
		},
	}
}
