package main

import (
	"encoding/json"
	"fmt"
	"os"
	"time"

	"hoardgo/internal/experiments"
)

// artifact is the committed benchmark record (BENCH_PR3.json): the
// lock-acquisition measurement behind the batching PR's acceptance criterion
// plus the deterministic simulator runs of the key benchmarks. Everything in
// it is reproducible with `hoardbench -artifact <path>`.
type artifact struct {
	Schema     string                      `json:"schema"`
	Scale      string                      `json:"scale"`
	BatchLocks experiments.BatchLockResult `json:"batch_locks"`
	Sim        []experiments.BatchSimEntry `json:"sim"`
}

// writeArtifact runs the artifact benchmarks and writes the JSON record.
func writeArtifact(path string, opts experiments.Options, scale string, progress func(string, int)) error {
	if progress != nil {
		progress("batch-locks", 1)
	}
	art := artifact{
		Schema:     "hoardgo-bench/pr3-batching/v1",
		Scale:      scale,
		BatchLocks: experiments.MeasureBatchLocks(32, 200),
	}
	if progress != nil {
		progress("batch-sim", 8)
	}
	art.Sim = experiments.BatchSimResults(opts)
	data, err := json.MarshalIndent(art, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s: %.2f locks/malloc per-block vs %.2f batched (%.1fx fewer)\n",
		path, art.BatchLocks.PerBlock.LocksPerMalloc, art.BatchLocks.Batch.LocksPerMalloc,
		art.BatchLocks.Improvement)
	return nil
}

// footprintArtifact is the committed scavenger record (BENCH_PR5.json): the
// workload x release-mode footprint grid, the steady-state committed ratios
// behind the reclamation PR's acceptance criterion, and the batch-lock
// measurement re-run as the throughput guard. Reproducible with
// `hoardbench -footprint <path>`.
type footprintArtifact struct {
	Schema  string                       `json:"schema"`
	Scale   string                       `json:"scale"`
	Entries []experiments.FootprintEntry `json:"entries"`
	// SteadyRatios maps "workload/mode" to that mode's steady-state
	// committed bytes over the retain-everything baseline (< 1 means the
	// policy shrank the resting footprint).
	SteadyRatios map[string]float64 `json:"steady_ratios"`
	// BatchLocks re-runs the batching PR's lock measurement with the
	// scavenger code in the tree — the ops-stay-within-noise guard.
	BatchLocks experiments.BatchLockResult `json:"batch_locks"`
}

// writeFootprint runs the footprint grid and writes the JSON record.
func writeFootprint(path string, opts experiments.Options, scale string, progress func(string, int)) error {
	art := footprintArtifact{
		Schema:       "hoardgo-bench/pr5-scavenge/v1",
		Scale:        scale,
		Entries:      experiments.FootprintResults(opts, progress),
		SteadyRatios: map[string]float64{},
	}
	off := map[string]int64{}
	for _, e := range art.Entries {
		if e.Mode == "off" {
			off[e.Workload] = e.SteadyCommitted
		}
	}
	for _, e := range art.Entries {
		if base := off[e.Workload]; base > 0 && e.Mode != "off" {
			art.SteadyRatios[e.Workload+"/"+e.Mode] = float64(e.SteadyCommitted) / float64(base)
		}
	}
	if progress != nil {
		progress("batch-locks", 1)
	}
	art.BatchLocks = experiments.MeasureBatchLocks(32, 200)
	data, err := json.MarshalIndent(art, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s:\n", path)
	for _, e := range art.Entries {
		fmt.Printf("  %-10s %-8s steady %8d B  (peak %d B, %d scavenges)\n",
			e.Workload, e.Mode, e.SteadyCommitted, e.PeakCommitted, e.ScavengePasses)
	}
	for k, v := range art.SteadyRatios {
		fmt.Printf("  ratio %-20s %.2f\n", k, v)
	}
	return nil
}

// writeMetricsTimeline runs the instrumented churn scenario behind -metrics
// and writes the timeline artifact. Any invariant-audit failure during the
// run is a hard error.
func writeMetricsTimeline(path string, scale experiments.Scale) error {
	workers, rounds := 4, 300
	if scale == experiments.Full {
		workers, rounds = 8, 2000
	}
	tl, err := experiments.CollectMetricsTimeline(workers, rounds, 2*time.Millisecond)
	if err != nil {
		return err
	}
	data, err := json.MarshalIndent(tl, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s: %d samples, %d audits passed, final scrape %d bytes\n",
		path, len(tl.Samples), tl.AuditPasses, len(tl.Prometheus))
	return nil
}
