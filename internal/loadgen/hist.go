package loadgen

import (
	"math/bits"
	"sync/atomic"
)

// Hist is a concurrent HDR-style latency histogram: values are bucketed
// logarithmically by magnitude with 16 linear sub-buckets per power of two,
// so every bucket's width is at most ~6% of its value — quantile error
// stays bounded across the nine decades between a 20ns cache-hit malloc
// and a second-long stall. Record is a couple of shifts and one atomic
// add; there is no lock anywhere, so workers on every core hammer the same
// histogram without perturbing the latencies they are measuring.
type Hist struct {
	counts [histBuckets]atomic.Int64
	sum    atomic.Int64
	max    atomic.Int64
}

const (
	// histSubBits gives 2^histSubBits linear sub-buckets per magnitude.
	histSubBits = 4
	histSub     = 1 << histSubBits
	// histBuckets covers the full int64 range: values below histSub*2 map
	// directly, then (63-histSubBits) magnitudes of histSub sub-buckets.
	histBuckets = 2*histSub + (63-histSubBits)*histSub
)

// histIndex maps a non-negative value to its bucket.
func histIndex(v int64) int {
	u := uint64(v)
	if u < 2*histSub {
		return int(u)
	}
	exp := bits.Len64(u) - 1 - histSubBits // ≥ 1 here
	sub := u >> uint(exp)                  // in [histSub, 2*histSub)
	return int(uint64(exp+1)*histSub + sub)
}

// histValue returns a representative (upper-edge) value for a bucket, the
// inverse of histIndex up to bucket width.
func histValue(idx int) int64 {
	if idx < 2*histSub {
		return int64(idx)
	}
	// idx = (exp+1)*histSub + sub with sub in [histSub, 2*histSub), so
	// idx lands in [(exp+2)*histSub, (exp+3)*histSub).
	exp := idx/histSub - 2
	sub := histSub + idx%histSub
	return int64(sub+1)<<uint(exp) - 1
}

// Record adds one observation (negative values clamp to zero).
func (h *Hist) Record(v int64) {
	if v < 0 {
		v = 0
	}
	h.counts[histIndex(v)].Add(1)
	h.sum.Add(v)
	for {
		old := h.max.Load()
		if v <= old || h.max.CompareAndSwap(old, v) {
			return
		}
	}
}

// HistSummary is the report form of a histogram: operation count, mean,
// and the tail quantiles that define a serving SLO.
type HistSummary struct {
	Count int64   `json:"count"`
	Mean  float64 `json:"mean"`
	P50   int64   `json:"p50"`
	P90   int64   `json:"p90"`
	P99   int64   `json:"p99"`
	P999  int64   `json:"p999"`
	Max   int64   `json:"max"`
}

// Summary snapshots the histogram. Concurrent Records may straddle the
// snapshot; quantiles are exact for all observations fully recorded before
// the call.
func (h *Hist) Summary() HistSummary {
	var counts [histBuckets]int64
	var total int64
	for i := range h.counts {
		counts[i] = h.counts[i].Load()
		total += counts[i]
	}
	s := HistSummary{Count: total, Max: h.max.Load()}
	if total == 0 {
		return s
	}
	s.Mean = float64(h.sum.Load()) / float64(total)
	quantile := func(q float64) int64 {
		rank := int64(q * float64(total-1))
		var seen int64
		for i, c := range counts {
			seen += c
			if seen > rank {
				return histValue(i)
			}
		}
		return s.Max
	}
	s.P50 = quantile(0.50)
	s.P90 = quantile(0.90)
	s.P99 = quantile(0.99)
	s.P999 = quantile(0.999)
	if s.P999 > s.Max {
		s.P999 = s.Max
	}
	return s
}
