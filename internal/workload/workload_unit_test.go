package workload

import (
	"testing"

	"hoardgo/internal/alloc"
	"hoardgo/internal/env"
	"hoardgo/internal/simproc"
)

// TestLarsonBleeds verifies the benchmark's defining property: most frees
// release memory allocated by a different thread (Hoard's RemoteFrees
// counter observes exactly that).
func TestLarsonBleeds(t *testing.T) {
	h := NewSim("hoard", 4, simproc.DefaultCosts)
	cfg := LarsonConfig{Threads: 4, Rounds: 4, OpsPerRound: 800, SlotsPerWindow: 400, MinSize: 10, MaxSize: 500, Seed: 1}
	res := Larson(h, cfg)
	// After round 1, windows rotate: roughly (Rounds-1)/Rounds of frees
	// hit blocks the previous holder allocated.
	if res.Alloc.RemoteFrees < res.Alloc.Frees/4 {
		t.Fatalf("only %d of %d frees were remote; larson must bleed", res.Alloc.RemoteFrees, res.Alloc.Frees)
	}
}

// TestLarsonThroughputMeaningful checks ops accounting feeds throughput.
func TestLarsonThroughputMeaningful(t *testing.T) {
	h := NewSim("hoard", 2, simproc.DefaultCosts)
	cfg := LarsonConfig{Threads: 2, Rounds: 2, OpsPerRound: 500, SlotsPerWindow: 100, MinSize: 10, MaxSize: 500, Seed: 1}
	res := Larson(h, cfg)
	if want := int64(2 * 2 * 500 * 2); res.Ops != want {
		t.Fatalf("Ops = %d, want %d", res.Ops, want)
	}
	if res.Throughput() <= 0 {
		t.Fatal("non-positive throughput")
	}
}

// TestBEMPhasesBalanceAcrossThreads: totals divide across threads with no
// remainder lost.
func TestBEMPhasesBalanceAcrossThreads(t *testing.T) {
	for _, threads := range []int{1, 3, 7} {
		h := NewSim("hoard", threads, simproc.DefaultCosts)
		cfg := BEMConfig{Threads: threads, MeshNodes: 1000, NodeSize: 48, Rows: 100, RowSize: 2048,
			SolveBuffers: 10, SolveSize: 16384, SolveWork: 1000, Seed: 1}
		res := BEM(h, cfg)
		// mesh allocs+frees + rows allocs+frees + solve allocs+frees.
		want := int64(2 * (1000 + 100 + 10))
		if res.Ops != want {
			t.Fatalf("threads=%d: Ops = %d, want %d", threads, res.Ops, want)
		}
		if res.Alloc.LiveBytes != 0 {
			t.Fatalf("threads=%d: leak %d", threads, res.Alloc.LiveBytes)
		}
	}
}

// TestThreadtestObjectsDivide: N objects divide across t threads; MaxLive
// reflects one round's full allocation.
func TestThreadtestObjectsDivide(t *testing.T) {
	h := NewSim("hoard", 4, simproc.DefaultCosts)
	cfg := ThreadtestConfig{Threads: 4, Iterations: 1, Objects: 4000, ObjSize: 8}
	res := Threadtest(h, cfg)
	// Threads are unsynchronized, so the global peak can fall slightly
	// short of the sum of per-thread peaks.
	want := int64(4000 * 8)
	if res.MaxLive > want || res.MaxLive < want*9/10 {
		t.Fatalf("MaxLive = %d, want ~%d", res.MaxLive, want)
	}
}

// TestPassiveFalseSeedsCrossThreads: with one thread there is nothing to
// hand off, and the benchmark still terminates cleanly.
func TestPassiveFalseSingleThread(t *testing.T) {
	h := NewSim("hoard", 1, simproc.DefaultCosts)
	res := PassiveFalse(h, FalseShareConfig{Threads: 1, Iterations: 10, ObjSize: 8, Writes: 5, SeedObjects: 8})
	if res.Alloc.LiveBytes != 0 {
		t.Fatalf("leak: %d", res.Alloc.LiveBytes)
	}
}

// TestShbenchSizesSpanClasses: the benchmark must touch many size classes
// (that's its role in the suite).
func TestShbenchSizesSpanClasses(t *testing.T) {
	h := NewSim("serial", 2, simproc.DefaultCosts)
	res := Shbench(h, ShbenchConfig{Threads: 2, Ops: 4000, Slots: 200, MinSize: 1, MaxSize: 1000, Seed: 1})
	// With sizes 1..1000 uniformly and thousands of ops, the peak live
	// usable bytes must exceed max live requested (class rounding).
	if res.Alloc.PeakLiveBytes <= res.MaxLive {
		t.Fatalf("usable peak %d <= requested peak %d; class rounding missing?", res.Alloc.PeakLiveBytes, res.MaxLive)
	}
}

// TestHarnessSingleUse: Par twice must panic.
func TestHarnessSingleUse(t *testing.T) {
	h := NewSim("hoard", 1, simproc.DefaultCosts)
	h.Par(1, func(int, env.Env, *alloc.Thread) {})
	defer func() {
		if recover() == nil {
			t.Fatal("second Par did not panic")
		}
	}()
	h.Par(1, func(int, env.Env, *alloc.Thread) {})
}
