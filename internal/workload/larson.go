package workload

import (
	"math/rand"

	"hoardgo/internal/alloc"
	"hoardgo/internal/env"
)

// LarsonConfig parameterizes the Larson benchmark (Larson & Krishnan's
// server simulation, as used in the paper): worker "sessions" inherit a
// window of live objects from a predecessor, repeatedly free a random slot
// and allocate a replacement, then pass the window on. Most frees therefore
// release memory allocated by a *different* thread — the "bleeding" pattern
// that breaks pure private heaps and contends ownership-based allocators.
// The paper reports throughput (operations per second) rather than speedup.
type LarsonConfig struct {
	// Threads is the number of concurrent sessions.
	Threads int
	// Rounds is how many times windows rotate between threads.
	Rounds int
	// OpsPerRound is free/alloc pairs per thread per round.
	OpsPerRound int
	// SlotsPerWindow is each window's live-object count.
	SlotsPerWindow int
	// MinSize and MaxSize bound object sizes (10..500 in the original).
	MinSize, MaxSize int
	// Seed makes runs reproducible.
	Seed int64
}

// DefaultLarson mirrors the benchmark's shape at simulation-friendly scale.
func DefaultLarson(threads int) LarsonConfig {
	return LarsonConfig{
		Threads:        threads,
		Rounds:         6,
		OpsPerRound:    4000,
		SlotsPerWindow: 1000,
		MinSize:        10,
		MaxSize:        500,
		Seed:           1,
	}
}

// Larson runs the benchmark on h.
func Larson(h *Harness, cfg LarsonConfig) Result {
	type slot struct {
		p  alloc.Ptr
		sz int
	}
	windows := make([][]slot, cfg.Threads)
	for i := range windows {
		windows[i] = make([]slot, cfg.SlotsPerWindow)
	}
	barrier := h.NewBarrier(cfg.Threads)
	h.Par(cfg.Threads, func(id int, e env.Env, t *alloc.Thread) {
		a := h.Allocator()
		rng := rand.New(rand.NewSource(cfg.Seed + int64(id)))
		for r := 0; r < cfg.Rounds; r++ {
			// Window rotation: this round's window was populated by
			// the previous round's holder (a different thread).
			win := windows[(id+r)%cfg.Threads]
			for op := 0; op < cfg.OpsPerRound; op++ {
				i := rng.Intn(cfg.SlotsPerWindow)
				if !win[i].p.IsNil() {
					a.Free(t, win[i].p) // usually a remote free
					h.OnFree(win[i].sz)
				}
				sz := cfg.MinSize + rng.Intn(cfg.MaxSize-cfg.MinSize+1)
				win[i] = slot{a.Malloc(t, sz), sz}
				h.OnAlloc(sz)
				WriteObj(a, e, win[i].p, win[i].sz)
			}
			barrier.Wait(e)
		}
		// Teardown: final holders clear their windows.
		win := windows[(id+cfg.Rounds)%cfg.Threads]
		for i := range win {
			if !win[i].p.IsNil() {
				a.Free(t, win[i].p)
				h.OnFree(win[i].sz)
				win[i] = slot{}
			}
		}
	})
	ops := int64(cfg.Threads) * int64(cfg.Rounds) * int64(cfg.OpsPerRound) * 2
	return h.Result(cfg.Threads, ops)
}
