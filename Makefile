GO ?= go

.PHONY: check build test race vet bench

# check is the tier-1 gate: vet, build, and the full suite under the race
# detector.
check: vet build race

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Figure benchmarks are full deterministic simulations; run each once.
bench:
	$(GO) test -bench=. -benchtime=1x .
