package metrics

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// Auditor runs an integrity check repeatedly — on demand (RunOnce), or at a
// configurable interval on a background goroutine — and records pass/fail
// counts plus the first failure. It turns latent accounting drift into an
// immediate, attributable error under load instead of a mystery at the end
// of a run.
//
// The check callback decides what is audited; core.(*Hoard).Audit is the
// under-load-safe variant (per-heap locked structural checks plus the
// emptiness-invariant check), while a quiescent test can pass a full
// CheckIntegrity.
type Auditor struct {
	check func() error

	passes   atomic.Int64
	failures atomic.Int64

	mu       sync.Mutex
	firstErr error
	stop     chan struct{}
	done     chan struct{}
}

// NewAuditor creates an auditor over the given check.
func NewAuditor(check func() error) *Auditor {
	if check == nil {
		panic("metrics: nil auditor check")
	}
	return &Auditor{check: check}
}

// RunOnce runs the check immediately, records the outcome, and returns the
// check's error.
func (a *Auditor) RunOnce() error {
	err := a.check()
	if err == nil {
		a.passes.Add(1)
		return nil
	}
	a.failures.Add(1)
	a.mu.Lock()
	if a.firstErr == nil {
		a.firstErr = err
	}
	a.mu.Unlock()
	return err
}

// Start runs the check every interval on a background goroutine until Stop.
// Failures do not stop the loop (they accumulate in Failures and Err). It
// panics if the auditor is already running.
func (a *Auditor) Start(interval time.Duration) {
	if interval <= 0 {
		panic(fmt.Sprintf("metrics: auditor interval %v", interval))
	}
	a.mu.Lock()
	if a.stop != nil {
		a.mu.Unlock()
		panic("metrics: auditor already running")
	}
	a.stop = make(chan struct{})
	a.done = make(chan struct{})
	stop, done := a.stop, a.done
	a.mu.Unlock()
	go func() {
		defer close(done)
		tick := time.NewTicker(interval)
		defer tick.Stop()
		for {
			select {
			case <-stop:
				return
			case <-tick.C:
				a.RunOnce()
			}
		}
	}()
}

// Stop halts the background loop (no-op if not running), runs one final
// check, and returns the first error observed over the auditor's lifetime.
func (a *Auditor) Stop() error {
	a.mu.Lock()
	stop, done := a.stop, a.done
	a.stop, a.done = nil, nil
	a.mu.Unlock()
	if stop != nil {
		close(stop)
		<-done
	}
	a.RunOnce()
	return a.Err()
}

// Passes returns the number of successful checks so far.
func (a *Auditor) Passes() int64 { return a.passes.Load() }

// Failures returns the number of failed checks so far.
func (a *Auditor) Failures() int64 { return a.failures.Load() }

// Err returns the first check failure, or nil.
func (a *Auditor) Err() error {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.firstErr
}
