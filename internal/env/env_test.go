package env

import (
	"sync"
	"testing"
)

func TestRealEnvIsInert(t *testing.T) {
	e := &RealEnv{ID: 7}
	e.Charge(OpMallocFast, 100)
	e.Touch(0x1234, 64, true)
	if e.ThreadID() != 7 {
		t.Fatalf("ThreadID = %d", e.ThreadID())
	}
}

func TestRealLockMutualExclusion(t *testing.T) {
	l := RealLockFactory{}.NewLock("t")
	e := &RealEnv{}
	var counter, race int
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				l.Lock(e)
				counter++
				race = counter
				l.Unlock(e)
			}
		}()
	}
	wg.Wait()
	if counter != 8000 || race == 0 {
		t.Fatalf("counter = %d", counter)
	}
}

func TestRealLockTryLock(t *testing.T) {
	l := RealLockFactory{}.NewLock("t")
	e := &RealEnv{}
	if !l.TryLock(e) {
		t.Fatal("TryLock on free lock failed")
	}
	if l.TryLock(e) {
		t.Fatal("TryLock on held lock succeeded")
	}
	l.Unlock(e)
	if !l.TryLock(e) {
		t.Fatal("TryLock after unlock failed")
	}
	l.Unlock(e)
}

func TestCostKindStrings(t *testing.T) {
	seen := map[string]bool{}
	for k := CostKind(0); k < NumCostKinds; k++ {
		s := k.String()
		if s == "" || s == "unknown" {
			t.Fatalf("kind %d has no name", k)
		}
		if seen[s] {
			t.Fatalf("duplicate name %q", s)
		}
		seen[s] = true
	}
	if CostKind(99).String() != "unknown" {
		t.Fatal("out-of-range kind should be unknown")
	}
}

func TestCountingLockFactory(t *testing.T) {
	f := &CountingLockFactory{Inner: RealLockFactory{}}
	e := &RealEnv{}
	a := f.NewLock("a")
	b := f.NewLock("b")
	a.Lock(e)
	b.Lock(e)
	if b.TryLock(e) {
		t.Fatal("TryLock on held lock succeeded")
	}
	if got := f.Acquires(); got != 2 {
		t.Fatalf("Acquires = %d after 2 locks and a failed TryLock, want 2", got)
	}
	a.Unlock(e)
	b.Unlock(e)
	if !a.TryLock(e) {
		t.Fatal("TryLock on free lock failed")
	}
	a.Unlock(e)
	if got := f.Acquires(); got != 3 {
		t.Fatalf("Acquires = %d, want 3", got)
	}
}
