package workload

import (
	"math/rand"

	"hoardgo/internal/alloc"
	"hoardgo/internal/env"
)

// ShbenchConfig parameterizes the shbench benchmark (after MicroQuill's
// SmartHeap benchmark, as used in the paper): each thread keeps a working
// set of slots and randomly allocates into empty slots or frees occupied
// ones, with random sizes — a mix of short- and long-lived objects of many
// size classes.
type ShbenchConfig struct {
	// Threads is the worker count.
	Threads int
	// Ops is the total slot operations, divided evenly across threads
	// (the paper's figures strong-scale: fixed work, more processors).
	Ops int
	// Slots bounds each thread's working set.
	Slots int
	// MinSize and MaxSize bound the random object sizes (1..1000 in the
	// benchmark).
	MinSize, MaxSize int
	// Seed makes runs reproducible.
	Seed int64
}

// DefaultShbench mirrors the benchmark's usual parameters at
// simulation-friendly scale.
func DefaultShbench(threads int) ShbenchConfig {
	return ShbenchConfig{
		Threads: threads,
		Ops:     280000,
		Slots:   2500,
		MinSize: 1,
		MaxSize: 1000,
		Seed:    1,
	}
}

// Shbench runs the benchmark on h.
func Shbench(h *Harness, cfg ShbenchConfig) Result {
	perThread := cfg.Ops / cfg.Threads
	if perThread < 1 {
		perThread = 1
	}
	h.Par(cfg.Threads, func(id int, e env.Env, t *alloc.Thread) {
		a := h.Allocator()
		rng := rand.New(rand.NewSource(cfg.Seed + int64(id)))
		ptrs := make([]alloc.Ptr, cfg.Slots)
		sizes := make([]int, cfg.Slots)
		for op := 0; op < perThread; op++ {
			i := rng.Intn(cfg.Slots)
			if ptrs[i].IsNil() {
				sz := cfg.MinSize + rng.Intn(cfg.MaxSize-cfg.MinSize+1)
				ptrs[i] = a.Malloc(t, sz)
				sizes[i] = sz
				h.OnAlloc(sz)
				WriteObj(a, e, ptrs[i], sz)
			} else {
				ReadObj(a, e, ptrs[i], sizes[i])
				a.Free(t, ptrs[i])
				h.OnFree(sizes[i])
				ptrs[i] = 0
			}
		}
		for i, p := range ptrs {
			if !p.IsNil() {
				a.Free(t, p)
				h.OnFree(sizes[i])
			}
		}
	})
	ops := int64(cfg.Threads) * int64(perThread)
	return h.Result(cfg.Threads, ops)
}
