package experiments

import "testing"

// TestTuneSmoke runs the A14 CI gate (the one make tune-smoke uses): on every
// workload the tuned arm must start from the detuned knobs, make decisions,
// and land its steady-state transfer traffic and footprint inside the
// convergence thresholds against the oracle arm.
func TestTuneSmoke(t *testing.T) {
	rs, err := TuneSmoke()
	if len(rs) != len(controlWorkloads()) {
		t.Fatalf("%d results, want %d", len(rs), len(controlWorkloads()))
	}
	for _, r := range rs {
		t.Logf("%s P=%d: detuned %.4f tuned %.4f oracle %.4f transfers/op; tuned decisions %d, footprint %.2fx oracle",
			r.Workload, r.Procs, r.Detuned.TransfersPerOp, r.Tuned.TransfersPerOp,
			r.Oracle.TransfersPerOp, r.Tuned.Decisions, r.FootprintRatioVsOracle)
	}
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rs {
		for _, arm := range []ControlArm{r.Detuned, r.Tuned, r.Oracle} {
			if arm.Ops == 0 {
				t.Fatalf("%s/%s: arm did no work", r.Workload, arm.Arm)
			}
		}
		if r.Detuned.Decisions != 0 || r.Oracle.Decisions != 0 {
			t.Fatalf("%s: static arm reported controller activity", r.Workload)
		}
		if len(r.Tuned.FinalKnobs) == 0 {
			t.Fatalf("%s: tuned arm reported no final knob state", r.Workload)
		}
	}
}
