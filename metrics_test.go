package hoard

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestWriteMetricsPrometheus(t *testing.T) {
	a := MustNew(Config{Procs: 2, Metrics: true, ThreadCacheCapacity: 16})
	th := a.NewThread()
	var ps []Ptr
	for i := 0; i < 200; i++ {
		ps = append(ps, th.Malloc(64+i%512))
	}
	for _, p := range ps[:100] {
		th.Free(p)
	}
	var b strings.Builder
	if err := a.WriteMetrics(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if err := LintMetrics(out); err != nil {
		t.Fatalf("lint: %v\n%s", err, out)
	}
	for _, want := range []string{
		"hoard_mallocs_total",
		"hoard_live_bytes",
		"hoard_lock_acquires_total",
		"hoard_heap_in_use_bytes",
		"hoard_heap_group_superblocks",
		"hoard_tcache_magazine_bytes",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing family %q in:\n%s", want, out)
		}
	}
	// The churn above took heap locks: the instrumented factory must have
	// seen acquisitions.
	stats := a.LockStats()
	if len(stats) == 0 {
		t.Fatal("no instrumented locks with Metrics: true")
	}
	var acquires int64
	for _, st := range stats {
		acquires += st.Acquires
	}
	if acquires == 0 {
		t.Fatal("no lock acquisitions recorded across a malloc/free churn")
	}
	for _, p := range ps[100:] {
		th.Free(p)
	}
}

func TestWriteMetricsJSON(t *testing.T) {
	a := MustNew(Config{Procs: 2, Metrics: true})
	th := a.NewThread()
	p := th.Malloc(100)
	var b strings.Builder
	if err := a.WriteMetricsJSON(&b); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Allocator string           `json:"allocator"`
		Counters  map[string]int64 `json:"counters"`
		Heaps     []struct {
			A      int64 `json:"a"`
			Groups []int `json:"groups"`
		} `json:"heaps"`
		Locks []struct {
			Name     string `json:"name"`
			Acquires int64  `json:"acquires"`
		} `json:"locks"`
	}
	if err := json.Unmarshal([]byte(b.String()), &doc); err != nil {
		t.Fatalf("not valid JSON: %v\n%s", err, b.String())
	}
	if doc.Allocator != "hoard" {
		t.Fatalf("allocator %q", doc.Allocator)
	}
	if doc.Counters["mallocs_total"] != 1 {
		t.Fatalf("mallocs_total = %d", doc.Counters["mallocs_total"])
	}
	if len(doc.Heaps) == 0 || len(doc.Locks) == 0 {
		t.Fatalf("missing heaps (%d) or locks (%d)", len(doc.Heaps), len(doc.Locks))
	}
	th.Free(p)
}

func TestMetricsOffHasNoLockStats(t *testing.T) {
	a := MustNew(Config{Procs: 2})
	th := a.NewThread()
	th.Free(th.Malloc(64))
	if got := a.LockStats(); got != nil {
		t.Fatalf("LockStats = %v without Config.Metrics", got)
	}
	// Export still works — it just has no lock families.
	var b strings.Builder
	if err := a.WriteMetrics(&b); err != nil {
		t.Fatal(err)
	}
	if err := LintMetrics(b.String()); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(b.String(), "hoard_lock_") {
		t.Fatal("lock families exported without instrumentation")
	}
}

func TestWriteMetricsNonHoardPolicy(t *testing.T) {
	a := MustNew(Config{Policy: PolicySerial, Metrics: true})
	th := a.NewThread()
	p := th.Malloc(64)
	var b strings.Builder
	if err := a.WriteMetrics(&b); err != nil {
		t.Fatal(err)
	}
	if err := LintMetrics(b.String()); err != nil {
		t.Fatalf("lint: %v\n%s", err, b.String())
	}
	if strings.Contains(b.String(), "hoard_heap_in_use_bytes") {
		t.Fatal("serial policy exported Hoard heap occupancy")
	}
	if err := a.Audit(); err != nil {
		t.Fatalf("Audit on serial policy: %v", err)
	}
	th.Free(p)
}

func TestMetricsHandler(t *testing.T) {
	a := MustNew(Config{Procs: 2, Metrics: true})
	th := a.NewThread()
	var ps []Ptr
	for i := 0; i < 300; i++ {
		ps = append(ps, th.Malloc(64))
	}
	srv := httptest.NewServer(a.MetricsHandler())
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("Content-Type %q", ct)
	}
	if err := LintMetrics(string(body)); err != nil {
		t.Fatalf("lint: %v\n%s", err, body)
	}
	for _, want := range []string{"hoard_mallocs_total", "hoard_footprint_bytes", "hoard_reserved_bytes"} {
		if !strings.Contains(string(body), want) {
			t.Fatalf("missing family %q in scrape:\n%s", want, body)
		}
	}
	// Scrapes sample live: a second one sees the frees below.
	for _, p := range ps {
		th.Free(p)
	}
	resp2, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body2, _ := io.ReadAll(resp2.Body)
	resp2.Body.Close()
	if !strings.Contains(string(body2), "hoard_frees_total{allocator=\"hoard\"} 300") {
		t.Fatalf("second scrape did not reflect frees:\n%s", body2)
	}
}

func TestAuditUnderLoad(t *testing.T) {
	a := MustNew(Config{Procs: 4, Metrics: true})
	if err := a.Audit(); err != nil {
		t.Fatalf("audit of idle allocator: %v", err)
	}
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			th := a.NewThread()
			var ps []Ptr
			for {
				select {
				case <-stop:
					for _, p := range ps {
						th.Free(p)
					}
					return
				default:
				}
				ps = append(ps, th.Malloc(32+len(ps)%900))
				if len(ps) > 400 {
					for _, p := range ps {
						th.Free(p)
					}
					ps = ps[:0]
				}
			}
		}()
	}
	for i := 0; i < 20; i++ {
		if err := a.Audit(); err != nil {
			close(stop)
			wg.Wait()
			t.Fatalf("audit %d under load: %v", i, err)
		}
	}
	close(stop)
	wg.Wait()
	if err := a.CheckIntegrity(); err != nil {
		t.Fatal(err)
	}
}

func TestBackgroundAuditor(t *testing.T) {
	a := MustNew(Config{Procs: 2})
	if err := a.StartAuditor(time.Millisecond); err != nil {
		t.Fatal(err)
	}
	if err := a.StartAuditor(time.Millisecond); err == nil {
		t.Fatal("second StartAuditor accepted")
	}
	th := a.NewThread()
	var ps []Ptr
	for i := 0; i < 2000; i++ {
		ps = append(ps, th.Malloc(16+i%300))
		if len(ps) > 100 {
			for _, p := range ps {
				th.Free(p)
			}
			ps = ps[:0]
		}
	}
	time.Sleep(5 * time.Millisecond)
	passes, failures, err := a.StopAuditor()
	if err != nil {
		t.Fatal(err)
	}
	if failures != 0 {
		t.Fatalf("%d audit failures", failures)
	}
	if passes == 0 {
		t.Fatal("auditor never ran")
	}
	// Stopped auditor: StopAuditor again is a zero no-op, restart works.
	if p2, f2, err2 := a.StopAuditor(); p2 != 0 || f2 != 0 || err2 != nil {
		t.Fatalf("second StopAuditor = %d, %d, %v", p2, f2, err2)
	}
	if err := a.StartAuditor(time.Millisecond); err != nil {
		t.Fatal(err)
	}
	if _, _, err := a.StopAuditor(); err != nil {
		t.Fatal(err)
	}
	for _, p := range ps {
		th.Free(p)
	}
}
