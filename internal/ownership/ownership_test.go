package ownership

import (
	"testing"

	"hoardgo/internal/alloc"
	"hoardgo/internal/alloctest"
	"hoardgo/internal/env"
)

var lf = env.RealLockFactory{}

func TestConformance(t *testing.T) {
	alloctest.Run(t, func() alloc.Allocator {
		return New(Config{Arenas: 4, Steal: true}, lf)
	})
}

func TestConformanceNoSteal(t *testing.T) {
	alloctest.Run(t, func() alloc.Allocator {
		return New(Config{Arenas: 4}, lf)
	})
}

// TestProducerConsumerBounded shows the improvement over pure private
// heaps: ownership returns frees to the producer's arena, so
// producer-consumer memory stays bounded.
func TestProducerConsumerBounded(t *testing.T) {
	a := New(Config{Arenas: 4}, lf)
	producer := a.NewThread(&env.RealEnv{ID: 0})
	consumer := a.NewThread(&env.RealEnv{ID: 1})
	const batch = 200
	var after10 int64
	for r := 0; r < 100; r++ {
		ps := make([]alloc.Ptr, batch)
		for i := range ps {
			ps[i] = a.Malloc(producer, 64)
		}
		for _, p := range ps {
			a.Free(consumer, p)
		}
		if r == 9 {
			after10 = a.Space().Committed()
		}
	}
	if got := a.Space().Committed(); got > 2*after10 {
		t.Fatalf("producer-consumer memory grew %d -> %d; ownership should bound it", after10, got)
	}
	if err := a.CheckIntegrity(); err != nil {
		t.Fatal(err)
	}
}

// TestPFoldBlowup demonstrates the O(P) blowup the paper ascribes to
// private heaps with ownership: when an allocation phase shifts from thread
// to thread, each thread's arena grows to the program's maximum live size,
// so the allocator consumes ~P times the ideal.
func TestPFoldBlowup(t *testing.T) {
	const arenas = 8
	a := New(Config{Arenas: arenas}, lf)
	const liveBytes = 64 * 1024
	const objSize = 64
	const objs = liveBytes / objSize
	for tid := 0; tid < arenas; tid++ {
		th := a.NewThread(&env.RealEnv{ID: tid})
		ps := make([]alloc.Ptr, objs)
		for i := range ps {
			ps[i] = a.Malloc(th, objSize)
		}
		for _, p := range ps {
			a.Free(th, p) // returns to this thread's own arena
		}
	}
	// Ideal allocator: ~liveBytes. Ownership: ~arenas * liveBytes.
	committed := a.Space().Committed()
	if committed < int64(arenas)*liveBytes/2 {
		t.Fatalf("committed %d; expected ~%d (P-fold blowup)", committed, arenas*liveBytes)
	}
	if got := a.Stats().LiveBytes; got != 0 {
		t.Fatalf("LiveBytes = %d", got)
	}
}

// TestArenaStealing verifies that with Steal enabled a thread whose home
// arena is locked allocates from another arena instead of blocking.
func TestArenaStealing(t *testing.T) {
	a := New(Config{Arenas: 2, Steal: true}, lf)
	t0 := a.NewThread(&env.RealEnv{ID: 0})
	// Hold arena 0's lock hostage.
	a.arenas[0].lock.Lock(t0.Env)
	done := make(chan alloc.Ptr)
	go func() {
		t0b := a.NewThread(&env.RealEnv{ID: 0}) // same home arena 0
		done <- a.Malloc(t0b, 64)
	}()
	p := <-done // would deadlock without stealing
	a.arenas[0].lock.Unlock(t0.Env)
	sp := a.space.Lookup(uint64(p))
	if sp == nil {
		t.Fatal("no span")
	}
	th := a.NewThread(&env.RealEnv{ID: 5})
	a.Free(th, p)
	if err := a.CheckIntegrity(); err != nil {
		t.Fatal(err)
	}
}

func TestHomeArenaAssignment(t *testing.T) {
	a := New(Config{Arenas: 4}, lf)
	for id := 0; id < 8; id++ {
		th := a.NewThread(&env.RealEnv{ID: id})
		if got, want := th.State.(*threadState).home, id%4; got != want {
			t.Fatalf("thread %d home arena %d, want %d", id, got, want)
		}
	}
	neg := a.NewThread(&env.RealEnv{ID: -3})
	if h := neg.State.(*threadState).home; h < 0 || h >= 4 {
		t.Fatalf("negative id mapped to arena %d", h)
	}
}
