// Package loadgen is the traffic-shaped serving benchmark: a YCSB-style
// load engine that drives the allocator under wall-clock request streams
// with skewed key popularity, bursty arrival rates, and tail-latency SLOs —
// the way the paper's server workload (Larson) would be measured in
// production. It provides:
//
//   - request-key and request-size generators (zipfian, hotspot,
//     exponential, uniform), deterministic under a seed;
//   - concurrent HDR-style latency histograms with p50/p99/p999/max;
//   - traffic phases (diurnal ramp, hotspot shift, burst spike, slow
//     drain) with open-loop wall-clock arrival pacing;
//   - the serving engine itself — the examples/webserver pipeline
//     (listener allocates, workers respond and free cross-thread, a keyed
//     working set pins skewed lifetimes) hardened with the full thread and
//     allocator lifecycle — recording per-op malloc/free latency,
//     end-to-end request latency, and a committed-bytes timeline;
//   - a wall-clock 1..NumCPU scalability sweep with instrumented locks,
//     on both the sim and arena backends.
//
// cmd/hoardload is the CLI front end and writes the committed BENCH_PR9
// artifact; DESIGN.md §13 documents the architecture and EXPERIMENTS.md A13
// the results.
package loadgen

import (
	"fmt"
	"math"
	"math/rand"
	"sync/atomic"
)

// Generator produces a stream of int64 values in [0, N) — request keys or
// request sizes depending on where it is plugged in. Implementations are
// immutable after construction (safe for concurrent Next with per-caller
// rngs) except where documented.
type Generator interface {
	// Next draws the next value using the caller's rng, so each worker
	// can stream deterministically from its own seed.
	Next(r *rand.Rand) int64
	// N is the exclusive upper bound of the value space.
	N() int64
	// Name identifies the distribution in reports.
	Name() string
}

// Uniform draws uniformly from [0, n).
type Uniform struct{ n int64 }

// NewUniform builds a uniform generator over [0, n).
func NewUniform(n int64) *Uniform {
	if n <= 0 {
		panic(fmt.Sprintf("loadgen: uniform over %d values", n))
	}
	return &Uniform{n: n}
}

func (u *Uniform) Next(r *rand.Rand) int64 { return r.Int63n(u.n) }
func (u *Uniform) N() int64                { return u.n }
func (u *Uniform) Name() string            { return "uniform" }

// Zipfian draws from [0, n) with the YCSB zipfian distribution (Gray et
// al.'s "Quickly generating billion-record synthetic databases" algorithm):
// rank 0 is the most popular, popularity falls off as 1/rank^theta. The
// zeta constants are precomputed so Next is two float ops and a pow.
type Zipfian struct {
	n               int64
	theta           float64
	alpha, zetan    float64
	eta, halfPowTta float64
}

// ZipfianTheta is the YCSB default skew: ~0.63 of ops hit the hottest 10%.
const ZipfianTheta = 0.99

// NewZipfian builds a zipfian generator over [0, n) with skew theta in
// (0, 1).
func NewZipfian(n int64, theta float64) *Zipfian {
	if n <= 0 || theta <= 0 || theta >= 1 {
		panic(fmt.Sprintf("loadgen: zipfian over %d values with theta %v", n, theta))
	}
	z := &Zipfian{n: n, theta: theta}
	z.zetan = zeta(n, theta)
	z.alpha = 1 / (1 - theta)
	z.eta = (1 - math.Pow(2/float64(n), 1-theta)) / (1 - zeta(2, theta)/z.zetan)
	z.halfPowTta = 1 + math.Pow(0.5, theta)
	return z
}

// zeta computes the generalized harmonic number sum_{i=1..n} 1/i^theta.
func zeta(n int64, theta float64) float64 {
	var sum float64
	for i := int64(1); i <= n; i++ {
		sum += 1 / math.Pow(float64(i), theta)
	}
	return sum
}

func (z *Zipfian) Next(r *rand.Rand) int64 {
	u := r.Float64()
	uz := u * z.zetan
	if uz < 1 {
		return 0
	}
	if uz < z.halfPowTta {
		return 1
	}
	return int64(float64(z.n) * math.Pow(z.eta*u-z.eta+1, z.alpha))
}

func (z *Zipfian) N() int64     { return z.n }
func (z *Zipfian) Name() string { return fmt.Sprintf("zipfian(%.2f)", z.theta) }

// Scrambled spreads another generator's rank order across the key space
// with an FNV-style hash, so zipfian popularity does not correlate with key
// adjacency (YCSB's scrambled zipfian). Hot keys land far apart — the worst
// case for any allocator hoping popular objects cluster.
type Scrambled struct {
	inner Generator
	salt  uint64
}

// NewScrambled wraps inner with rank scrambling under the given salt.
func NewScrambled(inner Generator, salt uint64) *Scrambled {
	return &Scrambled{inner: inner, salt: salt}
}

func (s *Scrambled) Next(r *rand.Rand) int64 {
	h := uint64(s.inner.Next(r)) ^ s.salt
	h *= 0x100000001b3 // FNV prime
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	return int64(h % uint64(s.inner.N()))
}

func (s *Scrambled) N() int64     { return s.inner.N() }
func (s *Scrambled) Name() string { return "scrambled-" + s.inner.Name() }

// Hotspot draws from [0, n) with a hot region: hotOpFrac of the draws land
// uniformly in a window of hotSetFrac*n keys starting at a movable base,
// the rest land uniformly in the whole space (YCSB's hotspot distribution).
// Shift slides the window — the mid-phase "the fashionable working set
// moved" event. The base is atomic so a running engine can shift it while
// workers draw.
type Hotspot struct {
	n         int64
	hotSet    int64
	hotOpFrac float64
	base      atomic.Int64
}

// NewHotspot builds a hotspot generator: hotSetFrac of the key space
// receives hotOpFrac of the operations.
func NewHotspot(n int64, hotSetFrac, hotOpFrac float64) *Hotspot {
	if n <= 0 || hotSetFrac <= 0 || hotSetFrac > 1 || hotOpFrac < 0 || hotOpFrac > 1 {
		panic(fmt.Sprintf("loadgen: hotspot(%d, %v, %v)", n, hotSetFrac, hotOpFrac))
	}
	hot := int64(float64(n) * hotSetFrac)
	if hot < 1 {
		hot = 1
	}
	return &Hotspot{n: n, hotSet: hot, hotOpFrac: hotOpFrac}
}

func (h *Hotspot) Next(r *rand.Rand) int64 {
	if r.Float64() < h.hotOpFrac {
		return (h.base.Load() + r.Int63n(h.hotSet)) % h.n
	}
	return r.Int63n(h.n)
}

// Shift slides the hot window by delta keys (wrapping), abandoning the old
// hot set — its objects go cold and linger in the working set.
func (h *Hotspot) Shift(delta int64) {
	h.base.Store(((h.base.Load()+delta)%h.n + h.n) % h.n)
}

func (h *Hotspot) N() int64 { return h.n }
func (h *Hotspot) Name() string {
	return fmt.Sprintf("hotspot(%.2f/%.2f)", float64(h.hotSet)/float64(h.n), h.hotOpFrac)
}

// Exponential draws from [0, n) with an exponential distribution of the
// given mean, clamped to the space — small values dominate, the tail is
// long. Used for request sizes (most responses are small, a few are big).
type Exponential struct {
	n    int64
	mean float64
}

// NewExponential builds an exponential generator over [0, n) with the given
// mean.
func NewExponential(n int64, mean float64) *Exponential {
	if n <= 0 || mean <= 0 {
		panic(fmt.Sprintf("loadgen: exponential(%d, %v)", n, mean))
	}
	return &Exponential{n: n, mean: mean}
}

func (e *Exponential) Next(r *rand.Rand) int64 {
	v := int64(r.ExpFloat64() * e.mean)
	if v >= e.n {
		v = e.n - 1
	}
	return v
}

func (e *Exponential) N() int64     { return e.n }
func (e *Exponential) Name() string { return fmt.Sprintf("exponential(%.0f)", e.mean) }

// Sizes adapts a generator to request sizes in [min, max]: the generated
// value offsets min, clamped at max. The distribution's shape is preserved
// over the window.
type Sizes struct {
	gen      Generator
	min, max int
}

// NewSizes builds a size generator over [min, max] bytes from gen's values.
func NewSizes(gen Generator, min, max int) *Sizes {
	if min <= 0 || max < min {
		panic(fmt.Sprintf("loadgen: sizes [%d, %d]", min, max))
	}
	return &Sizes{gen: gen, min: min, max: max}
}

// Next draws a size in [min, max].
func (s *Sizes) Next(r *rand.Rand) int {
	v := s.min + int(s.gen.Next(r))
	if v > s.max {
		v = s.max
	}
	return v
}

// Name identifies the size distribution in reports.
func (s *Sizes) Name() string { return fmt.Sprintf("%s[%d..%d]", s.gen.Name(), s.min, s.max) }
