//go:build linux

package scavenge

import (
	"fmt"
	"os"
	"strconv"
	"strings"
)

// ReadRSS returns the process's resident set size in bytes, read from
// /proc/self/statm. This is the ground truth the arena experiments compare
// the allocator's committed accounting against: only pages the OS actually
// backs count.
func ReadRSS() (int64, error) {
	data, err := os.ReadFile("/proc/self/statm")
	if err != nil {
		return 0, err
	}
	fields := strings.Fields(string(data))
	if len(fields) < 2 {
		return 0, fmt.Errorf("scavenge: malformed /proc/self/statm %q", data)
	}
	pages, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return 0, fmt.Errorf("scavenge: /proc/self/statm resident field: %w", err)
	}
	return pages * int64(os.Getpagesize()), nil
}
