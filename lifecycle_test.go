package hoard

import (
	"math/rand"
	"sync"
	"testing"
)

// runServerDrain runs the examples/webserver pattern against a: a listener
// allocating request buffers, workers allocating responses and freeing both
// (almost every request-buffer free is cross-thread), then a full drain.
// When closeThreads is set every worker retires its Thread on exit and the
// listener follows — the lifecycle the webserver fix introduced.
func runServerDrain(a *Allocator, workers, requests int, closeThreads bool) {
	type request struct {
		buf  Ptr
		size int
	}
	queue := make(chan request, 64)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			t := a.NewThread()
			if closeThreads {
				defer t.Close()
			}
			rng := rand.New(rand.NewSource(int64(w)))
			for req := range queue {
				var sum byte
				for _, b := range t.Bytes(req.buf, req.size) {
					sum ^= b
				}
				respSize := 128 + rng.Intn(1024)
				resp := t.Malloc(respSize)
				t.Bytes(resp, respSize)[0] = sum
				t.Free(resp)
				t.Free(req.buf)
			}
		}(w)
	}
	listener := a.NewThread()
	rng := rand.New(rand.NewSource(42))
	for i := 0; i < requests; i++ {
		size := 64 + rng.Intn(2048)
		p := listener.Malloc(size)
		listener.Bytes(p, size)[0] = byte(i)
		queue <- request{buf: p, size: size}
	}
	close(queue)
	wg.Wait()
	if closeThreads {
		listener.Close()
	}
}

// TestWebserverLifecycleDrain is the regression test for the webserver
// lifecycle bug: worker Thread handles were never flushed, so with a thread
// cache layered the magazines kept blocks checked out after the drain —
// nonzero CachedBytes, superblocks pinned against scavenging. With every
// thread Closed, the drain must leave zero cached and zero live bytes.
func TestWebserverLifecycleDrain(t *testing.T) {
	a := MustNew(Config{Procs: 4, ThreadCacheCapacity: 32})
	defer a.Close()
	runServerDrain(a, 4, 2000, true)
	if c := a.CachedBytes(); c != 0 {
		t.Errorf("CachedBytes = %d after drain with closed threads, want 0", c)
	}
	if live := a.Stats().LiveBytes; live != 0 {
		t.Errorf("LiveBytes = %d after drain, want 0", live)
	}
	if err := a.CheckIntegrity(); err != nil {
		t.Fatalf("integrity after drained lifecycle: %v", err)
	}
}

// TestWebserverLifecycleLeakWithoutClose is the negative control: the same
// drain without Thread.Close must strand magazine blocks, which is exactly
// what the pre-fix webserver did. If this ever reports zero the regression
// test above has stopped testing anything.
func TestWebserverLifecycleLeakWithoutClose(t *testing.T) {
	a := MustNew(Config{Procs: 4, ThreadCacheCapacity: 32})
	defer a.Close()
	runServerDrain(a, 4, 2000, false)
	if c := a.CachedBytes(); c == 0 {
		t.Fatalf("CachedBytes = 0 after drain without Thread.Close; the lifecycle regression test is vacuous")
	}
	// The stranded blocks are cached, not leaked to the application view.
	if live := a.Stats().LiveBytes; live != 0 {
		t.Errorf("LiveBytes = %d after drain, want 0 (cached blocks count as free)", live)
	}
}

// TestThreadCloseIdempotentAndUsable: Close twice is safe, and a closed
// handle still allocates and frees correctly (bypassing the caches).
func TestThreadCloseIdempotentAndUsable(t *testing.T) {
	a := MustNew(Config{Procs: 2, ThreadCacheCapacity: 32})
	defer a.Close()
	th := a.NewThread()
	p := th.Malloc(100)
	th.Free(p)
	th.Close()
	th.Close()
	p = th.Malloc(64)
	th.Bytes(p, 64)[0] = 1
	th.Free(p)
	if c := a.CachedBytes(); c != 0 {
		t.Errorf("CachedBytes = %d after post-Close ops, want 0 (retired handles bypass magazines)", c)
	}
	if err := a.CheckIntegrity(); err != nil {
		t.Fatal(err)
	}
}

// TestThreadCloseDebugStack: Close drains the debug quarantine too, so a
// debug+tcache stack also reaches zero cached bytes and full accounting.
func TestThreadCloseDebugStack(t *testing.T) {
	a := MustNew(Config{Procs: 2, ThreadCacheCapacity: 16, Debug: true, DebugQuarantine: 32})
	defer a.Close()
	th := a.NewThread()
	for i := 0; i < 200; i++ {
		p := th.Malloc(64 + i%512)
		th.Bytes(p, 8)[0] = byte(i)
		th.Free(p)
	}
	th.Close()
	if c := a.CachedBytes(); c != 0 {
		t.Errorf("CachedBytes = %d after Close on debug stack, want 0", c)
	}
	if live := a.Stats().LiveBytes; live != 0 {
		t.Errorf("LiveBytes = %d after Close on debug stack, want 0", live)
	}
	if err := a.CheckIntegrity(); err != nil {
		t.Fatal(err)
	}
}
