package metrics

import (
	"errors"
	"strings"
	"sync"
	"testing"
	"time"

	"hoardgo/internal/env"
)

func TestRegistryCountsAcquisitions(t *testing.T) {
	r := NewRegistry()
	lf := r.WrapFactory(env.RealLockFactory{})
	l := lf.NewLock("test.lock")
	e := &env.RealEnv{}

	for i := 0; i < 5; i++ {
		l.Lock(e)
		l.Unlock(e)
	}
	if !l.TryLock(e) {
		t.Fatal("TryLock on free lock failed")
	}
	l.Unlock(e)

	stats := r.LockStats()
	if len(stats) != 1 {
		t.Fatalf("%d locks, want 1", len(stats))
	}
	st := stats[0]
	if st.Name != "test.lock" {
		t.Fatalf("name %q", st.Name)
	}
	if st.Acquires != 6 {
		t.Fatalf("acquires %d, want 6", st.Acquires)
	}
	if st.Contended != 0 {
		t.Fatalf("contended %d, want 0 single-threaded", st.Contended)
	}
	if st.HoldNS < 0 {
		t.Fatalf("negative hold time %d", st.HoldNS)
	}
}

func TestRegistryCountsContention(t *testing.T) {
	r := NewRegistry()
	l := r.WrapFactory(env.RealLockFactory{}).NewLock("contended")
	e1, e2 := &env.RealEnv{ID: 1}, &env.RealEnv{ID: 2}

	l.Lock(e1)
	if l.TryLock(e2) {
		t.Fatal("TryLock succeeded on held lock")
	}
	var wg sync.WaitGroup
	wg.Add(1)
	acquired := make(chan struct{})
	go func() {
		defer wg.Done()
		l.Lock(e2) // must wait: contended
		close(acquired)
		l.Unlock(e2)
	}()
	time.Sleep(20 * time.Millisecond)
	l.Unlock(e1)
	<-acquired
	wg.Wait()

	st := r.TotalLockStats()
	if st.Acquires != 2 {
		t.Fatalf("acquires %d, want 2", st.Acquires)
	}
	if st.Contended != 1 {
		t.Fatalf("contended %d, want 1", st.Contended)
	}
	if st.TryMisses != 1 {
		t.Fatalf("try misses %d, want 1", st.TryMisses)
	}
	if st.WaitNS <= 0 {
		t.Fatalf("wait time %d, want > 0 after a blocked Lock", st.WaitNS)
	}
	if st.HoldNS <= 0 {
		t.Fatalf("hold time %d, want > 0", st.HoldNS)
	}
}

func TestSnapshotPrometheusLints(t *testing.T) {
	s := NewSnapshot("hoard")
	s.Counters["mallocs_total"] = 100
	s.Counters["live_bytes"] = 4096
	s.Heaps = []HeapSample{
		{ID: 0, U: 10, A: 8192, Superblocks: 1, PendingBytes: 0, Groups: []int{1, 0, 0, 0, 0}},
		{ID: 1, U: 512, A: 16384, Superblocks: 2, PendingBytes: 64, Groups: []int{1, 1, 0, 0, 0}},
	}
	s.MagazineBytes = 2048
	s.Locks = []LockStats{{Name: "hoard.heap1", Acquires: 7, Contended: 2, WaitNS: 1500, HoldNS: 9000}}

	var b strings.Builder
	if err := s.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if err := LintPrometheus(out); err != nil {
		t.Fatalf("lint: %v\n%s", err, out)
	}
	for _, want := range []string{
		`hoard_mallocs_total{allocator="hoard"} 100`,
		`hoard_lock_acquires_total{lock="hoard.heap1"} 7`,
		`hoard_lock_contended_total{lock="hoard.heap1"} 2`,
		`hoard_heap_in_use_bytes{heap="1"} 512`,
		`hoard_heap_group_superblocks{heap="1",group="1"} 1`,
		`hoard_tcache_magazine_bytes{allocator="hoard"} 2048`,
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in:\n%s", want, out)
		}
	}
}

func TestLintRejectsMalformed(t *testing.T) {
	cases := []struct {
		name, text string
	}{
		{"empty", ""},
		{"no type header", "foo 1\n"},
		{"bad value", "# TYPE foo gauge\nfoo bar\n"},
		{"bad name", "# TYPE 1foo gauge\n1foo 2\n"},
		{"interleaved", "# TYPE a gauge\n# TYPE b gauge\na 1\nb 2\na 3\n"},
		{"bad label", "# TYPE foo gauge\nfoo{1x=\"y\"} 1\n"},
	}
	for _, tc := range cases {
		if err := LintPrometheus(tc.text); err == nil {
			t.Errorf("%s: lint accepted %q", tc.name, tc.text)
		}
	}
	good := "# HELP foo Help text.\n# TYPE foo counter\nfoo{l=\"v\"} 1\nfoo{l=\"w\"} 2\n"
	if err := LintPrometheus(good); err != nil {
		t.Errorf("lint rejected valid text: %v", err)
	}
}

func TestCollectorRing(t *testing.T) {
	n := 0
	c := NewCollector(3, func() Snapshot {
		n++
		s := NewSnapshot("x")
		s.Counters["n"] = int64(n)
		return s
	})
	for i := 0; i < 5; i++ {
		c.Sample()
	}
	got := c.Snapshots()
	if len(got) != 3 {
		t.Fatalf("%d snapshots retained, want 3", len(got))
	}
	for i, s := range got {
		if want := int64(3 + i); s.Counters["n"] != want {
			t.Fatalf("snapshot %d has n=%d, want %d (oldest evicted first)", i, s.Counters["n"], want)
		}
	}
}

func TestCollectorBackground(t *testing.T) {
	c := NewCollector(64, func() Snapshot { return NewSnapshot("x") })
	c.Start(time.Millisecond)
	time.Sleep(20 * time.Millisecond)
	c.Stop()
	if got := len(c.Snapshots()); got < 2 {
		t.Fatalf("background collector took %d samples, want >= 2", got)
	}
	// Stop is idempotent and Sample still works after.
	c.Stop()
}

func TestAuditor(t *testing.T) {
	var fail bool
	boom := errors.New("boom")
	a := NewAuditor(func() error {
		if fail {
			return boom
		}
		return nil
	})
	if err := a.RunOnce(); err != nil {
		t.Fatal(err)
	}
	fail = true
	if err := a.RunOnce(); err != boom {
		t.Fatalf("err %v, want boom", err)
	}
	fail = false
	if got := a.Passes(); got != 1 {
		t.Fatalf("passes %d, want 1", got)
	}
	if got := a.Failures(); got != 1 {
		t.Fatalf("failures %d, want 1", got)
	}
	if err := a.Stop(); err != boom {
		t.Fatalf("Stop returned %v, want first error", err)
	}
}

func TestAuditorBackground(t *testing.T) {
	a := NewAuditor(func() error { return nil })
	a.Start(time.Millisecond)
	time.Sleep(20 * time.Millisecond)
	if err := a.Stop(); err != nil {
		t.Fatal(err)
	}
	if a.Passes() < 2 {
		t.Fatalf("background auditor ran %d checks, want >= 2", a.Passes())
	}
}
