package loadgen

import (
	"math/rand"
	"testing"
)

// draw samples g n times and returns per-value counts.
func draw(t *testing.T, g Generator, n int, seed int64) map[int64]int {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	counts := make(map[int64]int)
	for i := 0; i < n; i++ {
		v := g.Next(rng)
		if v < 0 || v >= g.N() {
			t.Fatalf("%s: value %d out of [0, %d)", g.Name(), v, g.N())
		}
		counts[v]++
	}
	return counts
}

func TestGeneratorsDeterministic(t *testing.T) {
	gens := []Generator{
		NewUniform(1000),
		NewZipfian(1000, ZipfianTheta),
		NewScrambled(NewZipfian(1000, ZipfianTheta), 42),
		NewHotspot(1000, 0.1, 0.9),
		NewExponential(1000, 100),
	}
	for _, g := range gens {
		r1 := rand.New(rand.NewSource(7))
		r2 := rand.New(rand.NewSource(7))
		for i := 0; i < 1000; i++ {
			a, b := g.Next(r1), g.Next(r2)
			if a != b {
				t.Fatalf("%s: draw %d differs under same seed: %d vs %d", g.Name(), i, a, b)
			}
		}
	}
}

func TestZipfianSkew(t *testing.T) {
	const n, draws = 1000, 200000
	counts := draw(t, NewZipfian(n, ZipfianTheta), draws, 1)
	// Rank popularity must fall off steeply: rank 0 far above rank 10 far
	// above rank 100. Exact frequencies depend on the zeta constants; the
	// ordering with wide margins is the distribution's signature.
	if counts[0] < 2*counts[10] {
		t.Fatalf("rank 0 (%d) not well above rank 10 (%d)", counts[0], counts[10])
	}
	if counts[10] < 2*counts[100] {
		t.Fatalf("rank 10 (%d) not well above rank 100 (%d)", counts[10], counts[100])
	}
	// YCSB's calibration: the hottest 10% of keys should absorb well over
	// half the draws at theta=0.99.
	var hot int
	for k, c := range counts {
		if k < n/10 {
			hot += c
		}
	}
	if frac := float64(hot) / draws; frac < 0.55 {
		t.Fatalf("hottest 10%% of keys got %.2f of draws, want > 0.55", frac)
	}
}

func TestScrambledSpreadsPreservesSkew(t *testing.T) {
	const n, draws = 1000, 200000
	counts := draw(t, NewScrambled(NewZipfian(n, ZipfianTheta), 99), draws, 2)
	// The mass still concentrates on few keys (skew preserved)...
	var top int
	for _, c := range counts {
		if c > top {
			top = c
		}
	}
	if top < draws/20 {
		t.Fatalf("hottest key got %d of %d draws; scrambling destroyed the skew", top, draws)
	}
	// ...but not on the low ranks (order scrambled): the first 10 keys
	// should hold nothing like the unscrambled ~63%.
	var low int
	for k, c := range counts {
		if k < 10 {
			low += c
		}
	}
	if frac := float64(low) / draws; frac > 0.5 {
		t.Fatalf("keys 0..9 still hold %.2f of draws after scrambling", frac)
	}
}

func TestHotspotShift(t *testing.T) {
	const n, draws = 1000, 100000
	h := NewHotspot(n, 0.1, 0.9)
	inWindow := func(seed int64) float64 {
		rng := rand.New(rand.NewSource(seed))
		base := int64(0)
		if b := h.base.Load(); b != 0 {
			base = b
		}
		var in int
		for i := 0; i < draws; i++ {
			v := h.Next(rng)
			if (v-base+n)%n < h.hotSet {
				in++
			}
		}
		return float64(in) / draws
	}
	// ~90% hot + ~10% uniform spillover ≈ 0.91 expected in-window.
	if f := inWindow(3); f < 0.85 {
		t.Fatalf("pre-shift hot-window fraction %.2f, want > 0.85", f)
	}
	h.Shift(n / 2)
	if got := h.base.Load(); got != n/2 {
		t.Fatalf("base after shift = %d, want %d", got, n/2)
	}
	if f := inWindow(4); f < 0.85 {
		t.Fatalf("post-shift hot-window fraction %.2f, want > 0.85", f)
	}
}

func TestExponentialSmallValuesDominate(t *testing.T) {
	const n, draws = 4096, 100000
	counts := draw(t, NewExponential(n, 256), draws, 5)
	var below int
	for k, c := range counts {
		if k < 256 {
			below += c
		}
	}
	// P(X < mean) = 1 - 1/e ≈ 0.63 for an exponential.
	if frac := float64(below) / draws; frac < 0.55 || frac > 0.72 {
		t.Fatalf("fraction below mean = %.2f, want ~0.63", frac)
	}
}

func TestSizesBounds(t *testing.T) {
	s := NewSizes(NewExponential(10000, 500), 16, 2048)
	rng := rand.New(rand.NewSource(6))
	sawMin, sawBig := false, false
	for i := 0; i < 100000; i++ {
		v := s.Next(rng)
		if v < 16 || v > 2048 {
			t.Fatalf("size %d out of [16, 2048]", v)
		}
		if v == 16 {
			sawMin = true
		}
		if v > 1024 {
			sawBig = true
		}
	}
	if !sawMin || !sawBig {
		t.Fatalf("size stream never hit the bounds (min=%v big=%v)", sawMin, sawBig)
	}
}
