package hoard

import (
	"strings"
	"sync"
	"testing"
	"time"
)

// churn allocates count objects of size bytes and frees them all, pushing
// emptied superblocks to the global heap.
func churn(th *Thread, count, size int) {
	ps := make([]Ptr, count)
	for i := range ps {
		ps[i] = th.Malloc(size)
	}
	for _, p := range ps {
		th.Free(p)
	}
}

func TestReleaseMemoryPublic(t *testing.T) {
	a := MustNew(Config{Procs: 2})
	th := a.NewThread()
	churn(th, 2000, 64)

	before := a.Stats()
	released := a.ReleaseMemory()
	if released == 0 {
		t.Fatal("ReleaseMemory found nothing after a 2000-object churn")
	}
	st := a.Stats()
	if st.FootprintBytes != before.FootprintBytes-released {
		t.Fatalf("FootprintBytes = %d, want %d - %d", st.FootprintBytes, before.FootprintBytes, released)
	}
	if st.DecommittedBytes != released {
		t.Fatalf("DecommittedBytes = %d, want %d", st.DecommittedBytes, released)
	}
	if st.ReservedBytes != before.FootprintBytes {
		t.Fatalf("ReservedBytes = %d changed across a scavenge, want %d", st.ReservedBytes, before.FootprintBytes)
	}
	if st.ScavengeOps == 0 || st.ScavengedBytes != released {
		t.Fatalf("ScavengeOps %d ScavengedBytes %d, want >0 / %d", st.ScavengeOps, st.ScavengedBytes, released)
	}
	// Demand returns: decommitted superblocks come back transparently.
	churn(th, 2000, 64)
	if err := a.CheckIntegrity(); err != nil {
		t.Fatal(err)
	}

	// Metrics export carries the new families.
	var b strings.Builder
	if err := a.WriteMetrics(&b); err != nil {
		t.Fatal(err)
	}
	if err := LintMetrics(b.String()); err != nil {
		t.Fatalf("lint: %v\n%s", err, b.String())
	}
	for _, want := range []string{
		"hoard_reserved_bytes",
		"hoard_decommitted_bytes",
		"hoard_scavenge_passes_total",
		"hoard_scavenged_bytes_total",
		"hoard_decommits_total",
		"hoard_recommits_total",
		"hoard_heap_decommitted_superblocks",
	} {
		if !strings.Contains(b.String(), want) {
			t.Fatalf("missing family %q in:\n%s", want, b.String())
		}
	}
}

func TestReleaseMemoryNonHoard(t *testing.T) {
	a := MustNew(Config{Policy: PolicySerial})
	th := a.NewThread()
	churn(th, 100, 64)
	if got := a.ReleaseMemory(); got != 0 {
		t.Fatalf("serial ReleaseMemory = %d", got)
	}
	if err := a.StartScavenger(); err == nil {
		t.Fatal("StartScavenger accepted on serial policy")
	}
	if _, err := New(Config{Policy: PolicySerial, Scavenge: ScavengeConfig{Enabled: true}}); err == nil {
		t.Fatal("New accepted Scavenge.Enabled on serial policy")
	}
}

func TestBackgroundScavenger(t *testing.T) {
	a := MustNew(Config{Procs: 2, Scavenge: ScavengeConfig{
		Enabled:        true,
		HighWaterBytes: 2 * 8192,
		LowWaterBytes:  8192,
		ColdAge:        time.Nanosecond,
		Interval:       time.Millisecond,
		BytesPerSec:    1 << 30,
		BurstBytes:     1 << 30,
	}})
	if err := a.StartScavenger(); err == nil {
		t.Fatal("second StartScavenger accepted while running")
	}
	th := a.NewThread()
	churn(th, 4000, 64)

	deadline := time.Now().Add(5 * time.Second)
	for a.ScavengerStats().Passes == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	st := a.StopScavenger()
	if st.Passes == 0 || st.ReleasedBytes == 0 {
		t.Fatalf("background scavenger never released: %+v", st)
	}
	s := a.Stats()
	if s.ScavengedBytes < st.ReleasedBytes {
		t.Fatalf("Stats.ScavengedBytes %d below scavenger's own %d", s.ScavengedBytes, st.ReleasedBytes)
	}
	if err := a.CheckIntegrity(); err != nil {
		t.Fatal(err)
	}
	// Stopped: restart works, stop again is a zero-safe no-op.
	if a.StopScavenger(); a.ScavengerStats().Passes != st.Passes {
		t.Fatal("double StopScavenger changed stats")
	}
	if err := a.StartScavenger(); err != nil {
		t.Fatal(err)
	}
	a.StopScavenger()
}

// TestScavengerUnderProdConsChurn is the race-suite stress test: a
// producer-consumer churn (the workload that parks the most superblocks on
// the global heap) runs against the background scavenger and the invariant
// auditor at full tilt. Every block is written through after allocation, so
// a superblock handed out while decommitted would fault the vm guard.
func TestScavengerUnderProdConsChurn(t *testing.T) {
	const workers = 4
	a := MustNew(Config{Procs: workers, Scavenge: ScavengeConfig{
		Enabled:        true,
		HighWaterBytes: 2 * 8192,
		LowWaterBytes:  8192,
		ColdAge:        time.Nanosecond,
		Interval:       time.Millisecond,
		BytesPerSec:    1 << 30,
		BurstBytes:     1 << 30,
	}})
	if err := a.StartAuditor(time.Millisecond); err != nil {
		t.Fatal(err)
	}

	rounds := 30
	if testing.Short() {
		rounds = 5
	}
	var wg sync.WaitGroup
	ch := make(chan Ptr, 1024)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			th := a.NewThread()
			for r := 0; r < rounds; r++ {
				// Produce: allocate and scribble.
				for i := 0; i < 200; i++ {
					p := th.Malloc(64 + (i % 4 * 64))
					buf := th.Bytes(p, 64)
					for j := range buf {
						buf[j] = byte(w)
					}
					ch <- p
				}
				// Consume: verify a batch freed cross-thread.
				for i := 0; i < 200; i++ {
					p := <-ch
					_ = th.Bytes(p, 64)
					th.Free(p)
				}
			}
		}(w)
	}
	wg.Wait()
	close(ch)
	for p := range ch {
		a.NewThread().Free(p)
	}

	st := a.StopScavenger()
	if _, failures, err := a.StopAuditor(); failures != 0 || err != nil {
		t.Fatalf("%d audit failures under scavenging churn: %v", failures, err)
	}
	t.Logf("scavenger under churn: %+v", st)
	if err := a.CheckIntegrity(); err != nil {
		t.Fatal(err)
	}
}
