package core

import (
	"math"

	"hoardgo/internal/env"
)

// This file is the core side of the scavenger (internal/scavenge holds the
// policy engine): entry points that decommit empty superblocks parked on the
// global heap, in place, oldest-first. The superblocks stay owned by the
// global heap — its a is unchanged, the emptiness machinery never notices —
// and TakeSuper recommits them transparently when demand returns. Compare
// the GlobalEmptyLimit immediate-free path in freeLocked: that one releases
// the address space too and is gated by a count, while scavenging keeps the
// reservation (so the blowup bound's accounting of superblocks held is
// untouched) and is paced by internal/scavenge's policy.

// SetClock installs the time source used to stamp superblocks parked on the
// global heap (the scavenger's cold-age input). The default is the wall
// clock; deterministic experiments install a virtual clock. Must be called
// before the allocator is shared between threads.
func (h *Hoard) SetClock(now func() int64) { h.clock = now }

// Now reads the allocator's scavenge clock.
func (h *Hoard) Now() int64 { return h.clock() }

// GlobalEmptyBytes returns the committed bytes sitting in completely empty
// superblocks on the global heap — the scavengable surplus. It takes the
// global heap's lock.
func (h *Hoard) GlobalEmptyBytes(e env.Env) int64 {
	g := h.heaps[0]
	env.LockWith(g.Lock, e, "scavenge")
	n := g.EmptyCommittedBytes(e)
	g.Lock.Unlock(e)
	return n
}

// TryGlobalEmptyBytes is GlobalEmptyBytes with TryLock: ok is false when the
// global heap was contended, so a background scavenger can back off instead
// of queueing behind allocation traffic.
func (h *Hoard) TryGlobalEmptyBytes(e env.Env) (int64, bool) {
	g := h.heaps[0]
	if !env.TryLockWith(g.Lock, e, "scavenge") {
		return 0, false
	}
	n := g.EmptyCommittedBytes(e)
	g.Lock.Unlock(e)
	return n, true
}

// ScavengeGlobal decommits up to maxBytes of empty global-heap superblocks
// whose park stamp is at least coldAgeNS old (coldAgeNS <= 0 disables the
// age filter), oldest first, and returns the bytes released. It blocks on
// the global heap's lock; background callers should prefer
// TryScavengeGlobal.
func (h *Hoard) ScavengeGlobal(e env.Env, maxBytes int64, coldAgeNS int64) int64 {
	g := h.heaps[0]
	env.LockWith(g.Lock, e, "scavenge")
	n := h.scavengeLocked(e, maxBytes, coldAgeNS)
	g.Lock.Unlock(e)
	return n
}

// TryScavengeGlobal is ScavengeGlobal with TryLock: ok is false (and nothing
// is released) when the global heap was contended.
func (h *Hoard) TryScavengeGlobal(e env.Env, maxBytes int64, coldAgeNS int64) (int64, bool) {
	g := h.heaps[0]
	if !env.TryLockWith(g.Lock, e, "scavenge") {
		return 0, false
	}
	n := h.scavengeLocked(e, maxBytes, coldAgeNS)
	g.Lock.Unlock(e)
	return n, true
}

// scavengeLocked runs one scavenge pass with the global lock held.
func (h *Hoard) scavengeLocked(e env.Env, maxBytes int64, coldAgeNS int64) int64 {
	coldBefore := int64(math.MaxInt64)
	if coldAgeNS > 0 {
		coldBefore = h.clock() - coldAgeNS
	}
	released, _ := h.heaps[0].ScavengeEmpties(e, maxBytes, coldBefore)
	if released > 0 {
		h.scavPasses.Add(1)
		h.scavBytes.Add(released)
	}
	return released
}

// ReleaseMemory forcibly scavenges everything scavengable: every empty
// superblock parked on the global heap is decommitted regardless of age or
// pacing. Returns the bytes released. This is the public API's forced
// scavenge.
func (h *Hoard) ReleaseMemory(e env.Env) int64 {
	return h.ScavengeGlobal(e, math.MaxInt64, 0)
}

// ScavengeQuiescent is ReleaseMemory without the lock, for an allocator that
// has gone quiet — e.g. after a simulator run, whose locks cannot be taken
// from outside the simulation (cf. SampleHeapsQuiescent).
func (h *Hoard) ScavengeQuiescent() int64 {
	return h.scavengeLocked(&env.RealEnv{}, math.MaxInt64, 0)
}
