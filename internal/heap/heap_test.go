package heap

import (
	"math/rand"
	"testing"

	"hoardgo/internal/alloc"
	"hoardgo/internal/env"
	"hoardgo/internal/superblock"
	"hoardgo/internal/vm"
	"hoardgo/internal/vm/vmtest"
)

var (
	e  = &env.RealEnv{}
	lf = env.RealLockFactory{}
)

const (
	testS       = 8192
	testClasses = 8
)

// blockSizeFor gives each test class a distinct power-of-two block size.
func blockSizeFor(class int) int { return 8 << class }

func newHeap(id int) *Heap {
	return New(id, testS, 0.25, 0, testClasses, lf.NewLock("h"))
}

func newSuper(space vm.Backend, class int) *superblock.Superblock {
	return superblock.New(space, testS, class, blockSizeFor(class))
}

func TestInsertRemoveAccounting(t *testing.T) {
	space := vmtest.NewSized(t, testS)
	h := newHeap(1)
	sb := newSuper(space, 2)
	p, _ := sb.AllocBlock(e) // pre-populate before insert
	h.Insert(sb)
	if h.A() != testS || h.U() != int64(sb.BlockSize()) || h.Superblocks() != 1 {
		t.Fatalf("after insert: u=%d a=%d n=%d", h.U(), h.A(), h.Superblocks())
	}
	if sb.OwnerID() != 1 {
		t.Fatalf("owner = %d, want 1", sb.OwnerID())
	}
	if err := h.CheckIntegrity(); err != nil {
		t.Fatal(err)
	}
	h.FreeBlock(e, sb, p)
	h.Remove(sb)
	if h.A() != 0 || h.U() != 0 || h.Superblocks() != 0 {
		t.Fatalf("after remove: u=%d a=%d n=%d", h.U(), h.A(), h.Superblocks())
	}
}

func TestAllocPrefersFullestGroup(t *testing.T) {
	space := vmtest.NewSized(t, testS)
	h := newHeap(1)
	// Class 2, 8KB/32B = 256 blocks. Make one nearly full, one nearly empty.
	full := newSuper(space, 2)
	for i := 0; i < 200; i++ {
		full.AllocBlock(e)
	}
	empty := newSuper(space, 2)
	empty.AllocBlock(e)
	h.Insert(full)
	h.Insert(empty)
	p, ok := h.AllocBlock(e, 2)
	if !ok {
		t.Fatal("AllocBlock failed")
	}
	if !full.Contains(p) {
		t.Fatalf("allocated from emptier superblock; want fullest-first")
	}
	if err := h.CheckIntegrity(); err != nil {
		t.Fatal(err)
	}
}

func TestAllocSkipsFullSuperblocks(t *testing.T) {
	space := vmtest.NewSized(t, testS)
	h := newHeap(1)
	sb := newSuper(space, 0)
	for !sb.Full() {
		sb.AllocBlock(e)
	}
	h.Insert(sb)
	if _, ok := h.AllocBlock(e, 0); ok {
		t.Fatal("allocated from a heap with only full superblocks")
	}
	if err := h.CheckIntegrity(); err != nil {
		t.Fatal(err)
	}
}

func TestRegroupOnFreeAndAlloc(t *testing.T) {
	space := vmtest.NewSized(t, testS)
	h := newHeap(1)
	sb := newSuper(space, 2)
	h.Insert(sb)
	var ps []alloc.Ptr
	for !sb.Full() {
		p, ok := h.AllocBlock(e, 2)
		if !ok {
			t.Fatal("alloc failed before full")
		}
		ps = append(ps, p)
	}
	if sb.Group != fullGroup {
		t.Fatalf("full superblock in group %d", sb.Group)
	}
	for _, p := range ps {
		h.FreeBlock(e, sb, p)
	}
	if sb.Group != 0 {
		t.Fatalf("empty superblock in group %d", sb.Group)
	}
	if h.U() != 0 {
		t.Fatalf("u = %d after freeing all", h.U())
	}
	if err := h.CheckIntegrity(); err != nil {
		t.Fatal(err)
	}
}

func TestInvariant(t *testing.T) {
	space := vmtest.NewSized(t, testS)
	h := newHeap(1)
	// One completely empty superblock: u=0, a=S. With K=0 and f=1/4 the
	// invariant u >= a-K*S fails and u >= (1-f)*a fails => violated.
	sb := newSuper(space, 2)
	h.Insert(sb)
	if !h.InvariantViolated() {
		t.Fatal("invariant should be violated with an empty superblock and K=0")
	}
	// Fill it past (1-f): violation clears.
	for sb.Fullness() < 0.80 {
		h.AllocBlock(e, 2)
	}
	if h.InvariantViolated() {
		t.Fatalf("invariant violated at fullness %v", sb.Fullness())
	}
}

func TestInvariantRespectsK(t *testing.T) {
	space := vmtest.NewSized(t, testS)
	h := New(1, testS, 0.25, 2, testClasses, lf.NewLock("h"))
	h.Insert(newSuper(space, 2))
	h.Insert(newSuper(space, 2))
	// u=0, a=2S, K=2: u >= a - K*S holds (0 >= 0), so no violation.
	if h.InvariantViolated() {
		t.Fatal("invariant should hold within the K-superblock slack")
	}
	h.Insert(newSuper(space, 2))
	if !h.InvariantViolated() {
		t.Fatal("third empty superblock should violate the invariant")
	}
}

func TestFindEvictablePrefersEmptiest(t *testing.T) {
	space := vmtest.NewSized(t, testS)
	h := newHeap(1)
	nearlyFull := newSuper(space, 2)
	for nearlyFull.Fullness() < 0.9 {
		nearlyFull.AllocBlock(e)
	}
	half := newSuper(space, 2)
	for half.Fullness() < 0.5 {
		half.AllocBlock(e)
	}
	empty := newSuper(space, 3)
	h.Insert(nearlyFull)
	h.Insert(half)
	h.Insert(empty)
	got := h.FindEvictable(e)
	if got != empty {
		t.Fatalf("FindEvictable returned fullness %v, want the empty superblock", got.Fullness())
	}
}

func TestFindEvictableNone(t *testing.T) {
	space := vmtest.NewSized(t, testS)
	h := newHeap(1)
	sb := newSuper(space, 2)
	for !sb.Full() {
		sb.AllocBlock(e)
	}
	h.Insert(sb)
	if got := h.FindEvictable(e); got != nil {
		t.Fatalf("FindEvictable = %v on all-full heap, want nil", got)
	}
}

func TestInvariantViolationImpliesEvictable(t *testing.T) {
	// Property from the paper's proof: whenever the invariant is violated,
	// some superblock is at least f empty. Fuzz random states.
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 200; trial++ {
		space := vmtest.NewSized(t, testS)
		h := newHeap(1)
		n := 1 + rng.Intn(6)
		for i := 0; i < n; i++ {
			class := rng.Intn(testClasses)
			sb := newSuper(space, class)
			fill := rng.Intn(sb.NBlocks() + 1)
			for j := 0; j < fill; j++ {
				sb.AllocBlock(e)
			}
			h.Insert(sb)
		}
		if h.InvariantViolated() && h.FindEvictable(e) == nil {
			t.Fatalf("trial %d: invariant violated but nothing evictable (u=%d a=%d)", trial, h.U(), h.A())
		}
	}
}

// The fuzz above uses power-of-two block sizes, which divide S exactly; with
// a non-dividing size the implication breaks in byte terms — a superblock
// (1-f) full by blocks can sit under (1-f)·S in bytes — and the usable-bytes
// form of the invariant is what distinguishes that benign waste from a
// missed eviction.
func TestInvariantViolatedUsableDiscountsWaste(t *testing.T) {
	space := vmtest.NewSized(t, testS)
	h := newHeap(1)
	// 1416 does not divide 8192: 5 blocks, 1112 bytes of tail waste.
	sb := superblock.New(space, testS, 2, 1416)
	var last alloc.Ptr
	for i := 0; i < 4; i++ {
		last, _ = sb.AllocBlock(e)
	}
	h.Insert(sb)
	if got := h.CapacityWaste(); got != 1112 {
		t.Fatalf("CapacityWaste = %d, want 1112", got)
	}
	// 4/5 blocks used: 5664 of 8192 bytes = 69% < (1-f) = 75%, violated —
	// but only 20% of blocks are free, so there is no evictable victim,
	// and against the 7080 usable bytes the heap is 80% full: benign.
	if !h.InvariantViolated() {
		t.Fatal("byte-form invariant should be violated")
	}
	if h.FindEvictable(e) != nil {
		t.Fatal("no superblock should be evictable at 80% block fullness")
	}
	if h.AllFull() {
		t.Fatal("heap is not AllFull")
	}
	if h.InvariantViolatedUsable() {
		t.Fatal("usable-bytes invariant should hold: the shortfall is all waste")
	}
	// One more free crosses the real line: 3/5 blocks = 60% of usable
	// bytes, below 75% — now both forms are violated and a victim exists.
	h.FreeBlock(e, sb, last)
	if !h.InvariantViolatedUsable() {
		t.Fatal("usable-bytes invariant should be violated at 60% of usable")
	}
	if h.FindEvictable(e) != sb {
		t.Fatal("the two-fifths-free superblock should be evictable")
	}
}

func TestTakeSuperSameClassFirst(t *testing.T) {
	space := vmtest.NewSized(t, testS)
	g := newHeap(0)
	other := newSuper(space, 1) // empty, other class
	same := newSuper(space, 2)
	same.AllocBlock(e) // partially used, same class
	g.Insert(other)
	g.Insert(same)
	sb := g.TakeSuper(e, 2, blockSizeFor(2))
	if sb != same {
		t.Fatal("TakeSuper did not prefer same-class superblock")
	}
	// Next request for class 2 recycles the empty class-1 superblock.
	sb = g.TakeSuper(e, 2, blockSizeFor(2))
	if sb != other {
		t.Fatal("TakeSuper did not recycle empty superblock")
	}
	if sb.Class() != 2 || sb.BlockSize() != blockSizeFor(2) {
		t.Fatalf("recycled superblock class=%d bs=%d", sb.Class(), sb.BlockSize())
	}
	if g.TakeSuper(e, 2, blockSizeFor(2)) != nil {
		t.Fatal("TakeSuper on empty heap returned superblock")
	}
	if g.Superblocks() != 0 {
		t.Fatalf("global heap still holds %d superblocks", g.Superblocks())
	}
}

func TestTakeSuperDoesNotStealPartialOtherClass(t *testing.T) {
	space := vmtest.NewSized(t, testS)
	g := newHeap(0)
	partial := newSuper(space, 1)
	partial.AllocBlock(e)
	g.Insert(partial)
	if sb := g.TakeSuper(e, 2, blockSizeFor(2)); sb != nil {
		t.Fatalf("TakeSuper recycled a non-empty superblock of another class")
	}
}

// TestRandomizedHeapModel cross-checks the heap against a naive model over
// long random operation sequences.
func TestRandomizedHeapModel(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	space := vmtest.NewSized(t, testS)
	h := newHeap(1)
	live := make(map[alloc.Ptr]int) // ptr -> class
	for op := 0; op < 5000; op++ {
		switch {
		case rng.Intn(10) == 0: // new superblock
			h.Insert(newSuper(space, rng.Intn(testClasses)))
		case rng.Intn(2) == 0: // alloc
			class := rng.Intn(testClasses)
			if p, ok := h.AllocBlock(e, class); ok {
				if _, dup := live[p]; dup {
					t.Fatalf("double hand-out of %#x", uint64(p))
				}
				live[p] = class
			}
		default: // free
			for p := range live {
				sb, ok := superblock.FromPtr(space, p)
				if !ok {
					t.Fatalf("lost superblock for %#x", uint64(p))
				}
				h.FreeBlock(e, sb, p)
				delete(live, p)
				break
			}
		}
	}
	if err := h.CheckIntegrity(); err != nil {
		t.Fatal(err)
	}
	var want int64
	for p := range live {
		sb, _ := superblock.FromPtr(space, p)
		want += int64(sb.BlockSize())
	}
	if h.U() != want {
		t.Fatalf("u = %d, model says %d", h.U(), want)
	}
}

func TestBadFreePanics(t *testing.T) {
	space := vmtest.NewSized(t, testS)
	h := newHeap(1)
	sb := newSuper(space, 2)
	sb.SetOwnerID(9) // owned elsewhere
	p, _ := sb.AllocBlock(e)
	defer func() {
		if recover() == nil {
			t.Fatal("FreeBlock on foreign-owned superblock did not panic")
		}
	}()
	h.FreeBlock(e, sb, p)
}

// TestFindEvictablePrefersEmptyOverGroupHead pins a subtle policy bug:
// regrouping pushes the currently-draining superblock to group 0's front,
// but eviction must still prefer a completely empty superblock further
// down the list (a live eviction turns that superblock's future frees into
// serialized global-heap traffic).
func TestFindEvictablePrefersEmptyOverGroupHead(t *testing.T) {
	space := vmtest.NewSized(t, testS)
	h := newHeap(1)
	empty := newSuper(space, 2)
	h.Insert(empty)
	// Insert a draining superblock afterwards so it becomes group 0's head.
	draining := newSuper(space, 2)
	for draining.Fullness() < 0.15 {
		draining.AllocBlock(e)
	}
	h.Insert(draining)
	if h.classes[2].groups[0].head != draining {
		t.Fatal("test setup: draining superblock is not the group head")
	}
	if got := h.FindEvictable(e); got != empty {
		t.Fatalf("FindEvictable picked fullness %.2f, want the empty superblock", got.Fullness())
	}
}

// TestTakeSuperPrefersEmptySameClass pins the companion policy on the
// global heap's side: handing out a partially-live superblock tangles two
// heaps together, so empties go first even when a fuller superblock of the
// class exists.
func TestTakeSuperPrefersEmptySameClass(t *testing.T) {
	space := vmtest.NewSized(t, testS)
	g := newHeap(0)
	partial := newSuper(space, 2)
	for partial.Fullness() < 0.10 {
		partial.AllocBlock(e)
	}
	empty := newSuper(space, 2)
	g.Insert(empty)
	g.Insert(partial) // group 0 head
	if got := g.TakeSuper(e, 2, blockSizeFor(2)); got != empty {
		t.Fatalf("TakeSuper picked fullness %.2f, want the empty superblock", got.Fullness())
	}
}

// --- Remote-free drains ---

func TestDrainAllRebucketsAndAdjustsU(t *testing.T) {
	space := vmtest.NewSized(t, testS)
	h := newHeap(1)
	sb := newSuper(space, 2) // 256 blocks of 32 B
	var ps []alloc.Ptr
	for i := 0; i < 256; i++ {
		p, _ := sb.AllocBlock(e)
		ps = append(ps, p)
	}
	h.Insert(sb)
	if sb.Group != NumGroups {
		t.Fatalf("full superblock in group %d", sb.Group)
	}
	// A non-owner pushes most blocks remotely: u must not move yet.
	for _, p := range ps[:200] {
		sb.RemoteFree(e, p)
	}
	h.NoteRemotePush(int64(200 * sb.BlockSize()))
	if h.U() != int64(256*sb.BlockSize()) {
		t.Fatalf("u moved before drain: %d", h.U())
	}
	if !h.InvariantViolatedDiscounted() {
		t.Fatal("discounted invariant check missed the pending frees")
	}
	if n := h.DrainAll(e); n != 200 {
		t.Fatalf("DrainAll = %d, want 200", n)
	}
	if h.U() != int64(56*sb.BlockSize()) {
		t.Fatalf("u after drain = %d, want %d", h.U(), 56*sb.BlockSize())
	}
	if want := groupOf(sb); sb.Group != want || sb.Group == NumGroups {
		t.Fatalf("group after drain = %d, want %d", sb.Group, want)
	}
	if h.PendingHintBytes() != 0 {
		t.Fatalf("pending hint not cleared: %d", h.PendingHintBytes())
	}
	if err := h.CheckIntegrity(); err != nil {
		t.Fatal(err)
	}
}

func TestFreeBlockDrainsSameSuperblock(t *testing.T) {
	space := vmtest.NewSized(t, testS)
	h := newHeap(1)
	sb := newSuper(space, 1)
	a, _ := sb.AllocBlock(e)
	b, _ := sb.AllocBlock(e)
	c, _ := sb.AllocBlock(e)
	h.Insert(sb)
	sb.RemoteFree(e, a)
	sb.RemoteFree(e, b)
	if drained := h.FreeBlock(e, sb, c); drained != 2 {
		t.Fatalf("FreeBlock drained %d, want 2", drained)
	}
	if h.U() != 0 || sb.InUse() != 0 {
		t.Fatalf("u=%d inUse=%d after free+drain", h.U(), sb.InUse())
	}
	if err := h.CheckIntegrity(); err != nil {
		t.Fatal(err)
	}
}

func TestInsertFoldsPendingIntoHint(t *testing.T) {
	space := vmtest.NewSized(t, testS)
	src := newHeap(1)
	dst := newHeap(2)
	sb := newSuper(space, 0)
	p, _ := sb.AllocBlock(e)
	src.Insert(sb)
	sb.RemoteFree(e, p) // in flight while the superblock migrates
	src.Remove(sb)
	dst.Insert(sb)
	if dst.PendingHintBytes() != int64(sb.BlockSize()) {
		t.Fatalf("dst hint = %d, want %d", dst.PendingHintBytes(), sb.BlockSize())
	}
	if n := dst.DrainAll(e); n != 1 {
		t.Fatalf("DrainAll on new owner = %d, want 1", n)
	}
	if err := dst.CheckIntegrity(); err != nil {
		t.Fatal(err)
	}
}

func TestTakeSuperDrainsFirst(t *testing.T) {
	space := vmtest.NewSized(t, testS)
	g := newHeap(0)
	sb := newSuper(space, 3)
	var ps []alloc.Ptr
	for !sb.Full() {
		p, _ := sb.AllocBlock(e)
		ps = append(ps, p)
	}
	g.Insert(sb)
	// All blocks come back remotely: without a drain the heap looks full.
	for _, p := range ps {
		sb.RemoteFree(e, p)
	}
	g.NoteRemotePush(int64(len(ps) * sb.BlockSize()))
	// A different class's TakeSuper must find (and Reinit) the now-empty
	// superblock.
	got := g.TakeSuper(e, 1, blockSizeFor(1))
	if got != sb {
		t.Fatalf("TakeSuper = %v, want the drained superblock", got)
	}
	if got.Class() != 1 {
		t.Fatalf("class after Reinit = %d", got.Class())
	}
}

// --- Pending-hint conservation across superblock migration ---

// TestRemoveDropsPendingHint pins the eviction half of hint conservation:
// when a superblock with pending remote frees leaves a heap, the old owner's
// hint must shed exactly that superblock's share — before the fix Remove
// left it behind, permanently inflating the hint and triggering pointless
// drain sweeps on every subsequent operation.
func TestRemoveDropsPendingHint(t *testing.T) {
	space := vmtest.NewSized(t, testS)
	src := newHeap(1)
	dst := newHeap(2)
	sb := newSuper(space, 0)
	other := newSuper(space, 0)
	bs := int64(sb.BlockSize())
	take := func(s *superblock.Superblock, n int) []alloc.Ptr {
		ps := make([]alloc.Ptr, n)
		for i := range ps {
			ps[i], _ = s.AllocBlock(e)
		}
		return ps
	}
	sbPtrs, otherPtrs := take(sb, 3), take(other, 2)
	src.Insert(sb)
	src.Insert(other)
	for _, p := range sbPtrs {
		sb.RemoteFree(e, p)
	}
	for _, p := range otherPtrs {
		other.RemoteFree(e, p)
	}
	src.NoteRemotePush(5 * bs)
	if got := src.PendingHintBytes(); got != 5*bs {
		t.Fatalf("src hint = %d, want %d", got, 5*bs)
	}
	src.Remove(sb)
	if got := src.PendingHintBytes(); got != 2*bs {
		t.Fatalf("src hint after Remove = %d, want only other's %d", got, 2*bs)
	}
	dst.Insert(sb)
	// Conservation: the migrated superblock's 3 blocks moved with it.
	if got := dst.PendingHintBytes(); got != 3*bs {
		t.Fatalf("dst hint = %d, want %d", got, 3*bs)
	}
	if total := src.PendingHintBytes() + dst.PendingHintBytes(); total != 5*bs {
		t.Fatalf("hint not conserved across migration: %d, want %d", total, 5*bs)
	}
	if n := dst.DrainAll(e); n != 3 {
		t.Fatalf("DrainAll on dst = %d, want 3", n)
	}
	if n := src.DrainAll(e); n != 2 {
		t.Fatalf("DrainAll on src = %d, want 2", n)
	}
	if src.PendingHintBytes() != 0 || dst.PendingHintBytes() != 0 {
		t.Fatalf("hints after drains: src=%d dst=%d", src.PendingHintBytes(), dst.PendingHintBytes())
	}
	if err := src.CheckIntegrity(); err != nil {
		t.Fatal(err)
	}
	if err := dst.CheckIntegrity(); err != nil {
		t.Fatal(err)
	}
}

// TestRemoveClampsPendingHint: the hint is racy — a pusher may have CASed a
// block onto the remote stack before its NoteRemotePush lands. Remove must
// clamp at zero rather than drive the hint negative.
func TestRemoveClampsPendingHint(t *testing.T) {
	space := vmtest.NewSized(t, testS)
	h := newHeap(1)
	sb := newSuper(space, 0)
	p, _ := sb.AllocBlock(e)
	h.Insert(sb)
	sb.RemoteFree(e, p) // pushed, but NoteRemotePush hasn't landed yet
	h.Remove(sb)
	if got := h.PendingHintBytes(); got != 0 {
		t.Fatalf("hint = %d after Remove, want clamped 0", got)
	}
}
