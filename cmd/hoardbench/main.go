// Command hoardbench regenerates the paper's evaluation: every figure
// (F1-F7), every table (T1-T4), and the ablations (A1-A5), on the
// deterministic simulated multiprocessor.
//
// Usage:
//
//	hoardbench [-exp all|<id>[,<id>...]] [-scale quick|full] [-procs 1,2,4,...] [-allocs hoard,serial,...] [-v]
//	hoardbench -metrics timeline.json     # instrumented churn: occupancy/lock timeline + audit record
//	hoardbench -lockfree bench.json       # A11: heap-lock acquisitions fast vs locked arm + sim throughput sweep
//
// Experiment ids: threadtest shbench larson active-false passive-false bem
// barneshut (figures); catalog frag uniproc blowup footprint (tables);
// ablate-f ablate-s ablate-k ablate-heaps coherence cost-sensitivity
// (ablations).
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"hoardgo/internal/experiments"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "hoardbench:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		expFlag   = flag.String("exp", "all", "experiment id(s), comma separated, or 'all'")
		scaleFlag = flag.String("scale", "quick", "workload scale: quick or full")
		procsFlag = flag.String("procs", "", "processor counts to sweep, e.g. 1,2,4,8,14")
		allocFlag = flag.String("allocs", "", "allocators to compare, e.g. hoard,serial")
		verbose   = flag.Bool("v", false, "print progress to stderr")
		format    = flag.String("format", "text", "output format: text, csv, or md")
		artifact  = flag.String("artifact", "", "write the benchmark artifact (batch lock counts + key sim runs) to this JSON file and exit")
		metricsTo = flag.String("metrics", "", "run the instrumented churn scenario and write the metrics timeline (occupancy samples, lock counters, audit record, Prometheus scrape) to this JSON file and exit")
		footTo    = flag.String("footprint", "", "run the scavenger footprint grid (workloads x release modes) and write the artifact (steady-state ratios + batch-lock guard) to this JSON file and exit")
		lockfree  = flag.String("lockfree", "", "run the zero-lock steady-state comparison (heap-lock acquisitions per op, fast vs locked arm, plus the simulator throughput sweep) and write the artifact to this JSON file and exit; at quick scale the smoke thresholds are enforced")
		arenaTo   = flag.String("arena", "", "run the real-memory arena comparison (pointer resolution cost, wall-clock malloc/free sweep, RSS under release policies) and write the artifact to this JSON file and exit; requires the arena backend (Linux amd64/arm64); the smoke thresholds are enforced")
		tuneTo    = flag.String("tune", "", "run the self-tuning controller ablation (controller off vs on vs oracle-static, on the workload set and the serving phase schedule) and write the artifact to this JSON file and exit; the convergence thresholds are enforced")
	)
	flag.Parse()

	var scale experiments.Scale
	switch *scaleFlag {
	case "quick":
		scale = experiments.Quick
	case "full":
		scale = experiments.Full
	default:
		return fmt.Errorf("unknown -scale %q (want quick or full)", *scaleFlag)
	}
	opts := experiments.Defaults(scale)
	if *procsFlag != "" {
		procs, err := parseInts(*procsFlag)
		if err != nil {
			return fmt.Errorf("-procs: %w", err)
		}
		opts.Procs = procs
	}
	if *allocFlag != "" {
		opts.Allocs = strings.Split(*allocFlag, ",")
	}

	var progress func(string, int)
	if *verbose {
		progress = func(what string, p int) {
			fmt.Fprintf(os.Stderr, "  running %s P=%d...\n", what, p)
		}
	}

	of, err := experiments.ParseFormat(*format)
	if err != nil {
		return err
	}
	if *artifact != "" {
		return writeArtifact(*artifact, opts, *scaleFlag, progress)
	}
	if *metricsTo != "" {
		return writeMetricsTimeline(*metricsTo, scale)
	}
	if *footTo != "" {
		return writeFootprint(*footTo, opts, *scaleFlag, progress)
	}
	if *lockfree != "" {
		return writeLockFree(*lockfree, opts, *scaleFlag, progress)
	}
	if *arenaTo != "" {
		return writeArena(*arenaTo, opts, *scaleFlag, progress)
	}
	if *tuneTo != "" {
		return writeTune(*tuneTo, opts, *scaleFlag, progress)
	}
	ids := strings.Split(*expFlag, ",")
	if *expFlag == "all" {
		ids = allIDs()
	}
	start := time.Now()
	for _, id := range ids {
		if err := runOne(strings.TrimSpace(id), opts, of, progress); err != nil {
			return err
		}
	}
	if *verbose {
		fmt.Fprintf(os.Stderr, "total %v\n", time.Since(start).Round(time.Millisecond))
	}
	return nil
}

func allIDs() []string {
	ids := []string{"catalog"}
	for _, f := range experiments.Figures() {
		ids = append(ids, f.ID)
	}
	return append(ids,
		"frag", "uniproc", "blowup", "blowup-shift", "footprint", "lockfree", "arena",
		"ablate-f", "ablate-s", "ablate-k", "ablate-heaps",
		"ablate-release", "ablate-batch", "tcache", "coherence", "contention", "cost-sensitivity")
}

func runOne(id string, opts experiments.Options, of experiments.OutputFormat, progress func(string, int)) error {
	out := os.Stdout
	if def, ok := experiments.FigureByID(id); ok {
		fig := experiments.RunFigure(def, opts, progress)
		fig.Render(out, of)
		return nil
	}
	tables := map[string]func(experiments.Options, func(string, int)) experiments.Table{
		"frag":             experiments.Fragmentation,
		"uniproc":          experiments.Uniproc,
		"blowup":           experiments.Blowup,
		"blowup-shift":     experiments.BlowupShift,
		"footprint":        experiments.Footprint,
		"lockfree":         experiments.LockFree,
		"arena":            experiments.Arena,
		"ablate-f":         experiments.AblateF,
		"ablate-s":         experiments.AblateS,
		"ablate-k":         experiments.AblateK,
		"ablate-heaps":     experiments.AblateHeaps,
		"tcache":           experiments.AblateTCache,
		"ablate-batch":     experiments.AblateBatch,
		"ablate-release":   experiments.AblateRelease,
		"contention":       experiments.Contention,
		"coherence":        experiments.Coherence,
		"cost-sensitivity": experiments.CostSensitivity,
	}
	switch {
	case id == "catalog":
		experiments.Catalog(out)
	case tables[id] != nil:
		tables[id](opts, progress).Render(out, of)
	default:
		return fmt.Errorf("unknown experiment %q (try: %s)", id, strings.Join(allIDs(), " "))
	}
	return nil
}

func parseInts(s string) ([]int, error) {
	var out []int
	for _, f := range strings.Split(s, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil {
			return nil, err
		}
		if n < 1 || n > 64 {
			return nil, fmt.Errorf("processor count %d out of [1,64]", n)
		}
		out = append(out, n)
	}
	return out, nil
}
