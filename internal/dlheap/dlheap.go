// Package dlheap implements a Doug Lea-style serial allocator: binned free
// lists over boundary-tagged chunks with immediate coalescing, all under
// one lock.
//
// This is the design of dlmalloc — the de facto serial malloc of the
// 1990s and the allocator ptmalloc wrapped with arenas — and it rounds out
// the taxonomy with a baseline whose *policy* differs from the superblock
// allocators: memory is a single address-ordered chunk sequence, frees
// coalesce with both neighbors immediately, and allocation splits the
// first sufficiently large chunk from a geometric size bin. Compared to
// Hoard it shares the serial allocator's fate on multiprocessors (one
// lock, line-adjacent blocks to different threads) but exhibits classical
// low fragmentation on size-mixed workloads.
//
// Chunk layout in simulated memory (all fields little-endian uint64):
//
//	a+0:  size | inUse flag (bit 0); size includes the 16-byte header
//	a+8:  size of the previous chunk in the segment (0 for the first)
//	a+16: user data (in use) / fd,bk free-list links (free)
//
// Free chunks need >= 16 bytes of body for the links, so the minimum chunk
// is 32 bytes. Segments are 256 KiB spans from the simulated OS; requests
// too large to bin get dedicated spans, like every allocator here.
package dlheap

import (
	"encoding/binary"
	"fmt"

	"hoardgo/internal/alloc"
	"hoardgo/internal/env"
	"hoardgo/internal/sizeclass"
	"hoardgo/internal/vm"
)

const (
	headerSize = 16
	minChunk   = 32
	// SegmentSize is the unit requested from the simulated OS.
	SegmentSize = 256 * 1024
	// largeThreshold: requests whose chunk would exceed this go straight
	// to the OS (dlmalloc's mmap threshold, scaled to the segment size).
	largeThreshold = 32 * 1024

	inUseBit = 1
)

// segTag marks segments in the address space.
type segTag struct{}

// Allocator is the boundary-tag coalescing allocator.
type Allocator struct {
	space   vm.Backend
	classes *sizeclass.Table
	lock    env.Lock
	// bins[b] heads a doubly-linked list of free chunks whose size is in
	// [class(b), class(b+1)).
	bins []alloc.Ptr
	segs []*vm.Span // all segments, for integrity walks
	acct alloc.Accounting
}

// New creates a dlheap allocator.
func New(lf env.LockFactory) *Allocator {
	a := &Allocator{
		space:   vm.New(),
		classes: sizeclass.New(sizeclass.DefaultBase, minChunk, SegmentSize),
		lock:    lf.NewLock("dlheap"),
	}
	a.bins = make([]alloc.Ptr, a.classes.NumClasses())
	return a
}

// Name implements alloc.Allocator.
func (a *Allocator) Name() string { return "dlheap" }

// Space implements alloc.Allocator.
func (a *Allocator) Space() vm.Backend { return a.space }

// NewThread implements alloc.Allocator (no per-thread state: serial heap).
func (a *Allocator) NewThread(e env.Env) *alloc.Thread {
	return &alloc.Thread{ID: e.ThreadID(), Env: e}
}

// --- chunk field access (through simulated memory) ---

func (a *Allocator) word(addr uint64) uint64 {
	return binary.LittleEndian.Uint64(a.space.Bytes(addr, 8))
}

func (a *Allocator) setWord(addr, v uint64) {
	binary.LittleEndian.PutUint64(a.space.Bytes(addr, 8), v)
}

func (a *Allocator) chunkSize(c uint64) uint64   { return a.word(c) &^ inUseBit }
func (a *Allocator) chunkInUse(c uint64) bool    { return a.word(c)&inUseBit != 0 }
func (a *Allocator) prevSize(c uint64) uint64    { return a.word(c + 8) }
func (a *Allocator) setPrev(c, size uint64)      { a.setWord(c+8, size) }
func (a *Allocator) fd(c uint64) alloc.Ptr       { return alloc.Ptr(a.word(c + 16)) }
func (a *Allocator) bk(c uint64) alloc.Ptr       { return alloc.Ptr(a.word(c + 24)) }
func (a *Allocator) setFd(c uint64, p alloc.Ptr) { a.setWord(c+16, uint64(p)) }
func (a *Allocator) setBk(c uint64, p alloc.Ptr) { a.setWord(c+24, uint64(p)) }

func (a *Allocator) setHeader(c, size uint64, used bool) {
	v := size
	if used {
		v |= inUseBit
	}
	a.setWord(c, v)
}

// seg returns the chunk's segment bounds.
func (a *Allocator) seg(c uint64) (base, end uint64) {
	sp := a.space.Lookup(c)
	if sp == nil {
		panic(fmt.Sprintf("dlheap: chunk %#x outside any segment", c))
	}
	return sp.Base, sp.End()
}

// --- bins ---

// binFor returns the bin holding free chunks of the given size: the
// largest class whose size does not exceed it.
func (a *Allocator) binFor(size uint64) int {
	c, ok := a.classes.ClassFor(int(size))
	if !ok {
		return a.classes.NumClasses() - 1
	}
	if uint64(a.classes.Size(c)) > size {
		c--
	}
	return c
}

// pushBin inserts a free chunk at its bin's head.
func (a *Allocator) pushBin(e env.Env, c uint64) {
	b := a.binFor(a.chunkSize(c))
	head := a.bins[b]
	a.setFd(c, head)
	a.setBk(c, 0)
	if !head.IsNil() {
		a.setBk(uint64(head), alloc.Ptr(c))
	}
	a.bins[b] = alloc.Ptr(c)
	e.Touch(c, headerSize+16, true)
}

// unlinkBin removes a free chunk from its bin.
func (a *Allocator) unlinkBin(e env.Env, c uint64) {
	b := a.binFor(a.chunkSize(c))
	f, k := a.fd(c), a.bk(c)
	if k.IsNil() {
		a.bins[b] = f
	} else {
		a.setFd(uint64(k), f)
	}
	if !f.IsNil() {
		a.setBk(uint64(f), k)
	}
	e.Touch(c, headerSize+16, false)
}

// --- allocation ---

// chunkFor rounds a request to a chunk size.
func chunkFor(size int) uint64 {
	n := uint64(size) + headerSize
	if n < minChunk {
		n = minChunk
	}
	return (n + 7) &^ 7
}

// Malloc implements alloc.Allocator.
func (a *Allocator) Malloc(t *alloc.Thread, size int) alloc.Ptr {
	e := t.Env
	if size < 0 {
		panic(fmt.Sprintf("dlheap: Malloc(%d)", size))
	}
	need := chunkFor(size)
	if need > largeThreshold {
		return alloc.MallocLarge(a.space, &a.acct, e, size)
	}
	a.lock.Lock(e)
	c := a.takeChunk(e, need)
	a.lock.Unlock(e)
	e.Charge(env.OpMallocFast, 1)
	a.acct.OnMalloc(int(a.chunkSize(c)) - headerSize)
	return alloc.Ptr(c + headerSize)
}

// takeChunk finds, splits, and marks a chunk of at least need bytes.
// Called with the lock held.
//
// The search starts one bin below the exact class: bins hold chunks in
// [class(b), class(b+1)), so the bin *containing* need may still hold
// larger-than-need chunks. Every candidate is fit-checked regardless.
func (a *Allocator) takeChunk(e env.Env, need uint64) uint64 {
	start := a.binFor(need)
	for b := start; b < len(a.bins); b++ {
		e.Charge(env.OpListScan, 1)
		for p := a.bins[b]; !p.IsNil(); p = a.fd(uint64(p)) {
			c := uint64(p)
			if a.chunkSize(c) >= need {
				a.unlinkBin(e, c)
				a.split(e, c, need)
				return c
			}
			e.Charge(env.OpListScan, 1)
		}
	}
	// No fit: a fresh segment, formatted as one big free chunk.
	e.Charge(env.OpMallocSlow, 1)
	e.Charge(env.OpOSAlloc, 1)
	sp := a.space.Reserve(SegmentSize, vm.PageSize, &segTag{})
	a.segs = append(a.segs, sp)
	c := sp.Base
	a.setHeader(c, uint64(sp.Len), false)
	a.setPrev(c, 0)
	a.split(e, c, need)
	return c
}

// split carves need bytes off chunk c (marking them in use) and returns the
// remainder, if any, to the bins. Called with the lock held; c must be
// unlinked.
func (a *Allocator) split(e env.Env, c, need uint64) {
	total := a.chunkSize(c)
	rest := total - need
	if rest < minChunk {
		need, rest = total, 0
	}
	a.setHeader(c, need, true)
	e.Touch(c, headerSize, true)
	if rest > 0 {
		r := c + need
		a.setHeader(r, rest, false)
		a.setPrev(r, need)
		a.fixNextPrev(e, r, rest)
		a.pushBin(e, r)
	} else {
		a.fixNextPrev(e, c, need)
	}
}

// fixNextPrev updates the following chunk's prevSize after c changed size.
func (a *Allocator) fixNextPrev(e env.Env, c, size uint64) {
	_, end := a.seg(c)
	if n := c + size; n < end {
		a.setPrev(n, size)
		e.Touch(n, headerSize, true)
	}
}

// Free implements alloc.Allocator: coalesce with free neighbors, rebin.
func (a *Allocator) Free(t *alloc.Thread, p alloc.Ptr) {
	if p.IsNil() {
		return
	}
	e := t.Env
	sp := a.space.Lookup(uint64(p))
	if sp == nil {
		panic(fmt.Sprintf("dlheap: free of unknown pointer %#x", uint64(p)))
	}
	if _, isLarge := sp.Owner.(*alloc.LargeObj); isLarge {
		alloc.FreeLarge(a.space, &a.acct, e, "dlheap", sp, p)
		return
	}
	c := uint64(p) - headerSize
	if c < sp.Base || (uint64(p)-sp.Base-headerSize)%8 != 0 {
		panic(fmt.Sprintf("dlheap: free of misaligned pointer %#x", uint64(p)))
	}
	a.lock.Lock(e)
	if !a.chunkInUse(c) {
		panic(fmt.Sprintf("dlheap: double free of %#x", uint64(p)))
	}
	size := a.chunkSize(c)
	a.acct.OnFree(int(size) - headerSize)
	base, end := sp.Base, sp.End()

	// Coalesce with the next chunk.
	if n := c + size; n < end && !a.chunkInUse(n) {
		e.Touch(n, headerSize, false)
		a.unlinkBin(e, n)
		size += a.chunkSize(n)
	}
	// Coalesce with the previous chunk.
	if prev := a.prevSize(c); c > base && prev != 0 {
		pc := c - prev
		if !a.chunkInUse(pc) {
			e.Touch(pc, headerSize, false)
			a.unlinkBin(e, pc)
			c = pc
			size += prev
		}
	}
	a.setHeader(c, size, false)
	a.fixNextPrev(e, c, size)
	a.pushBin(e, c)
	a.lock.Unlock(e)
	e.Charge(env.OpFree, 1)
	e.Charge(env.OpListScan, 2) // boundary-tag inspection of both neighbors
}

// UsableSize implements alloc.Allocator.
func (a *Allocator) UsableSize(p alloc.Ptr) int {
	sp := a.space.Lookup(uint64(p))
	if sp == nil {
		panic(fmt.Sprintf("dlheap: UsableSize of unknown pointer %#x", uint64(p)))
	}
	if lo, isLarge := sp.Owner.(*alloc.LargeObj); isLarge {
		return lo.Size
	}
	c := uint64(p) - headerSize
	return int(a.chunkSize(c)) - headerSize
}

// Bytes implements alloc.Allocator.
func (a *Allocator) Bytes(p alloc.Ptr, n int) []byte {
	if n > a.UsableSize(p) {
		panic(fmt.Sprintf("dlheap: Bytes(%#x, %d) exceeds usable size", uint64(p), n))
	}
	return a.space.Bytes(uint64(p), n)
}

// Stats implements alloc.Allocator.
func (a *Allocator) Stats() alloc.Stats {
	var st alloc.Stats
	a.acct.Fill(&st)
	st.OSReserves = a.space.Stats().Reserves
	return st
}

// FreeChunks walks the bins and returns the count and total bytes of free
// chunks (requires quiescence); used by tests to verify coalescing.
func (a *Allocator) FreeChunks() (count int, bytes uint64) {
	for _, head := range a.bins {
		for p := head; !p.IsNil(); p = a.fd(uint64(p)) {
			count++
			bytes += a.chunkSize(uint64(p))
		}
	}
	return count, bytes
}

// CheckIntegrity implements alloc.Allocator: every segment must be a valid
// chunk sequence with consistent boundary tags; bins must hold exactly the
// free chunks; no two adjacent free chunks may exist (immediate coalescing).
func (a *Allocator) CheckIntegrity() error {
	// Gather bin membership.
	inBin := make(map[uint64]bool)
	for b, head := range a.bins {
		for p := head; !p.IsNil(); p = a.fd(uint64(p)) {
			c := uint64(p)
			if inBin[c] {
				return fmt.Errorf("dlheap: chunk %#x linked twice", c)
			}
			inBin[c] = true
			if got := a.binFor(a.chunkSize(c)); got != b {
				return fmt.Errorf("dlheap: chunk %#x (size %d) in bin %d, want %d", c, a.chunkSize(c), b, got)
			}
		}
	}
	var liveBytes int64
	for _, sp := range a.segs {
		base, end := sp.Base, sp.End()
		var prev uint64
		prevFree := false
		for c := base; c < end; {
			size := a.chunkSize(c)
			if size < minChunk || c+size > end {
				return fmt.Errorf("dlheap: chunk %#x has invalid size %d", c, size)
			}
			if got := a.prevSize(c); got != prev {
				return fmt.Errorf("dlheap: chunk %#x prevSize %d, want %d", c, got, prev)
			}
			free := !a.chunkInUse(c)
			if free {
				if prevFree {
					return fmt.Errorf("dlheap: adjacent free chunks at %#x (coalescing failed)", c)
				}
				if !inBin[c] {
					return fmt.Errorf("dlheap: free chunk %#x not in any bin", c)
				}
				delete(inBin, c)
			} else {
				liveBytes += int64(size) - headerSize
			}
			prev = size
			prevFree = free
			c += size
		}
	}
	if len(inBin) != 0 {
		return fmt.Errorf("dlheap: %d binned chunks not found in any segment", len(inBin))
	}
	// Large objects are exactly the committed bytes outside segments.
	large := a.space.Committed() - int64(len(a.segs))*SegmentSize
	if got := a.acct.Live(); got != liveBytes+large {
		return fmt.Errorf("dlheap: live gauge %d, segments say %d + large %d", got, liveBytes, large)
	}
	return nil
}
