package trace

import (
	"bytes"
	"testing"
	"testing/quick"

	"hoardgo/internal/alloc"
	"hoardgo/internal/allocators"
	"hoardgo/internal/env"
	"hoardgo/internal/simproc"
	"hoardgo/internal/workload"
)

func mkAlloc(name string) (alloc.Allocator, func(i int) *alloc.Thread) {
	a := allocators.MustMake(name, 4, env.RealLockFactory{})
	return a, func(i int) *alloc.Thread { return a.NewThread(&env.RealEnv{ID: i}) }
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	tr := Synthesize(SynthesizeConfig{Threads: 3, Events: 500, MinSize: 1, MaxSize: 2000, CrossFree: 0.3, Seed: 7})
	var buf bytes.Buffer
	if err := tr.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Decode(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Threads != tr.Threads || len(got.Events) != len(tr.Events) {
		t.Fatalf("decoded %d threads %d events, want %d/%d", got.Threads, len(got.Events), tr.Threads, len(tr.Events))
	}
	for i := range tr.Events {
		if tr.Events[i] != got.Events[i] {
			t.Fatalf("event %d: %+v != %+v", i, got.Events[i], tr.Events[i])
		}
	}
}

func TestPropertyRoundTrip(t *testing.T) {
	f := func(seed int64, th uint8, n uint16) bool {
		cfg := SynthesizeConfig{
			Threads: int(th)%6 + 1,
			Events:  int(n)%800 + 2,
			MinSize: 1, MaxSize: 500,
			CrossFree: 0.5,
			Seed:      seed,
		}
		tr := Synthesize(cfg)
		var buf bytes.Buffer
		if tr.Encode(&buf) != nil {
			return false
		}
		got, err := Decode(&buf)
		if err != nil || len(got.Events) != len(tr.Events) {
			return false
		}
		for i := range tr.Events {
			if tr.Events[i] != got.Events[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestDecodeRejectsGarbage(t *testing.T) {
	if _, err := Decode(bytes.NewReader([]byte("nope"))); err == nil {
		t.Fatal("bad magic accepted")
	}
	if _, err := Decode(bytes.NewReader(nil)); err == nil {
		t.Fatal("empty input accepted")
	}
	var buf bytes.Buffer
	tr := Synthesize(SynthesizeConfig{Threads: 1, Events: 10, MinSize: 8, MaxSize: 8, Seed: 1})
	tr.Encode(&buf)
	trunc := buf.Bytes()[:buf.Len()-3]
	if _, err := Decode(bytes.NewReader(trunc)); err == nil {
		t.Fatal("truncated input accepted")
	}
}

func TestRecorderAssignsStableIDs(t *testing.T) {
	r := NewRecorder()
	id0 := r.Malloc(0, 64, alloc.Ptr(0x1000))
	id1 := r.Malloc(1, 128, alloc.Ptr(0x2000))
	if id0 != 0 || id1 != 1 {
		t.Fatalf("ids %d,%d", id0, id1)
	}
	r.Free(1, alloc.Ptr(0x1000))
	tr := r.Trace()
	if tr.Threads != 2 || len(tr.Events) != 3 {
		t.Fatalf("trace %+v", tr)
	}
	if tr.Events[2] != (Event{Op: OpFree, Thread: 1, Obj: 0}) {
		t.Fatalf("free event %+v", tr.Events[2])
	}
}

func TestRecorderFreeUnknownPanics(t *testing.T) {
	r := NewRecorder()
	defer func() {
		if recover() == nil {
			t.Fatal("free of unrecorded pointer did not panic")
		}
	}()
	r.Free(0, alloc.Ptr(0xdead))
}

func TestReplayAgainstAllAllocators(t *testing.T) {
	tr := Synthesize(SynthesizeConfig{Threads: 4, Events: 3000, MinSize: 1, MaxSize: 3000, CrossFree: 0.4, Seed: 11})
	for _, name := range allocators.Names() {
		t.Run(name, func(t *testing.T) {
			a, mk := mkAlloc(name)
			res, err := Replay(tr, a, mk)
			if err != nil {
				t.Fatal(err)
			}
			if res.Mallocs == 0 || res.Mallocs != res.Frees {
				t.Fatalf("replay mallocs=%d frees=%d", res.Mallocs, res.Frees)
			}
			if res.Fragmentation() < 1.0 {
				t.Fatalf("fragmentation %v < 1", res.Fragmentation())
			}
			if got := a.Stats().LiveBytes; got != 0 {
				t.Fatalf("LiveBytes = %d after replay", got)
			}
			if err := a.CheckIntegrity(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestReplayDetectsMalformedTraces(t *testing.T) {
	a, mk := mkAlloc("hoard")
	bad := &Trace{Threads: 1, Events: []Event{{Op: OpFree, Thread: 0, Obj: 5}}}
	if _, err := Replay(bad, a, mk); err == nil {
		t.Fatal("free of dead object accepted")
	}
	a2, mk2 := mkAlloc("hoard")
	bad2 := &Trace{Threads: 1, Events: []Event{
		{Op: OpMalloc, Thread: 0, Obj: 0, Size: 8},
		{Op: OpMalloc, Thread: 0, Obj: 0, Size: 8},
	}}
	if _, err := Replay(bad2, a2, mk2); err == nil {
		t.Fatal("duplicate object id accepted")
	}
	a3, mk3 := mkAlloc("hoard")
	bad3 := &Trace{Threads: 1, Events: []Event{{Op: OpMalloc, Thread: 9, Obj: 0, Size: 8}}}
	if _, err := Replay(bad3, a3, mk3); err == nil {
		t.Fatal("out-of-range thread accepted")
	}
}

// TestRecordThenReplayEquivalence records a live run and replays it: the
// replayed allocator must see the identical malloc/free counts.
func TestRecordThenReplayEquivalence(t *testing.T) {
	a, mk := mkAlloc("hoard")
	rec := NewRecorder()
	th := mk(0)
	var live []alloc.Ptr
	for i := 0; i < 1000; i++ {
		if len(live) == 0 || i%3 != 0 {
			sz := 8 + i%500
			p := a.Malloc(th, sz)
			rec.Malloc(0, sz, p)
			live = append(live, p)
		} else {
			p := live[len(live)-1]
			live = live[:len(live)-1]
			rec.Free(0, p)
			a.Free(th, p)
		}
	}
	for _, p := range live {
		rec.Free(0, p)
		a.Free(th, p)
	}
	tr := rec.Trace()
	b, mkB := mkAlloc("serial")
	res, err := Replay(tr, b, mkB)
	if err != nil {
		t.Fatal(err)
	}
	st := a.Stats()
	if res.Mallocs != st.Mallocs || res.Frees != st.Frees {
		t.Fatalf("replay %d/%d, original %d/%d", res.Mallocs, res.Frees, st.Mallocs, st.Frees)
	}
}

func TestSynthesizeWellFormed(t *testing.T) {
	tr := Synthesize(SynthesizeConfig{Threads: 4, Events: 2000, MinSize: 1, MaxSize: 100, CrossFree: 1.0, Seed: 3})
	live := map[uint64]bool{}
	for i, ev := range tr.Events {
		switch ev.Op {
		case OpMalloc:
			if live[ev.Obj] {
				t.Fatalf("event %d: double alloc", i)
			}
			live[ev.Obj] = true
		case OpFree:
			if !live[ev.Obj] {
				t.Fatalf("event %d: free of dead object", i)
			}
			delete(live, ev.Obj)
		}
	}
	if len(live) != 0 {
		t.Fatalf("%d objects leaked by generator", len(live))
	}
}

func TestSynthesizeBadConfigPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("bad config accepted")
		}
	}()
	Synthesize(SynthesizeConfig{Threads: 0, Events: 10, MinSize: 1, MaxSize: 2})
}

func TestReplaySim(t *testing.T) {
	tr := Synthesize(SynthesizeConfig{Threads: 4, Events: 4000, MinSize: 8, MaxSize: 2000, CrossFree: 0.5, Seed: 21})
	for _, name := range []string{"hoard", "serial"} {
		t.Run(name, func(t *testing.T) {
			h := workload.NewSim(name, 4, simproc.DefaultCosts)
			res, makespan, err := ReplaySim(tr, h)
			if err != nil {
				t.Fatal(err)
			}
			if makespan <= 0 {
				t.Fatalf("makespan = %d", makespan)
			}
			if res.Mallocs == 0 || res.Mallocs != res.Frees {
				t.Fatalf("mallocs=%d frees=%d", res.Mallocs, res.Frees)
			}
			if got := h.Allocator().Stats().LiveBytes; got != 0 {
				t.Fatalf("LiveBytes = %d after replay", got)
			}
			if err := h.Allocator().CheckIntegrity(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestReplaySimDeterministic(t *testing.T) {
	tr := Synthesize(SynthesizeConfig{Threads: 3, Events: 2000, MinSize: 8, MaxSize: 500, CrossFree: 0.7, Seed: 5})
	run := func() int64 {
		h := workload.NewSim("hoard", 3, simproc.DefaultCosts)
		_, makespan, err := ReplaySim(tr, h)
		if err != nil {
			t.Fatal(err)
		}
		return makespan
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("nondeterministic replay: %d vs %d", a, b)
	}
}

func TestReplaySimCrossThreadGates(t *testing.T) {
	// Thread 1 frees an object thread 0 allocates much later in virtual
	// time: the gate must hold the free until the alloc exists.
	tr := &Trace{Threads: 2, Events: []Event{
		{Op: OpMalloc, Thread: 0, Obj: 0, Size: 64},
		{Op: OpFree, Thread: 1, Obj: 0},
		{Op: OpMalloc, Thread: 0, Obj: 1, Size: 64},
		{Op: OpFree, Thread: 1, Obj: 1},
	}}
	h := workload.NewSim("hoard", 2, simproc.DefaultCosts)
	res, _, err := ReplaySim(tr, h)
	if err != nil {
		t.Fatal(err)
	}
	if res.Mallocs != 2 || res.Frees != 2 {
		t.Fatalf("replay %+v", res)
	}
}

func TestReplaySimRejectsRealHarness(t *testing.T) {
	tr := Synthesize(SynthesizeConfig{Threads: 2, Events: 10, MinSize: 8, MaxSize: 8, Seed: 1})
	h := workload.NewReal("hoard", 2)
	if _, _, err := ReplaySim(tr, h); err == nil {
		t.Fatal("real-mode harness accepted")
	}
}

func TestValidate(t *testing.T) {
	good := Synthesize(SynthesizeConfig{Threads: 2, Events: 100, MinSize: 8, MaxSize: 64, Seed: 2})
	if err := Validate(good); err != nil {
		t.Fatal(err)
	}
	bad := &Trace{Threads: 1, Events: []Event{{Op: OpFree, Thread: 0, Obj: 9}}}
	if Validate(bad) == nil {
		t.Fatal("free-before-alloc accepted")
	}
	bad2 := &Trace{Threads: 1, Events: []Event{{Op: OpMalloc, Thread: 3, Obj: 0, Size: 8}}}
	if Validate(bad2) == nil {
		t.Fatal("out-of-range thread accepted")
	}
}

func TestRecordingWrapper(t *testing.T) {
	inner := allocators.MustMake("hoard", 2, env.RealLockFactory{})
	r := NewRecording(inner)
	th := r.NewThread(&env.RealEnv{ID: 0})
	p := r.Malloc(th, 100)
	r.Bytes(p, 100)[0] = 1
	if r.UsableSize(p) < 100 {
		t.Fatal("usable size")
	}
	r.Free(th, 0) // nil free not recorded
	r.Free(th, p)
	tr := r.Trace()
	if len(tr.Events) != 2 {
		t.Fatalf("%d events, want 2", len(tr.Events))
	}
	if tr.Events[0].Size != 100 {
		t.Fatalf("recorded size %d, want the requested 100", tr.Events[0].Size)
	}
	if err := Validate(tr); err != nil {
		t.Fatal(err)
	}
	if err := r.CheckIntegrity(); err != nil {
		t.Fatal(err)
	}
	if r.Name() != "hoard+record" {
		t.Fatalf("Name = %q", r.Name())
	}
}

// TestRecordSimThenReplaySim: record a benchmark on the simulator, replay
// the trace on a different allocator — end-to-end of the trace pipeline.
func TestRecordSimThenReplaySim(t *testing.T) {
	var rec *Recording
	h := workload.NewSimMaker("hoard", 2, simproc.DefaultCosts,
		func(p int, lf env.LockFactory) alloc.Allocator {
			rec = NewRecording(allocators.MustMake("hoard", p, lf))
			return rec
		})
	workload.Threadtest(h, workload.ThreadtestConfig{Threads: 2, Iterations: 1, Objects: 2000, ObjSize: 8})
	tr := rec.Trace()
	if err := Validate(tr); err != nil {
		t.Fatal(err)
	}
	h2 := workload.NewSim("dlheap", 2, simproc.DefaultCosts)
	res, _, err := ReplaySim(tr, h2)
	if err != nil {
		t.Fatal(err)
	}
	if res.Mallocs != 2000 || res.Frees != 2000 {
		t.Fatalf("replay %+v", res)
	}
}
