// Package simproc is a deterministic discrete-event simulator of a
// shared-memory multiprocessor, used to reproduce the paper's 1-14 processor
// experiments on any host (including the single-CPU machine this repository
// was developed on).
//
// The key property: the simulator executes the *real allocator code*. Each
// simulated thread is a goroutine running actual workload and allocator
// logic against real (simulated-address-space) memory; only time is
// virtual. Locks are virtual locks with FIFO handoff and queueing delays,
// cache-line transfers are charged by internal/cachesim, and operation
// costs come from a configurable CostModel. Which locks contend and which
// lines ping-pong is therefore emergent from the allocator's actual
// behavior, not scripted.
//
// # Determinism
//
// Exactly one simulated thread executes at any instant. The scheduler always
// resumes the runnable thread with the smallest (virtual time, thread id)
// and lets it run until its clock reaches the next other runnable thread's
// clock (its "deadline"), it blocks, or it finishes. All interactions with
// shared state (locks, barriers, cache lines) therefore occur in a total
// order determined solely by virtual time and thread ids: the same program
// produces bit-identical schedules, times, and statistics on every run.
//
// # Processor model
//
// Threads are bound to one of P virtual CPUs (round-robin by id unless
// chosen explicitly). Threads sharing a CPU serialize in virtual time: a
// thread resumes no earlier than the moment its CPU last went idle. This
// models co-scheduling coarsely (no preemption mid-run), which is exact for
// the paper's experiments (one thread per processor) and a reasonable
// approximation beyond.
package simproc

import (
	"fmt"
	"math"

	"hoardgo/internal/cachesim"
	"hoardgo/internal/env"
)

// CostModel maps abstract operations to virtual nanoseconds. The defaults
// approximate the paper's 400 MHz UltraSPARC Enterprise 5000; the ablation
// experiments vary them to show the qualitative results do not depend on
// the constants.
type CostModel struct {
	// Op is the cost per env.CostKind unit.
	Op [env.NumCostKinds]int64
	// LockAcquire is the cost of an uncontended lock acquisition.
	LockAcquire int64
	// LockRelease is the cost of releasing a lock.
	LockRelease int64
	// LockHandoff is the extra cost of handing a contended lock to a
	// waiter.
	LockHandoff int64
	// LockMigrate is the extra cost when a lock is acquired on a
	// different CPU than it was last held on (the lock word's cache line
	// must transfer).
	LockMigrate int64
	// SpawnCost is charged to a child thread at creation.
	SpawnCost int64
	// BarrierCost is charged to every thread released from a barrier.
	BarrierCost int64
	// Cache gives the coherence latencies.
	Cache cachesim.Costs
}

// DefaultCosts is the baseline cost model (virtual nanoseconds).
var DefaultCosts = CostModel{
	Op: [env.NumCostKinds]int64{
		env.OpMallocFast:     80,
		env.OpMallocSlow:     400,
		env.OpFree:           60,
		env.OpListScan:       15,
		env.OpSuperblockMove: 300,
		env.OpOSAlloc:        3000,
		env.OpRemoteFree:     40,
		env.OpMallocBatch:    50,
		env.OpFreeBatch:      50,
		env.OpWork:           1,
	},
	LockAcquire: 40,
	LockRelease: 20,
	LockHandoff: 60,
	LockMigrate: 240,
	SpawnCost:   5000,
	BarrierCost: 500,
	Cache:       cachesim.DefaultCosts,
}

type threadState int

const (
	stateReady threadState = iota
	stateRunning
	stateBlockedLock
	stateBlockedBarrier
	stateDone
)

type thread struct {
	id       int
	cpu      int
	time     int64
	deadline int64
	state    threadState
	resume   chan struct{}
	fn       func(e env.Env)
	w        *World
}

// Env is the per-thread environment handle; it implements env.Env.
type Env struct{ t *thread }

// ThreadID implements env.Env.
func (e *Env) ThreadID() int { return e.t.id }

// Charge implements env.Env.
func (e *Env) Charge(kind env.CostKind, n int64) {
	e.t.charge(e.t.w.cost.Op[kind] * n)
}

// Touch implements env.Env, charging coherence latency from the cache
// model.
func (e *Env) Touch(addr uint64, n int, write bool) {
	e.t.charge(e.t.w.cache.Access(e.t.cpu, addr, n, write))
}

// Time returns the thread's current virtual time (for workload
// instrumentation).
func (e *Env) Time() int64 { return e.t.time }

// World is one simulated multiprocessor run.
type World struct {
	cost  CostModel
	cache *cachesim.Model
	procs int

	threads  []*thread
	cpus     []int64 // busyUntil per CPU
	parked   chan *thread
	running  *thread
	started  bool
	panicVal any

	locks []*simLock
}

// NewWorld creates a simulator with the given number of processors.
func NewWorld(procs int, cost CostModel) *World {
	if procs < 1 {
		panic(fmt.Sprintf("simproc: %d processors", procs))
	}
	if procs > 64 {
		panic("simproc: at most 64 processors (cache model sharer mask)")
	}
	return &World{
		cost:   cost,
		cache:  cachesim.New(cost.Cache),
		procs:  procs,
		cpus:   make([]int64, procs),
		parked: make(chan *thread),
	}
}

// Procs returns the number of virtual processors.
func (w *World) Procs() int { return w.procs }

// Spawn registers a simulated thread on CPU id%P. Must be called before Run
// or from a running simulated thread (dynamic spawn, e.g. Larson's worker
// generations). It returns the new thread's id.
func (w *World) Spawn(fn func(e env.Env)) int {
	return w.SpawnOn(len(w.threads)%w.procs, fn)
}

// SpawnOn registers a simulated thread on a specific CPU.
func (w *World) SpawnOn(cpu int, fn func(e env.Env)) int {
	if cpu < 0 || cpu >= w.procs {
		panic(fmt.Sprintf("simproc: SpawnOn(%d) with %d CPUs", cpu, w.procs))
	}
	t := &thread{
		id:     len(w.threads),
		cpu:    cpu,
		state:  stateReady,
		resume: make(chan struct{}),
		fn:     fn,
		w:      w,
	}
	if w.started {
		parent := w.running
		if parent == nil {
			panic("simproc: Spawn after Run completed")
		}
		t.time = parent.time + w.cost.SpawnCost
		parent.observe(t)
	}
	w.threads = append(w.threads, t)
	go t.main()
	return t.id
}

func (t *thread) main() {
	<-t.resume
	defer func() {
		if r := recover(); r != nil && t.w.panicVal == nil {
			// Propagate to the Run caller: the scheduler re-panics
			// on its own goroutine, where tests can recover.
			t.w.panicVal = r
		}
		t.state = stateDone
		t.w.parked <- t
	}()
	t.fn(&Env{t: t})
}

// charge advances the thread's clock and yields to the scheduler if the
// clock reached another runnable thread's.
func (t *thread) charge(d int64) {
	if d < 0 {
		panic("simproc: negative charge")
	}
	t.time += d
	if t.time >= t.deadline {
		t.state = stateReady
		t.park()
	}
}

// park hands control to the scheduler and blocks until rescheduled.
func (t *thread) park() {
	t.w.parked <- t
	<-t.resume
}

// observe lowers the running thread's deadline when another thread becomes
// runnable behind it, so interactions stay time-ordered.
func (t *thread) observe(other *thread) {
	if eff := t.w.effTime(other); eff < t.deadline {
		t.deadline = eff
	}
}

// effTime is the earliest virtual time a ready thread could run at,
// accounting for its CPU's occupancy.
func (w *World) effTime(t *thread) int64 {
	if b := w.cpus[t.cpu]; b > t.time {
		return b
	}
	return t.time
}

// Run executes the simulation to completion and returns the makespan: the
// largest virtual completion time across threads (and thus CPUs). It panics
// if the simulation deadlocks.
func (w *World) Run() int64 {
	if w.started {
		panic("simproc: Run called twice")
	}
	w.started = true
	for {
		t := w.pick()
		if t == nil {
			break
		}
		t.time = w.effTime(t)
		t.deadline = w.nextDeadline(t)
		t.state = stateRunning
		w.running = t
		t.resume <- struct{}{}
		parked := <-w.parked
		if b := parked.time; b > w.cpus[parked.cpu] {
			w.cpus[parked.cpu] = b
		}
		w.running = nil
		if w.panicVal != nil {
			panic(w.panicVal)
		}
	}
	var blocked int
	var makespan int64
	for _, t := range w.threads {
		switch t.state {
		case stateDone:
			if t.time > makespan {
				makespan = t.time
			}
		default:
			blocked++
		}
	}
	if blocked > 0 {
		panic(fmt.Sprintf("simproc: deadlock — %d thread(s) blocked forever", blocked))
	}
	for _, b := range w.cpus {
		if b > makespan {
			makespan = b
		}
	}
	return makespan
}

// pick returns the runnable thread with the smallest (effective time, id).
func (w *World) pick() *thread {
	var best *thread
	var bestEff int64 = math.MaxInt64
	for _, t := range w.threads {
		if t.state != stateReady {
			continue
		}
		if eff := w.effTime(t); eff < bestEff {
			best, bestEff = t, eff
		}
	}
	return best
}

// nextDeadline computes how far t may run unsupervised: up to the next
// other runnable thread's effective time (at least one tick past its own
// clock, so zero-cost operations never spin).
func (w *World) nextDeadline(t *thread) int64 {
	var next int64 = math.MaxInt64
	for _, o := range w.threads {
		if o == t || o.state != stateReady {
			continue
		}
		if eff := w.effTime(o); eff < next {
			next = eff
		}
	}
	if next <= t.time {
		next = t.time + 1
	}
	return next
}

// CacheStats returns the coherence counters accumulated so far.
func (w *World) CacheStats() cachesim.Stats { return w.cache.Stats() }

// --- Locks ---

// LockStat describes one lock's contention profile.
type LockStat struct {
	// Name is the factory-supplied lock name.
	Name string
	// Acquires counts successful acquisitions.
	Acquires int64
	// Contended counts acquisitions that had to queue.
	Contended int64
	// WaitTime is the total virtual time threads spent queued.
	WaitTime int64
}

type simLock struct {
	w       *World
	name    string
	holder  *thread
	waiters []*thread
	lastCPU int
	stat    LockStat
}

// NewLock implements env.LockFactory.
func (w *World) NewLock(name string) env.Lock {
	l := &simLock{w: w, name: name, lastCPU: -1}
	w.locks = append(w.locks, l)
	return l
}

func (l *simLock) acquireBy(t *thread) int64 {
	l.holder = t
	d := l.w.cost.LockAcquire
	if l.lastCPU != -1 && l.lastCPU != t.cpu {
		d += l.w.cost.LockMigrate
	}
	l.lastCPU = t.cpu
	l.stat.Acquires++
	return d
}

// Lock implements env.Lock.
func (l *simLock) Lock(e env.Env) {
	t := e.(*Env).t
	if l.holder == t {
		panic(fmt.Sprintf("simproc: recursive lock of %q", l.name))
	}
	if l.holder == nil {
		t.charge(l.acquireBy(t))
		return
	}
	l.stat.Contended++
	l.waiters = append(l.waiters, t)
	enqueued := t.time
	t.state = stateBlockedLock
	t.park()
	// The releaser granted us the lock and advanced our clock.
	l.stat.WaitTime += t.time - enqueued
}

// TryLock implements env.Lock.
func (l *simLock) TryLock(e env.Env) bool {
	t := e.(*Env).t
	if l.holder == nil {
		t.charge(l.acquireBy(t))
		return true
	}
	t.charge(l.w.cost.LockAcquire)
	return false
}

// Unlock implements env.Lock, handing the lock FIFO to the oldest waiter.
func (l *simLock) Unlock(e env.Env) {
	t := e.(*Env).t
	if l.holder != t {
		panic(fmt.Sprintf("simproc: unlock of %q by non-holder", l.name))
	}
	if len(l.waiters) == 0 {
		l.holder = nil
		t.charge(l.w.cost.LockRelease)
		return
	}
	next := l.waiters[0]
	copy(l.waiters, l.waiters[1:])
	l.waiters = l.waiters[:len(l.waiters)-1]
	grant := t.time + l.w.cost.LockRelease + l.w.cost.LockHandoff
	if next.cpu != t.cpu {
		grant += l.w.cost.LockMigrate
	}
	if next.time < grant {
		next.time = grant
	}
	l.holder = next
	l.lastCPU = next.cpu
	l.stat.Acquires++
	next.state = stateReady
	t.observe(next)
	t.charge(l.w.cost.LockRelease)
}

// LockStats returns a snapshot of every lock's contention counters.
func (w *World) LockStats() []LockStat {
	out := make([]LockStat, len(w.locks))
	for i, l := range w.locks {
		out[i] = l.stat
		out[i].Name = l.name
	}
	return out
}

// --- Barriers ---

// Barrier synchronizes a fixed set of simulated threads; all release at the
// virtual time the last participant arrives. It is reusable across rounds.
type Barrier struct {
	w       *World
	parties int
	arrived []*thread
	maxT    int64
}

// NewBarrier creates a barrier for the given number of participants.
func (w *World) NewBarrier(parties int) *Barrier {
	if parties < 1 {
		panic("simproc: barrier parties < 1")
	}
	return &Barrier{w: w, parties: parties}
}

// Wait blocks the calling simulated thread until all participants arrive.
func (b *Barrier) Wait(e env.Env) {
	t := e.(*Env).t
	if t.time > b.maxT {
		b.maxT = t.time
	}
	b.arrived = append(b.arrived, t)
	if len(b.arrived) < b.parties {
		t.state = stateBlockedBarrier
		t.park()
		return
	}
	release := b.maxT + b.w.cost.BarrierCost
	for _, o := range b.arrived {
		if o == t {
			continue
		}
		if o.time < release {
			o.time = release
		}
		o.state = stateReady
		t.observe(o)
	}
	b.arrived = b.arrived[:0]
	b.maxT = 0
	if t.time < release {
		t.charge(release - t.time)
	}
}
