package alloc

import (
	"testing"

	"hoardgo/internal/env"
	"hoardgo/internal/vm"
)

// fakeAlloc is a minimal Allocator (no BatchAllocator) that logs calls.
type fakeAlloc struct {
	mallocs int
	frees   int
	next    Ptr
}

func (f *fakeAlloc) Name() string                { return "fake" }
func (f *fakeAlloc) NewThread(e env.Env) *Thread { return &Thread{ID: e.ThreadID(), Env: e} }
func (f *fakeAlloc) Malloc(t *Thread, size int) Ptr {
	f.mallocs++
	f.next++
	return f.next
}
func (f *fakeAlloc) Free(t *Thread, p Ptr)     { f.frees++ }
func (f *fakeAlloc) UsableSize(p Ptr) int      { return 8 }
func (f *fakeAlloc) Bytes(p Ptr, n int) []byte { return nil }
func (f *fakeAlloc) Stats() Stats              { return Stats{} }
func (f *fakeAlloc) Space() vm.Backend         { return nil }
func (f *fakeAlloc) CheckIntegrity() error     { return nil }

// batchFake adds a native batch path that must NOT be reached through
// NoBatch.
type batchFake struct {
	fakeAlloc
	batchCalls int
}

func (f *batchFake) MallocBatch(t *Thread, size, n int, out []Ptr) int {
	f.batchCalls++
	for i := 0; i < n; i++ {
		out[i] = f.Malloc(t, size)
	}
	return n
}

func (f *batchFake) FreeBatch(t *Thread, ps []Ptr) {
	f.batchCalls++
	for _, p := range ps {
		f.Free(t, p)
	}
}

func TestShimFallsBackPerBlock(t *testing.T) {
	f := &fakeAlloc{}
	th := f.NewThread(&env.RealEnv{})
	out := make([]Ptr, 5)
	if n := MallocBatch(f, th, 8, 5, out); n != 5 {
		t.Fatalf("MallocBatch = %d, want 5", n)
	}
	if f.mallocs != 5 {
		t.Fatalf("fallback made %d Malloc calls, want 5", f.mallocs)
	}
	FreeBatch(f, th, out)
	if f.frees != 5 {
		t.Fatalf("fallback made %d Free calls, want 5", f.frees)
	}
}

func TestShimDispatchesNative(t *testing.T) {
	f := &batchFake{}
	th := f.NewThread(&env.RealEnv{})
	out := make([]Ptr, 4)
	MallocBatch(f, th, 8, 4, out)
	FreeBatch(f, th, out)
	if f.batchCalls != 2 {
		t.Fatalf("native batch path called %d times, want 2", f.batchCalls)
	}
}

// TestNoBatchHidesNativePath is the ablation mechanism: embedding only the
// Allocator interface hides the concrete type's batch methods from the type
// assertion, so the shims must fall back per-block.
func TestNoBatchHidesNativePath(t *testing.T) {
	f := &batchFake{}
	wrapped := NoBatch{Allocator: f}
	if _, ok := Allocator(wrapped).(BatchAllocator); ok {
		t.Fatal("NoBatch still satisfies BatchAllocator")
	}
	th := wrapped.NewThread(&env.RealEnv{})
	out := make([]Ptr, 4)
	MallocBatch(wrapped, th, 8, 4, out)
	FreeBatch(wrapped, th, out)
	if f.batchCalls != 0 {
		t.Fatalf("NoBatch leaked %d native batch calls", f.batchCalls)
	}
	if f.mallocs != 4 || f.frees != 4 {
		t.Fatalf("per-block fallback ran %d/%d ops, want 4/4", f.mallocs, f.frees)
	}
}

func TestMergeAllocatorCounters(t *testing.T) {
	app := Stats{Mallocs: 10, Frees: 9, LiveBytes: 100, PeakLiveBytes: 200}
	inner := Stats{
		Mallocs: 3, Frees: 2, LiveBytes: 999, PeakLiveBytes: 999,
		LargeMallocs: 1, SuperblockMoves: 4, OSReserves: 5,
		RemoteFrees: 6, RemoteFastFrees: 7, RemoteDrains: 8,
		BatchRefills: 11, BatchFlushes: 12, BatchedBlocks: 13,
		GlobalHeapHits: 14, MovedLiveBlocks: 15,
	}
	st := app
	MergeAllocatorCounters(&st, inner)
	want := inner
	want.Mallocs, want.Frees = app.Mallocs, app.Frees
	want.LiveBytes, want.PeakLiveBytes = app.LiveBytes, app.PeakLiveBytes
	if st != want {
		t.Fatalf("merged = %+v, want %+v", st, want)
	}
}
