// Webserver simulation: the Larson-style pattern the paper calls a server
// workload, written against the public API. A listener goroutine "accepts"
// requests and allocates their buffers; a pool of worker goroutines parses,
// builds responses (more allocations), and frees everything — so nearly all
// frees are cross-thread, the pattern that melts naive multithreaded
// allocators. Run it with -policy serial or -policy private to compare.
//
// The lifecycle here is the reference for real servers: every worker closes
// its Thread on exit (flushing any magazine-cached blocks back to the
// heaps), and the allocator itself is closed at the end (stopping the
// scavenger and unmapping the arena reservation when -backend arena).
// With -metrics ADDR the allocator's Prometheus endpoint is served live,
// so the run can be scraped while it works; cmd/hoardload drives this same
// serving pipeline under shaped traffic with latency SLOs.
package main

import (
	"flag"
	"fmt"
	"log"
	"math/rand"
	"net/http"
	"sync"
	"time"

	hoard "hoardgo"
)

type request struct {
	buf     hoard.Ptr
	bufSize int
}

func main() {
	policy := flag.String("policy", "hoard", "allocator policy: hoard serial private ownership threshold")
	backend := flag.String("backend", "", "memory substrate: sim or arena (hoard policy only; empty = HOARDGO_BACKEND or sim)")
	workers := flag.Int("workers", 4, "worker goroutines")
	requests := flag.Int("requests", 50000, "total requests")
	tcache := flag.Int("tcache", 0, "per-thread magazine capacity (0 = no thread cache)")
	metricsAddr := flag.String("metrics", "", "serve the allocator's /metrics endpoint on this address while running")
	flag.Parse()

	a := hoard.MustNew(hoard.Config{
		Policy:              hoard.Policy(*policy),
		Backend:             *backend,
		Procs:               *workers,
		ThreadCacheCapacity: *tcache,
	})
	// Close is the only way an arena reservation is unmapped; it also stops
	// the background goroutines. Every exit path must run it.
	defer func() {
		if err := a.Close(); err != nil {
			panic(err)
		}
	}()

	if *metricsAddr != "" {
		mux := http.NewServeMux()
		mux.Handle("/metrics", a.MetricsHandler())
		go func() { log.Fatal(http.ListenAndServe(*metricsAddr, mux)) }()
		fmt.Printf("metrics on http://%s/metrics\n", *metricsAddr)
	}

	queue := make(chan request, 256)
	var wg sync.WaitGroup

	start := time.Now()
	for w := 0; w < *workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			t := a.NewThread()
			// The lifecycle fix: a worker that exits without Close strands
			// its magazine blocks — invisible to the emptiness invariant,
			// never scavenged.
			defer t.Close()
			rng := rand.New(rand.NewSource(int64(w)))
			for req := range queue {
				// "Parse": read the request buffer.
				var checksum byte
				for _, b := range t.Bytes(req.buf, req.bufSize) {
					checksum ^= b
				}
				// "Respond": allocate a response, fill it, release
				// both. The request buffer was allocated by the
				// listener — a remote free.
				respSize := 128 + rng.Intn(1024)
				resp := t.Malloc(respSize)
				buf := t.Bytes(resp, respSize)
				for i := range buf {
					buf[i] = checksum
				}
				t.Free(resp)
				t.Free(req.buf)
			}
		}(w)
	}

	listener := a.NewThread()
	rng := rand.New(rand.NewSource(42))
	for i := 0; i < *requests; i++ {
		size := 64 + rng.Intn(2048)
		p := listener.Malloc(size)
		buf := listener.Bytes(p, size)
		for j := range buf {
			buf[j] = byte(i + j)
		}
		queue <- request{buf: p, bufSize: size}
	}
	close(queue)
	wg.Wait()
	listener.Close()
	elapsed := time.Since(start)

	st := a.Stats()
	fmt.Printf("policy      %s (backend %s)\n", *policy, a.Backend())
	fmt.Printf("requests    %d via %d workers in %v (%.0f req/s)\n",
		*requests, *workers, elapsed.Round(time.Millisecond),
		float64(*requests)/elapsed.Seconds())
	fmt.Printf("allocator   %d mallocs, %d frees, %d remote frees\n",
		st.Mallocs, st.Frees, st.RemoteFrees)
	fmt.Printf("memory      %d B live, %d B cached, peak footprint %d KiB\n",
		st.LiveBytes, a.CachedBytes(), st.PeakFootprintBytes/1024)
	if st.LiveBytes != 0 {
		panic("leak: live bytes after all requests completed")
	}
	if c := a.CachedBytes(); c != 0 {
		panic(fmt.Sprintf("leak: %d bytes stranded in thread magazines after drain", c))
	}
	if err := a.CheckIntegrity(); err != nil {
		panic(err)
	}
	fmt.Println("integrity check passed")
}
