package experiments

import (
	"fmt"

	"hoardgo/internal/alloc"
	"hoardgo/internal/core"
	"hoardgo/internal/env"
	"hoardgo/internal/tcache"
	"hoardgo/internal/workload"
)

// This file is the machine-readable side of the batching ablation: structured
// results that cmd/hoardbench serializes into a committed benchmark artifact
// (BENCH_PR3.json), so the batched-transfer win is recorded in-repo rather
// than only printed.

// BatchLockVariant is one arm of the lock-acquisition measurement.
type BatchLockVariant struct {
	// LockAcquires is the total heap-lock acquisitions across the run
	// (counted by env.CountingLockFactory over every lock the allocator
	// creates).
	LockAcquires int64 `json:"lock_acquires"`
	// Mallocs is the number of cached mallocs performed.
	Mallocs int64 `json:"mallocs"`
	// LocksPerMalloc is LockAcquires / Mallocs (frees included in the
	// numerator: every malloc in the workload has a matching free, so the
	// ratio compares the full churn cost of the two arms).
	LocksPerMalloc float64 `json:"locks_per_malloc"`
	// BatchRefills and BatchFlushes confirm which path ran: zero on the
	// per-block arm.
	BatchRefills int64 `json:"batch_refills"`
	BatchFlushes int64 `json:"batch_flushes"`
}

// BatchLockResult compares heap-lock acquisitions per cached malloc with the
// native batch path enabled versus hidden behind alloc.NoBatch.
type BatchLockResult struct {
	// Capacity is the tcache magazine capacity; Rounds the churn rounds.
	Capacity int `json:"capacity"`
	Rounds   int `json:"rounds"`
	// Batch and PerBlock are the two arms.
	Batch    BatchLockVariant `json:"batch"`
	PerBlock BatchLockVariant `json:"per_block"`
	// Improvement is PerBlock.LocksPerMalloc / Batch.LocksPerMalloc —
	// the PR's acceptance criterion requires >= 5.
	Improvement float64 `json:"improvement"`
}

// MeasureBatchLocks runs the deterministic single-threaded churn workload on
// both arms: each round allocates a burst of 2*capacity blocks (defeating
// the magazine so every round forces refills) and frees them all (forcing
// flushes). Single-threaded on the real environment, so the counted lock
// acquisitions are exactly the protocol's, with no contention noise.
func MeasureBatchLocks(capacity, rounds int) BatchLockResult {
	res := BatchLockResult{
		Capacity: capacity,
		Rounds:   rounds,
		Batch:    measureBatchLocksArm(capacity, rounds, false),
		PerBlock: measureBatchLocksArm(capacity, rounds, true),
	}
	if res.Batch.LocksPerMalloc > 0 {
		res.Improvement = res.PerBlock.LocksPerMalloc / res.Batch.LocksPerMalloc
	}
	return res
}

func measureBatchLocksArm(capacity, rounds int, noBatch bool) BatchLockVariant {
	// Both arms disable the lock-free warm paths: the measurement isolates
	// what *batching* saves in lock traffic, which the warm paths would
	// otherwise hide (they take no lock on either arm — see lockfreebench.go
	// for their own before/after).
	clf := &env.CountingLockFactory{Inner: env.RealLockFactory{}}
	var inner alloc.Allocator = core.New(core.Config{Heaps: 2, DisableLockFree: true}, clf)
	if noBatch {
		inner = alloc.NoBatch{Allocator: inner}
	}
	a := tcache.New(inner, tcache.Config{Capacity: capacity})
	th := a.NewThread(&env.RealEnv{})
	burst := 2 * capacity
	ptrs := make([]alloc.Ptr, burst)
	var mallocs int64
	for r := 0; r < rounds; r++ {
		for i := range ptrs {
			ptrs[i] = a.Malloc(th, 64)
			mallocs++
		}
		for i := range ptrs {
			a.Free(th, ptrs[i])
		}
	}
	acquires := clf.Acquires()
	st := a.Stats()
	a.FlushThread(th)
	if err := a.CheckIntegrity(); err != nil {
		panic(fmt.Sprintf("batchbench: integrity after churn: %v", err))
	}
	return BatchLockVariant{
		LockAcquires:   acquires,
		Mallocs:        mallocs,
		LocksPerMalloc: float64(acquires) / float64(mallocs),
		BatchRefills:   st.BatchRefills,
		BatchFlushes:   st.BatchFlushes,
	}
}

// BatchSimEntry is one deterministic simulator run in the artifact.
type BatchSimEntry struct {
	Bench         string  `json:"bench"`
	Allocator     string  `json:"allocator"`
	Procs         int     `json:"procs"`
	VirtualMS     float64 `json:"virtual_ms"`
	RemoteFrees   int64   `json:"remote_frees"`
	BatchRefills  int64   `json:"batch_refills"`
	BatchFlushes  int64   `json:"batch_flushes"`
	BatchedBlocks int64   `json:"batched_blocks"`
}

// BatchSimResults runs the artifact's simulator benchmarks — threadtest,
// larson, and the contended producer-consumer probe — on the batch and
// per-block arms of the tcache-over-Hoard stack. Deterministic for a given
// scale, so the artifact is reproducible byte-for-byte.
func BatchSimResults(opts Options) []BatchSimEntry {
	const procs = 8
	var out []BatchSimEntry
	variants := []struct {
		name    string
		noBatch bool
	}{
		{"hoard+tcache (batch)", false},
		{"hoard+tcache (per-block)", true},
	}
	for _, id := range []string{"threadtest", "larson"} {
		def, _ := FigureByID(id)
		run := def.Run(opts.Scale)
		for _, v := range variants {
			h := workload.NewSimMaker("hoard", procs, opts.Cost,
				batchTCacheMaker("hoard", 32, v.noBatch))
			res := run(h, procs)
			out = append(out, batchSimEntry(id, v.name, procs, res))
		}
	}
	cfg := workload.DefaultProdCons(procs)
	if opts.Scale == Quick {
		cfg.Rounds, cfg.Batch = 20, 400
	}
	for _, v := range variants {
		h := workload.NewSimMaker("hoard", procs, opts.Cost,
			batchTCacheMaker("hoard", 32, v.noBatch))
		res, _ := workload.ProdCons(h, cfg)
		out = append(out, batchSimEntry("prodcons", v.name, procs, res))
	}
	return out
}

func batchSimEntry(bench, name string, procs int, res workload.Result) BatchSimEntry {
	return BatchSimEntry{
		Bench:         bench,
		Allocator:     name,
		Procs:         procs,
		VirtualMS:     float64(res.ElapsedNS) / 1e6,
		RemoteFrees:   res.Alloc.RemoteFrees,
		BatchRefills:  res.Alloc.BatchRefills,
		BatchFlushes:  res.Alloc.BatchFlushes,
		BatchedBlocks: res.Alloc.BatchedBlocks,
	}
}
