package core

import (
	"errors"
	"strings"
	"testing"

	"hoardgo/internal/alloc"
	"hoardgo/internal/env"
	"hoardgo/internal/vm"
)

// TestBackendDefaultIsSim pins the default: no Backend in the Config (and
// no HOARDGO_BACKEND override) means the deterministic simulated space.
func TestBackendDefaultIsSim(t *testing.T) {
	if envBackend() != "" {
		// The whole-suite override (make arena-smoke) is in effect; the
		// zero config intentionally follows it.
		t.Skipf("HOARDGO_BACKEND=%q overrides the default", envBackend())
	}
	h := New(Config{}, env.RealLockFactory{})
	if got := h.Backend(); got != "sim" {
		t.Fatalf("default backend = %q, want sim", got)
	}
	if h.BackendFallbackReason() != "" || h.Stats().BackendFallbacks != 0 {
		t.Fatalf("sim default recorded a fallback: %q", h.BackendFallbackReason())
	}
}

// TestBackendFallbackOnArenaFailure is the satellite's core guarantee: when
// the arena cannot be created (non-Linux, ulimit, overcommit off — injected
// here since those are hard to provoke portably), Config{Backend: "arena"}
// degrades to the simulated backend with the reason recorded in the stats,
// instead of panicking. The allocator must be fully functional afterwards.
func TestBackendFallbackOnArenaFailure(t *testing.T) {
	orig := newArenaBackend
	newArenaBackend = func(vm.ArenaOptions) (vm.Backend, error) {
		return nil, errors.New("mmap: cannot allocate memory")
	}
	defer func() { newArenaBackend = orig }()

	h := New(Config{Backend: "arena"}, env.RealLockFactory{})
	if got := h.Backend(); got != "sim" {
		t.Fatalf("backend after failed arena = %q, want sim", got)
	}
	if got := h.Stats().BackendFallbacks; got != 1 {
		t.Fatalf("BackendFallbacks = %d, want 1", got)
	}
	if reason := h.BackendFallbackReason(); !strings.Contains(reason, "cannot allocate memory") {
		t.Fatalf("fallback reason %q does not carry the cause", reason)
	}

	// The degraded allocator still allocates.
	th := h.NewThread(&env.RealEnv{ID: 1})
	p := h.Malloc(th, 128)
	h.Bytes(p, 128)[0] = 0xA5
	h.Free(th, p)
	if err := h.CheckIntegrity(); err != nil {
		t.Fatal(err)
	}
}

// TestBackendUnknownEnvFallsBack: garbage in HOARDGO_BACKEND must not panic
// a binary that never asked for it — it degrades to sim with the reason
// recorded.
func TestBackendUnknownEnvFallsBack(t *testing.T) {
	be, reason := openBackend(Config{Backend: "warp-drive"})
	if be.Name() != "sim" || !strings.Contains(reason, "warp-drive") {
		t.Fatalf("openBackend(warp-drive) = %s, %q", be.Name(), reason)
	}
}

// TestBackendExplicitUnknownRejected: an explicit unknown Config.Backend is
// a programming error and is rejected by validation.
func TestBackendExplicitUnknownRejected(t *testing.T) {
	if err := (Config{Backend: "warp-drive"}.withDefaults()).validate(); err == nil {
		t.Fatal("unknown explicit backend passed validation")
	}
}

// TestBackendArena runs a small allocation workload on a real arena and
// checks the arena actually served it (no silent fallback).
func TestBackendArena(t *testing.T) {
	h := New(Config{Backend: "arena"}, env.RealLockFactory{})
	if h.Backend() != "arena" {
		t.Skipf("arena unavailable: %v", h.BackendFallbackReason())
	}
	defer h.Space().Close()
	th := h.NewThread(&env.RealEnv{ID: 1})
	var ps []struct {
		p    uint64
		size int
	}
	for i := 0; i < 2000; i++ {
		size := 16 << (i % 6)
		p := h.Malloc(th, size)
		buf := h.Bytes(p, size)
		for j := range buf {
			buf[j] = byte(i)
		}
		ps = append(ps, struct {
			p    uint64
			size int
		}{uint64(p), size})
	}
	// Large objects too: they take the arena's variable-size region.
	big := h.Malloc(th, 128<<10)
	h.Bytes(big, 128<<10)[128<<10-1] = 0xEE
	for i, rec := range ps {
		buf := h.Bytes(alloc.Ptr(rec.p), rec.size)
		for j := range buf {
			if buf[j] != byte(i) {
				t.Fatalf("block %d corrupted at byte %d", i, j)
			}
		}
		h.Free(th, alloc.Ptr(rec.p))
	}
	h.Free(th, big)
	if err := h.CheckIntegrity(); err != nil {
		t.Fatal(err)
	}
	if st := h.Space().Stats(); st.Reserves == 0 {
		t.Fatal("arena served no reservations")
	}
}
