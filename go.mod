module hoardgo

go 1.22
