package control

import (
	"sort"
	"strconv"
	"strings"
	"time"

	"hoardgo/internal/core"
	"hoardgo/internal/env"
	"hoardgo/internal/metrics"
	"hoardgo/internal/scavenge"
	"hoardgo/internal/tcache"
)

// CoreTarget adapts a real-mode allocator stack to the Target interface.
// Core is required; the other layers are optional and simply narrow what the
// controller can see and move:
//
//   - without Cache there are no magazine knobs,
//   - without Scav there are no scavenger-pacing knobs,
//   - without Reg the lock-derived signals read zero (the LockRate and
//     contention rules then never fire, which is the safe direction).
type CoreTarget struct {
	Core  *core.Hoard
	Cache *tcache.Allocator
	Scav  *scavenge.Scavenger
	Reg   *metrics.Registry

	// Clock stamps samples; nil means time.Now. Tests override it.
	Clock func() int64

	// env for the sampling walks. Heap locks taken while sampling are
	// attributed to this pseudo-thread; ID -1 keeps it off the remote-free
	// ownership paths.
	env env.RealEnv
}

// NewCoreTarget returns a CoreTarget over the stack. Cache, scav, and reg
// may be nil.
func NewCoreTarget(c *core.Hoard, cache *tcache.Allocator, scav *scavenge.Scavenger, reg *metrics.Registry) *CoreTarget {
	return &CoreTarget{Core: c, Cache: cache, Scav: scav, Reg: reg, env: env.RealEnv{ID: -1}}
}

func (t *CoreTarget) now() int64 {
	if t.Clock != nil {
		return t.Clock()
	}
	return time.Now().UnixNano()
}

// Sample reads one controller sample off the live allocator. The heap
// occupancy walk takes each heap lock briefly; the lock counters come from
// the metrics registry so the walk's own acquisitions are included — a
// constant ~NumHeaps acquires per tick, far below the rule thresholds at any
// traffic level that passes the MinOpsPerTick gate.
func (t *CoreTarget) Sample() Sample {
	st := t.Core.Stats()
	vmSt := t.Core.Space().Stats()
	s := Sample{
		WhenNS:          t.now(),
		Mallocs:         st.Mallocs,
		Frees:           st.Frees,
		SuperblockMoves: st.SuperblockMoves,
		GlobalHeapHits:  st.GlobalHeapHits,
		RemoteFrees:     st.RemoteFrees,
		BatchRefills:    st.BatchRefills,
		BatchFlushes:    st.BatchFlushes,
		Decommits:       vmSt.Decommits,
		Recommits:       vmSt.Recommits,
		LiveBytes:       st.LiveBytes,
		FootprintBytes:  vmSt.Committed,
	}
	if t.Cache != nil {
		cst := t.Cache.Stats()
		s.Mallocs, s.Frees, s.LiveBytes = cst.Mallocs, cst.Frees, cst.LiveBytes
	}
	if n, ok := t.Core.TryGlobalEmptyBytes(&t.env); ok {
		s.GlobalEmptyBytes = n
	} else {
		s.GlobalEmptyBytes = -1
	}
	bylen := map[int]*ClassStat{}
	sbSize := int64(t.Core.SuperblockSize())
	// All heaps count, including the global one: under an aggressive
	// eviction policy the working set's superblocks spend most of their
	// time parked on heap 0 and the per-processor heaps alone would look
	// empty. Completely empty superblocks are excluded from the held
	// denominator instead — they are the scavenger's backlog
	// (GlobalEmptyBytes), not fragmented working memory, and counting them
	// would make any eviction-heavy workload look maximally fragmented.
	for _, occ := range t.Core.SampleHeaps(&t.env, true) {
		for _, co := range occ.Classes {
			cs := bylen[co.BlockSize]
			if cs == nil {
				cs = &ClassStat{BlockSize: co.BlockSize}
				bylen[co.BlockSize] = cs
			}
			cs.Superblocks += co.Superblocks - co.EmptySuperblocks
			cs.HeldBytes += int64(co.Superblocks-co.EmptySuperblocks) * sbSize
			cs.InUseBytes += co.InUseBytes
		}
	}
	for _, bs := range sortedKeys(bylen) {
		s.Classes = append(s.Classes, *bylen[bs])
	}
	if t.Reg != nil {
		for _, ls := range t.Reg.LockStats() {
			switch {
			case ls.Name == "hoard.heap0":
				s.GlobalAcquires += ls.Acquires
				s.GlobalContended += ls.Contended
			case strings.HasPrefix(ls.Name, "hoard.heap"):
				s.HeapAcquires += ls.Acquires
				s.HeapContended += ls.Contended
			}
		}
	}
	return s
}

// Knobs reads every knob's current value.
func (t *CoreTarget) Knobs() Knobs {
	k := Knobs{
		EmptyFraction: t.Core.EmptyFraction(),
		SlackK:        t.Core.SlackK(),
	}
	if t.Cache != nil {
		k.MagCapacity = make(map[int]int, t.Cache.NumClasses())
		for class := 0; class < t.Cache.NumClasses(); class++ {
			k.MagCapacity[t.Cache.ClassSize(class)] = t.Cache.Capacity(class)
		}
	}
	if t.Scav != nil {
		k.ScavHighWater, k.ScavLowWater = t.Scav.Watermarks()
		k.ScavRate, k.ScavBurst = t.Scav.Rate()
	}
	return k
}

// Apply actuates one decision. A false return means the decision named a
// knob this stack cannot move (no cache/scavenger layered, unknown class, or
// a value the layer's own validation rejected) and should be dropped from
// the log.
func (t *CoreTarget) Apply(d Decision) bool {
	switch {
	case d.Knob == KnobEmptyFraction:
		return t.Core.SetEmptyFraction(d.New) == nil
	case d.Knob == KnobSlackK:
		return t.Core.SetSlackK(int(d.New)) == nil
	case d.Knob == KnobScavHighWater:
		if t.Scav == nil {
			return false
		}
		high := int64(d.New)
		return t.Scav.SetWatermarks(high, high/2) == nil
	case d.Knob == KnobScavRate:
		if t.Scav == nil {
			return false
		}
		_, burst := t.Scav.Rate()
		return t.Scav.SetRate(int64(d.New), burst) == nil
	case strings.HasPrefix(d.Knob, KnobMagCapacity+"/"):
		if t.Cache == nil {
			return false
		}
		bs, err := strconv.Atoi(d.Knob[len(KnobMagCapacity)+1:])
		if err != nil {
			return false
		}
		for class := 0; class < t.Cache.NumClasses(); class++ {
			if t.Cache.ClassSize(class) == bs {
				t.Cache.SetCapacity(class, int(d.New))
				return true
			}
		}
		return false
	}
	return false
}

func sortedKeys(m map[int]*ClassStat) []int {
	out := make([]int, 0, len(m))
	for bs := range m {
		out = append(out, bs)
	}
	sort.Ints(out)
	return out
}
