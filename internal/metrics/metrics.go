// Package metrics is the allocator observability layer: instrumented locks,
// periodic occupancy snapshots, Prometheus/JSON export, and a continuous
// invariant auditor.
//
// The paper argues Hoard's scalability by reasoning about lock acquisitions
// and heap occupancy (u/a); this package makes those quantities directly
// observable instead of inferred from simulator cost charges. Everything is
// strictly opt-in: an allocator built without a Registry-wrapped lock
// factory pays zero overhead (no wrapper objects exist at all), and with one
// the per-acquisition cost is two monotonic clock reads plus a handful of
// uncontended atomic adds.
//
// Layering: metrics depends only on internal/env. The allocators never
// import it — the public package (hoard.go) and the experiment harness wrap
// lock factories and wire sampling callbacks, so the allocator code stays
// observability-agnostic.
package metrics

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"hoardgo/internal/env"
)

// LockStats is a snapshot of one instrumented lock's counters.
type LockStats struct {
	// Name is the factory-supplied lock name (e.g. "hoard.heap3").
	Name string `json:"name"`
	// Acquires counts successful acquisitions (Lock and successful
	// TryLock).
	Acquires int64 `json:"acquires"`
	// Contended counts Lock calls that found the lock held and had to
	// wait.
	Contended int64 `json:"contended"`
	// TryMisses counts TryLock calls that found the lock held and gave
	// up — the remote-free fast path's "owner busy, skip the drain nudge"
	// outcome.
	TryMisses int64 `json:"try_misses"`
	// WaitNS is the total wall time Lock callers spent waiting, in
	// nanoseconds.
	WaitNS int64 `json:"wait_ns"`
	// HoldNS is the total wall time the lock was held, in nanoseconds.
	HoldNS int64 `json:"hold_ns"`
}

// Registry creates instrumented locks and aggregates their counters. One
// Registry instruments one allocator.
type Registry struct {
	mu    sync.Mutex
	locks []*lockMetrics
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry { return &Registry{} }

// WrapFactory returns a lock factory whose locks wrap inner's with this
// registry's counters. It works in both environments — the wrapper speaks
// env.Lock — with one documented perturbation in the simulated one: a
// contended acquisition probes TryLock first (that is how contention is
// detected without touching the inner lock's internals), which the simulator
// charges as one extra failed try.
func (r *Registry) WrapFactory(inner env.LockFactory) env.LockFactory {
	return wrapFactory{inner: inner, r: r}
}

type wrapFactory struct {
	inner env.LockFactory
	r     *Registry
}

// NewLock implements env.LockFactory.
func (f wrapFactory) NewLock(name string) env.Lock {
	m := &lockMetrics{name: name, inner: f.inner.NewLock(name)}
	f.r.mu.Lock()
	f.r.locks = append(f.r.locks, m)
	f.r.mu.Unlock()
	return m
}

// LockStats returns a snapshot of every instrumented lock's counters, in
// creation order.
func (r *Registry) LockStats() []LockStats {
	r.mu.Lock()
	locks := r.locks
	r.mu.Unlock()
	out := make([]LockStats, len(locks))
	for i, m := range locks {
		out[i] = m.snapshot()
	}
	return out
}

// TotalLockStats sums every instrumented lock's counters into one record
// (Name "total").
func (r *Registry) TotalLockStats() LockStats {
	total := LockStats{Name: "total"}
	for _, st := range r.LockStats() {
		total.Acquires += st.Acquires
		total.Contended += st.Contended
		total.TryMisses += st.TryMisses
		total.WaitNS += st.WaitNS
		total.HoldNS += st.HoldNS
	}
	return total
}

// lockMetrics wraps one env.Lock with counters.
type lockMetrics struct {
	name  string
	inner env.Lock

	acquires  atomic.Int64
	contended atomic.Int64
	tryMisses atomic.Int64
	waitNS    atomic.Int64
	holdNS    atomic.Int64

	// acquiredAt is written by the holder just after acquiring and read
	// by it in Unlock; the inner lock's mutual exclusion orders the
	// accesses, so a plain field would be correct, but the race detector
	// cannot see through the env.Lock interface to the simulated lock's
	// scheduler-channel ordering, so it stays atomic.
	acquiredAt atomic.Int64
}

// Lock implements env.Lock. Contention is detected with a TryLock probe:
// exact, environment-independent, and cheaper than timing every acquisition
// against a threshold.
func (l *lockMetrics) Lock(e env.Env) {
	if l.inner.TryLock(e) {
		l.acquires.Add(1)
		l.acquiredAt.Store(time.Now().UnixNano())
		return
	}
	start := time.Now()
	l.inner.Lock(e)
	now := time.Now()
	l.contended.Add(1)
	l.waitNS.Add(now.Sub(start).Nanoseconds())
	l.acquires.Add(1)
	l.acquiredAt.Store(now.UnixNano())
}

// Unlock implements env.Lock.
func (l *lockMetrics) Unlock(e env.Env) {
	l.holdNS.Add(time.Now().UnixNano() - l.acquiredAt.Load())
	l.inner.Unlock(e)
}

// TryLock implements env.Lock.
func (l *lockMetrics) TryLock(e env.Env) bool {
	if !l.inner.TryLock(e) {
		l.tryMisses.Add(1)
		return false
	}
	l.acquires.Add(1)
	l.acquiredAt.Store(time.Now().UnixNano())
	return true
}

func (l *lockMetrics) snapshot() LockStats {
	return LockStats{
		Name:      l.name,
		Acquires:  l.acquires.Load(),
		Contended: l.contended.Load(),
		TryMisses: l.tryMisses.Load(),
		WaitNS:    l.waitNS.Load(),
		HoldNS:    l.holdNS.Load(),
	}
}

// SortLockStats orders stats by descending wait time, then descending
// acquisitions, then name — the "worst lock first" view for reports.
func SortLockStats(stats []LockStats) {
	sort.Slice(stats, func(i, j int) bool {
		if stats[i].WaitNS != stats[j].WaitNS {
			return stats[i].WaitNS > stats[j].WaitNS
		}
		if stats[i].Acquires != stats[j].Acquires {
			return stats[i].Acquires > stats[j].Acquires
		}
		return stats[i].Name < stats[j].Name
	})
}
