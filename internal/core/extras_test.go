package core

import (
	"strings"
	"testing"

	"hoardgo/internal/alloc"
	"hoardgo/internal/env"
)

func TestMallocAligned(t *testing.T) {
	h := newHoard(Config{})
	th := thread(h, 0)
	var ps []alloc.Ptr
	for _, tc := range []struct{ size, align int }{
		{1, 1}, {10, 8}, {100, 16}, {100, 64}, {100, 256},
		{1000, 512}, {3000, 1024}, {100, 4096}, {10000, 4096},
		{100, 65536}, {200000, 16384},
	} {
		p := h.MallocAligned(th, tc.size, tc.align)
		if uint64(p)%uint64(tc.align) != 0 {
			t.Fatalf("MallocAligned(%d, %d) = %#x: misaligned", tc.size, tc.align, uint64(p))
		}
		if us := h.UsableSize(p); us < tc.size {
			t.Fatalf("MallocAligned(%d, %d): usable %d", tc.size, tc.align, us)
		}
		buf := h.Bytes(p, tc.size)
		for i := range buf {
			buf[i] = byte(tc.align)
		}
		ps = append(ps, p)
	}
	for _, p := range ps {
		h.Free(th, p)
	}
	if got := h.Stats().LiveBytes; got != 0 {
		t.Fatalf("LiveBytes = %d", got)
	}
	if err := h.CheckIntegrity(); err != nil {
		t.Fatal(err)
	}
}

func TestMallocAlignedBadAlign(t *testing.T) {
	h := newHoard(Config{})
	th := thread(h, 0)
	for _, align := range []int{0, -8, 3, 48} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("align %d accepted", align)
				}
			}()
			h.MallocAligned(th, 64, align)
		}()
	}
}

func TestDescribeAndHeaps(t *testing.T) {
	h := newHoard(Config{Heaps: 3})
	th := thread(h, 0)
	var ps []alloc.Ptr
	for i := 0; i < 500; i++ {
		ps = append(ps, h.Malloc(th, 64))
	}
	e := &env.RealEnv{}
	var sb strings.Builder
	h.Describe(&sb, e)
	out := sb.String()
	for _, want := range []string{"hoard: S=8192", "mallocs", "heap 1", "utilization"} {
		if !strings.Contains(out, want) {
			t.Fatalf("Describe output missing %q:\n%s", want, out)
		}
	}
	infos := h.Heaps(e)
	if len(infos) != 4 {
		t.Fatalf("Heaps returned %d entries, want 4", len(infos))
	}
	if infos[0].ID != 0 {
		t.Fatalf("first heap id %d, want global", infos[0].ID)
	}
	var totalU int64
	for _, hi := range infos {
		totalU += hi.U
	}
	if want := h.Stats().LiveBytes; totalU != want {
		t.Fatalf("sum of heap u = %d, live = %d", totalU, want)
	}
	for _, p := range ps {
		h.Free(th, p)
	}
}
