package core

import (
	"math/rand"
	"testing"

	"hoardgo/internal/alloc"
)

// TestIntegrityCapacityWasteNotAViolation pins a seed (found by
// TestPropertyBlowupBoundContinuous's quick.Check) that drives a heap into
// the benign no-victim state: its one superblock ends 4/5 blocks full of a
// class whose block size (1416) does not divide S, so it is 80% full by
// blocks — not evictable, not AllFull — yet 69% full by bytes, below the
// (1-f) = 75% line. CheckIntegrity used to call that an invariant violation
// with no evictable superblock; it is capacity waste, which the
// usable-bytes re-check now discounts.
func TestIntegrityCapacityWasteNotAViolation(t *testing.T) {
	const seed = int64(-6553468372293536302)
	rng := rand.New(rand.NewSource(seed))
	h := New(Config{EmptyFraction: 0.25, K: KNone, Heaps: 4}, lf)
	threads := make([]*alloc.Thread, 4)
	for i := range threads {
		threads[i] = thread(h, i)
	}
	var live []alloc.Ptr
	for op := 0; op < 1500; op++ {
		if len(live) == 0 || rng.Intn(2) == 0 {
			ti := rng.Intn(len(threads))
			sz := 1 + rng.Intn(4096)
			live = append(live, h.Malloc(threads[ti], sz))
		} else {
			i := rng.Intn(len(live))
			h.Free(threads[rng.Intn(len(threads))], live[i])
			live[i] = live[len(live)-1]
			live = live[:len(live)-1]
		}
	}
	if err := h.CheckIntegrity(); err != nil {
		t.Fatalf("capacity-waste state flagged as corruption: %v", err)
	}
	// The sibling checks must keep their teeth: drain everything and the
	// allocator still verifies clean end to end.
	for _, p := range live {
		h.Free(threads[0], p)
	}
	if err := h.CheckIntegrity(); err != nil {
		t.Fatalf("post-drain integrity: %v", err)
	}
	if got := h.Stats().LiveBytes; got != 0 {
		t.Fatalf("post-drain live = %d, want 0", got)
	}
}
