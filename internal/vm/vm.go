// Package vm provides a simulated operating-system memory interface.
//
// Go's runtime owns real allocation, so this reproduction of Hoard manages
// an explicit, simulated 48-bit address space instead of interposing on
// malloc. Allocators reserve page-aligned spans (the moral equivalent of
// mmap/sbrk), hand out addresses inside them, and look spans back up from
// raw addresses on free — exactly the page-map technique production
// allocators use. Every span is backed by a real Go byte slab, so the memory
// handed out is genuinely readable and writable and blocks that share a
// simulated cache line also share physical memory.
//
// The Space tracks committed bytes and their high-water mark, which is what
// the paper's fragmentation and blowup experiments measure.
package vm

import (
	"fmt"
	"sync"
	"sync/atomic"
)

const (
	// PageShift is log2 of the page size of the simulated OS.
	PageShift = 12
	// PageSize is the page size of the simulated OS (4 KiB, as on the
	// paper's UltraSPARC/Solaris platform).
	PageSize = 1 << PageShift

	// l1Bits and l2Bits size the two-level page table. Together with
	// PageShift they cover a 2^(11+14+12) = 128 GiB address space, far
	// beyond any experiment here.
	l1Bits = 11
	l2Bits = 14

	l1Size = 1 << l1Bits
	l2Size = 1 << l2Bits

	// baseAddr is the first address ever handed out. Zero is reserved so
	// that 0 can serve as the allocator's nil.
	baseAddr = 1 << 20

	maxAddr = 1 << (l1Bits + l2Bits + PageShift)
)

// Span is a contiguous page-aligned region of the simulated address space,
// obtained from a Space and backed by real memory.
type Span struct {
	// Base is the first simulated address of the span.
	Base uint64
	// Len is the usable length in bytes (a multiple of the page size).
	Len int
	// Owner is an arbitrary tag attached by the reserving allocator,
	// typically its superblock or large-object header. It is set before
	// the span becomes visible to Lookup and must not be mutated while
	// the span is live.
	Owner any

	data []byte
}

// Bytes returns a view of n bytes of the span's backing memory starting at
// byte offset off. It panics if the range is out of bounds.
func (sp *Span) Bytes(off, n int) []byte {
	return sp.data[off : off+n : off+n]
}

// Data returns the span's entire backing memory.
func (sp *Span) Data() []byte { return sp.data }

// End returns the address one past the last byte of the span.
func (sp *Span) End() uint64 { return sp.Base + uint64(sp.Len) }

// Stats is a snapshot of a Space's accounting.
type Stats struct {
	// Committed is the number of bytes currently reserved and backed.
	Committed int64
	// PeakCommitted is the high-water mark of Committed. This is the "max
	// heap" measurement used by the paper's fragmentation table.
	PeakCommitted int64
	// Reserves and Releases count Reserve and Release calls.
	Reserves, Releases int64
	// Recycled counts Reserve calls satisfied from the recycle pool
	// rather than fresh backing memory.
	Recycled int64
}

// Space is a simulated OS address space. All methods are safe for concurrent
// use; Lookup and Bytes are lock-free.
type Space struct {
	mu      sync.Mutex
	next    uint64
	pool    map[int][]*Span // released spans by length, for reuse
	poisons bool

	committed atomic.Int64
	peak      atomic.Int64
	reserves  atomic.Int64
	releases  atomic.Int64
	recycled  atomic.Int64

	l1 [l1Size]atomic.Pointer[l2node]
}

type l2node [l2Size]atomic.Pointer[Span]

// New returns an empty Space.
func New() *Space {
	return &Space{next: baseAddr, pool: make(map[int][]*Span)}
}

// SetPoison controls whether released span memory is overwritten with a
// poison pattern (0xDB) before reuse, to flush out use-after-free bugs in
// tests. It is off by default.
func (s *Space) SetPoison(on bool) {
	s.mu.Lock()
	s.poisons = on
	s.mu.Unlock()
}

// Reserve returns a new span of size bytes (rounded up to whole pages) whose
// base address is a multiple of align. align must be zero or a power of two;
// zero means page alignment. The owner tag is attached before the span is
// published. Reserve panics if size is not positive or align is invalid.
func (s *Space) Reserve(size, align int, owner any) *Span {
	if size <= 0 {
		panic(fmt.Sprintf("vm: Reserve size %d", size))
	}
	if align == 0 {
		align = PageSize
	}
	if align&(align-1) != 0 {
		panic(fmt.Sprintf("vm: Reserve align %d not a power of two", align))
	}
	if align < PageSize {
		align = PageSize
	}
	size = (size + PageSize - 1) &^ (PageSize - 1)

	s.mu.Lock()
	sp := s.takeFromPoolLocked(size, align)
	if sp == nil {
		base := (s.next + uint64(align) - 1) &^ (uint64(align) - 1)
		if base+uint64(size) > maxAddr {
			s.mu.Unlock()
			panic("vm: simulated address space exhausted")
		}
		s.next = base + uint64(size)
		sp = &Span{Base: base, Len: size, data: make([]byte, size)}
	}
	sp.Owner = owner
	s.publishLocked(sp)
	s.mu.Unlock()

	s.reserves.Add(1)
	c := s.committed.Add(int64(size))
	for {
		p := s.peak.Load()
		if c <= p || s.peak.CompareAndSwap(p, c) {
			break
		}
	}
	return sp
}

// takeFromPoolLocked pops a recycled span of exactly the given size whose
// base satisfies align, if one exists.
func (s *Space) takeFromPoolLocked(size, align int) *Span {
	list := s.pool[size]
	for i, sp := range list {
		if sp.Base&(uint64(align)-1) == 0 {
			list[i] = list[len(list)-1]
			s.pool[size] = list[:len(list)-1]
			s.recycled.Add(1)
			return sp
		}
	}
	return nil
}

// Release returns a span to the simulated OS. The span's addresses become
// invalid: Lookup returns nil for them until the region is reserved again.
func (s *Space) Release(sp *Span) {
	if sp == nil {
		panic("vm: Release(nil)")
	}
	s.mu.Lock()
	s.unpublishLocked(sp)
	sp.Owner = nil
	if s.poisons {
		for i := range sp.data {
			sp.data[i] = 0xDB
		}
	}
	s.pool[sp.Len] = append(s.pool[sp.Len], sp)
	s.mu.Unlock()

	s.releases.Add(1)
	s.committed.Add(int64(-sp.Len))
}

func (s *Space) publishLocked(sp *Span) {
	for a := sp.Base; a < sp.End(); a += PageSize {
		s.node(a).pageSlot(a).Store(sp)
	}
}

func (s *Space) unpublishLocked(sp *Span) {
	for a := sp.Base; a < sp.End(); a += PageSize {
		s.node(a).pageSlot(a).Store(nil)
	}
}

// node returns the level-2 table covering addr, creating it if needed.
// Creation races are benign double-stores under s.mu; reads are lock-free.
func (s *Space) node(addr uint64) *l2node {
	i := addr >> (PageShift + l2Bits)
	n := s.l1[i].Load()
	if n == nil {
		n = new(l2node)
		if !s.l1[i].CompareAndSwap(nil, n) {
			n = s.l1[i].Load()
		}
	}
	return n
}

func (n *l2node) pageSlot(addr uint64) *atomic.Pointer[Span] {
	return &n[(addr>>PageShift)&(l2Size-1)]
}

// Lookup returns the span containing addr, or nil if addr is not part of any
// live span. It is lock-free and safe for concurrent use.
func (s *Space) Lookup(addr uint64) *Span {
	if addr >= maxAddr {
		return nil
	}
	n := s.l1[addr>>(PageShift+l2Bits)].Load()
	if n == nil {
		return nil
	}
	sp := n.pageSlot(addr).Load()
	if sp == nil || addr < sp.Base || addr >= sp.End() {
		return nil
	}
	return sp
}

// Bytes returns a view of n bytes of backing memory at the simulated address
// addr. It panics if the range is not fully inside one live span, which
// always indicates an allocator bug or a use-after-free.
func (s *Space) Bytes(addr uint64, n int) []byte {
	sp := s.Lookup(addr)
	if sp == nil {
		panic(fmt.Sprintf("vm: Bytes(%#x, %d): no span at address", addr, n))
	}
	off := int(addr - sp.Base)
	if off+n > sp.Len {
		panic(fmt.Sprintf("vm: Bytes(%#x, %d): range escapes span [%#x,%#x)", addr, n, sp.Base, sp.End()))
	}
	return sp.data[off : off+n : off+n]
}

// Stats returns a snapshot of the space's accounting.
func (s *Space) Stats() Stats {
	return Stats{
		Committed:     s.committed.Load(),
		PeakCommitted: s.peak.Load(),
		Reserves:      s.reserves.Load(),
		Releases:      s.releases.Load(),
		Recycled:      s.recycled.Load(),
	}
}

// Committed returns the number of bytes currently committed.
func (s *Space) Committed() int64 { return s.committed.Load() }

// PeakCommitted returns the high-water mark of committed bytes.
func (s *Space) PeakCommitted() int64 { return s.peak.Load() }

// ResetPeak lowers the peak-committed mark to the current committed value,
// so an experiment can measure its own high-water mark in a reused space.
func (s *Space) ResetPeak() { s.peak.Store(s.committed.Load()) }
