package core

import (
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"

	"hoardgo/internal/alloc"
	"hoardgo/internal/env"
)

// TestRetuneFKUnderLoad flips the empty fraction f and slack K across their
// full ranges while a producer-consumer workload runs — the satellite
// regression for making those knobs runtime-adjustable: the invariant check
// reads both atomically, so a mid-flight retune may change which frees
// trigger an eviction pass but must never corrupt heap state or strand a
// superblock. Run under -race this also proves the accessor plumbing has no
// data race with the lock-free free paths that consult the invariant.
func TestRetuneFKUnderLoad(t *testing.T) {
	h := newHoard(Config{Heaps: 4})
	const producers, consumers = 3, 3
	const opsPer = 4000

	ch := make(chan alloc.Ptr, 256)
	var wg sync.WaitGroup
	for w := 0; w < producers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			th := thread(h, w)
			rng := rand.New(rand.NewSource(int64(w)))
			for i := 0; i < opsPer; i++ {
				p := h.Malloc(th, 1+rng.Intn(500))
				h.Bytes(p, 1)[0] = byte(w)
				ch <- p
			}
		}(w)
	}
	var consumed sync.WaitGroup
	for w := 0; w < consumers; w++ {
		consumed.Add(1)
		go func(w int) {
			defer consumed.Done()
			th := thread(h, producers+w)
			for p := range ch {
				h.Free(th, p)
			}
		}(w)
	}

	// The tuner: sweep f across (0,1) and K across [0,8] as fast as the
	// scheduler allows, exactly what the self-tuning controller does at a
	// far lower rate.
	var stop atomic.Bool
	var tuner sync.WaitGroup
	tuner.Add(1)
	go func() {
		defer tuner.Done()
		fs := []float64{0.1, 0.25, 0.5, 0.75, 0.9}
		for i := 0; !stop.Load(); i++ {
			if err := h.SetEmptyFraction(fs[i%len(fs)]); err != nil {
				t.Errorf("SetEmptyFraction: %v", err)
				return
			}
			if err := h.SetSlackK(i % 9); err != nil {
				t.Errorf("SetSlackK: %v", err)
				return
			}
		}
	}()

	wg.Wait()
	close(ch)
	consumed.Wait()
	stop.Store(true)
	tuner.Wait()

	// Pin a known configuration, then check nothing was lost: every block
	// was freed, the books balance, and no superblock leaked out of the
	// heap lists (CheckIntegrity walks them all).
	if err := h.SetEmptyFraction(0.25); err != nil {
		t.Fatal(err)
	}
	if err := h.SetSlackK(1); err != nil {
		t.Fatal(err)
	}
	h.Reconcile(&env.RealEnv{ID: -1})
	st := h.Stats()
	if st.Mallocs != st.Frees {
		t.Fatalf("mallocs %d != frees %d after drain", st.Mallocs, st.Frees)
	}
	if st.LiveBytes != 0 {
		t.Fatalf("LiveBytes %d after drain, want 0", st.LiveBytes)
	}
	if err := h.CheckIntegrity(); err != nil {
		t.Fatalf("CheckIntegrity after retune storm: %v", err)
	}
}

// TestSetEmptyFractionBounds pins the accessor contracts: values outside
// (0,1) and negative K are rejected without touching the heaps.
func TestSetEmptyFractionBounds(t *testing.T) {
	h := newHoard(Config{Heaps: 2})
	for _, f := range []float64{0, 1, -0.5, 1.5} {
		if err := h.SetEmptyFraction(f); err == nil {
			t.Fatalf("SetEmptyFraction(%v) accepted", f)
		}
	}
	if err := h.SetSlackK(-1); err == nil {
		t.Fatal("SetSlackK(-1) accepted")
	}
	if err := h.SetEmptyFraction(0.5); err != nil {
		t.Fatal(err)
	}
	if got := h.EmptyFraction(); got != 0.5 {
		t.Fatalf("EmptyFraction = %v, want 0.5", got)
	}
	if err := h.SetSlackK(3); err != nil {
		t.Fatal(err)
	}
	if got := h.SlackK(); got != 3 {
		t.Fatalf("SlackK = %v, want 3", got)
	}
}
