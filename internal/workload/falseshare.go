package workload

import (
	"hoardgo/internal/alloc"
	"hoardgo/internal/env"
)

// FalseShareConfig parameterizes the paper's two false-sharing
// microbenchmarks, active-false and passive-false. Each thread repeatedly
// obtains one small object, writes it many times, and frees it; the total
// cycle count is fixed and divided across threads, so with no
// allocator-induced false sharing, speedup is linear.
type FalseShareConfig struct {
	// Threads is the worker count.
	Threads int
	// Iterations is the total alloc/write/free cycles, divided evenly
	// across threads (strong scaling, as the original cache-thrash and
	// cache-scratch benchmarks divide their iteration count).
	Iterations int
	// ObjSize is the object size (8 bytes in the paper — several objects
	// fit in one cache line).
	ObjSize int
	// Writes is the number of times each object is written before being
	// freed (the paper uses a large count so coherence dominates).
	Writes int
	// SeedObjects is the per-thread count of pre-distributed objects for
	// passive-false (allocated by thread 0, freed by the others).
	SeedObjects int
}

// DefaultFalseShare mirrors the paper's shape at simulation-friendly scale.
func DefaultFalseShare(threads int) FalseShareConfig {
	return FalseShareConfig{
		Threads:     threads,
		Iterations:  2800,
		ObjSize:     8,
		Writes:      500,
		SeedObjects: 32,
	}
}

// ActiveFalse runs the active false-sharing benchmark: threads allocate
// concurrently, so an allocator that carves one cache line across threads
// (a serial heap) actively induces false sharing, while Hoard's
// per-heap superblocks keep each thread's objects on its own lines.
func ActiveFalse(h *Harness, cfg FalseShareConfig) Result {
	perThread := cfg.Iterations / cfg.Threads
	if perThread < 1 {
		perThread = 1
	}
	h.Par(cfg.Threads, func(id int, e env.Env, t *alloc.Thread) {
		a := h.Allocator()
		for it := 0; it < perThread; it++ {
			p := a.Malloc(t, cfg.ObjSize)
			h.OnAlloc(cfg.ObjSize)
			for w := 0; w < cfg.Writes; w++ {
				WriteObj(a, e, p, cfg.ObjSize)
			}
			a.Free(t, p)
			h.OnFree(cfg.ObjSize)
		}
	})
	ops := int64(cfg.Threads) * int64(perThread) * int64(cfg.Writes)
	return h.Result(cfg.Threads, ops)
}

// PassiveFalse runs the passive false-sharing benchmark: thread 0 allocates
// a batch of adjacent objects and hands them out; the workers free them and
// then run the write loop. An allocator that lets freed blocks migrate to
// the freeing thread's heap (pure private heaps, thresholds) re-issues
// line-mates to different threads — passively inducing false sharing —
// while Hoard returns frees to the owning superblock.
func PassiveFalse(h *Harness, cfg FalseShareConfig) Result {
	perThread := cfg.Iterations / cfg.Threads
	if perThread < 1 {
		perThread = 1
	}
	shared := make([]alloc.Ptr, cfg.Threads*cfg.SeedObjects)
	barrier := h.NewBarrier(cfg.Threads)
	h.Par(cfg.Threads, func(id int, e env.Env, t *alloc.Thread) {
		a := h.Allocator()
		if id == 0 {
			// The distributor: adjacent allocations, handed round-robin
			// so neighbors go to different threads.
			for i := range shared {
				shared[i] = a.Malloc(t, cfg.ObjSize)
				h.OnAlloc(cfg.ObjSize)
			}
		}
		barrier.Wait(e)
		// Everyone frees their handed-down objects; allocators with
		// thread-local object recycling now hold line-sharing blocks.
		for i := id; i < len(shared); i += cfg.Threads {
			a.Free(t, shared[i])
			h.OnFree(cfg.ObjSize)
		}
		barrier.Wait(e)
		for it := 0; it < perThread; it++ {
			p := a.Malloc(t, cfg.ObjSize)
			h.OnAlloc(cfg.ObjSize)
			for w := 0; w < cfg.Writes; w++ {
				WriteObj(a, e, p, cfg.ObjSize)
			}
			a.Free(t, p)
			h.OnFree(cfg.ObjSize)
		}
	})
	ops := int64(cfg.Threads) * int64(perThread) * int64(cfg.Writes)
	return h.Result(cfg.Threads, ops)
}
