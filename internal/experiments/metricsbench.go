package experiments

import (
	"fmt"
	"strings"
	"time"

	"hoardgo/internal/alloc"
	"hoardgo/internal/core"
	"hoardgo/internal/env"
	"hoardgo/internal/metrics"
	"hoardgo/internal/tcache"
)

// This file produces the observability timeline artifact behind hoardbench's
// -metrics flag: a real-mode multi-threaded churn run on the instrumented
// hoard+tcache stack, sampled into a ring buffer while a background auditor
// re-checks the allocator's invariants, serialized as JSON with the final
// Prometheus scrape embedded. Unlike the other artifacts this one is
// wall-clock sampled, so sample contents vary run to run; its value is the
// shape of the timeline and the lock/occupancy counters, not exact bytes.

// MetricsTimeline is the -metrics artifact.
type MetricsTimeline struct {
	Schema   string `json:"schema"`
	Scenario string `json:"scenario"`
	// Workers and Rounds parameterize the churn workload.
	Workers int `json:"workers"`
	Rounds  int `json:"rounds"`
	// IntervalMS is the sampling and audit interval.
	IntervalMS float64 `json:"interval_ms"`
	// Samples is the occupancy/lock timeline, oldest first.
	Samples []metrics.Snapshot `json:"samples"`
	// Prometheus is the final post-run scrape in text exposition format.
	Prometheus string `json:"prometheus"`
	// AuditPasses and AuditFailures count the background invariant audits
	// that ran concurrently with the churn. AuditFailures must be zero.
	AuditPasses   int64 `json:"audit_passes"`
	AuditFailures int64 `json:"audit_failures"`
}

// snapshotStack observes an instrumented hoard+tcache stack: allocator
// counters, per-heap occupancy (with per-class detail), magazine fill, and
// lock counters. Safe under load.
func snapshotStack(tc *tcache.Allocator, h *core.Hoard, reg *metrics.Registry) metrics.Snapshot {
	s := metrics.NewSnapshot(tc.Name())
	st := tc.Stats()
	s.Counters["mallocs_total"] = st.Mallocs
	s.Counters["frees_total"] = st.Frees
	s.Counters["live_bytes"] = st.LiveBytes
	s.Counters["peak_live_bytes"] = st.PeakLiveBytes
	s.Counters["remote_frees_total"] = st.RemoteFrees
	s.Counters["remote_fast_frees_total"] = st.RemoteFastFrees
	s.Counters["remote_drains_total"] = st.RemoteDrains
	s.Counters["batch_refills_total"] = st.BatchRefills
	s.Counters["batch_flushes_total"] = st.BatchFlushes
	s.Counters["superblock_moves_total"] = st.SuperblockMoves
	for id, occ := range h.SampleHeaps(&env.RealEnv{ID: -1}, true) {
		hs := metrics.HeapSample{
			ID:           id,
			U:            occ.U,
			A:            occ.A,
			Superblocks:  occ.Superblocks,
			PendingBytes: occ.PendingBytes,
			Groups:       occ.Groups[:],
		}
		for _, c := range occ.Classes {
			hs.Classes = append(hs.Classes, metrics.ClassSample{
				Class:       c.Class,
				BlockSize:   c.BlockSize,
				Superblocks: c.Superblocks,
				InUseBytes:  c.InUseBytes,
				Groups:      c.Groups[:],
			})
		}
		s.Heaps = append(s.Heaps, hs)
	}
	s.MagazineBytes = tc.MagazineBytes()
	s.Locks = reg.LockStats()
	return s
}

// CollectMetricsTimeline runs the instrumented churn scenario: workers
// goroutines allocate mixed-size bursts and hand half of every burst to
// their ring neighbor to free (driving remote frees, magazine flushes, and
// heap-lock contention), while a Collector samples occupancy and an Auditor
// re-checks the invariants, both every interval. The error is non-nil if any
// audit or the final integrity check failed.
func CollectMetricsTimeline(workers, rounds int, interval time.Duration) (MetricsTimeline, error) {
	reg := metrics.NewRegistry()
	h := core.New(core.Config{Heaps: workers}, reg.WrapFactory(env.RealLockFactory{}))
	tc := tcache.New(h, tcache.Config{Capacity: 32})

	collector := metrics.NewCollector(256, func() metrics.Snapshot {
		return snapshotStack(tc, h, reg)
	})
	auditor := metrics.NewAuditor(func() error {
		return h.Audit(&env.RealEnv{ID: -1})
	})
	collector.Start(interval)
	auditor.Start(interval)

	const burst = 64
	// Ring handoff channels, buffered so sends never block: every round each
	// worker sends one batch and frees the batches received so far.
	chans := make([]chan []alloc.Ptr, workers)
	for i := range chans {
		chans[i] = make(chan []alloc.Ptr, rounds+1)
	}
	done := make(chan *alloc.Thread, workers)
	for w := 0; w < workers; w++ {
		go func(id int) {
			th := tc.NewThread(&env.RealEnv{ID: id})
			sizes := [...]int{16, 64, 72, 256, 1024, 4096}
			for r := 0; r < rounds; r++ {
				ps := make([]alloc.Ptr, burst)
				for i := range ps {
					ps[i] = tc.Malloc(th, sizes[(id+i+r)%len(sizes)])
				}
				// Neighbor frees the first half (cross-thread), we free
				// the rest locally.
				chans[(id+1)%workers] <- ps[:burst/2]
				for _, p := range ps[burst/2:] {
					tc.Free(th, p)
				}
				select {
				case in := <-chans[id]:
					for _, p := range in {
						tc.Free(th, p)
					}
				default: // neighbor hasn't produced yet; catch up later
				}
			}
			close(chans[(id+1)%workers])
			for in := range chans[id] {
				for _, p := range in {
					tc.Free(th, p)
				}
			}
			done <- th
		}(w)
	}
	var threads []*alloc.Thread
	for w := 0; w < workers; w++ {
		threads = append(threads, <-done)
	}

	auditErr := auditor.Stop()
	collector.Stop()

	// Quiesce: return every magazine, reconcile remote stacks, and run the
	// full (stricter than the auditor's) integrity check.
	for _, th := range threads {
		tc.FlushThread(th)
	}
	h.Reconcile(&env.RealEnv{ID: -1})
	finalErr := tc.CheckIntegrity()

	var prom strings.Builder
	if err := snapshotStack(tc, h, reg).WritePrometheus(&prom); err != nil {
		return MetricsTimeline{}, err
	}
	tl := MetricsTimeline{
		Schema:        "hoardgo-bench/pr4-metrics/v1",
		Scenario:      "ring-churn",
		Workers:       workers,
		Rounds:        rounds,
		IntervalMS:    float64(interval) / float64(time.Millisecond),
		Samples:       collector.Snapshots(),
		Prometheus:    prom.String(),
		AuditPasses:   auditor.Passes(),
		AuditFailures: auditor.Failures(),
	}
	switch {
	case auditErr != nil:
		return tl, fmt.Errorf("metrics timeline: audit under load: %w", auditErr)
	case finalErr != nil:
		return tl, fmt.Errorf("metrics timeline: final integrity: %w", finalErr)
	}
	return tl, nil
}
