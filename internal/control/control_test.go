package control

import (
	"strings"
	"testing"
)

// mkSample builds a cumulative sample with enough traffic to clear the
// idle gate; the per-signal knobs are expressed as deltas applied on top of
// a base of 10_000 ops per tick.
type tickShape struct {
	ops          int64 // mallocs+frees delta (split evenly)
	heapAcq      int64 // per-proc heap lock acquisitions delta
	heapCont     int64 // contended subset
	moves        int64 // superblock moves + global hits delta
	refills      int64 // magazine batch refills + flushes delta
	live         int64 // gauge
	footprint    int64 // gauge
	backlog      int64 // gauge
	decommits    int64 // delta
	recommits    int64 // delta
	classInUse   int64 // gauge: in-use bytes of the one sampled class
	classHeld    int64 // gauge: held bytes of the one sampled class
	classSize    int
	classSuperbl int
}

// advance folds one tick's shape onto a running cumulative sample.
func advance(prev Sample, sh tickShape) Sample {
	s := prev
	s.WhenNS += 1e6
	s.Mallocs += sh.ops / 2
	s.Frees += sh.ops - sh.ops/2
	s.HeapAcquires += sh.heapAcq
	s.HeapContended += sh.heapCont
	s.SuperblockMoves += sh.moves
	s.BatchRefills += sh.refills
	s.Decommits += sh.decommits
	s.Recommits += sh.recommits
	s.LiveBytes = sh.live
	s.FootprintBytes = sh.footprint
	s.GlobalEmptyBytes = sh.backlog
	if sh.classSize != 0 {
		s.Classes = []ClassStat{{
			BlockSize:   sh.classSize,
			Superblocks: sh.classSuperbl,
			HeldBytes:   sh.classHeld,
			InUseBytes:  sh.classInUse,
		}}
	} else {
		s.Classes = nil
	}
	return s
}

func baseKnobs() Knobs {
	return Knobs{
		EmptyFraction: 0.25,
		SlackK:        1,
		MagCapacity:   map[int]int{64: 32},
		ScavHighWater: 256 << 10,
		ScavLowWater:  128 << 10,
		ScavRate:      64 << 20,
		ScavBurst:     256 << 10,
	}
}

// healthy is a steady tick shape no rule should fire on: modest lock
// traffic, balanced fragmentation, footprint close to live.
func healthy() tickShape {
	return tickShape{
		ops: 10000, heapAcq: 200, heapCont: 2,
		live: 1 << 20, footprint: 1<<20 + 1<<18, backlog: 0,
		classSize: 64, classSuperbl: 16, classHeld: 16 * 8192, classInUse: 16 * 8192 * 6 / 10,
	}
}

// prime feeds the tuner its baseline sample and returns the cumulative
// state; the first Decide call is always idle. Manual-pin corrections are
// the only decisions an idle tick may emit.
func prime(t *testing.T, tn *Tuner, k Knobs) Sample {
	t.Helper()
	s := advance(Sample{WhenNS: 1}, healthy())
	ds, _, idle := tn.Decide(s, k)
	if !idle {
		t.Fatalf("priming tick not idle (decisions %v)", ds)
	}
	for _, d := range ds {
		if d.Reason != "manual pin" {
			t.Fatalf("priming tick emitted rule decision %v", d)
		}
	}
	return s
}

func findKnob(ds []Decision, knob string) (Decision, bool) {
	for _, d := range ds {
		if d.Knob == knob {
			return d, true
		}
	}
	return Decision{}, false
}

func TestMagazineWidensOnContentionLowFrag(t *testing.T) {
	tn := NewTuner(Config{})
	k := baseKnobs()
	s := prime(t, tn, k)

	sh := healthy()
	sh.heapAcq, sh.heapCont = 2000, 400 // 20% contended
	sh.classInUse = sh.classHeld * 9 / 10
	s = advance(s, sh)
	ds, sig, idle := tn.Decide(s, k)
	if idle {
		t.Fatalf("tick idle with %d ops", sig.Ops)
	}
	d, ok := findKnob(ds, MagKnob(64))
	if !ok {
		t.Fatalf("no magazine decision in %v (signals %+v)", ds, sig)
	}
	if d.Old != 32 || d.New != 64 {
		t.Fatalf("magazine decision %v, want 32 -> 64", d)
	}
}

func TestMagazineWidensOnLockRateWithoutContention(t *testing.T) {
	// One-CPU regime: locks are never contended (the owner is always
	// runnable) but every op still visits the heap lock. The widen rule
	// must fire on lock traffic per op alone.
	tn := NewTuner(Config{})
	k := baseKnobs()
	s := prime(t, tn, k)

	sh := healthy()
	sh.heapAcq, sh.heapCont = 5000, 0 // 0.5 locks/op, zero contention
	sh.classInUse = sh.classHeld * 9 / 10
	s = advance(s, sh)
	ds, sig, _ := tn.Decide(s, k)
	if d, ok := findKnob(ds, MagKnob(64)); !ok || d.New != 64 {
		t.Fatalf("lock-rate widen missing: decisions %v, signals %+v", ds, sig)
	}
}

func TestMagazineWidensOnRefillRate(t *testing.T) {
	// Lock-free core regime: the heap locks are barely touched because the
	// warm paths avoid them, yet the undersized magazines pay a batch
	// transfer every couple of ops. The widen rule must fire on the
	// refill/flush rate alone.
	tn := NewTuner(Config{})
	k := baseKnobs()
	s := prime(t, tn, k)

	sh := healthy()
	sh.heapAcq, sh.heapCont = 50, 0 // locks quiet
	sh.refills = 4000               // 0.4 transfers/op
	sh.classInUse = sh.classHeld * 9 / 10
	s = advance(s, sh)
	ds, sig, _ := tn.Decide(s, k)
	if d, ok := findKnob(ds, MagKnob(64)); !ok || d.New != 64 {
		t.Fatalf("refill-rate widen missing: decisions %v, signals %+v", ds, sig)
	}
}

func TestMagazineShrinkBlockedByRefillTraffic(t *testing.T) {
	// High fragmentation normally shrinks the magazine, but not while the
	// magazines are still transferring heavily — shrinking would make the
	// transfer churn worse.
	tn := NewTuner(Config{})
	k := baseKnobs()
	s := prime(t, tn, k)

	sh := healthy()
	sh.heapAcq, sh.heapCont = 50, 0
	sh.refills = 200                 // 0.02 transfers/op: in the hysteresis dead zone
	sh.classInUse = sh.classHeld / 5 // 80% frag
	s = advance(s, sh)
	ds, sig, _ := tn.Decide(s, k)
	if d, ok := findKnob(ds, MagKnob(64)); ok {
		t.Fatalf("magazine moved despite refill traffic in the dead zone: %v (signals %+v)", d, sig)
	}
}

func TestMagazineShrinksOnFragmentationQuietLocks(t *testing.T) {
	tn := NewTuner(Config{})
	k := baseKnobs()
	s := prime(t, tn, k)

	sh := healthy()
	sh.heapAcq, sh.heapCont = 50, 0  // quiet
	sh.classInUse = sh.classHeld / 5 // 80% frag
	s = advance(s, sh)
	ds, sig, _ := tn.Decide(s, k)
	d, ok := findKnob(ds, MagKnob(64))
	if !ok {
		t.Fatalf("no shrink decision in %v (signals %+v)", ds, sig)
	}
	if d.Old != 32 || d.New != 16 {
		t.Fatalf("magazine decision %v, want 32 -> 16", d)
	}
}

func TestMagazineNoActionInDeadZone(t *testing.T) {
	// Between the thresholds — moderate lock traffic, moderate
	// fragmentation — nothing may move in either direction.
	tn := NewTuner(Config{})
	k := baseKnobs()
	s := prime(t, tn, k)

	for i := 0; i < 10; i++ {
		sh := healthy()
		sh.heapAcq, sh.heapCont = 500, 25 // 5% contention, 0.05 locks/op
		sh.classInUse = sh.classHeld * 6 / 10
		s = advance(s, sh)
		ds, _, _ := tn.Decide(s, k)
		if d, ok := findKnob(ds, MagKnob(64)); ok {
			t.Fatalf("tick %d: dead-zone tick moved magazine: %v", i, d)
		}
	}
}

func TestMagazineClampsAtMax(t *testing.T) {
	tn := NewTuner(Config{CooldownTicks: 1})
	k := baseKnobs()
	k.MagCapacity[64] = 200 // doubling would exceed MaxMagCapacity 256
	s := prime(t, tn, k)

	hot := healthy()
	hot.heapAcq, hot.heapCont = 2000, 400
	hot.classInUse = hot.classHeld * 9 / 10

	s = advance(s, hot)
	ds, _, _ := tn.Decide(s, k)
	d, ok := findKnob(ds, MagKnob(64))
	if !ok || d.New != 256 {
		t.Fatalf("decision %v (found %v), want clamp to 256", d, ok)
	}
	k.MagCapacity[64] = int(d.New)

	// At the clamp, the rule must go silent rather than re-emit 256 -> 256.
	for i := 0; i < 4; i++ {
		s = advance(s, hot)
		if ds, _, _ := tn.Decide(s, k); len(ds) != 0 {
			if d, ok := findKnob(ds, MagKnob(64)); ok {
				t.Fatalf("tick %d: decision at clamp: %v", i, d)
			}
		}
	}
}

func TestCooldownPreventsFlapping(t *testing.T) {
	// Alternate a widen-favoring tick and a shrink-favoring tick. Without
	// hysteresis the knob would flap every tick; with CooldownTicks=4 the
	// knob may move at most once per 5 non-idle ticks.
	tn := NewTuner(Config{})
	k := baseKnobs()
	s := prime(t, tn, k)

	widen := healthy()
	widen.heapAcq, widen.heapCont = 2000, 400
	widen.classInUse = widen.classHeld * 9 / 10
	shrink := healthy()
	shrink.heapAcq, shrink.heapCont = 50, 0
	shrink.classInUse = shrink.classHeld / 5

	var moves []Decision
	for i := 0; i < 12; i++ {
		sh := widen
		if i%2 == 1 {
			sh = shrink
		}
		s = advance(s, sh)
		ds, _, _ := tn.Decide(s, k)
		if d, ok := findKnob(ds, MagKnob(64)); ok {
			moves = append(moves, d)
			k.MagCapacity[64] = int(d.New)
		}
	}
	// 12 ticks with a 4-tick cooldown allows at most ceil(12/5)=3 moves.
	if len(moves) > 3 {
		t.Fatalf("knob flapped: %d moves in 12 ticks: %v", len(moves), moves)
	}
	for i := 1; i < len(moves); i++ {
		if moves[i].Old != moves[i-1].New {
			t.Fatalf("decision chain broken: %v then %v", moves[i-1], moves[i])
		}
	}
}

func TestSlackRaisesOnPingPong(t *testing.T) {
	tn := NewTuner(Config{})
	k := baseKnobs()
	s := prime(t, tn, k)

	sh := healthy()
	sh.moves = 500 // 5% of ops migrate superblocks
	s = advance(s, sh)
	ds, sig, _ := tn.Decide(s, k)
	d, ok := findKnob(ds, KnobSlackK)
	if !ok {
		t.Fatalf("no slack decision in %v (signals %+v)", ds, sig)
	}
	if d.Old != 1 || d.New != 2 {
		t.Fatalf("slack decision %v, want 1 -> 2", d)
	}
	// f should also drift up: footprint is healthy and ping-pong is high.
	if d, ok := findKnob(ds, KnobEmptyFraction); !ok || d.New <= d.Old {
		t.Fatalf("empty-fraction decision %v (found %v), want additive raise", d, ok)
	}
}

func TestSlackLowersOnFootprintDivergence(t *testing.T) {
	tn := NewTuner(Config{})
	k := baseKnobs()
	k.SlackK = 4
	s := prime(t, tn, k)

	sh := healthy()
	sh.live = 1 << 20
	sh.footprint = 3 << 20 // 3x live
	s = advance(s, sh)
	ds, sig, _ := tn.Decide(s, k)
	d, ok := findKnob(ds, KnobSlackK)
	if !ok {
		t.Fatalf("no slack decision in %v (signals %+v)", ds, sig)
	}
	if d.Old != 4 || d.New != 3 {
		t.Fatalf("slack decision %v, want 4 -> 3", d)
	}
	// f backs off multiplicatively under the same pressure.
	if d, ok := findKnob(ds, KnobEmptyFraction); !ok || d.New >= d.Old {
		t.Fatalf("empty-fraction decision %v (found %v), want multiplicative cut", d, ok)
	}
}

func TestSlackClampsAtZero(t *testing.T) {
	tn := NewTuner(Config{CooldownTicks: 1})
	k := baseKnobs()
	k.SlackK = 0
	s := prime(t, tn, k)

	sh := healthy()
	sh.live, sh.footprint = 1<<20, 3<<20
	s = advance(s, sh)
	ds, _, _ := tn.Decide(s, k)
	if d, ok := findKnob(ds, KnobSlackK); ok {
		t.Fatalf("slack moved below clamp: %v", d)
	}
}

func TestFootprintRulesGatedOnLiveBytes(t *testing.T) {
	// A drained allocator (tiny live, big warm reserve) shows a huge
	// footprint ratio that means nothing. The shrink rules must not fire.
	tn := NewTuner(Config{})
	k := baseKnobs()
	k.SlackK = 4
	s := prime(t, tn, k)

	sh := healthy()
	sh.live = 4 << 10 // below MinLiveBytes
	sh.footprint = 2 << 20
	s = advance(s, sh)
	ds, _, _ := tn.Decide(s, k)
	for _, knob := range []string{KnobSlackK, KnobEmptyFraction, KnobScavHighWater} {
		if d, ok := findKnob(ds, knob); ok {
			t.Fatalf("footprint rule fired on drained allocator: %v", d)
		}
	}
}

func TestScavengerEngagesOnBloatWithBacklog(t *testing.T) {
	tn := NewTuner(Config{})
	k := baseKnobs()
	s := prime(t, tn, k)

	sh := healthy()
	sh.live, sh.footprint = 1<<20, 3<<20
	sh.backlog = 1 << 20 // well above the 256 KiB watermark
	s = advance(s, sh)
	ds, sig, _ := tn.Decide(s, k)
	d, ok := findKnob(ds, KnobScavHighWater)
	if !ok {
		t.Fatalf("no watermark decision in %v (signals %+v)", ds, sig)
	}
	if d.New >= d.Old {
		t.Fatalf("watermark decision %v, want lower", d)
	}
	if d, ok := findKnob(ds, KnobScavRate); !ok || d.New <= d.Old {
		t.Fatalf("rate decision %v (found %v), want raise", d, ok)
	}
}

func TestScavengerBacksOffOnRecommitChurn(t *testing.T) {
	tn := NewTuner(Config{})
	k := baseKnobs()
	s := prime(t, tn, k)

	sh := healthy()
	sh.decommits, sh.recommits = 100, 90 // releasing pages we take right back
	s = advance(s, sh)
	ds, sig, _ := tn.Decide(s, k)
	d, ok := findKnob(ds, KnobScavHighWater)
	if !ok {
		t.Fatalf("no watermark decision in %v (signals %+v)", ds, sig)
	}
	if d.New <= d.Old {
		t.Fatalf("watermark decision %v, want raise", d)
	}
	if d, ok := findKnob(ds, KnobScavRate); !ok || d.New >= d.Old {
		t.Fatalf("rate decision %v (found %v), want lower", d, ok)
	}
}

func TestIdleTickMovesNothingAndSkipsCooldown(t *testing.T) {
	tn := NewTuner(Config{})
	k := baseKnobs()
	s := prime(t, tn, k)

	// A hot tick starts the cooldown.
	hot := healthy()
	hot.heapAcq, hot.heapCont = 2000, 400
	hot.classInUse = hot.classHeld * 9 / 10
	s = advance(s, hot)
	if ds, _, _ := tn.Decide(s, k); len(ds) == 0 {
		t.Fatal("hot tick produced no decisions")
	}
	k.MagCapacity[64] = 64

	// Idle ticks (no traffic) must not emit and must not burn cooldown.
	for i := 0; i < 10; i++ {
		s.WhenNS += 1e6
		ds, _, idle := tn.Decide(s, k)
		if !idle || len(ds) != 0 {
			t.Fatalf("idle tick %d: idle=%v decisions=%v", i, idle, ds)
		}
	}
	// First non-idle tick after the idle run is still inside the cooldown
	// window (cooldown decrements only on non-idle ticks).
	s = advance(s, hot)
	if ds, _, _ := tn.Decide(s, k); len(ds) != 0 {
		if d, ok := findKnob(ds, MagKnob(64)); ok {
			t.Fatalf("cooldown decremented across idle ticks: %v", d)
		}
	}
}

func TestManualPinBlocksRuleAndCorrectsDrift(t *testing.T) {
	tn := NewTuner(Config{Manual: map[string]float64{
		KnobSlackK:  2,
		MagKnob(64): 16,
	}})
	k := baseKnobs() // SlackK 1, mag 32: both drifted from their pins
	s := prime(t, tn, k)

	sh := healthy()
	sh.moves = 500 // would raise K if unpinned
	sh.heapAcq, sh.heapCont = 2000, 400
	sh.classInUse = sh.classHeld * 9 / 10 // would widen magazine if unpinned
	s = advance(s, sh)
	ds, _, _ := tn.Decide(s, k)

	d, ok := findKnob(ds, KnobSlackK)
	if !ok || d.New != 2 || d.Reason != "manual pin" {
		t.Fatalf("slack pin correction missing or wrong: %v (found %v)", d, ok)
	}
	d, ok = findKnob(ds, MagKnob(64))
	if !ok || d.New != 16 || d.Reason != "manual pin" {
		t.Fatalf("magazine pin correction missing or wrong: %v (found %v)", d, ok)
	}
}

func TestManualPinAllMagazineClasses(t *testing.T) {
	tn := NewTuner(Config{Manual: map[string]float64{KnobMagCapacity: 8}})
	k := baseKnobs()
	k.MagCapacity = map[int]int{64: 32, 512: 8}
	s := prime(t, tn, k)

	s = advance(s, healthy())
	ds, _, _ := tn.Decide(s, k)
	// The drifted class gets a correction; the already-pinned one does not.
	if d, ok := findKnob(ds, MagKnob(64)); !ok || d.New != 8 {
		t.Fatalf("bare pin did not correct class 64: %v (found %v)", d, ok)
	}
	if d, ok := findKnob(ds, MagKnob(512)); ok {
		t.Fatalf("already-correct class re-pinned: %v", d)
	}
}

func TestValidateRejectsInvertedThresholds(t *testing.T) {
	err := Config{LowContention: 0.5, HighContention: 0.1}.Validate()
	if err == nil || !strings.Contains(err.Error(), "disengage") {
		t.Fatalf("Validate = %v, want inverted-threshold error", err)
	}
}

func TestDecisionReasonsAreSpecific(t *testing.T) {
	tn := NewTuner(Config{})
	k := baseKnobs()
	s := prime(t, tn, k)

	sh := healthy()
	sh.heapAcq, sh.heapCont = 2000, 400
	sh.classInUse = sh.classHeld * 9 / 10
	s = advance(s, sh)
	ds, _, _ := tn.Decide(s, k)
	for _, d := range ds {
		if d.Reason == "" {
			t.Fatalf("decision %v has empty reason", d)
		}
	}
}
