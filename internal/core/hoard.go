// Package core implements the Hoard allocator — the primary contribution of
// Berger, McKinley, Blumofe & Wilson, "Hoard: A Scalable Memory Allocator
// for Multithreaded Applications" (ASPLOS 2000).
//
// Hoard combines one global heap with N per-processor heaps. Threads hash to
// a per-processor heap; memory is managed in superblocks of S bytes holding
// blocks of one size class; frees return blocks to the superblock's owning
// heap (not the freeing thread), and the emptiness invariant
//
//	u(i) >= a(i) - K*S  OR  u(i) >= (1-f)*a(i)
//
// is restored after every free by moving an at-least-f-empty superblock to
// the global heap, where other processors' heaps can reuse it. Together
// these yield O(1) worst-case blowup, avoidance of allocator-induced false
// sharing, and low lock contention (each malloc/free takes one per-processor
// heap lock in the common case).
package core

import (
	"fmt"
	"sync/atomic"
	"time"

	"hoardgo/internal/alloc"
	"hoardgo/internal/env"
	"hoardgo/internal/heap"
	"hoardgo/internal/sizeclass"
	"hoardgo/internal/superblock"
	"hoardgo/internal/vm"
)

// Config parameterizes a Hoard allocator. The zero value selects the
// paper implementation's parameters via Default.
type Config struct {
	// SuperblockSize is S in bytes; must be a power of two and a multiple
	// of the page size. Default 8192.
	SuperblockSize int
	// EmptyFraction is f, the fraction of a heap that may be empty before
	// frees start moving superblocks to the global heap. Default 1/4.
	EmptyFraction float64
	// K is the emptiness invariant's slack, in superblocks. The zero
	// value selects the default of 1; use KNone for a literal zero.
	//
	// With K = 0 a heap must shed superblocks all the way to u = a, so a
	// free-heavy phase evicts superblocks that still hold up to f*S live
	// bytes and their remaining frees serialize on the global heap's
	// lock (measurably so — see the ablate-k experiment). One superblock
	// of slack lets eviction almost always pick a completely empty
	// superblock while preserving the paper's O(1) blowup bound, whose
	// constant already accounts for K.
	K int
	// SizeClassBase is b, the growth factor between size classes.
	// Default 1.2.
	SizeClassBase float64
	// Heaps is the number of per-processor heaps (excluding the global
	// heap). The paper uses one (implementation: two) per processor.
	// Default 16.
	Heaps int
	// HashThreads scrambles thread ids before heap assignment,
	// reproducing the collision behavior of arbitrary pthread ids (the
	// reason the released Hoard used 2P heaps). Off by default: the
	// benchmarks' sequential ids then map round-robin.
	HashThreads bool
	// GlobalEmptyLimit, if positive, caps the number of superblocks the
	// global heap retains: completely empty superblocks arriving beyond
	// the cap are returned to the OS. Zero (the default) retains
	// everything, matching the paper's implementation. This is an
	// extension used by the ablation experiments.
	GlobalEmptyLimit int
	// DisableLockFree turns off the lock-free warm paths (DESIGN.md §11),
	// forcing every malloc and owner-local free through the heap lock as
	// in the paper's protocol. The zero value — warm paths on — is the
	// production configuration; the A11 experiment uses this switch as its
	// baseline arm.
	DisableLockFree bool
	// Backend selects the vm substrate: "sim" (the deterministic
	// simulated space) or "arena" (one large mmap'd reservation with real
	// madvise decommit; Linux amd64/arm64 only). Empty defers to the
	// HOARDGO_BACKEND environment variable, then defaults to "sim". A
	// requested arena that cannot be created degrades to the simulated
	// space — see Stats.BackendFallbacks and BackendFallbackReason.
	Backend string
}

// KNone requests a literal K of zero (no slack) in Config.K.
const KNone = -1

// Default is the paper implementation's configuration.
var Default = Config{
	SuperblockSize: superblock.DefaultSize,
	EmptyFraction:  0.25,
	K:              1,
	SizeClassBase:  sizeclass.DefaultBase,
	Heaps:          16,
}

func (c Config) withDefaults() Config {
	d := Default
	if c.SuperblockSize == 0 {
		c.SuperblockSize = d.SuperblockSize
	}
	if c.EmptyFraction == 0 {
		c.EmptyFraction = d.EmptyFraction
	}
	if c.SizeClassBase == 0 {
		c.SizeClassBase = d.SizeClassBase
	}
	switch {
	case c.K == 0:
		c.K = d.K
	case c.K == KNone:
		c.K = 0
	}
	if c.Heaps == 0 {
		c.Heaps = d.Heaps
	}
	return c
}

func (c Config) validate() error {
	if c.SuperblockSize < vm.PageSize || c.SuperblockSize&(c.SuperblockSize-1) != 0 {
		return fmt.Errorf("hoard: superblock size %d must be a power-of-two multiple of the %d-byte page", c.SuperblockSize, vm.PageSize)
	}
	if c.EmptyFraction <= 0 || c.EmptyFraction >= 1 {
		return fmt.Errorf("hoard: empty fraction %v out of (0,1)", c.EmptyFraction)
	}
	if c.K < 0 {
		return fmt.Errorf("hoard: negative K %d", c.K)
	}
	if c.Heaps < 1 {
		return fmt.Errorf("hoard: need at least one per-processor heap, got %d", c.Heaps)
	}
	switch c.Backend {
	case "", "sim", "arena":
	default:
		return fmt.Errorf("hoard: unknown backend %q (want \"sim\" or \"arena\")", c.Backend)
	}
	return nil
}

// largeObj is the span tag for objects larger than S/2, which bypass
// superblocks and go straight to the (simulated) OS, as in the paper.
type largeObj struct {
	size int // usable bytes (page-rounded reservation length)
}

// Hoard is the allocator. All methods are safe for concurrent use by
// distinct Threads.
type Hoard struct {
	cfg     Config
	space   vm.Backend
	classes *sizeclass.Table
	// heaps[0] is the global heap; heaps[1..cfg.Heaps] are per-processor.
	heaps []*heap.Heap

	// acct is sharded by heap index (shard 0 doubles as the large-object
	// shard) so concurrent threads don't bounce one set of counter cache
	// lines on every operation. Frees are recorded against the owning
	// heap's shard — the shard that recorded the malloc except for blocks
	// carried along by an evicted superblock — keeping per-shard peaks
	// tight.
	acct          *alloc.ShardedAccounting
	sbMoves       atomic.Int64
	movedLive     atomic.Int64
	globalHits    atomic.Int64
	osReserves    atomic.Int64
	remote        atomic.Int64
	remoteFast    atomic.Int64
	remoteDrains  atomic.Int64
	batchRefills  atomic.Int64
	batchFlushes  atomic.Int64
	batchedBlocks atomic.Int64
	scavPasses    atomic.Int64
	scavBytes     atomic.Int64
	lfMallocs     atomic.Int64
	lfFrees       atomic.Int64
	fastRetries   atomic.Int64
	localReuses   atomic.Int64

	// backendFallback records why a requested arena backend degraded to
	// the simulated space ("" when the requested backend was created).
	// Set once in New, before the allocator is shared.
	backendFallback string

	// clock stamps superblocks parked on the global heap, feeding the
	// scavenger's cold-age filter. Wall clock by default; SetClock installs
	// a deterministic source (see scavenge.go).
	clock func() int64
}

// threadState is the per-thread state: the index of the heap the thread
// allocates from.
type threadState struct {
	heapIdx int
}

// New creates a Hoard allocator over its own simulated address space, with
// locks created from lf. It panics on an invalid configuration.
func New(cfg Config, lf env.LockFactory) *Hoard {
	cfg = cfg.withDefaults()
	if err := cfg.validate(); err != nil {
		panic(err)
	}
	space, fallback := openBackend(cfg)
	h := &Hoard{
		cfg:     cfg,
		space:   space,
		classes: sizeclass.New(cfg.SizeClassBase, sizeclass.Quantum, cfg.SuperblockSize/2),
		acct:    alloc.NewSharded(cfg.Heaps + 1),
		clock:   func() int64 { return time.Now().UnixNano() },
	}
	h.backendFallback = fallback
	h.heaps = make([]*heap.Heap, cfg.Heaps+1)
	for i := range h.heaps {
		name := fmt.Sprintf("hoard.heap%d", i)
		h.heaps[i] = heap.New(i, cfg.SuperblockSize, cfg.EmptyFraction, cfg.K,
			h.classes.NumClasses(), lf.NewLock(name))
	}
	return h
}

// Name implements alloc.Allocator.
func (h *Hoard) Name() string { return "hoard" }

// Space implements alloc.Allocator.
func (h *Hoard) Space() vm.Backend { return h.space }

// Backend returns the name of the vm backend actually in use ("sim" or
// "arena") — after any fallback, so it can differ from Config.Backend.
func (h *Hoard) Backend() string { return h.space.Name() }

// BackendFallbackReason returns why a requested arena backend degraded to
// the simulated space, or "" if the requested backend was created.
func (h *Hoard) BackendFallbackReason() string { return h.backendFallback }

// Classes exposes the size-class table (used by tests and benchmarks).
func (h *Hoard) Classes() *sizeclass.Table { return h.classes }

// SuperblockSize returns S in bytes.
func (h *Hoard) SuperblockSize() int { return h.cfg.SuperblockSize }

// NewThread registers a worker. The thread's heap is chosen by hashing its
// environment thread id over the per-processor heaps, as in the paper.
func (h *Hoard) NewThread(e env.Env) *alloc.Thread {
	id := e.ThreadID()
	slot := hashTID(id, h.cfg.HashThreads)
	return &alloc.Thread{
		ID:    id,
		Env:   e,
		State: &threadState{heapIdx: 1 + slot%h.cfg.Heaps},
	}
}

// hashTID maps a thread id to a heap slot. Small sequential ids (the common
// case in both real and simulated runs) spread perfectly unless scrambling
// is requested; the multiplier scrambles arbitrary (or scrambled) ids.
func hashTID(id int, scramble bool) int {
	if !scramble && id >= 0 && id < 1<<16 {
		return id
	}
	return int(uint32(id)*2654435761>>16) & 0x7fffffff
}

// Malloc implements alloc.Allocator.
func (h *Hoard) Malloc(t *alloc.Thread, size int) alloc.Ptr {
	e := t.Env
	if size > h.classes.MaxSize() {
		return h.mallocLarge(e, size)
	}
	class, _ := h.classes.ClassFor(size)
	blockSize := h.classes.Size(class)
	hp := h.heaps[t.State.(*threadState).heapIdx]

	// Lock-free warm path (DESIGN.md §11): pop a warm superblock's free
	// list with one CAS. No heap lock, no list scan — in steady state
	// this is the whole malloc. The candidates are the Ref the locked
	// path last allocated from, then the ring of superblocks the free
	// fast path reported free space on; a candidate whose list is empty,
	// whose superblock is sealed (migrating/decommitted), or whose ref is
	// stale just fails its pop and the next one is tried. Only when every
	// candidate fails does the malloc take the lock.
	if !h.cfg.DisableLockFree {
		for i := -1; i < heap.WarmRingSize; i++ {
			var ref *superblock.Ref
			if i < 0 {
				ref = hp.Warm(class)
			} else {
				ref = hp.WarmAt(class, i)
			}
			if ref == nil || ref.BlockSize != blockSize {
				continue
			}
			p, ok, retries := ref.TryPop(e)
			if retries > 0 {
				h.fastRetries.Add(int64(retries))
			}
			if !ok {
				continue
			}
			h.lfMallocs.Add(1)
			e.Charge(env.OpMallocFast, 1)
			if i >= 0 {
				// A ring candidate served; make it the first target so
				// the next pops skip the dry refs before it.
				hp.PromoteWarm(class, ref)
			}
			// Attribute to the current owner: the superblock can have
			// migrated since this heap cached the ref. A racing
			// migration right here misattributes one block's hint,
			// which the owner's next SyncAll squashes; the sharded
			// accounting is sum-exact regardless of shard.
			owner := ref.SB.OwnerID()
			h.heaps[owner].HintAdd(int64(blockSize))
			h.acct.OnMalloc(owner, blockSize)
			return p
		}
	}

	env.LockWith(hp.Lock, e, "malloc-refill")
	p, ok := hp.AllocBlock(e, class)
	if !ok && hp.PendingHintBytes() > 0 {
		// Remote frees parked on our own superblocks may satisfy the
		// malloc without visiting the global heap or the OS.
		if hp.DrainAll(e) > 0 {
			h.remoteDrains.Add(1)
			p, ok = hp.AllocBlock(e, class)
		}
	}
	for !ok {
		// Slow path. First try recycling one of this heap's own empty
		// superblocks into the needed class — it stays off the global lock
		// and, because a(i) does not change, triggers no eviction (where a
		// global take grows a(i) and routinely starts an evict/take cycle).
		e.Charge(env.OpMallocSlow, 1)
		if sb := hp.ReuseEmpty(e, class, blockSize); sb != nil {
			h.localReuses.Add(1)
			p, ok = hp.AllocBlock(e, class)
			continue
		}
		// Otherwise pull a superblock from the global heap, or the OS.
		g := h.heaps[0]
		env.LockWith(g.Lock, e, "global-take")
		sb := g.TakeSuper(e, class, blockSize)
		if sb != nil {
			// Insert (which transfers ownership) must happen before
			// the global lock is released: a racing free that read
			// the old owner id must block until the new owner is
			// visible, or its ownership re-check would pass against
			// a heap that no longer holds the superblock.
			hp.Insert(sb)
			h.globalHits.Add(1)
			e.Charge(env.OpSuperblockMove, 1)
		}
		g.Lock.Unlock(e)
		fresh := sb == nil
		if fresh {
			e.Charge(env.OpOSAlloc, 1)
			sb = superblock.New(h.space, h.cfg.SuperblockSize, class, blockSize)
			h.osReserves.Add(1)
			hp.Insert(sb)
		}
		p, ok = hp.AllocBlock(e, class)
		if !ok && fresh {
			panic("hoard: fresh superblock has no free block")
		}
		// A taken superblock can arrive full — stale warm Refs pop from
		// global-heap superblocks, so TakeSuper's books can lag the live
		// words. Go around and take another (or fall through to the OS).
	}
	if !h.cfg.DisableLockFree {
		// We paid for the lock; arm the whole warm ring with this class's
		// partial superblocks so the next misses stay lock-free.
		hp.ArmRing(e, class)
	}
	hp.Lock.Unlock(e)
	e.Charge(env.OpMallocFast, 1)
	h.acct.OnMalloc(hp.ID, blockSize)
	return p
}

func (h *Hoard) mallocLarge(e env.Env, size int) alloc.Ptr {
	lo := &largeObj{}
	sp := h.space.Reserve(size, vm.PageSize, lo)
	lo.size = sp.Len
	e.Charge(env.OpOSAlloc, 1)
	e.Charge(env.OpMallocSlow, 1)
	h.osReserves.Add(1)
	h.acct.OnLarge(0)
	h.acct.OnMalloc(0, sp.Len)
	return alloc.Ptr(sp.Base)
}

// resolve is the one pointer→span resolution on the free path: a single
// backend Lookup (page-table walk on sim, address arithmetic on the arena)
// whose result every consumer passes down instead of re-resolving.
// BenchmarkResolveFree pins its cost per backend.
func (h *Hoard) resolve(op string, p alloc.Ptr) *vm.Span {
	sp := h.space.Lookup(uint64(p))
	if sp == nil {
		panic(fmt.Sprintf("hoard: %s of unknown pointer %#x", op, uint64(p)))
	}
	return sp
}

// usableOf reads a resolved block's usable size.
func usableOf(op string, p alloc.Ptr, sp *vm.Span) int {
	switch owner := sp.Owner.(type) {
	case *largeObj:
		return owner.size
	case *superblock.Superblock:
		return owner.BlockSize()
	}
	panic(fmt.Sprintf("hoard: %s of foreign pointer %#x", op, uint64(p)))
}

// Free implements alloc.Allocator.
func (h *Hoard) Free(t *alloc.Thread, p alloc.Ptr) {
	if p.IsNil() {
		return
	}
	h.freeSpan(t, p, h.resolve("free", p))
}

// freeSpan completes a free whose pointer is already resolved, so callers
// that needed the span themselves (Realloc) don't pay a second resolution.
func (h *Hoard) freeSpan(t *alloc.Thread, p alloc.Ptr, sp *vm.Span) {
	e := t.Env
	switch owner := sp.Owner.(type) {
	case *largeObj:
		if uint64(p) != sp.Base {
			panic(fmt.Sprintf("hoard: free of interior large-object pointer %#x", uint64(p)))
		}
		h.acct.OnFree(0, owner.size)
		h.space.Release(sp)
		e.Charge(env.OpOSAlloc, 1)
		e.Charge(env.OpFree, 1)
	case *superblock.Superblock:
		h.freeSmall(t, e, owner, p)
	default:
		panic(fmt.Sprintf("hoard: free of foreign pointer %#x", uint64(p)))
	}
}

func (h *Hoard) freeSmall(t *alloc.Thread, e env.Env, sb *superblock.Superblock, p alloc.Ptr) {
	myIdx := t.State.(*threadState).heapIdx
	blockSize := sb.BlockSize()
	// Read the class now, while our still-live block pins the superblock's
	// format: once the FastFree CAS below retires the block, this free may
	// have emptied the superblock, and a racing malloc can pull it off the
	// empty list and reformat it to a different class mid-read.
	class := sb.Class()

	// Lock-free warm path: a free is one CAS push onto the superblock's
	// unified free list — and a CAS push works from any thread, so the
	// same path serves owner-local frees, cross-heap frees, and frees to
	// global-heap superblocks; only the accounting differs. The sealed
	// bit is the fence — eviction, heap transfer, decommit, and release
	// all seal, so a successful CAS proves the superblock was
	// fast-path-eligible at that instant. On a seal race FastFree rolls
	// itself back and we fall through to the locked protocol below.
	if !h.cfg.DisableLockFree {
		ok, wasEmpty, retries := sb.FastFree(e, p)
		if retries > 0 {
			h.fastRetries.Add(int64(retries))
		}
		if ok {
			h.lfFrees.Add(1)
			// Attribute to the post-CAS owner: the superblock can have
			// migrated since the lookup. A racing migration here
			// misattributes one block's hint, which the owner's next
			// SyncAll squashes; the sharded accounting is sum-exact
			// regardless of shard.
			owner := h.heaps[sb.OwnerID()]
			if owner.ID == myIdx {
				e.Charge(env.OpFree, 1)
			} else {
				// Same CAS, but it crossed heaps: charge it as the
				// remote-free fast path and count it as remote traffic.
				e.Charge(env.OpRemoteFree, 1)
				h.remote.Add(1)
				h.remoteFast.Add(1)
			}
			owner.HintAdd(-int64(blockSize))
			h.acct.OnFree(owner.ID, blockSize)
			_ = wasEmpty
			if owner.ID != 0 {
				// Feed the owner's warm ring so its next mallocs find
				// the space this push just created without the lock.
				// Every free publishes (PublishWarm dedups consecutive
				// repeats): the block most likely to be wanted next is
				// the one that just came back.
				owner.PublishWarm(class, sb.SelfRef())
			}
			if owner.ID != 0 {
				// The emptiness invariant is watched through the hint;
				// a tripped hint escalates to a locked
				// confirm-reconcile-restore pass.
				if owner.HintSuspectsViolation() {
					h.confirmAndRestore(e, owner)
				}
			} else {
				h.globalFastFreeEpilogue(e, sb)
			}
			return
		}
	}

	for {
		id := sb.OwnerID()
		switch {
		case id == myIdx:
			// Our own heap: take the lock we'd take anyway and free
			// directly. Ownership can change while we wait, so
			// re-check after acquiring — the paper's free protocol.
			hp := h.heaps[id]
			env.LockWith(hp.Lock, e, "free-local")
			if sb.OwnerID() != id {
				hp.Lock.Unlock(e)
				e.Charge(env.OpListScan, 1)
				continue
			}
			h.freeLocked(e, hp, sb, p)
			h.acct.OnFree(id, blockSize)
			return
		case id == 0:
			// Global-heap superblock: free under the global lock so
			// a free that empties it can trigger the
			// GlobalEmptyLimit release immediately.
			g := h.heaps[0]
			env.LockWith(g.Lock, e, "free-global")
			if sb.OwnerID() != 0 {
				g.Lock.Unlock(e)
				e.Charge(env.OpListScan, 1)
				continue
			}
			h.remote.Add(1)
			h.freeLocked(e, g, sb, p)
			h.acct.OnFree(0, blockSize)
			return
		default:
			// Another thread's heap: lock-free fast path. Push the
			// block onto the superblock's remote stack — no heap
			// lock — and leave reconciliation to the owner. The
			// push is valid whatever ownership does concurrently:
			// whichever heap owns the superblock when the stack is
			// drained absorbs the free.
			h.remote.Add(1)
			h.remoteFast.Add(1)
			pending := sb.RemoteFree(e, p)
			owner := h.heaps[sb.OwnerID()]
			owner.NoteRemotePush(int64(blockSize))
			h.acct.OnFree(owner.ID, blockSize)
			if pending >= sb.RemoteDrainThreshold() ||
				owner.PendingHintBytes() >= int64(h.cfg.SuperblockSize/2) {
				h.tryDrainOwner(e, owner)
			}
			return
		}
	}
}

// freeLocked performs a free while holding hp's lock (which it releases),
// draining the superblock's remote stack in the same critical section and
// restoring the emptiness invariant afterwards.
func (h *Hoard) freeLocked(e env.Env, hp *heap.Heap, sb *superblock.Superblock, p alloc.Ptr) {
	if hp.FreeBlock(e, sb, p) > 0 {
		h.remoteDrains.Add(1)
	}
	e.Charge(env.OpFree, 1)

	// GlobalEmptyLimit extension: a free that empties a global-heap
	// superblock may return it to the OS once the global heap is over
	// its cap. (The immediate release is one policy point; the scavenger
	// in scavenge.go is the paced one.) Superblocks that stay parked get
	// a fresh stamp — this free touched them, so they are not cold.
	if hp.ID == 0 {
		if !h.releaseGlobalEmpty(e, hp, sb) {
			sb.SetParkedAt(h.clock())
		}
	}

	if hp.ID != 0 {
		// The heap's u counts remote-pending blocks as in use, so check
		// the invariant discounted by the pending hint first; only a
		// drain-then-exact-recheck may evict.
		if hp.InvariantViolatedDiscounted() && hp.PendingHintBytes() > 0 {
			if hp.DrainAll(e) > 0 {
				h.remoteDrains.Add(1)
			}
		}
		if hp.InvariantViolated() {
			h.restoreInvariant(e, hp)
		}
	}
	hp.Lock.Unlock(e)
}

// releaseGlobalEmpty applies the GlobalEmptyLimit policy to one global-heap
// superblock the caller just freed into, under the global lock (held by the
// caller): if the free emptied it while the global heap is over its cap,
// return it to the OS. The superblock is sealed first and emptiness
// re-confirmed — a stale warm Ref may pop from global-heap superblocks, and
// Release must not race such a pop. (A free cannot un-empty it: an empty
// superblock has no blocks out.) Reports whether the superblock was
// released; if not it stays on the heap, unsealed.
func (h *Hoard) releaseGlobalEmpty(e env.Env, g *heap.Heap, sb *superblock.Superblock) bool {
	// Released() catches the loser of an emptying race: two lock-free
	// frees can both see the superblock go empty, and both arrive here
	// (serialized by the global lock). The first one releases; the second
	// must see that and bail rather than release a dead superblock again.
	if h.cfg.GlobalEmptyLimit <= 0 || sb.Released() || !sb.Empty() ||
		g.Superblocks() <= h.cfg.GlobalEmptyLimit {
		return false
	}
	sb.Seal()
	if !sb.Empty() {
		sb.Unseal()
		return false
	}
	g.Sync(sb)
	g.Remove(sb)
	sb.Release(h.space)
	e.Charge(env.OpOSAlloc, 1)
	return true
}

// globalFastFreeEpilogue finishes a lock-free free that landed on a
// global-heap superblock: refresh the scavenger's cold-age stamp (this free
// touched the superblock, so it is not cold), and when the free emptied it,
// take the global lock once to apply the GlobalEmptyLimit release policy —
// the same policy the locked free path applies. Only the emptying
// transition pays the lock, so warm frees into global-heap superblocks stay
// lock-free.
func (h *Hoard) globalFastFreeEpilogue(e env.Env, sb *superblock.Superblock) {
	sb.SetParkedAt(h.clock())
	if h.cfg.GlobalEmptyLimit <= 0 || !sb.Empty() {
		return
	}
	g := h.heaps[0]
	env.LockWith(g.Lock, e, "free-global")
	if sb.OwnerID() == 0 {
		h.releaseGlobalEmpty(e, g, sb)
	}
	g.Lock.Unlock(e)
}

// restoreInvariant moves one at-least-f-empty superblock from hp (whose lock
// the caller holds) to the global heap, as the paper's free path prescribes.
// It reports whether a victim was found; a single free can violate the
// invariant by at most one block, so one move always suffices there, but the
// batch free path loops until the invariant holds or no victim remains.
func (h *Hoard) restoreInvariant(e env.Env, hp *heap.Heap) bool {
	victim := hp.FindEvictable(e)
	if victim == nil {
		return false
	}
	// Seal first: from here no lock-free op can land on the victim (an
	// in-flight CAS fails against the seal's version bump), so its live
	// count is stable. Then reconcile its books — Remove subtracts the
	// accounted count, and any unreconciled fast-path drift would leak
	// into this heap's u forever.
	victim.Seal()
	hp.Sync(victim)
	hp.Remove(victim)
	e.Charge(env.OpSuperblockMove, 1)
	h.sbMoves.Add(1)
	h.movedLive.Add(int64(victim.InUse()))
	g := h.heaps[0]
	env.LockWith(g.Lock, e, "evict-insert")
	if h.cfg.GlobalEmptyLimit > 0 && victim.Empty() &&
		g.Superblocks() >= h.cfg.GlobalEmptyLimit {
		g.Lock.Unlock(e)
		victim.SetOwnerID(0)
		victim.Release(h.space)
		e.Charge(env.OpOSAlloc, 1)
	} else {
		g.Insert(victim)
		victim.SetParkedAt(h.clock())
		g.Lock.Unlock(e)
	}
	return true
}

// confirmAndRestore is the hint path's slow half: a fast free saw
// HintSuspectsViolation, so try the heap lock (never block — the fast path's
// point is not waiting here; whoever holds the lock runs the same check on
// the way out), reconcile the books, and evict until the *confirmed*
// invariant holds. The atomic-snapshot-then-lock-confirm pattern from the
// tentpole: the hint is the snapshot, SyncAll+InvariantViolated the
// confirmation.
func (h *Hoard) confirmAndRestore(e env.Env, hp *heap.Heap) {
	if !env.TryLockWith(hp.Lock, e, "invariant-confirm") {
		return
	}
	hp.SyncAll(e)
	for hp.InvariantViolated() && h.restoreInvariant(e, hp) {
	}
	hp.Lock.Unlock(e)
}

// tryDrainOwner opportunistically reconciles a heap's remote stacks when a
// pusher notices they have grown. It must not block — blocking would
// reintroduce the contention the fast path removes — so it gives up if the
// owner's lock is busy; the owner will drain on its own next locked
// operation.
func (h *Hoard) tryDrainOwner(e env.Env, hp *heap.Heap) {
	if !env.TryLockWith(hp.Lock, e, "drain-nudge") {
		return
	}
	if hp.DrainAll(e) > 0 {
		h.remoteDrains.Add(1)
	}
	if hp.ID != 0 && hp.InvariantViolated() {
		h.restoreInvariant(e, hp)
	}
	hp.Lock.Unlock(e)
}

// Reconcile drains every heap's remote-free stacks and restores the
// emptiness invariant, bringing the allocator to the state a lock-per-free
// protocol would have reached. Tests call it to make post-quiescence
// assertions exact; production callers never need it.
func (h *Hoard) Reconcile(e env.Env) {
	for _, hp := range h.heaps {
		env.LockWith(hp.Lock, e, "reconcile")
		if hp.DrainAll(e) > 0 {
			h.remoteDrains.Add(1)
		}
		// Fold the lock-free paths' drift into the books so the invariant
		// check below — and any quiescent assertion after us — is exact.
		hp.SyncAll(e)
		if hp.ID != 0 {
			for hp.InvariantViolated() && h.restoreInvariant(e, hp) {
			}
		}
		hp.Lock.Unlock(e)
	}
}

// UsableSize implements alloc.Allocator.
func (h *Hoard) UsableSize(p alloc.Ptr) int {
	return usableOf("UsableSize", p, h.resolve("UsableSize", p))
}

// Bytes implements alloc.Allocator. One resolution serves both the
// usable-size validation and the byte view.
func (h *Hoard) Bytes(p alloc.Ptr, n int) []byte {
	sp := h.resolve("Bytes", p)
	if usable := usableOf("Bytes", p, sp); n > usable {
		panic(fmt.Sprintf("hoard: Bytes(%#x, %d) exceeds usable size %d", uint64(p), n, usable))
	}
	return sp.Bytes(int(uint64(p)-sp.Base), n)
}

// Realloc returns a block of at least size bytes with the first
// min(size, UsableSize(p)) bytes of p's contents, freeing p. Realloc(nil,
// size) behaves as Malloc; growth within the current block's usable size is
// free. The old block is resolved exactly once — the span feeds the size
// check, the copy, and the free (the pre-refactor path resolved it three
// times via UsableSize, Bytes, and Free).
func (h *Hoard) Realloc(t *alloc.Thread, p alloc.Ptr, size int) alloc.Ptr {
	if p.IsNil() {
		return h.Malloc(t, size)
	}
	sp := h.resolve("realloc", p)
	old := usableOf("realloc", p, sp)
	if size <= old && size > old/2 {
		return p
	}
	np := h.Malloc(t, size)
	n := min(old, size)
	copy(h.Bytes(np, n), sp.Bytes(int(uint64(p)-sp.Base), n))
	t.Env.Touch(uint64(p), n, false)
	t.Env.Touch(uint64(np), n, true)
	h.freeSpan(t, p, sp)
	return np
}

// Stats implements alloc.Allocator.
func (h *Hoard) Stats() alloc.Stats {
	var st alloc.Stats
	h.acct.Fill(&st)
	st.SuperblockMoves = h.sbMoves.Load()
	st.MovedLiveBlocks = h.movedLive.Load()
	st.GlobalHeapHits = h.globalHits.Load()
	st.OSReserves = h.osReserves.Load()
	st.RemoteFrees = h.remote.Load()
	st.RemoteFastFrees = h.remoteFast.Load()
	st.RemoteDrains = h.remoteDrains.Load()
	st.BatchRefills = h.batchRefills.Load()
	st.BatchFlushes = h.batchFlushes.Load()
	st.BatchedBlocks = h.batchedBlocks.Load()
	st.ScavengePasses = h.scavPasses.Load()
	st.ScavengedBytes = h.scavBytes.Load()
	st.LockFreeMallocs = h.lfMallocs.Load()
	st.LockFreeFrees = h.lfFrees.Load()
	st.FastPathRetries = h.fastRetries.Load()
	st.LocalReuses = h.localReuses.Load()
	if h.backendFallback != "" {
		st.BackendFallbacks = 1
	}
	return st
}

// HeapSnapshot reports (u, a, superblocks) for heap id; used by tests and
// the blowup experiments. The caller must be quiescent. u is the live
// figure — the accounted u plus any fast-path drift the next reconciliation
// would fold in — so it is exact for a quiesced allocator even when the
// lock-free paths have left the accounted books stale.
func (h *Hoard) HeapSnapshot(id int) (u, a int64, superblocks int) {
	hp := h.heaps[id]
	return hp.LiveU(), hp.A(), hp.Superblocks()
}

// NumHeaps returns the number of heaps including the global heap.
func (h *Hoard) NumHeaps() int { return len(h.heaps) }

// EmptyFraction returns the empty fraction f currently in force. All heaps
// share one value (SetEmptyFraction writes them all), so heap 0's copy is
// authoritative.
func (h *Hoard) EmptyFraction() float64 { return h.heaps[0].EmptyFraction() }

// SetEmptyFraction retunes the empty fraction f on every heap. Safe to call
// at any time from any goroutine — f parameterizes eviction policy, not
// structural state, so concurrent malloc/free traffic simply starts seeing
// the new value (see heap.SetEmptyFraction). Returns an error outside (0,1).
func (h *Hoard) SetEmptyFraction(f float64) error {
	if f <= 0 || f >= 1 {
		return fmt.Errorf("hoard: empty fraction %v out of (0,1)", f)
	}
	for _, hp := range h.heaps {
		hp.SetEmptyFraction(f)
	}
	return nil
}

// SlackK returns the emptiness-invariant slack K currently in force.
func (h *Hoard) SlackK() int { return h.heaps[0].SlackK() }

// SetSlackK retunes the slack K (in superblocks) on every heap. Safe to call
// at any time from any goroutine; returns an error on negative K. Note the
// literal value is stored — there is no KNone mapping here, 0 means 0.
func (h *Hoard) SetSlackK(k int) error {
	if k < 0 {
		return fmt.Errorf("hoard: negative K %d", k)
	}
	for _, hp := range h.heaps {
		hp.SetSlackK(k)
	}
	return nil
}

// CheckIntegrity implements alloc.Allocator. The allocator must be
// quiescent.
func (h *Hoard) CheckIntegrity() error {
	var u int64
	for _, hp := range h.heaps {
		if err := hp.CheckIntegrity(); err != nil {
			return err
		}
		// The conservation check below is against the live gauge, which
		// tracks completed mallocs/frees — so sum the superblocks' live
		// words, not the accounted u (the books may lag by unreconciled
		// fast-path drift until the next SyncAll).
		u += hp.LiveU()
		// The emptiness invariant is enforced at frees; mallocs may
		// leave a heap transiently below it, but whenever it is
		// violated an evictable superblock must exist — unless the byte
		// shortfall is pure capacity waste: eviction candidacy is a
		// block fraction, so superblocks ≥ (1-f) full by blocks can sit
		// below (1-f)*a in bytes when their class's block size does not
		// divide S, and the free path correctly finds no victim there
		// (see Heap.InvariantViolatedUsable, which re-checks with the
		// waste discounted). The check reads the accounted u, so it only
		// applies when the books are caught up with the live words —
		// with drift outstanding, the accounted figure can sit below an
		// invariant the hint path is already watching.
		if hp.ID != 0 && hp.LiveU() == hp.U() && hp.InvariantViolated() &&
			hp.FindEvictable(&env.RealEnv{}) == nil && hp.InvariantViolatedUsable() {
			return fmt.Errorf("hoard: heap %d violates emptiness invariant with no evictable superblock (u=%d a=%d)",
				hp.ID, hp.U(), hp.A())
		}
	}
	// Heap-resident in-use bytes plus large objects must equal the live
	// gauge, after discounting blocks parked on remote-free stacks (they
	// still count as in use but were already subtracted from the live
	// gauge when pushed). Large objects are exactly the reserved bytes not
	// owned by heaps — reserved, not committed, because a scavenged
	// superblock still counts S toward its heap's a while its committed
	// bytes are gone.
	var heapBytes, pending int64
	for _, hp := range h.heaps {
		heapBytes += hp.A()
		pending += hp.PendingBytes()
	}
	large := h.space.Reserved() - heapBytes
	if got := u + large - pending; got != h.acct.Live() {
		return fmt.Errorf("hoard: live accounting %d != heaps %d + large %d - remote-pending %d",
			h.acct.Live(), u, large, pending)
	}
	return nil
}
