GO ?= go

.PHONY: check build test race vet bench metrics-smoke footprint-smoke

# check is the tier-1 gate: vet, build, and the full suite under the race
# detector.
check: vet build race

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Figure benchmarks are full deterministic simulations; run each once. The
# key batching benches (threadtest/larson figures, the contended
# producer-consumer probe, and the tcache batch-locks comparison) run here,
# then the committed artifact is regenerated.
bench:
	$(GO) test -benchtime=1x \
		-bench='FigThreadtest|FigLarson|ProducerConsumerContended|TCacheBatchLocks' .
	$(GO) run ./cmd/hoardbench -artifact BENCH_PR3.json

# metrics-smoke exercises the observability layer end to end: the
# instrumented churn run writes a timeline artifact (occupancy samples, lock
# counters, audit record, embedded Prometheus scrape), and the exposition
# format tests lint the scrape. Any audit failure fails the run.
metrics-smoke:
	$(GO) run ./cmd/hoardbench -metrics /tmp/hoardgo-metrics-timeline.json
	$(GO) test -run 'TestCollectMetricsTimeline' ./internal/experiments/
	$(GO) test -run 'TestWriteMetrics|TestLint' . ./internal/metrics/

# footprint-smoke exercises the page-level reclamation subsystem end to end:
# the scavenger footprint grid (workloads x release modes) regenerates its
# artifact with the steady-state ratios and the batch-lock throughput guard,
# and the decommit/scavenge tests run across every layer.
footprint-smoke:
	$(GO) run ./cmd/hoardbench -footprint /tmp/hoardgo-footprint.json
	$(GO) test -run 'TestFootprint' ./internal/experiments/
	$(GO) test -race -run 'TestReleaseMemory|TestBackgroundScavenger|TestScavengerUnderProdConsChurn' .
	$(GO) test -run 'TestDecommit|TestScavenge' ./internal/vm/ ./internal/superblock/ ./internal/heap/ ./internal/core/
