package workload

import (
	"math"
	"math/rand"
	"testing"

	"hoardgo/internal/alloc"
	"hoardgo/internal/env"
	"hoardgo/internal/simproc"
)

// TestBarnesHutApproximatesBruteForce builds one thread's octree through
// the allocator and compares tree-computed accelerations against the exact
// O(n^2) sum: with a modest opening angle they must agree to a few percent
// for the large majority of bodies.
func TestBarnesHutApproximatesBruteForce(t *testing.T) {
	const n = 300
	const theta = 0.4
	rng := rand.New(rand.NewSource(5))
	pos := make([][3]float64, n)
	mass := make([]float64, n)
	for i := range pos {
		for d := 0; d < 3; d++ {
			pos[i][d] = rng.Float64()*2 - 1
		}
		mass[i] = 0.5 + rng.Float64()
	}

	h := NewSim("hoard", 1, simproc.DefaultCosts)
	var acc [][3]float64
	h.Par(1, func(id int, e env.Env, th *alloc.Thread) {
		bt := &bhTree{a: h.Allocator(), t: th, e: e, h: h}
		root := bt.newNode(0, 0, 0, 2)
		for bi := 0; bi < n; bi++ {
			bt.insert(root, bi, pos)
		}
		bt.summarize(root, pos, mass)
		acc = make([][3]float64, n)
		for bi := 0; bi < n; bi++ {
			var a3 [3]float64
			bt.force(root, bi, pos, theta, &a3)
			acc[bi] = a3
		}
		bt.freeTree(root)
	})

	// Exact pairwise sum with the same softening.
	exact := make([][3]float64, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i == j {
				continue
			}
			dx := pos[j][0] - pos[i][0]
			dy := pos[j][1] - pos[i][1]
			dz := pos[j][2] - pos[i][2]
			d2 := dx*dx + dy*dy + dz*dz + 1e-6
			inv := 1 / (d2 * math.Sqrt(d2))
			exact[i][0] += mass[j] * dx * inv
			exact[i][1] += mass[j] * dy * inv
			exact[i][2] += mass[j] * dz * inv
		}
	}

	bad := 0
	for i := 0; i < n; i++ {
		var diff2, norm2 float64
		for d := 0; d < 3; d++ {
			diff := acc[i][d] - exact[i][d]
			diff2 += diff * diff
			norm2 += exact[i][d] * exact[i][d]
		}
		if norm2 == 0 {
			continue
		}
		if math.Sqrt(diff2/norm2) > 0.10 {
			bad++
		}
	}
	if bad > n/20 {
		t.Fatalf("%d/%d bodies with >10%% force error at theta=%v", bad, n, theta)
	}
}

// TestBarnesHutTreeCountsBodies checks every body lands in the tree exactly
// once (subtree counts at the root equal the body count).
func TestBarnesHutTreeCountsBodies(t *testing.T) {
	const n = 500
	rng := rand.New(rand.NewSource(8))
	pos := make([][3]float64, n)
	mass := make([]float64, n)
	for i := range pos {
		for d := 0; d < 3; d++ {
			pos[i][d] = rng.Float64()*2 - 1
		}
		mass[i] = 1
	}
	h := NewSim("hoard", 1, simproc.DefaultCosts)
	h.Par(1, func(id int, e env.Env, th *alloc.Thread) {
		a := h.Allocator()
		bt := &bhTree{a: a, t: th, e: e, h: h}
		root := bt.newNode(0, 0, 0, 2)
		for bi := 0; bi < n; bi++ {
			bt.insert(root, bi, pos)
		}
		b := a.Bytes(root, nodeSize)
		if got := i64get(b, offCount); got != n {
			t.Errorf("root count = %d, want %d", got, n)
		}
		m, _, _, _ := bt.summarize(root, pos, mass)
		if math.Abs(m-float64(n)) > 1e-9 {
			t.Errorf("root mass = %v, want %d", m, n)
		}
		bt.freeTree(root)
	})
	if got := h.Allocator().Stats().LiveBytes; got != 0 {
		t.Fatalf("tree leaked %d bytes", got)
	}
}

// TestMortonOrderIsSpatial checks the space-filling order: consecutive
// bodies in Morton order must be far closer together on average than random
// pairs.
func TestMortonOrderIsSpatial(t *testing.T) {
	const n = 2000
	rng := rand.New(rand.NewSource(3))
	pos := make([][3]float64, n)
	for i := range pos {
		for d := 0; d < 3; d++ {
			pos[i][d] = rng.Float64()*2 - 1
		}
	}
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	dist := func(a, b int) float64 {
		var s float64
		for d := 0; d < 3; d++ {
			diff := pos[a][d] - pos[b][d]
			s += diff * diff
		}
		return math.Sqrt(s)
	}
	var randomAvg float64
	for i := 0; i+1 < n; i++ {
		randomAvg += dist(order[i], order[i+1])
	}
	randomAvg /= float64(n - 1)

	sortByMorton := order
	sortSliceByKey(sortByMorton, pos)
	var mortonAvg float64
	for i := 0; i+1 < n; i++ {
		mortonAvg += dist(sortByMorton[i], sortByMorton[i+1])
	}
	mortonAvg /= float64(n - 1)
	if mortonAvg > randomAvg/3 {
		t.Fatalf("Morton neighbors avg distance %.3f vs random %.3f; ordering not spatial", mortonAvg, randomAvg)
	}
}

// sortSliceByKey sorts indices by mortonKey (test helper mirroring the
// production sort).
func sortSliceByKey(order []int, pos [][3]float64) {
	keys := make([]uint64, len(pos))
	for i := range pos {
		keys[i] = mortonKey(pos[i])
	}
	// insertion sort is fine at test sizes and avoids importing sort here
	for i := 1; i < len(order); i++ {
		for j := i; j > 0 && keys[order[j]] < keys[order[j-1]]; j-- {
			order[j], order[j-1] = order[j-1], order[j]
		}
	}
}

func TestChunkBox(t *testing.T) {
	pos := [][3]float64{{-1, 0, 0}, {1, 0, 0}, {0, 0.5, -0.5}}
	c, half := chunkBox([]int{0, 1, 2}, pos)
	if c[0] != 0 || half < 1 {
		t.Fatalf("center %v half %v", c, half)
	}
	for i := range pos {
		for d := 0; d < 3; d++ {
			if pos[i][d] < c[d]-half || pos[i][d] > c[d]+half {
				t.Fatalf("body %d outside box", i)
			}
		}
	}
}
