package trace

import (
	"hoardgo/internal/alloc"
	"hoardgo/internal/env"
	"hoardgo/internal/vm"
)

// Recording wraps an allocator so every malloc and free is captured by a
// Recorder; the resulting trace replays against any allocator. Sizes are
// recorded as *requested*, so a replay exercises the same request stream
// rather than the recording allocator's rounding.
type Recording struct {
	inner alloc.Allocator
	rec   *Recorder
}

// NewRecording wraps inner with recording.
func NewRecording(inner alloc.Allocator) *Recording {
	return &Recording{inner: inner, rec: NewRecorder()}
}

// Trace returns the events captured so far.
func (r *Recording) Trace() *Trace { return r.rec.Trace() }

// Inner returns the wrapped allocator.
func (r *Recording) Inner() alloc.Allocator { return r.inner }

// Name implements alloc.Allocator.
func (r *Recording) Name() string { return r.inner.Name() + "+record" }

// Space implements alloc.Allocator.
func (r *Recording) Space() vm.Backend { return r.inner.Space() }

// NewThread implements alloc.Allocator.
func (r *Recording) NewThread(e env.Env) *alloc.Thread { return r.inner.NewThread(e) }

// Malloc implements alloc.Allocator.
func (r *Recording) Malloc(t *alloc.Thread, size int) alloc.Ptr {
	p := r.inner.Malloc(t, size)
	r.rec.Malloc(t.ID, size, p)
	return p
}

// Free implements alloc.Allocator.
func (r *Recording) Free(t *alloc.Thread, p alloc.Ptr) {
	if p.IsNil() {
		r.inner.Free(t, p)
		return
	}
	r.rec.Free(t.ID, p)
	r.inner.Free(t, p)
}

// UsableSize implements alloc.Allocator.
func (r *Recording) UsableSize(p alloc.Ptr) int { return r.inner.UsableSize(p) }

// Bytes implements alloc.Allocator.
func (r *Recording) Bytes(p alloc.Ptr, n int) []byte { return r.inner.Bytes(p, n) }

// Stats implements alloc.Allocator.
func (r *Recording) Stats() alloc.Stats { return r.inner.Stats() }

// CheckIntegrity implements alloc.Allocator.
func (r *Recording) CheckIntegrity() error { return r.inner.CheckIntegrity() }
