package scavenge

import (
	"sync"
	"testing"
	"time"
)

const S = 8192 // superblock size the defaults are tuned for

func pacerCfg() Config {
	return Config{
		HighWaterBytes: 8 * S,
		LowWaterBytes:  4 * S,
		BytesPerSec:    1 << 20, // 1 MiB/s
		BurstBytes:     4 * S,
	}
}

func TestConfigDefaultsAndValidation(t *testing.T) {
	c := Config{}.WithDefaults()
	if c.LowWaterBytes != c.HighWaterBytes/2 {
		t.Fatalf("default low watermark %d, want half of %d", c.LowWaterBytes, c.HighWaterBytes)
	}
	if err := (Config{}).Validate(); err != nil {
		t.Fatalf("zero config invalid: %v", err)
	}
	bad := []Config{
		{HighWaterBytes: -1},
		{HighWaterBytes: 100, LowWaterBytes: 200},
		{BytesPerSec: -1},
		{BurstBytes: -1},
		{ColdAge: -time.Second},
		{Interval: -time.Second},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("bad config %d accepted: %+v", i, c)
		}
	}
}

func TestPacerHysteresis(t *testing.T) {
	p := NewPacer(pacerCfg())
	now := int64(0)

	// Below the high watermark: disengaged, no grant.
	if g := p.Grant(8*S, now); g != 0 || p.Engaged() {
		t.Fatalf("grant %d engaged %v at the high watermark, want 0/false", g, p.Engaged())
	}
	// Crossing it engages and grants down toward the LOW watermark.
	if g := p.Grant(9*S, now); g <= 0 || !p.Engaged() {
		t.Fatalf("grant %d engaged %v above the high watermark", g, p.Engaged())
	}
	// While engaged, still granting between the watermarks (hysteresis).
	if g := p.Grant(6*S, now); g <= 0 || !p.Engaged() {
		t.Fatalf("grant %d engaged %v between watermarks while engaged", g, p.Engaged())
	}
	// At the low watermark it disengages and stops granting.
	if g := p.Grant(4*S, now); g != 0 || p.Engaged() {
		t.Fatalf("grant %d engaged %v at the low watermark", g, p.Engaged())
	}
	// Between the watermarks while disengaged: still nothing (the other
	// side of the hysteresis loop).
	if g := p.Grant(6*S, now); g != 0 || p.Engaged() {
		t.Fatalf("grant %d engaged %v between watermarks while disengaged", g, p.Engaged())
	}
}

func TestPacerGrantStopsAtLowWater(t *testing.T) {
	cfg := pacerCfg()
	cfg.BurstBytes = 100 * S // effectively unlimited for this test
	p := NewPacer(cfg)
	if g := p.Grant(10*S, 0); g != 6*S {
		t.Fatalf("grant %d, want down-to-low-watermark %d", g, 6*S)
	}
}

func TestPacerTokenBucket(t *testing.T) {
	p := NewPacer(pacerCfg()) // burst 4S, rate 1 MiB/s
	// First grant starts with a full burst; surplus far exceeds it.
	g := p.Grant(100*S, 0)
	if g != 4*S {
		t.Fatalf("first grant %d, want full burst %d", g, 4*S)
	}
	p.Spend(g)
	// No time elapsed: bucket empty.
	if g := p.Grant(100*S, 0); g != 0 {
		t.Fatalf("grant %d from empty bucket, want 0", g)
	}
	// 8192 bytes at 1 MiB/s take ~7.8ms; after 10ms one superblock fits.
	g = p.Grant(100*S, 10*int64(time.Millisecond))
	if g < S || g >= 2*S {
		t.Fatalf("grant after 10ms refill = %d, want about one superblock", g)
	}
	// A long idle stretch refills to the burst cap, no further.
	p.Spend(g)
	if g := p.Grant(100*S, 10*int64(time.Second)); g != 4*S {
		t.Fatalf("grant after long idle = %d, want burst cap %d", g, 4*S)
	}
}

// fakeTarget is a deterministic Target: a pool of parked bytes that refuses
// while contended.
type fakeTarget struct {
	mu        sync.Mutex
	empty     int64
	contended bool
	calls     int
}

func (f *fakeTarget) EmptyBytes() (int64, bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.contended {
		return 0, false
	}
	return f.empty, true
}

func (f *fakeTarget) Scavenge(maxBytes int64, coldAge time.Duration) (int64, bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.calls++
	if f.contended {
		return 0, false
	}
	// Whole superblocks only, like the real heap.
	n := maxBytes / S * S
	if n > f.empty {
		n = f.empty / S * S
	}
	f.empty -= n
	return n, true
}

func (f *fakeTarget) set(empty int64, contended bool) {
	f.mu.Lock()
	f.empty, f.contended = empty, contended
	f.mu.Unlock()
}

func (f *fakeTarget) get() (int64, bool, int) {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.empty, f.contended, f.calls
}

func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

func scavCfg() Config {
	return Config{
		HighWaterBytes: 4 * S,
		LowWaterBytes:  2 * S,
		ColdAge:        time.Nanosecond,
		Interval:       time.Millisecond,
		BytesPerSec:    1 << 30,
		BurstBytes:     1 << 30,
		MaxBackoff:     50 * time.Millisecond,
	}
}

func TestScavengerDrainsToLowWater(t *testing.T) {
	f := &fakeTarget{empty: 20 * S}
	s := New(f, scavCfg())
	s.Start()
	defer s.Stop()
	waitFor(t, "drain to low watermark", func() bool {
		empty, _, _ := f.get()
		return empty == 2*S
	})
	st := s.Stats()
	if st.ReleasedBytes != 18*S {
		t.Fatalf("ReleasedBytes = %d, want %d", st.ReleasedBytes, 18*S)
	}
	if st.Passes == 0 || st.Wakeups == 0 {
		t.Fatalf("stats %+v", st)
	}
	// Below the watermarks nothing further is released.
	time.Sleep(20 * time.Millisecond)
	if empty, _, _ := f.get(); empty != 2*S {
		t.Fatalf("scavenger went below the low watermark: %d", empty)
	}
}

func TestScavengerBacksOffWhenContended(t *testing.T) {
	f := &fakeTarget{empty: 20 * S, contended: true}
	s := New(f, scavCfg())
	s.Start()
	defer s.Stop()
	waitFor(t, "backoffs to accumulate", func() bool {
		return s.Stats().Backoffs >= 3
	})
	if empty, _, _ := f.get(); empty != 20*S {
		t.Fatal("scavenger released bytes from a contended target")
	}
	// Contention clears; the scavenger recovers and drains.
	f.set(20*S, false)
	waitFor(t, "drain after contention clears", func() bool {
		empty, _, _ := f.get()
		return empty == 2*S
	})
}

func TestScavengerStartStopIdempotent(t *testing.T) {
	f := &fakeTarget{empty: 20 * S}
	s := New(f, scavCfg())
	s.Start()
	s.Start()
	if !s.Running() {
		t.Fatal("not running after Start")
	}
	s.Stop()
	s.Stop()
	if s.Running() {
		t.Fatal("running after Stop")
	}
	// Restart works.
	f.set(20*S, false)
	s.Start()
	waitFor(t, "drain after restart", func() bool {
		empty, _, _ := f.get()
		return empty == 2*S
	})
	s.Stop()
}
