package core

import (
	"testing"

	"hoardgo/internal/alloc"
)

// FuzzOpSequence drives the allocator with an arbitrary byte-coded
// operation sequence across several threads and demands the usual safety
// properties: no double hand-outs, accounting that reaches zero, and an
// intact heap afterwards. Each byte pair encodes (op/thread, size).
func FuzzOpSequence(f *testing.F) {
	f.Add([]byte{0x00, 0x08, 0x40, 0x10, 0x80, 0x00})
	f.Add([]byte{0x01, 0xFF, 0x41, 0x7F, 0x81, 0x3F, 0xC1, 0x01})
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		h := New(Config{Heaps: 3}, lf)
		threads := []*alloc.Thread{thread(h, 0), thread(h, 1), thread(h, 2)}
		type obj struct {
			p  alloc.Ptr
			sz int
		}
		var live []obj
		for i := 0; i+1 < len(data); i += 2 {
			op := data[i]
			th := threads[int(op>>1)%len(threads)]
			switch {
			case op&1 == 0 || len(live) == 0: // malloc
				sz := int(data[i+1])*37 + 1 // up to ~9.4KB, crossing the large threshold
				p := h.Malloc(th, sz)
				if p.IsNil() {
					t.Fatalf("Malloc(%d) = nil", sz)
				}
				h.Bytes(p, 1)[0] = op
				live = append(live, obj{p, sz})
			default: // free a pseudo-random live object
				idx := int(data[i+1]) % len(live)
				h.Free(th, live[idx].p)
				live[idx] = live[len(live)-1]
				live = live[:len(live)-1]
			}
		}
		for _, o := range live {
			h.Free(threads[0], o.p)
		}
		if got := h.Stats().LiveBytes; got != 0 {
			t.Fatalf("LiveBytes = %d after teardown", got)
		}
		if err := h.CheckIntegrity(); err != nil {
			t.Fatal(err)
		}
	})
}
