package heap

import (
	"testing"

	"hoardgo/internal/alloc"
	"hoardgo/internal/vm/vmtest"
)

// TestWarmRingPublishDedup pins PublishWarm's consecutive-duplicate drop: a
// run of frees to one superblock must occupy one ring slot, not flood the
// ring with copies that evict every other candidate.
func TestWarmRingPublishDedup(t *testing.T) {
	space := vmtest.NewSized(t, testS)
	h := newHeap(1)
	a := newSuper(space, 2)
	b := newSuper(space, 2)
	h.Insert(a)
	h.Insert(b)
	for i := 0; i < WarmRingSize; i++ {
		h.PublishWarm(2, a.SelfRef())
	}
	var hits int
	for i := 0; i < WarmRingSize; i++ {
		if h.WarmAt(2, i) == a.SelfRef() {
			hits++
		}
	}
	if hits != 1 {
		t.Fatalf("%d ring slots hold the repeated ref, want 1", hits)
	}
	// Alternating publishes are all distinct from their predecessor and
	// must land in distinct slots until the ring wraps.
	for i := 0; i < WarmRingSize; i++ {
		if i%2 == 0 {
			h.PublishWarm(2, b.SelfRef())
		} else {
			h.PublishWarm(2, a.SelfRef())
		}
	}
	var as, bs int
	for i := 0; i < WarmRingSize; i++ {
		switch h.WarmAt(2, i) {
		case a.SelfRef():
			as++
		case b.SelfRef():
			bs++
		}
	}
	if as < WarmRingSize/2-1 || bs < WarmRingSize/2-1 {
		t.Fatalf("alternating publishes filled %d+%d slots, want about %d each", as, bs, WarmRingSize/2)
	}
	// Out-of-range classes are ignored, not a panic.
	h.PublishWarm(-1, a.SelfRef())
	h.PublishWarm(testClasses+5, a.SelfRef())
	if h.WarmAt(-1, 0) != nil || h.WarmAt(testClasses+5, 0) != nil {
		t.Fatal("out-of-range class leaked a ring entry")
	}
}

// TestArmRingPrefersEmptiest pins the slow-path feeder's order: ArmRing must
// put the emptiest superblocks (longest free lists) in the low slots and skip
// live-full ones entirely.
func TestArmRingPrefersEmptiest(t *testing.T) {
	space := vmtest.NewSized(t, testS)
	h := newHeap(1)
	full := newSuper(space, 2)
	for {
		if _, ok := full.AllocBlock(e); !ok {
			break
		}
	}
	nearFull := newSuper(space, 2)
	for i := 0; i < nearFull.NBlocks()-2; i++ {
		nearFull.AllocBlock(e)
	}
	empty := newSuper(space, 2)
	h.Insert(full)
	h.Insert(nearFull)
	h.Insert(empty)
	h.ArmRing(e, 2)
	if got := h.WarmAt(2, 0); got != empty.SelfRef() {
		t.Fatalf("slot 0 = %v, want the empty superblock's ref", got)
	}
	if got := h.WarmAt(2, 1); got != nearFull.SelfRef() {
		t.Fatalf("slot 1 = %v, want the nearly-full superblock's ref", got)
	}
	for i := 2; i < WarmRingSize; i++ {
		if h.WarmAt(2, i) == full.SelfRef() {
			t.Fatal("a live-full superblock was armed")
		}
	}
}

// TestReuseEmpty pins the local recycle step: an empty superblock of another
// class is reformatted to the requested class and stays on this heap with
// a(i) unchanged, while partial superblocks and same-class superblocks are
// never touched.
func TestReuseEmpty(t *testing.T) {
	space := vmtest.NewSized(t, testS)
	h := newHeap(1)
	partial := newSuper(space, 3)
	partial.AllocBlock(e)
	empty := newSuper(space, 3)
	h.Insert(partial)
	h.Insert(empty)
	aBefore := h.A()

	sb := h.ReuseEmpty(e, 2, blockSizeFor(2))
	if sb != empty {
		t.Fatalf("reused %v, want the empty superblock", sb)
	}
	if sb.Class() != 2 || sb.BlockSize() != blockSizeFor(2) {
		t.Fatalf("reinit to class %d size %d", sb.Class(), sb.BlockSize())
	}
	if sb.OwnerID() != 1 || h.A() != aBefore || h.Superblocks() != 2 {
		t.Fatalf("ownership/accounting moved: owner=%d a=%d n=%d", sb.OwnerID(), h.A(), h.Superblocks())
	}
	if sb.Sealed() {
		t.Fatal("reused superblock left sealed")
	}
	if _, ok := h.AllocBlock(e, 2); !ok {
		t.Fatal("reused superblock cannot serve its new class")
	}
	if err := h.CheckIntegrity(); err != nil {
		t.Fatal(err)
	}

	// Nothing else is empty: the partial class-3 superblock must not be
	// stolen, and same-class empties are excluded by design.
	if got := h.ReuseEmpty(e, 2, blockSizeFor(2)); got != nil {
		t.Fatalf("second reuse returned %v, want nil", got)
	}
	var p alloc.Ptr
	if q, ok := h.AllocBlock(e, 3); !ok {
		t.Fatal("partial class-3 superblock lost its blocks")
	} else {
		p = q
	}
	h.FreeBlock(e, partial, p)
}
