package main

import (
	"encoding/json"
	"fmt"
	"os"
	"strings"
	"time"

	"hoardgo/internal/experiments"
)

// stamp builds the provenance record for a simulator-options artifact
// through the shared experiments.Stamp helper (one implementation for every
// BENCH_*.json writer — see internal/experiments/provenance.go).
func stamp(schema, scale string, opts experiments.Options) experiments.Provenance {
	return experiments.Stamp(schema, scale, opts.FingerprintParts()...)
}

// artifact is the committed benchmark record (BENCH_PR3.json): the
// lock-acquisition measurement behind the batching PR's acceptance criterion
// plus the deterministic simulator runs of the key benchmarks. Everything in
// it is reproducible with `hoardbench -artifact <path>`.
type artifact struct {
	Schema     string                      `json:"schema"`
	Scale      string                      `json:"scale"`
	Provenance experiments.Provenance      `json:"provenance"`
	BatchLocks experiments.BatchLockResult `json:"batch_locks"`
	Sim        []experiments.BatchSimEntry `json:"sim"`
}

// writeArtifact runs the artifact benchmarks and writes the JSON record.
func writeArtifact(path string, opts experiments.Options, scale string, progress func(string, int)) error {
	if progress != nil {
		progress("batch-locks", 1)
	}
	art := artifact{
		Schema:     "hoardgo-bench/pr3-batching/v1",
		Scale:      scale,
		Provenance: stamp("hoardgo-bench/pr3-batching/v1", scale, opts),
		BatchLocks: experiments.MeasureBatchLocks(32, 200),
	}
	if progress != nil {
		progress("batch-sim", 8)
	}
	art.Sim = experiments.BatchSimResults(opts)
	data, err := json.MarshalIndent(art, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s: %.2f locks/malloc per-block vs %.2f batched (%.1fx fewer)\n",
		path, art.BatchLocks.PerBlock.LocksPerMalloc, art.BatchLocks.Batch.LocksPerMalloc,
		art.BatchLocks.Improvement)
	return nil
}

// footprintArtifact is the committed scavenger record (BENCH_PR5.json): the
// workload x release-mode footprint grid, the steady-state committed ratios
// behind the reclamation PR's acceptance criterion, and the batch-lock
// measurement re-run as the throughput guard. Reproducible with
// `hoardbench -footprint <path>`.
type footprintArtifact struct {
	Schema     string                       `json:"schema"`
	Scale      string                       `json:"scale"`
	Provenance experiments.Provenance       `json:"provenance"`
	Entries    []experiments.FootprintEntry `json:"entries"`
	// SteadyRatios maps "workload/mode" to that mode's steady-state
	// committed bytes over the retain-everything baseline (< 1 means the
	// policy shrank the resting footprint).
	SteadyRatios map[string]float64 `json:"steady_ratios"`
	// BatchLocks re-runs the batching PR's lock measurement with the
	// scavenger code in the tree — the ops-stay-within-noise guard.
	BatchLocks experiments.BatchLockResult `json:"batch_locks"`
}

// writeFootprint runs the footprint grid and writes the JSON record.
func writeFootprint(path string, opts experiments.Options, scale string, progress func(string, int)) error {
	art := footprintArtifact{
		Schema:       "hoardgo-bench/pr5-scavenge/v1",
		Scale:        scale,
		Provenance:   stamp("hoardgo-bench/pr5-scavenge/v1", scale, opts),
		Entries:      experiments.FootprintResults(opts, progress),
		SteadyRatios: map[string]float64{},
	}
	off := map[string]int64{}
	for _, e := range art.Entries {
		if e.Mode == "off" {
			off[e.Workload] = e.SteadyCommitted
		}
	}
	for _, e := range art.Entries {
		if base := off[e.Workload]; base > 0 && e.Mode != "off" {
			art.SteadyRatios[e.Workload+"/"+e.Mode] = float64(e.SteadyCommitted) / float64(base)
		}
	}
	if progress != nil {
		progress("batch-locks", 1)
	}
	art.BatchLocks = experiments.MeasureBatchLocks(32, 200)
	data, err := json.MarshalIndent(art, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s:\n", path)
	for _, e := range art.Entries {
		fmt.Printf("  %-10s %-8s steady %8d B  (peak %d B, %d scavenges)\n",
			e.Workload, e.Mode, e.SteadyCommitted, e.PeakCommitted, e.ScavengePasses)
	}
	for k, v := range art.SteadyRatios {
		fmt.Printf("  ratio %-20s %.2f\n", k, v)
	}
	return nil
}

// lockfreeArtifact is the committed zero-lock-steady-state record
// (BENCH_PR6.json): the real-environment heap-lock-acquisition comparison
// behind the lock-free PR's acceptance criterion (fast vs locked arm, per
// call site), and the deterministic simulator throughput sweep that guards
// against the fast paths slowing any workload. Reproducible with
// `hoardbench -scale full -lockfree <path>`.
type lockfreeArtifact struct {
	Schema     string                           `json:"schema"`
	Scale      string                           `json:"scale"`
	Provenance experiments.Provenance           `json:"provenance"`
	Locks      []experiments.LockFreeLockResult `json:"locks"`
	// Improvement maps workload name to locked-arm locks/op over fast-arm
	// locks/op at P=8 (the acceptance criterion reads these directly).
	Improvement map[string]float64             `json:"improvement"`
	Sim         []experiments.LockFreeSimEntry `json:"sim"`
	// SimRatios maps "bench/P" to fast-arm ops per virtual ms over the
	// locked arm's — the no-workload-gets-slower guard.
	SimRatios map[string]float64 `json:"sim_ratios"`
}

// writeLockFree runs the A11 measurements and writes the JSON record. The
// smoke thresholds are enforced here too (quick scale is what CI runs): the
// fast arm must stay under maxLocksPerOp on every workload and beat the
// locked arm by minImprovement, and no simulated workload may lose more than
// simSlack of its locked-arm throughput.
func writeLockFree(path string, opts experiments.Options, scale string, progress func(string, int)) error {
	const (
		maxLocksPerOp  = 0.25
		minImprovement = 4.0
		simSlack       = 0.02
	)
	schema := "hoardgo-bench/pr6-lockfree/v1"
	if progress != nil {
		progress("lockfree-locks", 8)
	}
	var rs []experiments.LockFreeLockResult
	var smokeErr error
	if opts.Scale == experiments.Quick {
		rs, smokeErr = experiments.LockFreeSmoke(maxLocksPerOp, minImprovement)
	} else {
		rs = experiments.MeasureLockFreeLocks(8, opts.Scale)
	}
	art := lockfreeArtifact{
		Schema:      schema,
		Scale:       scale,
		Provenance:  stamp(schema, scale, opts),
		Locks:       rs,
		Improvement: map[string]float64{},
		SimRatios:   map[string]float64{},
	}
	for _, r := range rs {
		art.Improvement[r.Workload] = r.Improvement
	}
	if progress != nil {
		progress("lockfree-sim", 8)
	}
	art.Sim = experiments.LockFreeSimResults(opts)
	locked := map[string]float64{}
	for _, e := range art.Sim {
		if e.Arm == "locked" {
			locked[fmt.Sprintf("%s/%d", e.Bench, e.Procs)] = e.OpsPerVirtualMS
		}
	}
	var slowed []string
	for _, e := range art.Sim {
		if e.Arm != "fast" {
			continue
		}
		key := fmt.Sprintf("%s/%d", e.Bench, e.Procs)
		if base := locked[key]; base > 0 {
			ratio := e.OpsPerVirtualMS / base
			art.SimRatios[key] = ratio
			if ratio < 1-simSlack {
				slowed = append(slowed, fmt.Sprintf("%s %.3fx", key, ratio))
			}
		}
	}
	data, err := json.MarshalIndent(art, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s:\n", path)
	for _, r := range art.Locks {
		fmt.Printf("  %-10s P=%d  fast %.4f locks/op vs locked %.4f  (%.1fx fewer)\n",
			r.Workload, r.Procs, r.Fast.LocksPerOp, r.Locked.LocksPerOp, r.Improvement)
	}
	if smokeErr != nil {
		return smokeErr
	}
	if len(slowed) > 0 {
		return fmt.Errorf("lockfree: fast arm lost simulated throughput: %s", strings.Join(slowed, ", "))
	}
	return nil
}

// tuneArtifact is the committed self-tuning record (BENCH_PR10.json): the
// A14 three-arm ablation — controller off (deliberately detuned statics),
// controller on (same bad starting knobs), and oracle (the hand-tuned static
// configuration) — on the prodcons/phaseshift/larson workload set and on the
// hoardload serving phase schedule. Reproducible with
// `hoardbench -tune <path>`; the convergence thresholds are enforced by this
// writer at every scale, after the artifact is on disk so a failing run
// still leaves the numbers to look at.
type tuneArtifact struct {
	Schema     string                      `json:"schema"`
	Scale      string                      `json:"scale"`
	Provenance experiments.Provenance      `json:"provenance"`
	Workloads  []experiments.ControlResult `json:"workloads"`
	Serving    experiments.TunedLoadResult `json:"serving"`
}

// writeTune runs the A14 ablation and writes the JSON record, then enforces
// the convergence thresholds: the tuned arm must engage, land its
// steady-state transfer traffic at the oracle arm's level (or under the
// absolute floor), keep the serving schedule inside the PR9 tail-latency
// SLOs, and not out-retain the oracle arm's resting footprint.
func writeTune(path string, opts experiments.Options, scale string, progress func(string, int)) error {
	schema := "hoardgo-bench/pr10-control/v1"
	procs := 4
	if opts.Scale == experiments.Full {
		procs = 8
	}
	art := tuneArtifact{
		Schema:     schema,
		Scale:      scale,
		Provenance: stamp(schema, scale, opts),
		Workloads:  experiments.MeasureControl(procs, opts.Scale, progress),
	}
	serving, err := experiments.MeasureTunedLoad(4, 1, opts.Scale, progress)
	if err != nil {
		return err
	}
	art.Serving = serving
	data, err := json.MarshalIndent(art, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s:\n", path)
	for _, r := range art.Workloads {
		fmt.Printf("  %-10s P=%d  transfers/op detuned %.4f -> tuned %.4f (oracle %.4f), %d decisions, footprint %.2fx oracle\n",
			r.Workload, r.Procs, r.Detuned.TransfersPerOp, r.Tuned.TransfersPerOp,
			r.Oracle.TransfersPerOp, r.Tuned.Decisions, r.FootprintRatioVsOracle)
	}
	for _, ph := range art.Serving.Tuned.Phases {
		fmt.Printf("  serving %-14s tuned malloc p999 %dns, request p999 %dns\n",
			ph.Name, ph.MallocP999NS, ph.RequestP999NS)
	}
	fmt.Printf("  serving tuned: %d decisions, final footprint %d B (%.2fx oracle)\n",
		art.Serving.Tuned.Decisions, art.Serving.Tuned.FinalFootprint,
		art.Serving.FootprintRatioVsOracle)
	if err := experiments.CheckControl(art.Workloads); err != nil {
		return err
	}
	return experiments.CheckTunedLoad(art.Serving)
}

// writeMetricsTimeline runs the instrumented churn scenario behind -metrics
// and writes the timeline artifact. Any invariant-audit failure during the
// run is a hard error.
func writeMetricsTimeline(path string, scale experiments.Scale) error {
	workers, rounds := 4, 300
	if scale == experiments.Full {
		workers, rounds = 8, 2000
	}
	tl, err := experiments.CollectMetricsTimeline(workers, rounds, 2*time.Millisecond)
	if err != nil {
		return err
	}
	data, err := json.MarshalIndent(tl, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s: %d samples, %d audits passed, final scrape %d bytes\n",
		path, len(tl.Samples), tl.AuditPasses, len(tl.Prometheus))
	return nil
}

// arenaArtifact is the committed real-memory-backend record (BENCH_PR7.json):
// the pointer→superblock resolution comparison behind the arena PR's
// acceptance criterion, the wall-clock malloc/free sweep on both backends,
// and the RSS trajectory of the churn workload under each release policy —
// with /proc/self/statm as ground truth that madvise returns pages.
// Reproducible with `hoardbench -arena <path>` on Linux amd64/arm64. Every
// row records its backend; wall-clock numbers are machine-dependent, the
// within-run ratios are what the thresholds read.
type arenaArtifact struct {
	Schema     string                             `json:"schema"`
	Scale      string                             `json:"scale"`
	Provenance experiments.Provenance             `json:"provenance"`
	Resolve    experiments.ResolveResult          `json:"resolve"`
	Throughput []experiments.ArenaThroughputEntry `json:"throughput"`
	RSS        []experiments.ArenaRSSEntry        `json:"rss"`
	// RSSRatios holds the headline fractions: "forced/peak" (forced-mode
	// final RSS over its own peak) and "scavenge/off" (paced-mode final
	// over the retain-everything final).
	RSSRatios map[string]float64 `json:"rss_ratios"`
}

// writeArena runs the A12 measurements and writes the JSON record. The
// smoke thresholds are enforced at quick scale (what make arena-smoke and
// CI run): arithmetic resolution at least 2x faster than the page table,
// forced release ending below 0.8x of its RSS peak, and the paced scavenger
// ending below the retain-everything arm.
func writeArena(path string, opts experiments.Options, scale string, progress func(string, int)) error {
	const (
		minResolveSpeedup = 2.0
		maxForcedOverPeak = 0.8
	)
	schema := "hoardgo-bench/pr7-arena/v1"
	if progress != nil {
		progress("arena-resolve", 1)
	}
	resolve, err := experiments.MeasureResolve(opts.Scale)
	if err != nil {
		return err
	}
	if progress != nil {
		progress("arena-throughput", 1)
	}
	tps, err := experiments.MeasureArenaThroughput(opts.Scale)
	if err != nil {
		return err
	}
	if progress != nil {
		progress("arena-rss", 4)
	}
	rss, err := experiments.MeasureArenaRSS(opts.Scale)
	if err != nil {
		return err
	}
	art := arenaArtifact{
		Schema:     schema,
		Scale:      scale,
		Provenance: stamp(schema, scale, opts),
		Resolve:    resolve,
		Throughput: tps,
		RSS:        rss,
		RSSRatios:  map[string]float64{},
	}
	byMode := map[string]experiments.ArenaRSSEntry{}
	for _, e := range art.RSS {
		byMode[e.Mode] = e
	}
	if f := byMode["forced"]; f.PeakDelta > 0 {
		art.RSSRatios["forced/peak"] = float64(f.FinalDelta) / float64(f.PeakDelta)
	}
	if off := byMode["off"]; off.FinalDelta > 0 {
		art.RSSRatios["scavenge/off"] = float64(byMode["scavenge"].FinalDelta) / float64(off.FinalDelta)
	}
	data, err := json.MarshalIndent(art, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s:\n", path)
	for _, e := range art.Resolve.Entries {
		fmt.Printf("  resolve %-6s %.2f ns/lookup over %d spans\n", e.Backend, e.NSPerLookup, e.Spans)
	}
	fmt.Printf("  resolve speedup %.2fx (threshold %.1fx)\n", art.Resolve.Speedup, minResolveSpeedup)
	for _, e := range art.Throughput {
		fmt.Printf("  throughput %-6s P=%-2d %10.0f ops/ms\n", e.Backend, e.Procs, e.OpsPerMS)
	}
	for _, e := range art.RSS {
		fmt.Printf("  rss %-8s peak %10d B  final %10d B  (%d scavenges, %d B decommitted)\n",
			e.Mode, e.PeakDelta, e.FinalDelta, e.ScavengePasses, e.DecommittedBytes)
	}
	if art.Resolve.Speedup < minResolveSpeedup {
		return fmt.Errorf("arena: resolution speedup %.2fx, want >= %.1fx", art.Resolve.Speedup, minResolveSpeedup)
	}
	if r, ok := art.RSSRatios["forced/peak"]; !ok || r >= maxForcedOverPeak {
		return fmt.Errorf("arena: forced-release final RSS is %.2fx of peak, want < %.2f", r, maxForcedOverPeak)
	}
	if r, ok := art.RSSRatios["scavenge/off"]; !ok || r >= 1 {
		return fmt.Errorf("arena: paced scavenger final RSS is %.2fx of the retain arm, want < 1", r)
	}
	return nil
}
