package private

import (
	"testing"

	"hoardgo/internal/alloc"
	"hoardgo/internal/alloctest"
	"hoardgo/internal/env"
)

func TestConformance(t *testing.T) {
	alloctest.Run(t, func() alloc.Allocator {
		return New(0, env.RealLockFactory{})
	})
}

// TestUnboundedBlowup demonstrates the paper's §2.2 failure mode: under a
// producer-consumer pattern, pure private heaps strand freed memory on the
// consumer's lists and committed memory grows linearly with rounds even
// though the program's live set is constant.
func TestUnboundedBlowup(t *testing.T) {
	a := New(0, env.RealLockFactory{})
	producer := a.NewThread(&env.RealEnv{ID: 0})
	consumer := a.NewThread(&env.RealEnv{ID: 1})
	const batch = 100
	runRounds := func(n int) int64 {
		for r := 0; r < n; r++ {
			ps := make([]alloc.Ptr, batch)
			for i := range ps {
				ps[i] = a.Malloc(producer, 64)
			}
			for _, p := range ps {
				a.Free(consumer, p)
			}
		}
		return a.Space().Committed()
	}
	c10 := runRounds(10)
	c50 := runRounds(40)
	if c50 < 3*c10 {
		t.Fatalf("committed memory did not blow up: %d after 10 rounds, %d after 50", c10, c50)
	}
	if got := a.Stats().LiveBytes; got != 0 {
		t.Fatalf("LiveBytes = %d; blowup must come from stranded frees, not leaks", got)
	}
	if stranded := a.FreeListBytes(); stranded == 0 {
		t.Fatal("no bytes stranded on consumer free lists")
	}
	if err := a.CheckIntegrity(); err != nil {
		t.Fatal(err)
	}
}

// TestSelfFreeingReuses checks the flip side: a thread that frees its own
// memory reuses it, so single-threaded usage stays bounded.
func TestSelfFreeingReuses(t *testing.T) {
	a := New(0, env.RealLockFactory{})
	th := a.NewThread(&env.RealEnv{})
	for r := 0; r < 100; r++ {
		ps := make([]alloc.Ptr, 100)
		for i := range ps {
			ps[i] = a.Malloc(th, 64)
		}
		for _, p := range ps {
			a.Free(th, p)
		}
	}
	// 100 x 64B = 6400 bytes live at peak; a handful of spans suffices.
	if got := a.Space().Committed(); got > 64*1024 {
		t.Fatalf("self-freeing thread committed %d bytes; should reuse its free lists", got)
	}
}

func TestFreeListLIFO(t *testing.T) {
	a := New(0, env.RealLockFactory{})
	th := a.NewThread(&env.RealEnv{})
	p := a.Malloc(th, 64)
	q := a.Malloc(th, 64)
	a.Free(th, p)
	a.Free(th, q)
	if got := a.Malloc(th, 64); got != q {
		t.Fatalf("expected LIFO reuse of %#x, got %#x", uint64(q), uint64(got))
	}
}
