// Package alloctest provides a conformance suite run against every
// allocator in the repository. Each allocator package's tests call Run with
// a factory; the suite checks the alloc.Allocator contract: round-trips,
// pointer distinctness, data integrity under random mixes, cross-thread
// frees, the large-object path, and concurrent stress with full teardown.
package alloctest

import (
	"math/rand"
	"sort"
	"sync"
	"testing"

	"hoardgo/internal/alloc"
	"hoardgo/internal/env"
)

// Factory creates a fresh allocator for one subtest.
type Factory func() alloc.Allocator

// Run executes the conformance suite against allocators from f.
func Run(t *testing.T, f Factory) {
	t.Run("RoundTrip", func(t *testing.T) { roundTrip(t, f()) })
	t.Run("MallocZero", func(t *testing.T) { mallocZero(t, f()) })
	t.Run("DistinctPointers", func(t *testing.T) { distinct(t, f()) })
	t.Run("DataIntegrityRandomMix", func(t *testing.T) { dataIntegrity(t, f()) })
	t.Run("LargeObjects", func(t *testing.T) { large(t, f()) })
	t.Run("CrossThreadFree", func(t *testing.T) { crossThread(t, f()) })
	t.Run("FreeNil", func(t *testing.T) { freeNil(t, f()) })
	t.Run("UsableSizeCoversRequest", func(t *testing.T) { usable(t, f()) })
	t.Run("Alignment", func(t *testing.T) { alignment(t, f()) })
	t.Run("LiveBlocksDisjoint", func(t *testing.T) { disjoint(t, f()) })
	t.Run("ConcurrentStress", func(t *testing.T) { stress(t, f()) })
}

func newThread(a alloc.Allocator, id int) *alloc.Thread {
	return a.NewThread(&env.RealEnv{ID: id})
}

func roundTrip(t *testing.T, a alloc.Allocator) {
	th := newThread(a, 0)
	sizes := []int{1, 8, 13, 64, 100, 1000, 4000, 4096, 5000, 65536}
	var ps []alloc.Ptr
	for _, sz := range sizes {
		p := a.Malloc(th, sz)
		if p.IsNil() {
			t.Fatalf("%s: Malloc(%d) = nil", a.Name(), sz)
		}
		buf := a.Bytes(p, sz)
		for i := range buf {
			buf[i] = byte(sz)
		}
		ps = append(ps, p)
	}
	for i, p := range ps {
		buf := a.Bytes(p, sizes[i])
		for j := range buf {
			if buf[j] != byte(sizes[i]) {
				t.Fatalf("%s: size %d corrupted at %d", a.Name(), sizes[i], j)
			}
		}
		a.Free(th, p)
	}
	if live := a.Stats().LiveBytes; live != 0 {
		t.Fatalf("%s: LiveBytes = %d after freeing everything", a.Name(), live)
	}
	if err := a.CheckIntegrity(); err != nil {
		t.Fatalf("%s: %v", a.Name(), err)
	}
}

func mallocZero(t *testing.T, a alloc.Allocator) {
	th := newThread(a, 0)
	p := a.Malloc(th, 0)
	if p.IsNil() {
		t.Fatalf("%s: Malloc(0) = nil", a.Name())
	}
	a.Free(th, p)
}

func distinct(t *testing.T, a alloc.Allocator) {
	th := newThread(a, 0)
	seen := make(map[alloc.Ptr]bool)
	var ps []alloc.Ptr
	for i := 0; i < 5000; i++ {
		p := a.Malloc(th, 1+i%300)
		if seen[p] {
			t.Fatalf("%s: duplicate pointer %#x", a.Name(), uint64(p))
		}
		seen[p] = true
		ps = append(ps, p)
	}
	for _, p := range ps {
		a.Free(th, p)
	}
	if err := a.CheckIntegrity(); err != nil {
		t.Fatalf("%s: %v", a.Name(), err)
	}
}

func dataIntegrity(t *testing.T, a alloc.Allocator) {
	th := newThread(a, 0)
	rng := rand.New(rand.NewSource(3))
	type obj struct {
		p   alloc.Ptr
		sz  int
		tag byte
	}
	var live []obj
	for op := 0; op < 4000; op++ {
		if len(live) == 0 || rng.Intn(5) < 2 {
			sz := 1 + rng.Intn(3000)
			if rng.Intn(25) == 0 {
				sz = 5000 + rng.Intn(30000)
			}
			p := a.Malloc(th, sz)
			tag := byte(op)
			buf := a.Bytes(p, sz)
			for i := range buf {
				buf[i] = tag
			}
			live = append(live, obj{p, sz, tag})
		} else {
			i := rng.Intn(len(live))
			o := live[i]
			buf := a.Bytes(o.p, o.sz)
			for j := range buf {
				if buf[j] != o.tag {
					t.Fatalf("%s: block %#x (%d bytes) corrupted at %d", a.Name(), uint64(o.p), o.sz, j)
				}
			}
			a.Free(th, o.p)
			live[i] = live[len(live)-1]
			live = live[:len(live)-1]
		}
	}
	for _, o := range live {
		a.Free(th, o.p)
	}
	if err := a.CheckIntegrity(); err != nil {
		t.Fatalf("%s: %v", a.Name(), err)
	}
}

func large(t *testing.T, a alloc.Allocator) {
	th := newThread(a, 0)
	p := a.Malloc(th, 1<<20)
	if got := a.UsableSize(p); got < 1<<20 {
		t.Fatalf("%s: large UsableSize = %d", a.Name(), got)
	}
	buf := a.Bytes(p, 1<<20)
	buf[0], buf[(1<<20)-1] = 0xAA, 0xBB
	before := a.Space().Committed()
	a.Free(th, p)
	if after := a.Space().Committed(); after >= before {
		t.Fatalf("%s: large free kept memory committed (%d -> %d)", a.Name(), before, after)
	}
}

func crossThread(t *testing.T, a alloc.Allocator) {
	producer := newThread(a, 0)
	consumer := newThread(a, 1)
	for round := 0; round < 30; round++ {
		var ps []alloc.Ptr
		for i := 0; i < 100; i++ {
			p := a.Malloc(producer, 40)
			a.Bytes(p, 40)[0] = byte(i)
			ps = append(ps, p)
		}
		for i, p := range ps {
			if a.Bytes(p, 40)[0] != byte(i) {
				t.Fatalf("%s: handed-off block corrupted", a.Name())
			}
			a.Free(consumer, p)
		}
	}
	if live := a.Stats().LiveBytes; live != 0 {
		t.Fatalf("%s: LiveBytes = %d after producer-consumer rounds", a.Name(), live)
	}
	if err := a.CheckIntegrity(); err != nil {
		t.Fatalf("%s: %v", a.Name(), err)
	}
}

func freeNil(t *testing.T, a alloc.Allocator) {
	th := newThread(a, 0)
	a.Free(th, 0)
}

func usable(t *testing.T, a alloc.Allocator) {
	th := newThread(a, 0)
	for sz := 1; sz <= 8192; sz += 7 {
		p := a.Malloc(th, sz)
		if got := a.UsableSize(p); got < sz {
			t.Fatalf("%s: UsableSize(%d) = %d", a.Name(), sz, got)
		}
		a.Free(th, p)
	}
}

// alignment: every block is at least 8-byte aligned (malloc's contract for
// the platforms of the era; all implementations here use 8-byte quanta).
func alignment(t *testing.T, a alloc.Allocator) {
	th := newThread(a, 0)
	for _, sz := range []int{0, 1, 3, 7, 9, 100, 4097, 70000} {
		p := a.Malloc(th, sz)
		if uint64(p)%8 != 0 {
			t.Fatalf("%s: Malloc(%d) = %#x not 8-aligned", a.Name(), sz, uint64(p))
		}
		a.Free(th, p)
	}
}

// disjoint: no two live blocks may overlap, checked via sorted usable
// ranges across a random mix of sizes, threads, and frees.
func disjoint(t *testing.T, a alloc.Allocator) {
	rng := rand.New(rand.NewSource(11))
	t0, t1 := newThread(a, 0), newThread(a, 1)
	type span struct{ lo, hi uint64 }
	live := map[alloc.Ptr]span{}
	var ptrs []alloc.Ptr
	for op := 0; op < 3000; op++ {
		th := t0
		if op%2 == 1 {
			th = t1
		}
		if len(ptrs) == 0 || rng.Intn(3) != 0 {
			sz := 1 + rng.Intn(6000)
			p := a.Malloc(th, sz)
			us := a.UsableSize(p)
			live[p] = span{uint64(p), uint64(p) + uint64(us)}
			ptrs = append(ptrs, p)
		} else {
			i := rng.Intn(len(ptrs))
			p := ptrs[i]
			a.Free(th, p)
			delete(live, p)
			ptrs[i] = ptrs[len(ptrs)-1]
			ptrs = ptrs[:len(ptrs)-1]
		}
	}
	spans := make([]span, 0, len(live))
	for _, s := range live {
		spans = append(spans, s)
	}
	sort.Slice(spans, func(i, j int) bool { return spans[i].lo < spans[j].lo })
	for i := 1; i < len(spans); i++ {
		if spans[i].lo < spans[i-1].hi {
			t.Fatalf("%s: live blocks overlap: [%#x,%#x) and [%#x,%#x)",
				a.Name(), spans[i-1].lo, spans[i-1].hi, spans[i].lo, spans[i].hi)
		}
	}
	for _, p := range ptrs {
		a.Free(t0, p)
	}
}

func stress(t *testing.T, a alloc.Allocator) {
	const workers = 6
	const opsPer = 2000
	ch := make(chan alloc.Ptr, 512)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			th := newThread(a, w)
			rng := rand.New(rand.NewSource(int64(w * 977)))
			var mine []alloc.Ptr
			for i := 0; i < opsPer; i++ {
				switch rng.Intn(4) {
				case 0, 1:
					p := a.Malloc(th, 1+rng.Intn(1500))
					a.Bytes(p, 4)[0] = byte(w)
					mine = append(mine, p)
				case 2:
					if len(mine) > 0 {
						j := rng.Intn(len(mine))
						select {
						case ch <- mine[j]:
						default:
							a.Free(th, mine[j])
						}
						mine[j] = mine[len(mine)-1]
						mine = mine[:len(mine)-1]
					}
				case 3:
					select {
					case p := <-ch:
						a.Free(th, p)
					default:
					}
				}
			}
			for _, p := range mine {
				a.Free(th, p)
			}
		}(w)
	}
	wg.Wait()
	close(ch)
	th := newThread(a, 999)
	for p := range ch {
		a.Free(th, p)
	}
	if live := a.Stats().LiveBytes; live != 0 {
		t.Fatalf("%s: LiveBytes = %d after stress teardown", a.Name(), live)
	}
	if err := a.CheckIntegrity(); err != nil {
		t.Fatalf("%s: %v", a.Name(), err)
	}
}
