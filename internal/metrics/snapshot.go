package metrics

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
	"time"
)

// ClassSample is one size class's occupancy inside one heap. Only classes
// with at least one superblock are sampled.
type ClassSample struct {
	// Class is the size-class index; BlockSize its block size in bytes.
	Class     int `json:"class"`
	BlockSize int `json:"block_size"`
	// Superblocks is the number of superblocks of this class the heap
	// holds; InUseBytes the bytes allocated from them.
	Superblocks int   `json:"superblocks"`
	InUseBytes  int64 `json:"in_use_bytes"`
	// Groups is the fullness-group histogram: Groups[g] superblocks sit
	// in group g (the last entry is the completely-full group).
	Groups []int `json:"groups"`
}

// HeapSample is one heap's occupancy at one instant, the paper's u(i)/a(i)
// made observable.
type HeapSample struct {
	// ID is the heap index (0 = global).
	ID int `json:"id"`
	// U and A are the heap's in-use and held bytes.
	U int64 `json:"u"`
	A int64 `json:"a"`
	// Superblocks is the number of superblocks held.
	Superblocks int `json:"superblocks"`
	// Decommitted is how many of those superblocks the scavenger has
	// returned to the OS (still held, recommitted on reuse).
	Decommitted int `json:"decommitted"`
	// PendingBytes is the racy pending-remote-free hint.
	PendingBytes int64 `json:"pending_bytes"`
	// Groups is the fullness-group histogram aggregated over classes.
	Groups []int `json:"groups"`
	// Classes is the per-class breakdown (non-empty classes only); nil in
	// aggregated-only snapshots.
	Classes []ClassSample `json:"classes,omitempty"`
}

// ControllerDecision is one knob change the self-tuning controller applied,
// mirrored from the controller's decision ring so the metrics timeline can
// carry the tuning history without importing internal/control.
type ControllerDecision struct {
	WhenNS int64   `json:"when_ns"`
	Knob   string  `json:"knob"`
	Old    float64 `json:"old"`
	New    float64 `json:"new"`
	Reason string  `json:"reason"`
}

// ControllerSample is the self-tuning controller section of a Snapshot:
// activity counters, the knob values currently in force, and the retained
// decision log (oldest first).
type ControllerSample struct {
	Ticks     int64                `json:"ticks"`
	IdleTicks int64                `json:"idle_ticks"`
	Decisions int64                `json:"decisions"`
	Knobs     map[string]float64   `json:"knobs,omitempty"`
	Log       []ControllerDecision `json:"log,omitempty"`
}

// Snapshot is one observation of an allocator: counters, per-heap occupancy,
// magazine fill, and lock counters. Zero-valued sections are omitted from
// export (e.g. Heaps is empty for non-Hoard policies, Locks is empty without
// an instrumented lock factory).
type Snapshot struct {
	// WhenNS is the wall-clock instant of the sample (UnixNano).
	WhenNS int64 `json:"when_ns"`
	// Allocator is the allocator's name.
	Allocator string `json:"allocator"`
	// Counters are flat monotonic counters and gauges, keyed by a
	// Prometheus-safe suffix ("mallocs_total", "live_bytes", ...).
	Counters map[string]int64 `json:"counters"`
	// Heaps is the per-heap occupancy (Hoard policy only).
	Heaps []HeapSample `json:"heaps,omitempty"`
	// MagazineBytes is the bytes parked in thread-cache magazines; -1
	// when no thread cache is layered.
	MagazineBytes int64 `json:"magazine_bytes"`
	// Locks are the instrumented-lock counters.
	Locks []LockStats `json:"locks,omitempty"`
	// Controller is the self-tuning controller's activity; nil when no
	// controller is running.
	Controller *ControllerSample `json:"controller,omitempty"`
}

// NewSnapshot returns a Snapshot stamped with the current time and no
// thread cache.
func NewSnapshot(allocator string) Snapshot {
	return Snapshot{
		WhenNS:        time.Now().UnixNano(),
		Allocator:     allocator,
		Counters:      make(map[string]int64),
		MagazineBytes: -1,
	}
}

// WriteJSON writes the snapshot as indented JSON.
func (s Snapshot) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s)
}

// WritePrometheus writes the snapshot in the Prometheus text exposition
// format (version 0.0.4): HELP/TYPE headers followed by samples, one metric
// family at a time, deterministically ordered.
func (s Snapshot) WritePrometheus(w io.Writer) error {
	var b strings.Builder

	// Flat counters. Names ending in _total are counters; the rest are
	// gauges.
	names := make([]string, 0, len(s.Counters))
	for name := range s.Counters {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		full := "hoard_" + name
		kind := "gauge"
		if strings.HasSuffix(name, "_total") {
			kind = "counter"
		}
		fmt.Fprintf(&b, "# HELP %s Allocator counter %s.\n", full, name)
		fmt.Fprintf(&b, "# TYPE %s %s\n", full, kind)
		fmt.Fprintf(&b, "%s{allocator=%q} %d\n", full, s.Allocator, s.Counters[name])
	}

	if len(s.Locks) > 0 {
		writeLockFamily(&b, "hoard_lock_acquires_total", "counter",
			"Successful lock acquisitions (Lock and successful TryLock).",
			s.Locks, func(l LockStats) int64 { return l.Acquires })
		writeLockFamily(&b, "hoard_lock_contended_total", "counter",
			"Lock calls that found the lock held and waited.",
			s.Locks, func(l LockStats) int64 { return l.Contended })
		writeLockFamily(&b, "hoard_lock_try_misses_total", "counter",
			"TryLock calls that found the lock held and gave up.",
			s.Locks, func(l LockStats) int64 { return l.TryMisses })
		writeLockFamily(&b, "hoard_lock_wait_ns_total", "counter",
			"Total wall nanoseconds spent waiting for the lock.",
			s.Locks, func(l LockStats) int64 { return l.WaitNS })
		writeLockFamily(&b, "hoard_lock_hold_ns_total", "counter",
			"Total wall nanoseconds the lock was held.",
			s.Locks, func(l LockStats) int64 { return l.HoldNS })
	}

	if len(s.Heaps) > 0 {
		writeHeapFamily(&b, "hoard_heap_in_use_bytes",
			"Bytes allocated from the heap's superblocks (the paper's u).",
			s.Heaps, func(h HeapSample) int64 { return h.U })
		writeHeapFamily(&b, "hoard_heap_held_bytes",
			"Bytes held by the heap in superblocks (the paper's a).",
			s.Heaps, func(h HeapSample) int64 { return h.A })
		writeHeapFamily(&b, "hoard_heap_superblocks",
			"Superblocks held by the heap.",
			s.Heaps, func(h HeapSample) int64 { return int64(h.Superblocks) })
		writeHeapFamily(&b, "hoard_heap_decommitted_superblocks",
			"Held superblocks currently decommitted by the scavenger.",
			s.Heaps, func(h HeapSample) int64 { return int64(h.Decommitted) })
		writeHeapFamily(&b, "hoard_heap_remote_pending_bytes",
			"Racy hint of bytes parked on the heap's remote-free stacks.",
			s.Heaps, func(h HeapSample) int64 { return h.PendingBytes })
		const name = "hoard_heap_group_superblocks"
		fmt.Fprintf(&b, "# HELP %s Superblocks per fullness group (last group is completely full).\n", name)
		fmt.Fprintf(&b, "# TYPE %s gauge\n", name)
		for _, h := range s.Heaps {
			for g, n := range h.Groups {
				fmt.Fprintf(&b, "%s{heap=\"%d\",group=\"%d\"} %d\n", name, h.ID, g, n)
			}
		}
	}

	if s.MagazineBytes >= 0 {
		fmt.Fprintf(&b, "# HELP hoard_tcache_magazine_bytes Bytes parked in per-thread magazines.\n")
		fmt.Fprintf(&b, "# TYPE hoard_tcache_magazine_bytes gauge\n")
		fmt.Fprintf(&b, "hoard_tcache_magazine_bytes{allocator=%q} %d\n", s.Allocator, s.MagazineBytes)
	}

	if c := s.Controller; c != nil {
		counter := func(name, help string, v int64) {
			fmt.Fprintf(&b, "# HELP %s %s\n", name, help)
			fmt.Fprintf(&b, "# TYPE %s counter\n", name)
			fmt.Fprintf(&b, "%s{allocator=%q} %d\n", name, s.Allocator, v)
		}
		counter("hoard_controller_ticks_total",
			"Self-tuning controller loop iterations.", c.Ticks)
		counter("hoard_controller_idle_ticks_total",
			"Controller ticks skipped for lack of allocator traffic.", c.IdleTicks)
		counter("hoard_controller_decisions_total",
			"Knob changes the controller applied.", c.Decisions)
		if len(c.Knobs) > 0 {
			knobs := make([]string, 0, len(c.Knobs))
			for k := range c.Knobs {
				knobs = append(knobs, k)
			}
			sort.Strings(knobs)
			const name = "hoard_controller_knob"
			fmt.Fprintf(&b, "# HELP %s Current value of a self-tuned allocator knob.\n", name)
			fmt.Fprintf(&b, "# TYPE %s gauge\n", name)
			for _, k := range knobs {
				fmt.Fprintf(&b, "%s{knob=%q} %g\n", name, k, c.Knobs[k])
			}
		}
	}

	_, err := io.WriteString(w, b.String())
	return err
}

func writeLockFamily(b *strings.Builder, name, kind, help string, locks []LockStats, get func(LockStats) int64) {
	fmt.Fprintf(b, "# HELP %s %s\n", name, help)
	fmt.Fprintf(b, "# TYPE %s %s\n", name, kind)
	for _, l := range locks {
		fmt.Fprintf(b, "%s{lock=%q} %d\n", name, l.Name, get(l))
	}
}

func writeHeapFamily(b *strings.Builder, name, help string, heaps []HeapSample, get func(HeapSample) int64) {
	fmt.Fprintf(b, "# HELP %s %s\n", name, help)
	fmt.Fprintf(b, "# TYPE %s gauge\n", name)
	for _, h := range heaps {
		fmt.Fprintf(b, "%s{heap=\"%d\"} %d\n", name, h.ID, get(h))
	}
}

// Collector samples an allocator into a bounded ring buffer, either on
// demand (Sample) or periodically on a background goroutine (Start/Stop).
// The sampling callback is provided by whoever wires the collector to an
// allocator; it must be safe to call concurrently with allocation.
type Collector struct {
	sample   func() Snapshot
	capacity int

	mu   sync.Mutex
	ring []Snapshot
	next int // ring write cursor once full
	full bool

	stop chan struct{}
	done chan struct{}
}

// NewCollector creates a collector retaining the last capacity snapshots
// (minimum 1).
func NewCollector(capacity int, sample func() Snapshot) *Collector {
	if capacity < 1 {
		capacity = 1
	}
	return &Collector{sample: sample, capacity: capacity}
}

// Sample takes one snapshot now, records it, and returns it.
func (c *Collector) Sample() Snapshot {
	s := c.sample()
	c.mu.Lock()
	if len(c.ring) < c.capacity {
		c.ring = append(c.ring, s)
	} else {
		c.ring[c.next] = s
		c.next = (c.next + 1) % c.capacity
		c.full = true
	}
	c.mu.Unlock()
	return s
}

// Start samples every interval on a background goroutine until Stop. It
// panics if the collector is already running.
func (c *Collector) Start(interval time.Duration) {
	if interval <= 0 {
		panic(fmt.Sprintf("metrics: collector interval %v", interval))
	}
	c.mu.Lock()
	if c.stop != nil {
		c.mu.Unlock()
		panic("metrics: collector already running")
	}
	c.stop = make(chan struct{})
	c.done = make(chan struct{})
	stop, done := c.stop, c.done
	c.mu.Unlock()
	go func() {
		defer close(done)
		tick := time.NewTicker(interval)
		defer tick.Stop()
		for {
			select {
			case <-stop:
				return
			case <-tick.C:
				c.Sample()
			}
		}
	}()
}

// Stop halts the background sampler (no-op if not running) and takes one
// final snapshot.
func (c *Collector) Stop() {
	c.mu.Lock()
	stop, done := c.stop, c.done
	c.stop, c.done = nil, nil
	c.mu.Unlock()
	if stop != nil {
		close(stop)
		<-done
	}
	c.Sample()
}

// Snapshots returns the retained snapshots in chronological order.
func (c *Collector) Snapshots() []Snapshot {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]Snapshot, 0, len(c.ring))
	if c.full {
		out = append(out, c.ring[c.next:]...)
		out = append(out, c.ring[:c.next]...)
	} else {
		out = append(out, c.ring...)
	}
	return out
}
