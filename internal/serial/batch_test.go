package serial

import (
	"testing"

	"hoardgo/internal/alloc"
	"hoardgo/internal/env"
)

func TestBatchRoundTrip(t *testing.T) {
	a := New(0, env.RealLockFactory{})
	th := a.NewThread(&env.RealEnv{})
	const n = 50
	out := make([]alloc.Ptr, n)
	if got := a.MallocBatch(th, 64, n, out); got != n {
		t.Fatalf("MallocBatch = %d, want %d", got, n)
	}
	seen := make(map[alloc.Ptr]bool, n)
	for _, p := range out {
		if p.IsNil() || seen[p] {
			t.Fatalf("nil or duplicate pointer %#x", uint64(p))
		}
		seen[p] = true
	}
	a.FreeBatch(th, out)
	st := a.Stats()
	if st.Mallocs != n || st.Frees != n || st.LiveBytes != 0 {
		t.Fatalf("stats %+v", st)
	}
	if st.BatchRefills != 1 || st.BatchFlushes != 1 || st.BatchedBlocks != 2*n {
		t.Fatalf("batch counters: refills=%d flushes=%d blocks=%d",
			st.BatchRefills, st.BatchFlushes, st.BatchedBlocks)
	}
	if err := a.CheckIntegrity(); err != nil {
		t.Fatal(err)
	}
}

// TestBatchSingleLockAcquisition is the protocol's point on the serial
// allocator: one heap-lock acquisition per MallocBatch and per FreeBatch,
// however many blocks move.
func TestBatchSingleLockAcquisition(t *testing.T) {
	clf := &env.CountingLockFactory{Inner: env.RealLockFactory{}}
	a := New(0, clf)
	th := a.NewThread(&env.RealEnv{})
	const n = 30
	out := make([]alloc.Ptr, n)
	a.MallocBatch(th, 64, n, out)
	if got := clf.Acquires(); got != 1 {
		t.Fatalf("MallocBatch(%d) took %d lock acquisitions, want 1", n, got)
	}
	a.FreeBatch(th, out)
	if got := clf.Acquires(); got != 2 {
		t.Fatalf("FreeBatch(%d) took %d further acquisitions, want 1", n, got-1)
	}
}

func TestBatchMixedSuperblocksAndLarge(t *testing.T) {
	a := New(0, env.RealLockFactory{})
	th := a.NewThread(&env.RealEnv{})
	var batch []alloc.Ptr
	// Two size classes (two superblock groups) plus a large object and a
	// nil: FreeBatch must group and dispatch each correctly.
	for i := 0; i < 10; i++ {
		batch = append(batch, a.Malloc(th, 64))
	}
	for i := 0; i < 5; i++ {
		batch = append(batch, a.Malloc(th, 2000))
	}
	batch = append(batch, a.Malloc(th, a.classes.MaxSize()+1))
	batch = append(batch, 0)
	a.FreeBatch(th, batch)
	if live := a.Stats().LiveBytes; live != 0 {
		t.Fatalf("LiveBytes = %d", live)
	}
	if err := a.CheckIntegrity(); err != nil {
		t.Fatal(err)
	}
}
