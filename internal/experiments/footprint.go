package experiments

import (
	"fmt"
	"math"
	"sync/atomic"

	"hoardgo/internal/alloc"
	"hoardgo/internal/core"
	"hoardgo/internal/env"
	"hoardgo/internal/scavenge"
	"hoardgo/internal/workload"
)

// The footprint experiments measure what the paper's evaluation does not:
// the committed-memory trajectory of Hoard under the blowup workloads when
// empty superblocks parked on the global heap are (a) retained forever (the
// paper's policy), (b) trimmed by the paced scavenger, or (c) forcibly
// decommitted after every round. The runs share one virtual clock — each
// workload round advances it by footprintRoundNS — so the scavenger's
// cold-age and token-bucket behavior is deterministic.

// footprintRoundNS is one workload round in virtual nanoseconds.
const footprintRoundNS = int64(1e6)

// footprintS is the superblock size the thresholds are tuned for.
const footprintS = int64(8192)

// FootprintEntry is one workload x mode measurement.
type FootprintEntry struct {
	// Workload is "prodcons" or "phaseshift"; Mode is "off" (retain
	// everything), "scavenge" (paced background policy), or "forced"
	// (decommit all empties every round).
	Workload string `json:"workload"`
	Mode     string `json:"mode"`
	// Procs and Rounds shape the run.
	Procs  int `json:"procs"`
	Rounds int `json:"rounds"`
	// PeakCommitted is the run's high-water committed bytes.
	PeakCommitted int64 `json:"peak_committed"`
	// SteadyCommitted is the mean committed bytes over the last quarter of
	// rounds — the resting footprint the mode converges to.
	SteadyCommitted int64 `json:"steady_committed"`
	// FinalCommitted, FinalReserved and FinalDecommitted are the
	// accounting at the end of the run (reserved - committed =
	// decommitted).
	FinalCommitted   int64 `json:"final_committed"`
	FinalReserved    int64 `json:"final_reserved"`
	FinalDecommitted int64 `json:"final_decommitted"`
	// ScavengePasses and ScavengedBytes count the scavenge activity.
	ScavengePasses int64 `json:"scavenge_passes"`
	ScavengedBytes int64 `json:"scavenged_bytes"`
	// ElapsedNS is the run's virtual time — the throughput guard: the
	// scavenger must not slow the workload measurably.
	ElapsedNS int64 `json:"elapsed_ns"`
}

// FootprintModes lists the release policies the experiment compares.
func FootprintModes() []string { return []string{"off", "scavenge", "forced"} }

// footprintPolicy drives one release policy from a workload's AfterRound
// hook, in virtual time.
type footprintPolicy struct {
	mode  string
	hoard *core.Hoard
	vnow  *atomic.Int64
	pacer *scavenge.Pacer
}

func newFootprintPolicy(mode string, h *core.Hoard) *footprintPolicy {
	p := &footprintPolicy{mode: mode, hoard: h, vnow: new(atomic.Int64)}
	h.SetClock(p.vnow.Load)
	if mode == "scavenge" {
		// Watermarks sized to the workloads' few-superblock surpluses:
		// engage above two empty superblocks, keep one as warm reserve.
		p.pacer = scavenge.NewPacer(scavenge.Config{
			HighWaterBytes: 2 * footprintS,
			LowWaterBytes:  footprintS,
			BytesPerSec:    64 << 20, // 64 KiB per virtual millisecond-round
			BurstBytes:     8 * footprintS,
		})
	}
	return p
}

// afterRound advances the virtual clock past round r and applies the policy.
// Superblocks parked during round r carry stamp r*footprintRoundNS, so a
// cold age of one round makes this round's parkings eligible while the token
// bucket still paces how fast they actually go.
func (p *footprintPolicy) afterRound(e env.Env, r int) {
	now := int64(r+1) * footprintRoundNS
	p.vnow.Store(now)
	switch p.mode {
	case "forced":
		p.hoard.ScavengeGlobal(e, math.MaxInt64, 0)
	case "scavenge":
		empty := p.hoard.GlobalEmptyBytes(e)
		if grant := p.pacer.Grant(empty, now); grant > 0 {
			p.pacer.Spend(p.hoard.ScavengeGlobal(e, grant, footprintRoundNS))
		}
	}
}

// steadyMean averages the last quarter of a committed-bytes series.
func steadyMean(series []int64) int64 {
	if len(series) == 0 {
		return 0
	}
	tail := series[len(series)-(len(series)+3)/4:]
	var sum int64
	for _, v := range tail {
		sum += v
	}
	return sum / int64(len(tail))
}

// runFootprint executes one workload under one release mode.
func runFootprint(opts Options, workloadName, mode string) FootprintEntry {
	var hh *core.Hoard
	mk := func(procs int, lf env.LockFactory) alloc.Allocator {
		hh = core.New(core.Config{Heaps: 2 * procs}, lf)
		return hh
	}

	var procs int
	var series []int64
	var res workload.Result
	switch workloadName {
	case "prodcons":
		procs = 4
		cfg := workload.DefaultProdCons(procs)
		if opts.Scale == Quick {
			cfg.Rounds, cfg.Batch = 20, 400
		}
		h := workload.NewSimMaker("hoard", procs, opts.Cost, mk)
		pol := newFootprintPolicy(mode, hh)
		cfg.AfterRound = pol.afterRound
		res, series = workload.ProdCons(h, cfg)
	case "phaseshift":
		procs = 8
		cfg := workload.DefaultPhaseShift(procs)
		h := workload.NewSimMaker("hoard", procs, opts.Cost, mk)
		pol := newFootprintPolicy(mode, hh)
		cfg.AfterRound = pol.afterRound
		res, series = workload.PhaseShift(h, cfg)
	default:
		panic(fmt.Sprintf("experiments: unknown footprint workload %q", workloadName))
	}

	return FootprintEntry{
		Workload:         workloadName,
		Mode:             mode,
		Procs:            procs,
		Rounds:           len(series),
		PeakCommitted:    res.VM.PeakCommitted,
		SteadyCommitted:  steadyMean(series),
		FinalCommitted:   series[len(series)-1],
		FinalReserved:    res.VM.Reserved,
		FinalDecommitted: res.VM.DecommittedBytes,
		ScavengePasses:   res.Alloc.ScavengePasses,
		ScavengedBytes:   res.Alloc.ScavengedBytes,
		ElapsedNS:        res.ElapsedNS,
	}
}

// FootprintResults runs the full workload x mode grid.
func FootprintResults(opts Options, progress func(string, int)) []FootprintEntry {
	var out []FootprintEntry
	for _, wl := range []string{"prodcons", "phaseshift"} {
		for _, mode := range FootprintModes() {
			if progress != nil {
				procs := 4
				if wl == "phaseshift" {
					procs = 8
				}
				progress(fmt.Sprintf("hoard/%s(%s)", wl, mode), procs)
			}
			out = append(out, runFootprint(opts, wl, mode))
		}
	}
	return out
}

// Footprint renders the scavenger footprint comparison as a table.
func Footprint(opts Options, progress func(string, int)) Table {
	t := Table{
		ID: "footprint", Title: "A10",
		Paper:  "page-level reclamation: steady-state committed memory by release policy",
		Header: []string{"workload", "mode", "peak heap", "steady heap", "final heap", "decommitted", "scavenges", "virtual ms"},
	}
	for _, e := range FootprintResults(opts, progress) {
		t.Rows = append(t.Rows, []string{
			e.Workload,
			e.Mode,
			fmtBytes(e.PeakCommitted),
			fmtBytes(e.SteadyCommitted),
			fmtBytes(e.FinalCommitted),
			fmtBytes(e.FinalDecommitted),
			fmt.Sprintf("%d", e.ScavengePasses),
			fmt.Sprintf("%.2f", float64(e.ElapsedNS)/1e6),
		})
	}
	return t
}
