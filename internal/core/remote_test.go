package core

import (
	"math/rand"
	"sync"
	"testing"

	"hoardgo/internal/alloc"
	"hoardgo/internal/env"
)

// TestRemoteFastPathCounters: a cross-thread free to a per-processor heap
// must take the lock-free push, and reconciliation must recover the blocks.
// Runs with DisableLockFree so the frees exercise the remote-stack protocol
// (push, park, owner-side drain) rather than the unified direct push — the
// stack is the fallback for sealed superblocks, so its machinery stays
// pinned here; TestUnifiedFastFreeCrossHeap covers the direct path.
func TestRemoteFastPathCounters(t *testing.T) {
	h := newHoard(Config{Heaps: 4, DisableLockFree: true})
	producer := thread(h, 0) // heap 1
	consumer := thread(h, 1) // heap 2
	var ps []alloc.Ptr
	for i := 0; i < 50; i++ {
		ps = append(ps, h.Malloc(producer, 64))
	}
	for _, p := range ps {
		h.Free(consumer, p)
	}
	st := h.Stats()
	if st.RemoteFrees != 50 {
		t.Fatalf("RemoteFrees = %d, want 50", st.RemoteFrees)
	}
	if st.RemoteFastFrees != 50 {
		t.Fatalf("RemoteFastFrees = %d, want 50 (remote frees took a lock)", st.RemoteFastFrees)
	}
	if st.LiveBytes != 0 {
		t.Fatalf("LiveBytes = %d after remote frees", st.LiveBytes)
	}
	// Integrity holds with blocks still parked on remote stacks.
	if err := h.CheckIntegrity(); err != nil {
		t.Fatalf("integrity with in-flight remote frees: %v", err)
	}
	h.Reconcile(&env.RealEnv{})
	if got := h.Stats().RemoteDrains; got == 0 {
		t.Fatal("no remote drain recorded")
	}
	var pending int64
	for i := 0; i < h.NumHeaps(); i++ {
		u, _, _ := h.HeapSnapshot(i)
		pending += u
	}
	if pending != 0 {
		t.Fatalf("heap u sums to %d after Reconcile, want 0", pending)
	}
	if err := h.CheckIntegrity(); err != nil {
		t.Fatal(err)
	}
}

// TestLocalFreeTakesNoFastPath: same-heap frees must not be counted remote.
func TestLocalFreeTakesNoFastPath(t *testing.T) {
	h := newHoard(Config{Heaps: 4})
	th := thread(h, 0)
	p := h.Malloc(th, 64)
	h.Free(th, p)
	st := h.Stats()
	if st.RemoteFrees != 0 || st.RemoteFastFrees != 0 {
		t.Fatalf("local free counted remote: %d/%d", st.RemoteFrees, st.RemoteFastFrees)
	}
}

// TestRemoteDoubleFreeDetected: a double free through the remote stack is
// deferred to drain time but must still panic. DisableLockFree forces the
// stack path; the unified direct push detects the duplicate immediately
// (TestUnifiedFastFreeDoubleFree).
func TestRemoteDoubleFreeDetected(t *testing.T) {
	h := newHoard(Config{Heaps: 2, DisableLockFree: true})
	producer := thread(h, 0)
	consumer := thread(h, 1)
	p := h.Malloc(producer, 64)
	h.Free(consumer, p)
	h.Free(consumer, p)
	defer func() {
		if recover() == nil {
			t.Fatal("double remote free not detected at reconciliation")
		}
	}()
	h.Reconcile(&env.RealEnv{})
}

// TestOwnershipMigrationStress is the ownership-change race under the
// lock-free protocol: producers mass-free locally so their heaps keep
// evicting superblocks to the global heap while consumers push remote frees
// at those same superblocks. At quiescence, accounting must be exact and
// every structure consistent.
func TestOwnershipMigrationStress(t *testing.T) {
	h := newHoard(Config{Heaps: 3, EmptyFraction: 0.5, K: KNone})
	const producers, consumers = 3, 3
	const rounds = 60
	const batch = 120
	chans := make([]chan alloc.Ptr, producers)
	for i := range chans {
		chans[i] = make(chan alloc.Ptr, batch)
	}
	var wg sync.WaitGroup
	for w := 0; w < producers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			th := thread(h, w)
			rng := rand.New(rand.NewSource(int64(w + 1)))
			for r := 0; r < rounds; r++ {
				var keep []alloc.Ptr
				for i := 0; i < batch; i++ {
					p := h.Malloc(th, 1+rng.Intn(200))
					if i%2 == 0 {
						chans[w] <- p
					} else {
						keep = append(keep, p)
					}
				}
				// Mass local frees drive the emptiness invariant:
				// superblocks migrate to the global heap while the
				// consumer's remote frees for them are in flight.
				for _, p := range keep {
					h.Free(th, p)
				}
			}
			close(chans[w])
		}(w)
	}
	for w := 0; w < consumers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			// Consumer threads map to different heaps than producers.
			th := thread(h, producers+w)
			for p := range chans[w%producers] {
				h.Free(th, p)
			}
		}(w)
	}
	wg.Wait()

	if err := h.CheckIntegrity(); err != nil {
		t.Fatalf("integrity at quiescence (pre-reconcile): %v", err)
	}
	if live := h.Stats().LiveBytes; live != 0 {
		t.Fatalf("LiveBytes = %d at quiescence", live)
	}
	h.Reconcile(&env.RealEnv{})
	var u int64
	for i := 0; i < h.NumHeaps(); i++ {
		hu, _, _ := h.HeapSnapshot(i)
		u += hu
	}
	if u != 0 {
		t.Fatalf("heaps report %d bytes in use after Reconcile of a fully-freed run", u)
	}
	if err := h.CheckIntegrity(); err != nil {
		t.Fatal(err)
	}
}

// TestMallocMissDrainsOwnHeap: a heap whose superblocks are all "full" only
// because of pending remote frees must satisfy the next malloc by draining,
// not by fetching new memory.
func TestMallocMissDrainsOwnHeap(t *testing.T) {
	h := newHoard(Config{Heaps: 2})
	producer := thread(h, 0)
	consumer := thread(h, 1)
	class, _ := h.Classes().ClassFor(64)
	blockSize := h.Classes().Size(class)
	perSB := h.cfg.SuperblockSize / blockSize
	var ps []alloc.Ptr
	for i := 0; i < perSB; i++ {
		ps = append(ps, h.Malloc(producer, 64))
	}
	reserves := h.Stats().OSReserves
	// Free remotely, below every drain threshold trigger.
	for _, p := range ps[:4] {
		h.Free(consumer, p)
	}
	// The superblock is full minus pending; the next producer malloc must
	// drain rather than reserve.
	q := h.Malloc(producer, 64)
	if got := h.Stats().OSReserves; got != reserves {
		t.Fatalf("malloc reserved from OS (%d -> %d) instead of draining remote frees", reserves, got)
	}
	h.Free(producer, q)
	for _, p := range ps[4:] {
		h.Free(producer, p)
	}
	if err := h.CheckIntegrity(); err != nil {
		t.Fatal(err)
	}
}
