package hoard

import (
	"fmt"
	"time"

	"hoardgo/internal/control"
)

// This file is the public face of the self-tuning subsystem
// (internal/control): a background controller that watches the allocator's
// own metrics — lock traffic, per-class occupancy, footprint vs live bytes,
// superblock migration — and retunes the empty fraction f, the slack K,
// per-size-class magazine capacities, and the scavenger's pacing. See
// DESIGN.md §14.

// ControlConfig configures the self-tuning controller. The zero value is
// disabled; setting Enabled with all other fields zero runs the documented
// defaults (50ms ticks, 4-tick per-knob cooldown, 256-entry decision log).
type ControlConfig struct {
	// Enabled starts the controller with New. (It can also be started
	// later with StartController.)
	Enabled bool

	// Interval is the tick period.
	Interval time.Duration

	// MinOpsPerTick gates rule evaluation: a tick observing fewer
	// malloc+free operations is idle and moves nothing.
	MinOpsPerTick int64

	// CooldownTicks is how many non-idle ticks a knob rests after a change
	// before it may move again — the anti-flapping hysteresis.
	CooldownTicks int

	// LogSize bounds the retained decision log.
	LogSize int

	// Manual pins knobs to fixed values; the controller's rules skip a
	// pinned knob and instead drive it to the pinned value. Knob names are
	// the ones ControllerStats reports: "empty_fraction", "slack_k",
	// "magazine_capacity" (all classes) or "magazine_capacity/512" (one
	// class), "scavenger_high_water_bytes", "scavenger_bytes_per_sec".
	Manual map[string]float64
}

func (c ControlConfig) internal() control.Config {
	return control.Config{
		Interval:      c.Interval,
		MinOpsPerTick: c.MinOpsPerTick,
		CooldownTicks: c.CooldownTicks,
		LogSize:       c.LogSize,
		Manual:        c.Manual,
	}
}

// ControllerDecision is one knob change the controller applied.
type ControllerDecision struct {
	// WhenNS is the decision's UnixNano timestamp.
	WhenNS int64
	// Knob names what moved; Old and New are the values before and after.
	Knob     string
	Old, New float64
	// Reason is the human-readable rule trigger ("lock traffic high ...").
	Reason string
}

// ControllerStats is a snapshot of the self-tuning controller's activity.
type ControllerStats struct {
	// Ticks counts controller loop iterations; IdleTicks the subset that
	// saw too little traffic to act; Decisions the knob changes applied.
	Ticks, IdleTicks, Decisions int64
	// Knobs maps knob name to its value as of the last tick.
	Knobs map[string]float64
	// Log is the retained decision history, oldest first.
	Log []ControllerDecision
}

// StartController launches the background self-tuning controller. It errors
// for non-Hoard policies and when a controller is already running.
//
// The controller tunes what it can see: magazine capacities only with a
// thread cache layered (Config.ThreadCacheCapacity), and the
// lock-contention signals only with Config.Metrics set — without the lock
// counters the contention-driven rules simply never fire. Scavenger pacing
// is always tunable; a scavenger started later runs with the tuned values.
func (a *Allocator) StartController() error {
	h := a.unwrap()
	if h == nil {
		return fmt.Errorf("hoard: policy %q does not support self-tuning", a.impl.Name())
	}
	a.ctlMu.Lock()
	defer a.ctlMu.Unlock()
	if a.ctl != nil && a.ctl.Running() {
		return fmt.Errorf("hoard: controller already running")
	}
	if a.ctl == nil {
		// scavHandle builds (without starting) the scavenger if needed, so
		// the controller can tune pacing that a later StartScavenger will
		// run with.
		scav, _ := a.scavHandle()
		target := control.NewCoreTarget(h, a.tcacheLayer(), scav, a.reg)
		a.ctl = control.NewController(target, a.ctlCfg)
	}
	a.ctl.Start()
	return nil
}

// StopController halts the background controller and waits for its
// goroutine to exit, returning the activity snapshot. With no controller
// running it returns zeros.
func (a *Allocator) StopController() ControllerStats {
	a.ctlMu.Lock()
	ctl := a.ctl
	a.ctlMu.Unlock()
	if ctl == nil {
		return ControllerStats{}
	}
	ctl.Stop()
	return a.ControllerStats()
}

// ControllerStats snapshots the controller's counters, current knob values,
// and decision log (zeros if it was never started). The controller may be
// running.
func (a *Allocator) ControllerStats() ControllerStats {
	a.ctlMu.Lock()
	ctl := a.ctl
	a.ctlMu.Unlock()
	if ctl == nil {
		return ControllerStats{}
	}
	st := ctl.Stats()
	out := ControllerStats{
		Ticks:     st.Ticks,
		IdleTicks: st.IdleTicks,
		Decisions: st.Decisions,
		Knobs:     st.Knobs.Map(),
	}
	for _, d := range st.Log {
		out.Log = append(out.Log, ControllerDecision(d))
	}
	return out
}

// controller returns the live controller handle, or nil.
func (a *Allocator) controller() *control.Controller {
	a.ctlMu.Lock()
	defer a.ctlMu.Unlock()
	return a.ctl
}
