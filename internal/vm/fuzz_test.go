package vm

import "testing"

// FuzzReserveRelease drives the address space with byte-coded operations
// and checks lookup consistency, accounting, and recycling at every step.
func FuzzReserveRelease(f *testing.F) {
	f.Add([]byte{0x01, 0x02, 0x80, 0x03})
	f.Add([]byte{0xFF, 0xFF, 0x00, 0x01, 0x02, 0x03, 0x04})
	f.Fuzz(func(t *testing.T, data []byte) {
		s := New()
		var live []*Span
		var want int64
		for i := 0; i+1 < len(data) && i < 400; i += 2 {
			op, arg := data[i], data[i+1]
			if op&1 == 0 || len(live) == 0 {
				size := (int(arg)%8 + 1) * PageSize
				align := PageSize << (int(op>>4) % 4)
				sp := s.Reserve(size, align, i)
				if sp.Base%uint64(align) != 0 {
					t.Fatalf("misaligned reserve %#x align %d", sp.Base, align)
				}
				if got := s.Lookup(sp.Base + uint64(sp.Len) - 1); got != sp {
					t.Fatal("last byte lookup failed")
				}
				live = append(live, sp)
				want += int64(sp.Len)
			} else {
				idx := int(arg) % len(live)
				sp := live[idx]
				base := sp.Base
				want -= int64(sp.Len)
				s.Release(sp)
				if s.Lookup(base) != nil {
					t.Fatal("released span still visible")
				}
				live[idx] = live[len(live)-1]
				live = live[:len(live)-1]
			}
			if got := s.Committed(); got != want {
				t.Fatalf("committed %d, want %d", got, want)
			}
		}
	})
}
