// Webserver simulation: the Larson-style pattern the paper calls a server
// workload, written against the public API. A listener goroutine "accepts"
// requests and allocates their buffers; a pool of worker goroutines parses,
// builds responses (more allocations), and frees everything — so nearly all
// frees are cross-thread, the pattern that melts naive multithreaded
// allocators. Run it with -policy serial or -policy private to compare.
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"sync"
	"time"

	hoard "hoardgo"
)

type request struct {
	buf     hoard.Ptr
	bufSize int
}

func main() {
	policy := flag.String("policy", "hoard", "allocator policy: hoard serial private ownership threshold")
	workers := flag.Int("workers", 4, "worker goroutines")
	requests := flag.Int("requests", 50000, "total requests")
	flag.Parse()

	a := hoard.MustNew(hoard.Config{Policy: hoard.Policy(*policy), Procs: *workers})
	queue := make(chan request, 256)
	var wg sync.WaitGroup

	start := time.Now()
	for w := 0; w < *workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			t := a.NewThread()
			rng := rand.New(rand.NewSource(int64(w)))
			for req := range queue {
				// "Parse": read the request buffer.
				var checksum byte
				for _, b := range t.Bytes(req.buf, req.bufSize) {
					checksum ^= b
				}
				// "Respond": allocate a response, fill it, release
				// both. The request buffer was allocated by the
				// listener — a remote free.
				respSize := 128 + rng.Intn(1024)
				resp := t.Malloc(respSize)
				buf := t.Bytes(resp, respSize)
				for i := range buf {
					buf[i] = checksum
				}
				t.Free(resp)
				t.Free(req.buf)
			}
		}(w)
	}

	listener := a.NewThread()
	rng := rand.New(rand.NewSource(42))
	for i := 0; i < *requests; i++ {
		size := 64 + rng.Intn(2048)
		p := listener.Malloc(size)
		buf := listener.Bytes(p, size)
		for j := range buf {
			buf[j] = byte(i + j)
		}
		queue <- request{buf: p, bufSize: size}
	}
	close(queue)
	wg.Wait()
	elapsed := time.Since(start)

	st := a.Stats()
	fmt.Printf("policy      %s\n", *policy)
	fmt.Printf("requests    %d via %d workers in %v (%.0f req/s)\n",
		*requests, *workers, elapsed.Round(time.Millisecond),
		float64(*requests)/elapsed.Seconds())
	fmt.Printf("allocator   %d mallocs, %d frees, %d remote frees\n",
		st.Mallocs, st.Frees, st.RemoteFrees)
	fmt.Printf("memory      %d B live, peak footprint %d KiB\n",
		st.LiveBytes, st.PeakFootprintBytes/1024)
	if st.LiveBytes != 0 {
		panic("leak: live bytes after all requests completed")
	}
	if err := a.CheckIntegrity(); err != nil {
		panic(err)
	}
	fmt.Println("integrity check passed")
}
