package hoard_test

import (
	"fmt"
	"sync"

	hoard "hoardgo"
)

// The basic lifecycle: build an allocator, register a thread, allocate,
// use the memory, free.
func Example() {
	a := hoard.MustNew(hoard.Config{})
	t := a.NewThread()

	p := t.Malloc(100)
	copy(t.Bytes(p, 100), "hello, hoard")
	fmt.Println(string(t.Bytes(p, 12)))
	t.Free(p)

	st := a.Stats()
	fmt.Println(st.Mallocs, st.Frees, st.LiveBytes)
	// Output:
	// hello, hoard
	// 1 1 0
}

// Cross-thread frees — the pattern Hoard exists to make safe and bounded:
// one goroutine allocates, another frees, and memory does not accumulate.
func Example_producerConsumer() {
	a := hoard.MustNew(hoard.Config{Procs: 2})
	ch := make(chan hoard.Ptr, 64)
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		consumer := a.NewThread()
		for p := range ch {
			consumer.Free(p)
		}
	}()
	producer := a.NewThread()
	for round := 0; round < 100; round++ {
		for i := 0; i < 100; i++ {
			ch <- producer.Malloc(64)
		}
	}
	close(ch)
	wg.Wait()
	fmt.Println("live bytes:", a.Stats().LiveBytes)
	// Output:
	// live bytes: 0
}

// Comparing allocator policies on the same workload: the baselines from
// the paper's taxonomy are available behind the same API.
func Example_policies() {
	for _, policy := range []hoard.Policy{hoard.PolicyHoard, hoard.PolicySerial} {
		a := hoard.MustNew(hoard.Config{Policy: policy})
		t := a.NewThread()
		p := t.Malloc(256)
		t.Free(p)
		fmt.Println(a.Policy(), a.Stats().Mallocs)
	}
	// Output:
	// hoard 1
	// serial 1
}

// Aligned allocation for structures with placement requirements.
func ExampleThread_MallocAligned() {
	a := hoard.MustNew(hoard.Config{})
	t := a.NewThread()
	p := t.MallocAligned(100, 4096)
	fmt.Println(uint64(p)%4096 == 0)
	t.Free(p)
	// Output:
	// true
}

// Realloc grows a block while preserving its contents.
func ExampleThread_Realloc() {
	a := hoard.MustNew(hoard.Config{})
	t := a.NewThread()
	p := t.Malloc(16)
	copy(t.Bytes(p, 4), "abcd")
	p = t.Realloc(p, 100000) // move to the large-object path
	fmt.Println(string(t.Bytes(p, 4)))
	t.Free(p)
	// Output:
	// abcd
}
