package workload

import (
	"testing"
	"time"

	"hoardgo/internal/core"
	"hoardgo/internal/env"
	"hoardgo/internal/metrics"
)

// These tests run the continuous invariant auditor concurrently with real
// multi-threaded workloads — under -race they are the observability layer's
// stress regression: the audit takes each heap's lock in turn while workers
// allocate, free remotely, and migrate superblocks, and any invariant
// violation (or data race in the audit path itself) fails the test.

// runAudited runs workload against a real-mode Hoard harness with a
// background auditor at an aggressive interval, then checks that audits ran,
// none failed, and the quiescent full integrity check still passes.
func runAudited(t *testing.T, procs int, workload func(h *Harness)) {
	t.Helper()
	h := NewReal("hoard", procs)
	hoard, ok := h.Allocator().(*core.Hoard)
	if !ok {
		t.Fatalf("real harness built %T, want *core.Hoard", h.Allocator())
	}
	auditor := metrics.NewAuditor(func() error {
		return hoard.Audit(&env.RealEnv{ID: -1})
	})
	auditor.Start(500 * time.Microsecond)
	workload(h)
	if err := auditor.Stop(); err != nil {
		t.Fatalf("invariant audit failed under load: %v", err)
	}
	if auditor.Passes() == 0 {
		t.Fatal("auditor never ran during the workload")
	}
	hoard.Reconcile(&env.RealEnv{ID: -1})
	if err := hoard.CheckIntegrity(); err != nil {
		t.Fatalf("quiescent integrity after audited run: %v", err)
	}
}

func TestAuditorDuringProdCons(t *testing.T) {
	runAudited(t, 4, func(h *Harness) {
		cfg := DefaultProdCons(4)
		cfg.Rounds, cfg.Batch = 25, 400
		ProdCons(h, cfg)
	})
}

func TestAuditorDuringThreadtest(t *testing.T) {
	runAudited(t, 4, func(h *Harness) {
		cfg := DefaultThreadtest(4)
		cfg.Objects = 8000
		Threadtest(h, cfg)
	})
}
