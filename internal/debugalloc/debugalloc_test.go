package debugalloc

import (
	"strings"
	"testing"

	"hoardgo/internal/alloc"
	"hoardgo/internal/core"
	"hoardgo/internal/env"
)

var lf = env.RealLockFactory{}

func newDebug(q int) *Allocator {
	return New(core.New(core.Config{Heaps: 2}, lf), Config{Quarantine: q})
}

func thread(a *Allocator) *alloc.Thread { return a.NewThread(&env.RealEnv{}) }

func mustPanic(t *testing.T, want string, f func()) {
	t.Helper()
	defer func() {
		r := recover()
		if r == nil {
			t.Fatalf("no panic; want %q", want)
		}
		if msg, ok := r.(string); !ok || !strings.Contains(msg, want) {
			t.Fatalf("panic %v; want substring %q", r, want)
		}
	}()
	f()
}

func TestCleanLifecycle(t *testing.T) {
	a := newDebug(-1) // no quarantine: frees are immediate
	th := thread(a)
	var ps []alloc.Ptr
	for i := 0; i < 500; i++ {
		p := a.Malloc(th, 1+i%300)
		buf := a.Bytes(p, 1+i%300)
		for j := range buf {
			buf[j] = byte(i)
		}
		ps = append(ps, p)
	}
	if err := a.CheckIntegrity(); err != nil {
		t.Fatal(err)
	}
	for _, p := range ps {
		a.Free(th, p)
	}
	if got := a.Stats().LiveBytes; got != 0 {
		t.Fatalf("LiveBytes = %d", got)
	}
	if got := a.Inner().Stats().LiveBytes; got != 0 {
		t.Fatalf("inner LiveBytes = %d", got)
	}
	if err := a.CheckIntegrity(); err != nil {
		t.Fatal(err)
	}
}

func TestOverflowDetected(t *testing.T) {
	a := newDebug(-1)
	th := thread(a)
	p := a.Malloc(th, 64)
	// Overflow one byte past the user area via the inner space.
	a.Inner().Space().Bytes(uint64(p)+64, 1)[0] = 0x42
	mustPanic(t, "rear canary", func() { a.Free(th, p) })
}

func TestUnderflowDetected(t *testing.T) {
	a := newDebug(-1)
	th := thread(a)
	p := a.Malloc(th, 64)
	a.Inner().Space().Bytes(uint64(p)-1, 1)[0] = 0x42
	mustPanic(t, "front canary", func() { a.Free(th, p) })
}

func TestUseAfterFreeWriteDetected(t *testing.T) {
	a := newDebug(4)
	th := thread(a)
	p := a.Malloc(th, 64)
	a.Free(th, p) // quarantined, poisoned
	// Dirty the freed memory behind the allocator's back.
	a.Inner().Space().Bytes(uint64(p)+10, 1)[0] = 0x99
	if err := a.CheckIntegrity(); err == nil {
		t.Fatal("integrity missed a use-after-free write")
	}
	mustPanic(t, "use-after-free", func() {
		// Push enough frees to evict p from quarantine.
		for i := 0; i < 8; i++ {
			a.Free(th, a.Malloc(th, 64))
		}
	})
}

func TestDoubleFreeDetected(t *testing.T) {
	a := newDebug(8)
	th := thread(a)
	p := a.Malloc(th, 64)
	a.Free(th, p)
	mustPanic(t, "already-freed", func() { a.Free(th, p) })
}

func TestQuarantineDelaysReuse(t *testing.T) {
	const q = 8
	a := newDebug(q)
	th := thread(a)
	p := a.Malloc(th, 64)
	a.Free(th, p)
	// Immediately reallocating must NOT return the same block (it is in
	// quarantine).
	seen := map[alloc.Ptr]bool{}
	for i := 0; i < q-1; i++ {
		np := a.Malloc(th, 64)
		if np == p {
			t.Fatalf("quarantined block %#x reissued after %d allocs", uint64(p), i)
		}
		seen[np] = true
	}
	if got := a.Inner().Stats().LiveBytes; got == 0 {
		t.Fatal("inner should still hold the quarantined block")
	}
	a.FlushQuarantine(th)
}

func TestFlushQuarantineDrainsInner(t *testing.T) {
	a := newDebug(16)
	th := thread(a)
	for i := 0; i < 10; i++ {
		a.Free(th, a.Malloc(th, 100))
	}
	if got := a.Inner().Stats().LiveBytes; got == 0 {
		t.Fatal("quarantine empty before flush")
	}
	a.FlushQuarantine(th)
	if got := a.Inner().Stats().LiveBytes; got != 0 {
		t.Fatalf("inner LiveBytes = %d after flush", got)
	}
	if err := a.CheckIntegrity(); err != nil {
		t.Fatal(err)
	}
}

func TestUsableSizeIsRequested(t *testing.T) {
	a := newDebug(-1)
	th := thread(a)
	p := a.Malloc(th, 100)
	if got := a.UsableSize(p); got != 100 {
		t.Fatalf("UsableSize = %d, want exactly 100", got)
	}
	mustPanic(t, "exceeds requested", func() { a.Bytes(p, 101) })
	a.Free(th, p)
}

func TestLiveBlocksLeakReport(t *testing.T) {
	a := newDebug(-1)
	th := thread(a)
	p1 := a.Malloc(th, 10)
	p2 := a.Malloc(th, 20)
	if got := a.LiveBlocks(); got != 2 {
		t.Fatalf("LiveBlocks = %d", got)
	}
	a.Free(th, p1)
	a.Free(th, p2)
	if got := a.LiveBlocks(); got != 0 {
		t.Fatalf("LiveBlocks = %d after frees", got)
	}
}

func TestMallocZero(t *testing.T) {
	a := newDebug(-1)
	th := thread(a)
	p := a.Malloc(th, 0)
	if p.IsNil() {
		t.Fatal("Malloc(0) nil")
	}
	a.Free(th, p)
}
