package vm

import (
	"testing"

	"hoardgo/internal/scavenge"
)

// testArena builds a small arena, skipping on platforms without one.
func testArena(t *testing.T, opts ArenaOptions) Backend {
	t.Helper()
	if opts.SlotRegionBytes == 0 {
		opts.SlotRegionBytes = 64 << 20
	}
	if opts.LargeRegionBytes == 0 {
		opts.LargeRegionBytes = 64 << 20
	}
	a, err := NewArena(opts)
	if err != nil {
		t.Skipf("arena backend unavailable: %v", err)
	}
	t.Cleanup(func() {
		if err := a.Close(); err != nil {
			t.Errorf("close: %v", err)
		}
	})
	return a
}

// TestArenaZeroFillAfterRecommit replaces the simulated backend's
// PoisonRecommitted (0xDC) assumption: on real memory the OS guarantees a
// decommitted-then-recommitted page reads back as zeros, even though
// Recommit itself writes nothing. SetPoison must not change that — the
// arena ignores it.
func TestArenaZeroFillAfterRecommit(t *testing.T) {
	a := testArena(t, ArenaOptions{})
	a.SetPoison(true) // must be a no-op on the arena

	sp := a.Reserve(4*PageSize, 0, "zf")
	data := sp.Data()
	for i := range data {
		data[i] = 0xAB
	}
	sp.Decommit(0, 2*PageSize)
	sp.Recommit(0, 2*PageSize)

	for _, off := range []int{0, 1, PageSize - 1, PageSize, 2*PageSize - 1} {
		if got := sp.Bytes(off, 1)[0]; got != 0 {
			t.Fatalf("recommitted byte %d = %#x, want 0 (OS zero-fill)", off, got)
		}
	}
	// The untouched half keeps its contents.
	if got := sp.Bytes(3*PageSize, 1)[0]; got != 0xAB {
		t.Fatalf("never-decommitted byte = %#x, want 0xAB", got)
	}
}

// TestArenaArithmeticResolution exercises the slot region's address
// arithmetic: every byte of a superblock-sized span resolves to its span
// with no page table, neighbors stay nil, and releases are immediate.
func TestArenaArithmeticResolution(t *testing.T) {
	a := testArena(t, ArenaOptions{SpanSize: 8192})

	sp1 := a.Reserve(8192, 8192, "sb1")
	sp2 := a.Reserve(8192, 8192, "sb2")
	if sp1.Base%8192 != 0 || sp2.Base%8192 != 0 {
		t.Fatalf("slot spans misaligned: %#x %#x", sp1.Base, sp2.Base)
	}
	for off := uint64(0); off < 8192; off += 512 {
		if got := a.Lookup(sp1.Base + off); got != sp1 {
			t.Fatalf("Lookup(%#x) = %v, want sp1", sp1.Base+off, got)
		}
	}
	if got := a.Lookup(sp1.Base + 8191); got != sp1 {
		t.Fatalf("last byte resolved to %v", got)
	}
	if got := a.Lookup(sp1.Base - 1); got != nil && got != sp2 {
		t.Fatalf("byte before sp1 resolved to unrelated span %v", got)
	}
	a.Release(sp1)
	if got := a.Lookup(sp1.Base); got != nil {
		t.Fatalf("released slot still resolves to %v", got)
	}
	// The freed slot is reused by the next superblock-sized reserve.
	sp3 := a.Reserve(8192, 8192, "sb3")
	if sp3.Base != sp1.Base {
		t.Fatalf("slot not recycled: got %#x, want %#x", sp3.Base, sp1.Base)
	}
	if a.Stats().Recycled != 1 {
		t.Fatalf("Recycled = %d, want 1", a.Stats().Recycled)
	}
	a.Release(sp2)
	a.Release(sp3)
	if got := a.Reserved(); got != 0 {
		t.Fatalf("Reserved = %d after releasing everything", got)
	}
}

// TestArenaLargeSpans exercises the variable-size region: non-slot sizes,
// alignment beyond the slot size, interior-pointer resolution.
func TestArenaLargeSpans(t *testing.T) {
	a := testArena(t, ArenaOptions{SpanSize: 8192})

	big := a.Reserve(5*PageSize, 0, "big")
	if big.Len != 5*PageSize {
		t.Fatalf("Len = %d", big.Len)
	}
	for off := 0; off < big.Len; off += PageSize {
		if got := a.Lookup(big.Base + uint64(off)); got != big {
			t.Fatalf("interior page %d resolved to %v", off/PageSize, got)
		}
	}
	if got := a.Lookup(big.End()); got == big {
		t.Fatal("one-past-end resolved to the span")
	}

	// Superblock size but over-aligned: must still work, via the large
	// region.
	wide := a.Reserve(8192, 32768, "wide")
	if wide.Base%32768 != 0 {
		t.Fatalf("aligned reserve at %#x", wide.Base)
	}
	if got := a.Lookup(wide.Base + 100); got != wide {
		t.Fatalf("aligned span did not resolve: %v", got)
	}
	a.Release(big)
	a.Release(wide)
}

// TestArenaRSSReturn is the backend-level ground truth for the scavenger:
// touching committed pages raises the process RSS, Decommit's madvise
// genuinely gives the pages back to the OS, and the freed range reads zero
// afterwards. Measured via /proc/self/statm, not simulated accounting.
func TestArenaRSSReturn(t *testing.T) {
	const size = 64 << 20
	a := testArena(t, ArenaOptions{LargeRegionBytes: size})

	before, err := scavenge.ReadRSS()
	if err != nil {
		t.Skipf("no RSS source: %v", err)
	}
	sp := a.Reserve(size, 0, "rss")
	data := sp.Data()
	for i := 0; i < len(data); i += PageSize {
		data[i] = 1
	}
	touched, err := scavenge.ReadRSS()
	if err != nil {
		t.Fatal(err)
	}
	if grew := touched - before; grew < size/2 {
		t.Fatalf("RSS grew only %d bytes after touching %d", grew, size)
	}
	sp.Decommit(0, size)
	after, err := scavenge.ReadRSS()
	if err != nil {
		t.Fatal(err)
	}
	if dropped := touched - after; dropped < size/2 {
		t.Fatalf("RSS dropped only %d bytes after decommitting %d", dropped, size)
	}
	sp.Recommit(0, size)
	if got := sp.Bytes(0, 8); got[0] != 0 {
		t.Fatalf("page content survived decommit: %#x", got[0])
	}
	a.Release(sp)
}

// TestArenaReserveAfterClose verifies Close is idempotent and that the
// arena refuses to hand out spans afterwards.
func TestArenaReserveAfterClose(t *testing.T) {
	a, err := NewArena(ArenaOptions{SlotRegionBytes: 16 << 20, LargeRegionBytes: 16 << 20})
	if err != nil {
		t.Skipf("arena backend unavailable: %v", err)
	}
	if err := a.Close(); err != nil {
		t.Fatal(err)
	}
	if err := a.Close(); err != nil {
		t.Fatalf("second close: %v", err)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Reserve on closed arena did not panic")
		}
	}()
	a.Reserve(PageSize, 0, nil)
}

// TestArenaBadOptions verifies option validation errors instead of
// panicking, so callers can fall back.
func TestArenaBadOptions(t *testing.T) {
	if _, err := NewArena(ArenaOptions{SpanSize: 3000}); err == nil {
		t.Fatal("non-power-of-two span size accepted")
	}
	if _, err := NewArena(ArenaOptions{SpanSize: 512}); err == nil {
		t.Fatal("sub-page span size accepted")
	}
}
