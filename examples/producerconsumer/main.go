// Producer-consumer blowup demo: the experiment from the paper's §2.2,
// live. One goroutine allocates batches of messages, another frees them.
// The program's live set never exceeds one batch — yet under a pure
// private-heaps allocator the footprint grows with every round, because
// memory freed by the consumer is stranded on the consumer's private
// lists. Hoard's ownership discipline keeps the footprint flat.
package main

import (
	"fmt"

	hoard "hoardgo"
)

const (
	rounds  = 40
	batch   = 2000
	objSize = 64
)

// runRounds pushes `rounds` producer→consumer batches through the
// allocator and samples the footprint every 10 rounds.
func runRounds(policy hoard.Policy) []int64 {
	a := hoard.MustNew(hoard.Config{Policy: policy, Procs: 2})
	ch := make(chan []hoard.Ptr)
	done := make(chan struct{})

	go func() { // consumer
		t := a.NewThread()
		for ps := range ch {
			for _, p := range ps {
				t.Free(p)
			}
		}
		close(done)
	}()

	var samples []int64
	producer := a.NewThread()
	for r := 1; r <= rounds; r++ {
		ps := make([]hoard.Ptr, batch)
		for i := range ps {
			ps[i] = producer.Malloc(objSize)
			producer.Bytes(ps[i], 8)[0] = byte(i)
		}
		ch <- ps
		if r%10 == 0 {
			samples = append(samples, a.Stats().FootprintBytes)
		}
	}
	close(ch)
	<-done
	return samples
}

func main() {
	fmt.Printf("live set is constant: %d objects x %d B = %d KiB\n\n",
		batch, objSize, batch*objSize/1024)
	fmt.Printf("%-12s", "footprint")
	for r := 10; r <= rounds; r += 10 {
		fmt.Printf(" %10s", fmt.Sprintf("round %d", r))
	}
	fmt.Println()
	for _, policy := range []hoard.Policy{hoard.PolicyHoard, hoard.PolicyOwnership, hoard.PolicyPrivate} {
		fmt.Printf("%-12s", policy)
		for _, s := range runRounds(policy) {
			fmt.Printf(" %9dK", s/1024)
		}
		fmt.Println()
	}
	fmt.Println("\npure private heaps grow without bound; hoard and ownership stay flat")
	fmt.Println("(hoard additionally bounds the flat level by 1/(1-f) x live — see DESIGN.md)")
}
