// Command alloctrace generates, inspects, and replays allocation traces.
//
// Subcommands:
//
//	alloctrace synth -o trace.bin [-threads 4] [-events 100000] [-min 1] [-max 1000] [-cross 0.3] [-seed 1]
//	    Generate a synthetic well-formed trace.
//
//	alloctrace record -o trace.bin [-bench larson] [-alloc hoard] [-procs 4] [-scale quick|full]
//	    Run one of the paper's benchmarks on the simulator and capture
//	    its allocation trace for later replay.
//
//	alloctrace info trace.bin
//	    Print a trace's event counts and size distribution.
//
//	alloctrace replay trace.bin [-alloc hoard] [-procs 8] [-sim]
//	    Replay the trace against an allocator and report memory behavior
//	    (peak footprint, fragmentation) — the way allocator policies are
//	    compared on identical input. With -sim the replay runs on the
//	    deterministic simulated multiprocessor, one simulated thread per
//	    trace thread, and also reports the virtual makespan.
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"hoardgo/internal/alloc"
	"hoardgo/internal/allocators"
	"hoardgo/internal/env"
	"hoardgo/internal/experiments"
	"hoardgo/internal/simproc"
	"hoardgo/internal/trace"
	"hoardgo/internal/workload"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "alloctrace:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	if len(args) < 1 {
		return fmt.Errorf("usage: alloctrace synth|info|replay ...")
	}
	switch args[0] {
	case "synth":
		return synth(args[1:])
	case "record":
		return record(args[1:])
	case "info":
		return info(args[1:])
	case "replay":
		return replay(args[1:])
	default:
		return fmt.Errorf("unknown subcommand %q", args[0])
	}
}

func synth(args []string) error {
	fs := flag.NewFlagSet("synth", flag.ContinueOnError)
	out := fs.String("o", "trace.bin", "output file")
	threads := fs.Int("threads", 4, "thread count")
	events := fs.Int("events", 100000, "event count")
	minSz := fs.Int("min", 1, "min object size")
	maxSz := fs.Int("max", 1000, "max object size")
	cross := fs.Float64("cross", 0.3, "cross-thread free probability")
	seed := fs.Int64("seed", 1, "random seed")
	if err := fs.Parse(args); err != nil {
		return err
	}
	tr := trace.Synthesize(trace.SynthesizeConfig{
		Threads: *threads, Events: *events,
		MinSize: *minSz, MaxSize: *maxSz,
		CrossFree: *cross, Seed: *seed,
	})
	f, err := os.Create(*out)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := tr.Encode(f); err != nil {
		return err
	}
	fmt.Printf("wrote %s: %d threads, %d events\n", *out, tr.Threads, len(tr.Events))
	return f.Close()
}

func record(args []string) error {
	fs := flag.NewFlagSet("record", flag.ContinueOnError)
	out := fs.String("o", "trace.bin", "output file")
	bench := fs.String("bench", "larson", "benchmark id")
	allocName := fs.String("alloc", "hoard", "allocator to run under the recorder")
	procs := fs.Int("procs", 4, "simulated processors")
	scaleFlag := fs.String("scale", "quick", "workload scale: quick or full")
	if err := fs.Parse(args); err != nil {
		return err
	}
	def, ok := experiments.FigureByID(*bench)
	if !ok {
		return fmt.Errorf("unknown benchmark %q", *bench)
	}
	scale := experiments.Quick
	if *scaleFlag == "full" {
		scale = experiments.Full
	} else if *scaleFlag != "quick" {
		return fmt.Errorf("unknown -scale %q", *scaleFlag)
	}
	var rec *trace.Recording
	h := workload.NewSimMaker(*allocName, *procs, simproc.DefaultCosts,
		func(p int, lf env.LockFactory) alloc.Allocator {
			rec = trace.NewRecording(allocators.MustMake(*allocName, p, lf))
			return rec
		})
	def.Run(scale)(h, *procs)
	tr := rec.Trace()
	f, err := os.Create(*out)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := tr.Encode(f); err != nil {
		return err
	}
	fmt.Printf("recorded %s on %s: %d threads, %d events -> %s\n",
		def.ID, *allocName, tr.Threads, len(tr.Events), *out)
	return f.Close()
}

func load(path string) (*trace.Trace, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return trace.Decode(f)
}

func info(args []string) error {
	if len(args) < 1 {
		return fmt.Errorf("usage: alloctrace info <file>")
	}
	tr, err := load(args[0])
	if err != nil {
		return err
	}
	var mallocs, frees, bytes int64
	sizes := map[int32]int64{}
	for _, ev := range tr.Events {
		switch ev.Op {
		case trace.OpMalloc:
			mallocs++
			bytes += int64(ev.Size)
			sizes[ev.Size]++
		case trace.OpFree:
			frees++
		}
	}
	fmt.Printf("threads  %d\n", tr.Threads)
	fmt.Printf("events   %d (%d mallocs, %d frees)\n", len(tr.Events), mallocs, frees)
	if mallocs > 0 {
		fmt.Printf("bytes    %d total, %.1f avg\n", bytes, float64(bytes)/float64(mallocs))
	}
	// Top size classes by count.
	type sc struct {
		size  int32
		count int64
	}
	var top []sc
	for s, c := range sizes {
		top = append(top, sc{s, c})
	}
	sort.Slice(top, func(i, j int) bool {
		if top[i].count != top[j].count {
			return top[i].count > top[j].count
		}
		return top[i].size < top[j].size
	})
	if len(top) > 5 {
		top = top[:5]
	}
	for _, t := range top {
		fmt.Printf("  size %-6d x%d\n", t.size, t.count)
	}
	return nil
}

func replay(args []string) error {
	fs := flag.NewFlagSet("replay", flag.ContinueOnError)
	allocName := fs.String("alloc", "hoard", "allocator")
	procs := fs.Int("procs", 8, "processor count (simulated CPUs with -sim, sizing otherwise)")
	sim := fs.Bool("sim", false, "replay on the simulated multiprocessor")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() < 1 {
		return fmt.Errorf("usage: alloctrace replay [flags] <file>")
	}
	tr, err := load(fs.Arg(0))
	if err != nil {
		return err
	}
	var res trace.ReplayResult
	if *sim {
		h := workload.NewSim(*allocName, *procs, simproc.DefaultCosts)
		var makespan int64
		res, makespan, err = trace.ReplaySim(tr, h)
		if err != nil {
			return err
		}
		fmt.Printf("mode            simulated, %d processors\n", *procs)
		fmt.Printf("virtual time    %.3f ms (%.0f ops/s)\n",
			float64(makespan)/1e6, float64(len(tr.Events))/(float64(makespan)/1e9))
		if err := h.Allocator().CheckIntegrity(); err != nil {
			return fmt.Errorf("post-replay integrity: %w", err)
		}
		fmt.Printf("allocator       %s\n", *allocName)
		fmt.Printf("events          %d mallocs, %d frees\n", res.Mallocs, res.Frees)
		fmt.Printf("max live        %d B\n", res.MaxLive)
		fmt.Printf("peak footprint  %d B\n", res.PeakFootprint)
		fmt.Printf("fragmentation   %.3f\n", res.Fragmentation())
		return nil
	}
	a, err := allocators.Make(*allocName, *procs, env.RealLockFactory{})
	if err != nil {
		return err
	}
	res, err = trace.Replay(tr, a, func(i int) *alloc.Thread {
		return a.NewThread(&env.RealEnv{ID: i})
	})
	if err != nil {
		return err
	}
	fmt.Printf("allocator       %s\n", *allocName)
	fmt.Printf("events          %d mallocs, %d frees\n", res.Mallocs, res.Frees)
	fmt.Printf("max live        %d B\n", res.MaxLive)
	fmt.Printf("peak footprint  %d B\n", res.PeakFootprint)
	fmt.Printf("fragmentation   %.3f\n", res.Fragmentation())
	if err := a.CheckIntegrity(); err != nil {
		return fmt.Errorf("post-replay integrity: %w", err)
	}
	return nil
}
