// Package ownership implements the paper's strongest baseline family:
// private heaps *with ownership*, in the mold of Ptmalloc (Gloger's arena
// malloc, used by glibc) and Solaris MTmalloc.
//
// Memory is organized into arenas, each a lock-protected heap of
// superblocks. A thread is assigned a home arena; malloc tries the home
// arena and, if its lock is contended, steals any other arena whose lock is
// immediately available (ptmalloc's arena-cycling), creating up to the
// configured maximum. Crucially, free returns a block to the arena that
// *owns* its superblock, no matter which thread frees it — so, unlike pure
// private heaps, producer-consumer programs do not leak memory across
// arenas and blowup is bounded.
//
// The bound, however, is O(P): memory freed in arena A can never satisfy an
// allocation bound to arena B, so a program whose allocation phases shift
// across threads can consume P times its maximum live size (paper §2.2).
// And because arenas never shed superblocks, serially-reused memory stays
// put. Hoard's global heap is exactly what removes both limitations.
package ownership

import (
	"fmt"

	"hoardgo/internal/alloc"
	"hoardgo/internal/env"
	"hoardgo/internal/heap"
	"hoardgo/internal/sizeclass"
	"hoardgo/internal/superblock"
	"hoardgo/internal/vm"
)

// Config parameterizes the ownership allocator.
type Config struct {
	// SuperblockSize is the span size (0 selects 8 KiB).
	SuperblockSize int
	// Arenas is the number of arenas (0 selects 16). Ptmalloc grows its
	// arena list dynamically up to a multiple of the CPU count; a fixed
	// pool keyed by thread id reproduces the same steady state.
	Arenas int
	// Steal enables arena stealing on lock contention (ptmalloc's
	// behavior). Without it, threads always block on their home arena
	// (closer to MTmalloc's per-bucket behavior).
	Steal bool
}

// arena is one lock-protected heap.
type arena struct {
	id   int
	h    *heap.Heap
	lock env.Lock
}

type threadState struct{ home int }

// Allocator is the private-heaps-with-ownership allocator.
type Allocator struct {
	cfg     Config
	space   vm.Backend
	classes *sizeclass.Table
	arenas  []*arena
	acct    alloc.Accounting
}

// New creates an ownership allocator.
func New(cfg Config, lf env.LockFactory) *Allocator {
	if cfg.SuperblockSize == 0 {
		cfg.SuperblockSize = superblock.DefaultSize
	}
	if cfg.Arenas == 0 {
		cfg.Arenas = 16
	}
	if cfg.Arenas < 1 {
		panic(fmt.Sprintf("ownership: %d arenas", cfg.Arenas))
	}
	a := &Allocator{
		cfg:     cfg,
		space:   vm.New(),
		classes: sizeclass.New(sizeclass.DefaultBase, sizeclass.Quantum, cfg.SuperblockSize/2),
	}
	a.arenas = make([]*arena, cfg.Arenas)
	for i := range a.arenas {
		lock := lf.NewLock(fmt.Sprintf("ownership.arena%d", i))
		a.arenas[i] = &arena{
			id:   i,
			h:    heap.New(i, cfg.SuperblockSize, 0.5, 0, a.classes.NumClasses(), lock),
			lock: lock,
		}
	}
	return a
}

// Name implements alloc.Allocator.
func (a *Allocator) Name() string { return "ownership" }

// Space implements alloc.Allocator.
func (a *Allocator) Space() vm.Backend { return a.space }

// NewThread implements alloc.Allocator; threads are assigned home arenas
// round-robin by id.
func (a *Allocator) NewThread(e env.Env) *alloc.Thread {
	id := e.ThreadID()
	home := id % len(a.arenas)
	if home < 0 {
		home += len(a.arenas)
	}
	return &alloc.Thread{ID: id, Env: e, State: &threadState{home: home}}
}

// acquireArena locks and returns an arena for allocation: the home arena if
// free, else (with Steal) the first other arena whose lock is available,
// else the home arena after blocking.
func (a *Allocator) acquireArena(e env.Env, home int) *arena {
	ar := a.arenas[home]
	if ar.lock.TryLock(e) {
		return ar
	}
	if a.cfg.Steal {
		for i := 1; i < len(a.arenas); i++ {
			e.Charge(env.OpListScan, 1)
			cand := a.arenas[(home+i)%len(a.arenas)]
			if cand.lock.TryLock(e) {
				return cand
			}
		}
	}
	ar.lock.Lock(e)
	return ar
}

// Malloc implements alloc.Allocator.
func (a *Allocator) Malloc(t *alloc.Thread, size int) alloc.Ptr {
	e := t.Env
	if size > a.classes.MaxSize() {
		return alloc.MallocLarge(a.space, &a.acct, e, size)
	}
	class, _ := a.classes.ClassFor(size)
	blockSize := a.classes.Size(class)
	ar := a.acquireArena(e, t.State.(*threadState).home)
	p, ok := ar.h.AllocBlock(e, class)
	if !ok {
		e.Charge(env.OpMallocSlow, 1)
		e.Charge(env.OpOSAlloc, 1)
		sb := superblock.New(a.space, a.cfg.SuperblockSize, class, blockSize)
		ar.h.Insert(sb)
		p, _ = ar.h.AllocBlock(e, class)
	}
	ar.lock.Unlock(e)
	e.Charge(env.OpMallocFast, 1)
	a.acct.OnMalloc(blockSize)
	return p
}

// Free implements alloc.Allocator: the block returns to the arena owning
// its superblock, regardless of the freeing thread.
func (a *Allocator) Free(t *alloc.Thread, p alloc.Ptr) {
	if p.IsNil() {
		return
	}
	e := t.Env
	sp := a.space.Lookup(uint64(p))
	if sp == nil {
		panic(fmt.Sprintf("ownership: free of unknown pointer %#x", uint64(p)))
	}
	switch owner := sp.Owner.(type) {
	case *alloc.LargeObj:
		alloc.FreeLarge(a.space, &a.acct, e, "ownership", sp, p)
	case *superblock.Superblock:
		ar := a.arenas[owner.OwnerID()]
		ar.lock.Lock(e)
		ar.h.FreeBlock(e, owner, p)
		// Ptmalloc-style frees do boundary-tag coalescing under the
		// arena lock — work Hoard's O(1) free avoids; charge it so the
		// baseline's free cost matches its inspiration.
		e.Charge(env.OpListScan, 3)
		ar.lock.Unlock(e)
		e.Charge(env.OpFree, 1)
		a.acct.OnFree(owner.BlockSize())
	default:
		panic(fmt.Sprintf("ownership: free of foreign pointer %#x", uint64(p)))
	}
}

// UsableSize implements alloc.Allocator.
func (a *Allocator) UsableSize(p alloc.Ptr) int {
	sp := a.space.Lookup(uint64(p))
	if sp == nil {
		panic(fmt.Sprintf("ownership: UsableSize of unknown pointer %#x", uint64(p)))
	}
	switch owner := sp.Owner.(type) {
	case *alloc.LargeObj:
		return owner.Size
	case *superblock.Superblock:
		return owner.BlockSize()
	}
	panic(fmt.Sprintf("ownership: UsableSize of foreign pointer %#x", uint64(p)))
}

// Bytes implements alloc.Allocator.
func (a *Allocator) Bytes(p alloc.Ptr, n int) []byte {
	if n > a.UsableSize(p) {
		panic(fmt.Sprintf("ownership: Bytes(%#x, %d) exceeds usable size", uint64(p), n))
	}
	return a.space.Bytes(uint64(p), n)
}

// Stats implements alloc.Allocator.
func (a *Allocator) Stats() alloc.Stats {
	var st alloc.Stats
	a.acct.Fill(&st)
	st.OSReserves = a.space.Stats().Reserves
	return st
}

// ArenaSnapshot reports (u, a) for one arena; used by the blowup experiment.
func (a *Allocator) ArenaSnapshot(id int) (u, held int64) {
	ar := a.arenas[id]
	return ar.h.U(), ar.h.A()
}

// NumArenas returns the arena count.
func (a *Allocator) NumArenas() int { return len(a.arenas) }

// CheckIntegrity implements alloc.Allocator.
func (a *Allocator) CheckIntegrity() error {
	var u int64
	for _, ar := range a.arenas {
		if err := ar.h.CheckIntegrity(); err != nil {
			return err
		}
		u += ar.h.U()
	}
	var heapBytes int64
	for _, ar := range a.arenas {
		heapBytes += ar.h.A()
	}
	large := a.space.Committed() - heapBytes
	if got := u + large; got != a.acct.Live() {
		return fmt.Errorf("ownership: live accounting %d != arenas %d + large %d", a.acct.Live(), u, large)
	}
	return nil
}
