package threshold

import (
	"testing"

	"hoardgo/internal/alloc"
	"hoardgo/internal/alloctest"
	"hoardgo/internal/env"
)

var lf = env.RealLockFactory{}

func TestConformance(t *testing.T) {
	alloctest.Run(t, func() alloc.Allocator {
		return New(Config{Watermark: 8}, lf)
	})
}

func TestConformanceDefaultWatermark(t *testing.T) {
	alloctest.Run(t, func() alloc.Allocator {
		return New(Config{}, lf)
	})
}

// TestBoundedBlowup checks the design's claim: producer-consumer stranding
// is capped by the watermark, so memory stays bounded (unlike pure private
// heaps).
func TestBoundedBlowup(t *testing.T) {
	a := New(Config{Watermark: 16}, lf)
	producer := a.NewThread(&env.RealEnv{ID: 0})
	consumer := a.NewThread(&env.RealEnv{ID: 1})
	const batch = 200
	var after10 int64
	for r := 0; r < 100; r++ {
		ps := make([]alloc.Ptr, batch)
		for i := range ps {
			ps[i] = a.Malloc(producer, 64)
		}
		for _, p := range ps {
			a.Free(consumer, p)
		}
		if r == 9 {
			after10 = a.Space().Committed()
		}
	}
	if got := a.Space().Committed(); got > 2*after10 {
		t.Fatalf("memory grew %d -> %d across rounds; thresholds should bound it", after10, got)
	}
	spills, refills := a.SpillsRefills()
	if spills == 0 || refills == 0 {
		t.Fatalf("spills=%d refills=%d; watermark machinery never engaged", spills, refills)
	}
	if err := a.CheckIntegrity(); err != nil {
		t.Fatal(err)
	}
}

// TestSpillTriggersAtHighWatermark pins the watermark mechanics.
func TestSpillTriggersAtHighWatermark(t *testing.T) {
	const lo = 4
	a := New(Config{Watermark: lo}, lf)
	th := a.NewThread(&env.RealEnv{})
	// Allocate and free enough blocks of one class to cross 2*lo.
	var ps []alloc.Ptr
	for i := 0; i < 3*lo; i++ {
		ps = append(ps, a.Malloc(th, 64))
	}
	spills0, _ := a.SpillsRefills()
	for _, p := range ps {
		a.Free(th, p)
	}
	spills1, _ := a.SpillsRefills()
	if spills1 == spills0 {
		t.Fatal("no spill despite crossing the high watermark")
	}
	ts := th.State.(*threadState)
	class, _ := a.classes.ClassFor(64)
	if ts.count[class] > 2*lo {
		t.Fatalf("thread cache holds %d blocks, above high watermark %d", ts.count[class], 2*lo)
	}
	if err := a.CheckIntegrity(); err != nil {
		t.Fatal(err)
	}
}

// TestBatchRefill checks that an empty cache refills a full batch with one
// pool interaction.
func TestBatchRefill(t *testing.T) {
	const lo = 8
	a := New(Config{Watermark: lo}, lf)
	th := a.NewThread(&env.RealEnv{})
	_, r0 := a.SpillsRefills()
	for i := 0; i < lo; i++ {
		a.Malloc(th, 64)
	}
	_, r1 := a.SpillsRefills()
	if r1-r0 != 1 {
		t.Fatalf("%d refills for %d allocations; want one batch", r1-r0, lo)
	}
}

// TestObjectGranularityMigration shows why this design still false-shares:
// blocks freed by one thread and spilled can be refilled by another thread,
// splitting a cache line between threads.
func TestObjectGranularityMigration(t *testing.T) {
	const lo = 4
	a := New(Config{Watermark: lo}, lf)
	t0 := a.NewThread(&env.RealEnv{ID: 0})
	t1 := a.NewThread(&env.RealEnv{ID: 1})
	var ps []alloc.Ptr
	for i := 0; i < 4*lo; i++ {
		ps = append(ps, a.Malloc(t0, 64))
	}
	for _, p := range ps {
		a.Free(t0, p) // spills past watermark into global pool
	}
	got := a.Malloc(t1, 64)
	found := false
	for _, p := range ps {
		if p == got {
			found = true
			break
		}
	}
	if !found {
		t.Fatal("thread 1 did not receive a block previously owned by thread 0's cache")
	}
}
