// Command hoardsim runs a single benchmark point on the simulated
// multiprocessor and prints everything the simulation observed: virtual
// time, throughput, memory, per-lock contention, and cache-coherence
// counters. It is the inspection tool behind hoardbench's summaries, and
// emits CSV with -csv for plotting.
//
// Usage:
//
//	hoardsim [-bench threadtest] [-alloc hoard] [-procs 8] [-scale quick|full] [-csv]
//	hoardsim -bench larson -procs 8 -compare     # all allocators, one table
//	hoardsim -bench larson -metrics out.prom     # instrument locks, dump a Prometheus scrape
//	hoardsim -bench larson -scavenge             # decommit empties post-run, report footprint drop
package main

import (
	"flag"
	"fmt"
	"os"

	"hoardgo/internal/alloc"
	"hoardgo/internal/allocators"
	"hoardgo/internal/core"
	"hoardgo/internal/env"
	"hoardgo/internal/experiments"
	"hoardgo/internal/metrics"
	"hoardgo/internal/workload"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "hoardsim:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		benchFlag = flag.String("bench", "threadtest", "benchmark id (threadtest shbench larson active-false passive-false bem barneshut)")
		allocFlag = flag.String("alloc", "hoard", "allocator (hoard serial private ownership threshold)")
		procsFlag = flag.Int("procs", 8, "virtual processor count")
		scaleFlag = flag.String("scale", "quick", "workload scale: quick or full")
		csvFlag   = flag.Bool("csv", false, "emit one CSV line: bench,alloc,procs,virtual_ns,ops,ops_per_sec,max_live,peak_heap,remote_transfers")
		compare   = flag.Bool("compare", false, "run every allocator at this point and print a comparison table")
		metricsTo = flag.String("metrics", "", "instrument every simulated lock and write a post-run Prometheus scrape (counters, occupancy, lock stats) to this file")
		scavFlag  = flag.Bool("scavenge", false, "after the run, forcibly decommit every empty global-heap superblock (hoard only) and report the footprint before/after")
	)
	flag.Parse()

	def, ok := experiments.FigureByID(*benchFlag)
	if !ok {
		return fmt.Errorf("unknown benchmark %q", *benchFlag)
	}
	scale := experiments.Quick
	if *scaleFlag == "full" {
		scale = experiments.Full
	} else if *scaleFlag != "quick" {
		return fmt.Errorf("unknown -scale %q", *scaleFlag)
	}
	if *procsFlag < 1 || *procsFlag > 64 {
		return fmt.Errorf("-procs %d out of [1,64]", *procsFlag)
	}

	opts := experiments.Defaults(scale)
	if *compare {
		fmt.Printf("%s at P=%d (%s scale)\n", def.ID, *procsFlag, *scaleFlag)
		fmt.Printf("%-12s %12s %14s %14s %10s\n", "allocator", "virtual ms", "ops/s", "peak heap", "frag")
		for _, name := range allocators.Names() {
			ch := workload.NewSim(name, *procsFlag, opts.Cost)
			r := def.Run(scale)(ch, *procsFlag)
			fmt.Printf("%-12s %12.3f %14.0f %14d %10.2f\n",
				name, float64(r.ElapsedNS)/1e6, r.Throughput(), r.VM.PeakCommitted, r.Fragmentation())
		}
		return nil
	}
	var reg *metrics.Registry
	var h *workload.Harness
	if *metricsTo != "" {
		// Wrap the simulated world's lock factory so every heap lock the
		// allocator creates carries metrics counters. The wrapper's TryLock
		// contention probe is charged by the simulator as one extra failed
		// try per contended acquisition, so virtual times shift slightly
		// against an uninstrumented run.
		reg = metrics.NewRegistry()
		name := *allocFlag
		h = workload.NewSimMaker(name, *procsFlag, opts.Cost,
			func(procs int, lf env.LockFactory) alloc.Allocator {
				return allocators.MustMake(name, procs, reg.WrapFactory(lf))
			})
	} else {
		h = workload.NewSim(*allocFlag, *procsFlag, opts.Cost)
	}
	res := def.Run(scale)(h, *procsFlag)
	var scavBefore, scavReleased, scavAfter int64
	if *scavFlag {
		hoard, ok := h.Allocator().(*core.Hoard)
		if !ok {
			return fmt.Errorf("-scavenge: allocator %q has no global heap to scavenge", *allocFlag)
		}
		scavBefore = hoard.Space().Committed()
		scavReleased = hoard.ScavengeQuiescent()
		scavAfter = hoard.Space().Committed()
	}
	if reg != nil {
		if err := writeSimMetrics(*metricsTo, h, res, reg); err != nil {
			return err
		}
	}

	if *csvFlag {
		fmt.Printf("%s,%s,%d,%d,%d,%.0f,%d,%d,%d\n",
			def.ID, *allocFlag, *procsFlag, res.ElapsedNS, res.Ops,
			res.Throughput(), res.MaxLive, res.VM.PeakCommitted,
			res.Cache.RemoteTransfers)
		return nil
	}

	fmt.Printf("benchmark   %s (%s)\n", def.ID, def.Paper)
	fmt.Printf("allocator   %s\n", *allocFlag)
	fmt.Printf("processors  %d\n", *procsFlag)
	fmt.Printf("virtual     %.3f ms\n", float64(res.ElapsedNS)/1e6)
	fmt.Printf("ops         %d (%.0f ops/s)\n", res.Ops, res.Throughput())
	fmt.Printf("max live    %d B\n", res.MaxLive)
	fmt.Printf("peak heap   %d B (fragmentation %.2f)\n", res.VM.PeakCommitted, res.Fragmentation())
	if *scavFlag {
		fmt.Printf("scavenge    released %d B: footprint %d -> %d B (address space still reserved)\n",
			scavReleased, scavBefore, scavAfter)
	}
	st := res.Alloc
	fmt.Printf("allocator   mallocs=%d frees=%d large=%d sbMoves=%d globalHits=%d osReserves=%d remoteFrees=%d\n",
		st.Mallocs, st.Frees, st.LargeMallocs, st.SuperblockMoves, st.GlobalHeapHits, st.OSReserves, st.RemoteFrees)
	fmt.Printf("cache       hits=%d cold=%d remote=%d invalidations=%d\n",
		res.Cache.Hits, res.Cache.ColdMisses, res.Cache.RemoteTransfers, res.Cache.Invalidations)
	fmt.Println("locks (contended only):")
	any := false
	for _, l := range res.Locks {
		if l.Contended > 0 {
			fmt.Printf("  %-24s acquires=%-8d contended=%-8d wait=%.3fms\n",
				l.Name, l.Acquires, l.Contended, float64(l.WaitTime)/1e6)
			any = true
		}
	}
	if !any {
		fmt.Println("  (none)")
	}
	return nil
}

// writeSimMetrics dumps the post-run state of an instrumented simulator run
// as a Prometheus scrape: allocator counters for every policy, per-heap
// occupancy when the allocator is Hoard, and the registry's lock counters.
// The run is over, so the sample is exact, not racy.
func writeSimMetrics(path string, h *workload.Harness, res workload.Result, reg *metrics.Registry) error {
	s := metrics.NewSnapshot(res.Allocator)
	st := res.Alloc
	s.Counters["mallocs_total"] = st.Mallocs
	s.Counters["frees_total"] = st.Frees
	s.Counters["live_bytes"] = st.LiveBytes
	s.Counters["peak_live_bytes"] = st.PeakLiveBytes
	s.Counters["footprint_bytes"] = res.VM.Committed
	s.Counters["peak_footprint_bytes"] = res.VM.PeakCommitted
	s.Counters["superblock_moves_total"] = st.SuperblockMoves
	s.Counters["remote_frees_total"] = st.RemoteFrees
	s.Counters["remote_fast_frees_total"] = st.RemoteFastFrees
	s.Counters["remote_drains_total"] = st.RemoteDrains
	s.Counters["lockfree_mallocs_total"] = st.LockFreeMallocs
	s.Counters["lockfree_frees_total"] = st.LockFreeFrees
	s.Counters["lockfree_cas_retries_total"] = st.FastPathRetries
	s.Counters["virtual_ns_total"] = res.ElapsedNS
	// Live space accounting: the run is over, so these reflect any -scavenge
	// pass that ran after the result was captured.
	sp := h.Allocator().Space().Stats()
	s.Counters["reserved_bytes"] = sp.Reserved
	s.Counters["decommitted_bytes"] = sp.DecommittedBytes
	if hoard, ok := h.Allocator().(*core.Hoard); ok {
		hs := hoard.Stats()
		s.Counters["scavenge_passes_total"] = hs.ScavengePasses
		s.Counters["scavenged_bytes_total"] = hs.ScavengedBytes
		for id, occ := range hoard.SampleHeapsQuiescent(true) {
			s.Heaps = append(s.Heaps, metrics.HeapSample{
				ID:           id,
				U:            occ.U,
				A:            occ.A,
				Superblocks:  occ.Superblocks,
				Decommitted:  occ.Decommitted,
				PendingBytes: occ.PendingBytes,
				Groups:       occ.Groups[:],
			})
		}
	}
	s.Locks = reg.LockStats()
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := s.WritePrometheus(f); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Printf("metrics     wrote %s (%d locks instrumented)\n", path, len(s.Locks))
	return nil
}
