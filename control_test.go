package hoard

import (
	"strings"
	"sync"
	"testing"
	"time"

	"hoardgo/internal/core"
)

// detunedControlConfig is the bad-static-knobs starting point the controller
// must dig out of: an eviction policy so aggressive every superblock with a
// free block gets parked on the global heap, and four-block magazines.
func detunedControlConfig() Config {
	return Config{
		Procs:               2,
		Metrics:             true,
		ThreadCacheCapacity: 4,
		Hoard:               core.Config{EmptyFraction: 0.05, K: core.KNone},
		Control: ControlConfig{
			Enabled:       true,
			Interval:      time.Millisecond,
			CooldownTicks: 2,
			MinOpsPerTick: 32,
		},
	}
}

// controlChurn runs allocate/free traffic until stop is closed.
func controlChurn(a *Allocator, stop chan struct{}, wg *sync.WaitGroup) {
	defer wg.Done()
	th := a.NewThread()
	var ps []Ptr
	for {
		select {
		case <-stop:
			for _, p := range ps {
				th.Free(p)
			}
			return
		default:
		}
		ps = append(ps, th.Malloc(16+len(ps)%800))
		if len(ps) >= 256 {
			for _, p := range ps {
				th.Free(p)
			}
			ps = ps[:0]
		}
	}
}

func TestControllerPublicLifecycle(t *testing.T) {
	a := MustNew(detunedControlConfig())
	defer a.Close()

	// Config.Control.Enabled started it inside New; a second start is an
	// error while it runs.
	if err := a.StartController(); err == nil {
		t.Fatal("second StartController accepted while running")
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go controlChurn(a, stop, &wg)
	}
	deadline := time.Now().Add(10 * time.Second)
	for a.ControllerStats().Decisions == 0 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	close(stop)
	wg.Wait()

	cs := a.StopController()
	if cs.Ticks == 0 {
		t.Fatal("controller never ticked")
	}
	if cs.Decisions == 0 {
		t.Fatal("controller made no decisions against detuned knobs under churn")
	}
	if len(cs.Log) == 0 || len(cs.Knobs) == 0 {
		t.Fatalf("empty decision log (%d) or knob map (%d)", len(cs.Log), len(cs.Knobs))
	}
	for _, d := range cs.Log {
		if d.Knob == "" || d.Reason == "" || d.WhenNS == 0 {
			t.Fatalf("malformed decision %+v", d)
		}
	}
	// The detuned magazines must have widened: some magazine_capacity knob
	// above the starting 4.
	widened := false
	for k, v := range cs.Knobs {
		if strings.HasPrefix(k, "magazine_capacity") && v > 4 {
			widened = true
		}
	}
	if !widened {
		t.Fatalf("no magazine widened from capacity 4; knobs: %v", cs.Knobs)
	}

	// Stopped: a second Stop is a harmless snapshot, restart works, and the
	// restarted controller keeps its tuned knob state.
	if again := a.StopController(); again.Ticks != cs.Ticks {
		t.Fatalf("second StopController ticks %d != %d", again.Ticks, cs.Ticks)
	}
	if err := a.StartController(); err != nil {
		t.Fatalf("restart: %v", err)
	}
	a.StopController()

	if err := a.CheckIntegrity(); err != nil {
		t.Fatal(err)
	}
}

func TestControllerRequiresHoardPolicy(t *testing.T) {
	a := MustNew(Config{Policy: PolicySerial})
	defer a.Close()
	if err := a.StartController(); err == nil {
		t.Fatal("StartController accepted on the serial policy")
	}
	if cs := a.StopController(); cs.Ticks != 0 || cs.Decisions != 0 {
		t.Fatalf("non-zero stats with no controller: %+v", cs)
	}
}

// TestControllerMetricsLintUnderLoad scrapes the Prometheus exposition while
// the controller and churn workers are live: every scrape must lint, and the
// controller families must appear once the controller has ticked.
func TestControllerMetricsLintUnderLoad(t *testing.T) {
	a := MustNew(detunedControlConfig())
	defer a.Close()

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go controlChurn(a, stop, &wg)
	}

	var last string
	for i := 0; i < 20; i++ {
		var b strings.Builder
		if err := a.WriteMetrics(&b); err != nil {
			close(stop)
			wg.Wait()
			t.Fatalf("scrape %d: %v", i, err)
		}
		if err := LintMetrics(b.String()); err != nil {
			close(stop)
			wg.Wait()
			t.Fatalf("scrape %d lint: %v\n%s", i, err, b.String())
		}
		last = b.String()
		time.Sleep(2 * time.Millisecond)
	}
	close(stop)
	wg.Wait()

	for _, want := range []string{
		"hoard_controller_ticks_total",
		"hoard_controller_idle_ticks_total",
		"hoard_controller_decisions_total",
		"hoard_controller_knob",
	} {
		if !strings.Contains(last, want) {
			t.Fatalf("missing controller family %q in scrape:\n%s", want, last)
		}
	}
	a.StopController()
	if err := a.CheckIntegrity(); err != nil {
		t.Fatal(err)
	}
}
