// Package trace records and replays allocation traces.
//
// A trace is a sequence of malloc/free events with stable object ids, so a
// workload captured once can be replayed deterministically against any of
// the allocators — the standard methodology for comparing allocator policies
// on identical input (and the way the paper's fragmentation measurements
// are made reproducible here). Traces serialize to a compact varint binary
// format.
package trace

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"sync"

	"hoardgo/internal/alloc"
)

// Op is an event kind.
type Op uint8

// Event kinds.
const (
	// OpMalloc allocates Size bytes as object Obj.
	OpMalloc Op = iota
	// OpFree frees object Obj.
	OpFree
)

// Event is one allocation event.
type Event struct {
	// Op is the event kind.
	Op Op
	// Thread is the acting thread's index.
	Thread int32
	// Obj is the stable object id (assigned in malloc order).
	Obj uint64
	// Size is the request size (OpMalloc only).
	Size int32
}

// Trace is a recorded event sequence.
type Trace struct {
	// Threads is the number of distinct thread indices used.
	Threads int
	// Events in program order.
	Events []Event
}

// magic and version head the binary encoding.
var magic = [4]byte{'H', 'G', 'T', 'R'}

const version = 1

// Encode writes the trace in binary form.
func (tr *Trace) Encode(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.Write(magic[:]); err != nil {
		return err
	}
	var buf [binary.MaxVarintLen64]byte
	putUv := func(v uint64) error {
		n := binary.PutUvarint(buf[:], v)
		_, err := bw.Write(buf[:n])
		return err
	}
	if err := putUv(version); err != nil {
		return err
	}
	if err := putUv(uint64(tr.Threads)); err != nil {
		return err
	}
	if err := putUv(uint64(len(tr.Events))); err != nil {
		return err
	}
	for _, ev := range tr.Events {
		if err := putUv(uint64(ev.Op)); err != nil {
			return err
		}
		if err := putUv(uint64(ev.Thread)); err != nil {
			return err
		}
		if err := putUv(ev.Obj); err != nil {
			return err
		}
		if ev.Op == OpMalloc {
			if err := putUv(uint64(ev.Size)); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}

// Decode reads a trace written by Encode.
func Decode(r io.Reader) (*Trace, error) {
	br := bufio.NewReader(r)
	var m [4]byte
	if _, err := io.ReadFull(br, m[:]); err != nil {
		return nil, fmt.Errorf("trace: reading magic: %w", err)
	}
	if m != magic {
		return nil, errors.New("trace: bad magic")
	}
	v, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, err
	}
	if v != version {
		return nil, fmt.Errorf("trace: unsupported version %d", v)
	}
	threads, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, err
	}
	n, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, err
	}
	tr := &Trace{Threads: int(threads), Events: make([]Event, 0, n)}
	for i := uint64(0); i < n; i++ {
		op, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, err
		}
		th, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, err
		}
		obj, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, err
		}
		ev := Event{Op: Op(op), Thread: int32(th), Obj: obj}
		if ev.Op == OpMalloc {
			sz, err := binary.ReadUvarint(br)
			if err != nil {
				return nil, err
			}
			ev.Size = int32(sz)
		}
		tr.Events = append(tr.Events, ev)
	}
	return tr, nil
}

// Recorder captures events from a running program. Safe for concurrent use;
// the recorded order is the serialization order of the recorder's lock.
type Recorder struct {
	mu      sync.Mutex
	events  []Event
	objs    map[alloc.Ptr]uint64
	nextObj uint64
	threads int
}

// NewRecorder returns an empty recorder.
func NewRecorder() *Recorder {
	return &Recorder{objs: make(map[alloc.Ptr]uint64)}
}

// Malloc records an allocation of size bytes by thread, returning p's
// object id.
func (r *Recorder) Malloc(thread int, size int, p alloc.Ptr) uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	id := r.nextObj
	r.nextObj++
	r.objs[p] = id
	r.track(thread)
	r.events = append(r.events, Event{Op: OpMalloc, Thread: int32(thread), Obj: id, Size: int32(size)})
	return id
}

// Free records a deallocation by thread.
func (r *Recorder) Free(thread int, p alloc.Ptr) {
	r.mu.Lock()
	defer r.mu.Unlock()
	id, ok := r.objs[p]
	if !ok {
		panic(fmt.Sprintf("trace: free of unrecorded pointer %#x", uint64(p)))
	}
	delete(r.objs, p)
	r.track(thread)
	r.events = append(r.events, Event{Op: OpFree, Thread: int32(thread), Obj: id})
}

func (r *Recorder) track(thread int) {
	if thread+1 > r.threads {
		r.threads = thread + 1
	}
}

// Trace returns the recorded trace.
func (r *Recorder) Trace() *Trace {
	r.mu.Lock()
	defer r.mu.Unlock()
	return &Trace{Threads: r.threads, Events: r.events}
}

// ReplayResult reports a replay's outcome.
type ReplayResult struct {
	// Mallocs and Frees count executed events.
	Mallocs, Frees int64
	// MaxLive is the peak requested live bytes during replay.
	MaxLive int64
	// PeakFootprint is the allocator's peak committed memory.
	PeakFootprint int64
}

// Fragmentation is peak footprint over peak live.
func (r ReplayResult) Fragmentation() float64 {
	if r.MaxLive == 0 {
		return 0
	}
	return float64(r.PeakFootprint) / float64(r.MaxLive)
}

// Replay executes the trace against a, sequentially in recorded order,
// using one allocator thread per trace thread. It validates the trace
// (frees of unknown or double-freed objects fail) and returns the replay's
// memory statistics.
func Replay(tr *Trace, a alloc.Allocator, mkThread func(i int) *alloc.Thread) (ReplayResult, error) {
	threads := make([]*alloc.Thread, tr.Threads)
	for i := range threads {
		threads[i] = mkThread(i)
	}
	livePtr := make(map[uint64]alloc.Ptr, 1024)
	liveSize := make(map[uint64]int32, 1024)
	var res ReplayResult
	var live int64
	for i, ev := range tr.Events {
		if int(ev.Thread) >= len(threads) {
			return res, fmt.Errorf("trace: event %d: thread %d out of range", i, ev.Thread)
		}
		t := threads[ev.Thread]
		switch ev.Op {
		case OpMalloc:
			if _, dup := livePtr[ev.Obj]; dup {
				return res, fmt.Errorf("trace: event %d: object %d allocated twice", i, ev.Obj)
			}
			p := a.Malloc(t, int(ev.Size))
			livePtr[ev.Obj] = p
			liveSize[ev.Obj] = ev.Size
			res.Mallocs++
			live += int64(ev.Size)
			if live > res.MaxLive {
				res.MaxLive = live
			}
		case OpFree:
			p, ok := livePtr[ev.Obj]
			if !ok {
				return res, fmt.Errorf("trace: event %d: free of dead object %d", i, ev.Obj)
			}
			a.Free(t, p)
			live -= int64(liveSize[ev.Obj])
			delete(livePtr, ev.Obj)
			delete(liveSize, ev.Obj)
			res.Frees++
		default:
			return res, fmt.Errorf("trace: event %d: unknown op %d", i, ev.Op)
		}
	}
	res.PeakFootprint = a.Space().PeakCommitted()
	return res, nil
}

// SynthesizeConfig shapes a synthetic trace.
type SynthesizeConfig struct {
	// Threads is the thread count.
	Threads int
	// Events is the total event count (mallocs + frees; the generator
	// frees everything at the end regardless).
	Events int
	// MinSize and MaxSize bound request sizes.
	MinSize, MaxSize int
	// CrossFree is the probability [0,1] that a free is issued by a
	// different thread than the allocation (producer-consumer intensity).
	CrossFree float64
	// Seed makes generation reproducible.
	Seed int64
}

// Synthesize generates a random but well-formed trace: every free targets a
// live object, and all objects are freed by the end.
func Synthesize(cfg SynthesizeConfig) *Trace {
	if cfg.Threads < 1 || cfg.Events < 2 || cfg.MinSize < 0 || cfg.MaxSize < cfg.MinSize {
		panic(fmt.Sprintf("trace: bad synthesize config %+v", cfg))
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	tr := &Trace{Threads: cfg.Threads}
	type liveObj struct {
		id    uint64
		owner int32
	}
	var live []liveObj
	var next uint64
	for len(tr.Events) < cfg.Events {
		if len(live) == 0 || rng.Intn(2) == 0 {
			th := int32(rng.Intn(cfg.Threads))
			sz := cfg.MinSize + rng.Intn(cfg.MaxSize-cfg.MinSize+1)
			tr.Events = append(tr.Events, Event{Op: OpMalloc, Thread: th, Obj: next, Size: int32(sz)})
			live = append(live, liveObj{next, th})
			next++
		} else {
			i := rng.Intn(len(live))
			o := live[i]
			th := o.owner
			if rng.Float64() < cfg.CrossFree {
				th = int32(rng.Intn(cfg.Threads))
			}
			tr.Events = append(tr.Events, Event{Op: OpFree, Thread: th, Obj: o.id})
			live[i] = live[len(live)-1]
			live = live[:len(live)-1]
		}
	}
	for _, o := range live {
		tr.Events = append(tr.Events, Event{Op: OpFree, Thread: o.owner, Obj: o.id})
	}
	return tr
}
