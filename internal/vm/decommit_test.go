package vm

import (
	"math/rand"
	"sync"
	"testing"
)

func TestDecommitRecommitAccounting(t *testing.T) {
	s := New()
	sp := s.Reserve(4*PageSize, 0, nil)
	if got := s.Reserved(); got != 4*PageSize {
		t.Fatalf("Reserved = %d, want %d", got, 4*PageSize)
	}
	if got := s.Committed(); got != 4*PageSize {
		t.Fatalf("Committed = %d, want %d", got, 4*PageSize)
	}

	sp.Decommit(PageSize, 2*PageSize)
	st := s.Stats()
	if st.Reserved != 4*PageSize {
		t.Fatalf("Reserved after decommit = %d, want unchanged %d", st.Reserved, 4*PageSize)
	}
	if st.Committed != 2*PageSize {
		t.Fatalf("Committed after decommit = %d, want %d", st.Committed, 2*PageSize)
	}
	if st.DecommittedBytes != 2*PageSize {
		t.Fatalf("DecommittedBytes = %d, want %d", st.DecommittedBytes, 2*PageSize)
	}
	if st.PeakCommitted != 4*PageSize {
		t.Fatalf("PeakCommitted = %d, want %d", st.PeakCommitted, 4*PageSize)
	}
	if st.Decommits != 1 {
		t.Fatalf("Decommits = %d, want 1", st.Decommits)
	}
	if sp.DecommittedBytes() != 2*PageSize {
		t.Fatalf("span DecommittedBytes = %d, want %d", sp.DecommittedBytes(), 2*PageSize)
	}

	sp.Recommit(PageSize, 2*PageSize)
	st = s.Stats()
	if st.Committed != 4*PageSize || st.DecommittedBytes != 0 {
		t.Fatalf("after recommit: Committed %d DecommittedBytes %d", st.Committed, st.DecommittedBytes)
	}
	if st.Recommits != 1 {
		t.Fatalf("Recommits = %d, want 1", st.Recommits)
	}
	if st.Reserved < st.Committed {
		t.Fatalf("reserved %d < committed %d", st.Reserved, st.Committed)
	}
}

func TestDecommitDropsContentsAndGuardsAccess(t *testing.T) {
	s := New()
	sp := s.Reserve(2*PageSize, 0, nil)
	for i, b := range sp.Data() {
		_ = b
		sp.Data()[i] = 0xAA
	}
	sp.Decommit(0, PageSize)

	// Addresses stay reserved: Lookup still resolves into the span.
	if s.Lookup(sp.Base) != sp {
		t.Fatal("Lookup of decommitted page failed — address should stay reserved")
	}

	// Touching the decommitted page panics, span- and space-level.
	mustPanic(t, "span Bytes on decommitted page", func() { sp.Bytes(8, 8) })
	mustPanic(t, "space Bytes on decommitted page", func() { s.Bytes(sp.Base, 8) })
	mustPanic(t, "Data with decommitted page", func() { sp.Data() })
	mustPanic(t, "Bytes straddling into decommitted page", func() { sp.Bytes(PageSize-8, 16) })

	// The still-committed page is untouched and accessible.
	if got := sp.Bytes(PageSize, 8)[0]; got != 0xAA {
		t.Fatalf("committed page byte = %#x, want 0xAA", got)
	}

	// Recommit restores zero pages (the old contents are gone).
	sp.Recommit(0, PageSize)
	buf := sp.Bytes(0, PageSize)
	for i, b := range buf {
		if b != 0 {
			t.Fatalf("recommitted byte %d = %#x, want 0", i, b)
		}
	}
}

func TestRecommitPoison(t *testing.T) {
	s := New()
	s.SetPoison(true)
	sp := s.Reserve(PageSize, 0, nil)
	sp.Decommit(0, PageSize)
	sp.Recommit(0, PageSize)
	if got := sp.Bytes(0, 1)[0]; got != PoisonRecommitted {
		t.Fatalf("poisoned recommit byte = %#x, want %#x", got, PoisonRecommitted)
	}
}

func TestReleasePartiallyDecommitted(t *testing.T) {
	s := New()
	sp := s.Reserve(4*PageSize, 0, nil)
	sp.Decommit(0, 2*PageSize)
	s.Release(sp)

	st := s.Stats()
	if st.Reserved != 0 || st.Committed != 0 || st.DecommittedBytes != 0 {
		t.Fatalf("after release: Reserved %d Committed %d DecommittedBytes %d, want all 0",
			st.Reserved, st.Committed, st.DecommittedBytes)
	}

	// The recycled span must come back fully committed.
	sp2 := s.Reserve(4*PageSize, 0, nil)
	if s.Stats().Recycled != 1 {
		t.Fatalf("Recycled = %d, want 1", s.Stats().Recycled)
	}
	if sp2.DecommittedBytes() != 0 {
		t.Fatalf("recycled span has %d decommitted bytes", sp2.DecommittedBytes())
	}
	sp2.Bytes(0, 4*PageSize) // must not panic
	if got := s.Committed(); got != 4*PageSize {
		t.Fatalf("Committed = %d, want %d", got, 4*PageSize)
	}
}

func TestDecommitRecommitIdempotent(t *testing.T) {
	s := New()
	sp := s.Reserve(2*PageSize, 0, nil)
	sp.Decommit(0, PageSize)
	sp.Decommit(0, 2*PageSize) // first page already gone: drops only the second
	if got := s.Committed(); got != 0 {
		t.Fatalf("Committed = %d, want 0", got)
	}
	if got := s.DecommittedBytes(); got != 2*PageSize {
		t.Fatalf("DecommittedBytes = %d, want %d", got, 2*PageSize)
	}
	sp.Recommit(0, PageSize)
	sp.Recommit(0, 2*PageSize) // first page already back: restores only the second
	if got := s.Committed(); got != 2*PageSize {
		t.Fatalf("Committed = %d, want %d", got, 2*PageSize)
	}
	if got := s.DecommittedBytes(); got != 0 {
		t.Fatalf("DecommittedBytes = %d, want 0", got)
	}
	// Recommit of fully committed pages is a no-op.
	sp.Recommit(0, 2*PageSize)
	if got := s.Committed(); got != 2*PageSize {
		t.Fatalf("Committed after no-op recommit = %d, want %d", got, 2*PageSize)
	}
}

func TestDecommitBadRangesPanic(t *testing.T) {
	s := New()
	sp := s.Reserve(2*PageSize, 0, nil)
	mustPanic(t, "unaligned offset", func() { sp.Decommit(8, PageSize) })
	mustPanic(t, "unaligned length", func() { sp.Decommit(0, PageSize+8) })
	mustPanic(t, "escaping range", func() { sp.Decommit(PageSize, 2*PageSize) })
	mustPanic(t, "zero length", func() { sp.Decommit(0, 0) })
	mustPanic(t, "recommit escaping", func() { sp.Recommit(0, 3*PageSize) })
}

func TestResetPeakResetsReservedPeak(t *testing.T) {
	s := New()
	sp := s.Reserve(4*PageSize, 0, nil)
	s.Release(sp)
	if got := s.PeakReserved(); got != 4*PageSize {
		t.Fatalf("PeakReserved = %d, want %d", got, 4*PageSize)
	}
	s.ResetPeak()
	if got := s.PeakReserved(); got != 0 {
		t.Fatalf("PeakReserved after ResetPeak = %d, want 0", got)
	}
}

// TestConcurrentDecommitRecommit churns reserve/decommit/recommit/release
// across workers (each on its own spans, as the allocator does: only memory
// with no live readers is decommitted) and checks the global invariants
// reserved >= committed >= 0 throughout. Run under -race via make check.
func TestConcurrentDecommitRecommit(t *testing.T) {
	s := New()
	var wg sync.WaitGroup
	const workers = 8
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			var mine []*Span
			for i := 0; i < 300; i++ {
				switch {
				case len(mine) == 0 || rng.Intn(4) == 0:
					mine = append(mine, s.Reserve((1+rng.Intn(4))*PageSize, 0, w))
				case rng.Intn(3) == 0:
					i := rng.Intn(len(mine))
					s.Release(mine[i])
					mine[i] = mine[len(mine)-1]
					mine = mine[:len(mine)-1]
				default:
					sp := mine[rng.Intn(len(mine))]
					pages := sp.Len / PageSize
					off := rng.Intn(pages) * PageSize
					n := (1 + rng.Intn(pages-off/PageSize)) * PageSize
					if rng.Intn(2) == 0 {
						sp.Decommit(off, n)
					} else {
						sp.Recommit(off, n)
						sp.Bytes(off, n) // recommitted memory must be accessible
					}
				}
				// reserved >= committed is checked exactly in the
				// single-threaded fuzz test; across threads the two
				// atomics cannot be read as one snapshot, so here only
				// the sign invariants hold at every instant.
				if c, r := s.Committed(), s.Reserved(); c < 0 || r < 0 {
					t.Errorf("negative accounting: reserved %d committed %d", r, c)
					return
				}
			}
			for _, sp := range mine {
				s.Release(sp)
			}
		}(w)
	}
	wg.Wait()
	st := s.Stats()
	if st.Reserved != 0 || st.Committed != 0 || st.DecommittedBytes != 0 {
		t.Fatalf("after teardown: Reserved %d Committed %d DecommittedBytes %d",
			st.Reserved, st.Committed, st.DecommittedBytes)
	}
}

func mustPanic(t *testing.T, name string, fn func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Fatalf("%s: did not panic", name)
		}
	}()
	fn()
}
