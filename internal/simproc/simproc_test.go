package simproc

import (
	"testing"

	"hoardgo/internal/env"
)

func TestSingleThreadTime(t *testing.T) {
	w := NewWorld(1, DefaultCosts)
	w.Spawn(func(e env.Env) {
		e.Charge(env.OpWork, 1000)
	})
	if got := w.Run(); got != 1000*DefaultCosts.Op[env.OpWork] {
		t.Fatalf("makespan = %d, want %d", got, 1000)
	}
}

func TestPerfectParallelism(t *testing.T) {
	// P independent threads on P CPUs: makespan equals one thread's time.
	for _, p := range []int{1, 2, 4, 8, 14} {
		w := NewWorld(p, DefaultCosts)
		for i := 0; i < p; i++ {
			w.Spawn(func(e env.Env) { e.Charge(env.OpWork, 10000) })
		}
		if got := w.Run(); got != 10000 {
			t.Fatalf("P=%d: makespan = %d, want 10000", p, got)
		}
	}
}

func TestCPUMultiplexing(t *testing.T) {
	// 4 threads on 2 CPUs: makespan doubles.
	w := NewWorld(2, DefaultCosts)
	for i := 0; i < 4; i++ {
		w.Spawn(func(e env.Env) { e.Charge(env.OpWork, 1000) })
	}
	if got := w.Run(); got != 2000 {
		t.Fatalf("makespan = %d, want 2000", got)
	}
}

func TestDeterminism(t *testing.T) {
	run := func() (int64, []LockStat, int64) {
		w := NewWorld(4, DefaultCosts)
		l := w.NewLock("shared")
		for i := 0; i < 4; i++ {
			w.Spawn(func(e env.Env) {
				for j := 0; j < 100; j++ {
					l.Lock(e)
					e.Charge(env.OpWork, 50)
					e.Touch(0x1000, 8, true)
					l.Unlock(e)
					e.Charge(env.OpWork, 20)
				}
			})
		}
		makespan := w.Run()
		return makespan, w.LockStats(), w.CacheStats().RemoteTransfers
	}
	m1, ls1, rt1 := run()
	m2, ls2, rt2 := run()
	if m1 != m2 || rt1 != rt2 {
		t.Fatalf("nondeterministic: makespans %d vs %d, transfers %d vs %d", m1, m2, rt1, rt2)
	}
	if ls1[0] != ls2[0] {
		t.Fatalf("nondeterministic lock stats: %+v vs %+v", ls1[0], ls2[0])
	}
	if ls1[0].Contended == 0 {
		t.Fatal("expected contention on the shared lock")
	}
}

func TestLockSerializes(t *testing.T) {
	// All work under one lock: makespan is at least the sum of critical
	// sections, regardless of CPU count.
	const threads = 8
	const workEach = 10000
	w := NewWorld(threads, DefaultCosts)
	l := w.NewLock("big")
	for i := 0; i < threads; i++ {
		w.Spawn(func(e env.Env) {
			l.Lock(e)
			e.Charge(env.OpWork, workEach)
			l.Unlock(e)
		})
	}
	if got := w.Run(); got < threads*workEach {
		t.Fatalf("makespan %d < serialized minimum %d", got, threads*workEach)
	}
}

func TestLockFIFOAndWaitTime(t *testing.T) {
	w := NewWorld(2, DefaultCosts)
	l := w.NewLock("l")
	var order []int
	// Thread 0 takes the lock and holds it; threads 1 then 2 queue in
	// time order; they must be granted FIFO.
	w.SpawnOn(0, func(e env.Env) {
		l.Lock(e)
		e.Charge(env.OpWork, 10000)
		l.Unlock(e)
		order = append(order, 0)
	})
	w.SpawnOn(1, func(e env.Env) {
		e.Charge(env.OpWork, 100) // arrive second
		l.Lock(e)
		order = append(order, 1)
		l.Unlock(e)
	})
	w.SpawnOn(1, func(e env.Env) {
		e.Charge(env.OpWork, 5000) // arrive third
		l.Lock(e)
		order = append(order, 2)
		l.Unlock(e)
	})
	w.Run()
	if len(order) != 3 || order[1] != 1 || order[2] != 2 {
		t.Fatalf("grant order %v, want [0 1 2]", order)
	}
	st := w.LockStats()[0]
	if st.Acquires != 3 || st.Contended != 2 {
		t.Fatalf("lock stats %+v", st)
	}
	if st.WaitTime < 10000 {
		t.Fatalf("WaitTime %d; thread 1 waited for a 10000-unit critical section", st.WaitTime)
	}
}

func TestTryLock(t *testing.T) {
	w := NewWorld(2, DefaultCosts)
	l := w.NewLock("l")
	var got []bool
	w.Spawn(func(e env.Env) {
		l.Lock(e)
		e.Charge(env.OpWork, 1000)
		l.Unlock(e)
	})
	w.Spawn(func(e env.Env) {
		e.Charge(env.OpWork, 100)
		got = append(got, l.TryLock(e)) // holder busy -> false
		e.Charge(env.OpWork, 2000)
		got = append(got, l.TryLock(e)) // free -> true
		l.Unlock(e)
	})
	w.Run()
	if len(got) != 2 || got[0] || !got[1] {
		t.Fatalf("TryLock results %v, want [false true]", got)
	}
}

func TestFalseSharingCostsEmerge(t *testing.T) {
	// Two CPUs writing the same line vs different lines: the same-line run
	// must take substantially longer.
	run := func(addr0, addr1 uint64) int64 {
		w := NewWorld(2, DefaultCosts)
		w.SpawnOn(0, func(e env.Env) {
			for i := 0; i < 1000; i++ {
				e.Touch(addr0, 8, true)
			}
		})
		w.SpawnOn(1, func(e env.Env) {
			for i := 0; i < 1000; i++ {
				e.Touch(addr1, 8, true)
			}
		})
		return w.Run()
	}
	shared := run(0x1000, 0x1008)   // same 64-byte line
	disjoint := run(0x1000, 0x2000) // different lines
	if shared < 10*disjoint {
		t.Fatalf("false sharing not penalized: shared=%d disjoint=%d", shared, disjoint)
	}
}

func TestBarrierReleasesAtMaxArrival(t *testing.T) {
	w := NewWorld(4, DefaultCosts)
	b := w.NewBarrier(4)
	var after []int64
	for i := 0; i < 4; i++ {
		work := int64((i + 1) * 1000)
		w.Spawn(func(e env.Env) {
			e.Charge(env.OpWork, work)
			b.Wait(e)
			after = append(after, e.(*Env).Time())
		})
	}
	w.Run()
	want := int64(4000) + DefaultCosts.BarrierCost
	for i, got := range after {
		if got != want {
			t.Fatalf("thread %d resumed at %d, want %d", i, got, want)
		}
	}
}

func TestBarrierReusableAcrossRounds(t *testing.T) {
	w := NewWorld(2, DefaultCosts)
	b := w.NewBarrier(2)
	counts := make([]int, 2)
	for i := 0; i < 2; i++ {
		id := i
		w.Spawn(func(e env.Env) {
			for r := 0; r < 5; r++ {
				e.Charge(env.OpWork, int64(100*(id+1)))
				b.Wait(e)
				counts[id]++
			}
		})
	}
	w.Run()
	if counts[0] != 5 || counts[1] != 5 {
		t.Fatalf("rounds completed %v, want [5 5]", counts)
	}
}

func TestDynamicSpawn(t *testing.T) {
	w := NewWorld(2, DefaultCosts)
	var childTime int64
	w.Spawn(func(e env.Env) {
		e.Charge(env.OpWork, 1000)
		w.Spawn(func(ce env.Env) {
			ce.Charge(env.OpWork, 500)
			childTime = ce.(*Env).Time()
		})
		e.Charge(env.OpWork, 100)
	})
	w.Run()
	want := int64(1000) + DefaultCosts.SpawnCost + 500
	if childTime != want {
		t.Fatalf("child finished at %d, want %d", childTime, want)
	}
}

func TestDeadlockPanics(t *testing.T) {
	w := NewWorld(2, DefaultCosts)
	a, b := w.NewLock("a"), w.NewLock("b")
	w.Spawn(func(e env.Env) {
		a.Lock(e)
		e.Charge(env.OpWork, 100)
		b.Lock(e)
	})
	w.Spawn(func(e env.Env) {
		b.Lock(e)
		e.Charge(env.OpWork, 100)
		a.Lock(e)
	})
	defer func() {
		if recover() == nil {
			t.Fatal("deadlocked simulation did not panic")
		}
	}()
	w.Run()
}

func TestRecursiveLockPanics(t *testing.T) {
	w := NewWorld(1, DefaultCosts)
	l := w.NewLock("l")
	w.Spawn(func(e env.Env) {
		l.Lock(e)
		l.Lock(e)
	})
	defer func() {
		if recover() == nil {
			t.Fatal("recursive lock did not panic")
		}
	}()
	w.Run()
}

func TestLockMigrationCost(t *testing.T) {
	// Alternating lock holders on different CPUs pay LockMigrate; a
	// single-CPU holder does not.
	run := func(cpus []int) int64 {
		w := NewWorld(2, DefaultCosts)
		l := w.NewLock("l")
		b := w.NewBarrier(len(cpus))
		for _, c := range cpus {
			w.SpawnOn(c, func(e env.Env) {
				for i := 0; i < 100; i++ {
					l.Lock(e)
					e.Charge(env.OpWork, 10)
					l.Unlock(e)
					b.Wait(e) // force strict alternation
				}
			})
		}
		return w.Run()
	}
	crossCPU := run([]int{0, 1})
	sameCPU := run([]int{0, 0})
	if crossCPU <= sameCPU {
		t.Fatalf("cross-CPU lock traffic (%d) not dearer than same-CPU (%d)", crossCPU, sameCPU)
	}
}

func TestGate(t *testing.T) {
	w := NewWorld(3, DefaultCosts)
	g := w.NewGate()
	var waiterTime, lateTime int64
	w.SpawnOn(0, func(e env.Env) { // setter
		e.Charge(env.OpWork, 5000)
		g.Set(e)
	})
	w.SpawnOn(1, func(e env.Env) { // early waiter
		e.Charge(env.OpWork, 100)
		g.Wait(e)
		waiterTime = e.(*Env).Time()
	})
	w.SpawnOn(2, func(e env.Env) { // late waiter: gate already set
		e.Charge(env.OpWork, 9000)
		g.Wait(e)
		lateTime = e.(*Env).Time()
	})
	w.Run()
	if want := int64(5000) + DefaultCosts.BarrierCost; waiterTime != want {
		t.Fatalf("early waiter resumed at %d, want %d", waiterTime, want)
	}
	if lateTime != 9000 {
		t.Fatalf("late waiter delayed: %d, want 9000", lateTime)
	}
	if !g.IsSet() {
		t.Fatal("gate not set")
	}
}

func TestGateDoubleSetPanics(t *testing.T) {
	w := NewWorld(1, DefaultCosts)
	g := w.NewGate()
	w.Spawn(func(e env.Env) {
		g.Set(e)
		g.Set(e)
	})
	defer func() {
		if recover() == nil {
			t.Fatal("double Set did not panic")
		}
	}()
	w.Run()
}

func TestRunTwicePanics(t *testing.T) {
	w := NewWorld(1, DefaultCosts)
	w.Spawn(func(e env.Env) {})
	w.Run()
	defer func() {
		if recover() == nil {
			t.Fatal("second Run did not panic")
		}
	}()
	w.Run()
}

func TestSpawnOnValidation(t *testing.T) {
	w := NewWorld(2, DefaultCosts)
	defer func() {
		if recover() == nil {
			t.Fatal("SpawnOn(5) with 2 CPUs did not panic")
		}
	}()
	w.SpawnOn(5, func(env.Env) {})
}

func TestNewWorldValidation(t *testing.T) {
	for _, procs := range []int{0, -1, 65} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewWorld(%d) did not panic", procs)
				}
			}()
			NewWorld(procs, DefaultCosts)
		}()
	}
}

func TestWorkloadPanicPropagates(t *testing.T) {
	w := NewWorld(1, DefaultCosts)
	w.Spawn(func(e env.Env) {
		panic("boom in simulated thread")
	})
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("thread panic not propagated to Run")
		}
	}()
	w.Run()
}

func TestEmptyWorldRuns(t *testing.T) {
	w := NewWorld(4, DefaultCosts)
	if got := w.Run(); got != 0 {
		t.Fatalf("empty world makespan %d", got)
	}
}

func TestUnlockByNonHolderPanics(t *testing.T) {
	w := NewWorld(2, DefaultCosts)
	l := w.NewLock("l")
	w.Spawn(func(e env.Env) { l.Lock(e); e.Charge(env.OpWork, 10000) })
	w.Spawn(func(e env.Env) { e.Charge(env.OpWork, 10); l.Unlock(e) })
	defer func() {
		if recover() == nil {
			t.Fatal("unlock by non-holder did not panic")
		}
	}()
	w.Run()
}

// TestManyThreadsFewCPUs checks scheduling stays correct and deterministic
// under heavy multiplexing.
func TestManyThreadsFewCPUs(t *testing.T) {
	run := func() int64 {
		w := NewWorld(2, DefaultCosts)
		l := w.NewLock("shared")
		for i := 0; i < 16; i++ {
			w.Spawn(func(e env.Env) {
				for j := 0; j < 20; j++ {
					l.Lock(e)
					e.Charge(env.OpWork, 37)
					l.Unlock(e)
					e.Charge(env.OpWork, 11)
				}
			})
		}
		return w.Run()
	}
	a, b := run(), run()
	if a != b {
		t.Fatalf("nondeterministic under multiplexing: %d vs %d", a, b)
	}
	// 16 threads x 20 x (37+11) work on 2 CPUs: at least total/2.
	if a < 16*20*48/2 {
		t.Fatalf("makespan %d below physical minimum", a)
	}
}
