// Package heap implements Hoard's per-processor heap structure.
//
// A heap owns a set of superblocks, organized per size class into a small
// number of fullness groups (doubly-linked lists bucketed by allocated
// fraction). Allocation searches a class's groups from mostly-full to
// mostly-empty, which both improves locality and lets nearly-empty
// superblocks drain so they can be recycled. The heap tracks u(i), the bytes
// in use, and a(i), the bytes held in superblocks, and exposes the paper's
// emptiness invariant
//
//	u(i) >= a(i) - K*S  OR  u(i) >= (1-f)*a(i)
//
// which the Hoard allocator (internal/core) restores after each free by
// moving an at-least-f-empty superblock to the global heap.
//
// Locking: a Heap performs no locking itself. Every method except the
// explicitly lock-free hint/warm accessors must be called with the heap's
// Lock held; internal/core owns the locking protocol (including the re-check
// dance when superblock ownership changes while a freeing thread waits).
//
// Lock-free traffic: superblocks owned by a per-processor heap serve
// warm-path mallocs and owner-local frees without this lock (DESIGN.md §11).
// Those paths move the superblocks' live used counts but cannot touch the
// heap's books, so each superblock carries an accounted count (Acct) that
// the heap owns and reconciles lazily: u, the fullness groups, and the
// emptiness invariant are all defined over the accounted counts, which makes
// them exact under the lock at all times. The lock-free paths maintain uHint
// — u plus the unreconciled drift — so the free fast path can watch the
// invariant without the lock and escalate to a locked
// confirm-reconcile-restore pass only when the hint trips.
package heap

import (
	"fmt"
	"math"
	"sync/atomic"

	"hoardgo/internal/alloc"
	"hoardgo/internal/env"
	"hoardgo/internal/superblock"
)

// NumGroups is the number of fullness groups per size class for non-full
// superblocks; an additional group holds completely full superblocks.
const NumGroups = 4

// fullGroup is the group index for completely full superblocks.
const fullGroup = NumGroups

// Heap is one Hoard heap (per-processor or global).
type Heap struct {
	// ID is the heap's index: 0 is the global heap, 1..N are
	// per-processor heaps.
	ID int
	// Lock serializes all access to the heap. Held by callers.
	Lock env.Lock

	sbSize int
	// fEmpty holds math.Float64bits of the empty fraction f and k holds the
	// slack K. Both are atomics so a controller (or any other goroutine) can
	// retune them while lock-free frees consult the invariant: f and K are
	// eviction *policy*, not structural state — a racing read merely decides
	// whether this particular free triggers an eviction pass, and both the
	// locked confirm path and the next free re-read the current values.
	fEmpty  atomic.Uint64
	k       atomic.Int64
	u       int64
	a       atomic.Int64 // bytes held in superblocks; atomic so hint checks read it lockless
	classes []classGroups
	nSuper  int

	// uHint tracks u plus the drift the lock-free paths have applied to
	// the superblocks' live counts but not yet to the books: locked paths
	// update it through addU, fast paths through HintAdd. It is exact
	// whenever no fast op is mid-flight and is re-anchored to u by
	// SyncAll; between those points it is a racy hint the free fast path
	// uses to watch the emptiness invariant without the lock.
	uHint atomic.Int64

	// warm caches, per size class, the Ref of the superblock the locked
	// malloc path last allocated from — the lock-free warm path's first
	// target. Stale entries are harmless: a sealed or reformatted
	// superblock fails the fast path's checks and the next locked malloc
	// republishes.
	warm []atomic.Pointer[superblock.Ref]

	// rings holds, per size class, a small ring of additional warm
	// candidates fed by the free fast path: a lock-free free that turns a
	// superblock's free list nonempty publishes the Ref here, so the
	// malloc fast path sees superblocks made allocatable by frees without
	// anyone taking the heap lock. Entries go stale the same harmless way
	// warm does.
	rings []warmRing

	// pending is a racy hint of how many bytes sit on the remote stacks
	// of superblocks this heap owns. Remote pushers add to it without the
	// heap lock; DrainAll resets it. It gates drain work (skip the sweep
	// when nothing is plausibly pending) and discounts the emptiness
	// invariant pre-check; correctness never depends on its value.
	pending atomic.Int64
}

// WarmRingSize is the number of free-fed warm candidates kept per size
// class, beyond the malloc-published warm Ref. Sized so a burst of frees
// scattered over several superblocks leaves the malloc fast path enough
// targets to ride through a whole refill's worth of pops without the lock.
const WarmRingSize = 16

// warmRing is a lossy ring of warm-path candidates. Publishes overwrite
// round-robin; readers scan all slots. Purely advisory.
type warmRing struct {
	next  atomic.Uint32
	slots [WarmRingSize]atomic.Pointer[superblock.Ref]
}

type classGroups struct {
	groups [NumGroups + 1]sbList
}

// sbList is an intrusive doubly-linked list of superblocks.
type sbList struct {
	head *superblock.Superblock
}

func (l *sbList) pushFront(sb *superblock.Superblock) {
	sb.Prev = nil
	sb.Next = l.head
	if l.head != nil {
		l.head.Prev = sb
	}
	l.head = sb
}

func (l *sbList) remove(sb *superblock.Superblock) {
	if sb.Prev != nil {
		sb.Prev.Next = sb.Next
	} else {
		l.head = sb.Next
	}
	if sb.Next != nil {
		sb.Next.Prev = sb.Prev
	}
	sb.Next, sb.Prev = nil, nil
}

// New creates an empty heap. sbSize is S; fEmpty and k parameterize the
// emptiness invariant; numClasses is the size-class count; lock is the
// heap's lock (created by the caller in the appropriate environment).
func New(id, sbSize int, fEmpty float64, k, numClasses int, lock env.Lock) *Heap {
	h := &Heap{
		ID:      id,
		Lock:    lock,
		sbSize:  sbSize,
		classes: make([]classGroups, numClasses),
		warm:    make([]atomic.Pointer[superblock.Ref], numClasses),
		rings:   make([]warmRing, numClasses),
	}
	h.SetEmptyFraction(fEmpty)
	h.SetSlackK(k)
	return h
}

// EmptyFraction returns the current empty fraction f. Lock-free.
func (h *Heap) EmptyFraction() float64 {
	return math.Float64frombits(h.fEmpty.Load())
}

// SetEmptyFraction retunes the empty fraction f. Safe to call at any time
// from any goroutine; in-flight invariant checks use whichever value they
// read. Panics outside (0,1) — same validation as construction.
func (h *Heap) SetEmptyFraction(f float64) {
	if f <= 0 || f >= 1 {
		panic(fmt.Sprintf("heap: empty fraction %v out of (0,1)", f))
	}
	h.fEmpty.Store(math.Float64bits(f))
}

// SlackK returns the current slack K. Lock-free.
func (h *Heap) SlackK() int { return int(h.k.Load()) }

// SetSlackK retunes the slack K. Safe to call at any time from any
// goroutine. Panics on negative K.
func (h *Heap) SetSlackK(k int) {
	if k < 0 {
		panic(fmt.Sprintf("heap: slack K %d negative", k))
	}
	h.k.Store(int64(k))
}

// groupOfCount computes the fullness group for an accounted in-use count.
func groupOfCount(used, nBlocks int) int {
	if used >= nBlocks {
		return fullGroup
	}
	g := used * NumGroups / nBlocks
	if g >= NumGroups {
		g = NumGroups - 1
	}
	return g
}

// groupOf computes the fullness group for a superblock from its accounted
// count — grouping, like u, is defined over the books, not the racy live
// word.
func groupOf(sb *superblock.Superblock) int {
	return groupOfCount(sb.Acct, sb.NBlocks())
}

// addU applies a locked-path delta to the books: u and the hint move
// together, so the hint's drift stays exactly the fast paths' unreconciled
// contribution.
func (h *Heap) addU(delta int64) {
	h.u += delta
	h.uHint.Add(delta)
}

// syncSuper reconciles one superblock's accounted count with its live word:
// the difference (drift applied by lock-free ops) moves into u — but not
// into uHint, which already received it via HintAdd — and the superblock is
// regrouped. The caller holds the heap lock.
func (h *Heap) syncSuper(sb *superblock.Superblock) {
	n := sb.InUse()
	if n == sb.Acct {
		return
	}
	h.u += int64(n-sb.Acct) * int64(sb.BlockSize())
	sb.Acct = n
	h.regroup(sb)
}

// Sync reconciles one owned superblock's accounting with its live word —
// the single-superblock form of SyncAll, used before Remove so that no
// fast-path drift leaks into this heap's u when the superblock departs.
// The caller holds the heap lock.
func (h *Heap) Sync(sb *superblock.Superblock) {
	h.syncSuper(sb)
}

// SyncAll reconciles every owned superblock's accounting with its live word
// and re-anchors uHint to the exact u — the step that turns the hint's
// suspicion into a fact the invariant check can act on. The caller holds the
// heap lock.
func (h *Heap) SyncAll(e env.Env) {
	for c := range h.classes {
		for g := 0; g <= fullGroup; g++ {
			for sb := h.classes[c].groups[g].head; sb != nil; {
				next := sb.Next
				e.Charge(env.OpListScan, 1)
				h.syncSuper(sb)
				sb = next
			}
		}
	}
	// Fast ops that completed before the loop are folded into u; ops that
	// raced it re-drift the hint after this store and trip it again.
	h.uHint.Store(h.u)
}

// U returns the accounted bytes allocated from this heap's superblocks.
func (h *Heap) U() int64 { return h.u }

// LiveU sums the superblocks' live in-use bytes — the accounted u plus any
// unreconciled fast-path drift. The caller holds the heap lock.
func (h *Heap) LiveU() int64 {
	var total int64
	h.forEach(func(sb *superblock.Superblock) error {
		total += int64(sb.BytesInUse())
		return nil
	})
	return total
}

// A returns the bytes held by this heap in superblocks (S per superblock).
func (h *Heap) A() int64 { return h.a.Load() }

// Superblocks returns the number of superblocks the heap holds.
func (h *Heap) Superblocks() int { return h.nSuper }

// Warm returns the cached warm-path Ref for a size class, or nil. Lock-free.
func (h *Heap) Warm(class int) *superblock.Ref {
	if class < 0 || class >= len(h.warm) {
		return nil
	}
	return h.warm[class].Load()
}

// WarmAt returns the i-th free-fed warm candidate for a size class (i in
// [0, WarmRingSize)), or nil. Lock-free; entries may be stale.
func (h *Heap) WarmAt(class, i int) *superblock.Ref {
	if class < 0 || class >= len(h.rings) {
		return nil
	}
	return h.rings[class].slots[i].Load()
}

// PublishWarm records a free-fed warm candidate for a size class,
// overwriting the oldest ring slot. Lock-free; called by the free fast path
// after its CAS push lands, so the malloc fast path can find the superblock
// the block just went back to. A run of frees to one superblock would
// otherwise fill the whole ring with copies, so a publish that matches the
// most recent slot is dropped (racy, and that's fine — a duplicate slot is
// only a wasted scan, every entry is identity-checked at pop time).
func (h *Heap) PublishWarm(class int, ref *superblock.Ref) {
	if class < 0 || class >= len(h.rings) {
		return
	}
	r := &h.rings[class]
	n := r.next.Load()
	if r.slots[(n+WarmRingSize-1)%WarmRingSize].Load() == ref {
		return
	}
	if !r.next.CompareAndSwap(n, n+1) {
		// Another publisher advanced the ring under us; drop this one
		// rather than double-advance. The next free republishes.
		return
	}
	r.slots[n%WarmRingSize].Store(ref)
}

// PromoteWarm makes ref the first warm-path target for its class — called
// by the malloc fast path when a ring candidate served a pop, so subsequent
// pops hit it first.
func (h *Heap) PromoteWarm(class int, ref *superblock.Ref) {
	if class < 0 || class >= len(h.warm) {
		return
	}
	h.warm[class].Store(ref)
}

// ArmRing fills the class's warm ring with owned superblocks that still have
// free capacity, scanning fullness groups emptiest-first. This is the ring's
// slow-path feeder: a locked refill that runs anyway exposes up to
// WarmRingSize superblocks' worth of blocks to the lock-free paths instead of
// just the one it served from, complementing the free fast path's
// empty-transition publishes. Emptiest-first is the opposite of AllocBlock's
// order on purpose: the ring exists to maximize pops between two lock
// acquisitions, and the emptiest superblocks hold the longest free lists (an
// armed superblock is still evictable — eviction seals it, after which its
// ring entries just stop serving). Slots past the last candidate keep their
// old entries — the ring is a cache, and every entry is identity-checked at
// pop time. Caller must hold the heap lock.
func (h *Heap) ArmRing(e env.Env, class int) {
	if class < 0 || class >= len(h.rings) {
		return
	}
	r := &h.rings[class]
	lists := &h.classes[class].groups
	n := 0
	for g := 0; g < NumGroups && n < WarmRingSize; g++ {
		e.Charge(env.OpListScan, 1)
		for sb := lists[g].head; sb != nil && n < WarmRingSize; sb = sb.Next {
			if sb.Full() {
				continue
			}
			r.slots[n].Store(sb.SelfRef())
			n++
		}
	}
}

// HintAdd folds a lock-free fast-path delta into uHint. Lock-free; called
// by internal/core after each warm-path malloc (+blockSize) and owner-local
// fast free (-blockSize).
func (h *Heap) HintAdd(delta int64) { h.uHint.Add(delta) }

// InvariantViolated reports whether the emptiness invariant fails, i.e.
// u < a - K*S AND u < (1-f)*a. The Hoard free path must restore the
// invariant when this returns true. The global heap never evicts, so core
// only consults this on per-processor heaps. Callers racing lock-free
// traffic must SyncAll first — the invariant is defined over the accounted u.
func (h *Heap) InvariantViolated() bool {
	return h.invariantViolatedAt(h.u)
}

// InvariantViolatedDiscounted is the pre-drain form of the invariant check:
// it discounts u by the pending-remote-free hint, since draining can only
// lower u. It may report a violation that a drain-then-recheck disproves
// (the hint can over- or under-count); callers must DrainAll and consult
// InvariantViolated before actually evicting.
func (h *Heap) InvariantViolatedDiscounted() bool {
	return h.invariantViolatedAt(h.discount(h.u))
}

// HintSuspectsViolation is the lock-free form: it evaluates the invariant at
// uHint (discounted by pending remote frees, which a drain would fold in).
// A true result is only a suspicion — the caller must take the lock, SyncAll,
// and consult InvariantViolated before evicting. Called without the lock
// after every fast free.
func (h *Heap) HintSuspectsViolation() bool {
	return h.invariantViolatedAt(h.discount(h.uHint.Load()))
}

func (h *Heap) discount(u int64) int64 {
	p := h.pending.Load()
	if p > 0 {
		u -= p
	}
	if u < 0 {
		u = 0
	}
	return u
}

func (h *Heap) invariantViolatedAt(u int64) bool {
	a := h.a.Load()
	return u < a-h.k.Load()*int64(h.sbSize) && float64(u) < (1-h.EmptyFraction())*float64(a)
}

// NoteRemotePush records bytes pushed onto a remote stack of a superblock
// this heap was observed to own. Called without the heap lock.
func (h *Heap) NoteRemotePush(bytes int64) { h.pending.Add(bytes) }

// PendingHintBytes returns the racy pending-remote-free hint.
func (h *Heap) PendingHintBytes() int64 { return h.pending.Load() }

// Insert adds a superblock (and its current contents) to the heap, taking
// ownership. The superblock must not be on any other heap, and must be
// sealed (no lock-free traffic can land) so its live count is stable while
// the books absorb it. Insertion unseals on the way out for every heap,
// the global one included — frees land on global-heap superblocks by the
// same lock-free CAS push as everywhere else, and a stale warm Ref may
// even pop from one (rescuing a block without the global lock). Only
// decommitted superblocks stay sealed; their pages are gone.
func (h *Heap) Insert(sb *superblock.Superblock) {
	sb.Seal()
	sb.SetOwnerID(h.ID)
	sb.Acct = sb.InUse()
	sb.Group = groupOf(sb)
	h.classes[sb.Class()].groups[sb.Group].pushFront(sb)
	h.a.Add(int64(h.sbSize))
	h.addU(int64(sb.Acct) * int64(sb.BlockSize()))
	h.nSuper++
	// The incoming superblock may carry remote frees pushed while a
	// previous heap owned it; fold them into this heap's hint so they are
	// not stranded until some unrelated push.
	if p := sb.RemotePendingBytes(); p > 0 {
		h.pending.Add(p)
	}
	if !sb.Decommitted() {
		sb.Unseal()
	}
}

// Remove detaches a superblock from the heap, releasing ownership of its
// statistics. The caller becomes responsible for the superblock, must have
// sealed it, and must have reconciled it (syncSuper via SyncAll) if it ever
// took lock-free traffic — Remove subtracts the accounted count, so
// unreconciled drift would otherwise leak into u.
//
// The departing superblock takes its remote-pending blocks with it (Insert
// folds them into the receiving heap's hint), so they are subtracted from
// this heap's hint here. Without the subtraction the source heap keeps
// counting bytes it can never drain, which makes InvariantViolatedDiscounted
// report spurious violations and TakeSuper run wasted full-heap drain sweeps
// until the next DrainAll resets the hint.
func (h *Heap) Remove(sb *superblock.Superblock) {
	h.classes[sb.Class()].groups[sb.Group].remove(sb)
	h.a.Add(-int64(h.sbSize))
	h.addU(-int64(sb.Acct) * int64(sb.BlockSize()))
	h.nSuper--
	h.dropPendingHint(sb.RemotePendingBytes())
}

// dropPendingHint lowers the pending-remote-free hint by bytes, clamping at
// zero: the hint is racy (pushes land without the heap lock), so a stale
// read could otherwise drive it negative and mask genuinely pending bytes.
func (h *Heap) dropPendingHint(bytes int64) {
	for bytes > 0 {
		cur := h.pending.Load()
		next := cur - bytes
		if next < 0 {
			next = 0
		}
		if h.pending.CompareAndSwap(cur, next) {
			return
		}
	}
}

// regroup moves sb to its correct fullness group after an alloc or free.
// Within a group, superblocks freed into the group go to the front so
// recently-touched superblocks are reused first.
func (h *Heap) regroup(sb *superblock.Superblock) {
	g := groupOf(sb)
	if g == sb.Group {
		return
	}
	lists := &h.classes[sb.Class()].groups
	lists[sb.Group].remove(sb)
	sb.Group = g
	lists[g].pushFront(sb)
}

// AllocBlock allocates one block of the given class from the heap's
// superblocks, searching fullness groups from mostly-full down to
// mostly-empty as the paper prescribes, and publishes the superblock it
// served from as the class's warm fast-path target. ok is false if no owned
// superblock of the class has a free block.
func (h *Heap) AllocBlock(e env.Env, class int) (alloc.Ptr, bool) {
	lists := &h.classes[class].groups
	for g := NumGroups - 1; g >= 0; g-- {
		e.Charge(env.OpListScan, 1)
		// A superblock grouped as non-full by its accounted count can be
		// live-full (lock-free pops outran the books). Reconcile it —
		// which moves it to the full group — and rescan the list head.
		// The bound keeps a pathological fast-free race from spinning
		// under the lock; falling through just makes core fetch a fresh
		// superblock, which is always safe.
		for tries := 0; tries < 64; tries++ {
			sb := lists[g].head
			if sb == nil {
				break
			}
			if p, ok := sb.AllocBlock(e); ok {
				// Locked delta goes to the hint; syncSuper then pulls
				// Acct up to the live word, folding both this alloc and
				// any fast-path drift into u (the drift is already in
				// the hint, so uHint gets only our +1).
				h.uHint.Add(int64(sb.BlockSize()))
				h.syncSuper(sb)
				h.warm[class].Store(sb.SelfRef())
				return p, true
			}
			h.syncSuper(sb)
		}
	}
	return 0, false
}

// FreeBlock returns a block to its superblock, which must be owned by this
// heap. Any remote frees pending on the same superblock are drained in the
// same critical section (we already paid for the lock); the number of blocks
// so drained is returned.
func (h *Heap) FreeBlock(e env.Env, sb *superblock.Superblock, p alloc.Ptr) int {
	if sb.OwnerID() != h.ID {
		panic(fmt.Sprintf("heap %d: FreeBlock on superblock owned by heap %d", h.ID, sb.OwnerID()))
	}
	drained := sb.DrainRemote(e)
	sb.FreeBlock(e, p)
	// Locked deltas (this free plus the drained remotes) go to the hint;
	// syncSuper reconciles Acct against the live word, so fast-path drift
	// can never push the accounted count negative.
	h.uHint.Add(-int64(drained+1) * int64(sb.BlockSize()))
	h.syncSuper(sb)
	return drained
}

// FreeBlocks returns a batch of blocks to one superblock, which must be
// owned by this heap — the batch form of FreeBlock: one remote-stack drain,
// one u update, and one regroup for the whole group. The number of remotely
// drained blocks is returned.
func (h *Heap) FreeBlocks(e env.Env, sb *superblock.Superblock, ps []alloc.Ptr) int {
	if sb.OwnerID() != h.ID {
		panic(fmt.Sprintf("heap %d: FreeBlocks on superblock owned by heap %d", h.ID, sb.OwnerID()))
	}
	drained := sb.DrainRemote(e)
	for _, p := range ps {
		sb.FreeBlock(e, p)
	}
	h.uHint.Add(-int64(drained+len(ps)) * int64(sb.BlockSize()))
	h.syncSuper(sb)
	return drained
}

// DrainSuper drains one owned superblock's remote stack, updating u and the
// superblock's fullness group. Returns the number of blocks drained.
func (h *Heap) DrainSuper(e env.Env, sb *superblock.Superblock) int {
	n := sb.DrainRemote(e)
	if n > 0 {
		h.uHint.Add(-int64(n) * int64(sb.BlockSize()))
	}
	h.syncSuper(sb)
	return n
}

// DrainClass drains the remote stacks of every owned superblock of one size
// class. Returns the number of blocks drained.
func (h *Heap) DrainClass(e env.Env, class int) int {
	total := 0
	lists := &h.classes[class].groups
	// Draining only empties superblocks, so regroup moves them to
	// lower-indexed groups; scanning groups in ascending order never
	// visits a superblock twice.
	for g := 0; g <= fullGroup; g++ {
		for sb := lists[g].head; sb != nil; {
			next := sb.Next
			total += h.DrainSuper(e, sb)
			sb = next
		}
	}
	return total
}

// DrainAll drains every owned superblock's remote stack and resets the
// pending hint. Returns the number of blocks drained.
func (h *Heap) DrainAll(e env.Env) int {
	total := 0
	for c := range h.classes {
		total += h.DrainClass(e, c)
	}
	h.pending.Store(0)
	return total
}

// PendingBytes sums the remote-pending bytes across every owned superblock.
// Exact only at quiescence (pushers may be mid-flight otherwise).
func (h *Heap) PendingBytes() int64 {
	var total int64
	h.forEach(func(sb *superblock.Superblock) error {
		total += sb.RemotePendingBytes()
		return nil
	})
	return total
}

// FindEvictable returns a superblock that is at least f-empty, preferring
// completely empty superblocks. It returns nil if none qualifies. After a
// free that violates the emptiness invariant one qualifies in all but one
// state (the invariant implies the average superblock is more than f empty
// in byte terms): a heap of completely full superblocks of a class whose
// block size does not divide S — see AllFull.
//
// The preference matters: regrouping pushes the currently-draining
// superblock to the front of group 0, so taking the first qualifying
// candidate would routinely evict a superblock still holding up to
// (1-f) of its blocks — whose future frees then serialize on the global
// heap. A fully drained superblock is the right victim whenever one
// exists.
func (h *Heap) FindEvictable(e env.Env) *superblock.Superblock {
	// Cost discipline (see internal/env): one OpListScan per list head
	// consulted plus one per superblock visited, so long group-0 lists
	// cost what they cost instead of a flat per-class charge.
	for c := range h.classes {
		e.Charge(env.OpListScan, 1)
		for sb := h.classes[c].groups[0].head; sb != nil; sb = sb.Next {
			e.Charge(env.OpListScan, 1)
			if sb.Empty() {
				return sb
			}
		}
	}
	for g := 0; g < NumGroups; g++ {
		for c := range h.classes {
			e.Charge(env.OpListScan, 1)
			for sb := h.classes[c].groups[g].head; sb != nil; sb = sb.Next {
				e.Charge(env.OpListScan, 1)
				if sb.AtLeastEmpty(h.EmptyFraction()) {
					return sb
				}
			}
		}
	}
	return nil
}

// TakeSuper removes and returns a superblock able to serve the given class:
// first a superblock of that class with free space (emptiest first), then a
// completely empty superblock of any class reinitialized to the class. It
// returns nil if the heap has neither. This is the global heap's side of
// Hoard's malloc slow path. Global-heap superblocks take lock-free frees
// (and stale warm-Ref pops), so each pick is reconciled before Remove to
// keep the departing accounting exact; the reinitialized-class path
// additionally seals and re-checks emptiness, since Reinit must not race a
// pop. Superblocks leave unsealed except on the Reinit path; the receiving
// heap's Insert re-snapshots and unseals either way.
//
// Emptiest-first matters: superblocks evicted to the global heap may still
// hold live blocks belonging to other threads; handing those out first
// tangles heaps together (their eventual frees contend on whichever heap
// received the superblock). Preferring the emptiest — usually completely
// empty — superblock keeps heap ownership disjoint while still recycling
// partial superblocks once demand exhausts the empties.
func (h *Heap) TakeSuper(e env.Env, class, blockSize int) *superblock.Superblock {
	// Remote frees parked on this heap's superblocks may be exactly what
	// turns a full superblock into a usable (or empty, recyclable) one;
	// reconcile before searching if the hint says any are pending.
	if h.pending.Load() > 0 {
		h.DrainAll(e)
	}
	lists := &h.classes[class].groups
	// Completely empty same-class superblocks first (group 0 mixes empty
	// and lightly-used superblocks, so scan it for a true empty).
	for sb := lists[0].head; sb != nil; sb = sb.Next {
		e.Charge(env.OpListScan, 1)
		if sb.Empty() {
			h.syncSuper(sb)
			h.Remove(sb)
			sb.Recommit(e)
			return sb
		}
	}
	for g := 0; g < NumGroups; g++ {
		for {
			sb := lists[g].head
			if sb == nil {
				break
			}
			e.Charge(env.OpListScan, 1)
			// Reconcile before handing out: stale warm Refs pop from
			// global-heap superblocks, so the group a superblock sits in
			// can lag its live fullness — and a live-full superblock is
			// useless to the taker. syncSuper regroups; if the
			// superblock left this list (filled up, or emptied into a
			// group already scanned), re-read the head and try again.
			h.syncSuper(sb)
			if sb.Group != g {
				continue
			}
			h.Remove(sb)
			sb.Recommit(e)
			return sb
		}
	}
	// Recycle a completely empty superblock from another class. As in
	// FindEvictable, the scan charges per node visited, not per class.
	for c := range h.classes {
		e.Charge(env.OpListScan, 1)
		for sb := h.classes[c].groups[0].head; sb != nil; sb = sb.Next {
			e.Charge(env.OpListScan, 1)
			if sb.Empty() {
				// Reinit reformats the word and the links, so fence the
				// lock-free paths first and confirm emptiness held: a
				// stale warm Ref may have popped a block between the
				// check and the seal. (Emptiness cannot be broken by a
				// free — an empty superblock has no blocks out.)
				sb.Seal()
				if !sb.Empty() {
					sb.Unseal()
					continue
				}
				h.syncSuper(sb)
				h.Remove(sb)
				// Scavenged superblocks are recommitted transparently
				// on reuse — and necessarily before Reinit, whose
				// formatter describes the restored memory.
				sb.Recommit(e)
				sb.Reinit(class, blockSize)
				return sb
			}
		}
	}
	return nil
}

// ReuseEmpty reformats one of this heap's own completely empty superblocks
// of a different class to serve the given class, leaving it owned by this
// heap (re-inserted and unsealed), or returns nil if no empty superblock
// exists. This is the malloc slow path's step between "my heap has no free
// block of this class" and "take a superblock from the global heap": the
// paper lets empty superblocks be recycled for any size class, and doing it
// locally keeps a(i) unchanged — where a global-heap take grows a(i) by S and
// routinely pushes the heap over the emptiness invariant, evicting some other
// class's emptiest superblock and setting up the next take. Cutting that
// cycle is what keeps the slow path off the global lock in steady state.
// Same fence discipline as TakeSuper's cross-class recycle path; the caller
// holds the heap lock.
func (h *Heap) ReuseEmpty(e env.Env, class, blockSize int) *superblock.Superblock {
	for c := range h.classes {
		if c == class {
			// An empty same-class superblock already serves AllocBlock;
			// reformatting it would buy nothing.
			continue
		}
		e.Charge(env.OpListScan, 1)
		for sb := h.classes[c].groups[0].head; sb != nil; sb = sb.Next {
			e.Charge(env.OpListScan, 1)
			if !sb.Empty() {
				continue
			}
			sb.Seal()
			if !sb.Empty() {
				sb.Unseal()
				continue
			}
			h.syncSuper(sb)
			h.Remove(sb)
			sb.Recommit(e)
			sb.Reinit(class, blockSize)
			h.Insert(sb)
			return sb
		}
	}
	return nil
}

// EmptyCommittedBytes sums the committed bytes held by completely empty
// superblocks — the scavengable surplus the release policy watches. Already
// decommitted superblocks do not count. The caller holds the heap lock.
func (h *Heap) EmptyCommittedBytes(e env.Env) int64 {
	var total int64
	for c := range h.classes {
		e.Charge(env.OpListScan, 1)
		for sb := h.classes[c].groups[0].head; sb != nil; sb = sb.Next {
			e.Charge(env.OpListScan, 1)
			if sb.Empty() && !sb.Decommitted() {
				total += int64(h.sbSize)
			}
		}
	}
	return total
}

// ScavengeEmpties decommits completely empty, still-committed superblocks in
// place — oldest park stamp first — until at least maxBytes have been
// released or no eligible victim remains. A superblock is eligible if it is
// empty, committed, and was last parked at or before coldBefore (pass the
// current clock to disable the cold-age filter, math.MaxInt64 to scavenge
// regardless of stamps). The superblocks stay on the heap; TakeSuper
// recommits them transparently on reuse. Returns the bytes released and the
// number of superblocks decommitted. The caller holds the heap lock.
func (h *Heap) ScavengeEmpties(e env.Env, maxBytes int64, coldBefore int64) (int64, int) {
	if maxBytes <= 0 {
		return 0, 0
	}
	var victims []*superblock.Superblock
	for c := range h.classes {
		e.Charge(env.OpListScan, 1)
		for sb := h.classes[c].groups[0].head; sb != nil; sb = sb.Next {
			e.Charge(env.OpListScan, 1)
			if sb.Empty() && !sb.Decommitted() && sb.ParkedAt() <= coldBefore {
				victims = append(victims, sb)
			}
		}
	}
	// Oldest first: the longer a superblock has sat idle, the less likely
	// the next malloc burst wants it back (and the cheaper the decommit is
	// relative to its remaining lifetime). Insertion sort — victim lists
	// are short and the heap lock is held.
	for i := 1; i < len(victims); i++ {
		for j := i; j > 0 && victims[j-1].ParkedAt() > victims[j].ParkedAt(); j-- {
			victims[j-1], victims[j] = victims[j], victims[j-1]
		}
	}
	var released int64
	n := 0
	for _, sb := range victims {
		if released >= maxBytes {
			break
		}
		// Fence the lock-free paths, then confirm emptiness held: a stale
		// warm Ref may have popped a block since the scan above (a free
		// cannot repopulate an empty superblock — it has no blocks out).
		sb.Seal()
		if !sb.Empty() {
			sb.Unseal()
			continue
		}
		h.syncSuper(sb)
		sb.Decommit(e)
		released += int64(h.sbSize)
		n++
	}
	return released, n
}

// AllFull reports whether every held superblock is completely full — the
// one state where a violated emptiness invariant has no remedy: size
// classes whose block size does not divide S waste the tail of each
// superblock, so a heap of full superblocks can sit below (1-f)*a in byte
// terms with nothing at all to evict (e.g. two 2960-byte blocks fill only
// 72% of an 8 KiB superblock).
func (h *Heap) AllFull() bool {
	full := true
	h.forEach(func(sb *superblock.Superblock) error {
		if !sb.Full() {
			full = false
		}
		return nil
	})
	return full
}

// CapacityWaste is the bytes of held superblocks unusable by construction:
// the tail of each superblock left over when its class's block size does
// not divide the superblock size. The caller must hold the heap lock.
func (h *Heap) CapacityWaste() int64 {
	var waste int64
	h.forEach(func(sb *superblock.Superblock) error {
		waste += int64(sb.Size() - sb.NBlocks()*sb.BlockSize())
		return nil
	})
	return waste
}

// InvariantViolatedUsable re-evaluates the emptiness invariant with
// capacity waste discounted from a — the invariant over bytes a free could
// actually reclaim. The plain invariant (u, a against S per superblock) can
// be violated with no evictable superblock: eviction candidacy is a *block*
// fraction (AtLeastEmpty), so a superblock ≥ (1-f) full by blocks may still
// sit below (1-f)·S in bytes purely from divisibility waste (AllFull is the
// extreme point — e.g. two 2960-byte blocks filling 72% of 8 KiB). When
// this discounted form holds, the byte shortfall is all waste and the state
// is benign; when it is violated too, a free really did skip an eviction it
// owed. The caller must hold the heap lock.
func (h *Heap) InvariantViolatedUsable() bool {
	a := h.a.Load() - h.CapacityWaste()
	return h.u < a-h.k.Load()*int64(h.sbSize) && float64(h.u) < (1-h.EmptyFraction())*float64(a)
}

// ClassOccupancy is one size class's occupancy within a heap: superblock
// count, bytes in use, and the fullness-group histogram. Groups[NumGroups]
// is the completely-full group.
type ClassOccupancy struct {
	Class       int
	BlockSize   int
	Superblocks int
	// EmptySuperblocks counts held superblocks with zero blocks in use —
	// reclaimable backlog rather than fragmented working memory. Samplers
	// that estimate fragmentation subtract them from the denominator.
	EmptySuperblocks int
	InUseBytes       int64
	Groups           [NumGroups + 1]int
}

// Occupancy is a heap's occupancy at one instant — the paper's u(i)/a(i)
// plus structural detail. The caller must hold the heap lock.
type Occupancy struct {
	U, A         int64
	Superblocks  int
	PendingBytes int64
	// Decommitted counts held superblocks whose pages are currently
	// scavenged (reserved but not committed).
	Decommitted int
	Groups      [NumGroups + 1]int
	// Classes holds per-class detail for classes with at least one
	// superblock; nil when detail was not requested.
	Classes []ClassOccupancy
}

// SampleOccupancy snapshots the heap's occupancy. With detail it also breaks
// the histogram down per size class. The caller must hold the heap lock; the
// walk only reads list heads and per-superblock counters, so it is cheap
// enough to run from a sampler under load.
func (h *Heap) SampleOccupancy(detail bool) Occupancy {
	occ := Occupancy{
		U:            h.u,
		A:            h.a.Load(),
		Superblocks:  h.nSuper,
		PendingBytes: h.pending.Load(),
	}
	for c := range h.classes {
		var cls ClassOccupancy
		for g := 0; g <= fullGroup; g++ {
			for sb := h.classes[c].groups[g].head; sb != nil; sb = sb.Next {
				occ.Groups[g]++
				if sb.Decommitted() {
					occ.Decommitted++
				}
				if detail {
					cls.Groups[g]++
					cls.Superblocks++
					inUse := int64(sb.BytesInUse())
					cls.InUseBytes += inUse
					if inUse == 0 {
						cls.EmptySuperblocks++
					}
					if cls.BlockSize == 0 {
						cls.Class = c
						cls.BlockSize = sb.BlockSize()
					}
				}
			}
		}
		if detail && cls.Superblocks > 0 {
			occ.Classes = append(occ.Classes, cls)
		}
	}
	return occ
}

// forEach visits every superblock the heap holds, in class/group order.
func (h *Heap) forEach(fn func(sb *superblock.Superblock) error) error {
	for c := range h.classes {
		for g := 0; g <= fullGroup; g++ {
			for sb := h.classes[c].groups[g].head; sb != nil; sb = sb.Next {
				if err := fn(sb); err != nil {
					return err
				}
			}
		}
	}
	return nil
}

// CheckIntegrity validates list structure, grouping, ownership, and the u/a
// accounting against the superblocks' accounted counters. The heap must be
// quiescent. The accounted counts may lag the live words (fast-path drift
// that SyncAll would fold in) — the books just have to be internally
// consistent; each superblock's own check validates its live state.
func (h *Heap) CheckIntegrity() error {
	return h.checkIntegrity(false)
}

// CheckIntegrityOnline is CheckIntegrity for a heap whose lock the caller
// holds while other threads keep allocating elsewhere. All heap bookkeeping
// is consistent under the lock; the only concession to concurrency is using
// the superblocks' online check, which tolerates in-flight lock-free
// traffic.
func (h *Heap) CheckIntegrityOnline() error {
	return h.checkIntegrity(true)
}

func (h *Heap) checkIntegrity(online bool) error {
	var u, a int64
	n := 0
	err := h.forEach(func(sb *superblock.Superblock) error {
		if sb.OwnerID() != h.ID {
			return fmt.Errorf("heap %d: holds superblock owned by %d", h.ID, sb.OwnerID())
		}
		if sb.Acct < 0 || sb.Acct > sb.NBlocks() {
			return fmt.Errorf("heap %d: superblock %#x accounted count %d out of range", h.ID, sb.Base(), sb.Acct)
		}
		if want := groupOf(sb); sb.Group != want {
			return fmt.Errorf("heap %d: superblock %#x in group %d, want %d (accounted %d/%d)",
				h.ID, sb.Base(), sb.Group, want, sb.Acct, sb.NBlocks())
		}
		var serr error
		if online {
			serr = sb.CheckIntegrityOnline()
		} else {
			serr = sb.CheckIntegrity()
		}
		if serr != nil {
			return fmt.Errorf("heap %d: %w", h.ID, serr)
		}
		u += int64(sb.Acct) * int64(sb.BlockSize())
		a += int64(h.sbSize)
		n++
		return nil
	})
	if err != nil {
		return err
	}
	if u != h.u || a != h.a.Load() || n != h.nSuper {
		return fmt.Errorf("heap %d: accounting u=%d a=%d n=%d, superblocks say u=%d a=%d n=%d",
			h.ID, h.u, h.a.Load(), h.nSuper, u, a, n)
	}
	return nil
}
