package hoard

import (
	"testing"
)

// TestPublicBackendSelection pins the public Config.Backend passthrough:
// "arena" reaches the core allocator (or degrades with a recorded reason),
// "sim" and the zero value stay simulated, and garbage is rejected.
func TestPublicBackendSelection(t *testing.T) {
	if _, err := New(Config{Backend: "warp-drive"}); err == nil {
		t.Fatal("unknown backend accepted")
	}

	a := MustNew(Config{Backend: "sim"})
	if got := a.Backend(); got != "sim" {
		t.Fatalf("Backend() = %q, want sim", got)
	}
	if a.BackendFallbackReason() != "" {
		t.Fatalf("sim recorded a fallback: %q", a.BackendFallbackReason())
	}

	b := MustNew(Config{Backend: "arena"})
	defer b.Close()
	switch b.Backend() {
	case "arena":
		if b.Stats().BackendFallbacks != 0 {
			t.Fatal("arena in use but a fallback was recorded")
		}
	case "sim":
		// Platform without mmap arenas: the degradation must be recorded.
		if b.BackendFallbackReason() == "" || b.Stats().BackendFallbacks != 1 {
			t.Fatal("arena fallback left no trace")
		}
	default:
		t.Fatalf("Backend() = %q", b.Backend())
	}

	// The allocator works either way.
	th := b.NewThread()
	p := th.Malloc(100)
	th.Bytes(p, 100)[99] = 0x5A
	th.Free(p)
	if err := b.CheckIntegrity(); err != nil {
		t.Fatal(err)
	}
}

// TestPublicBackendNonHoard: other policies ignore Backend and always run on
// the simulated space.
func TestPublicBackendNonHoard(t *testing.T) {
	a := MustNew(Config{Policy: PolicySerial, Backend: "arena"})
	if got := a.Backend(); got != "sim" {
		t.Fatalf("serial policy backend = %q, want sim", got)
	}
	if a.BackendFallbackReason() != "" {
		t.Fatal("non-Hoard policy recorded a backend fallback")
	}
}

// TestPublicClose: Close releases the substrate and is safe with no
// background workers running; a closed arena allocator must not be reused,
// but Close itself is idempotent.
func TestPublicClose(t *testing.T) {
	a := MustNew(Config{Backend: "arena"})
	th := a.NewThread()
	p := th.Malloc(4096)
	th.Free(p)
	if err := a.Close(); err != nil {
		t.Fatal(err)
	}
	if err := a.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
}
