package workload

import (
	"hoardgo/internal/alloc"
	"hoardgo/internal/env"
)

// ProdConsConfig parameterizes the producer-consumer blowup experiment from
// the paper's §2.2 analysis: one producer allocates a batch, the consumers
// free it, round after round. The program's live set is constant (one
// batch), so an ideal allocator's memory is constant; pure private heaps
// grow without bound, ownership-based heaps plateau at O(P), Hoard stays
// within its 1/(1-f) bound.
type ProdConsConfig struct {
	// Threads is the total thread count: thread 0 produces, the rest
	// consume.
	Threads int
	// Rounds is the number of produce/consume cycles.
	Rounds int
	// Batch is objects per round.
	Batch int
	// ObjSize is the object size.
	ObjSize int
	// AfterRound, if set, runs on thread 0 after each round's frees have
	// completed (all threads are between barriers) and before the round's
	// committed-memory sample — the hook the footprint experiments use to
	// drive a scavenge pass in virtual time.
	AfterRound func(e env.Env, round int)
}

// DefaultProdCons gives the experiment's usual shape.
func DefaultProdCons(threads int) ProdConsConfig {
	return ProdConsConfig{Threads: threads, Rounds: 50, Batch: 1000, ObjSize: 64}
}

// ProdCons runs the experiment and returns, alongside the usual Result, the
// committed-memory sample after each round — the series the blowup table
// plots.
func ProdCons(h *Harness, cfg ProdConsConfig) (Result, []int64) {
	shared := make([]alloc.Ptr, cfg.Batch)
	committed := make([]int64, cfg.Rounds)
	barrier := h.NewBarrier(cfg.Threads)
	h.Par(cfg.Threads, func(id int, e env.Env, t *alloc.Thread) {
		a := h.Allocator()
		for r := 0; r < cfg.Rounds; r++ {
			if id == 0 {
				for i := range shared {
					shared[i] = a.Malloc(t, cfg.ObjSize)
					h.OnAlloc(cfg.ObjSize)
					WriteObj(a, e, shared[i], cfg.ObjSize)
				}
			}
			barrier.Wait(e)
			// Consumers split the batch; with one thread, the
			// producer consumes its own output (no blowup).
			consumers := cfg.Threads - 1
			me := id - 1
			if consumers == 0 {
				consumers, me = 1, 0
			}
			if me >= 0 {
				for i := me; i < len(shared); i += consumers {
					ReadObj(a, e, shared[i], cfg.ObjSize)
					a.Free(t, shared[i])
					h.OnFree(cfg.ObjSize)
				}
			}
			barrier.Wait(e)
			if id == 0 {
				if cfg.AfterRound != nil {
					cfg.AfterRound(e, r)
				}
				committed[r] = a.Space().Committed()
			}
			barrier.Wait(e)
		}
	})
	ops := int64(cfg.Rounds) * int64(cfg.Batch) * 2
	return h.Result(cfg.Threads, ops), committed
}
