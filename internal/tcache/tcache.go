// Package tcache layers bounded per-thread block caches ("magazines") on
// top of any allocator — the design direction Hoard's successors took
// (Hoard 3.x's thread caches, tcmalloc's thread caches, jemalloc's tcache).
//
// Malloc first pops the calling thread's magazine for the size class, with
// no lock at all; free pushes onto it. Overflow flushes half the magazine
// to the inner allocator (real frees, respecting its ownership discipline);
// underflow refills a batch (real mallocs). Refills and flushes go through
// the alloc.MallocBatch/FreeBatch shims, so an inner allocator implementing
// alloc.BatchAllocator (Hoard, serial) serves each half-magazine transfer
// under a single heap-lock acquisition; other allocators transparently fall
// back to per-block calls. The cache trades three things against lock-free
// fast paths, all measurable with this package:
//
//   - bounded extra memory: at most Capacity blocks per class per thread
//     are stranded in magazines (reported as CachedBytes);
//   - passive false sharing returns: a block freed into thread A's
//     magazine is re-issued to thread A even if thread B's heap owns it,
//     so line-mates can split across threads again — exactly the effect
//     Hoard's free-to-owner rule eliminates (the paper's §2 tradeoff,
//     which is why Hoard 1.0 did not have thread caches);
//   - staleness: cached blocks are invisible to the inner allocator's
//     emptiness invariant, delaying superblock recycling.
package tcache

import (
	"fmt"
	"sync"
	"sync/atomic"

	"hoardgo/internal/alloc"
	"hoardgo/internal/env"
	"hoardgo/internal/sizeclass"
	"hoardgo/internal/vm"
)

// Config parameterizes the cache.
type Config struct {
	// Capacity is the maximum blocks cached per size class per thread
	// (0 selects 32). A flush returns half the magazine.
	Capacity int
	// MaxCachedSize is the largest block size worth caching (0 selects
	// 4096, the default allocators' largest class). Larger blocks bypass
	// the cache entirely.
	MaxCachedSize int
}

// Allocator wraps an inner allocator with per-thread magazines.
type Allocator struct {
	inner   alloc.Allocator
	cfg     Config
	classes *sizeclass.Table
	acct    alloc.Accounting

	// caps holds the live per-class magazine capacity, seeded from
	// cfg.Capacity and retunable at runtime (SetCapacity); owner threads
	// read it on every overflow check and refill, a controller may store
	// concurrently. capsHigh tracks each class's high-water capacity: after
	// a shrink, other threads' magazines trim lazily (each owner's next
	// Free to the class flushes against the new capacity), so integrity
	// checks bound magazine length by the high-water mark, not the current
	// capacity.
	caps     []atomic.Int64
	capsHigh []atomic.Int64

	mu      sync.Mutex
	threads []*threadState
}

// threadState holds one thread's magazines and its inner-allocator handle.
type threadState struct {
	inner *alloc.Thread
	mags  [][]alloc.Ptr // per class

	// scratch is the refill staging buffer, reused across underflows so a
	// steady-state refill performs no Go allocation.
	scratch []alloc.Ptr

	// magBytes is the sampler-visible magazine-fill gauge. Only the owning
	// thread writes it, and only at transfer boundaries (refill, flush,
	// thread retirement) — a per-op atomic update would tax every cached
	// push and pop — so a concurrent sampler sees a value that lags the
	// true fill by at most half a magazine per class. CachedBytes is the
	// exact quiescent equivalent.
	magBytes atomic.Int64

	// retired is set by FlushThread. A retired thread's handle stays
	// usable — tcmalloc tolerates stray frees after thread exit — but
	// bypasses the magazines entirely, so no block can be stranded in a
	// cache that CachedBytes and CheckIntegrity no longer see. Only the
	// owning thread reads or writes it, like mags.
	retired bool
}

// New wraps inner with thread caches.
func New(inner alloc.Allocator, cfg Config) *Allocator {
	if cfg.Capacity == 0 {
		cfg.Capacity = 32
	}
	if cfg.Capacity < 2 {
		panic(fmt.Sprintf("tcache: capacity %d too small", cfg.Capacity))
	}
	if cfg.MaxCachedSize == 0 {
		cfg.MaxCachedSize = 4096
	}
	a := &Allocator{
		inner:   inner,
		cfg:     cfg,
		classes: sizeclass.New(sizeclass.DefaultBase, sizeclass.Quantum, cfg.MaxCachedSize),
	}
	a.caps = make([]atomic.Int64, a.classes.NumClasses())
	a.capsHigh = make([]atomic.Int64, a.classes.NumClasses())
	for i := range a.caps {
		a.caps[i].Store(int64(cfg.Capacity))
		a.capsHigh[i].Store(int64(cfg.Capacity))
	}
	return a
}

// MinCapacity is the smallest settable per-class magazine capacity: refills
// and flushes move Capacity/2 blocks, so anything below 2 degenerates.
const MinCapacity = 2

// NumClasses returns the number of cached size classes.
func (a *Allocator) NumClasses() int { return a.classes.NumClasses() }

// ClassSize returns the block size of a cached size class.
func (a *Allocator) ClassSize(class int) int { return a.classes.Size(class) }

// Capacity returns the live magazine capacity for one class. Lock-free.
func (a *Allocator) Capacity(class int) int { return int(a.caps[class].Load()) }

// SetCapacity retunes one class's magazine capacity, clamping below at
// MinCapacity. Safe to call at any time from any goroutine: growth takes
// effect on each thread's next overflow check or refill; shrink trims each
// thread's magazine lazily on its owner's next Free to the class (flush
// reads the current capacity). Until then over-capacity magazines are
// legal — CheckIntegrity bounds them by the class's high-water capacity.
func (a *Allocator) SetCapacity(class, n int) {
	if n < MinCapacity {
		n = MinCapacity
	}
	a.caps[class].Store(int64(n))
	for {
		high := a.capsHigh[class].Load()
		if int64(n) <= high || a.capsHigh[class].CompareAndSwap(high, int64(n)) {
			return
		}
	}
}

// Name implements alloc.Allocator.
func (a *Allocator) Name() string { return a.inner.Name() + "+tcache" }

// Space implements alloc.Allocator.
func (a *Allocator) Space() vm.Backend { return a.inner.Space() }

// Inner returns the wrapped allocator.
func (a *Allocator) Inner() alloc.Allocator { return a.inner }

// NewThread implements alloc.Allocator.
func (a *Allocator) NewThread(e env.Env) *alloc.Thread {
	ts := &threadState{
		inner: a.inner.NewThread(e),
		mags:  make([][]alloc.Ptr, a.classes.NumClasses()),
	}
	a.mu.Lock()
	a.threads = append(a.threads, ts)
	a.mu.Unlock()
	return &alloc.Thread{ID: ts.inner.ID, Env: e, State: ts}
}

// classFor returns the magazine slot for a request size, or ok=false if the
// size bypasses the cache.
func (a *Allocator) classFor(size int) (int, bool) {
	return a.classes.ClassFor(size)
}

// Malloc implements alloc.Allocator.
func (a *Allocator) Malloc(t *alloc.Thread, size int) alloc.Ptr {
	ts := t.State.(*threadState)
	class, ok := a.classFor(size)
	if !ok || ts.retired {
		p := a.inner.Malloc(ts.inner, size)
		a.acct.OnMalloc(a.inner.UsableSize(p))
		return p
	}
	mag := ts.mags[class]
	if len(mag) == 0 {
		a.refill(ts, class)
		mag = ts.mags[class]
		if len(mag) == 0 {
			// The inner allocator's size classes don't round-trip
			// through ours (non-default parameters): bypass.
			p := a.inner.Malloc(ts.inner, size)
			a.acct.OnMalloc(a.inner.UsableSize(p))
			return p
		}
	}
	p := mag[len(mag)-1]
	ts.mags[class] = mag[:len(mag)-1]
	t.Env.Charge(env.OpMallocFast, 1)
	a.acct.OnMalloc(a.classes.Size(class))
	return p
}

// refill fills half a magazine from the inner allocator with one
// alloc.MallocBatch call — a single heap-lock acquisition when the inner
// allocator batches natively. Only blocks whose inner usable size exactly
// matches our class size are cacheable — otherwise the magazine's byte
// accounting (and Free's round-trip check) would drift; mismatches are
// batch-freed straight back, and an all-mismatch refill leaves the magazine
// empty so Malloc bypasses.
func (a *Allocator) refill(ts *threadState, class int) {
	blockSize := a.classes.Size(class)
	n := int(a.caps[class].Load()) / 2
	if cap(ts.scratch) < n {
		ts.scratch = make([]alloc.Ptr, n)
	}
	buf := ts.scratch[:n]
	got := alloc.MallocBatch(a.inner, ts.inner, blockSize, n, buf)
	// Mismatched blocks (inner size classes that don't round-trip through
	// ours) are compacted to the front of buf and batch-freed; cacheable
	// ones go on the magazine. No allocation either way.
	bad := 0
	for _, p := range buf[:got] {
		if a.inner.UsableSize(p) != blockSize {
			buf[bad] = p
			bad++
			continue
		}
		ts.mags[class] = append(ts.mags[class], p)
	}
	if bad > 0 {
		alloc.FreeBatch(a.inner, ts.inner, buf[:bad])
	}
	a.publishMagBytes(ts)
}

// publishMagBytes recomputes ts's magazine fill from the magazine lengths
// and publishes it for concurrent samplers. Called only at transfer
// boundaries, which keeps the malloc/free fast paths free of extra atomics;
// between boundaries the published value is stale by whatever the fast
// paths have pushed or popped since.
func (a *Allocator) publishMagBytes(ts *threadState) {
	var total int64
	for class, mag := range ts.mags {
		total += int64(len(mag)) * int64(a.classes.Size(class))
	}
	ts.magBytes.Store(total)
}

// Free implements alloc.Allocator. The block lands in the *freeing*
// thread's magazine (the tcmalloc behavior, and the passive-false-sharing
// tradeoff documented above).
func (a *Allocator) Free(t *alloc.Thread, p alloc.Ptr) {
	if p.IsNil() {
		return
	}
	ts := t.State.(*threadState)
	usable := a.inner.UsableSize(p)
	class, ok := a.classFor(usable)
	if !ok || a.classes.Size(class) != usable || ts.retired {
		// Bypass sizes, and blocks whose inner class doesn't round-trip
		// through our table, go straight down.
		a.acct.OnFree(usable)
		a.inner.Free(ts.inner, p)
		return
	}
	ts.mags[class] = append(ts.mags[class], p)
	t.Env.Charge(env.OpFree, 1)
	a.acct.OnFree(usable)
	if len(ts.mags[class]) > int(a.caps[class].Load()) {
		a.flush(ts, class)
	}
}

// flush returns half the magazine to the inner allocator with one
// alloc.FreeBatch call — a single heap-lock acquisition per owning
// superblock group when the inner allocator batches natively.
func (a *Allocator) flush(ts *threadState, class int) {
	mag := ts.mags[class]
	keep := int(a.caps[class].Load()) / 2
	if keep > len(mag) {
		keep = len(mag)
	}
	alloc.FreeBatch(a.inner, ts.inner, mag[keep:])
	ts.mags[class] = mag[:keep]
	a.publishMagBytes(ts)
}

// FlushThread batch-frees every magazine of t back to the inner allocator
// and deregisters the thread — what a thread-exit hook does in tcmalloc.
// The handle remains usable afterwards (stray late operations bypass the
// magazines), but the thread no longer contributes to CachedBytes,
// CheckIntegrity, or Threads, and its state can be collected once the
// caller drops the handle.
func (a *Allocator) FlushThread(t *alloc.Thread) {
	ts := t.State.(*threadState)
	for class, mag := range ts.mags {
		if len(mag) > 0 {
			alloc.FreeBatch(a.inner, ts.inner, mag)
		}
		ts.mags[class] = nil
	}
	ts.magBytes.Store(0)
	ts.retired = true
	a.mu.Lock()
	for i, s := range a.threads {
		if s == ts {
			a.threads = append(a.threads[:i], a.threads[i+1:]...)
			break
		}
	}
	a.mu.Unlock()
}

// Threads reports the number of registered (not yet flushed) threads.
func (a *Allocator) Threads() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return len(a.threads)
}

// UsableSize implements alloc.Allocator.
func (a *Allocator) UsableSize(p alloc.Ptr) int { return a.inner.UsableSize(p) }

// Bytes implements alloc.Allocator.
func (a *Allocator) Bytes(p alloc.Ptr, n int) []byte { return a.inner.Bytes(p, n) }

// CachedBytes reports the bytes currently sitting in magazines (requires
// quiescence).
func (a *Allocator) CachedBytes() int64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	var total int64
	for _, ts := range a.threads {
		for class, mag := range ts.mags {
			total += int64(len(mag)) * int64(a.classes.Size(class))
		}
	}
	return total
}

// MagazineBytes is the metrics-sampler view of magazine fill: a sum of
// every registered thread's magazine-byte gauge, safe to read while owner
// threads keep pushing and popping. Each gauge is published at transfer
// boundaries only, so the sum lags true fill by at most half a magazine per
// class per thread; CachedBytes is the exact (quiescent) equivalent.
func (a *Allocator) MagazineBytes() int64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	var total int64
	for _, ts := range a.threads {
		total += ts.magBytes.Load()
	}
	return total
}

// Stats implements alloc.Allocator, reporting application-level operation
// and live-byte counters (cached blocks count as free) over the inner
// allocator's mechanism counters.
func (a *Allocator) Stats() alloc.Stats {
	var st alloc.Stats
	a.acct.Fill(&st)
	alloc.MergeAllocatorCounters(&st, a.inner.Stats())
	return st
}

// CheckIntegrity implements alloc.Allocator: magazines must hold distinct,
// live, correctly-sized blocks; the inner allocator's live bytes must equal
// application live bytes plus cached bytes; and the inner allocator must
// itself be intact. Requires quiescence.
func (a *Allocator) CheckIntegrity() error {
	a.mu.Lock()
	seen := make(map[alloc.Ptr]bool)
	var cached int64
	for ti, ts := range a.threads {
		for class, mag := range ts.mags {
			want := a.classes.Size(class)
			// Bound by the high-water capacity: after a shrink, magazines
			// filled under the old capacity trim lazily on their owner's
			// next Free to the class.
			if len(mag) > int(a.capsHigh[class].Load()) {
				a.mu.Unlock()
				return fmt.Errorf("tcache: thread %d class %d magazine over capacity: %d", ti, class, len(mag))
			}
			for _, p := range mag {
				if seen[p] {
					a.mu.Unlock()
					return fmt.Errorf("tcache: block %#x cached twice", uint64(p))
				}
				seen[p] = true
				if got := a.inner.UsableSize(p); got != want {
					a.mu.Unlock()
					return fmt.Errorf("tcache: cached block %#x usable %d on class-%d magazine (%d)", uint64(p), got, class, want)
				}
				cached += int64(want)
			}
		}
	}
	a.mu.Unlock()
	if innerLive := a.inner.Stats().LiveBytes; innerLive != a.acct.Live()+cached {
		return fmt.Errorf("tcache: inner live %d != app live %d + cached %d", innerLive, a.acct.Live(), cached)
	}
	return a.inner.CheckIntegrity()
}
