package workload

import (
	"math/rand"

	"hoardgo/internal/alloc"
	"hoardgo/internal/env"
)

// BEMConfig parameterizes the BEMengine-style benchmark. The paper's
// BEMengine is a proprietary boundary-element-method solid-modeling engine
// (Coyote Systems); what matters for the allocator is its phase structure,
// reproduced here: a mesh-building phase of many small node allocations, a
// matrix-assembly phase of medium row allocations with per-element work, a
// solver phase dominated by computation over a few large long-lived
// buffers, and a teardown phase freeing everything. Phases are separated by
// barriers, as in the real code's parallel sections.
type BEMConfig struct {
	// Threads is the worker count. All totals below are divided evenly
	// across threads: the engine solves one fixed model with more
	// processors (strong scaling).
	Threads int
	// MeshNodes is the total number of small mesh objects.
	MeshNodes int
	// NodeSize is the mesh object size.
	NodeSize int
	// Rows is the total number of matrix rows.
	Rows int
	// RowSize is the matrix row size in bytes.
	RowSize int
	// SolveBuffers and SolveSize shape the large solver temporaries
	// (total buffers across threads).
	SolveBuffers, SolveSize int
	// SolveWork is the computation (abstract units) per solve buffer.
	SolveWork int
	// Seed makes runs reproducible.
	Seed int64
}

// DefaultBEM gives the benchmark its usual shape at simulation-friendly
// scale.
func DefaultBEM(threads int) BEMConfig {
	return BEMConfig{
		Threads:      threads,
		MeshNodes:    42000,
		NodeSize:     48,
		Rows:         2100,
		RowSize:      2048,
		SolveBuffers: 84,
		SolveSize:    64 * 1024,
		// The real BEMengine is dominated by its dense solve (O(n^3) on
		// the assembled system); allocation phases bracket it.
		SolveWork: 400000,
		Seed:      1,
	}
}

// BEM runs the benchmark on h.
func BEM(h *Harness, cfg BEMConfig) Result {
	barrier := h.NewBarrier(cfg.Threads)
	var ops int64
	opsPer := make([]int64, cfg.Threads)
	share := func(total, id int) int {
		lo := id * total / cfg.Threads
		hi := (id + 1) * total / cfg.Threads
		return hi - lo
	}
	h.Par(cfg.Threads, func(id int, e env.Env, t *alloc.Thread) {
		a := h.Allocator()
		rng := rand.New(rand.NewSource(cfg.Seed + int64(id)))
		var n int64

		// Phase 1: mesh build — many small allocations.
		nodes := make([]alloc.Ptr, share(cfg.MeshNodes, id))
		for i := range nodes {
			sz := cfg.NodeSize + 8*rng.Intn(3) // slight size mix
			nodes[i] = a.Malloc(t, sz)
			h.OnAlloc(sz)
			WriteObj(a, e, nodes[i], cfg.NodeSize)
			n++
		}
		barrier.Wait(e)

		// Phase 2: assembly — medium rows, work per element.
		rows := make([]alloc.Ptr, share(cfg.Rows, id))
		for i := range rows {
			rows[i] = a.Malloc(t, cfg.RowSize)
			h.OnAlloc(cfg.RowSize)
			WriteObj(a, e, rows[i], cfg.RowSize)
			e.Charge(env.OpWork, int64(cfg.RowSize))
			n++
		}
		barrier.Wait(e)

		// Phase 3: solve — few large temporaries, heavy compute.
		for b := 0; b < share(cfg.SolveBuffers, id); b++ {
			p := a.Malloc(t, cfg.SolveSize)
			h.OnAlloc(cfg.SolveSize)
			WriteObj(a, e, p, 4096) // touch the working prefix
			e.Charge(env.OpWork, int64(cfg.SolveWork))
			a.Free(t, p)
			h.OnFree(cfg.SolveSize)
			n += 2
		}
		barrier.Wait(e)

		// Phase 4: teardown.
		for _, p := range rows {
			a.Free(t, p)
			h.OnFree(cfg.RowSize)
			n++
		}
		for _, p := range nodes {
			a.Free(t, p)
			h.OnFree(cfg.NodeSize)
			n++
		}
		opsPer[id] = n
	})
	for _, n := range opsPer {
		ops += n
	}
	return h.Result(cfg.Threads, ops)
}
