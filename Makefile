GO ?= go

.PHONY: check build test race vet bench metrics-smoke footprint-smoke lockfree-smoke arena-smoke load-smoke tune-smoke

# check is the tier-1 gate: vet, build, and the full suite under the race
# detector.
check: vet build race

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Figure benchmarks are full deterministic simulations; run each once. The
# key batching benches (threadtest/larson figures, the contended
# producer-consumer probe, and the tcache batch-locks comparison) run here,
# then the committed artifact is regenerated.
bench:
	$(GO) test -benchtime=1x \
		-bench='FigThreadtest|FigLarson|ProducerConsumerContended|TCacheBatchLocks' .
	$(GO) run ./cmd/hoardbench -artifact BENCH_PR3.json

# metrics-smoke exercises the observability layer end to end: the
# instrumented churn run writes a timeline artifact (occupancy samples, lock
# counters, audit record, embedded Prometheus scrape), and the exposition
# format tests lint the scrape. Any audit failure fails the run.
metrics-smoke:
	$(GO) run ./cmd/hoardbench -metrics /tmp/hoardgo-metrics-timeline.json
	$(GO) test -run 'TestCollectMetricsTimeline' ./internal/experiments/
	$(GO) test -run 'TestWriteMetrics|TestLint' . ./internal/metrics/

# footprint-smoke exercises the page-level reclamation subsystem end to end:
# the scavenger footprint grid (workloads x release modes) regenerates its
# artifact with the steady-state ratios and the batch-lock throughput guard,
# and the decommit/scavenge tests run across every layer.
footprint-smoke:
	$(GO) run ./cmd/hoardbench -footprint /tmp/hoardgo-footprint.json
	$(GO) test -run 'TestFootprint' ./internal/experiments/
	$(GO) test -race -run 'TestReleaseMemory|TestBackgroundScavenger|TestScavengerUnderProdConsChurn' .
	$(GO) test -run 'TestDecommit|TestScavenge' ./internal/vm/ ./internal/superblock/ ./internal/heap/ ./internal/core/

# lockfree-smoke exercises the zero-lock steady state end to end: a short A11
# run regenerates the artifact and enforces the smoke thresholds (fast arm
# under 0.25 heap-lock acquisitions per op and at least 4x fewer than the
# locked arm, on both workloads at P=8), then the lock-free protocol tests run
# under the race detector across every layer.
lockfree-smoke:
	$(GO) run ./cmd/hoardbench -lockfree /tmp/hoardgo-lockfree.json
	$(GO) test -run 'TestLockFree|TestMeasureLockFree' ./internal/experiments/
	$(GO) test -race -run 'TestLockFree|TestUnifiedFastFree|TestGlobalHeapFastFree|TestFastPaths|TestPropertyFullness|TestWarmRing|TestReuseEmpty|TestArmRing' \
		./internal/core/ ./internal/superblock/ ./internal/heap/

# arena-smoke exercises the real-memory arena backend end to end (Linux
# amd64/arm64): the A12 run regenerates its artifact and enforces the smoke
# thresholds (address-arithmetic resolution at least 2x faster than the page
# table, forced release ending below 0.8x of its RSS peak — real
# /proc/self/statm numbers, not simulated accounting); then the full
# allocator protocol suite runs on the arena under the race detector via the
# HOARDGO_BACKEND override, plus the backend fallback and arena-specific
# tests.
arena-smoke:
	$(GO) run ./cmd/hoardbench -arena /tmp/hoardgo-arena.json
	HOARDGO_BACKEND=arena $(GO) test -race ./internal/vm/ ./internal/superblock/ ./internal/heap/ ./internal/core/
	$(GO) test -race -run 'TestArena|TestBackend|TestPublicBackend|TestPublicClose|TestMeasureResolve|TestMeasureArena' \
		. ./internal/vm/ ./internal/core/ ./internal/experiments/

# load-smoke exercises the traffic-shaped serving benchmark end to end: a
# deterministic-seed hoardload run on both backends enforces the tail-latency
# SLOs (malloc/request p999), the drained-footprint threshold, and the sweep
# sanity gates, writing its artifact; then the load engine, webserver
# lifecycle, and wall-clock pacing tests run under the race detector.
load-smoke:
	$(GO) run ./cmd/hoardload -smoke -artifact /tmp/hoardgo-load.json
	$(GO) test -race ./internal/loadgen/
	$(GO) test -race -run 'TestWebserverLifecycle|TestThreadClose' .
	$(GO) test -race -run 'TestPacerWallClock|TestScavengerWallClock' ./internal/scavenge/

# tune-smoke exercises the closed-loop controller end to end: the A14 ablation
# (controller off vs on vs oracle-static, over the workload set and the
# serving phase schedule) regenerates its artifact with the convergence
# thresholds enforced — starting from deliberately bad knobs, the tuned arm
# must reach the oracle's steady-state transfer rate and hold the serving
# SLOs; then hoardload's tuned arm runs against the PR9 smoke gate, and the
# controller rule/integration tests run under the race detector.
tune-smoke:
	$(GO) run ./cmd/hoardbench -tune /tmp/hoardgo-tune.json
	$(GO) run ./cmd/hoardload -tune -smoke
	$(GO) test -race ./internal/control/
	$(GO) test -race -run 'TestTuneSmoke' ./internal/experiments/
	$(GO) test -race -run 'TestController|TestControl' .
